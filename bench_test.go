// Benchmarks regenerating the paper's evaluation, one per figure plus the
// ablations from DESIGN.md, and micro-benchmarks for the hot substrates.
//
// Each figure benchmark runs a complete simulated trial per iteration on
// virtual time (wall time is just simulation overhead) and reports the
// paper's metric as a custom benchmark metric:
//
//	go test -bench BenchmarkFig -benchmem
//
// Larger, paper-scale parameterizations (100 entries/trial, five 3-minute
// trials per point) run via cmd/hraft-bench.
package hraft_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/bench"
	"github.com/hraft-io/hraft/internal/logstore"
	"github.com/hraft-io/hraft/internal/quorum"
	"github.com/hraft-io/hraft/internal/types"
)

// --- Figure 3: commit latency vs message loss ------------------------------

func BenchmarkFig3CommitLatency(b *testing.B) {
	for _, loss := range []float64{0, 1, 2.5, 5, 7.5, 10} {
		b.Run(fmt.Sprintf("loss=%g%%", loss), func(b *testing.B) {
			var raftMean, fastMean time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig3CommitLatency(bench.Fig3Options{
					LossPercents: []float64{loss},
					Entries:      50,
					Trials:       1,
					Seed:         int64(1 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				raftMean += rows[0].Raft.Mean
				fastMean += rows[0].FastRaft.Mean
			}
			b.ReportMetric(float64(raftMean.Milliseconds())/float64(b.N), "raft-ms/commit")
			b.ReportMetric(float64(fastMean.Milliseconds())/float64(b.N), "fast-ms/commit")
			b.ReportMetric(float64(raftMean)/float64(fastMean), "speedup")
		})
	}
}

// --- Figure 4: silent leave latency timeline --------------------------------

func BenchmarkFig4SilentLeave(b *testing.B) {
	var before, during, after time.Duration
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4SilentLeave(bench.Fig4Options{Seed: int64(1 + i)})
		if err != nil {
			b.Fatal(err)
		}
		before += res.Before.Mean
		during += res.During.Mean
		after += res.After.Mean
	}
	b.ReportMetric(float64(before.Milliseconds())/float64(b.N), "before-ms")
	b.ReportMetric(float64(during.Milliseconds())/float64(b.N), "during-ms")
	b.ReportMetric(float64(after.Milliseconds())/float64(b.N), "after-ms")
}

// --- Figure 5: throughput vs cluster count ----------------------------------

func BenchmarkFig5Throughput(b *testing.B) {
	for _, n := range []int{1, 2, 4, 5, 10} {
		b.Run(fmt.Sprintf("clusters=%d", n), func(b *testing.B) {
			var raft, craft float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig5Throughput(bench.Fig5Options{
					ClusterCounts: []int{n},
					TrialDuration: time.Minute,
					Trials:        1,
					Seed:          int64(1 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				raft += rows[0].RaftPerSec
				craft += rows[0].CraftPerSec
			}
			b.ReportMetric(raft/float64(b.N), "raft-entries/s")
			b.ReportMetric(craft/float64(b.N), "craft-entries/s")
			b.ReportMetric(craft/raft, "speedup")
		})
	}
}

// --- Ablations ---------------------------------------------------------------

func BenchmarkAblationFastTrack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationFastTrack(bench.Fig3Options{
			Entries: 50, Trials: 1, Seed: int64(1 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Latency.Mean.Milliseconds()), "on-ms")
		b.ReportMetric(float64(rows[1].Latency.Mean.Milliseconds()), "off-ms")
	}
}

func BenchmarkAblationBatchSize(b *testing.B) {
	for _, size := range []int{1, 5, 10, 20, 50} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.AblationBatchSize(bench.Fig5Options{
					TrialDuration: time.Minute,
					Trials:        1,
					Seed:          int64(1 + i),
				}, 10, []int{size})
				if err != nil {
					b.Fatal(err)
				}
				total += rows[0].PerSec
			}
			b.ReportMetric(total/float64(b.N), "entries/s")
		})
	}
}

func BenchmarkAblationHeartbeat(b *testing.B) {
	for _, hb := range []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("hb=%s", hb), func(b *testing.B) {
			var raft, fast time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := bench.AblationHeartbeat(bench.Fig3Options{
					Entries: 30, Trials: 1, Seed: int64(1 + i),
				}, []time.Duration{hb})
				if err != nil {
					b.Fatal(err)
				}
				raft += rows[0].Raft.Mean
				fast += rows[0].FastRaft.Mean
			}
			b.ReportMetric(float64(raft.Milliseconds())/float64(b.N), "raft-ms")
			b.ReportMetric(float64(fast.Milliseconds())/float64(b.N), "fast-ms")
		})
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkCodecEncodeAppendEntries(b *testing.B) {
	env := sampleAppendEntries()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := types.EncodeEnvelope(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeAppendEntries(b *testing.B) {
	env := sampleAppendEntries()
	buf, err := types.EncodeEnvelope(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := types.DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func sampleAppendEntries() types.Envelope {
	entries := make([]types.Entry, 10)
	for i := range entries {
		entries[i] = types.Entry{
			Index:    types.Index(i + 1),
			Term:     3,
			Kind:     types.KindNormal,
			Approval: types.ApprovedLeader,
			PID:      types.ProposalID{Proposer: "n2", Seq: uint64(i + 1)},
			Data:     []byte("payload-payload-payload"),
		}
	}
	return types.Envelope{
		From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{
			Term: 3, LeaderID: "n1", PrevLogIndex: 10, PrevLogTerm: 3,
			Entries: entries, LeaderCommit: 9, Round: 77,
		},
	}
}

func BenchmarkLogstoreAppendLeader(b *testing.B) {
	b.ReportAllocs()
	cfg := types.NewConfig("a", "b", "c")
	log := logstore.New(cfg)
	for i := 0; i < b.N; i++ {
		idx := types.Index(i + 1)
		e := types.Entry{Kind: types.KindNormal, Data: []byte("x")}
		if err := log.AppendLeader(idx, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTallyDecide(b *testing.B) {
	cfg := types.NewConfig("a", "b", "c", "d", "e")
	voters := cfg.Members
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := quorum.NewTally()
		e := types.Entry{Kind: types.KindNormal, PID: types.ProposalID{Proposer: "a", Seq: uint64(i)}}
		for _, v := range voters {
			t.AddVote(1, v, e)
		}
		if _, ok := t.Decide(1, cfg, nil); !ok {
			b.Fatal("no decision")
		}
	}
}
