// Benchmarks regenerating the paper's evaluation, one per figure plus the
// ablations from DESIGN.md, and micro-benchmarks for the hot substrates.
//
// Each figure benchmark runs a complete simulated trial per iteration on
// virtual time (wall time is just simulation overhead) and reports the
// paper's metric as a custom benchmark metric:
//
//	go test -bench BenchmarkFig -benchmem
//
// Larger, paper-scale parameterizations (100 entries/trial, five 3-minute
// trials per point) run via cmd/hraft-bench.
package hraft_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	hraft "github.com/hraft-io/hraft"
	"github.com/hraft-io/hraft/internal/bench"
	"github.com/hraft-io/hraft/internal/harness"
	"github.com/hraft-io/hraft/internal/logstore"
	"github.com/hraft-io/hraft/internal/quorum"
	"github.com/hraft-io/hraft/internal/types"
)

// --- Figure 3: commit latency vs message loss ------------------------------

func BenchmarkFig3CommitLatency(b *testing.B) {
	for _, loss := range []float64{0, 1, 2.5, 5, 7.5, 10} {
		b.Run(fmt.Sprintf("loss=%g%%", loss), func(b *testing.B) {
			var raftMean, fastMean time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig3CommitLatency(bench.Fig3Options{
					LossPercents: []float64{loss},
					Entries:      50,
					Trials:       1,
					Seed:         int64(1 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				raftMean += rows[0].Raft.Mean
				fastMean += rows[0].FastRaft.Mean
			}
			b.ReportMetric(float64(raftMean.Milliseconds())/float64(b.N), "raft-ms/commit")
			b.ReportMetric(float64(fastMean.Milliseconds())/float64(b.N), "fast-ms/commit")
			b.ReportMetric(float64(raftMean)/float64(fastMean), "speedup")
		})
	}
}

// --- Figure 4: silent leave latency timeline --------------------------------

func BenchmarkFig4SilentLeave(b *testing.B) {
	var before, during, after time.Duration
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4SilentLeave(bench.Fig4Options{Seed: int64(1 + i)})
		if err != nil {
			b.Fatal(err)
		}
		before += res.Before.Mean
		during += res.During.Mean
		after += res.After.Mean
	}
	b.ReportMetric(float64(before.Milliseconds())/float64(b.N), "before-ms")
	b.ReportMetric(float64(during.Milliseconds())/float64(b.N), "during-ms")
	b.ReportMetric(float64(after.Milliseconds())/float64(b.N), "after-ms")
}

// --- Figure 5: throughput vs cluster count ----------------------------------

func BenchmarkFig5Throughput(b *testing.B) {
	for _, n := range []int{1, 2, 4, 5, 10} {
		b.Run(fmt.Sprintf("clusters=%d", n), func(b *testing.B) {
			var raft, craft float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig5Throughput(bench.Fig5Options{
					ClusterCounts: []int{n},
					TrialDuration: time.Minute,
					Trials:        1,
					Seed:          int64(1 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				raft += rows[0].RaftPerSec
				craft += rows[0].CraftPerSec
			}
			b.ReportMetric(raft/float64(b.N), "raft-entries/s")
			b.ReportMetric(craft/float64(b.N), "craft-entries/s")
			b.ReportMetric(craft/raft, "speedup")
		})
	}
}

// --- Ablations ---------------------------------------------------------------

func BenchmarkAblationFastTrack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationFastTrack(bench.Fig3Options{
			Entries: 50, Trials: 1, Seed: int64(1 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Latency.Mean.Milliseconds()), "on-ms")
		b.ReportMetric(float64(rows[1].Latency.Mean.Milliseconds()), "off-ms")
	}
}

func BenchmarkAblationBatchSize(b *testing.B) {
	for _, size := range []int{1, 5, 10, 20, 50} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.AblationBatchSize(bench.Fig5Options{
					TrialDuration: time.Minute,
					Trials:        1,
					Seed:          int64(1 + i),
				}, 10, []int{size})
				if err != nil {
					b.Fatal(err)
				}
				total += rows[0].PerSec
			}
			b.ReportMetric(total/float64(b.N), "entries/s")
		})
	}
}

func BenchmarkAblationHeartbeat(b *testing.B) {
	for _, hb := range []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("hb=%s", hb), func(b *testing.B) {
			var raft, fast time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := bench.AblationHeartbeat(bench.Fig3Options{
					Entries: 30, Trials: 1, Seed: int64(1 + i),
				}, []time.Duration{hb})
				if err != nil {
					b.Fatal(err)
				}
				raft += rows[0].Raft.Mean
				fast += rows[0].FastRaft.Mean
			}
			b.ReportMetric(float64(raft.Milliseconds())/float64(b.N), "raft-ms")
			b.ReportMetric(float64(fast.Milliseconds())/float64(b.N), "fast-ms")
		})
	}
}

// --- Read path: ReadIndex and lease reads ------------------------------------

// benchNodes is the flat-cluster membership used by the read benchmarks.
func benchNodes() []types.NodeID {
	return []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
}

// readBenchCluster builds a flat 5-node cluster, elects a leader and
// commits one entry so the read floor is established, returning the
// cluster, the leader and one follower.
func readBenchCluster(b *testing.B, kind harness.Kind, seed int64) (*harness.Cluster, types.NodeID, types.NodeID) {
	b.Helper()
	c, err := harness.NewCluster(harness.Options{Kind: kind, Nodes: benchNodes(), Seed: seed, Audit: harness.AuditOff})
	if err != nil {
		b.Fatal(err)
	}
	leader, ok := c.WaitForLeader(30 * time.Second)
	if !ok {
		b.Fatal("no leader")
	}
	pid, err := c.Propose(leader, []byte("warm"))
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := c.AwaitResolution(leader, pid, c.Sched.Now()+30*time.Second); !ok {
		b.Fatal("warm-up write never resolved")
	}
	var follower types.NodeID
	for _, id := range benchNodes() {
		if id != leader {
			follower = id
			break
		}
	}
	return c, leader, follower
}

// readBenchCraft builds a two-cluster C-Raft deployment with an elected
// hierarchy and one committed local entry, returning the deployment and a
// follower site of cluster A.
func readBenchCraft(b *testing.B, seed int64) (*harness.CraftCluster, types.NodeID) {
	b.Helper()
	c, err := harness.NewCraftCluster(harness.CraftOptions{
		Clusters: []harness.ClusterSpec{
			{ID: "cA", Sites: []types.NodeID{"a1", "a2", "a3"}, Region: "us-east-1"},
			{ID: "cB", Sites: []types.NodeID{"b1", "b2", "b3"}, Region: "eu-west-1"},
		},
		Seed:  seed,
		Audit: harness.AuditOff,
	})
	if err != nil {
		b.Fatal(err)
	}
	if !c.WaitForLeaders(60 * time.Second) {
		b.Fatal("no leaders")
	}
	pid, err := c.Propose("a1", []byte("warm"))
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := c.AwaitResolution("a1", pid, c.Sched.Now()+30*time.Second); !ok {
		b.Fatal("warm-up write never resolved")
	}
	return c, "a1"
}

// awaitReads issues count sequential reads from a flat-cluster node and
// returns the virtual time they took.
func awaitReads(b *testing.B, c *harness.Cluster, from types.NodeID, cons types.ReadConsistency, count int) time.Duration {
	b.Helper()
	start := c.Sched.Now()
	for i := 0; i < count; i++ {
		tok, err := c.Read(from, cons)
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := c.AwaitRead(from, tok, c.Sched.Now()+30*time.Second); !ok || !d.OK {
			b.Fatalf("read %d not confirmed (%+v ok=%v)", i, d, ok)
		}
	}
	return c.Sched.Now() - start
}

// awaitProposals commits count sequential no-op-sized proposals from a
// node and returns the virtual time they took.
func awaitProposals(b *testing.B, c *harness.Cluster, from types.NodeID, count int) time.Duration {
	b.Helper()
	start := c.Sched.Now()
	for i := 0; i < count; i++ {
		pid, err := c.Propose(from, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := c.AwaitResolution(from, pid, c.Sched.Now()+30*time.Second); !ok {
			b.Fatalf("proposal %d never resolved", i)
		}
	}
	return c.Sched.Now() - start
}

// perSecond converts a virtual elapsed time for count operations into
// ops/s, clamping the denominator so instantaneous completions stay
// finite.
func perSecond(count int, elapsed time.Duration) float64 {
	if elapsed < time.Microsecond {
		elapsed = time.Microsecond
	}
	return float64(count) / elapsed.Seconds()
}

// --- Tracing overhead --------------------------------------------------------

// BenchmarkProposalTracing measures the flight recorder's wall-clock cost
// on the proposal hot path: "off" is the default configuration, where
// every record call is a single nil check (allocation-freedom is pinned by
// TestDisabledRecorderZeroAlloc); "on" records the full event and span
// stream into each node's ring; "sampled" additionally mints a wire-
// propagated trace ID for every proposal, so each one pays the hop
// recording on every node it touches plus the trace varint on the wire.
// The simulation runs on virtual time, so any ns/op difference between
// the arms is pure recording/propagation overhead.
func BenchmarkProposalTracing(b *testing.B) {
	const perIter = 10
	for _, arm := range []struct {
		name   string
		traced bool
		sample int
	}{{"off", false, 0}, {"on", true, 0}, {"sampled", true, 1}} {
		b.Run(arm.name, func(b *testing.B) {
			c, err := harness.NewCluster(harness.Options{
				Kind:        harness.KindFastRaft,
				Nodes:       benchNodes(),
				Seed:        42,
				Trace:       arm.traced,
				TraceSample: arm.sample,
				// AuditOff in every arm: "off" pins the recorder-free
				// fast path, and the others stay pure recording-cost
				// measurements rather than recording + invariant checking.
				Audit: harness.AuditOff,
			})
			if err != nil {
				b.Fatal(err)
			}
			leader, ok := c.WaitForLeader(30 * time.Second)
			if !ok {
				b.Fatal("no leader")
			}
			awaitProposals(b, c, leader, 5) // warm the pipeline
			b.ResetTimer()
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				virtual += awaitProposals(b, c, leader, perIter)
			}
			b.ReportMetric(perSecond(perIter*b.N, virtual), "props/s")
		})
	}
}

// BenchmarkReadIndex measures quorum-confirmed linearizable read
// throughput (virtual time), reads issued closed-loop from a follower so
// every read pays forwarding plus one shared heartbeat round.
func BenchmarkReadIndex(b *testing.B) {
	const reads = 30
	for _, kind := range []harness.Kind{harness.KindRaft, harness.KindFastRaft} {
		b.Run(kind.String(), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				c, _, follower := readBenchCluster(b, kind, int64(1+i))
				total += awaitReads(b, c, follower, types.ReadLinearizable, reads)
			}
			b.ReportMetric(perSecond(reads*b.N, total), "reads/s")
		})
	}
	b.Run("craft", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			c, site := readBenchCraft(b, int64(1+i))
			start := c.Sched.Now()
			for r := 0; r < reads; r++ {
				tok, err := c.Read(site, types.ReadLinearizable)
				if err != nil {
					b.Fatal(err)
				}
				if d, ok := c.AwaitRead(site, tok, c.Sched.Now()+30*time.Second); !ok || !d.OK {
					b.Fatalf("local read %d not confirmed (%+v ok=%v)", r, d, ok)
				}
			}
			total += c.Sched.Now() - start
		}
		b.ReportMetric(perSecond(reads*b.N, total), "reads/s")
	})
}

// BenchmarkLeaseRead measures lease-read throughput against committed
// no-op proposals on the same simnet topology (the acceptance target is
// >= 5x). Reads are issued closed-loop from a follower, so each still
// pays one intra-cluster forwarding round trip — the leader itself serves
// them clock-free.
func BenchmarkLeaseRead(b *testing.B) {
	const (
		reads     = 50
		proposals = 15
	)
	for _, kind := range []harness.Kind{harness.KindRaft, harness.KindFastRaft} {
		b.Run(kind.String(), func(b *testing.B) {
			var readTime, propTime time.Duration
			for i := 0; i < b.N; i++ {
				c, _, follower := readBenchCluster(b, kind, int64(1+i))
				// Warm the lease with one awaited lease read.
				awaitReads(b, c, follower, types.ReadLeaseBased, 1)
				readTime += awaitReads(b, c, follower, types.ReadLeaseBased, reads)
				propTime += awaitProposals(b, c, follower, proposals)
			}
			rps := perSecond(reads*b.N, readTime)
			pps := perSecond(proposals*b.N, propTime)
			b.ReportMetric(rps, "reads/s")
			b.ReportMetric(pps, "proposals/s")
			b.ReportMetric(rps/pps, "speedup")
		})
	}
	b.Run("craft", func(b *testing.B) {
		var readTime, propTime time.Duration
		for i := 0; i < b.N; i++ {
			c, site := readBenchCraft(b, int64(1+i))
			doReads := func(count int) time.Duration {
				start := c.Sched.Now()
				for r := 0; r < count; r++ {
					tok, err := c.Read(site, types.ReadLeaseBased)
					if err != nil {
						b.Fatal(err)
					}
					if d, ok := c.AwaitRead(site, tok, c.Sched.Now()+30*time.Second); !ok || !d.OK {
						b.Fatalf("lease read %d not confirmed (%+v ok=%v)", r, d, ok)
					}
				}
				return c.Sched.Now() - start
			}
			doReads(1) // lease warm-up
			readTime += doReads(reads)
			start := c.Sched.Now()
			for p := 0; p < proposals; p++ {
				pid, err := c.Propose(site, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := c.AwaitResolution(site, pid, c.Sched.Now()+30*time.Second); !ok {
					b.Fatalf("proposal %d never resolved", p)
				}
			}
			propTime += c.Sched.Now() - start
		}
		rps := perSecond(reads*b.N, readTime)
		pps := perSecond(proposals*b.N, propTime)
		b.ReportMetric(rps, "reads/s")
		b.ReportMetric(pps, "proposals/s")
		b.ReportMetric(rps/pps, "speedup")
	})
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkCodecEncodeAppendEntries(b *testing.B) {
	env := sampleAppendEntries()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := types.EncodeEnvelope(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeAppendEntries(b *testing.B) {
	env := sampleAppendEntries()
	buf, err := types.EncodeEnvelope(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := types.DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func sampleAppendEntries() types.Envelope {
	entries := make([]types.Entry, 10)
	for i := range entries {
		entries[i] = types.Entry{
			Index:    types.Index(i + 1),
			Term:     3,
			Kind:     types.KindNormal,
			Approval: types.ApprovedLeader,
			PID:      types.ProposalID{Proposer: "n2", Seq: uint64(i + 1)},
			Data:     []byte("payload-payload-payload"),
		}
	}
	return types.Envelope{
		From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{
			Term: 3, LeaderID: "n1", PrevLogIndex: 10, PrevLogTerm: 3,
			Entries: entries, LeaderCommit: 9, Round: 77,
		},
	}
}

func BenchmarkLogstoreAppendLeader(b *testing.B) {
	b.ReportAllocs()
	cfg := types.NewConfig("a", "b", "c")
	log := logstore.New(cfg)
	for i := 0; i < b.N; i++ {
		idx := types.Index(i + 1)
		e := types.Entry{Kind: types.KindNormal, Data: []byte("x")}
		if err := log.AppendLeader(idx, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTallyDecide(b *testing.B) {
	cfg := types.NewConfig("a", "b", "c", "d", "e")
	voters := cfg.Members
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := quorum.NewTally()
		e := types.Entry{Kind: types.KindNormal, PID: types.ProposalID{Proposer: "a", Seq: uint64(i)}}
		for _, v := range voters {
			t.AddVote(1, v, e)
		}
		if _, ok := t.Decide(1, cfg, nil); !ok {
			b.Fatal("no decision")
		}
	}
}

// --- Raw-speed hot path (group commit, zero-alloc codec, apply pipeline) ----

// BenchmarkCodecAppendEncodeAppendEntries is the steady-state encode path:
// AppendEnvelope into a reused buffer, as the UDP transport sends. The
// allocation count is pinned in CI (hraft-benchcmp): the reused-buffer
// encode must stay allocation-free.
func BenchmarkCodecAppendEncodeAppendEntries(b *testing.B) {
	env := sampleAppendEntries()
	buf, err := types.AppendEnvelope(nil, env)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = types.AppendEnvelope(buf[:0], env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline measures end-to-end committed entries/s on a real
// single-node group over the file-backed segmented WAL: Propose → WAL
// append → fsync → commit → apply pipeline → resolution, on wall time
// with real disk syncs.
//
// The sync variant fsyncs inline on every mutation (the classic
// one-write-one-fsync storage); the group variants run the group-commit
// flusher in eager mode, so the proposals in flight share fsyncs while
// every commit still waits for durability. batch is the number of
// concurrent closed-loop proposers.
func BenchmarkPipeline(b *testing.B) {
	const entriesPerTrial = 240 // divisible by every batch size below
	payload := []byte("pipeline-benchmark-payload")

	run := func(b *testing.B, opt hraft.WALOptions, batch int) {
		store, err := hraft.OpenWALOptions(b.TempDir()+"/wal", opt)
		if err != nil {
			b.Fatal(err)
		}
		net := hraft.NewInProcNetwork(1)
		node, err := hraft.NewNode(hraft.Options{
			ID:                "n1",
			Peers:             []hraft.NodeID{"n1"},
			Transport:         net.Endpoint("n1"),
			Storage:           store,
			HeartbeatInterval: 10 * time.Millisecond,
			Seed:              1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			node.Stop()
			net.Close()
		}()
		go func() {
			for range node.Commits() {
			}
		}()
		deadline := time.Now().Add(5 * time.Second)
		for node.Role() != hraft.Leader {
			if time.Now().After(deadline) {
				b.Fatal("single node never became leader")
			}
			time.Sleep(time.Millisecond)
		}

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for g := 0; g < batch; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < entriesPerTrial/batch; j++ {
						if _, err := node.Propose(context.Background(), payload); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(entriesPerTrial*b.N)/b.Elapsed().Seconds(), "entries/s")
	}

	b.Run("sync/batch=1", func(b *testing.B) {
		run(b, hraft.WALOptions{}, 1)
	})
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("group/batch=%d", batch), func(b *testing.B) {
			// Negative SyncWindow = eager flusher: natural batching under
			// concurrency without added latency.
			run(b, hraft.WALOptions{GroupCommit: true, SyncWindow: -1}, batch)
		})
	}
}

// --- Shard scaling: aggregate throughput across groups ----------------------

// BenchmarkShardScaling multiplexes N single-member consensus groups in one
// process over one shared group-commit WAL and drives one sequential
// proposer per group. A single group's throughput is bounded by its commit
// round trip (append → fsync → resolve); independent groups overlap those
// round trips while the shared flusher folds their appends into common
// fsyncs, so aggregate entries/s should scale near-linearly with the group
// count until fsync bandwidth saturates. hraft-benchcmp gates 8-group ≥ 2x
// single-group on the same run.
func BenchmarkShardScaling(b *testing.B) {
	const entriesPerGroup = 24
	payload := []byte("shard-scaling-benchmark-payload")

	// Fixed-width hex starts keep lexicographic order numeric: group i owns
	// keys prefixed by its index, group 0 owns the bottom of the keyspace.
	specs := func(n int) ([]hraft.ShardGroup, []string) {
		groups := make([]hraft.ShardGroup, n)
		keys := make([]string, n)
		for i := 0; i < n; i++ {
			start := ""
			if i > 0 {
				start = fmt.Sprintf("%02x", i)
			}
			groups[i] = hraft.ShardGroup{ID: hraft.GroupID(fmt.Sprintf("g%02x", i)), Start: start}
			keys[i] = fmt.Sprintf("%02x-key", i)
		}
		return groups, keys
	}

	run := func(b *testing.B, n int) {
		groups, keys := specs(n)
		stores, meta, err := hraft.OpenShardWAL(b.TempDir()+"/wal",
			hraft.WALOptions{GroupCommit: true, SyncWindow: -1})
		if err != nil {
			b.Fatal(err)
		}
		net := hraft.NewInProcNetwork(1)
		node, err := hraft.NewShardNode(hraft.ShardOptions{
			ID:                "p1",
			Peers:             []hraft.NodeID{"p1"},
			Groups:            groups,
			Transport:         net.Endpoint("p1"),
			Storage:           stores,
			Meta:              meta,
			HeartbeatInterval: 10 * time.Millisecond,
			Seed:              1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			node.Stop()
			net.Close()
		}()
		go func() {
			for range node.Commits() {
			}
		}()
		deadline := time.Now().Add(10 * time.Second)
		for {
			leaders := 0
			for _, g := range node.ShardStatus() {
				if g.Role == "leader" {
					leaders++
				}
			}
			if leaders == n {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("only %d/%d groups elected a leader", leaders, n)
			}
			time.Sleep(time.Millisecond)
		}

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for g := 0; g < n; g++ {
				wg.Add(1)
				go func(key string) {
					defer wg.Done()
					for j := 0; j < entriesPerGroup; j++ {
						if _, err := node.Propose(context.Background(), key, payload); err != nil {
							b.Error(err)
							return
						}
					}
				}(keys[g])
			}
			wg.Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(n*entriesPerGroup*b.N)/b.Elapsed().Seconds(), "entries/s")
		b.ReportMetric(float64(n), "groups")
	}

	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("groups=%d", n), func(b *testing.B) { run(b, n) })
	}
}
