// Command hraft-audit replays flight-recorder dumps through the streaming
// safety auditor and reports every consensus-invariant violation found —
// the offline half of the online checks the harness runs in-process.
//
//	hraft-audit dump1.trace.jsonl dump2.trace.jsonl
//	hraft-audit $HRAFT_TRACE_DIR            # every dump in a directory
//	curl -s host:7070/debug/hraft/trace?format=json | hraft-audit -
//
// Each argument is a file, a directory (scanned non-recursively for
// *.jsonl and *.json dumps), or "-" for stdin. Accepted formats are the
// JSONL dumps the harness writes next to its text dumps, a JSON array of
// events, and the {"node":..., "events":[...]} object served by
// /debug/hraft/trace?format=json. All inputs are merged into one
// time-ordered stream before auditing, so dumps from different nodes of
// one run check cross-node invariants (committed-prefix agreement,
// election safety, lease disjointness), not just per-node ones.
//
// Exit status: 0 when the stream is clean, 1 on violations or usage
// errors. With -v each violation's event window is printed too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/trace"
)

func main() {
	verbose := flag.Bool("v", false, "print each violation's event window")
	maxViolations := flag.Int("max-violations", 128, "retain at most this many violation reports")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hraft-audit [-v] <dump.jsonl|dir|-> ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(1)
	}
	if err := run(flag.Args(), *verbose, *maxViolations); err != nil {
		fmt.Fprintln(os.Stderr, "hraft-audit:", err)
		os.Exit(1)
	}
}

func run(args []string, verbose bool, maxViolations int) error {
	var streams [][]trace.Event
	total := 0
	for _, arg := range args {
		sources, err := expand(arg)
		if err != nil {
			return err
		}
		for _, src := range sources {
			events, err := load(src)
			if err != nil {
				return err
			}
			if len(events) == 0 {
				fmt.Printf("%-8s %s (no events)\n", "empty", src)
				continue
			}
			fmt.Printf("%-8d %s\n", len(events), src)
			streams = append(streams, events)
			total += len(events)
		}
	}
	if total == 0 {
		return fmt.Errorf("no events in any input")
	}

	aud := audit.New(audit.Options{MaxViolations: maxViolations})
	aud.ObserveAll(trace.Merge(streams...))

	report := aud.Snapshot()
	if report.Clean {
		fmt.Printf("clean: %d events, no invariant violations\n", report.EventsChecked)
		return nil
	}
	fmt.Printf("FAIL: %d events, %d violation(s)\n", report.EventsChecked, len(report.Violations))
	keys := make([]string, 0, len(report.Counts))
	for k := range report.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-40s %d\n", strings.TrimPrefix(k, audit.MetricPrefix), report.Counts[k])
	}
	for i, v := range report.Violations {
		fmt.Printf("\n[%d] %s\n", i+1, v.Error())
		if verbose {
			fmt.Println(v.Report())
		}
	}
	os.Exit(1)
	return nil
}

// expand resolves one argument into dump sources: "-" stays stdin, a
// directory becomes its *.json/*.jsonl entries, anything else is a file.
func expand(arg string) ([]string, error) {
	if arg == "-" {
		return []string{arg}, nil
	}
	fi, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return []string{arg}, nil
	}
	entries, err := os.ReadDir(arg)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if name := e.Name(); strings.HasSuffix(name, ".jsonl") || strings.HasSuffix(name, ".json") {
			out = append(out, filepath.Join(arg, name))
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no *.json or *.jsonl dumps", arg)
	}
	return out, nil
}

func load(src string) ([]trace.Event, error) {
	var data []byte
	var err error
	if src == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return nil, err
	}
	events, err := trace.ParseEvents(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	return events, nil
}
