// Command hraft-bench regenerates every table and figure from the paper's
// evaluation section (plus the ablations in DESIGN.md) on the deterministic
// simulator, printing the same rows/series the paper reports.
//
// Usage:
//
//	hraft-bench -experiment all            # everything, paper-scale
//	hraft-bench -experiment fig3           # Figure 3 only
//	hraft-bench -experiment fig5 -trials 1 # quicker sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hraft-io/hraft/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"experiment to run: fig3, fig4, fig5, ablations, reads or all")
		trials = flag.Int("trials", 0, "trials per sweep point (0 = paper default)")
		seed   = flag.Int64("seed", 1, "base random seed")
		quick  = flag.Bool("quick", false, "smaller workloads for a fast smoke run")
	)
	flag.Parse()
	if err := run(*experiment, *trials, *seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "hraft-bench:", err)
		os.Exit(1)
	}
}

func run(experiment string, trials int, seed int64, quick bool) error {
	fig3 := bench.Fig3Options{Trials: trials, Seed: seed}
	fig4 := bench.Fig4Options{Seed: seed}
	fig5 := bench.Fig5Options{Trials: trials, Seed: seed}
	if quick {
		fig3.Entries = 30
		if trials == 0 {
			fig3.Trials = 2
			fig5.Trials = 1
		}
		fig4.RunFor = 25 * time.Second
		fig5.TrialDuration = time.Minute
	}
	reads := bench.ReadOptions{Seed: seed}
	if quick {
		reads.Reads = 20
		reads.Proposals = 10
		reads.Trials = 1
	}
	switch experiment {
	case "fig3":
		return runFig3(fig3)
	case "fig4":
		return runFig4(fig4)
	case "fig5":
		return runFig5(fig5)
	case "ablations":
		return runAblations(fig3, fig5)
	case "reads":
		return runReads(reads)
	case "all":
		if err := runFig3(fig3); err != nil {
			return err
		}
		if err := runFig4(fig4); err != nil {
			return err
		}
		if err := runFig5(fig5); err != nil {
			return err
		}
		if err := runAblations(fig3, fig5); err != nil {
			return err
		}
		return runReads(reads)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func runReads(opts bench.ReadOptions) error {
	started := time.Now()
	rows, err := bench.ReadSweep(opts)
	if err != nil {
		return err
	}
	bench.PrintReads(os.Stdout, rows)
	fmt.Printf("(reads done in %s wall time)\n\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func runFig3(opts bench.Fig3Options) error {
	started := time.Now()
	rows, err := bench.Fig3CommitLatency(opts)
	if err != nil {
		return err
	}
	bench.PrintFig3(os.Stdout, rows)
	fmt.Printf("(fig3 completed in %s wall time)\n\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func runFig4(opts bench.Fig4Options) error {
	started := time.Now()
	res, err := bench.Fig4SilentLeave(opts)
	if err != nil {
		return err
	}
	bench.PrintFig4(os.Stdout, res)
	fmt.Printf("(fig4 completed in %s wall time)\n\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func runFig5(opts bench.Fig5Options) error {
	started := time.Now()
	rows, err := bench.Fig5Throughput(opts)
	if err != nil {
		return err
	}
	bench.PrintFig5(os.Stdout, rows)
	fmt.Printf("(fig5 completed in %s wall time)\n\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func runAblations(fig3 bench.Fig3Options, fig5 bench.Fig5Options) error {
	started := time.Now()
	a1, err := bench.AblationFastTrack(fig3)
	if err != nil {
		return err
	}
	bench.PrintAblationFastTrack(os.Stdout, a1)
	fmt.Println()

	clusters := 10
	if fig5.Sites != 0 && fig5.Sites < 20 {
		clusters = 4
	}
	a2, err := bench.AblationBatchSize(fig5, clusters, nil)
	if err != nil {
		return err
	}
	bench.PrintAblationBatchSize(os.Stdout, clusters, a2)
	fmt.Println()

	a3, err := bench.AblationHeartbeat(fig3, nil)
	if err != nil {
		return err
	}
	bench.PrintAblationHeartbeat(os.Stdout, a3)
	fmt.Printf("(ablations completed in %s wall time)\n\n", time.Since(started).Round(time.Millisecond))
	return nil
}
