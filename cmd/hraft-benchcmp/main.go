// Command hraft-benchcmp turns `go test -bench` output into a committed
// JSON snapshot and gates CI on throughput regressions against the
// previous PR's baseline.
//
//	go test -bench . -benchtime 1x -run '^$' . | tee bench.out
//	hraft-benchcmp -in bench.out -out BENCH_pr4.json -baseline BENCH_pr3.json
//
// The comparison covers the throughput metrics (entries/s): each is
// checked against the same quantity in the baseline file and the run
// fails if any regressed by more than -max-regress (default 2x). The
// custom metrics are paper-figure quantities measured on virtual time, so
// they are stable across CI hardware; ns/op is ignored for exactly that
// reason.
//
// Allocation counts are hardware-independent and gated tighter: every
// benchmark reporting allocs/op in both runs fails on any increase beyond
// -max-alloc-regress (default 1.1x), the reused-buffer encode path is
// pinned to at most -max-encode-allocs (default 3) absolutely, the
// group-commit pipeline benchmark must beat its one-fsync-per-entry
// variant by at least -min-group-speedup (default 3x) within the same run,
// and the sharded 8-group aggregate must beat the single-group run by at
// least -min-shard-scaling (default 2x) — the multi-group multiplexing
// claim, measured on the same machine in the same run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hraft-benchcmp:", err)
		os.Exit(1)
	}
}

var iterSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output into benchmark -> metric ->
// value (custom units only; ns/op and allocation columns are kept too,
// they are simply never compared).
func parseBench(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := iterSuffix.ReplaceAllString(fields[0], "")
		metrics := out[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			out[name] = metrics
		}
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

// lookup walks a decoded JSON object by dot-separated path.
func lookup(doc any, path string) (float64, bool) {
	cur := doc
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		cur, ok = m[part]
		if !ok {
			return 0, false
		}
	}
	v, ok := cur.(float64)
	return v, ok
}

// check names one throughput quantity in both representations: the
// benchmark/metric pair in fresh output and the JSON path in the baseline.
type check struct {
	bench, metric, basePath string
}

func throughputChecks() []check {
	var out []check
	for _, n := range []string{"1", "2", "4", "5", "10"} {
		out = append(out,
			check{"BenchmarkFig5Throughput/clusters=" + n, "craft-entries/s",
				"fig5_throughput_entries_per_s.clusters=" + n + ".craft"},
			check{"BenchmarkFig5Throughput/clusters=" + n, "raft-entries/s",
				"fig5_throughput_entries_per_s.clusters=" + n + ".raft"},
		)
	}
	for _, n := range []string{"1", "5", "10", "20", "50"} {
		out = append(out, check{"BenchmarkAblationBatchSize/batch=" + n, "entries/s",
			"ablation_batch_size_entries_per_s.batch=" + n})
	}
	for _, k := range []string{"raft", "fastraft", "craft"} {
		out = append(out,
			check{"BenchmarkReadIndex/" + k, "reads/s", "read_index_reads_per_s." + k},
			check{"BenchmarkLeaseRead/" + k, "reads/s", "lease_read_reads_per_s." + k},
		)
	}
	return out
}

func run() error {
	var (
		in              = flag.String("in", "bench.out", "captured `go test -bench` output")
		out             = flag.String("out", "", "write the parsed snapshot to this JSON file")
		baseline        = flag.String("baseline", "", "previous BENCH_pr*.json to compare against")
		maxRegress      = flag.Float64("max-regress", 2.0, "fail when a throughput metric drops by more than this factor")
		maxAllocRegress = flag.Float64("max-alloc-regress", 1.1, "fail when a benchmark's allocs/op grows by more than this factor")
		maxEncodeAllocs = flag.Float64("max-encode-allocs", 3, "absolute allocs/op ceiling for the reused-buffer AppendEntries encode")
		minGroupSpeedup = flag.Float64("min-group-speedup", 3.0, "required same-run entries/s ratio of BenchmarkPipeline group/batch=64 over sync/batch=1")
		minShardScaling = flag.Float64("min-shard-scaling", 2.0, "required same-run entries/s ratio of BenchmarkShardScaling groups=8 over groups=1")
		pr              = flag.Int("pr", 4, "PR number recorded in the snapshot")
	)
	flag.Parse()

	results, err := parseBench(*in)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *in, err)
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", *in)
	}

	if *out != "" {
		snap := map[string]any{
			"pr":         *pr,
			"command":    "go test -bench . -benchtime 1x -run '^$' .",
			"note":       "Machine-parsed smoke snapshot (hraft-benchcmp). Custom metrics are virtual-time paper-figure quantities, stable across hardware.",
			"benchmarks": results,
		}
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
	}

	// Same-run gates: these compare quantities within the fresh output, so
	// they hold even without a baseline file.
	if v, ok := results["BenchmarkCodecAppendEncodeAppendEntries"]["allocs/op"]; ok {
		if v > *maxEncodeAllocs {
			return fmt.Errorf("reused-buffer AppendEntries encode allocates %.0f/op (ceiling %.0f)",
				v, *maxEncodeAllocs)
		}
		fmt.Printf("ok encode allocs pinned: %.0f/op (ceiling %.0f)\n", v, *maxEncodeAllocs)
	}
	grouped, gok := results["BenchmarkPipeline/group/batch=64"]["entries/s"]
	ungrouped, uok := results["BenchmarkPipeline/sync/batch=1"]["entries/s"]
	if gok && uok && ungrouped > 0 {
		if grouped < ungrouped**minGroupSpeedup {
			return fmt.Errorf("group commit pipeline only %.1fx over per-entry fsync (need %.1fx): %.0f vs %.0f entries/s",
				grouped/ungrouped, *minGroupSpeedup, grouped, ungrouped)
		}
		fmt.Printf("ok group-commit speedup: %.1fx (%.0f vs %.0f entries/s)\n",
			grouped/ungrouped, grouped, ungrouped)
	}
	sharded, sok := results["BenchmarkShardScaling/groups=8"]["entries/s"]
	single, sgok := results["BenchmarkShardScaling/groups=1"]["entries/s"]
	if sok && sgok && single > 0 {
		if sharded < single**minShardScaling {
			return fmt.Errorf("8-group shard throughput only %.1fx over single-group (need %.1fx): %.0f vs %.0f entries/s",
				sharded/single, *minShardScaling, sharded, single)
		}
		fmt.Printf("ok shard scaling: %.1fx (%.0f vs %.0f entries/s, 8 groups vs 1)\n",
			sharded/single, sharded, single)
	}

	if *baseline == "" {
		return nil
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("decode baseline: %w", err)
	}
	// Baselines written by this tool nest results under "benchmarks" keyed
	// by benchmark name; hand-written ones use the figure paths.
	benchDoc, _ := doc.(map[string]any)["benchmarks"]

	failed := 0
	compared := 0
	for _, c := range throughputChecks() {
		cur, ok := results[c.bench][c.metric]
		if !ok {
			continue
		}
		base, ok := lookup(doc, c.basePath)
		if !ok && benchDoc != nil {
			base, ok = lookup(benchDoc, c.bench+"."+c.metric)
		}
		if !ok || base <= 0 {
			continue
		}
		compared++
		if cur < base / *maxRegress {
			failed++
			fmt.Printf("REGRESSION %s %s: %.3f -> %.3f (>%.1fx drop)\n",
				c.bench, c.metric, base, cur, *maxRegress)
		} else {
			fmt.Printf("ok %s %s: %.3f -> %.3f\n", c.bench, c.metric, base, cur)
		}
	}
	// Allocation regression gate: allocs/op is deterministic for a given
	// code path, so any benchmark reporting it in both runs is compared.
	// The factor leaves room only for benchmarks whose allocation count is
	// amortized across iterations (pooling warm-up). Multi-proposer
	// benchmarks are exempt: how many concurrent proposals coalesce into
	// each commit round is scheduling-dependent, which swings their
	// allocation counts ±30% between identical runs.
	allocNondeterministic := map[string]bool{
		"BenchmarkPipeline/group/batch=8":  true,
		"BenchmarkPipeline/group/batch=64": true,
	}
	allocFailed := 0
	allocCompared := 0
	for name, metrics := range results {
		cur, ok := metrics["allocs/op"]
		if !ok || benchDoc == nil || allocNondeterministic[name] {
			continue
		}
		base, ok := lookup(benchDoc, name+".allocs/op")
		if !ok {
			continue
		}
		allocCompared++
		if cur > base**maxAllocRegress && cur > base+1 {
			allocFailed++
			fmt.Printf("ALLOC REGRESSION %s: %.0f -> %.0f allocs/op (>%.2fx growth)\n",
				name, base, cur, *maxAllocRegress)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no comparable throughput metrics between %s and %s", *in, *baseline)
	}
	if failed > 0 {
		return fmt.Errorf("%d throughput metric(s) regressed more than %.1fx", failed, *maxRegress)
	}
	if allocFailed > 0 {
		return fmt.Errorf("%d benchmark(s) grew allocs/op more than %.2fx", allocFailed, *maxAllocRegress)
	}
	fmt.Printf("throughput within %.1fx of baseline (%d metrics compared)\n", *maxRegress, compared)
	fmt.Printf("allocations within %.2fx of baseline (%d benchmarks compared)\n", *maxAllocRegress, allocCompared)
	return nil
}
