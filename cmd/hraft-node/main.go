// Command hraft-node runs a single Fast Raft site over UDP with
// file-backed stable storage — the deployment shape of the paper's
// experiments (one process per EC2 instance, UDP sockets).
//
// Start a three-node group on one machine:
//
//	hraft-node -id n1 -listen 127.0.0.1:7101 -peers n1=127.0.0.1:7101,n2=127.0.0.1:7102,n3=127.0.0.1:7103 -wal /tmp/n1.wal
//	hraft-node -id n2 -listen 127.0.0.1:7102 -peers ...            -wal /tmp/n2.wal
//	hraft-node -id n3 -listen 127.0.0.1:7103 -peers ...            -wal /tmp/n3.wal
//
// Lines typed on stdin are proposed to the group; committed entries are
// printed as they apply. A node started with -join sends a join request
// instead of bootstrapping membership from -peers. Use -loss to inject
// message loss like the paper's tc experiments.
//
// With -groups the process runs many consensus groups multiplexed over the
// same UDP endpoint and (with -wal) one shared group-commit WAL directory:
//
//	hraft-node -id p1 -listen 127.0.0.1:7101 -peers p1=...,p2=...,p3=... \
//	    -groups g-a,g-m -range g-m=m -wal /tmp/p1.wal -wal-group-commit
//
// -groups names the groups; -range assigns each group its inclusive key
// lower bound (unlisted groups own the bottom of the keyspace). Stdin
// lines route by key: "key=value" proposes the line in the group owning
// "key", "? key" reads it linearizably ("?l" lease, "?s" stale, "?f"
// follower-local), and "!split daughter pivot" / "!merge group" /
// "!transfer group target" / "!ranges" drive the shard lifecycle.
//
// With -debug-addr the node serves its full observability surface on one
// mux: Prometheus metrics at /metrics, a JSON status snapshot (role, term,
// peer progress, lease, trace tail) at /debug/hraft/status, the formatted
// flight-recorder ring at /debug/hraft/trace (?format=json for the shape
// hraft-audit replays), the online safety auditor's report at
// /debug/hraft/audit, and net/http/pprof under /debug/pprof/. Adding
// -debug-peers (id=host:port pairs naming the other nodes' debug servers)
// also serves /debug/hraft/cluster: every node's status fetched and
// aggregated into leader agreement, commit spread and per-node lag.
// Sending SIGQUIT (ctrl-\) prints the trace tail to stderr without
// stopping the node.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	hraft "github.com/hraft-io/hraft"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hraft-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.String("id", "", "node ID (required)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		peers    = flag.String("peers", "", "comma-separated id=addr pairs (including this node)")
		join     = flag.Bool("join", false, "join an existing group instead of bootstrapping")
		walPath  = flag.String("wal", "", "write-ahead log path (default: in-memory)")
		walGC    = flag.Bool("wal-group-commit", false, "batch concurrent WAL writes into one fsync; acks wait for durability")
		walWin   = flag.Duration("wal-sync-window", 0, "max time a write waits for its fsync batch (0 = 2ms default, negative = eager)")
		walSyncB = flag.Int("wal-sync-bytes", 0, "flush the fsync batch early past this many buffered bytes (0 = 256 KiB default)")
		walSegB  = flag.Int("wal-segment-bytes", 0, "seal WAL segments past this size (0 = 4 MiB default)")
		applyQ   = flag.Int("apply-queue", 0, "commit→apply pipeline depth in output batches (0 = 256 default)")
		loss     = flag.Float64("loss", 0, "injected send-side message loss probability [0,1)")
		hb       = flag.Duration("heartbeat", 100*time.Millisecond, "leader heartbeat interval")
		snapN    = flag.Int("snapshot-threshold", 0, "compact the log every N committed entries (0 = never)")
		chunk    = flag.Int("snapshot-chunk", 0, "stream snapshot transfers in chunks of at most this many bytes (0 = one message)")
		maxInfl  = flag.Int("max-inflight-bytes", 0, "per-follower byte budget for outstanding AppendEntries payloads (0 = 1 MiB default)")
		metrics  = flag.String("metrics", "", "serve Prometheus text metrics at this addr (e.g. 127.0.0.1:9090; empty = off)")
		dbgAddr  = flag.String("debug-addr", "", "serve metrics, /debug/hraft/status and pprof at this addr (empty = off; implies -trace)")
		dbgPeer  = flag.String("debug-peers", "", "comma-separated id=host:port pairs naming the other nodes' -debug-addr servers; enables the /debug/hraft/cluster roll-up")
		doTrace  = flag.Bool("trace", false, "enable the protocol flight recorder (SIGQUIT prints the trace tail)")
		sampleN  = flag.Int("trace-sample", 0, "mint a wire-propagated trace ID for every Nth proposal/read originating here (0 = off; implies -trace)")
		slowOp   = flag.Duration("slow-op", 0, "log proposals whose commit takes longer than this (0 = off; implies -trace)")
		quiet    = flag.Bool("quiet", false, "suppress per-commit output")
		groupsF  = flag.String("groups", "", "comma-separated group IDs: run a sharded node multiplexing these groups (empty = single group)")
		rangesF  = flag.String("range", "", "comma-separated gid=start pairs assigning each group its inclusive key lower bound (unlisted groups start at the bottom)")
	)
	flag.Parse()
	if *id == "" {
		return fmt.Errorf("-id is required")
	}

	tr, err := hraft.ListenUDP(hraft.NodeID(*id), *listen)
	if err != nil {
		return err
	}
	fmt.Printf("node %s listening on %s\n", *id, tr.LocalAddr())
	tr.SetLoss(*loss)

	var members []hraft.NodeID
	for _, pair := range strings.Split(*peers, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("bad peer %q (want id=addr)", pair)
		}
		if name != *id {
			if err := tr.AddPeer(hraft.NodeID(name), addr); err != nil {
				return err
			}
		}
		members = append(members, hraft.NodeID(name))
	}

	if *groupsF != "" {
		if *join {
			return fmt.Errorf("-join is not supported with -groups")
		}
		return runShard(shardParams{
			id: hraft.NodeID(*id), tr: tr, members: members,
			groups: *groupsF, ranges: *rangesF,
			walPath: *walPath,
			walOpts: hraft.WALOptions{
				GroupCommit:  *walGC,
				SyncWindow:   *walWin,
				SyncBytes:    *walSyncB,
				SegmentBytes: *walSegB,
			},
			applyQ: *applyQ, hb: *hb, snapN: *snapN, chunk: *chunk,
			metrics: *metrics, dbgAddr: *dbgAddr, dbgPeer: *dbgPeer,
			doTrace: *doTrace || *dbgAddr != "" || *slowOp > 0 || *sampleN > 0,
			slowOp:  *slowOp, sampleN: *sampleN,
			quiet: *quiet,
		})
	}

	store := hraft.NewMemoryStorage()
	if *walPath != "" {
		store, err = hraft.OpenWALOptions(*walPath, hraft.WALOptions{
			GroupCommit:  *walGC,
			SyncWindow:   *walWin,
			SyncBytes:    *walSyncB,
			SegmentBytes: *walSegB,
		})
		if err != nil {
			return err
		}
	}

	bootstrap := members
	if *join {
		bootstrap = nil
	}
	// With -snapshot-threshold the node keeps a line log as its state
	// machine and compacts consensus state through it: the snapshot is the
	// applied lines, so a restarted node reprints state from the snapshot
	// instead of replaying the full history.
	var lines *lineLog
	var snapshotter hraft.Snapshotter
	if *snapN > 0 {
		lines = newLineLog()
		snapshotter = lines
	}
	var traceOpts *hraft.TraceOptions
	if *doTrace || *dbgAddr != "" || *slowOp > 0 || *sampleN > 0 {
		traceOpts = &hraft.TraceOptions{SlowOp: *slowOp, SampleRate: *sampleN}
	}
	node, err := hraft.NewNode(hraft.Options{
		ID:                hraft.NodeID(*id),
		Peers:             bootstrap,
		Transport:         tr,
		Storage:           store,
		HeartbeatInterval: *hb,
		SnapshotThreshold: *snapN,
		Snapshotter:       snapshotter,
		MaxSnapshotChunk:  *chunk,
		MaxInflightBytes:  *maxInfl,
		ApplyQueueSize:    *applyQ,
		Trace:             traceOpts,
	})
	if err != nil {
		return err
	}
	defer node.Stop()
	if *metrics != "" {
		maddr, stopMetrics, merr := hraft.ServeMetrics(*metrics, *id, node)
		if merr != nil {
			return merr
		}
		defer stopMetrics()
		fmt.Printf("metrics at http://%s/metrics\n", maddr)
	}
	if *dbgAddr != "" {
		var dbgOpts []hraft.DebugOption
		if *dbgPeer != "" {
			peerDbg := make(map[string]string)
			for _, pair := range strings.Split(*dbgPeer, ",") {
				pair = strings.TrimSpace(pair)
				if pair == "" {
					continue
				}
				name, addr, ok := strings.Cut(pair, "=")
				if !ok {
					return fmt.Errorf("bad debug peer %q (want id=host:port)", pair)
				}
				peerDbg[name] = addr
			}
			dbgOpts = append(dbgOpts, hraft.WithPeers(peerDbg))
		}
		daddr, stopDebug, derr := hraft.ServeDebug(*dbgAddr, *id, node, dbgOpts...)
		if derr != nil {
			return derr
		}
		defer stopDebug()
		fmt.Printf("debug at http://%s/debug/hraft/status (metrics, trace, audit and pprof alongside)\n", daddr)
	}
	if traceOpts != nil {
		// SIGQUIT (ctrl-\) dumps the flight-recorder tail without killing
		// the node: the post-mortem that works mid-flight.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGQUIT)
		go func() {
			for range sigc {
				tail := node.Recorder().Tail(64)
				fmt.Fprintf(os.Stderr, "--- flight recorder tail (%d events) ---\n%s",
					len(tail), hraft.FormatTrace(tail))
			}
		}()
	}
	if lines != nil {
		if restored := lines.size(); restored > 0 {
			fmt.Printf("[restored] %d lines from snapshot (log starts at %d)\n",
				restored, node.FirstIndex())
		}
	}

	go func() {
		for e := range node.Commits() {
			if lines != nil {
				lines.apply(e)
			}
			if *quiet {
				continue
			}
			switch e.Kind {
			case hraft.EntryNormal:
				fmt.Printf("[commit %d] %s\n", e.Index, e.Data)
			case hraft.EntryConfig:
				fmt.Printf("[config %d] members=%v\n", e.Index, e.Config)
			}
		}
	}()

	if *join {
		var contacts []hraft.NodeID
		for _, m := range members {
			if m != hraft.NodeID(*id) {
				contacts = append(contacts, m)
			}
		}
		fmt.Printf("joining via %v ...\n", contacts)
		node.Join(contacts)
	}

	fmt.Println("type a line to propose it; '?' = linearizable read, '?l' = lease read, '?s' = stale read; ctrl-d to exit")
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		start := time.Now()
		if c, isRead := readConsistency(line); isRead {
			// Reads return the linearization index: the state machine is
			// current through it without having written a log entry.
			idx, err := node.ReadWith(ctx, c)
			cancel()
			if err != nil {
				fmt.Printf("read failed: %v\n", err)
				continue
			}
			fmt.Printf("read (%s) linearized at index %d in %v (leader %s, term %d)\n",
				c, idx, time.Since(start).Round(time.Millisecond), node.Leader(), node.Term())
			continue
		}
		idx, err := node.Propose(ctx, []byte(line))
		cancel()
		if err != nil {
			fmt.Printf("propose failed: %v\n", err)
			continue
		}
		fmt.Printf("committed at index %d in %v (leader %s, term %d)\n",
			idx, time.Since(start).Round(time.Millisecond), node.Leader(), node.Term())
	}
	return scanner.Err()
}

// readConsistency maps the interactive read syntax onto a consistency
// mode: "?" linearizable, "?l" lease-based, "?s" stale, "?f"
// follower-local.
func readConsistency(line string) (hraft.ReadConsistency, bool) {
	switch line {
	case "?":
		return hraft.ReadLinearizable, true
	case "?l":
		return hraft.ReadLeaseBased, true
	case "?s":
		return hraft.ReadStale, true
	case "?f":
		return hraft.ReadFollowerLocal, true
	default:
		return 0, false
	}
}

// shardParams carries the parsed flags into the sharded-node path.
type shardParams struct {
	id      hraft.NodeID
	tr      *hraft.UDPTransport
	members []hraft.NodeID
	groups  string
	ranges  string
	walPath string
	walOpts hraft.WALOptions
	applyQ  int
	hb      time.Duration
	snapN   int
	chunk   int
	metrics string
	dbgAddr string
	dbgPeer string
	doTrace bool
	slowOp  time.Duration
	sampleN int
	quiet   bool
}

// parseShardGroups turns -groups/-range into the initial range table. Every
// group named in -range owns the keys from its start; the one group left
// unlisted owns the bottom of the keyspace.
func parseShardGroups(groups, ranges string) ([]hraft.ShardGroup, error) {
	starts := make(map[string]string)
	for _, pair := range strings.Split(ranges, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		gid, start, ok := strings.Cut(pair, "=")
		if !ok || gid == "" || start == "" {
			return nil, fmt.Errorf("bad -range entry %q (want gid=start)", pair)
		}
		if _, dup := starts[gid]; dup {
			return nil, fmt.Errorf("group %q listed twice in -range", gid)
		}
		starts[gid] = start
	}
	var specs []hraft.ShardGroup
	seen := make(map[string]bool)
	for _, gid := range strings.Split(groups, ",") {
		gid = strings.TrimSpace(gid)
		if gid == "" {
			continue
		}
		if seen[gid] {
			return nil, fmt.Errorf("group %q listed twice in -groups", gid)
		}
		seen[gid] = true
		specs = append(specs, hraft.ShardGroup{ID: hraft.GroupID(gid), Start: starts[gid]})
		delete(starts, gid)
	}
	if len(starts) > 0 {
		for gid := range starts {
			return nil, fmt.Errorf("-range names group %q missing from -groups", gid)
		}
	}
	return specs, nil
}

// parseDebugPeers turns -debug-peers into the id -> host:port map.
func parseDebugPeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad debug peer %q (want id=host:port)", pair)
		}
		peers[name] = addr
	}
	return peers, nil
}

// runShard runs the process as a sharded node: many consensus groups over
// the one UDP endpoint, lines routed to groups by key.
func runShard(p shardParams) error {
	specs, err := parseShardGroups(p.groups, p.ranges)
	if err != nil {
		return err
	}
	opts := hraft.ShardOptions{
		ID:                p.id,
		Peers:             p.members,
		Groups:            specs,
		Transport:         p.tr,
		HeartbeatInterval: p.hb,
		SnapshotThreshold: p.snapN,
		MaxSnapshotChunk:  p.chunk,
		ApplyQueueSize:    p.applyQ,
	}
	if p.walPath != "" {
		stores, meta, werr := hraft.OpenShardWAL(p.walPath, p.walOpts)
		if werr != nil {
			return werr
		}
		opts.Storage = stores
		opts.Meta = meta
	}
	if p.doTrace {
		opts.Trace = &hraft.TraceOptions{SlowOp: p.slowOp, SampleRate: p.sampleN}
	}
	node, err := hraft.NewShardNode(opts)
	if err != nil {
		return err
	}
	defer node.Stop()
	fmt.Printf("sharded node %s: %d groups\n", p.id, len(specs))
	for _, r := range node.Ranges() {
		fmt.Printf("  [%q, ...) -> %s\n", r.Start, r.Group)
	}
	if p.metrics != "" {
		maddr, stopMetrics, merr := hraft.ServeMetrics(p.metrics, string(p.id), node)
		if merr != nil {
			return merr
		}
		defer stopMetrics()
		fmt.Printf("metrics at http://%s/metrics\n", maddr)
	}
	if p.dbgAddr != "" {
		var dbgOpts []hraft.DebugOption
		if p.dbgPeer != "" {
			peerDbg, perr := parseDebugPeers(p.dbgPeer)
			if perr != nil {
				return perr
			}
			dbgOpts = append(dbgOpts, hraft.WithPeers(peerDbg))
		}
		daddr, stopDebug, derr := hraft.ServeDebug(p.dbgAddr, string(p.id), node, dbgOpts...)
		if derr != nil {
			return derr
		}
		defer stopDebug()
		fmt.Printf("debug at http://%s/debug/hraft/shards (status, metrics, trace, audit and pprof alongside)\n", daddr)
	}

	go func() {
		for c := range node.Commits() {
			if p.quiet {
				continue
			}
			switch c.Entry.Kind {
			case hraft.EntryNormal:
				fmt.Printf("[%s commit %d] %s\n", c.Group, c.Entry.Index, c.Entry.Data)
			case hraft.EntryConfig:
				fmt.Printf("[%s config %d] members=%v\n", c.Group, c.Entry.Index, c.Entry.Config)
			}
		}
	}()

	fmt.Println(`lines route by key ("key=value" routes by key); "? key" = linearizable read, "?l"/"?s"/"?f" = lease/stale/follower-local; "!split daughter pivot", "!merge group", "!transfer group target", "!ranges"; ctrl-d to exit`)
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		start := time.Now()
		shardCommand(ctx, node, line, start)
		cancel()
	}
	return scanner.Err()
}

// shardCommand executes one interactive line against a sharded node.
func shardCommand(ctx context.Context, node *hraft.ShardNode, line string, start time.Time) {
	fields := strings.Fields(line)
	if c, isRead := readConsistency(fields[0]); isRead {
		if len(fields) != 2 {
			fmt.Printf("usage: %s <key>\n", fields[0])
			return
		}
		key := fields[1]
		idx, err := node.ReadWith(ctx, key, c)
		if err != nil {
			fmt.Printf("read failed: %v\n", err)
			return
		}
		fmt.Printf("read (%s) %s linearized at %s index %d in %v\n",
			c, key, node.Route(key), idx, time.Since(start).Round(time.Millisecond))
		return
	}
	switch fields[0] {
	case "!ranges":
		for _, r := range node.Ranges() {
			fmt.Printf("  [%q, ...) -> %s\n", r.Start, r.Group)
		}
		return
	case "!split":
		if len(fields) != 3 {
			fmt.Println("usage: !split <daughter> <pivot>")
			return
		}
		idx, err := node.Split(ctx, hraft.GroupID(fields[1]), fields[2])
		if err != nil {
			fmt.Printf("split failed: %v\n", err)
			return
		}
		fmt.Printf("split committed at index %d: keys >= %q now route to %s\n", idx, fields[2], fields[1])
		return
	case "!merge":
		if len(fields) != 2 {
			fmt.Println("usage: !merge <group>")
			return
		}
		idx, err := node.Merge(ctx, hraft.GroupID(fields[1]))
		if err != nil {
			fmt.Printf("merge failed: %v\n", err)
			return
		}
		fmt.Printf("merge committed at index %d: %s folded into its left neighbor\n", idx, fields[1])
		return
	case "!transfer":
		if len(fields) != 3 {
			fmt.Println("usage: !transfer <group> <target>")
			return
		}
		if !node.TransferLeader(hraft.GroupID(fields[1]), hraft.NodeID(fields[2])) {
			fmt.Printf("transfer refused: this process does not lead %s, or %s is not a member\n", fields[1], fields[2])
			return
		}
		fmt.Printf("leadership of %s moving to %s\n", fields[1], fields[2])
		return
	}
	// A proposal: route by the part before '=' (the whole line otherwise).
	key := line
	if k, _, ok := strings.Cut(line, "="); ok {
		key = k
	}
	idx, err := node.Propose(ctx, key, []byte(line))
	if err != nil {
		fmt.Printf("propose failed: %v\n", err)
		return
	}
	fmt.Printf("committed in %s at index %d in %v\n",
		node.Route(key), idx, time.Since(start).Round(time.Millisecond))
}

// lineLog is the node's state machine when snapshotting is enabled: the
// multiset of committed lines, serialized newline-separated.
type lineLog struct {
	mu      sync.Mutex
	lines   []string
	count   int
	applied hraft.Index
}

func newLineLog() *lineLog { return &lineLog{} }

func (l *lineLog) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.applied == 0 {
		return 0
	}
	return l.count
}

func (l *lineLog) apply(e hraft.Entry) {
	if e.Kind != hraft.EntryNormal {
		return
	}
	l.mu.Lock()
	if e.Index > l.applied {
		l.lines = append(l.lines, string(e.Data))
		l.count++
		l.applied = e.Index
	}
	l.mu.Unlock()
}

// Snapshot implements hraft.Snapshotter.
func (l *lineLog) Snapshot() ([]byte, hraft.Index, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return []byte(strings.Join(l.lines, "\n")), l.applied, nil
}

// Restore implements hraft.Snapshotter.
func (l *lineLog) Restore(snap hraft.Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = nil
	if len(snap.Data) > 0 {
		l.lines = strings.Split(string(snap.Data), "\n")
	}
	l.count = len(l.lines)
	l.applied = snap.Meta.LastIndex
	return nil
}
