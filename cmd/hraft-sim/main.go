// Command hraft-sim runs scripted fault scenarios on the deterministic
// simulator and prints an event timeline — a workbench for studying Fast
// Raft's behaviour under churn, partitions and crashes without waiting on
// wall-clock time.
//
// Scenarios:
//
//	leaderloss — commit traffic across repeated leader crashes + restarts
//	churn      — sites join, leave and silently vanish under load
//	partition  — a minority partition forms and heals
//	lossy      — sustained commit traffic at high message loss
//
// Example:
//
//	hraft-sim -scenario churn -seed 7 -duration 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hraft-io/hraft/internal/harness"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

func main() {
	var (
		scenario = flag.String("scenario", "leaderloss", "leaderloss, churn, partition or lossy")
		seed     = flag.Int64("seed", 1, "random seed (runs are reproducible per seed)")
		duration = flag.Duration("duration", 60*time.Second, "virtual time to simulate")
		loss     = flag.Float64("loss", 0.02, "message loss probability")
	)
	flag.Parse()
	if err := run(*scenario, *seed, *duration, *loss); err != nil {
		fmt.Fprintln(os.Stderr, "hraft-sim:", err)
		os.Exit(1)
	}
}

func run(scenario string, seed int64, duration time.Duration, loss float64) error {
	nodes := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	c, err := harness.NewCluster(harness.Options{
		Kind:     harness.KindFastRaft,
		Nodes:    nodes,
		Seed:     seed,
		LossProb: loss,
	})
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Printf("%10s | ", c.Sched.Now().Round(time.Millisecond))
		fmt.Printf(format+"\n", args...)
	}
	if _, ok := c.WaitForLeader(30 * time.Second); !ok {
		return fmt.Errorf("no leader elected")
	}
	leader, _ := c.Leader()
	logf("leader elected: %s (term %d)", leader.ID(), leader.Machine().Term())

	p, err := c.StartProposer(harness.ProposerOptions{Node: "n2", StopAfter: c.Sched.Now() + duration})
	if err != nil {
		return err
	}

	switch scenario {
	case "leaderloss":
		scheduleLeaderCrashes(c, logf, duration)
	case "churn":
		scheduleChurn(c, logf, duration)
	case "partition":
		schedulePartition(c, logf, nodes, duration)
	case "lossy":
		// Nothing extra: the -loss flag does the damage.
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	end := c.Sched.Now() + duration
	c.RunUntil(func() bool { return false }, end)

	fmt.Println("--- timeline ---")
	c.Timeline.Print(os.Stdout)
	fmt.Println("--- summary ---")
	logf("scenario complete: %d proposals committed", p.Completed)
	logf("latency: %s", stats.Summarize(p.Series.Values()))
	st := c.Net.Stats()
	logf("network: sent=%d delivered=%d dropped=%d cut=%d", st.Sent, st.Delivered, st.Dropped, st.Cut)
	if err := c.Safety.Err(); err != nil {
		return fmt.Errorf("SAFETY VIOLATION: %w", err)
	}
	logf("safety: no conflicting commits, at most one leader per term ✓")
	return nil
}

func scheduleLeaderCrashes(c *harness.Cluster, logf func(string, ...any), d time.Duration) {
	var crashed types.NodeID
	period := d / 4
	for i := 1; i <= 3; i++ {
		at := c.Sched.Now() + time.Duration(i)*period
		c.Sched.At(at, func() {
			if crashed != types.None {
				if err := c.Restart(crashed); err == nil {
					logf("restarted %s", crashed)
				}
				crashed = types.None
			}
			if h, ok := c.Leader(); ok && h.ID() != "n2" {
				crashed = h.ID()
				c.Crash(crashed)
				logf("crashed leader %s", crashed)
			}
		})
	}
}

func scheduleChurn(c *harness.Cluster, logf func(string, ...any), d time.Duration) {
	c.Sched.At(c.Sched.Now()+d/5, func() {
		if _, err := c.AddNode("n6", []types.NodeID{"n1", "n3"}); err == nil {
			logf("n6 requests to join")
		}
	})
	c.Sched.At(c.Sched.Now()+2*d/5, func() {
		if err := c.Leave("n4"); err == nil {
			logf("n4 announces a graceful leave")
		}
	})
	c.Sched.At(c.Sched.Now()+3*d/5, func() {
		c.Crash("n5")
		logf("n5 leaves silently")
	})
	c.Sched.At(c.Sched.Now()+4*d/5, func() {
		if h, ok := c.Leader(); ok {
			logf("membership now %v", h.Machine().Config())
		}
	})
}

func schedulePartition(c *harness.Cluster, logf func(string, ...any), nodes []types.NodeID, d time.Duration) {
	minority := nodes[:2]
	majority := nodes[2:]
	c.Sched.At(c.Sched.Now()+d/4, func() {
		c.Net.Partition(minority, majority)
		logf("partition: %v | %v", minority, majority)
	})
	c.Sched.At(c.Sched.Now()+3*d/4, func() {
		c.Net.Heal()
		logf("partition healed")
	})
}
