// Command hraft-top is a live cluster console: it polls every listed
// peer's /debug/hraft/top endpoint and renders one refreshing table of
// per-group consensus state and sliding-window load — leader, term,
// commit lag, proposal rate, p50/p99 latency, fsync batch effectiveness.
//
//	hraft-top -peer n1=host1:7070 -peer n2=host2:7070 -peer n3=host3:7070
//	hraft-top -peer host1:7070 -once                  # single snapshot
//
// Each -peer is "id=base-url" or a bare base URL (the node names itself
// in the response). The screen redraws every -interval (default 2s);
// unreachable peers are reported inline and retried on the next poll.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	hraft "github.com/hraft-io/hraft"
)

// peerList collects repeatable -peer flags.
type peerList []string

func (p *peerList) String() string     { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var peers peerList
	flag.Var(&peers, "peer", `peer debug address, "id=host:port" or "host:port" (repeatable)`)
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	timeout := flag.Duration("timeout", 2*time.Second, "per-peer fetch timeout")
	once := flag.Bool("once", false, "print one snapshot and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hraft-top -peer [id=]host:port ... [-interval 2s] [-once]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if len(peers) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	client := &http.Client{Timeout: *timeout}
	for {
		rows, errs := poll(client, peers)
		if *once {
			fmt.Print(render(rows, errs, time.Now()))
			if len(rows) == 0 {
				os.Exit(1)
			}
			return
		}
		// ANSI home+clear keeps the table in place between refreshes.
		fmt.Print("\x1b[H\x1b[2J" + render(rows, errs, time.Now()))
		time.Sleep(*interval)
	}
}

// row is one consensus group on one node, flattened for the table.
type row struct {
	node  string
	top   hraft.DebugTop
	group hraft.DebugTopGroup
}

// poll fetches every peer's DebugTop, returning flattened group rows and
// per-peer fetch errors.
func poll(client *http.Client, peers []string) ([]row, []string) {
	var rows []row
	var errs []string
	for _, p := range peers {
		id, base := p, p
		if i := strings.IndexByte(p, '='); i >= 0 {
			id, base = p[:i], p[i+1:]
		}
		top, err := fetch(client, base)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", id, err))
			continue
		}
		for _, g := range top.Groups {
			rows = append(rows, row{node: top.Node, top: top, group: g})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].group.Group != rows[j].group.Group {
			return rows[i].group.Group < rows[j].group.Group
		}
		return rows[i].node < rows[j].node
	})
	return rows, errs
}

// fetch pulls one peer's /debug/hraft/top document.
func fetch(client *http.Client, base string) (hraft.DebugTop, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/debug/hraft/top"
	var top hraft.DebugTop
	resp, err := client.Get(url)
	if err != nil {
		return top, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return top, fmt.Errorf("status %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		return top, fmt.Errorf("decode: %w", err)
	}
	return top, nil
}

// render formats the cluster table; factored from main so tests drive it
// directly.
func render(rows []row, errs []string, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hraft-top  %s  %d group-rows\n\n", now.Format("15:04:05"), len(rows))
	fmt.Fprintf(&b, "%-12s %-10s %-10s %-10s %6s %9s %6s %9s %9s %9s %7s\n",
		"NODE", "GROUP", "ROLE", "LEADER", "TERM", "COMMIT", "LAG", "RATE/S", "P50", "P99", "FSYNC")
	for _, r := range rows {
		g := r.group
		fsync := "-"
		if r.top.FsyncBatchAvg > 0 {
			fsync = fmt.Sprintf("%.1f", r.top.FsyncBatchAvg)
		}
		fmt.Fprintf(&b, "%-12s %-10s %-10s %-10s %6d %9d %6d %9.1f %9s %9s %7s\n",
			r.node, g.Group, g.Role, g.Leader, g.Term, g.CommitIndex, g.CommitLag,
			g.Proposals.RatePerSec, g.Proposals.P50, g.Proposals.P99, fsync)
	}
	for _, e := range errs {
		fmt.Fprintf(&b, "\nunreachable: %s\n", e)
	}
	return b.String()
}
