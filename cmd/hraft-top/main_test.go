package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hraft "github.com/hraft-io/hraft"
)

func sampleTop(node string) hraft.DebugTop {
	return hraft.DebugTop{
		Node: node,
		Groups: []hraft.DebugTopGroup{{
			Group:       "g0",
			Role:        "leader",
			Term:        3,
			Leader:      node,
			CommitIndex: 41,
			LastIndex:   44,
			CommitLag:   3,
			Proposals: hraft.RollingStats{
				Window:     16 * time.Second,
				Count:      320,
				RatePerSec: 20,
				P50:        2 * time.Millisecond,
				P99:        9 * time.Millisecond,
			},
		}},
		FsyncBatchAvg: 4.5,
	}
}

func TestRenderTable(t *testing.T) {
	top := sampleTop("n1")
	rows := []row{{node: "n1", top: top, group: top.Groups[0]}}
	out := render(rows, []string{"n3: connection refused"}, time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	for _, want := range []string{
		"NODE", "GROUP", "LAG", "RATE/S", "P99", "FSYNC",
		"n1", "g0", "leader", "41", "3", "20.0", "9ms", "4.5",
		"unreachable: n3: connection refused",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
}

func TestPollFlattensAndSortsPeers(t *testing.T) {
	serve := func(top hraft.DebugTop) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/debug/hraft/top" {
				http.NotFound(w, r)
				return
			}
			json.NewEncoder(w).Encode(top)
		}))
	}
	s1 := serve(sampleTop("n2"))
	defer s1.Close()
	s2 := serve(sampleTop("n1"))
	defer s2.Close()

	client := &http.Client{Timeout: time.Second}
	rows, errs := poll(client, []string{
		"n2=" + s1.URL,
		"n1=" + s2.URL,
		"down=127.0.0.1:1", // unreachable peer reported, not fatal
	})
	if len(errs) != 1 || !strings.HasPrefix(errs[0], "down:") {
		t.Fatalf("errs = %v, want one for down", errs)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// Same group, so rows sort by node name.
	if rows[0].node != "n1" || rows[1].node != "n2" {
		t.Fatalf("row order %s,%s; want n1,n2", rows[0].node, rows[1].node)
	}
	if rows[0].group.CommitLag != 3 || rows[0].top.FsyncBatchAvg != 4.5 {
		t.Fatalf("row payload suspect: %+v", rows[0])
	}
}
