// Command hraft-trace assembles wire-propagated causal traces from
// flight-recorder dumps and renders each sampled operation's cross-node
// journey — propose, forward, append, replicate, acks, commit, apply —
// as an indented per-hop latency tree.
//
//	hraft-trace dump1.trace.jsonl dump2.trace.jsonl
//	hraft-trace $HRAFT_TRACE_DIR                    # every dump in a directory
//	hraft-trace -url host1:7070 -url host2:7070    # live debug endpoints
//	curl -s host:7070/debug/hraft/trace?format=json | hraft-trace -
//
// Each argument is a file, a directory (scanned non-recursively for
// *.jsonl and *.json dumps), or "-" for stdin; -url fetches a node's
// /debug/hraft/trace?format=json (repeatable). Accepted formats are the
// JSONL dumps the harness writes, a JSON array of events, and the
// {"node":..., "events":[...]} object the debug endpoint serves. All
// inputs are merged into one time-ordered stream before assembly, so
// dumps from different nodes of one run stitch into single trees.
//
// With -trace <hex-id> only that trace is rendered; -json emits the
// assembled trees as JSON instead of text. Exit status: 0 when at least
// one trace assembled, 1 on usage errors or when no input carries any
// sampled trace context (enable TraceOptions.SampleRate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/hraft-io/hraft/internal/trace"
)

// urlList collects repeatable -url flags.
type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(v string) error { *u = append(*u, v); return nil }

func main() {
	var urls urlList
	flag.Var(&urls, "url", "fetch a live node's /debug/hraft/trace?format=json (repeatable)")
	traceID := flag.String("trace", "", "render only this trace (hex ID)")
	asJSON := flag.Bool("json", false, "emit assembled trees as JSON")
	timeout := flag.Duration("timeout", 2*time.Second, "per-URL fetch timeout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hraft-trace [-url host:port]... [-trace <hex-id>] [-json] [<dump.jsonl|dir|->...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 && len(urls) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	out, err := run(flag.Args(), urls, *traceID, *asJSON, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hraft-trace:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// run loads every source, assembles the merged stream into trace trees
// and renders them; factored from main so tests drive it directly.
func run(args []string, urls []string, traceID string, asJSON bool, timeout time.Duration) (string, error) {
	var streams [][]trace.Event
	for _, arg := range args {
		sources, err := expand(arg)
		if err != nil {
			return "", err
		}
		for _, src := range sources {
			events, err := load(src)
			if err != nil {
				return "", err
			}
			if len(events) > 0 {
				streams = append(streams, events)
			}
		}
	}
	client := &http.Client{Timeout: timeout}
	for _, u := range urls {
		events, err := fetch(client, u)
		if err != nil {
			return "", err
		}
		if len(events) > 0 {
			streams = append(streams, events)
		}
	}
	trees := trace.AssembleTraces(trace.Merge(streams...))
	if traceID != "" {
		id, err := parseTraceID(traceID)
		if err != nil {
			return "", err
		}
		filtered := trees[:0]
		for _, t := range trees {
			if t.ID == id {
				filtered = append(filtered, t)
			}
		}
		trees = filtered
		if len(trees) == 0 {
			return "", fmt.Errorf("no events for trace %016x in any input", id)
		}
	}
	if len(trees) == 0 {
		return "", fmt.Errorf("no sampled trace context in any input (set TraceOptions.SampleRate)")
	}
	if asJSON {
		data, err := json.MarshalIndent(trees, "", "  ")
		if err != nil {
			return "", err
		}
		return string(data) + "\n", nil
	}
	return trace.FormatTrees(trees), nil
}

// parseTraceID accepts the %016x rendering used everywhere (an optional
// 0x prefix is tolerated).
func parseTraceID(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "0x")
	var id uint64
	if _, err := fmt.Sscanf(s, "%x", &id); err != nil || id == 0 {
		return 0, fmt.Errorf("invalid trace ID %q (expect non-zero hex)", s)
	}
	return id, nil
}

// fetch pulls one live node's ring via its debug endpoint.
func fetch(client *http.Client, base string) ([]trace.Event, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/debug/hraft/trace?format=json"
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	events, err := trace.ParseEvents(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return events, nil
}

// expand resolves one argument into dump sources: "-" stays stdin, a
// directory becomes its *.json/*.jsonl entries, anything else is a file.
func expand(arg string) ([]string, error) {
	if arg == "-" {
		return []string{arg}, nil
	}
	fi, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return []string{arg}, nil
	}
	entries, err := os.ReadDir(arg)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if name := e.Name(); strings.HasSuffix(name, ".jsonl") || strings.HasSuffix(name, ".json") {
			out = append(out, filepath.Join(arg, name))
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no *.json or *.jsonl dumps", arg)
	}
	return out, nil
}

func load(src string) ([]trace.Event, error) {
	var data []byte
	var err error
	if src == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return nil, err
	}
	events, err := trace.ParseEvents(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	return events, nil
}
