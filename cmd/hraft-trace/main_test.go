package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/harness"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// sampledDump runs a 3-node cluster with every proposal sampled, proposes
// once from a follower, and writes each node's ring as a JSONL dump into
// dir — the same per-run artifact layout a $HRAFT_TRACE_DIR collection
// produces.
func sampledDump(t *testing.T, dir string) {
	t.Helper()
	c, err := harness.NewCluster(harness.Options{
		Kind:        harness.KindRaft,
		Nodes:       []types.NodeID{"n1", "n2", "n3"},
		Seed:        21,
		Trace:       true,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	var follower types.NodeID
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		if id != leader {
			follower = id
			break
		}
	}
	pid, err := c.Propose(follower, []byte("dumped-op"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.AwaitResolution(follower, pid, c.Sched.Now()+30*time.Second); !ok {
		t.Fatalf("proposal %s never resolved", pid)
	}
	c.RunFor(2 * time.Second)
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		data, err := trace.FormatJSONL(c.TraceSnapshot(id))
		if err != nil {
			t.Fatalf("encode %s: %v", id, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("%s.trace.jsonl", id))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunRendersClusterDump is the acceptance path: hraft-trace pointed at
// a directory of per-node dumps stitches them into one tree naming every
// node with per-hop latency attribution.
func TestRunRendersClusterDump(t *testing.T) {
	dir := t.TempDir()
	sampledDump(t, dir)
	out, err := run([]string{dir}, nil, "", false, time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out, "trace ") {
		t.Fatalf("unexpected rendering:\n%s", out)
	}
	// The proposal's tree spans all three nodes on one header line.
	if !strings.Contains(out, "nodes=n1,n2,n3") {
		t.Fatalf("no tree spans all 3 nodes:\n%s", out)
	}
	for _, want := range []string{"hop forward", "hop append", "hop replicate", "hop ack", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, out)
		}
	}

	// -trace filters to exactly one tree; an unknown ID is an error.
	id := strings.Fields(out)[1]
	one, err := run([]string{dir}, nil, id, false, time.Second)
	if err != nil {
		t.Fatalf("run -trace %s: %v", id, err)
	}
	if n := strings.Count(one, "trace "); n != 1 {
		t.Fatalf("-trace %s rendered %d trees:\n%s", id, n, one)
	}
	if _, err := run([]string{dir}, nil, "deadbeefdeadbeef", false, time.Second); err == nil {
		t.Fatal("unknown trace ID did not error")
	}

	// -json emits the assembled trees as JSON.
	jsonOut, err := run([]string{dir}, nil, "", true, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut, `"nodes"`) || !strings.Contains(jsonOut, `"root"`) {
		t.Fatalf("JSON output suspect:\n%s", jsonOut)
	}
}

func TestRunRejectsTracelessInput(t *testing.T) {
	dir := t.TempDir()
	// A dump with events but no trace context (sampling off).
	if err := os.WriteFile(filepath.Join(dir, "plain.jsonl"),
		[]byte(`{"seq":1,"at":1000,"node":"n1","type":"role","arg":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := run([]string{dir}, nil, "", false, time.Second)
	if err == nil || !strings.Contains(err.Error(), "SampleRate") {
		t.Fatalf("traceless input error suspect: %v", err)
	}
}

func TestParseTraceID(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"00ab54a98ceb1f0a", 0xab54a98ceb1f0a, true},
		{"0xab54a98ceb1f0a", 0xab54a98ceb1f0a, true},
		{" ab54a98ceb1f0a ", 0xab54a98ceb1f0a, true},
		{"0", 0, false},
		{"not-hex", 0, false},
		{"", 0, false},
	} {
		got, err := parseTraceID(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("parseTraceID(%q) = %x, %v; want %x ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
