package hraft

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/core/craft"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/types"
)

// CRaftOptions configures a C-Raft site.
type CRaftOptions struct {
	// ID is this site's identity (required).
	ID NodeID
	// Cluster is the cluster this site belongs to (required); it is also
	// the cluster's member name at the global level and must be routable
	// by the transport.
	Cluster NodeID
	// ClusterPeers is the cluster's initial local membership.
	ClusterPeers []NodeID
	// GlobalClusters is the initial set of clusters. Leave empty for a
	// cluster that joins the global configuration later via JoinGlobal.
	GlobalClusters []NodeID
	// Transport connects the site (required). It must route messages
	// addressed to the Cluster ID to whichever site currently leads the
	// cluster; the in-process network does this automatically when the
	// leading site's endpoint is registered under the cluster ID via
	// RegisterClusterEndpoint.
	Transport Transport
	// Storage is the local log's stable storage (default: in-memory).
	Storage Storage
	// BatchSize is entries per global batch (default 10).
	BatchSize int
	// BatchDelay flushes partial batches after this long (0 = off).
	BatchDelay time.Duration
	// LocalHeartbeat is the intra-cluster tick period (default 100 ms).
	LocalHeartbeat time.Duration
	// GlobalHeartbeat is the inter-cluster tick period (default 500 ms).
	GlobalHeartbeat time.Duration
	// SnapshotThreshold enables local-log compaction: the site snapshots
	// its replayed inter-cluster state once this many local entries commit
	// beyond the last snapshot, bounding local log growth (0 = disabled).
	SnapshotThreshold int
	// Snapshotter, when set, folds the embedding application's own state
	// into local-log snapshots, so applications that build state from the
	// Commits stream can enable compaction: Snapshot() serializes the
	// applied state (reporting the last applied local index), Restore()
	// replaces it on restart or snapshot installation. Compaction waits
	// until the application has applied everything the snapshot would
	// cover.
	Snapshotter Snapshotter
	// MaxEntriesPerAppend caps AppendEntries payloads at both consensus
	// levels (0 = unlimited).
	MaxEntriesPerAppend int
	// MaxInflightAppends bounds outstanding AppendEntries messages per
	// peer at both consensus levels (0 = a small default). Secondary to
	// MaxInflightBytes.
	MaxInflightAppends int
	// MaxInflightBytes bounds the encoded entry bytes outstanding per peer
	// at both consensus levels (0 = 1 MiB): the primary append window,
	// sized at encode time.
	MaxInflightBytes int
	// MaxSnapshotChunk streams local-log snapshot transfers in chunks of
	// at most this many payload bytes (0 = whole snapshot in one message).
	MaxSnapshotChunk int
	// MaxInflightProposalBytes bounds the encoded payload bytes of this
	// site's broadcast-but-unresolved intra-cluster proposals (0 =
	// unlimited); see Options.MaxInflightProposalBytes.
	MaxInflightProposalBytes int
	// MaxInflightBatches caps this cluster's unresolved global batch
	// proposals (0 = unlimited): batching pauses until earlier batches
	// resolve, so a fast cluster cannot flood the slower global level.
	MaxInflightBatches int
	// SessionTTL expires idle client sessions (OpenSession) at the
	// intra-cluster level (0 = no expiry).
	SessionTTL time.Duration
	// Seed drives randomized timeouts (0 = time-based).
	Seed int64
	// OnCommit observes locally committed entries.
	OnCommit func(Entry)
	// OnGlobalCommit observes entries committed to the global log (learned
	// through replicated global state, hence locally durable).
	OnGlobalCommit func(Entry)
	// CommitBuffer sizes the commit channels (default 1024).
	CommitBuffer int
	// ApplyQueueSize bounds the commit→apply pipeline in drained output
	// batches (0 = a 256-batch default); see Options.ApplyQueueSize.
	ApplyQueueSize int
	// Trace, when set, enables the protocol flight recorder across both
	// consensus layers: local and global events (elections, appends,
	// snapshot streams, batching, global ordering, replay) share one ring
	// so a site's trace reads as a single narrative. Retrieve with
	// Recorder, serve with ServeDebug. Nil disables recording.
	Trace *TraceOptions
}

// CRaftNode is a C-Raft site running on real time: a Fast Raft member of
// its cluster that, while leading the cluster, also represents it in
// inter-cluster consensus.
type CRaftNode struct {
	host          *runtime.Host
	cn            *craft.Node
	aud           *audit.Auditor
	commits       chan Entry
	globalCommits chan Entry
	proposalWaiters
	readWaiters
}

// NewCRaftNode builds and starts a C-Raft site.
func NewCRaftNode(opts CRaftOptions) (*CRaftNode, error) {
	if opts.ID == types.None || opts.Cluster == types.None {
		return nil, errors.New("hraft: CRaftOptions.ID and Cluster are required")
	}
	if opts.Transport == nil {
		return nil, errors.New("hraft: CRaftOptions.Transport is required")
	}
	if opts.Storage == nil {
		opts.Storage = NewMemoryStorage()
	}
	seed := mixSeed(opts.Seed, opts.ID)
	rec, aud := newRecorder(opts.ID, opts.Trace)
	cn, err := craft.New(craft.Config{
		ID:                       opts.ID,
		Cluster:                  opts.Cluster,
		ClusterBootstrap:         types.NewConfig(opts.ClusterPeers...),
		GlobalBootstrap:          types.NewConfig(opts.GlobalClusters...),
		Storage:                  opts.Storage,
		BatchSize:                opts.BatchSize,
		BatchDelay:               opts.BatchDelay,
		LocalHeartbeat:           opts.LocalHeartbeat,
		GlobalHeartbeat:          opts.GlobalHeartbeat,
		SnapshotThreshold:        opts.SnapshotThreshold,
		AppSnapshotter:           opts.Snapshotter,
		MaxEntriesPerAppend:      opts.MaxEntriesPerAppend,
		MaxInflightAppends:       opts.MaxInflightAppends,
		MaxInflightBytes:         opts.MaxInflightBytes,
		MaxSnapshotChunk:         opts.MaxSnapshotChunk,
		MaxInflightProposalBytes: opts.MaxInflightProposalBytes,
		MaxInflightBatches:       opts.MaxInflightBatches,
		SessionTTL:               opts.SessionTTL,
		Rand:                     rand.New(rand.NewSource(seed)),
		Recorder:                 rec,
	})
	if err != nil {
		return nil, fmt.Errorf("hraft: %w", err)
	}
	buf := opts.CommitBuffer
	if buf <= 0 {
		buf = 1024
	}
	n := &CRaftNode{
		cn:              cn,
		aud:             aud,
		commits:         make(chan Entry, buf),
		globalCommits:   make(chan Entry, buf),
		proposalWaiters: newProposalWaiters(),
		readWaiters:     newReadWaiters(),
	}
	n.host = runtime.NewHost(cn, opts.Transport, runtime.Callbacks{
		OnCommit: func(e Entry) {
			if opts.OnCommit != nil {
				opts.OnCommit(e)
			}
			n.commits <- e
		},
		OnGlobalCommit: func(e Entry) {
			if opts.OnGlobalCommit != nil {
				opts.OnGlobalCommit(e)
			}
			n.globalCommits <- e
		},
		OnResolve:      n.resolve,
		OnReadDone:     n.resolveRead,
		ApplyQueueSize: opts.ApplyQueueSize,
		Recorder:       rec,
	})
	wireDurability(n.host, opts.Storage, rec)
	return n, nil
}

// ID returns the site identity.
func (n *CRaftNode) ID() NodeID { return n.cn.ID() }

// ClusterID returns the cluster identity.
func (n *CRaftNode) ClusterID() NodeID { return n.cn.ClusterID() }

// Role returns the site's local-consensus role.
func (n *CRaftNode) Role() Role {
	var r Role
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { r = n.cn.Role() })
	return r
}

// IsClusterLeader reports whether this site currently leads its cluster
// (and therefore represents it globally).
func (n *CRaftNode) IsClusterLeader() bool {
	var ok bool
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { ok = n.cn.IsGlobalMember() })
	return ok
}

// GlobalCommitIndex returns the highest global-log index this site knows
// committed.
func (n *CRaftNode) GlobalCommitIndex() Index {
	var i Index
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { i = n.cn.GlobalCommitIndex() })
	return i
}

// Commits streams locally committed entries; it must be consumed.
func (n *CRaftNode) Commits() <-chan Entry { return n.commits }

// Metrics returns a snapshot of the site's monotonic counters: the local
// consensus instance's under "local.", the global instance's under
// "global." and batch-layer counters under "craft.".
func (n *CRaftNode) Metrics() map[string]uint64 {
	var m map[string]uint64
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { m = n.cn.Metrics() })
	n.aud.MergeMetrics(m)
	return m
}

// GlobalCommits streams entries committed to the global log; it must be
// consumed.
func (n *CRaftNode) GlobalCommits() <-chan Entry { return n.globalCommits }

// Propose submits an application entry to intra-cluster consensus and
// waits for the local commit (the paper's closed-loop semantics); the
// cluster leader later batches it into the global log. Note that a retry
// after a lost acknowledgment can commit twice; use
// OpenSession/Session.Propose for exactly-once semantics.
func (n *CRaftNode) Propose(ctx context.Context, data []byte) (Index, error) {
	return n.await(ctx, n.host, func(now time.Duration) ProposalID {
		return n.cn.Propose(now, data)
	})
}

// ProposeAsync submits an application entry without waiting.
func (n *CRaftNode) ProposeAsync(data []byte) ProposalID {
	var pid ProposalID
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		pid = n.cn.Propose(now, data)
	})
	return pid
}

// JoinGlobal requests that this cluster join the global configuration (a
// new cluster forming, paper Section V-C). It takes effect once this site
// leads its cluster.
func (n *CRaftNode) JoinGlobal(contacts []NodeID) {
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		n.cn.JoinGlobal(now, contacts)
	})
}

// Stop halts the site (a crash; storage remains for restart).
func (n *CRaftNode) Stop() {
	n.markStopped()
	n.markReadsStopped()
	n.host.Stop()
}

// RegisterClusterEndpoint wires an in-process network so messages
// addressed to a cluster ID reach the given site (call it for the site
// expected to lead, or refresh it after failovers). Deployments with real
// transports solve this with their own routing (e.g. a shared UDP address
// list per cluster).
func RegisterClusterEndpoint(net *InProcNetwork, cluster NodeID, node *CRaftNode) {
	ep := net.Endpoint(cluster)
	ep.SetHandler(func(env Envelope) {
		node.host.Do(func(now time.Duration, m runtime.Machine) {
			m.Step(now, env)
		})
	})
}
