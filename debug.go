package hraft

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/trace"
)

// Flight-recorder tracing and the HTTP debug surface.
//
// With Options.Trace (or CRaftOptions.Trace) set, a node records typed
// protocol events — role transitions, election rounds, per-peer append
// dispatch and acknowledgment, snapshot stream progress, read batches,
// session lifecycle, C-Raft batching hops — into a fixed-size in-memory
// ring, and stamps every proposal's propose→append→replicate→quorum→
// commit→apply stages into hist.stage_* latency histograms (visible in
// Metrics and the Prometheus endpoint). Proposals slower than
// TraceOptions.SlowOp are reported through log/slog with the exact
// proposal, term, index, peer set and per-stage breakdown.
//
// The ring is retrieved with Node.Recorder (TraceRecorder.Snapshot/Tail),
// merged across nodes with MergeTraces, rendered with FormatTrace, and
// served over HTTP with DebugHandler/ServeDebug. A nil recorder disables
// everything: the record paths compile down to a nil check.

// TraceOptions configures the protocol flight recorder (see Options.Trace).
type TraceOptions struct {
	// Size is the event ring capacity (0 = 4096 events, several election
	// cycles of a busy five-node cluster).
	Size int
	// SlowOp, when non-zero, logs any proposal whose propose→apply time
	// meets the threshold, naming the proposal ID, term, commit index,
	// peer set and per-stage latency breakdown.
	SlowOp time.Duration
	// Logger receives slow-op reports (nil = slog.Default()).
	Logger *slog.Logger
	// SampleRate enables wire-propagated causal tracing: every
	// SampleRate-th proposal or read minted on this node gets a TraceID
	// that rides the wire (entries, reads, snapshot chunks) and is
	// recorded as hop events on every node it touches — assemble the
	// cross-node trees with AssembleTraces, /debug/hraft/trace?trace=<id>
	// or cmd/hraft-trace. 0 disables sampling (the default: zero trace
	// bytes on the wire, encode paths unchanged); 1 samples everything.
	SampleRate int
}

// TraceEvent is one recorded protocol event: monotonic sequence number,
// node-clock timestamp, node label, event type and type-specific fields.
type TraceEvent = trace.Event

// TraceRecorder is a node's flight recorder. Snapshot() and Tail(k) copy
// the retained ring (oldest first) and are safe from any goroutine.
type TraceRecorder = trace.Recorder

// newRecorder builds the internal recorder from public options, with the
// streaming safety auditor attached to its event stream (nil options =
// recording disabled = nil recorder and auditor).
func newRecorder(id NodeID, o *TraceOptions) (*trace.Recorder, *audit.Auditor) {
	if o == nil {
		return nil, nil
	}
	rec := trace.New(trace.Config{
		Node:       string(id),
		Size:       o.Size,
		SlowOp:     o.SlowOp,
		Logger:     o.Logger,
		SampleRate: o.SampleRate,
	})
	aud := audit.New(audit.Options{})
	aud.AttachTo(rec)
	return rec, aud
}

// AuditReport is a point-in-time summary of the node's online safety
// auditor: whether any consensus invariant (election safety, committed
// prefix agreement, watermark monotonicity, lease disjointness, session
// exactly-once) was violated, with per-invariant counters and the
// violating event windows. Served as JSON at /debug/hraft/audit; the
// counters also surface in Metrics as audit.violations.<invariant>.
type AuditReport = audit.Report

// AuditViolation is one invariant breach in an AuditReport.
type AuditViolation = audit.Violation

// MergeTraces combines ring snapshots from several nodes into one
// time-ordered sequence (ties broken by node label, then sequence
// number) — the cluster-wide view of an election or failover.
func MergeTraces(snapshots ...[]TraceEvent) []TraceEvent {
	return trace.Merge(snapshots...)
}

// TraceTree is one sampled operation's assembled cross-node journey: the
// causally ordered spans a wire-propagated TraceID left on every node it
// touched (see TraceOptions.SampleRate and AssembleTraces).
type TraceTree = trace.TraceTree

// TraceSpan is one node of a TraceTree: a trace-stamped event plus the
// latency gap since its causal parent.
type TraceSpan = trace.TraceSpan

// AssembleTraces groups merged events by trace ID and builds one causally
// ordered tree per sampled operation — propose, forward, append,
// replicate, acks, commit, apply across every node, with per-hop
// latencies. Feed it MergeTraces output (or a single ring snapshot for a
// one-node view).
func AssembleTraces(events []TraceEvent) []*TraceTree {
	return trace.AssembleTraces(events)
}

// FormatTraceTrees renders assembled traces as indented per-hop latency
// breakdowns, one block per trace.
func FormatTraceTrees(trees []*TraceTree) string { return trace.FormatTrees(trees) }

// RollingStats is a sliding-window rate/latency aggregate over roughly
// the last 16 seconds — the live complement of the cumulative hist.*
// metrics, served per consensus group in DebugTop.
type RollingStats = stats.RollingSnapshot

// FormatTrace renders events one per line: timestamp, node label, event
// type, details.
func FormatTrace(events []TraceEvent) string { return trace.Format(events) }

// DebugPeer is one peer's replication progress in DebugStatus.
type DebugPeer struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Match    uint64 `json:"match"`
	Next     uint64 `json:"next"`
	SRTT     string `json:"srtt,omitempty"`
	Inflight int    `json:"inflight_msgs"`
}

// DebugStatus is the document served as JSON at /debug/hraft/status:
// role, term and leader view, commit progress, the leader's per-peer
// replication state, the read-lease expiry and the newest flight-recorder
// events.
type DebugStatus struct {
	Node        string      `json:"node"`
	Role        string      `json:"role"`
	Term        uint64      `json:"term"`
	Leader      string      `json:"leader,omitempty"`
	CommitIndex uint64      `json:"commit_index"`
	Peers       []DebugPeer `json:"peers,omitempty"`
	// LeaseUntil is the read-lease expiry on the node's monotonic clock
	// (empty = no lease held).
	LeaseUntil string `json:"lease_until,omitempty"`

	// C-Raft only: the global (inter-cluster) layer.
	Cluster           string      `json:"cluster,omitempty"`
	GlobalRole        string      `json:"global_role,omitempty"`
	GlobalTerm        uint64      `json:"global_term,omitempty"`
	GlobalCommitIndex uint64      `json:"global_commit_index,omitempty"`
	GlobalPeers       []DebugPeer `json:"global_peers,omitempty"`

	// Trace is the newest retained flight-recorder events, oldest first
	// (empty when tracing is disabled).
	Trace []TraceEvent `json:"trace,omitempty"`
}

// debugPeers converts internal peer progress to the JSON shape.
func debugPeers(ps []PeerStatus) []DebugPeer {
	out := make([]DebugPeer, 0, len(ps))
	for _, p := range ps {
		dp := DebugPeer{
			ID:       string(p.ID),
			State:    p.State,
			Match:    uint64(p.Match),
			Next:     uint64(p.Next),
			Inflight: p.InflightMsgs,
		}
		if p.SRTT > 0 {
			dp.SRTT = p.SRTT.String()
		}
		out = append(out, dp)
	}
	return out
}

// DebugStatus snapshots the node's debug state; traceTail bounds the
// flight-recorder events included (0 = none).
func (n *Node) DebugStatus(traceTail int) DebugStatus {
	var s DebugStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		s = DebugStatus{
			Node:        string(n.fr.ID()),
			Role:        n.fr.Role().String(),
			Term:        uint64(n.fr.Term()),
			Leader:      string(n.fr.LeaderID()),
			CommitIndex: uint64(n.fr.CommitIndex()),
			Peers:       debugPeers(n.fr.PeerStatus()),
		}
		if lu := n.fr.LeaseUntil(); lu > 0 {
			s.LeaseUntil = lu.String()
		}
	})
	if traceTail > 0 {
		s.Trace = n.fr.Recorder().Tail(traceTail)
	}
	return s
}

// Recorder returns the node's flight recorder (nil unless Options.Trace
// was set). Safe from any goroutine.
func (n *Node) Recorder() *TraceRecorder { return n.fr.Recorder() }

// AuditReport snapshots the node's online safety auditor (trivially clean
// when tracing — and with it auditing — is disabled). Safe from any
// goroutine.
func (n *Node) AuditReport() AuditReport { return n.aud.Snapshot() }

// DebugStatus snapshots the node's debug state; traceTail bounds the
// flight-recorder events included (0 = none).
func (n *RaftNode) DebugStatus(traceTail int) DebugStatus {
	var s DebugStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		s = DebugStatus{
			Node:        string(n.rn.ID()),
			Role:        n.rn.Role().String(),
			Term:        uint64(n.rn.Term()),
			Leader:      string(n.rn.LeaderID()),
			CommitIndex: uint64(n.rn.CommitIndex()),
			Peers:       debugPeers(n.rn.PeerStatus()),
		}
		if lu := n.rn.LeaseUntil(); lu > 0 {
			s.LeaseUntil = lu.String()
		}
	})
	if traceTail > 0 {
		s.Trace = n.rn.Recorder().Tail(traceTail)
	}
	return s
}

// Recorder returns the node's flight recorder (nil unless Options.Trace
// was set). Safe from any goroutine.
func (n *RaftNode) Recorder() *TraceRecorder { return n.rn.Recorder() }

// AuditReport snapshots the node's online safety auditor (trivially clean
// when tracing — and with it auditing — is disabled). Safe from any
// goroutine.
func (n *RaftNode) AuditReport() AuditReport { return n.aud.Snapshot() }

// DebugStatus snapshots the site's debug state across both consensus
// layers; traceTail bounds the flight-recorder events included (0 =
// none). The trace interleaves local and global events (the layers share
// one ring).
func (n *CRaftNode) DebugStatus(traceTail int) DebugStatus {
	var s DebugStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		s = DebugStatus{
			Node:        string(n.cn.ID()),
			Cluster:     string(n.cn.ClusterID()),
			Role:        n.cn.Role().String(),
			Term:        uint64(n.cn.Term()),
			Leader:      string(n.cn.LeaderID()),
			CommitIndex: uint64(n.cn.CommitIndex()),
			Peers:       debugPeers(n.cn.PeerStatus()),
		}
		if lu := n.cn.LeaseUntil(); lu > 0 {
			s.LeaseUntil = lu.String()
		}
		if n.cn.IsGlobalMember() {
			s.GlobalRole = n.cn.GlobalRole().String()
			s.GlobalPeers = debugPeers(n.cn.GlobalPeerStatus())
		}
		s.GlobalTerm = uint64(n.cn.GlobalTerm())
		s.GlobalCommitIndex = uint64(n.cn.GlobalCommitIndex())
	})
	if traceTail > 0 {
		s.Trace = n.cn.Recorder().Tail(traceTail)
	}
	return s
}

// Recorder returns the site's flight recorder (nil unless
// CRaftOptions.Trace was set). Safe from any goroutine.
func (n *CRaftNode) Recorder() *TraceRecorder { return n.cn.Recorder() }

// AuditReport snapshots the site's online safety auditor, which watches
// both consensus layers (trivially clean when tracing — and with it
// auditing — is disabled). Safe from any goroutine.
func (n *CRaftNode) AuditReport() AuditReport { return n.aud.Snapshot() }

// StatusSource is anything serving a DebugStatus; Node, RaftNode and
// CRaftNode all qualify.
type StatusSource interface {
	// DebugStatus snapshots the node's debug state with up to traceTail
	// flight-recorder events.
	DebugStatus(traceTail int) DebugStatus
}

// defaultTraceTail is the status endpoint's default ?trace= value.
const defaultTraceTail = 64

// DebugOption customizes the debug surface built by DebugHandler,
// NewDebugMux and ServeDebug.
type DebugOption func(*debugConfig)

type debugConfig struct {
	peers   map[string]string
	timeout time.Duration
}

// WithPeers enables the /debug/hraft/cluster endpoint: a cluster-wide
// status roll-up assembled by fetching every listed peer's
// /debug/hraft/status. Keys are node IDs, values the base URL of that
// peer's debug server ("host:port" or "http://host:port" — the
// /debug/hraft path is appended). The serving node's own status is
// always included; list only the other nodes.
func WithPeers(peers map[string]string) DebugOption {
	return func(c *debugConfig) { c.peers = peers }
}

// WithPeerTimeout bounds each peer status fetch for
// /debug/hraft/cluster (default 2s). Unreachable peers are reported,
// not fatal.
func WithPeerTimeout(d time.Duration) DebugOption {
	return func(c *debugConfig) { c.timeout = d }
}

// DebugHandler returns an http.Handler exposing a node's debug surface:
//
//	/debug/hraft/status   consensus state as DebugStatus JSON; ?trace=N
//	                      sets the flight-recorder tail length (default
//	                      64, 0 disables)
//	/debug/hraft/trace    the full retained flight-recorder ring as text
//	                      (one event per line, oldest first);
//	                      ?format=json serves the machine-readable shape
//	                      hraft-audit replays
//	/debug/hraft/audit    the online safety auditor's report as JSON
//	                      (AuditReport)
//	/debug/hraft/shards   sharded nodes only: every live group's range,
//	                      role, term and commit progress (GroupStatus)
//	/debug/hraft/cluster  with WithPeers: every peer's status fetched and
//	                      aggregated — leader agreement, commit spread,
//	                      per-peer lag (DebugCluster)
//	/debug/pprof/...      the standard Go runtime profiles
//
// Mount it next to MetricsHandler (or use ServeDebug, which mounts both).
func DebugHandler(src StatusSource, opts ...DebugOption) http.Handler {
	cfg := debugConfig{timeout: 2 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/hraft/status", func(w http.ResponseWriter, r *http.Request) {
		tail := defaultTraceTail
		if v := r.URL.Query().Get("trace"); v != "" {
			t, err := strconv.Atoi(v)
			if err != nil || t < 0 {
				http.Error(w, "trace must be a non-negative integer", http.StatusBadRequest)
				return
			}
			tail = t
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(src.DebugStatus(tail))
	})
	mux.HandleFunc("/debug/hraft/trace", func(w http.ResponseWriter, r *http.Request) {
		var rec *TraceRecorder
		if rs, ok := src.(interface{ Recorder() *TraceRecorder }); ok {
			rec = rs.Recorder()
		}
		if v := r.URL.Query().Get("trace"); v != "" {
			// One sampled trace, assembled into its causal tree.
			id, err := strconv.ParseUint(v, 16, 64)
			if err != nil || id == 0 {
				http.Error(w, "trace must be a non-zero hex trace ID", http.StatusBadRequest)
				return
			}
			for _, t := range AssembleTraces(rec.Snapshot()) {
				if t.ID == id {
					w.Header().Set("Content-Type", "application/json")
					enc := json.NewEncoder(w)
					enc.SetIndent("", "  ")
					_ = enc.Encode(t)
					return
				}
			}
			http.Error(w, "no events for that trace ID in the retained ring", http.StatusNotFound)
			return
		}
		if v := r.URL.Query().Get("since"); v != "" {
			// Incremental cursor: events with Seq >= since, plus how many
			// the ring overwrote past the cursor. Pollers resume at next.
			since, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "since must be a non-negative integer sequence number", http.StatusBadRequest)
				return
			}
			events, dropped := rec.SnapshotSince(since)
			next := since + dropped + uint64(len(events))
			if events == nil {
				events = []TraceEvent{}
			}
			doc := struct {
				Node    string       `json:"node"`
				Since   uint64       `json:"since"`
				Next    uint64       `json:"next"`
				Dropped uint64       `json:"dropped"`
				Events  []TraceEvent `json:"events"`
			}{rec.Label(), since, next, dropped, events}
			data, err := json.Marshal(doc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
			return
		}
		events := rec.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			if events == nil {
				events = []TraceEvent{}
			}
			doc := struct {
				Node   string       `json:"node"`
				Events []TraceEvent `json:"events"`
			}{rec.Label(), events}
			// Compact (single-line) JSON: the wrapper shape
			// trace.ParseEvents — and so hraft-audit — reads back.
			data, err := json.Marshal(doc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(events) == 0 {
			_, _ = w.Write([]byte("(tracing disabled or no events)\n"))
			return
		}
		_, _ = w.Write([]byte(FormatTrace(events)))
	})
	mux.HandleFunc("/debug/hraft/audit", func(w http.ResponseWriter, _ *http.Request) {
		ar, ok := src.(interface{ AuditReport() AuditReport })
		if !ok {
			http.Error(w, "audit report not supported by this node type", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ar.AuditReport())
	})
	mux.HandleFunc("/debug/hraft/shards", func(w http.ResponseWriter, _ *http.Request) {
		ss, ok := src.(interface{ ShardStatus() []GroupStatus })
		if !ok {
			http.Error(w, "not a sharded node", http.StatusNotFound)
			return
		}
		groups := ss.ShardStatus()
		if groups == nil {
			groups = []GroupStatus{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Groups []GroupStatus `json:"groups"`
		}{groups})
	})
	mux.HandleFunc("/debug/hraft/cluster", func(w http.ResponseWriter, _ *http.Request) {
		if len(cfg.peers) == 0 {
			http.Error(w, "no peers configured (start with WithPeers)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(clusterStatus(src, cfg))
	})
	mux.HandleFunc("/debug/hraft/top", func(w http.ResponseWriter, _ *http.Request) {
		ts, ok := src.(interface{ DebugTop() DebugTop })
		if !ok {
			http.Error(w, "live stats not supported by this node type", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ts.DebugTop())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugTopGroup is one consensus group's row in DebugTop: the group's
// consensus view plus its sliding-window proposal aggregates.
type DebugTopGroup struct {
	// Group names the consensus group (empty for single-group nodes).
	Group       string `json:"group,omitempty"`
	Role        string `json:"role"`
	Term        uint64 `json:"term"`
	Leader      string `json:"leader,omitempty"`
	CommitIndex uint64 `json:"commit_index"`
	LastIndex   uint64 `json:"last_index"`
	// CommitLag is LastIndex minus CommitIndex: appended-but-uncommitted
	// depth, the first thing to climb when replication stalls.
	CommitLag uint64 `json:"commit_lag"`
	// Proposals is the group's propose→apply window: rate plus p50/p99
	// over roughly the last 16 seconds.
	Proposals RollingStats `json:"proposals"`
}

// DebugTop is the document served as JSON at /debug/hraft/top: per-group
// live rate/latency aggregates plus process-wide durability stats — the
// one-poll shape cmd/hraft-top renders into a cluster console.
type DebugTop struct {
	Node   string          `json:"node"`
	Groups []DebugTopGroup `json:"groups"`
	// FsyncBatchAvg is the mean records-per-fsync since start (group
	// commit effectiveness; 0 = no fsyncs observed or async storage).
	FsyncBatchAvg float64 `json:"fsync_batch_avg,omitempty"`
	// TraceDropped counts flight-recorder events overwritten past a
	// /debug/hraft/trace?since= poller's cursor (cumulative).
	TraceDropped uint64 `json:"trace_events_dropped,omitempty"`
}

// pickLive selects the group's sliding-window snapshot from a recorder's
// LiveStats map: the exact group key when present, otherwise the busiest
// window (rings shared across derived labels aggregate under one key).
func pickLive(live map[string]RollingStats, group string) RollingStats {
	if s, ok := live[group]; ok {
		return s
	}
	keys := make([]string, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var best RollingStats
	for _, k := range keys {
		if live[k].Count > best.Count {
			best = live[k]
		}
	}
	return best
}

// fillTopMetrics folds the cumulative metrics DebugTop surfaces (fsync
// batch effectiveness, trace-ring drop accounting) into the document.
func fillTopMetrics(t *DebugTop, m map[string]uint64) {
	var sum, count uint64
	for k, v := range m {
		switch {
		case strings.HasSuffix(k, "hist.fsync_batch_size.sum"):
			sum += v
		case strings.HasSuffix(k, "hist.fsync_batch_size.count"):
			count += v
		case strings.HasSuffix(k, "trace.events_dropped"):
			t.TraceDropped += v
		}
	}
	if count > 0 {
		t.FsyncBatchAvg = float64(sum) / float64(count)
	}
}

// DebugTop snapshots the node's live rate/latency aggregates (served at
// /debug/hraft/top). Safe from any goroutine.
func (n *Node) DebugTop() DebugTop {
	var t DebugTop
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		g := DebugTopGroup{
			Role:        n.fr.Role().String(),
			Term:        uint64(n.fr.Term()),
			Leader:      string(n.fr.LeaderID()),
			CommitIndex: uint64(n.fr.CommitIndex()),
			LastIndex:   uint64(n.fr.LastIndex()),
		}
		g.CommitLag = g.LastIndex - g.CommitIndex
		g.Proposals = pickLive(n.fr.Recorder().LiveStats(now), n.fr.Recorder().Group())
		t = DebugTop{Node: string(n.fr.ID()), Groups: []DebugTopGroup{g}}
	})
	fillTopMetrics(&t, n.Metrics())
	return t
}

// DebugTop snapshots the node's live rate/latency aggregates (served at
// /debug/hraft/top). Safe from any goroutine.
func (n *RaftNode) DebugTop() DebugTop {
	var t DebugTop
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		g := DebugTopGroup{
			Role:        n.rn.Role().String(),
			Term:        uint64(n.rn.Term()),
			Leader:      string(n.rn.LeaderID()),
			CommitIndex: uint64(n.rn.CommitIndex()),
			LastIndex:   uint64(n.rn.LastIndex()),
		}
		g.CommitLag = g.LastIndex - g.CommitIndex
		g.Proposals = pickLive(n.rn.Recorder().LiveStats(now), n.rn.Recorder().Group())
		t = DebugTop{Node: string(n.rn.ID()), Groups: []DebugTopGroup{g}}
	})
	fillTopMetrics(&t, n.Metrics())
	return t
}

// DebugTop snapshots the site's live rate/latency aggregates across both
// consensus layers (served at /debug/hraft/top). Safe from any goroutine.
func (n *CRaftNode) DebugTop() DebugTop {
	var t DebugTop
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		live := n.cn.Recorder().LiveStats(now)
		local := DebugTopGroup{
			Group:       "local",
			Role:        n.cn.Role().String(),
			Term:        uint64(n.cn.Term()),
			Leader:      string(n.cn.LeaderID()),
			CommitIndex: uint64(n.cn.CommitIndex()),
			LastIndex:   uint64(n.cn.LocalLastIndex()),
			Proposals:   pickLive(live, "local"),
		}
		local.CommitLag = local.LastIndex - local.CommitIndex
		t = DebugTop{Node: string(n.cn.ID()), Groups: []DebugTopGroup{local}}
		if n.cn.IsGlobalMember() {
			global := DebugTopGroup{
				Group:       "global",
				Role:        n.cn.GlobalRole().String(),
				Term:        uint64(n.cn.GlobalTerm()),
				CommitIndex: uint64(n.cn.GlobalCommitIndex()),
				// The replayed global log has no last-index view here; lag
				// stays 0 and LastIndex mirrors the commit point.
				LastIndex: uint64(n.cn.GlobalCommitIndex()),
				Proposals: pickLive(live, "global"),
			}
			t.Groups = append(t.Groups, global)
		}
	})
	fillTopMetrics(&t, n.Metrics())
	return t
}

// DebugClusterPeer is one node's row in the /debug/hraft/cluster
// roll-up: its own view of the consensus state, plus its lag behind the
// furthest-committed peer. Unreachable peers carry only Error.
type DebugClusterPeer struct {
	Node        string `json:"node"`
	URL         string `json:"url,omitempty"`
	Error       string `json:"error,omitempty"`
	Role        string `json:"role,omitempty"`
	Term        uint64 `json:"term,omitempty"`
	Leader      string `json:"leader,omitempty"`
	CommitIndex uint64 `json:"commit_index"`
	// Lag is the highest commit index seen across reachable peers minus
	// this peer's.
	Lag uint64 `json:"lag"`
}

// DebugCluster is the document served at /debug/hraft/cluster: every
// peer's status (the serving node first) and the cross-node aggregates a
// failover investigation reaches for — do the nodes agree on a leader,
// how far apart are their commit indexes, who lags.
type DebugCluster struct {
	Peers       []DebugClusterPeer `json:"peers"`
	Reachable   int                `json:"reachable"`
	Unreachable int                `json:"unreachable"`
	// Leaders lists every node currently claiming leadership (itself, not
	// hearsay). More than one entry is normal mid-election across terms;
	// the safety auditor checks the per-term invariant.
	Leaders []string `json:"leaders,omitempty"`
	// LeaderAgreement is true when every reachable peer names the same
	// non-empty leader.
	LeaderAgreement bool   `json:"leader_agreement"`
	MaxTerm         uint64 `json:"max_term"`
	// CommitSpread is max minus min commit index across reachable peers.
	CommitSpread uint64 `json:"commit_spread"`
}

// clusterStatus assembles the /debug/hraft/cluster document: the local
// status directly, every configured peer over HTTP (concurrently, each
// bounded by the configured timeout).
func clusterStatus(src StatusSource, cfg debugConfig) DebugCluster {
	local := src.DebugStatus(0)
	rows := make([]DebugClusterPeer, 1+len(cfg.peers))
	rows[0] = DebugClusterPeer{
		Node:        local.Node,
		Role:        local.Role,
		Term:        local.Term,
		Leader:      local.Leader,
		CommitIndex: local.CommitIndex,
	}
	ids := make([]string, 0, len(cfg.peers))
	for id := range cfg.peers {
		if id == local.Node {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	client := &http.Client{Timeout: cfg.timeout}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(row int, id, base string) {
			defer wg.Done()
			rows[row] = fetchPeerStatus(client, id, base)
		}(1+i, id, cfg.peers[id])
	}
	wg.Wait()
	rows = rows[:1+len(ids)]

	out := DebugCluster{Peers: rows, LeaderAgreement: true}
	var minCommit, maxCommit uint64
	first := true
	leaderView := ""
	for _, p := range rows {
		if p.Error != "" {
			out.Unreachable++
			continue
		}
		out.Reachable++
		if p.Role == "leader" {
			out.Leaders = append(out.Leaders, p.Node)
		}
		if p.Term > out.MaxTerm {
			out.MaxTerm = p.Term
		}
		if first {
			minCommit, maxCommit = p.CommitIndex, p.CommitIndex
			leaderView = p.Leader
			first = false
		} else {
			if p.CommitIndex < minCommit {
				minCommit = p.CommitIndex
			}
			if p.CommitIndex > maxCommit {
				maxCommit = p.CommitIndex
			}
			if p.Leader != leaderView {
				out.LeaderAgreement = false
			}
		}
	}
	if leaderView == "" || first {
		out.LeaderAgreement = false
	}
	out.CommitSpread = maxCommit - minCommit
	for i := range out.Peers {
		if out.Peers[i].Error == "" {
			out.Peers[i].Lag = maxCommit - out.Peers[i].CommitIndex
		}
	}
	return out
}

// fetchPeerStatus pulls one peer's /debug/hraft/status (trace suppressed)
// and reduces it to a roll-up row.
func fetchPeerStatus(client *http.Client, id, base string) DebugClusterPeer {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/debug/hraft/status?trace=0"
	row := DebugClusterPeer{Node: id, URL: url}
	resp, err := client.Get(url)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		row.Error = "status " + resp.Status
		return row
	}
	var s DebugStatus
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		row.Error = "decode: " + err.Error()
		return row
	}
	row.Role = s.Role
	row.Term = s.Term
	row.Leader = s.Leader
	row.CommitIndex = s.CommitIndex
	return row
}

// DebugSource is the combined surface ServeDebug mounts: Prometheus
// metrics plus the debug endpoints. Node, RaftNode and CRaftNode all
// qualify.
type DebugSource interface {
	MetricSource
	StatusSource
}

// ServeDebug serves the full observability surface on one address in a
// background goroutine: /metrics (Prometheus text format, see
// MetricsHandler), /debug/hraft/status, /debug/hraft/trace,
// /debug/hraft/audit, /debug/pprof and — with WithPeers —
// /debug/hraft/cluster. It returns the bound address (useful with ":0")
// and a shutdown func.
func ServeDebug(addr, node string, src DebugSource, opts ...DebugOption) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := NewDebugMux(node, src, opts...)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// NewDebugMux builds the mux ServeDebug serves — /metrics plus the debug
// endpoints — for embedding into an existing HTTP server.
func NewDebugMux(node string, src DebugSource, opts ...DebugOption) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(node, src))
	mux.Handle("/debug/", DebugHandler(src, opts...))
	return mux
}
