package hraft

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/trace"
)

// Flight-recorder tracing and the HTTP debug surface.
//
// With Options.Trace (or CRaftOptions.Trace) set, a node records typed
// protocol events — role transitions, election rounds, per-peer append
// dispatch and acknowledgment, snapshot stream progress, read batches,
// session lifecycle, C-Raft batching hops — into a fixed-size in-memory
// ring, and stamps every proposal's propose→append→replicate→quorum→
// commit→apply stages into hist.stage_* latency histograms (visible in
// Metrics and the Prometheus endpoint). Proposals slower than
// TraceOptions.SlowOp are reported through log/slog with the exact
// proposal, term, index, peer set and per-stage breakdown.
//
// The ring is retrieved with Node.Recorder (TraceRecorder.Snapshot/Tail),
// merged across nodes with MergeTraces, rendered with FormatTrace, and
// served over HTTP with DebugHandler/ServeDebug. A nil recorder disables
// everything: the record paths compile down to a nil check.

// TraceOptions configures the protocol flight recorder (see Options.Trace).
type TraceOptions struct {
	// Size is the event ring capacity (0 = 4096 events, several election
	// cycles of a busy five-node cluster).
	Size int
	// SlowOp, when non-zero, logs any proposal whose propose→apply time
	// meets the threshold, naming the proposal ID, term, commit index,
	// peer set and per-stage latency breakdown.
	SlowOp time.Duration
	// Logger receives slow-op reports (nil = slog.Default()).
	Logger *slog.Logger
}

// TraceEvent is one recorded protocol event: monotonic sequence number,
// node-clock timestamp, node label, event type and type-specific fields.
type TraceEvent = trace.Event

// TraceRecorder is a node's flight recorder. Snapshot() and Tail(k) copy
// the retained ring (oldest first) and are safe from any goroutine.
type TraceRecorder = trace.Recorder

// newRecorder builds the internal recorder from public options (nil
// options = recording disabled = nil recorder).
func newRecorder(id NodeID, o *TraceOptions) *trace.Recorder {
	if o == nil {
		return nil
	}
	return trace.New(trace.Config{
		Node:   string(id),
		Size:   o.Size,
		SlowOp: o.SlowOp,
		Logger: o.Logger,
	})
}

// MergeTraces combines ring snapshots from several nodes into one
// time-ordered sequence (ties broken by node label, then sequence
// number) — the cluster-wide view of an election or failover.
func MergeTraces(snapshots ...[]TraceEvent) []TraceEvent {
	return trace.Merge(snapshots...)
}

// FormatTrace renders events one per line: timestamp, node label, event
// type, details.
func FormatTrace(events []TraceEvent) string { return trace.Format(events) }

// DebugPeer is one peer's replication progress in DebugStatus.
type DebugPeer struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Match    uint64 `json:"match"`
	Next     uint64 `json:"next"`
	SRTT     string `json:"srtt,omitempty"`
	Inflight int    `json:"inflight_msgs"`
}

// DebugStatus is the document served as JSON at /debug/hraft/status:
// role, term and leader view, commit progress, the leader's per-peer
// replication state, the read-lease expiry and the newest flight-recorder
// events.
type DebugStatus struct {
	Node        string      `json:"node"`
	Role        string      `json:"role"`
	Term        uint64      `json:"term"`
	Leader      string      `json:"leader,omitempty"`
	CommitIndex uint64      `json:"commit_index"`
	Peers       []DebugPeer `json:"peers,omitempty"`
	// LeaseUntil is the read-lease expiry on the node's monotonic clock
	// (empty = no lease held).
	LeaseUntil string `json:"lease_until,omitempty"`

	// C-Raft only: the global (inter-cluster) layer.
	Cluster           string      `json:"cluster,omitempty"`
	GlobalRole        string      `json:"global_role,omitempty"`
	GlobalTerm        uint64      `json:"global_term,omitempty"`
	GlobalCommitIndex uint64      `json:"global_commit_index,omitempty"`
	GlobalPeers       []DebugPeer `json:"global_peers,omitempty"`

	// Trace is the newest retained flight-recorder events, oldest first
	// (empty when tracing is disabled).
	Trace []TraceEvent `json:"trace,omitempty"`
}

// debugPeers converts internal peer progress to the JSON shape.
func debugPeers(ps []PeerStatus) []DebugPeer {
	out := make([]DebugPeer, 0, len(ps))
	for _, p := range ps {
		dp := DebugPeer{
			ID:       string(p.ID),
			State:    p.State,
			Match:    uint64(p.Match),
			Next:     uint64(p.Next),
			Inflight: p.InflightMsgs,
		}
		if p.SRTT > 0 {
			dp.SRTT = p.SRTT.String()
		}
		out = append(out, dp)
	}
	return out
}

// DebugStatus snapshots the node's debug state; traceTail bounds the
// flight-recorder events included (0 = none).
func (n *Node) DebugStatus(traceTail int) DebugStatus {
	var s DebugStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		s = DebugStatus{
			Node:        string(n.fr.ID()),
			Role:        n.fr.Role().String(),
			Term:        uint64(n.fr.Term()),
			Leader:      string(n.fr.LeaderID()),
			CommitIndex: uint64(n.fr.CommitIndex()),
			Peers:       debugPeers(n.fr.PeerStatus()),
		}
		if lu := n.fr.LeaseUntil(); lu > 0 {
			s.LeaseUntil = lu.String()
		}
	})
	if traceTail > 0 {
		s.Trace = n.fr.Recorder().Tail(traceTail)
	}
	return s
}

// Recorder returns the node's flight recorder (nil unless Options.Trace
// was set). Safe from any goroutine.
func (n *Node) Recorder() *TraceRecorder { return n.fr.Recorder() }

// DebugStatus snapshots the node's debug state; traceTail bounds the
// flight-recorder events included (0 = none).
func (n *RaftNode) DebugStatus(traceTail int) DebugStatus {
	var s DebugStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		s = DebugStatus{
			Node:        string(n.rn.ID()),
			Role:        n.rn.Role().String(),
			Term:        uint64(n.rn.Term()),
			Leader:      string(n.rn.LeaderID()),
			CommitIndex: uint64(n.rn.CommitIndex()),
			Peers:       debugPeers(n.rn.PeerStatus()),
		}
		if lu := n.rn.LeaseUntil(); lu > 0 {
			s.LeaseUntil = lu.String()
		}
	})
	if traceTail > 0 {
		s.Trace = n.rn.Recorder().Tail(traceTail)
	}
	return s
}

// Recorder returns the node's flight recorder (nil unless Options.Trace
// was set). Safe from any goroutine.
func (n *RaftNode) Recorder() *TraceRecorder { return n.rn.Recorder() }

// DebugStatus snapshots the site's debug state across both consensus
// layers; traceTail bounds the flight-recorder events included (0 =
// none). The trace interleaves local and global events (the layers share
// one ring).
func (n *CRaftNode) DebugStatus(traceTail int) DebugStatus {
	var s DebugStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		s = DebugStatus{
			Node:        string(n.cn.ID()),
			Cluster:     string(n.cn.ClusterID()),
			Role:        n.cn.Role().String(),
			Term:        uint64(n.cn.Term()),
			Leader:      string(n.cn.LeaderID()),
			CommitIndex: uint64(n.cn.CommitIndex()),
			Peers:       debugPeers(n.cn.PeerStatus()),
		}
		if lu := n.cn.LeaseUntil(); lu > 0 {
			s.LeaseUntil = lu.String()
		}
		if n.cn.IsGlobalMember() {
			s.GlobalRole = n.cn.GlobalRole().String()
			s.GlobalPeers = debugPeers(n.cn.GlobalPeerStatus())
		}
		s.GlobalTerm = uint64(n.cn.GlobalTerm())
		s.GlobalCommitIndex = uint64(n.cn.GlobalCommitIndex())
	})
	if traceTail > 0 {
		s.Trace = n.cn.Recorder().Tail(traceTail)
	}
	return s
}

// Recorder returns the site's flight recorder (nil unless
// CRaftOptions.Trace was set). Safe from any goroutine.
func (n *CRaftNode) Recorder() *TraceRecorder { return n.cn.Recorder() }

// StatusSource is anything serving a DebugStatus; Node, RaftNode and
// CRaftNode all qualify.
type StatusSource interface {
	// DebugStatus snapshots the node's debug state with up to traceTail
	// flight-recorder events.
	DebugStatus(traceTail int) DebugStatus
}

// defaultTraceTail is the status endpoint's default ?trace= value.
const defaultTraceTail = 64

// DebugHandler returns an http.Handler exposing a node's debug surface:
//
//	/debug/hraft/status  consensus state as DebugStatus JSON; ?trace=N
//	                     sets the flight-recorder tail length (default 64,
//	                     0 disables)
//	/debug/hraft/trace   the full retained flight-recorder ring as text
//	                     (one event per line, oldest first)
//	/debug/pprof/...     the standard Go runtime profiles
//
// Mount it next to MetricsHandler (or use ServeDebug, which mounts both).
func DebugHandler(src StatusSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/hraft/status", func(w http.ResponseWriter, r *http.Request) {
		tail := defaultTraceTail
		if v := r.URL.Query().Get("trace"); v != "" {
			t, err := strconv.Atoi(v)
			if err != nil || t < 0 {
				http.Error(w, "trace must be a non-negative integer", http.StatusBadRequest)
				return
			}
			tail = t
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(src.DebugStatus(tail))
	})
	mux.HandleFunc("/debug/hraft/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var events []TraceEvent
		if rs, ok := src.(interface{ Recorder() *TraceRecorder }); ok {
			events = rs.Recorder().Snapshot()
		}
		if len(events) == 0 {
			_, _ = w.Write([]byte("(tracing disabled or no events)\n"))
			return
		}
		_, _ = w.Write([]byte(FormatTrace(events)))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugSource is the combined surface ServeDebug mounts: Prometheus
// metrics plus the debug endpoints. Node, RaftNode and CRaftNode all
// qualify.
type DebugSource interface {
	MetricSource
	StatusSource
}

// ServeDebug serves the full observability surface on one address in a
// background goroutine: /metrics (Prometheus text format, see
// MetricsHandler), /debug/hraft/status, /debug/hraft/trace and
// /debug/pprof. It returns the bound address (useful with ":0") and a
// shutdown func.
func ServeDebug(addr, node string, src DebugSource) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := NewDebugMux(node, src)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// NewDebugMux builds the mux ServeDebug serves — /metrics plus the debug
// endpoints — for embedding into an existing HTTP server.
func NewDebugMux(node string, src DebugSource) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(node, src))
	mux.Handle("/debug/", DebugHandler(src))
	return mux
}
