package hraft

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/trace"
)

// stubDebugSource serves canned state through the debug surface.
type stubDebugSource struct {
	status DebugStatus
	rec    *TraceRecorder
	report AuditReport
}

func (s *stubDebugSource) DebugStatus(int) DebugStatus { return s.status }
func (s *stubDebugSource) Recorder() *TraceRecorder    { return s.rec }
func (s *stubDebugSource) AuditReport() AuditReport    { return s.report }

// TestDebugHandlerAuditEndpoint pins /debug/hraft/audit: the auditor's
// report served as JSON, violations and all.
func TestDebugHandlerAuditEndpoint(t *testing.T) {
	src := &stubDebugSource{report: AuditReport{
		Clean:         false,
		EventsChecked: 42,
		Counts:        map[string]uint64{audit.MetricPrefix + audit.InvElectionSafety: 1},
		Violations: []AuditViolation{{
			Invariant: audit.InvElectionSafety,
			Detail:    "two leaders in term 3",
			Event:     TraceEvent{Type: trace.EvElectionWon, Node: "n2", Term: 3},
		}},
	}}
	rec := httptest.NewRecorder()
	DebugHandler(src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/audit", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got AuditReport
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if got.Clean || got.EventsChecked != 42 || len(got.Violations) != 1 ||
		got.Violations[0].Invariant != audit.InvElectionSafety {
		t.Fatalf("report round-trip = %+v", got)
	}

	// A source without an auditor (plain StatusSource) 404s rather than
	// serving a fake clean report.
	bare := struct{ StatusSource }{src}
	rec = httptest.NewRecorder()
	DebugHandler(bare).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/audit", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("auditless source served status %d, want 404", rec.Code)
	}
}

// TestDebugHandlerTraceJSON pins /debug/hraft/trace?format=json: the
// response is the {"node":..., "events":[...]} shape trace.ParseEvents —
// and therefore hraft-audit reading from a pipe — accepts.
func TestDebugHandlerTraceJSON(t *testing.T) {
	r := trace.New(trace.Config{Node: "n1", Size: 16})
	r.ElectionStart(1*time.Millisecond, 2)
	r.ElectionWon(2*time.Millisecond, 2, "n1", 3)
	src := &stubDebugSource{rec: r}

	rec := httptest.NewRecorder()
	DebugHandler(src).ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/debug/hraft/trace?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	events, err := trace.ParseEvents(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("ParseEvents rejects the response: %v\n%s", err, rec.Body.String())
	}
	if len(events) != 2 || events[0].Type != trace.EvElectionStart || events[1].Node != "n1" {
		t.Fatalf("events round-trip = %+v", events)
	}

	// The plain endpoint still serves text.
	rec = httptest.NewRecorder()
	DebugHandler(src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/trace", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text endpoint content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "election.won") {
		t.Fatalf("text dump missing events:\n%s", rec.Body.String())
	}
}

// TestDebugHandlerClusterEndpoint pins /debug/hraft/cluster: peer
// statuses fetched over HTTP and folded into the leader-agreement /
// commit-spread / per-peer-lag roll-up, with unreachable peers reported
// rather than fatal.
func TestDebugHandlerClusterEndpoint(t *testing.T) {
	peer := httptest.NewServer(DebugHandler(&stubDebugSource{status: DebugStatus{
		Node: "n2", Role: "follower", Term: 3, Leader: "n1", CommitIndex: 8,
	}}))
	defer peer.Close()

	local := &stubDebugSource{status: DebugStatus{
		Node: "n1", Role: "leader", Term: 3, Leader: "n1", CommitIndex: 10,
	}}
	h := DebugHandler(local, WithPeers(map[string]string{
		"n2": peer.URL,
		"n3": "127.0.0.1:1", // nothing listens here
	}), WithPeerTimeout(500*time.Millisecond))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got DebugCluster
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if got.Reachable != 2 || got.Unreachable != 1 {
		t.Fatalf("reachable/unreachable = %d/%d, want 2/1", got.Reachable, got.Unreachable)
	}
	if !got.LeaderAgreement || len(got.Leaders) != 1 || got.Leaders[0] != "n1" {
		t.Fatalf("leader roll-up = agreement=%v leaders=%v", got.LeaderAgreement, got.Leaders)
	}
	if got.MaxTerm != 3 || got.CommitSpread != 2 {
		t.Fatalf("max term %d spread %d, want 3 and 2", got.MaxTerm, got.CommitSpread)
	}
	if len(got.Peers) != 3 || got.Peers[0].Node != "n1" {
		t.Fatalf("peers = %+v (serving node must come first)", got.Peers)
	}
	lag := map[string]uint64{}
	for _, p := range got.Peers {
		lag[p.Node] = p.Lag
		if p.Node == "n3" && p.Error == "" {
			t.Fatalf("unreachable peer carries no error: %+v", p)
		}
	}
	if lag["n1"] != 0 || lag["n2"] != 2 {
		t.Fatalf("lags = %v, want n1=0 n2=2", lag)
	}

	// Without WithPeers the endpoint 404s.
	rec = httptest.NewRecorder()
	DebugHandler(local).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/cluster", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("peerless cluster endpoint served %d, want 404", rec.Code)
	}
}

// TestDebugHandlerTraceSinceCursor pins /debug/hraft/trace?since=<seq>:
// incremental fetches return only events at or after the cursor plus the
// next cursor to poll from, and a wrapped ring reports the drop count
// instead of silently skipping.
func TestDebugHandlerTraceSinceCursor(t *testing.T) {
	r := trace.New(trace.Config{Node: "n1", Size: 16})
	r.ElectionStart(1*time.Millisecond, 2)
	r.ElectionWon(2*time.Millisecond, 2, "n1", 3)
	r.ElectionStart(3*time.Millisecond, 4)
	h := DebugHandler(&stubDebugSource{rec: r})

	get := func(url string) (struct {
		Node    string       `json:"node"`
		Since   uint64       `json:"since"`
		Next    uint64       `json:"next"`
		Dropped uint64       `json:"dropped"`
		Events  []TraceEvent `json:"events"`
	}, int) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		var doc struct {
			Node    string       `json:"node"`
			Since   uint64       `json:"since"`
			Next    uint64       `json:"next"`
			Dropped uint64       `json:"dropped"`
			Events  []TraceEvent `json:"events"`
		}
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
				t.Fatalf("decode %s: %v\n%s", url, err, rec.Body.String())
			}
		}
		return doc, rec.Code
	}

	full, code := get("/debug/hraft/trace?since=0")
	if code != http.StatusOK || len(full.Events) != 3 || full.Dropped != 0 {
		t.Fatalf("since=0: code=%d events=%d dropped=%d", code, len(full.Events), full.Dropped)
	}
	// Resume from the second event's sequence number: only the tail comes
	// back, and next advances past the last event.
	cursor := full.Events[1].Seq
	part, _ := get("/debug/hraft/trace?since=" + strconv.FormatUint(cursor, 10))
	if len(part.Events) != 2 || part.Events[0].Seq != cursor {
		t.Fatalf("since=%d returned %+v", cursor, part.Events)
	}
	if want := cursor + uint64(len(part.Events)); part.Next != want {
		t.Fatalf("next = %d, want %d", part.Next, want)
	}
	// Polling from next is empty until something new is recorded.
	empty, _ := get("/debug/hraft/trace?since=" + strconv.FormatUint(part.Next, 10))
	if len(empty.Events) != 0 || empty.Next != part.Next {
		t.Fatalf("poll at next=%d returned %d events, next=%d", part.Next, len(empty.Events), empty.Next)
	}

	// Garbage cursors are a 400, not a panic.
	if _, code := get("/debug/hraft/trace?since=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad cursor served %d, want 400", code)
	}
}

// TestDebugHandlerTraceTree pins /debug/hraft/trace?trace=<hex-id>: one
// sampled operation's assembled causal tree served as JSON, 404 for IDs
// the ring no longer holds.
func TestDebugHandlerTraceTree(t *testing.T) {
	const tid = 0xAB54A98CEB1F0A
	r := trace.New(trace.Config{Node: "n1", Size: 16})
	r.TraceHop(1*time.Millisecond, tid, trace.HopForward, "n2", 0)
	r.TraceHop(2*time.Millisecond, tid, trace.HopAppend, "", 7)
	r.TraceHop(3*time.Millisecond, 0xFEED, trace.HopAppend, "", 8) // another trace
	h := DebugHandler(&stubDebugSource{rec: r})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/trace?trace=00ab54a98ceb1f0a", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var tree TraceTree
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if tree.ID != tid || tree.Root == nil || len(tree.Root.Children) != 1 ||
		tree.Root.Children[0].Event.Index != 7 {
		t.Fatalf("tree round-trip = %+v", tree)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/trace?trace=deadbeef", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace served %d, want 404", rec.Code)
	}
}

// topDebugSource adds the live-stats surface to the stub.
type topDebugSource struct {
	stubDebugSource
	top DebugTop
}

func (s *topDebugSource) DebugTop() DebugTop { return s.top }

// TestDebugHandlerTopEndpoint pins /debug/hraft/top: the per-group live
// aggregates served as JSON, 404 for node types without the surface.
func TestDebugHandlerTopEndpoint(t *testing.T) {
	src := &topDebugSource{top: DebugTop{
		Node: "n1",
		Groups: []DebugTopGroup{{
			Group: "g0", Role: "leader", Term: 3, Leader: "n1",
			CommitIndex: 41, LastIndex: 44, CommitLag: 3,
			Proposals: RollingStats{Window: 16 * time.Second, Count: 320,
				RatePerSec: 20, P50: 2 * time.Millisecond, P99: 9 * time.Millisecond},
		}},
		FsyncBatchAvg: 4.5,
		TraceDropped:  7,
	}}
	rec := httptest.NewRecorder()
	DebugHandler(src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/top", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got DebugTop
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if got.Node != "n1" || len(got.Groups) != 1 || got.Groups[0].CommitLag != 3 ||
		got.Groups[0].Proposals.P99 != 9*time.Millisecond ||
		got.FsyncBatchAvg != 4.5 || got.TraceDropped != 7 {
		t.Fatalf("top round-trip = %+v", got)
	}

	// A source without live stats 404s.
	rec = httptest.NewRecorder()
	DebugHandler(&stubDebugSource{}).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/top", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("statless source served %d, want 404", rec.Code)
	}
}
