package hraft

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/trace"
)

// stubDebugSource serves canned state through the debug surface.
type stubDebugSource struct {
	status DebugStatus
	rec    *TraceRecorder
	report AuditReport
}

func (s *stubDebugSource) DebugStatus(int) DebugStatus { return s.status }
func (s *stubDebugSource) Recorder() *TraceRecorder    { return s.rec }
func (s *stubDebugSource) AuditReport() AuditReport    { return s.report }

// TestDebugHandlerAuditEndpoint pins /debug/hraft/audit: the auditor's
// report served as JSON, violations and all.
func TestDebugHandlerAuditEndpoint(t *testing.T) {
	src := &stubDebugSource{report: AuditReport{
		Clean:         false,
		EventsChecked: 42,
		Counts:        map[string]uint64{audit.MetricPrefix + audit.InvElectionSafety: 1},
		Violations: []AuditViolation{{
			Invariant: audit.InvElectionSafety,
			Detail:    "two leaders in term 3",
			Event:     TraceEvent{Type: trace.EvElectionWon, Node: "n2", Term: 3},
		}},
	}}
	rec := httptest.NewRecorder()
	DebugHandler(src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/audit", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got AuditReport
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if got.Clean || got.EventsChecked != 42 || len(got.Violations) != 1 ||
		got.Violations[0].Invariant != audit.InvElectionSafety {
		t.Fatalf("report round-trip = %+v", got)
	}

	// A source without an auditor (plain StatusSource) 404s rather than
	// serving a fake clean report.
	bare := struct{ StatusSource }{src}
	rec = httptest.NewRecorder()
	DebugHandler(bare).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/audit", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("auditless source served status %d, want 404", rec.Code)
	}
}

// TestDebugHandlerTraceJSON pins /debug/hraft/trace?format=json: the
// response is the {"node":..., "events":[...]} shape trace.ParseEvents —
// and therefore hraft-audit reading from a pipe — accepts.
func TestDebugHandlerTraceJSON(t *testing.T) {
	r := trace.New(trace.Config{Node: "n1", Size: 16})
	r.ElectionStart(1*time.Millisecond, 2)
	r.ElectionWon(2*time.Millisecond, 2, "n1", 3)
	src := &stubDebugSource{rec: r}

	rec := httptest.NewRecorder()
	DebugHandler(src).ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/debug/hraft/trace?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	events, err := trace.ParseEvents(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("ParseEvents rejects the response: %v\n%s", err, rec.Body.String())
	}
	if len(events) != 2 || events[0].Type != trace.EvElectionStart || events[1].Node != "n1" {
		t.Fatalf("events round-trip = %+v", events)
	}

	// The plain endpoint still serves text.
	rec = httptest.NewRecorder()
	DebugHandler(src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/trace", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text endpoint content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "election.won") {
		t.Fatalf("text dump missing events:\n%s", rec.Body.String())
	}
}

// TestDebugHandlerClusterEndpoint pins /debug/hraft/cluster: peer
// statuses fetched over HTTP and folded into the leader-agreement /
// commit-spread / per-peer-lag roll-up, with unreachable peers reported
// rather than fatal.
func TestDebugHandlerClusterEndpoint(t *testing.T) {
	peer := httptest.NewServer(DebugHandler(&stubDebugSource{status: DebugStatus{
		Node: "n2", Role: "follower", Term: 3, Leader: "n1", CommitIndex: 8,
	}}))
	defer peer.Close()

	local := &stubDebugSource{status: DebugStatus{
		Node: "n1", Role: "leader", Term: 3, Leader: "n1", CommitIndex: 10,
	}}
	h := DebugHandler(local, WithPeers(map[string]string{
		"n2": peer.URL,
		"n3": "127.0.0.1:1", // nothing listens here
	}), WithPeerTimeout(500*time.Millisecond))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var got DebugCluster
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if got.Reachable != 2 || got.Unreachable != 1 {
		t.Fatalf("reachable/unreachable = %d/%d, want 2/1", got.Reachable, got.Unreachable)
	}
	if !got.LeaderAgreement || len(got.Leaders) != 1 || got.Leaders[0] != "n1" {
		t.Fatalf("leader roll-up = agreement=%v leaders=%v", got.LeaderAgreement, got.Leaders)
	}
	if got.MaxTerm != 3 || got.CommitSpread != 2 {
		t.Fatalf("max term %d spread %d, want 3 and 2", got.MaxTerm, got.CommitSpread)
	}
	if len(got.Peers) != 3 || got.Peers[0].Node != "n1" {
		t.Fatalf("peers = %+v (serving node must come first)", got.Peers)
	}
	lag := map[string]uint64{}
	for _, p := range got.Peers {
		lag[p.Node] = p.Lag
		if p.Node == "n3" && p.Error == "" {
			t.Fatalf("unreachable peer carries no error: %+v", p)
		}
	}
	if lag["n1"] != 0 || lag["n2"] != 2 {
		t.Fatalf("lags = %v, want n1=0 n2=2", lag)
	}

	// Without WithPeers the endpoint 404s.
	rec = httptest.NewRecorder()
	DebugHandler(local).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hraft/cluster", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("peerless cluster endpoint served %d, want 404", rec.Code)
	}
}
