package hraft

// DebugString renders a diagnostic summary of a C-Raft node's state.
func (n *CRaftNode) DebugString() string { return n.cn.DebugString() }
