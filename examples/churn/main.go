// Dynamic membership: announced joins, graceful leaves and silent leaves.
//
// Fast Raft handles membership changes without an administrator: sites
// send join/leave requests to the leader, which serializes configuration
// changes one member at a time; a site that vanishes silently is detected
// through missed heartbeat responses and removed (the paper's member
// timeout). Run it with:
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	hraft "github.com/hraft-io/hraft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func waitMembers(nodes map[hraft.NodeID]*hraft.Node, probe hraft.NodeID, want int, timeout time.Duration) (hraft.Membership, error) {
	deadline := time.Now().Add(timeout)
	for {
		m := nodes[probe].Members()
		if m.Size() == want {
			return m, nil
		}
		if time.Now().After(deadline) {
			return m, fmt.Errorf("membership stuck at %v (want %d members)", m, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func run() error {
	net := hraft.NewInProcNetwork(23)
	defer net.Close()

	newNode := func(id hraft.NodeID, peers []hraft.NodeID, seed int64) (*hraft.Node, error) {
		node, err := hraft.NewNode(hraft.Options{
			ID:                  id,
			Peers:               peers,
			Transport:           net.Endpoint(id),
			HeartbeatInterval:   20 * time.Millisecond,
			ElectionTimeoutMin:  80 * time.Millisecond,
			ElectionTimeoutMax:  160 * time.Millisecond,
			MemberTimeoutRounds: 5,
			Seed:                seed,
		})
		if err != nil {
			return nil, err
		}
		go func() {
			for range node.Commits() {
			}
		}()
		return node, nil
	}

	peers := []hraft.NodeID{"n1", "n2", "n3"}
	nodes := make(map[hraft.NodeID]*hraft.Node)
	for i, id := range peers {
		n, err := newNode(id, peers, int64(i+1))
		if err != nil {
			return err
		}
		nodes[id] = n
		defer n.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := nodes["n1"].Propose(ctx, []byte("bootstrap")); err != nil {
		return err
	}
	fmt.Printf("initial membership: %v\n", nodes["n1"].Members())

	// 1. A new site joins: the leader catches it up, then commits a
	//    configuration including it.
	fmt.Println("\n[1] n4 sends a join request ...")
	n4, err := newNode("n4", nil, 44)
	if err != nil {
		return err
	}
	nodes["n4"] = n4
	defer n4.Stop()
	n4.Join(peers)
	m, err := waitMembers(nodes, "n1", 4, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("    joined: membership is now %v\n", m)

	// 2. A site leaves gracefully: it announces the leave and the leader
	//    commits a configuration without it.
	fmt.Println("\n[2] n2 announces it is leaving ...")
	nodes["n2"].Leave()
	if m, err = waitMembers(nodes, "n1", 3, 10*time.Second); err != nil {
		return err
	}
	fmt.Printf("    left: membership is now %v\n", m)
	nodes["n2"].Stop()

	// 3. A site vanishes silently: the leader notices the missed
	//    heartbeat responses and removes it on its own.
	fmt.Println("\n[3] n3 crashes silently (no leave request) ...")
	nodes["n3"].Stop()
	probe := hraft.NodeID("n1")
	if nodes["n1"].Members().Contains("n3") && nodes["n1"].Role() != hraft.Leader {
		probe = "n4"
	}
	if m, err = waitMembers(nodes, probe, 2, 15*time.Second); err != nil {
		return err
	}
	fmt.Printf("    silent leave detected: membership is now %v\n", m)

	// Consensus still works with the two survivors.
	if _, err := nodes["n1"].Propose(ctx, []byte("after churn")); err != nil {
		return fmt.Errorf("post-churn propose: %w", err)
	}
	fmt.Println("\nproposals still commit after all the churn ✓")
	return nil
}
