// Leader failover and Fast Raft recovery.
//
// Fast Raft elections consider only leader-approved entries, so after a
// leader crash the new leader runs the paper's recovery algorithm: voters
// ship their self-approved entries, and anything a fast quorum had
// inserted — i.e., anything the dead leader might have committed on the
// fast track — is re-decided identically. This demo kills the leader
// mid-stream and shows no committed entry is lost. Run it with:
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	hraft "github.com/hraft-io/hraft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := hraft.NewInProcNetwork(17)
	defer net.Close()

	peers := []hraft.NodeID{"n1", "n2", "n3", "n4", "n5"}
	nodes := make(map[hraft.NodeID]*hraft.Node, len(peers))
	var mu sync.Mutex
	committed := make(map[string]hraft.Index) // payload -> index, across all nodes
	for i, id := range peers {
		node, err := hraft.NewNode(hraft.Options{
			ID:                 id,
			Peers:              peers,
			Transport:          net.Endpoint(id),
			HeartbeatInterval:  20 * time.Millisecond,
			ElectionTimeoutMin: 80 * time.Millisecond,
			ElectionTimeoutMax: 160 * time.Millisecond,
			Seed:               int64(i + 1),
		})
		if err != nil {
			return err
		}
		defer node.Stop()
		nodes[id] = node
		go func(n *hraft.Node) {
			for e := range n.Commits() {
				if e.Kind != hraft.EntryNormal {
					continue
				}
				mu.Lock()
				if prev, ok := committed[string(e.Data)]; ok && prev != e.Index {
					log.Fatalf("SAFETY VIOLATION: %q at both %d and %d",
						e.Data, prev, e.Index)
				}
				committed[string(e.Data)] = e.Index
				mu.Unlock()
			}
		}(node)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	proposer := nodes["n3"]
	fmt.Println("committing entries 1-5 ...")
	for i := 1; i <= 5; i++ {
		if _, err := proposer.Propose(ctx, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			return err
		}
	}
	leader := proposer.Leader()
	fmt.Printf("leader is %s (term %d)\n", leader, proposer.Term())

	fmt.Printf("\nkilling leader %s ...\n", leader)
	nodes[leader].Stop()

	// Pick a surviving proposer and keep committing; the election and
	// recovery happen underneath.
	survivor := proposer
	if leader == survivor.ID() {
		survivor = nodes["n4"]
	}
	fmt.Println("committing entries 6-10 through the new leader ...")
	start := time.Now()
	for i := 6; i <= 10; i++ {
		if _, err := survivor.Propose(ctx, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			return err
		}
	}
	fmt.Printf("new leader %s elected (term %d); 5 more entries committed in %v\n",
		survivor.Leader(), survivor.Term(), time.Since(start).Round(time.Millisecond))

	mu.Lock()
	n := len(committed)
	mu.Unlock()
	fmt.Printf("\n%d distinct entries committed, no index conflicts across nodes ✓\n", n)
	return nil
}
