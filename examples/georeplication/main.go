// Geo-replicated C-Raft: three clusters on three "continents".
//
// The in-process network injects realistic one-way latencies between
// regions (<1 ms within a region, 40–120 ms across). Each cluster runs
// Fast Raft locally; cluster leaders replicate batches through a second,
// global Fast Raft instance. Proposers observe local-commit latency while
// their entries flow into the global log in the background — the mechanism
// behind the paper's Figure 5 throughput results. Run it with:
//
//	go run ./examples/georeplication
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	hraft "github.com/hraft-io/hraft"
)

// regionOf maps every node and cluster ID to its region.
var regionOf = map[hraft.NodeID]string{
	"us": "us", "us1": "us", "us2": "us", "us3": "us",
	"eu": "eu", "eu1": "eu", "eu2": "eu", "eu3": "eu",
	"ap": "ap", "ap1": "ap", "ap2": "ap", "ap3": "ap",
}

// oneWay holds one-way latencies between regions.
var oneWay = map[[2]string]time.Duration{
	{"us", "eu"}: 40 * time.Millisecond,
	{"eu", "us"}: 40 * time.Millisecond,
	{"us", "ap"}: 60 * time.Millisecond,
	{"ap", "us"}: 60 * time.Millisecond,
	{"eu", "ap"}: 120 * time.Millisecond,
	{"ap", "eu"}: 120 * time.Millisecond,
}

func latency(from, to hraft.NodeID) time.Duration {
	rf, rt := regionOf[from], regionOf[to]
	if rf == rt {
		return 300 * time.Microsecond
	}
	return oneWay[[2]string{rf, rt}]
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := hraft.NewInProcNetwork(11)
	net.Latency = latency
	defer net.Close()

	clusters := []hraft.NodeID{"us", "eu", "ap"}
	sites := map[hraft.NodeID][]hraft.NodeID{
		"us": {"us1", "us2", "us3"},
		"eu": {"eu1", "eu2", "eu3"},
		"ap": {"ap1", "ap2", "ap3"},
	}

	var globalItems atomic.Int64
	nodes := make(map[hraft.NodeID]*hraft.CRaftNode)
	for ci, cid := range clusters {
		for si, sid := range sites[cid] {
			node, err := hraft.NewCRaftNode(hraft.CRaftOptions{
				ID:              sid,
				Cluster:         cid,
				ClusterPeers:    sites[cid],
				GlobalClusters:  clusters,
				Transport:       net.Endpoint(sid),
				BatchSize:       5,
				LocalHeartbeat:  20 * time.Millisecond,
				GlobalHeartbeat: 100 * time.Millisecond,
				// Keep a fast cluster from flooding the slower global
				// level: at most two batches in flight per cluster.
				MaxInflightBatches: 2,
				Seed:               int64(10*ci + si + 1),
			})
			if err != nil {
				return err
			}
			defer node.Stop()
			nodes[sid] = node
			go func(n *hraft.CRaftNode) {
				for range n.Commits() {
				}
			}(node)
			go func(n *hraft.CRaftNode, first bool) {
				for e := range n.GlobalCommits() {
					if e.Kind == hraft.EntryBatch && first {
						if b, err := hraft.DecodeBatch(e.Data); err == nil {
							globalItems.Add(int64(len(b.Items)))
							fmt.Printf("  global commit: index %-3d %s (%d entries)\n",
								e.Index, b.Cluster, len(b.Items))
						}
					}
				}
			}(node, sid == "us1")
		}
	}

	// Keep cluster endpoints routed to the current local leaders.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			for _, cid := range clusters {
				for _, sid := range sites[cid] {
					if nodes[sid].IsClusterLeader() {
						hraft.RegisterClusterEndpoint(net, cid, nodes[sid])
						break
					}
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Println("one closed-loop proposer per continent for 5 seconds ...")
	var wg sync.WaitGroup
	var localCounts [3]atomic.Int64
	start := time.Now()
	for i, cid := range clusters {
		wg.Add(1)
		go func(i int, proposer *hraft.CRaftNode) {
			defer wg.Done()
			seq := 0
			for time.Since(start) < 5*time.Second {
				seq++
				payload := fmt.Sprintf("%s-%d", proposer.ClusterID(), seq)
				if _, err := proposer.Propose(ctx, []byte(payload)); err != nil {
					return
				}
				localCounts[i].Add(1)
			}
		}(i, nodes[sites[cid][0]])
	}
	wg.Wait()
	// Let the last batches reach the global log.
	time.Sleep(2 * time.Second)

	fmt.Println("\nresults:")
	total := int64(0)
	for i, cid := range clusters {
		n := localCounts[i].Load()
		total += n
		fmt.Printf("  %s: %d entries committed locally (%.1f/s)\n", cid, n, float64(n)/5)
	}
	fmt.Printf("  global log: %d application entries replicated world-wide (%.1f/s)\n",
		globalItems.Load(), float64(globalItems.Load())/5)
	fmt.Printf("  (local commit latency stays at intra-region speeds; batches cross\n")
	fmt.Printf("   continents in the background — the C-Raft hierarchy at work)\n")
	_ = total
	return nil
}
