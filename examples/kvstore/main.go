// Replicated key-value store on Fast Raft, with snapshot-based log
// compaction.
//
// Each replica applies committed entries ("SET key value") to a local map;
// consensus gives every replica the same total order, so all stores
// converge to identical contents. The store also implements
// hraft.Snapshotter: once SnapshotThreshold entries commit, each node
// serializes the map, persists it and discards the covered log prefix —
// the log stays bounded no matter how many writes flow, and a replica that
// was down past the compaction horizon catches up from the leader's
// snapshot instead of replaying history. Run it with:
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	hraft "github.com/hraft-io/hraft"
)

// Store is one replica's state machine: a map fed by the committed entry
// stream, snapshottable for log compaction.
type Store struct {
	mu      sync.Mutex
	data    map[string]string
	applied hraft.Index // last log index folded into data
	ops     int         // writes applied (session duplicates never count)
	node    *hraft.Node
}

// storeImage is the serialized snapshot form.
type storeImage struct {
	Data map[string]string `json:"data"`
}

// NewStore builds a replica's state machine (attach it to a node with
// Attach; the node needs the store at construction time as its
// Snapshotter).
func NewStore() *Store {
	return &Store{data: make(map[string]string)}
}

// Attach binds the store to its node and starts applying commits.
func (s *Store) Attach(node *hraft.Node) {
	s.node = node
	go func() {
		for e := range node.Commits() {
			if e.Kind != hraft.EntryNormal {
				continue
			}
			key, val, ok := strings.Cut(string(e.Data), "=")
			if !ok {
				continue
			}
			s.mu.Lock()
			// A snapshot restore may have leapfrogged this entry; never
			// apply below the restored index.
			if e.Index > s.applied {
				s.data[key] = val
				s.applied = e.Index
				s.ops++
			}
			s.mu.Unlock()
		}
	}()
}

// Snapshot implements hraft.Snapshotter.
func (s *Store) Snapshot() ([]byte, hraft.Index, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := json.Marshal(storeImage{Data: s.data})
	return buf, s.applied, err
}

// Restore implements hraft.Snapshotter.
func (s *Store) Restore(snap hraft.Snapshot) error {
	var img storeImage
	if err := json.Unmarshal(snap.Data, &img); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if img.Data == nil {
		img.Data = make(map[string]string)
	}
	s.data = img.Data
	s.applied = snap.Meta.LastIndex
	return nil
}

// Set replicates key=value through consensus and waits for commit.
func (s *Store) Set(ctx context.Context, key, value string) error {
	_, err := s.node.Propose(ctx, []byte(key+"="+value))
	return err
}

// Ops returns how many writes this replica has applied.
func (s *Store) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Render returns a sorted rendering of the store contents.
func (s *Store) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s.data[k]
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const snapshotThreshold = 16

func run() error {
	net := hraft.NewInProcNetwork(7)
	defer net.Close()

	peers := []hraft.NodeID{"kv1", "kv2", "kv3"}
	stores := make(map[hraft.NodeID]*Store, len(peers))
	nodes := make(map[hraft.NodeID]*hraft.Node, len(peers))
	storage := make(map[hraft.NodeID]hraft.Storage, len(peers))
	start := func(id hraft.NodeID, seed int64) error {
		store := NewStore()
		node, err := hraft.NewNode(hraft.Options{
			ID:                 id,
			Peers:              peers,
			Transport:          net.Endpoint(id),
			Storage:            storage[id],
			HeartbeatInterval:  25 * time.Millisecond,
			ElectionTimeoutMin: 100 * time.Millisecond,
			ElectionTimeoutMax: 200 * time.Millisecond,
			SnapshotThreshold:  snapshotThreshold,
			Snapshotter:        store,
			// Stream snapshot transfers in datagram-sized chunks and let
			// catch-up pipeline a few AppendEntries per round trip.
			MaxSnapshotChunk:   1024,
			MaxInflightAppends: 4,
			Seed:               seed,
			// Flight recorder: every protocol event (elections, appends,
			// snapshot streams, proposal stages) lands in a per-node ring;
			// the tail is printed at the end. In a real deployment, serve
			// it with hraft.ServeDebug (-debug-addr in cmd/hraft-node).
			Trace: &hraft.TraceOptions{},
		})
		if err != nil {
			return err
		}
		store.Attach(node)
		stores[id] = store
		nodes[id] = node
		return nil
	}
	for i, id := range peers {
		storage[id] = hraft.NewMemoryStorage() // kept across the restart below
		if err := start(id, int64(i+1)); err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Phase 1: enough writes to trip compaction on every replica.
	for i := 0; i < 2*snapshotThreshold; i++ {
		target := peers[i%len(peers)]
		if err := stores[target].Set(ctx, fmt.Sprintf("key%02d", i%8), fmt.Sprintf("v%d", i)); err != nil {
			return fmt.Errorf("set via %s: %w", target, err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	fmt.Println("after", 2*snapshotThreshold, "writes:")
	for _, id := range peers {
		fmt.Printf("  %s: commit=%d firstIndex=%d (log starts above the snapshot)\n",
			id, nodes[id].CommitIndex(), nodes[id].FirstIndex())
	}

	// Phase 2: crash kv3, keep writing past the compaction horizon, then
	// restart it from its stored snapshot — it catches up via snapshot
	// transfer, not full replay.
	nodes["kv3"].Stop()
	fmt.Println("\nkv3 stopped; writing on...")
	for i := 0; i < 2*snapshotThreshold; i++ {
		target := peers[i%2] // kv1, kv2
		if err := stores[target].Set(ctx, fmt.Sprintf("key%02d", i%8), fmt.Sprintf("w%d", i)); err != nil {
			return fmt.Errorf("set via %s: %w", target, err)
		}
	}
	if err := start("kv3", 33); err != nil {
		return fmt.Errorf("restart kv3: %w", err)
	}
	fmt.Println("kv3 restarted from its snapshot; waiting for catch-up")

	// Wait until kv3 converges with the leader's commit index.
	deadline := time.Now().Add(10 * time.Second)
	for nodes["kv3"].CommitIndex() < nodes["kv1"].CommitIndex() {
		if time.Now().After(deadline) {
			return fmt.Errorf("kv3 failed to catch up (commit %d < %d)",
				nodes["kv3"].CommitIndex(), nodes["kv1"].CommitIndex())
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)

	fmt.Println("\nreplica contents (must be identical):")
	var first string
	for _, id := range peers {
		snap := stores[id].Render()
		fmt.Printf("  %s: %s (firstIndex=%d)\n", id, snap, nodes[id].FirstIndex())
		if first == "" {
			first = snap
		} else if snap != first {
			return fmt.Errorf("replica divergence on %s", id)
		}
	}

	// Phase 3: exactly-once writes through a client session. A retry of the
	// same session sequence — the "my acknowledgment got lost" path —
	// returns the original commit index and is never applied twice.
	sess, err := nodes["kv1"].OpenSession(ctx)
	if err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	idx, err := sess.Propose(ctx, []byte("winner=alice"))
	if err != nil {
		return fmt.Errorf("session set: %w", err)
	}
	time.Sleep(100 * time.Millisecond)
	before := stores["kv2"].Ops()
	again, err := sess.ProposeAt(ctx, sess.LastSeq(), []byte("winner=alice")) // the client retries
	if err != nil {
		return fmt.Errorf("session retry: %w", err)
	}
	time.Sleep(100 * time.Millisecond)
	if again != idx {
		return fmt.Errorf("retry committed at %d, original at %d", again, idx)
	}
	if after := stores["kv2"].Ops(); after != before {
		return fmt.Errorf("duplicate applied: %d ops before retry, %d after", before, after)
	}
	fmt.Printf("\nsession %d: retried write resolved to its original index %d, applied once ✓\n", sess.ID(), idx)

	// The replication engine counts what it did: chunked snapshot traffic
	// from the catch-up above shows up in the monotonic metrics (also
	// publishable to /debug/vars via hraft.PublishExpvar).
	fmt.Println("\nreplication metrics:")
	for _, id := range peers {
		m := nodes[id].Metrics()
		fmt.Printf("  %s: chunks_sent=%d chunks_received=%d installs=%d throttled=%d\n",
			id,
			m["replica.snapshot_chunks_sent"],
			m["replica.snapshot_chunks_received"],
			m["replica.snapshots_installed"],
			m["replica.appends_throttled"])
	}
	// The flight recorder kept the whole story: kv3's tail shows the
	// snapshot stream that brought it back after the crash.
	tail := nodes["kv3"].Recorder().Tail(8)
	fmt.Printf("\nkv3 flight-recorder tail (last %d events):\n%s", len(tail), hraft.FormatTrace(tail))
	fmt.Println("all replicas agree, logs stay bounded ✓")
	return nil
}
