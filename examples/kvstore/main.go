// Replicated key-value store on Fast Raft.
//
// Each replica applies committed entries ("SET key value") to a local map;
// consensus gives every replica the same total order, so all stores
// converge to identical contents — including a replica that crashes and
// recovers from its write-ahead state. Run it with:
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	hraft "github.com/hraft-io/hraft"
)

// Store is one replica's state machine: a map fed by the committed entry
// stream.
type Store struct {
	mu   sync.Mutex
	data map[string]string
	node *hraft.Node
}

// NewStore builds a replica on an existing node and starts applying
// commits.
func NewStore(node *hraft.Node) *Store {
	s := &Store{data: make(map[string]string), node: node}
	go func() {
		for e := range node.Commits() {
			if e.Kind != hraft.EntryNormal {
				continue
			}
			key, val, ok := strings.Cut(string(e.Data), "=")
			if !ok {
				continue
			}
			s.mu.Lock()
			s.data[key] = val
			s.mu.Unlock()
		}
	}()
	return s
}

// Set replicates key=value through consensus and waits for commit.
func (s *Store) Set(ctx context.Context, key, value string) error {
	_, err := s.node.Propose(ctx, []byte(key+"="+value))
	return err
}

// Snapshot returns a sorted rendering of the store contents.
func (s *Store) Snapshot() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s.data[k]
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := hraft.NewInProcNetwork(7)
	defer net.Close()

	peers := []hraft.NodeID{"kv1", "kv2", "kv3"}
	stores := make(map[hraft.NodeID]*Store, len(peers))
	for i, id := range peers {
		node, err := hraft.NewNode(hraft.Options{
			ID:                 id,
			Peers:              peers,
			Transport:          net.Endpoint(id),
			HeartbeatInterval:  25 * time.Millisecond,
			ElectionTimeoutMin: 100 * time.Millisecond,
			ElectionTimeoutMax: 200 * time.Millisecond,
			Seed:               int64(i + 1),
		})
		if err != nil {
			return err
		}
		defer node.Stop()
		stores[id] = NewStore(node)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Writes go through different replicas; consensus orders them.
	writes := []struct{ replica, key, val string }{
		{"kv1", "color", "blue"},
		{"kv2", "shape", "circle"},
		{"kv3", "size", "large"},
		{"kv2", "color", "green"}, // overwrite through a different replica
		{"kv1", "weight", "12kg"},
	}
	for _, w := range writes {
		if err := stores[hraft.NodeID(w.replica)].Set(ctx, w.key, w.val); err != nil {
			return fmt.Errorf("set %s via %s: %w", w.key, w.replica, err)
		}
		fmt.Printf("SET %-7s=%-7s via %s\n", w.key, w.val, w.replica)
	}

	// Give followers a heartbeat to learn the final commit index, then
	// compare snapshots.
	time.Sleep(150 * time.Millisecond)
	fmt.Println("\nreplica contents (must be identical):")
	var first string
	for _, id := range peers {
		snap := stores[id].Snapshot()
		fmt.Printf("  %s: %s\n", id, snap)
		if first == "" {
			first = snap
		} else if snap != first {
			return fmt.Errorf("replica divergence on %s", id)
		}
	}
	fmt.Println("\nall replicas agree ✓")
	return nil
}
