// Quickstart: a five-site Fast Raft group in one process.
//
// Five nodes connect over the in-process network, elect a leader, and a
// follower proposes entries that commit on the fast track (two message
// rounds). Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	hraft "github.com/hraft-io/hraft"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := hraft.NewInProcNetwork(42)
	defer net.Close()

	peers := []hraft.NodeID{"n1", "n2", "n3", "n4", "n5"}
	nodes := make(map[hraft.NodeID]*hraft.Node, len(peers))
	for i, id := range peers {
		node, err := hraft.NewNode(hraft.Options{
			ID:                 id,
			Peers:              peers,
			Transport:          net.Endpoint(id),
			HeartbeatInterval:  25 * time.Millisecond,
			ElectionTimeoutMin: 100 * time.Millisecond,
			ElectionTimeoutMax: 200 * time.Millisecond,
			Seed:               int64(i + 1),
		})
		if err != nil {
			return err
		}
		defer node.Stop()
		nodes[id] = node
		// Every commit channel must be drained.
		go func(n *hraft.Node) {
			for range n.Commits() {
			}
		}(node)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	proposer := nodes["n2"]
	fmt.Println("proposing five entries from n2 ...")
	for i := 1; i <= 5; i++ {
		payload := fmt.Sprintf("entry-%d", i)
		start := time.Now()
		idx, err := proposer.Propose(ctx, []byte(payload))
		if err != nil {
			return fmt.Errorf("propose %q: %w", payload, err)
		}
		fmt.Printf("  %-10s committed at index %-3d in %v\n",
			payload, idx, time.Since(start).Round(time.Millisecond))
	}

	leader := proposer.Leader()
	fmt.Printf("\nleader is %s (term %d); commit index on each node:\n", leader, proposer.Term())
	for _, id := range peers {
		fmt.Printf("  %s: commitIndex=%d role=%s\n", id, nodes[id].CommitIndex(), nodes[id].Role())
	}
	return nil
}
