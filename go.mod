module github.com/hraft-io/hraft

go 1.24
