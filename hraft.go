// Package hraft is a Go implementation of Fast Raft and C-Raft, the
// consensus algorithms of Castiglia, Goldberg and Patterson, "A
// Hierarchical Model for Fast Distributed Consensus in Dynamic Networks"
// (ICDCS 2020).
//
// Fast Raft is a Raft variant for dynamic networks that commits in two
// message rounds on a fast track (proposers broadcast directly to all
// sites) and falls back to a classic Raft track under conflict or loss.
// C-Raft arranges sites into clusters: each cluster runs Fast Raft over a
// local log, and cluster leaders run Fast Raft among themselves over a
// global log of batches, multiplying throughput in geo-distributed
// deployments.
//
// # Quick start
//
//	net := hraft.NewInProcNetwork(1)
//	peers := []hraft.NodeID{"n1", "n2", "n3", "n4", "n5"}
//	var nodes []*hraft.Node
//	for _, id := range peers {
//		n, err := hraft.NewNode(hraft.Options{
//			ID:        id,
//			Peers:     peers,
//			Transport: net.Endpoint(id),
//		})
//		// handle err
//		nodes = append(nodes, n)
//	}
//	idx, err := nodes[0].Propose(ctx, []byte("hello"))
//
// Proposals submitted on any node are replicated to every member; the
// committed entry stream is available through Node.Commits or the OnCommit
// callback. See the examples directory for a replicated key-value store, a
// geo-replicated C-Raft deployment, dynamic membership and leader
// failover.
//
// The deterministic discrete-event simulator and the experiment harness
// that regenerate the paper's figures live under internal/ and are driven
// by `go test -bench .` and cmd/hraft-bench.
package hraft

import (
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
	"github.com/hraft-io/hraft/internal/udpnet"
)

// Core protocol types, re-exported for the public API surface.
type (
	// NodeID identifies a site (or, at the C-Raft global level, a
	// cluster).
	NodeID = types.NodeID
	// Index is a log position (1-based; 0 means none).
	Index = types.Index
	// Term is a Raft term number.
	Term = types.Term
	// Entry is one slot of the replicated log.
	Entry = types.Entry
	// ProposalID identifies a proposal across re-proposals.
	ProposalID = types.ProposalID
	// Role is a site's role in the current term.
	Role = types.Role
	// Membership is a voting-member configuration.
	Membership = types.Config
	// Envelope is a routed protocol message.
	Envelope = types.Envelope
	// Batch is the payload of a C-Raft global-log batch entry.
	Batch = types.Batch
	// Snapshot is a point-in-time state-machine image plus the log
	// metadata locating it (see Snapshotter and Options.SnapshotThreshold).
	Snapshot = types.Snapshot
	// SnapshotMeta locates a snapshot in the log: last included
	// index/term and the membership in effect there.
	SnapshotMeta = types.SnapshotMeta
	// Snapshotter is implemented by the application state machine to
	// enable log compaction: Snapshot() serializes the state it has
	// applied so far (reporting the last applied index), Restore()
	// replaces it with a snapshot received from storage or the leader.
	Snapshotter = types.Snapshotter
)

// Role values.
const (
	// Follower participates in consensus on leader-decided entries.
	Follower = types.RoleFollower
	// Candidate is running an election.
	Candidate = types.RoleCandidate
	// Leader coordinates consensus for the term.
	Leader = types.RoleLeader
)

// Entry kinds relevant to API users.
const (
	// EntryNormal is an application entry.
	EntryNormal = types.KindNormal
	// EntryConfig is a membership configuration entry.
	EntryConfig = types.KindConfig
	// EntryNoop is a leader-internal empty entry.
	EntryNoop = types.KindNoop
	// EntryBatch is a C-Raft global-log batch.
	EntryBatch = types.KindBatch
	// EntrySessionOpen registers a client session (its commit index is the
	// SessionID).
	EntrySessionOpen = types.KindSessionOpen
	// EntrySessionExpire is a leader clock entry driving deterministic
	// session expiry.
	EntrySessionExpire = types.KindSessionExpire
)

// Transport moves envelopes between nodes; implementations include the
// in-process network and the UDP transport.
type Transport = runtime.Transport

// Storage is a site's stable storage.
type Storage = storage.Storage

// InProcNetwork connects nodes within one process, with optional latency
// and loss injection for realistic demos.
type InProcNetwork = runtime.InProcNetwork

// NewInProcNetwork returns an in-process network; seed drives loss
// sampling.
func NewInProcNetwork(seed int64) *InProcNetwork {
	return runtime.NewInProcNetwork(seed)
}

// UDPTransport is a transport over UDP datagrams (the paper's deployment
// medium).
type UDPTransport = udpnet.Transport

// ListenUDP opens a UDP transport for node id bound to addr.
func ListenUDP(id NodeID, addr string) (*UDPTransport, error) {
	return udpnet.Listen(id, addr)
}

// NewMemoryStorage returns volatile stable storage, suitable for tests and
// examples.
func NewMemoryStorage() Storage { return storage.NewMemory() }

// OpenWAL opens (or creates) file-backed stable storage at path, with
// CRC-framed records, fixed-size segments and torn-tail recovery. Fully
// synchronous: every mutation is fsynced before returning. Use
// OpenWALOptions to enable group commit.
func OpenWAL(path string) (Storage, error) { return storage.OpenWAL(path) }

// WALOptions tunes the segmented write-ahead log: group-commit fsync
// batching (with its latency/size window), segment size, and the
// fsync-batch observer.
type WALOptions = storage.WALOptions

// OpenWALOptions opens (or creates) file-backed stable storage at path
// with explicit tuning. With WALOptions.GroupCommit set, concurrent
// mutations share one buffered write + one fsync and the node gates its
// outputs on durability (acknowledgments are sent only once the entries
// they cover are on disk).
func OpenWALOptions(path string, opt WALOptions) (Storage, error) {
	return storage.OpenWALOptions(path, opt)
}

// DecodeBatch parses a Batch from an EntryBatch entry's Data.
func DecodeBatch(data []byte) (Batch, error) { return types.DecodeBatch(data) }
