package hraft_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	hraft "github.com/hraft-io/hraft"
)

// fastOptions returns aggressive timers so real-time tests finish quickly.
func fastOptions(id hraft.NodeID, peers []hraft.NodeID, tr hraft.Transport, seed int64) hraft.Options {
	return hraft.Options{
		ID:                 id,
		Peers:              peers,
		Transport:          tr,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 40 * time.Millisecond,
		ElectionTimeoutMax: 80 * time.Millisecond,
		ProposalTimeout:    100 * time.Millisecond,
		Seed:               seed,
	}
}

func startCluster(t *testing.T, n int, seed int64) (*hraft.InProcNetwork, []*hraft.Node, []hraft.NodeID) {
	t.Helper()
	net := hraft.NewInProcNetwork(seed)
	peers := make([]hraft.NodeID, n)
	for i := range peers {
		peers[i] = hraft.NodeID(fmt.Sprintf("n%d", i+1))
	}
	nodes := make([]*hraft.Node, n)
	for i, id := range peers {
		node, err := hraft.NewNode(fastOptions(id, peers, net.Endpoint(id), seed+int64(i)))
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
		net.Close()
	})
	return net, nodes, peers
}

func TestPublicAPIProposeCommit(t *testing.T) {
	_, nodes, _ := startCluster(t, 5, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	idx, err := nodes[1].Propose(ctx, []byte("hello"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if idx == 0 {
		t.Fatal("committed at index 0")
	}
	// The entry must surface on every node's commit stream.
	for i, n := range nodes {
		deadline := time.After(5 * time.Second)
		for {
			var e hraft.Entry
			select {
			case e = <-n.Commits():
			case <-deadline:
				t.Fatalf("node %d never saw the committed entry", i)
			}
			if e.Kind == hraft.EntryNormal && string(e.Data) == "hello" {
				break
			}
		}
	}
}

func TestPublicAPILinearizableAndLeaseReads(t *testing.T) {
	_, nodes, _ := startCluster(t, 5, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	wIdx, err := nodes[0].Propose(ctx, []byte("w"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	// A linearizable read from any node returns an index covering the
	// completed write, without writing a log entry.
	for i, n := range nodes[:3] {
		rIdx, err := n.Read(ctx)
		if err != nil {
			t.Fatalf("node %d Read: %v", i, err)
		}
		if rIdx < wIdx {
			t.Fatalf("node %d read index %d below committed write %d", i, rIdx, wIdx)
		}
	}
	// Lease and stale modes resolve too (lease falls back to ReadIndex
	// until the lease is warm, so no timing assumptions here).
	if _, err := nodes[1].ReadWith(ctx, hraft.ReadLeaseBased); err != nil {
		t.Fatalf("lease read: %v", err)
	}
	if _, err := nodes[2].ReadWith(ctx, hraft.ReadStale); err != nil {
		t.Fatalf("stale read: %v", err)
	}
	// The leader exposes per-peer replication progress.
	var leaderStatus []hraft.PeerStatus
	for _, n := range nodes {
		if s := n.PeerStatus(); len(s) > 0 {
			leaderStatus = s
			break
		}
	}
	if len(leaderStatus) == 0 {
		t.Fatal("no node exposes peer status")
	}
}

func TestPublicAPIFollowerLocalReads(t *testing.T) {
	_, nodes, _ := startCluster(t, 5, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	wIdx, err := nodes[0].Propose(ctx, []byte("flw"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	// Find a follower: a follower-local read confirms an index with the
	// leader, waits for the follower's own commit index to cover it, and
	// resolves — the caller then serves from follower-local state.
	var follower *hraft.Node
	for _, n := range nodes {
		if n.Role() != hraft.Leader && n.Leader() != "" {
			follower = n
			break
		}
	}
	if follower == nil {
		t.Fatal("no settled follower found")
	}
	rIdx, err := follower.ReadWith(ctx, hraft.ReadFollowerLocal)
	if err != nil {
		t.Fatalf("follower-local read: %v", err)
	}
	if rIdx < wIdx {
		t.Fatalf("read index %d below committed write %d", rIdx, wIdx)
	}
	if follower.CommitIndex() < rIdx {
		t.Fatalf("resolved at %d beyond local commit %d: not locally servable",
			rIdx, follower.CommitIndex())
	}
	if follower.Metrics()["readpath.reads_follower_local"] == 0 {
		t.Fatal("reads_follower_local counter did not move")
	}
	// On the leader the mode degenerates to a plain linearizable read.
	for _, n := range nodes {
		if n.Role() == hraft.Leader {
			if _, err := n.ReadWith(ctx, hraft.ReadFollowerLocal); err != nil {
				t.Fatalf("leader-side follower-local read: %v", err)
			}
			break
		}
	}
}

func TestPublicAPISessionExactlyOnce(t *testing.T) {
	_, nodes, _ := startCluster(t, 3, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// Drain commit streams and count applies of the payload on node 1.
	applies := make(chan struct{}, 16)
	for i, n := range nodes {
		i, n := i, n
		go func() {
			for e := range n.Commits() {
				if i == 1 && e.Kind == hraft.EntryNormal && string(e.Data) == "pay-once" {
					applies <- struct{}{}
				}
			}
		}()
	}

	sess, err := nodes[0].OpenSession(ctx)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	idx, err := sess.Propose(ctx, []byte("pay-once"))
	if err != nil {
		t.Fatalf("Session.Propose: %v", err)
	}
	if idx == 0 {
		t.Fatal("committed at index 0")
	}
	// Retry the same sequence (the lost-ack path): cached index, no
	// second apply.
	again, err := sess.ProposeAt(ctx, sess.LastSeq(), []byte("pay-once"))
	if err != nil {
		t.Fatalf("ProposeAt retry: %v", err)
	}
	if again != idx {
		t.Fatalf("retry resolved to %d, want %d", again, idx)
	}
	// Reattaching (a client restart) preserves the identity.
	re := nodes[0].AttachSession(sess.ID(), sess.LastSeq())
	again, err = re.ProposeAt(ctx, 1, []byte("pay-once"))
	if err != nil {
		t.Fatalf("ProposeAt after reattach: %v", err)
	}
	if again != idx {
		t.Fatalf("reattached retry resolved to %d, want %d", again, idx)
	}

	<-applies
	select {
	case <-applies:
		t.Fatal("payload applied more than once")
	case <-time.After(500 * time.Millisecond):
	}
}

func TestPublicAPIPipelinedProposals(t *testing.T) {
	_, nodes, _ := startCluster(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := nodes[0].Propose(ctx, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	if ci := nodes[0].CommitIndex(); ci < 10 {
		t.Fatalf("commit index %d after 10 proposals", ci)
	}
	go func() {
		for range nodes[0].Commits() {
		}
	}()
}

func TestPublicAPILeaderFailover(t *testing.T) {
	_, nodes, peers := startCluster(t, 5, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := nodes[2].Propose(ctx, []byte("before")); err != nil {
		t.Fatalf("pre-failover propose: %v", err)
	}
	// Find and stop the leader.
	var leader hraft.NodeID
	for waited := 0; waited < 100; waited++ {
		leader = nodes[2].Leader()
		if leader != "" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leader == "" {
		t.Fatal("no leader discovered")
	}
	var survivor *hraft.Node
	for i, id := range peers {
		if id == leader {
			nodes[i].Stop()
		} else if survivor == nil || id == nodes[2].ID() {
			survivor = nodes[i]
		}
	}
	if _, err := survivor.Propose(ctx, []byte("after")); err != nil {
		t.Fatalf("post-failover propose: %v", err)
	}
	// Drain commit channels so Stop in cleanup doesn't block dispatchers.
	for _, n := range nodes {
		go func(n *hraft.Node) {
			for range n.Commits() {
			}
		}(n)
	}
}

func TestPublicAPIMembershipJoin(t *testing.T) {
	net, nodes, peers := startCluster(t, 3, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := nodes[0].Propose(ctx, []byte("warmup")); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	joiner, err := hraft.NewNode(fastOptions("n4", nil, net.Endpoint("n4"), 99))
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	joiner.Join(peers)
	deadline := time.After(10 * time.Second)
	for {
		if joiner.Members().Contains("n4") && nodes[0].Members().Contains("n4") {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("join never completed: joiner=%v n1=%v",
				joiner.Members(), nodes[0].Members())
		case <-time.After(20 * time.Millisecond):
		}
	}
	for _, n := range append(nodes, joiner) {
		go func(n *hraft.Node) {
			for range n.Commits() {
			}
		}(n)
	}
	if _, err := joiner.Propose(ctx, []byte("from joiner")); err != nil {
		t.Fatalf("joiner propose: %v", err)
	}
}

func TestPublicAPICRaftGlobalCommit(t *testing.T) {
	net := hraft.NewInProcNetwork(7)
	specs := map[hraft.NodeID][]hraft.NodeID{
		"cA": {"a1", "a2", "a3"},
		"cB": {"b1", "b2", "b3"},
	}
	clusters := []hraft.NodeID{"cA", "cB"}
	var all []*hraft.CRaftNode
	byID := make(map[hraft.NodeID]*hraft.CRaftNode)
	for _, cid := range clusters {
		for i, sid := range specs[cid] {
			node, err := hraft.NewCRaftNode(hraft.CRaftOptions{
				ID:              sid,
				Cluster:         cid,
				ClusterPeers:    specs[cid],
				GlobalClusters:  clusters,
				Transport:       net.Endpoint(sid),
				BatchSize:       5,
				LocalHeartbeat:  10 * time.Millisecond,
				GlobalHeartbeat: 40 * time.Millisecond,
				Seed:            int64(100 + i),
			})
			if err != nil {
				t.Fatalf("NewCRaftNode(%s): %v", sid, err)
			}
			all = append(all, node)
			byID[sid] = node
		}
	}
	defer func() {
		for _, n := range all {
			n.Stop()
		}
		net.Close()
	}()
	for _, n := range all {
		go func(n *hraft.CRaftNode) {
			for range n.Commits() {
			}
		}(n)
		go func(n *hraft.CRaftNode) {
			for range n.GlobalCommits() {
			}
		}(n)
	}
	// Keep the cluster endpoints pointed at the current local leaders.
	stopRouting := make(chan struct{})
	defer close(stopRouting)
	go func() {
		for {
			select {
			case <-stopRouting:
				return
			case <-time.After(20 * time.Millisecond):
			}
			for _, cid := range clusters {
				for _, sid := range specs[cid] {
					if byID[sid].IsClusterLeader() {
						hraft.RegisterClusterEndpoint(net, cid, byID[sid])
						break
					}
				}
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Propose 12 entries in cluster A: at batch size 5 at least two batches
	// must commit globally and be visible in cluster B.
	for i := 0; i < 12; i++ {
		if _, err := byID["a1"].Propose(ctx, []byte(fmt.Sprintf("a-%d", i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	deadline := time.After(20 * time.Second)
	for {
		if byID["b1"].GlobalCommitIndex() >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("cluster B never learned global commits (b1 gCommit=%d)",
				byID["b1"].GlobalCommitIndex())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestPublicAPIRaftBaseline(t *testing.T) {
	net := hraft.NewInProcNetwork(9)
	defer net.Close()
	peers := []hraft.NodeID{"r1", "r2", "r3"}
	var nodes []*hraft.RaftNode
	for i, id := range peers {
		n, err := hraft.NewRaftNode(hraft.Options{
			ID:                 id,
			Peers:              peers,
			Transport:          net.Endpoint(id),
			HeartbeatInterval:  10 * time.Millisecond,
			ElectionTimeoutMin: 40 * time.Millisecond,
			ElectionTimeoutMax: 80 * time.Millisecond,
			Seed:               int64(i + 1),
		})
		if err != nil {
			t.Fatalf("NewRaftNode(%s): %v", id, err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
		go func(n *hraft.RaftNode) {
			for range n.Commits() {
			}
		}(n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := nodes[1].Propose(ctx, []byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	if nodes[1].CommitIndex() < 5 {
		t.Fatalf("commit index = %d", nodes[1].CommitIndex())
	}
	if nodes[1].Leader() == "" {
		t.Fatal("no leader known")
	}
}

// logStore is a minimal Snapshotter: it folds committed entries into a map
// and serializes it with the last applied index.
type logStore struct {
	mu      sync.Mutex
	vals    map[string]string
	applied hraft.Index
	// restored counts Restore calls so tests can assert restore-on-open.
	restored int
}

func newLogStore() *logStore { return &logStore{vals: make(map[string]string)} }

func (s *logStore) apply(e hraft.Entry) {
	if e.Kind != hraft.EntryNormal {
		return
	}
	k, v, ok := strings.Cut(string(e.Data), "=")
	if !ok {
		return
	}
	s.mu.Lock()
	if e.Index > s.applied {
		s.vals[k] = v
		s.applied = e.Index
	}
	s.mu.Unlock()
}

func (s *logStore) Snapshot() ([]byte, hraft.Index, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sb strings.Builder
	keys := make([]string, 0, len(s.vals))
	for k := range s.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s\n", k, s.vals[k])
	}
	return []byte(sb.String()), s.applied, nil
}

func (s *logStore) Restore(snap hraft.Snapshot) error {
	vals := make(map[string]string)
	for _, line := range strings.Split(string(snap.Data), "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			vals[k] = v
		}
	}
	s.mu.Lock()
	s.vals = vals
	s.applied = snap.Meta.LastIndex
	s.restored++
	s.mu.Unlock()
	return nil
}

func (s *logStore) get(k string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

// TestPublicAPISnapshotCompactionAndWALRestore drives the full loop on a
// real WAL: compaction while running, reopening the WAL loads only
// snapshot + suffix, and a restarted node restores the state machine from
// the snapshot before replaying the remaining log.
func TestPublicAPISnapshotCompactionAndWALRestore(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "n1.wal")
	net := hraft.NewInProcNetwork(5)
	defer net.Close()

	const threshold = 8
	start := func(store *logStore) *hraft.Node {
		wal, err := hraft.OpenWAL(walPath)
		if err != nil {
			t.Fatalf("OpenWAL: %v", err)
		}
		node, err := hraft.NewNode(hraft.Options{
			ID:                 "n1",
			Peers:              []hraft.NodeID{"n1"},
			Transport:          net.Endpoint("n1"),
			Storage:            wal,
			HeartbeatInterval:  5 * time.Millisecond,
			ElectionTimeoutMin: 20 * time.Millisecond,
			ElectionTimeoutMax: 40 * time.Millisecond,
			SnapshotThreshold:  threshold,
			Snapshotter:        store,
			OnCommit:           store.apply,
			Seed:               1,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		go func() {
			for range node.Commits() {
			}
		}()
		return node
	}

	store := newLogStore()
	node := start(store)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 3*threshold; i++ {
		if _, err := node.Propose(ctx, []byte(fmt.Sprintf("k%02d=v%d", i%6, i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for node.FirstIndex() == 1 {
		if time.Now().After(deadline) {
			t.Fatal("log never compacted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	commitBefore := node.CommitIndex()
	node.Stop()

	// The reopened WAL must hold only the snapshot + suffix.
	wal, err := hraft.OpenWAL(walPath)
	if err != nil {
		t.Fatalf("reopen WAL: %v", err)
	}
	snap, ok, err := wal.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot after compaction: ok=%v err=%v", ok, err)
	}
	_, entries, err := wal.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Index <= snap.Meta.LastIndex {
			t.Fatalf("WAL still holds compacted entry %d (boundary %d)", e.Index, snap.Meta.LastIndex)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted node must restore the state machine from the snapshot.
	store2 := newLogStore()
	node2 := start(store2)
	defer node2.Stop()
	if store2.restored == 0 {
		t.Fatal("restart did not restore from the stored snapshot")
	}
	deadline = time.Now().Add(10 * time.Second)
	for node2.CommitIndex() < commitBefore {
		if time.Now().After(deadline) {
			t.Fatalf("restarted node commit %d < %d", node2.CommitIndex(), commitBefore)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := node2.Propose(ctx, []byte("after=restart")); err != nil {
		t.Fatalf("propose after restart: %v", err)
	}
	waitFor := time.Now().Add(5 * time.Second)
	for store2.get("after") != "restart" {
		if time.Now().After(waitFor) {
			t.Fatal("post-restart write never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The last pre-restart value of every key must have survived through
	// snapshot + replay.
	last := 3*threshold - 1
	wantKey := fmt.Sprintf("k%02d", last%6)
	wantVal := fmt.Sprintf("v%d", last)
	if got := store2.get(wantKey); got != wantVal {
		t.Fatalf("state after restore: %s=%q, want %q", wantKey, got, wantVal)
	}
}
