// Package audit is the streaming cluster-wide safety auditor: it consumes
// the flight-recorder event stream of every node in a cluster (live via
// trace.Recorder.Attach, or offline via ObserveAll over a merged dump) and
// continuously checks the consensus invariants the paper's correctness
// argument rests on:
//
//   - election-safety: at most one leader identity per (group, term). The
//     identity compared is the event's Peer (the winner's protocol self),
//     not the recording label — at the C-Raft global level two different
//     sites of one cluster may legitimately win the same global term,
//     because the cluster is the member.
//   - lease-disjoint: no two distinct identities hold overlapping serving
//     leases in one group's timeline. A lease dies with a step-down (the
//     cores discard the lease manager), a revoke event, a reboot, or a
//     crash reported through NodeDown.
//   - committed-prefix: any two commits at the same (group, index) carry
//     the same entry identity digest — the cross-node agreement check.
//   - term-monotonic / commit-monotonic / apply-monotonic: per recording
//     instance, the term, commit index and applied index never move
//     backwards within a boot epoch. EvBoot opens a new epoch (a rebooted
//     node legitimately recommits from its snapshot boundary).
//   - snapshot-boundary: a compaction boundary never exceeds the commit
//     index at compaction time.
//   - session-exactly-once: a (session, seq) pair applies at exactly one
//     log index per group; observing it at a second index means a
//     duplicate commit slipped past the session registry.
//
// The auditor keeps a bounded window of recent events and attaches a copy
// to every violation, so a failure report carries the narrative leading up
// to it, not just the verdict. It is sans-io and deterministic: feeding the
// same event sequence always yields the same violations.
package audit

import (
	"fmt"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Invariant names, as reported in violations and metric keys.
const (
	InvElectionSafety  = "election-safety"
	InvLeaseDisjoint   = "lease-disjoint"
	InvCommittedPrefix = "committed-prefix"
	InvTermMonotonic   = "term-monotonic"
	InvCommitMonotonic = "commit-monotonic"
	InvApplyMonotonic  = "apply-monotonic"
	InvSnapshotBound   = "snapshot-boundary"
	InvSessionOnce     = "session-exactly-once"
)

// MetricPrefix is the key prefix violation counters are exposed under in
// Metrics maps ("audit.violations.<invariant>").
const MetricPrefix = "audit.violations."

// Violation is one detected invariant breach.
type Violation struct {
	// Invariant names the broken invariant (the Inv* constants).
	Invariant string `json:"invariant"`
	// Detail is the human-readable specifics (who, which term/index).
	Detail string `json:"detail"`
	// Event is the event that completed the violation.
	Event trace.Event `json:"event"`
	// Window is a copy of the most recent events up to and including
	// Event — the narrative leading into the breach.
	Window []trace.Event `json:"window,omitempty"`
	// TraceID is the offending proposal's sampled trace context (0 =
	// unsampled), lifted from the completing event so the breach can be
	// cross-referenced with its assembled cross-node trace.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// Error renders the violation as one line; Violation satisfies error so
// harness plumbing can surface it directly.
func (v Violation) Error() string {
	s := fmt.Sprintf("audit: %s violation: %s", v.Invariant, v.Detail)
	if v.TraceID != 0 {
		s += fmt.Sprintf(" trace=%016x", v.TraceID)
	}
	return s
}

// Report renders the violation with its formatted event window.
func (v Violation) Report() string {
	s := v.Error()
	if len(v.Window) > 0 {
		s += fmt.Sprintf("\nevent window (%d events, oldest first):\n%s", len(v.Window), trace.Format(v.Window))
	}
	return s
}

// Report is a point-in-time audit summary (the /debug/hraft/audit and
// hraft-audit replay shape).
type Report struct {
	// Clean is true when no invariant has been violated.
	Clean bool `json:"clean"`
	// EventsChecked counts events observed so far.
	EventsChecked uint64 `json:"events_checked"`
	// Counts maps "audit.violations.<invariant>" to its violation count.
	Counts map[string]uint64 `json:"counts,omitempty"`
	// Violations lists every breach in detection order.
	Violations []Violation `json:"violations,omitempty"`
}

// Options parametrizes an Auditor.
type Options struct {
	// WindowSize bounds the recent-event window attached to violations
	// (0 = 64).
	WindowSize int
	// OnViolation, when set, runs synchronously on every violation, after
	// it is recorded. A strict harness panics here so the violating test
	// fails loudly at the violating event.
	OnViolation func(Violation)
	// MaxViolations bounds the retained violation list (0 = 128); the
	// counters keep counting past it.
	MaxViolations int
}

type groupTerm struct {
	group string
	term  types.Term
}

type groupIndex struct {
	group string
	index types.Index
}

type groupSess struct {
	group        string
	session, seq uint64
}

type leaderRec struct {
	identity types.NodeID
	node     string
}

type commitRec struct {
	digest uint64
	node   string
}

type sessRec struct {
	index types.Index
	node  string
}

// nodeState is the per-recording-instance watermark set, keyed by the
// event's Node label (one label per consensus instance: "a1" and
// "a1/global" are audited separately).
type nodeState struct {
	term    types.Term
	commit  types.Index
	applied types.Index

	leaseHolder types.NodeID
	leaseUntil  time.Duration
	leaseActive bool
	group       string // group of the instance's last lease event
}

// Auditor streams events and accumulates violations. The zero value is not
// usable; construct with New. All methods are safe for concurrent use —
// recorders on several goroutines may share one auditor.
type Auditor struct {
	mu      sync.Mutex
	opts    Options
	checked uint64

	window []trace.Event // ring, wseq total appended
	wseq   uint64

	nodes     map[string]*nodeState
	leaders   map[groupTerm]leaderRec
	committed map[groupIndex]commitRec
	sessions  map[groupSess]sessRec

	counts     map[string]uint64
	violations []Violation
	dropped    uint64
}

// New builds an auditor.
func New(opts Options) *Auditor {
	if opts.WindowSize <= 0 {
		opts.WindowSize = 64
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 128
	}
	return &Auditor{
		opts:      opts,
		window:    make([]trace.Event, 0, opts.WindowSize),
		nodes:     make(map[string]*nodeState),
		leaders:   make(map[groupTerm]leaderRec),
		committed: make(map[groupIndex]commitRec),
		sessions:  make(map[groupSess]sessRec),
		counts:    make(map[string]uint64),
	}
}

// Observe feeds one event. Its signature matches trace.Recorder.Attach, so
// `rec.Attach(aud.Observe)` wires a node in live. Nil-safe.
func (a *Auditor) Observe(e trace.Event) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.observeLocked(e)
}

// ObserveAll replays a (typically merged, time-ordered) event slice — the
// offline entry point. Nil-safe.
func (a *Auditor) ObserveAll(events []trace.Event) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range events {
		a.observeLocked(e)
	}
}

// AttachTo subscribes the auditor to a recorder's event stream: sugar for
// r.Attach(a.Observe), nil-safe on both sides. The auditor then observes
// every event of every recorder sharing r's ring, in recording order.
func (a *Auditor) AttachTo(r *trace.Recorder) {
	if a == nil || r == nil {
		return
	}
	r.Attach(a.Observe)
}

// NodeDown tells the auditor a recording instance crashed or was torn
// down outside the event stream (the harness feeds crash transitions
// here): its serving lease, if any, dies with it. A later EvBoot from the
// same label opens a fresh epoch. Nil-safe.
func (a *Auditor) NodeDown(label string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ns, ok := a.nodes[label]; ok {
		ns.leaseActive = false
	}
}

func (a *Auditor) observeLocked(e trace.Event) {
	a.checked++
	if len(a.window) < cap(a.window) {
		a.window = append(a.window, e)
	} else {
		a.window[a.wseq%uint64(cap(a.window))] = e
	}
	a.wseq++

	ns := a.nodes[e.Node]
	if ns == nil {
		ns = &nodeState{}
		a.nodes[e.Node] = ns
	}

	// Term monotonicity, on events that carry the instance's CURRENT term
	// (EvVote and EvStage may legitimately carry older terms: a vote for a
	// past round, a span opened in a previous term).
	switch e.Type {
	case trace.EvRoleChange, trace.EvElectionStart, trace.EvElectionWon,
		trace.EvAppendDispatch, trace.EvAppendAck, trace.EvAppendReject,
		trace.EvSnapStreamStart, trace.EvCommitEntry:
		if e.Term < ns.term {
			a.violate(e, InvTermMonotonic, fmt.Sprintf(
				"%s term went backwards: %d after %d", e.Node, e.Term, ns.term))
		} else {
			ns.term = e.Term
		}
	}

	switch e.Type {
	case trace.EvBoot:
		// New epoch: the instance restarts from durable state, recommits
		// from its restored commit index, and cannot be serving a lease.
		ns.term = e.Term
		ns.commit = e.Index
		ns.applied = e.Index
		ns.leaseActive = false

	case trace.EvRoleChange:
		if types.Role(e.Arg) != types.RoleLeader {
			// Step-down discards the lease manager wholesale; no revoke
			// event is recorded, so the role transition is the lease's
			// death certificate.
			ns.leaseActive = false
		}

	case trace.EvElectionWon:
		id := identity(e)
		key := groupTerm{group: e.Group, term: e.Term}
		if prev, ok := a.leaders[key]; ok {
			if prev.identity != id {
				a.violate(e, InvElectionSafety, fmt.Sprintf(
					"group %q term %d has two leaders: %s (on %s) and %s (on %s)",
					e.Group, e.Term, prev.identity, prev.node, id, e.Node))
			}
		} else {
			a.leaders[key] = leaderRec{identity: id, node: e.Node}
		}

	case trace.EvLeaseExtend:
		id := identity(e)
		until := time.Duration(e.Arg)
		for label, other := range a.nodes {
			if label == e.Node || !other.leaseActive || other.group != e.Group {
				continue
			}
			if other.leaseHolder != id && other.leaseUntil > e.At {
				a.violate(e, InvLeaseDisjoint, fmt.Sprintf(
					"group %q: %s (on %s) extended a lease to %s while %s (on %s) holds one to %s",
					e.Group, id, e.Node, until, other.leaseHolder, label, other.leaseUntil))
			}
		}
		if !ns.leaseActive || until > ns.leaseUntil {
			ns.leaseUntil = until
		}
		ns.leaseHolder = id
		ns.leaseActive = true
		ns.group = e.Group

	case trace.EvLeaseRevoke:
		ns.leaseActive = false

	case trace.EvCommitEntry:
		if e.Index <= ns.commit {
			a.violate(e, InvCommitMonotonic, fmt.Sprintf(
				"%s commit index went backwards: %d at or below %d without a reboot",
				e.Node, e.Index, ns.commit))
		} else {
			ns.commit = e.Index
		}
		key := groupIndex{group: e.Group, index: e.Index}
		if prev, ok := a.committed[key]; ok {
			if prev.digest != e.Arg {
				a.violate(e, InvCommittedPrefix, fmt.Sprintf(
					"group %q index %d: %s committed digest %016x but %s committed %016x",
					e.Group, e.Index, prev.node, prev.digest, e.Node, e.Arg))
			}
		} else {
			a.committed[key] = commitRec{digest: e.Arg, node: e.Node}
		}

	case trace.EvSnapInstall:
		// An installed snapshot fast-forwards both watermarks to its
		// boundary: the instance now holds state through it.
		if e.Index > ns.commit {
			ns.commit = e.Index
		}
		if e.Index > ns.applied {
			ns.applied = e.Index
		}

	case trace.EvCompact:
		if e.Index > types.Index(e.Arg) {
			a.violate(e, InvSnapshotBound, fmt.Sprintf(
				"%s compacted at boundary %d beyond its commit index %d",
				e.Node, e.Index, e.Arg))
		}

	case trace.EvApplySession:
		if e.Index <= ns.applied {
			a.violate(e, InvApplyMonotonic, fmt.Sprintf(
				"%s applied index %d at or below %d without a reboot",
				e.Node, e.Index, ns.applied))
		} else {
			ns.applied = e.Index
		}
		key := groupSess{group: e.Group, session: e.Arg, seq: e.Arg2}
		if prev, ok := a.sessions[key]; ok {
			if prev.index != e.Index {
				a.violate(e, InvSessionOnce, fmt.Sprintf(
					"group %q session %d seq %d applied twice: at index %d (on %s) and index %d (on %s)",
					e.Group, e.Arg, e.Arg2, prev.index, prev.node, e.Index, e.Node))
			}
		} else {
			a.sessions[key] = sessRec{index: e.Index, node: e.Node}
		}
	}
}

// identity resolves the protocol identity an event speaks for: its Peer
// (the self the core stamped), falling back to the recording label.
func identity(e trace.Event) types.NodeID {
	if e.Peer != types.None {
		return e.Peer
	}
	return types.NodeID(e.Node)
}

func (a *Auditor) violate(e trace.Event, invariant, detail string) {
	a.counts[MetricPrefix+invariant]++
	v := Violation{Invariant: invariant, Detail: detail, Event: e, Window: a.windowCopy(), TraceID: e.Trace}
	if len(a.violations) < a.opts.MaxViolations {
		a.violations = append(a.violations, v)
	} else {
		a.dropped++
	}
	if a.opts.OnViolation != nil {
		a.opts.OnViolation(v)
	}
}

// windowCopy snapshots the recent-event ring, oldest first.
func (a *Auditor) windowCopy() []trace.Event {
	if len(a.window) < cap(a.window) {
		return append([]trace.Event(nil), a.window...)
	}
	n := uint64(cap(a.window))
	out := make([]trace.Event, 0, n)
	start := a.wseq % n
	out = append(out, a.window[start:]...)
	out = append(out, a.window[:start]...)
	return out
}

// Violations returns every retained violation in detection order. Nil-safe.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// Err returns the first violation as an error, or nil when clean. Nil-safe.
func (a *Auditor) Err() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.violations) == 0 {
		return nil
	}
	return a.violations[0]
}

// EventsChecked returns the number of events observed. Nil-safe.
func (a *Auditor) EventsChecked() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checked
}

// Metrics returns the violation counters ("audit.violations.<invariant>").
// Nil-safe.
func (a *Auditor) Metrics() map[string]uint64 {
	out := make(map[string]uint64)
	a.MergeMetrics(out)
	return out
}

// MergeMetrics folds the violation counters into dst. Nil-safe.
func (a *Auditor) MergeMetrics(dst map[string]uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for k, v := range a.counts {
		dst[k] += v
	}
}

// Snapshot returns the full audit report. Nil-safe (reports clean).
func (a *Auditor) Snapshot() Report {
	if a == nil {
		return Report{Clean: true}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	r := Report{
		Clean:         len(a.violations) == 0 && a.dropped == 0,
		EventsChecked: a.checked,
		Violations:    append([]Violation(nil), a.violations...),
	}
	if len(a.counts) > 0 {
		r.Counts = make(map[string]uint64, len(a.counts))
		for k, v := range a.counts {
			r.Counts[k] = v
		}
	}
	return r
}
