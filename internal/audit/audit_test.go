package audit

import (
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// won builds an election-won event: node's instance claims leadership of
// group in term, speaking as identity id.
func won(at time.Duration, node, group string, term types.Term, id types.NodeID) trace.Event {
	return trace.Event{At: at, Node: node, Group: group, Type: trace.EvElectionWon, Term: term, Peer: id}
}

// commit builds a commit event for (group, index) with the given digest.
func commit(at time.Duration, node, group string, term types.Term, index types.Index, digest uint64) trace.Event {
	return trace.Event{At: at, Node: node, Group: group, Type: trace.EvCommitEntry, Term: term, Index: index, Arg: digest}
}

// lease builds a lease-extend event: holder id on node serves group until
// the given deadline.
func lease(at time.Duration, node, group string, id types.NodeID, until time.Duration) trace.Event {
	return trace.Event{At: at, Node: node, Group: group, Type: trace.EvLeaseExtend, Peer: id, Arg: uint64(until)}
}

// applySess builds a session-scoped apply of (session, seq) at index.
func applySess(at time.Duration, node, group string, index types.Index, session, seq uint64) trace.Event {
	return trace.Event{At: at, Node: node, Group: group, Type: trace.EvApplySession, Index: index, Arg: session, Arg2: seq}
}

// expectViolation replays events and asserts exactly one violation of the
// named invariant, returning it.
func expectViolation(t *testing.T, invariant string, events []trace.Event) Violation {
	t.Helper()
	a := New(Options{})
	a.ObserveAll(events)
	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("want exactly one violation, got %d: %v", len(vs), vs)
	}
	if vs[0].Invariant != invariant {
		t.Fatalf("violation names %q, want %q (%s)", vs[0].Invariant, invariant, vs[0].Detail)
	}
	if got := a.Metrics()[MetricPrefix+invariant]; got != 1 {
		t.Fatalf("counter %s%s = %d, want 1", MetricPrefix, invariant, got)
	}
	if a.Snapshot().Clean {
		t.Fatal("report still claims clean")
	}
	return vs[0]
}

// expectClean replays events and asserts no violation at all.
func expectClean(t *testing.T, events []trace.Event) {
	t.Helper()
	a := New(Options{})
	a.ObserveAll(events)
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("clean stream produced violations: %v", vs)
	}
	if r := a.Snapshot(); !r.Clean || r.EventsChecked != uint64(len(events)) {
		t.Fatalf("report = %+v, want clean with %d events checked", r, len(events))
	}
	if err := a.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestElectionSafety(t *testing.T) {
	// Two different identities winning one (group, term) is the canonical
	// split-brain.
	v := expectViolation(t, InvElectionSafety, []trace.Event{
		won(1*time.Millisecond, "n1", "", 3, "n1"),
		won(2*time.Millisecond, "n2", "", 3, "n2"),
	})
	if !strings.Contains(v.Detail, "term 3") {
		t.Fatalf("detail does not name the term: %s", v.Detail)
	}

	// Different terms: fine.
	expectClean(t, []trace.Event{
		won(1*time.Millisecond, "n1", "", 3, "n1"),
		won(2*time.Millisecond, "n2", "", 4, "n2"),
	})
	// Different groups: fine.
	expectClean(t, []trace.Event{
		won(1*time.Millisecond, "a1", "local/cA", 3, "a1"),
		won(2*time.Millisecond, "b1", "local/cB", 3, "b1"),
	})
	// One identity observed winning on two recording instances: at the
	// C-Raft global level two sites of one cluster speak for the same
	// member, so identity — not the recording label — is what must be
	// unique.
	expectClean(t, []trace.Event{
		won(1*time.Millisecond, "a1/global", "global", 3, "cA"),
		won(2*time.Millisecond, "a2/global", "global", 3, "cA"),
	})
}

func TestLeaseDisjointness(t *testing.T) {
	// n2 grants itself a lease while n1's is still running.
	v := expectViolation(t, InvLeaseDisjoint, []trace.Event{
		lease(10*time.Millisecond, "n1", "", "n1", 100*time.Millisecond),
		lease(50*time.Millisecond, "n2", "", "n2", 150*time.Millisecond),
	})
	if !strings.Contains(v.Detail, "n1") || !strings.Contains(v.Detail, "n2") {
		t.Fatalf("detail does not name both holders: %s", v.Detail)
	}

	// The old lease expired before the new grant: disjoint.
	expectClean(t, []trace.Event{
		lease(10*time.Millisecond, "n1", "", "n1", 100*time.Millisecond),
		lease(200*time.Millisecond, "n2", "", "n2", 300*time.Millisecond),
	})
	// The old holder revoked first.
	expectClean(t, []trace.Event{
		lease(10*time.Millisecond, "n1", "", "n1", 100*time.Millisecond),
		{At: 20 * time.Millisecond, Node: "n1", Type: trace.EvLeaseRevoke, Peer: "n1"},
		lease(50*time.Millisecond, "n2", "", "n2", 150*time.Millisecond),
	})
	// The old holder stepped down (role change is the lease's death
	// certificate; the cores record no revoke on step-down).
	expectClean(t, []trace.Event{
		lease(10*time.Millisecond, "n1", "", "n1", 100*time.Millisecond),
		{At: 20 * time.Millisecond, Node: "n1", Type: trace.EvRoleChange, Term: 2, Arg: uint64(types.RoleFollower)},
		lease(50*time.Millisecond, "n2", "", "n2", 150*time.Millisecond),
	})
	// Same holder extending on another recording instance: one identity,
	// no overlap.
	expectClean(t, []trace.Event{
		lease(10*time.Millisecond, "a1/global", "global", "cA", 100*time.Millisecond),
		lease(50*time.Millisecond, "a2/global", "global", "cA", 150*time.Millisecond),
	})
	// Different groups may overlap freely.
	expectClean(t, []trace.Event{
		lease(10*time.Millisecond, "a1", "local/cA", "a1", 100*time.Millisecond),
		lease(50*time.Millisecond, "b1", "local/cB", "b1", 150*time.Millisecond),
	})
}

func TestLeaseDiesWithNodeDown(t *testing.T) {
	a := New(Options{})
	a.Observe(lease(10*time.Millisecond, "n1", "", "n1", 100*time.Millisecond))
	a.NodeDown("n1")
	a.Observe(lease(50*time.Millisecond, "n2", "", "n2", 150*time.Millisecond))
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("lease survived NodeDown: %v", vs)
	}
}

func TestCommittedPrefixAgreement(t *testing.T) {
	v := expectViolation(t, InvCommittedPrefix, []trace.Event{
		commit(1*time.Millisecond, "n1", "", 2, 7, 0xaaaa),
		commit(2*time.Millisecond, "n2", "", 2, 7, 0xbbbb),
	})
	if !strings.Contains(v.Detail, "index 7") {
		t.Fatalf("detail does not name the index: %s", v.Detail)
	}

	// Replicas committing the same digest at one index is the normal case.
	expectClean(t, []trace.Event{
		commit(1*time.Millisecond, "n1", "", 2, 7, 0xaaaa),
		commit(2*time.Millisecond, "n2", "", 2, 7, 0xaaaa),
	})
	// Same index in different groups is unrelated.
	expectClean(t, []trace.Event{
		commit(1*time.Millisecond, "a1", "local/cA", 2, 7, 0xaaaa),
		commit(2*time.Millisecond, "b1", "local/cB", 2, 7, 0xbbbb),
	})
}

func TestTermMonotonicity(t *testing.T) {
	expectViolation(t, InvTermMonotonic, []trace.Event{
		{At: 1 * time.Millisecond, Node: "n1", Type: trace.EvRoleChange, Term: 5, Arg: uint64(types.RoleFollower)},
		{At: 2 * time.Millisecond, Node: "n1", Type: trace.EvAppendDispatch, Term: 3, Peer: "n2", Index: 1},
	})

	// A vote for an older round is legitimate (EvVote carries the
	// requested term, not the instance's current one).
	expectClean(t, []trace.Event{
		{At: 1 * time.Millisecond, Node: "n1", Type: trace.EvRoleChange, Term: 5, Arg: uint64(types.RoleFollower)},
		{At: 2 * time.Millisecond, Node: "n1", Type: trace.EvVote, Term: 3, Peer: "n2"},
	})
	// Terms may regress across a reboot: durable state rewinds to what
	// was persisted.
	expectClean(t, []trace.Event{
		{At: 1 * time.Millisecond, Node: "n1", Type: trace.EvRoleChange, Term: 5, Arg: uint64(types.RoleFollower)},
		{At: 2 * time.Millisecond, Node: "n1", Type: trace.EvBoot, Term: 4, Index: 0},
		{At: 3 * time.Millisecond, Node: "n1", Type: trace.EvRoleChange, Term: 4, Arg: uint64(types.RoleFollower)},
	})
	// Terms are per recording instance, not per process: "n1" at term 5
	// and "n1/global" at term 2 coexist.
	expectClean(t, []trace.Event{
		{At: 1 * time.Millisecond, Node: "n1", Type: trace.EvRoleChange, Term: 5, Arg: uint64(types.RoleFollower)},
		{At: 2 * time.Millisecond, Node: "n1/global", Type: trace.EvRoleChange, Term: 2, Arg: uint64(types.RoleFollower)},
	})
}

func TestCommitMonotonicity(t *testing.T) {
	expectViolation(t, InvCommitMonotonic, []trace.Event{
		commit(1*time.Millisecond, "n1", "", 2, 5, 0xaaaa),
		commit(2*time.Millisecond, "n1", "", 2, 5, 0xaaaa), // same index again
	})

	// A reboot opens a fresh epoch: recommitting above the restored
	// commit base is recovery, not regression.
	expectClean(t, []trace.Event{
		commit(1*time.Millisecond, "n1", "", 2, 5, 0xaaaa),
		{At: 2 * time.Millisecond, Node: "n1", Type: trace.EvBoot, Term: 2, Index: 3},
		commit(3*time.Millisecond, "n1", "", 2, 4, 0xcccc),
		commit(4*time.Millisecond, "n1", "", 2, 5, 0xaaaa),
	})
}

func TestApplyMonotonicity(t *testing.T) {
	expectViolation(t, InvApplyMonotonic, []trace.Event{
		applySess(1*time.Millisecond, "n1", "", 5, 1, 1),
		applySess(2*time.Millisecond, "n1", "", 4, 1, 2),
	})

	// An installed snapshot fast-forwards the applied watermark; applies
	// resume above its boundary.
	expectClean(t, []trace.Event{
		applySess(1*time.Millisecond, "n1", "", 5, 1, 1),
		{At: 2 * time.Millisecond, Node: "n1", Type: trace.EvSnapInstall, Index: 9},
		applySess(3*time.Millisecond, "n1", "", 10, 1, 2),
	})
}

func TestSnapshotBoundary(t *testing.T) {
	expectViolation(t, InvSnapshotBound, []trace.Event{
		{At: 1 * time.Millisecond, Node: "n1", Type: trace.EvCompact, Index: 10, Arg: 8},
	})
	expectClean(t, []trace.Event{
		{At: 1 * time.Millisecond, Node: "n1", Type: trace.EvCompact, Index: 8, Arg: 10},
		{At: 2 * time.Millisecond, Node: "n1", Type: trace.EvCompact, Index: 10, Arg: 10},
	})
}

func TestSessionExactlyOnce(t *testing.T) {
	// One (session, seq) landing at two different indexes means a retry
	// slipped past the dedup registry and committed twice.
	v := expectViolation(t, InvSessionOnce, []trace.Event{
		applySess(1*time.Millisecond, "n1", "", 3, 7, 1),
		applySess(2*time.Millisecond, "n2", "", 5, 7, 1),
	})
	if !strings.Contains(v.Detail, "session 7") {
		t.Fatalf("detail does not name the session: %s", v.Detail)
	}

	// Every replica applying the same entry at the same index is the
	// normal replicated-apply case.
	expectClean(t, []trace.Event{
		applySess(1*time.Millisecond, "n1", "", 3, 7, 1),
		applySess(2*time.Millisecond, "n2", "", 3, 7, 1),
		applySess(3*time.Millisecond, "n1", "", 4, 7, 2),
	})
}

func TestViolationWindowAndCallback(t *testing.T) {
	var fired []Violation
	a := New(Options{WindowSize: 4, OnViolation: func(v Violation) { fired = append(fired, v) }})
	// Enough traffic to wrap the 4-event window before the violation.
	for i := 0; i < 6; i++ {
		a.Observe(commit(time.Duration(i)*time.Millisecond, "n1", "", 1, types.Index(i+1), uint64(i)))
	}
	bad := commit(9*time.Millisecond, "n2", "", 1, 6, 0xdead) // n1 committed digest 5 there
	a.Observe(bad)

	if len(fired) != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", len(fired))
	}
	v := fired[0]
	if v.Invariant != InvCommittedPrefix {
		t.Fatalf("violation = %q", v.Invariant)
	}
	if len(v.Window) != 4 {
		t.Fatalf("window carries %d events, want the bounded 4", len(v.Window))
	}
	last := v.Window[len(v.Window)-1]
	if last.Node != bad.Node || last.Index != bad.Index {
		t.Fatalf("window does not end at the violating event: %+v", last)
	}
	for i := 1; i < len(v.Window); i++ {
		if v.Window[i].At < v.Window[i-1].At {
			t.Fatalf("window out of order: %v", v.Window)
		}
	}
	if rep := v.Report(); !strings.Contains(rep, "event window (4 events") {
		t.Fatalf("Report omits the window:\n%s", rep)
	}
}

func TestMaxViolationsBoundsListNotCounts(t *testing.T) {
	a := New(Options{MaxViolations: 2})
	for i := 0; i < 5; i++ {
		// Each iteration re-commits index 1 with a fresh digest: one
		// committed-prefix violation (against the first digest) and, after
		// the first iteration, one commit-monotonic violation each.
		a.Observe(commit(time.Duration(i)*time.Millisecond, "n1", "", 1, 1, uint64(0x100+i)))
	}
	if got := len(a.Violations()); got != 2 {
		t.Fatalf("retained %d violations, want the bounded 2", got)
	}
	m := a.Metrics()
	if m[MetricPrefix+InvCommittedPrefix] != 4 || m[MetricPrefix+InvCommitMonotonic] != 4 {
		t.Fatalf("counters stopped at the retention bound: %v", m)
	}
	if a.Snapshot().Clean {
		t.Fatal("report claims clean with dropped violations")
	}
}

func TestNilAuditorIsInert(t *testing.T) {
	var a *Auditor
	a.Observe(trace.Event{Type: trace.EvElectionWon})
	a.ObserveAll([]trace.Event{{Type: trace.EvElectionWon}})
	a.AttachTo(nil)
	a.NodeDown("n1")
	if a.Violations() != nil || a.Err() != nil || a.EventsChecked() != 0 {
		t.Fatal("nil auditor not inert")
	}
	if r := a.Snapshot(); !r.Clean {
		t.Fatalf("nil auditor report = %+v", r)
	}
	a.MergeMetrics(nil) // must not panic
}

func TestAttachToRecorderStreams(t *testing.T) {
	rec := trace.New(trace.Config{Node: "n1", Size: 16})
	a := New(Options{})
	a.AttachTo(rec)
	rec.ElectionWon(1*time.Millisecond, 3, "n1", 2)
	rec.ElectionWon(2*time.Millisecond, 3, "n2", 2) // second winner, same term
	if a.EventsChecked() != 2 {
		t.Fatalf("auditor observed %d events, want 2", a.EventsChecked())
	}
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Invariant != InvElectionSafety {
		t.Fatalf("violations = %v", vs)
	}
}
