package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/hraft-io/hraft/internal/stats"
)

// AblationFastTrackRow compares Fast Raft with and without its fast track
// (ablation A1): with the track disabled every decided entry takes the
// classic track, isolating the contribution of the paper's core mechanism.
type AblationFastTrackRow struct {
	// Variant names the configuration.
	Variant string
	// Latency summarizes commit latency.
	Latency stats.Summary
}

// AblationFastTrack runs ablation A1 on the Figure 3 setup at zero loss.
func AblationFastTrack(opts Fig3Options) ([]AblationFastTrackRow, error) {
	opts.Defaults()
	opts.LossPercents = []float64{0}
	var rows []AblationFastTrackRow
	for _, disabled := range []bool{false, true} {
		o := opts
		o.DisableFastTrack = disabled
		pts, err := Fig3CommitLatency(o)
		if err != nil {
			return nil, err
		}
		name := "fast track on"
		if disabled {
			name = "fast track off"
		}
		rows = append(rows, AblationFastTrackRow{Variant: name, Latency: pts[0].FastRaft})
	}
	return rows, nil
}

// PrintAblationFastTrack renders ablation A1.
func PrintAblationFastTrack(w io.Writer, rows []AblationFastTrackRow) {
	fmt.Fprintf(w, "Ablation A1: Fast Raft fast track on vs off (5 sites, 0%% loss)\n")
	fmt.Fprintf(w, "%-16s %-12s %-12s\n", "variant", "mean", "p90")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-12s %-12s\n", r.Variant,
			r.Latency.Mean.Round(time.Millisecond), r.Latency.P90.Round(time.Millisecond))
	}
}

// AblationBatchRow is one point of the C-Raft batch-size sweep (A2).
type AblationBatchRow struct {
	// BatchSize is entries per batch.
	BatchSize int
	// PerSec is global application-entry throughput.
	PerSec float64
}

// AblationBatchSize sweeps the C-Raft batch size on the Figure 5 setup at
// a fixed cluster count.
func AblationBatchSize(opts Fig5Options, clusters int, sizes []int) ([]AblationBatchRow, error) {
	opts.Defaults()
	if len(sizes) == 0 {
		sizes = []int{1, 5, 10, 20, 50}
	}
	rows := make([]AblationBatchRow, 0, len(sizes))
	for i, b := range sizes {
		o := opts
		o.BatchSize = b
		var total float64
		for trial := 0; trial < o.Trials; trial++ {
			v, err := fig5CraftTrial(o, clusters, o.Seed+int64(10000+100*i+trial))
			if err != nil {
				return nil, fmt.Errorf("ablation batch=%d: %w", b, err)
			}
			total += v
		}
		rows = append(rows, AblationBatchRow{BatchSize: b, PerSec: total / float64(o.Trials)})
	}
	return rows, nil
}

// PrintAblationBatchSize renders ablation A2.
func PrintAblationBatchSize(w io.Writer, clusters int, rows []AblationBatchRow) {
	fmt.Fprintf(w, "Ablation A2: C-Raft batch size sweep (%d clusters)\n", clusters)
	fmt.Fprintf(w, "%-12s %s\n", "batch", "entries/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %.1f\n", r.BatchSize, r.PerSec)
	}
}

// AblationHeartbeatRow is one point of the heartbeat sweep (A3).
type AblationHeartbeatRow struct {
	// Heartbeat is the leader tick period.
	Heartbeat time.Duration
	// Raft and FastRaft summarize commit latency at this setting.
	Raft stats.Summary
	// FastRaft is the Fast Raft summary.
	FastRaft stats.Summary
}

// AblationHeartbeat sweeps the heartbeat interval on the Figure 3 setup,
// demonstrating that both protocols' latency scales with the leader tick
// period (the timing model of DESIGN.md).
func AblationHeartbeat(opts Fig3Options, heartbeats []time.Duration) ([]AblationHeartbeatRow, error) {
	opts.Defaults()
	opts.LossPercents = []float64{0}
	if len(heartbeats) == 0 {
		heartbeats = []time.Duration{
			25 * time.Millisecond, 50 * time.Millisecond,
			100 * time.Millisecond, 200 * time.Millisecond,
		}
	}
	rows := make([]AblationHeartbeatRow, 0, len(heartbeats))
	for _, hb := range heartbeats {
		o := opts
		o.Heartbeat = hb
		pts, err := Fig3CommitLatency(o)
		if err != nil {
			return nil, fmt.Errorf("ablation hb=%s: %w", hb, err)
		}
		rows = append(rows, AblationHeartbeatRow{
			Heartbeat: hb, Raft: pts[0].Raft, FastRaft: pts[0].FastRaft,
		})
	}
	return rows, nil
}

// PrintAblationHeartbeat renders ablation A3.
func PrintAblationHeartbeat(w io.Writer, rows []AblationHeartbeatRow) {
	fmt.Fprintf(w, "Ablation A3: heartbeat sweep (5 sites, 0%% loss)\n")
	fmt.Fprintf(w, "%-12s %-12s %-12s\n", "heartbeat", "raft-mean", "fast-mean")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %-12s\n", r.Heartbeat,
			r.Raft.Mean.Round(time.Millisecond), r.FastRaft.Mean.Round(time.Millisecond))
	}
}
