package bench

import (
	"strings"
	"testing"
	"time"
)

// Small parameterizations keep these correctness tests fast; the full
// paper-scale sweeps run from bench_test.go at the repo root and from
// cmd/hraft-bench.

func TestFig3ShapeAtLowLoss(t *testing.T) {
	rows, err := Fig3CommitLatency(Fig3Options{
		LossPercents: []float64{0, 5},
		Entries:      30,
		Trials:       2,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	zero := rows[0]
	if zero.Speedup < 1.5 {
		t.Fatalf("paper: ~2x speedup at 0%% loss; got %.2fx (raft=%s fast=%s)",
			zero.Speedup, zero.Raft.Mean, zero.FastRaft.Mean)
	}
	if rows[1].FastRaft.Mean <= rows[0].FastRaft.Mean {
		t.Fatalf("fast raft should degrade with loss: 0%%=%s 5%%=%s",
			rows[0].FastRaft.Mean, rows[1].FastRaft.Mean)
	}
	var sb strings.Builder
	PrintFig3(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Fatal("table header missing")
	}
}

func TestFig4SilentLeaveShape(t *testing.T) {
	res, err := Fig4SilentLeave(Fig4Options{
		Seed:    3,
		LeaveAt: 8 * time.Second,
		RunFor:  40 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.Count == 0 || res.After.Count == 0 {
		t.Fatalf("missing phases: before=%d during=%d after=%d",
			res.Before.Count, res.During.Count, res.After.Count)
	}
	// Paper: before the leave the fast track dominates; during detection
	// only the classic track is available, so latency rises; after the
	// configuration shrinks latency returns to the 50–100 ms band.
	if res.During.Count > 0 && res.During.Mean <= res.Before.Mean {
		t.Fatalf("latency should rise during detection: before=%s during=%s",
			res.Before.Mean, res.During.Mean)
	}
	if res.ConfigShrunkAt == 0 {
		t.Fatal("configuration never shrank after silent leaves")
	}
	if res.After.Mean > 2*res.Before.Mean+50*time.Millisecond {
		t.Fatalf("latency should recover after reconfiguration: before=%s after=%s",
			res.Before.Mean, res.After.Mean)
	}
	var sb strings.Builder
	PrintFig4(&sb, res)
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Fatal("series header missing")
	}
}

func TestFig5ShapeSmall(t *testing.T) {
	rows, err := Fig5Throughput(Fig5Options{
		ClusterCounts: []int{1, 4},
		Sites:         8,
		TrialDuration: 60 * time.Second,
		Warmup:        10 * time.Second,
		Trials:        1,
		Seed:          21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	// Paper shape: C-Raft's advantage grows with geographic distribution.
	if rows[1].Speedup <= rows[0].Speedup {
		t.Fatalf("speedup should grow with clusters: n=1 %.2fx, n=4 %.2fx",
			rows[0].Speedup, rows[1].Speedup)
	}
	if rows[1].Speedup < 1.5 {
		t.Fatalf("c-raft should clearly beat raft at 4 geo clusters: %.2fx", rows[1].Speedup)
	}
	var sb strings.Builder
	PrintFig5(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Fatal("table header missing")
	}
}

func TestAblationFastTrack(t *testing.T) {
	rows, err := AblationFastTrack(Fig3Options{Entries: 20, Trials: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 variants, got %d", len(rows))
	}
	if rows[0].Latency.Mean >= rows[1].Latency.Mean {
		t.Fatalf("fast track should reduce latency: on=%s off=%s",
			rows[0].Latency.Mean, rows[1].Latency.Mean)
	}
}

func TestAblationHeartbeatScales(t *testing.T) {
	rows, err := AblationHeartbeat(
		Fig3Options{Entries: 20, Trials: 1, Seed: 41},
		[]time.Duration{50 * time.Millisecond, 200 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].FastRaft.Mean <= rows[0].FastRaft.Mean {
		t.Fatalf("latency should scale with heartbeat: 50ms=%s 200ms=%s",
			rows[0].FastRaft.Mean, rows[1].FastRaft.Mean)
	}
}

func TestAblationBatchSizeRuns(t *testing.T) {
	rows, err := AblationBatchSize(Fig5Options{
		Sites:         8,
		TrialDuration: 45 * time.Second,
		Warmup:        10 * time.Second,
		Trials:        1,
		Seed:          51,
	}, 4, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.PerSec <= 0 {
			t.Fatalf("batch=%d produced no throughput", r.BatchSize)
		}
	}
}
