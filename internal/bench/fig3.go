// Package bench implements the paper's evaluation: one experiment per
// figure, each built from the simulation harness, plus the ablations listed
// in DESIGN.md. Every experiment returns structured rows and can print the
// same table/series the paper reports.
package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/hraft-io/hraft/internal/harness"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

// Fig3Options parametrizes the Figure 3 experiment: commit latency of
// classic Raft vs Fast Raft under varying message loss (5 sites, one
// region, 100 entries per trial in the paper).
type Fig3Options struct {
	// LossPercents are the message-loss settings to sweep (paper: 0–10%).
	LossPercents []float64
	// Entries is the number of committed entries measured per trial.
	Entries int
	// Trials is the number of independent seeded trials per point.
	Trials int
	// Seed is the base random seed.
	Seed int64
	// Heartbeat overrides the leader tick period (0 = paper's 100 ms).
	Heartbeat time.Duration
	// Sites is the cluster size (0 = paper's 5).
	Sites int
	// DisableFastTrack turns Fast Raft's fast track off (ablation A1).
	DisableFastTrack bool
}

// Defaults fills unset fields with the paper's settings.
func (o *Fig3Options) Defaults() {
	if len(o.LossPercents) == 0 {
		o.LossPercents = []float64{0, 1, 2.5, 5, 7.5, 10}
	}
	if o.Entries == 0 {
		o.Entries = 100
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sites == 0 {
		o.Sites = 5
	}
}

// Fig3Row is one sweep point of Figure 3.
type Fig3Row struct {
	// LossPercent is the injected message loss.
	LossPercent float64
	// Raft summarizes classic Raft commit latency.
	Raft stats.Summary
	// FastRaft summarizes Fast Raft commit latency.
	FastRaft stats.Summary
	// Speedup is Raft mean / Fast Raft mean.
	Speedup float64
}

// Fig3CommitLatency reproduces Figure 3.
func Fig3CommitLatency(opts Fig3Options) ([]Fig3Row, error) {
	opts.Defaults()
	rows := make([]Fig3Row, 0, len(opts.LossPercents))
	for i, loss := range opts.LossPercents {
		raftSum, err := fig3Point(opts, harness.KindRaft, loss, opts.Seed+int64(100*i))
		if err != nil {
			return nil, fmt.Errorf("fig3 raft loss=%v: %w", loss, err)
		}
		fastSum, err := fig3Point(opts, harness.KindFastRaft, loss, opts.Seed+int64(100*i)+50)
		if err != nil {
			return nil, fmt.Errorf("fig3 fastraft loss=%v: %w", loss, err)
		}
		row := Fig3Row{LossPercent: loss, Raft: raftSum, FastRaft: fastSum}
		if fastSum.Mean > 0 {
			row.Speedup = float64(raftSum.Mean) / float64(fastSum.Mean)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// fig3Point measures one protocol at one loss setting, pooling latencies
// over the configured trials.
func fig3Point(opts Fig3Options, kind harness.Kind, lossPct float64, seed int64) (stats.Summary, error) {
	var all []time.Duration
	for trial := 0; trial < opts.Trials; trial++ {
		sum, err := fig3Trial(opts, kind, lossPct, seed+int64(trial))
		if err != nil {
			return stats.Summary{}, err
		}
		all = append(all, sum...)
	}
	return stats.Summarize(all), nil
}

func fig3Trial(opts Fig3Options, kind harness.Kind, lossPct float64, seed int64) ([]time.Duration, error) {
	nodes := siteNames(opts.Sites)
	c, err := harness.NewCluster(harness.Options{
		Kind:              kind,
		Nodes:             nodes,
		Seed:              seed,
		LossProb:          lossPct / 100,
		HeartbeatInterval: opts.Heartbeat,
		DisableFastTrack:  opts.DisableFastTrack,
		Audit:             harness.AuditOff,
	})
	if err != nil {
		return nil, err
	}
	if _, ok := c.WaitForLeader(30 * time.Second); !ok {
		return nil, fmt.Errorf("no leader elected (kind=%v loss=%v)", kind, lossPct)
	}
	// The paper chooses a site at random to be the proposer; with the
	// leader position itself random, a fixed non-first site is equivalent
	// under our seeding.
	proposer := nodes[1]
	p, err := c.StartProposer(harness.ProposerOptions{Node: proposer, MaxProposals: opts.Entries})
	if err != nil {
		return nil, err
	}
	deadline := c.Sched.Now() + time.Duration(opts.Entries)*5*time.Second
	if !c.RunUntil(func() bool { return p.Completed >= opts.Entries }, deadline) {
		return nil, fmt.Errorf("only %d/%d entries committed (kind=%v loss=%v)",
			p.Completed, opts.Entries, kind, lossPct)
	}
	if err := c.Safety.Err(); err != nil {
		return nil, err
	}
	return p.Series.Values(), nil
}

func siteNames(n int) []types.NodeID {
	out := make([]types.NodeID, n)
	for i := range out {
		out[i] = types.NodeID(fmt.Sprintf("n%d", i+1))
	}
	return out
}

// PrintFig3 renders the Figure 3 table.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintf(w, "Figure 3: average commit latency, classic Raft vs Fast Raft (5 sites, one region)\n")
	fmt.Fprintf(w, "%-8s %-14s %-14s %-14s %-14s %s\n",
		"loss%", "raft-mean", "raft-p90", "fast-mean", "fast-p90", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8.1f %-14s %-14s %-14s %-14s %.2fx\n",
			r.LossPercent,
			r.Raft.Mean.Round(time.Millisecond),
			r.Raft.P90.Round(time.Millisecond),
			r.FastRaft.Mean.Round(time.Millisecond),
			r.FastRaft.P90.Round(time.Millisecond),
			r.Speedup)
	}
}
