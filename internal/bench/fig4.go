package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/hraft-io/hraft/internal/harness"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

// Fig4Options parametrizes the Figure 4 experiment: per-proposal commit
// latency in Fast Raft across a silent leave of two sites (5 sites, 5%
// loss, member timeout of 5 missed heartbeat responses in the paper).
type Fig4Options struct {
	// Seed is the random seed.
	Seed int64
	// LossPercent is the injected message loss (paper: 5).
	LossPercent float64
	// LeaveAt is when the two sites leave silently.
	LeaveAt time.Duration
	// RunFor is the total experiment duration.
	RunFor time.Duration
	// MemberTimeoutRounds is the silent-leave threshold (paper: 5).
	MemberTimeoutRounds int
}

// Defaults fills unset fields with the paper's settings.
func (o *Fig4Options) Defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.LossPercent == 0 {
		o.LossPercent = 5
	}
	if o.LeaveAt == 0 {
		o.LeaveAt = 10 * time.Second
	}
	if o.RunFor == 0 {
		o.RunFor = 30 * time.Second
	}
	if o.MemberTimeoutRounds == 0 {
		o.MemberTimeoutRounds = 5
	}
}

// Fig4Result is the latency time-series around the silent leave.
type Fig4Result struct {
	// Samples holds (completion time, latency) for every committed
	// proposal.
	Samples []stats.Sample
	// LeaveAt is when the two sites left (the figure's vertical red line).
	LeaveAt time.Duration
	// Left are the sites that left silently.
	Left []types.NodeID
	// ConfigShrunkAt is when the leader committed the configuration that
	// excludes both leavers (0 if it never happened).
	ConfigShrunkAt time.Duration
	// Before/During/After summarize the three phases.
	Before stats.Summary
	// During covers LeaveAt until the configuration shrank.
	During stats.Summary
	// After covers the remainder of the run.
	After stats.Summary
}

// Fig4SilentLeave reproduces Figure 4.
func Fig4SilentLeave(opts Fig4Options) (Fig4Result, error) {
	opts.Defaults()
	nodes := siteNames(5)
	c, err := harness.NewCluster(harness.Options{
		Kind:                harness.KindFastRaft,
		Nodes:               nodes,
		Seed:                opts.Seed,
		LossProb:            opts.LossPercent / 100,
		MemberTimeoutRounds: opts.MemberTimeoutRounds,
		Audit:               harness.AuditOff,
	})
	if err != nil {
		return Fig4Result{}, err
	}
	leaderID, ok := c.WaitForLeader(30 * time.Second)
	if !ok {
		return Fig4Result{}, fmt.Errorf("no leader elected")
	}
	// Proposer: first non-leader site. Leavers: two sites that are neither
	// the leader nor the proposer, so consensus continues across the churn.
	var proposer types.NodeID
	var leavers []types.NodeID
	for _, id := range nodes {
		if id == leaderID {
			continue
		}
		if proposer == types.None {
			proposer = id
			continue
		}
		if len(leavers) < 2 {
			leavers = append(leavers, id)
		}
	}
	start := c.Sched.Now()
	p, err := c.StartProposer(harness.ProposerOptions{Node: proposer})
	if err != nil {
		return Fig4Result{}, err
	}
	leaveAt := start + opts.LeaveAt
	c.Sched.At(leaveAt, func() {
		for _, id := range leavers {
			c.Crash(id)
		}
	})
	end := start + opts.RunFor
	c.RunUntil(func() bool { return false }, end)
	p.Stop()
	if err := c.Safety.Err(); err != nil {
		return Fig4Result{}, err
	}

	res := Fig4Result{
		Samples: p.Series.Samples(),
		LeaveAt: leaveAt,
		Left:    leavers,
	}
	// Find when the leader's configuration dropped both leavers.
	if h, okLeader := c.Leader(); okLeader {
		cfg := h.Machine().Config()
		shrunk := !cfg.Contains(leavers[0]) && !cfg.Contains(leavers[1])
		if shrunk {
			// Locate the first post-leave sample committed under the
			// shrunken configuration by scanning the series for the
			// latency recovery; exact commit time of the config entry is
			// interior to the harness, so approximate with the first
			// sample after which the fast track was restored.
			res.ConfigShrunkAt = firstRecovery(p.Series, leaveAt)
		}
	}
	boundary := res.ConfigShrunkAt
	if boundary == 0 {
		boundary = end
	}
	res.Before = stats.Summarize(valuesBetween(p.Series, 0, leaveAt))
	res.During = stats.Summarize(valuesBetween(p.Series, leaveAt, boundary))
	res.After = stats.Summarize(valuesBetween(p.Series, boundary, end+time.Hour))
	return res, nil
}

func valuesBetween(s *stats.Series, lo, hi time.Duration) []time.Duration {
	var out []time.Duration
	for _, sm := range s.Between(lo, hi) {
		out = append(out, sm.Value)
	}
	return out
}

// firstRecovery estimates when the reconfiguration completed: the first
// sample after the leave that is followed by three consecutive fast-track
// latencies (≲ 1.5 heartbeats).
func firstRecovery(s *stats.Series, leaveAt time.Duration) time.Duration {
	const fastThreshold = 150 * time.Millisecond
	samples := s.Samples()
	for i := 0; i+2 < len(samples); i++ {
		if samples[i].At <= leaveAt {
			continue
		}
		if samples[i].Value <= fastThreshold &&
			samples[i+1].Value <= fastThreshold &&
			samples[i+2].Value <= fastThreshold {
			return samples[i].At
		}
	}
	return 0
}

// PrintFig4 renders the Figure 4 series and phase summary.
func PrintFig4(w io.Writer, res Fig4Result) {
	fmt.Fprintf(w, "Figure 4: Fast Raft latency across a silent leave of %v (leave at %s)\n",
		res.Left, res.LeaveAt.Round(time.Millisecond))
	fmt.Fprintf(w, "%-12s %s\n", "time", "latency")
	for _, sm := range res.Samples {
		marker := ""
		if sm.At >= res.LeaveAt && sm.At < res.LeaveAt+time.Second {
			marker = "  <- leave window"
		}
		fmt.Fprintf(w, "%-12s %s%s\n",
			sm.At.Round(time.Millisecond), sm.Value.Round(time.Millisecond), marker)
	}
	fmt.Fprintf(w, "before leave:   %s\n", res.Before)
	fmt.Fprintf(w, "during detect:  %s\n", res.During)
	fmt.Fprintf(w, "after shrink:   %s\n", res.After)
}
