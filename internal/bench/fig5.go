package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/hraft-io/hraft/internal/harness"
	"github.com/hraft-io/hraft/internal/simnet"
	"github.com/hraft-io/hraft/internal/types"
)

// Fig5Options parametrizes the Figure 5 experiment: global-log throughput
// of classic Raft vs C-Raft with 20 sites split evenly over a varying
// number of geo-distributed clusters (paper: batches of 10, five 3-minute
// trials, one closed-loop proposer per cluster).
type Fig5Options struct {
	// ClusterCounts are the sweep points (paper: 20 sites over 1..10
	// clusters; counts must divide Sites).
	ClusterCounts []int
	// Sites is the total number of sites (paper: 20).
	Sites int
	// BatchSize is entries per C-Raft batch (paper: 10).
	BatchSize int
	// TrialDuration is the measured window per trial (paper: 3 minutes).
	TrialDuration time.Duration
	// Warmup precedes the measured window.
	Warmup time.Duration
	// Trials is the number of seeded trials averaged per point (paper: 5).
	Trials int
	// Seed is the base random seed.
	Seed int64
}

// Defaults fills unset fields with the paper's settings.
func (o *Fig5Options) Defaults() {
	if len(o.ClusterCounts) == 0 {
		o.ClusterCounts = []int{1, 2, 4, 5, 10}
	}
	if o.Sites == 0 {
		o.Sites = 20
	}
	if o.BatchSize == 0 {
		o.BatchSize = 10
	}
	if o.TrialDuration == 0 {
		o.TrialDuration = 3 * time.Minute
	}
	if o.Warmup == 0 {
		o.Warmup = 15 * time.Second
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Fig5Row is one sweep point of Figure 5.
type Fig5Row struct {
	// Clusters is the number of clusters/regions.
	Clusters int
	// RaftPerSec is classic Raft's committed application entries per
	// second.
	RaftPerSec float64
	// CraftPerSec is C-Raft's application entries committed to the global
	// log per second.
	CraftPerSec float64
	// Speedup is CraftPerSec / RaftPerSec.
	Speedup float64
}

// Fig5Throughput reproduces Figure 5.
func Fig5Throughput(opts Fig5Options) ([]Fig5Row, error) {
	opts.Defaults()
	rows := make([]Fig5Row, 0, len(opts.ClusterCounts))
	for i, n := range opts.ClusterCounts {
		if opts.Sites%n != 0 {
			return nil, fmt.Errorf("fig5: %d clusters does not divide %d sites", n, opts.Sites)
		}
		var raftTotal, craftTotal float64
		for trial := 0; trial < opts.Trials; trial++ {
			seed := opts.Seed + int64(1000*i+trial)
			r, err := fig5RaftTrial(opts, n, seed)
			if err != nil {
				return nil, fmt.Errorf("fig5 raft n=%d: %w", n, err)
			}
			cr, err := fig5CraftTrial(opts, n, seed+500)
			if err != nil {
				return nil, fmt.Errorf("fig5 craft n=%d: %w", n, err)
			}
			raftTotal += r
			craftTotal += cr
		}
		row := Fig5Row{
			Clusters:    n,
			RaftPerSec:  raftTotal / float64(opts.Trials),
			CraftPerSec: craftTotal / float64(opts.Trials),
		}
		if row.RaftPerSec > 0 {
			row.Speedup = row.CraftPerSec / row.RaftPerSec
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// fig5Groups lays out sites over the first n AWS regions.
func fig5Groups(opts Fig5Options, n int) []harness.ClusterSpec {
	regions := simnet.AWSRegions()
	perCluster := opts.Sites / n
	specs := make([]harness.ClusterSpec, 0, n)
	site := 0
	for i := 0; i < n; i++ {
		sites := make([]types.NodeID, 0, perCluster)
		for j := 0; j < perCluster; j++ {
			site++
			sites = append(sites, types.NodeID(fmt.Sprintf("s%d", site)))
		}
		specs = append(specs, harness.ClusterSpec{
			ID:     types.NodeID(fmt.Sprintf("c%d", i+1)),
			Sites:  sites,
			Region: regions[i%len(regions)],
		})
	}
	return specs
}

// fig5RaftTrial measures the classic Raft baseline: one flat 20-site group
// spread over the same regions, one closed-loop proposer per region group.
func fig5RaftTrial(opts Fig5Options, n int, seed int64) (float64, error) {
	specs := fig5Groups(opts, n)
	topo := simnet.AWSTopology()
	var all []types.NodeID
	for _, spec := range specs {
		for _, s := range spec.Sites {
			topo.SetRegion(string(s), spec.Region)
			all = append(all, s)
		}
	}
	c, err := harness.NewCluster(harness.Options{
		Kind:     harness.KindRaft,
		Nodes:    all,
		Seed:     seed,
		Topology: topo,
		// A flat WAN deployment needs election timeouts beyond the largest
		// round trip (300 ms): use 1–2 s.
		ElectionTimeoutMin: time.Second,
		ElectionTimeoutMax: 2 * time.Second,
		ProposalTimeout:    3 * time.Second,
		Audit:              harness.AuditOff,
	})
	if err != nil {
		return 0, err
	}
	if _, ok := c.WaitForLeader(60 * time.Second); !ok {
		return 0, fmt.Errorf("no leader")
	}
	start := c.Sched.Now() + opts.Warmup
	end := start + opts.TrialDuration
	proposers := make([]*harness.Proposer, 0, n)
	for _, spec := range specs {
		p, err := c.StartProposer(harness.ProposerOptions{Node: spec.Sites[0], StopAfter: end})
		if err != nil {
			return 0, err
		}
		proposers = append(proposers, p)
	}
	c.RunUntil(func() bool { return false }, end+time.Second)
	if err := c.Safety.Err(); err != nil {
		return 0, err
	}
	committed := 0
	for _, p := range proposers {
		committed += len(p.Series.Between(start, end))
	}
	return float64(committed) / opts.TrialDuration.Seconds(), nil
}

// fig5CraftTrial measures C-Raft: the same sites grouped into clusters, one
// closed-loop proposer per cluster; throughput counts application entries
// committed to the global log.
func fig5CraftTrial(opts Fig5Options, n int, seed int64) (float64, error) {
	specs := fig5Groups(opts, n)
	c, err := harness.NewCraftCluster(harness.CraftOptions{
		Clusters:  specs,
		Seed:      seed,
		BatchSize: opts.BatchSize,
		Audit:     harness.AuditOff,
	})
	if err != nil {
		return 0, err
	}
	if !c.WaitForLeaders(2 * time.Minute) {
		return 0, fmt.Errorf("leaders not elected")
	}
	start := c.Sched.Now() + opts.Warmup
	end := start + opts.TrialDuration
	for _, spec := range specs {
		if _, err := c.StartProposer(harness.ProposerOptions{Node: spec.Sites[0], StopAfter: end}); err != nil {
			return 0, err
		}
	}
	c.RunUntil(func() bool { return false }, end+time.Second)
	if err := c.Safety.Err(); err != nil {
		return 0, err
	}
	items := c.GlobalItemsCommitted(start, end)
	return float64(items) / opts.TrialDuration.Seconds(), nil
}

// PrintFig5 renders the Figure 5 table.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5: global commit throughput, classic Raft vs C-Raft (20 sites over N regions)\n")
	fmt.Fprintf(w, "%-10s %-14s %-14s %s\n", "clusters", "raft (e/s)", "c-raft (e/s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-14.1f %-14.1f %.2fx\n",
			r.Clusters, r.RaftPerSec, r.CraftPerSec, r.Speedup)
	}
}
