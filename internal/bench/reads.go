package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/hraft-io/hraft/internal/harness"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

// ReadOptions parametrizes the read-path experiment: ReadIndex latency and
// lease-read throughput against committed no-op proposals, on classic
// Raft, Fast Raft and C-Raft (site-local reads).
type ReadOptions struct {
	// Reads is the number of measured reads per mode per trial.
	Reads int
	// Proposals is the number of committed no-op proposals measured as the
	// write-path baseline.
	Proposals int
	// Trials is the number of independent seeded trials.
	Trials int
	// Seed is the base random seed.
	Seed int64
}

// Defaults fills unset fields.
func (o *ReadOptions) Defaults() {
	if o.Reads == 0 {
		o.Reads = 50
	}
	if o.Proposals == 0 {
		o.Proposals = 20
	}
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ReadRow reports one protocol's read-path numbers.
type ReadRow struct {
	// Protocol names the core ("raft", "fastraft", "craft-local").
	Protocol string
	// ReadIndex summarizes per-read latency of quorum-confirmed reads
	// issued closed-loop from a follower.
	ReadIndex stats.Summary
	// LeasePerSec is lease-read throughput (follower-forwarded, closed
	// loop) in reads per virtual second.
	LeasePerSec float64
	// ProposePerSec is the committed no-op proposal baseline on the same
	// topology.
	ProposePerSec float64
}

// ReadSweep measures the read path on all three cores.
func ReadSweep(opts ReadOptions) ([]ReadRow, error) {
	opts.Defaults()
	rows := make([]ReadRow, 0, 3)
	for _, kind := range []harness.Kind{harness.KindRaft, harness.KindFastRaft} {
		row := ReadRow{Protocol: kind.String()}
		var lats []time.Duration
		var leaseTime, propTime time.Duration
		for trial := 0; trial < opts.Trials; trial++ {
			l, lt, pt, err := readTrialFlat(opts, kind, opts.Seed+int64(trial))
			if err != nil {
				return nil, err
			}
			lats = append(lats, l...)
			leaseTime += lt
			propTime += pt
		}
		row.ReadIndex = stats.Summarize(lats)
		row.LeasePerSec = stats.Throughput(opts.Reads*opts.Trials, leaseTime)
		row.ProposePerSec = stats.Throughput(opts.Proposals*opts.Trials, propTime)
		rows = append(rows, row)
	}
	crow := ReadRow{Protocol: "craft-local"}
	var lats []time.Duration
	var leaseTime, propTime time.Duration
	for trial := 0; trial < opts.Trials; trial++ {
		l, lt, pt, err := readTrialCraft(opts, opts.Seed+int64(trial))
		if err != nil {
			return nil, err
		}
		lats = append(lats, l...)
		leaseTime += lt
		propTime += pt
	}
	crow.ReadIndex = stats.Summarize(lats)
	crow.LeasePerSec = stats.Throughput(opts.Reads*opts.Trials, leaseTime)
	crow.ProposePerSec = stats.Throughput(opts.Proposals*opts.Trials, propTime)
	rows = append(rows, crow)
	return rows, nil
}

// readTrialFlat runs one flat-cluster trial: per-read ReadIndex latencies,
// total lease-read time, total proposal time.
func readTrialFlat(opts ReadOptions, kind harness.Kind, seed int64) ([]time.Duration, time.Duration, time.Duration, error) {
	c, err := harness.NewCluster(harness.Options{
		Kind: kind, Nodes: siteNames(5), Seed: seed, Audit: harness.AuditOff,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	leader, ok := c.WaitForLeader(30 * time.Second)
	if !ok {
		return nil, 0, 0, fmt.Errorf("reads(%s): no leader", kind)
	}
	pid, err := c.Propose(leader, []byte("warm"))
	if err != nil {
		return nil, 0, 0, err
	}
	if _, ok := c.AwaitResolution(leader, pid, c.Sched.Now()+30*time.Second); !ok {
		return nil, 0, 0, fmt.Errorf("reads(%s): warm-up write stalled", kind)
	}
	var follower types.NodeID
	for _, id := range siteNames(5) {
		if id != leader {
			follower = id
			break
		}
	}
	read := func(cons types.ReadConsistency) (time.Duration, error) {
		start := c.Sched.Now()
		tok, err := c.Read(follower, cons)
		if err != nil {
			return 0, err
		}
		if d, ok := c.AwaitRead(follower, tok, c.Sched.Now()+30*time.Second); !ok || !d.OK {
			return 0, fmt.Errorf("reads(%s): read not confirmed", kind)
		}
		return c.Sched.Now() - start, nil
	}
	var lats []time.Duration
	for i := 0; i < opts.Reads; i++ {
		l, err := read(types.ReadLinearizable)
		if err != nil {
			return nil, 0, 0, err
		}
		lats = append(lats, l)
	}
	if _, err := read(types.ReadLeaseBased); err != nil { // lease warm-up
		return nil, 0, 0, err
	}
	leaseStart := c.Sched.Now()
	for i := 0; i < opts.Reads; i++ {
		if _, err := read(types.ReadLeaseBased); err != nil {
			return nil, 0, 0, err
		}
	}
	leaseTime := c.Sched.Now() - leaseStart
	propStart := c.Sched.Now()
	for i := 0; i < opts.Proposals; i++ {
		pid, err := c.Propose(follower, nil)
		if err != nil {
			return nil, 0, 0, err
		}
		if _, ok := c.AwaitResolution(follower, pid, c.Sched.Now()+30*time.Second); !ok {
			return nil, 0, 0, fmt.Errorf("reads(%s): proposal stalled", kind)
		}
	}
	return lats, leaseTime, c.Sched.Now() - propStart, nil
}

// readTrialCraft mirrors readTrialFlat with site-local reads on a
// two-cluster C-Raft deployment.
func readTrialCraft(opts ReadOptions, seed int64) ([]time.Duration, time.Duration, time.Duration, error) {
	c, err := harness.NewCraftCluster(harness.CraftOptions{
		Clusters: []harness.ClusterSpec{
			{ID: "cA", Sites: []types.NodeID{"a1", "a2", "a3"}, Region: "us-east-1"},
			{ID: "cB", Sites: []types.NodeID{"b1", "b2", "b3"}, Region: "eu-west-1"},
		},
		Seed:  seed,
		Audit: harness.AuditOff,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	if !c.WaitForLeaders(60 * time.Second) {
		return nil, 0, 0, fmt.Errorf("reads(craft): no leaders")
	}
	site := types.NodeID("a1")
	pid, err := c.Propose(site, []byte("warm"))
	if err != nil {
		return nil, 0, 0, err
	}
	if _, ok := c.AwaitResolution(site, pid, c.Sched.Now()+30*time.Second); !ok {
		return nil, 0, 0, fmt.Errorf("reads(craft): warm-up write stalled")
	}
	read := func(cons types.ReadConsistency) (time.Duration, error) {
		start := c.Sched.Now()
		tok, err := c.Read(site, cons)
		if err != nil {
			return 0, err
		}
		if d, ok := c.AwaitRead(site, tok, c.Sched.Now()+30*time.Second); !ok || !d.OK {
			return 0, fmt.Errorf("reads(craft): read not confirmed")
		}
		return c.Sched.Now() - start, nil
	}
	var lats []time.Duration
	for i := 0; i < opts.Reads; i++ {
		l, err := read(types.ReadLinearizable)
		if err != nil {
			return nil, 0, 0, err
		}
		lats = append(lats, l)
	}
	if _, err := read(types.ReadLeaseBased); err != nil {
		return nil, 0, 0, err
	}
	leaseStart := c.Sched.Now()
	for i := 0; i < opts.Reads; i++ {
		if _, err := read(types.ReadLeaseBased); err != nil {
			return nil, 0, 0, err
		}
	}
	leaseTime := c.Sched.Now() - leaseStart
	propStart := c.Sched.Now()
	for i := 0; i < opts.Proposals; i++ {
		pid, err := c.Propose(site, nil)
		if err != nil {
			return nil, 0, 0, err
		}
		if _, ok := c.AwaitResolution(site, pid, c.Sched.Now()+30*time.Second); !ok {
			return nil, 0, 0, fmt.Errorf("reads(craft): proposal stalled")
		}
	}
	return lats, leaseTime, c.Sched.Now() - propStart, nil
}

// PrintReads renders the read-path table.
func PrintReads(w io.Writer, rows []ReadRow) {
	fmt.Fprintln(w, "Read path: ReadIndex latency and lease throughput vs committed no-op proposals")
	fmt.Fprintln(w, "protocol     readindex-latency                                  lease-reads/s  proposals/s  speedup")
	for _, r := range rows {
		speedup := 0.0
		if r.ProposePerSec > 0 {
			speedup = r.LeasePerSec / r.ProposePerSec
		}
		fmt.Fprintf(w, "%-12s %-50s %13.0f %12.1f %8.1fx\n",
			r.Protocol, r.ReadIndex, r.LeasePerSec, r.ProposePerSec, speedup)
	}
}
