package craft

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// commitLocalApp drives the single-site cluster's local consensus far
// enough to commit one application entry (single-member group: propose,
// then tick).
func commitLocalApp(t *testing.T, n *Node, now time.Duration, payload string) time.Duration {
	t.Helper()
	n.Propose(now, []byte(payload))
	now += 250 * time.Millisecond
	n.Tick(now)
	return now
}

// newSoloNode builds a single-site cluster (local quorum of one) so local
// commits and batching can be driven without a network.
func newSoloNode(t *testing.T, batchSize int, batchDelay time.Duration) *Node {
	t.Helper()
	cfg := Config{
		ID:               "s1",
		Cluster:          "c1",
		ClusterBootstrap: types.NewConfig("s1"),
		GlobalBootstrap:  types.NewConfig("c1", "c2"),
		Storage:          newReplayNode(t).cfg.Storage, // fresh memory store
		BatchSize:        batchSize,
		BatchDelay:       batchDelay,
		Rand:             newReplayNode(t).cfg.Rand,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Elect the solo local leader.
	n.Tick(time.Second)
	if n.Role() != types.RoleLeader {
		t.Fatalf("solo site not leader: %v", n.Role())
	}
	if !n.IsGlobalMember() {
		t.Fatal("global instance not started")
	}
	return n
}

func TestBatchCreatedAtBatchSize(t *testing.T) {
	n := newSoloNode(t, 3, 0)
	now := 2 * time.Second
	for i := 0; i < 2; i++ {
		now = commitLocalApp(t, n, now, "x")
	}
	if n.GlobalNode().PendingProposals() != 0 {
		t.Fatal("batch proposed before reaching BatchSize")
	}
	now = commitLocalApp(t, n, now, "x")
	if got := n.GlobalNode().PendingProposals(); got != 1 {
		t.Fatalf("pending global batches = %d, want 1", got)
	}
	if n.nextBatchSeq != 2 {
		t.Fatalf("nextBatchSeq = %d", n.nextBatchSeq)
	}
}

func TestBatchDelayFlushesPartialBatch(t *testing.T) {
	n := newSoloNode(t, 10, time.Second)
	now := commitLocalApp(t, n, 2*time.Second, "only-one")
	if n.GlobalNode().PendingProposals() != 0 {
		t.Fatal("partial batch flushed before the delay")
	}
	// The node must schedule a wake-up for the flush deadline.
	d := n.NextDeadline()
	if d == 0 {
		t.Fatal("no deadline scheduled for the batch delay")
	}
	n.Tick(now + 2*time.Second)
	if got := n.GlobalNode().PendingProposals(); got != 1 {
		t.Fatalf("partial batch not flushed after delay (pending=%d)", got)
	}
}

func TestBatchPIDsAreDeterministic(t *testing.T) {
	n := newSoloNode(t, 2, 0)
	now := 2 * time.Second
	for i := 0; i < 4; i++ {
		now = commitLocalApp(t, n, now, "x")
	}
	// Two batches must exist with PIDs (c1,1) and (c1,2).
	for seq := uint64(1); seq <= 2; seq++ {
		if _, ok := n.ourBatches[seq]; !ok {
			t.Fatalf("batch seq %d missing (have %v)", seq, len(n.ourBatches))
		}
	}
}
