package craft

import (
	"errors"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Config parametrizes a C-Raft site.
type Config struct {
	// ID is this site's identity.
	ID types.NodeID
	// Cluster is the cluster this site belongs to; it doubles as the
	// site's member identity at the inter-cluster (global) level.
	Cluster types.NodeID
	// ClusterBootstrap is the cluster's initial local membership.
	ClusterBootstrap types.Config
	// GlobalBootstrap is the initial set of clusters (global membership).
	// A cluster formed later uses an empty bootstrap and joins through the
	// global join protocol.
	GlobalBootstrap types.Config
	// Storage is the site's stable storage for the local log. The global
	// instance needs no separate storage: its durable state is exactly the
	// global-state entries replicated in the local log.
	Storage storage.Storage
	// BatchSize is how many locally committed application entries form one
	// global-log batch (paper experiments: 10).
	BatchSize int
	// BatchDelay, when non-zero, flushes a partial batch whose oldest
	// entry has waited this long (the paper's "amount of time passing"
	// batch trigger).
	BatchDelay time.Duration
	// LocalHeartbeat is the intra-cluster leader tick period (paper:
	// 100 ms).
	LocalHeartbeat time.Duration
	// GlobalHeartbeat is the inter-cluster leader tick period (paper:
	// 500 ms).
	GlobalHeartbeat time.Duration
	// LocalElectionMin/Max bound local election timeouts (0 = derived).
	LocalElectionMin time.Duration
	// LocalElectionMax must exceed LocalElectionMin when set.
	LocalElectionMax time.Duration
	// GlobalElectionMin/Max bound global election timeouts (0 = derived;
	// the default exceeds the largest inter-region round trip).
	GlobalElectionMin time.Duration
	// GlobalElectionMax must exceed GlobalElectionMin when set.
	GlobalElectionMax time.Duration
	// LocalProposalTimeout is the local re-propose period (0 = derived).
	LocalProposalTimeout time.Duration
	// GlobalProposalTimeout is the global re-propose period (0 = derived).
	GlobalProposalTimeout time.Duration
	// MemberTimeoutRounds configures silent-leave detection at both
	// levels.
	MemberTimeoutRounds int
	// SnapshotThreshold enables local-log compaction: once this many
	// entries commit beyond the last snapshot, the site snapshots its
	// replayed global state (term, global log, batching position) and
	// compacts the local log. Lagging or restarted cluster members catch up
	// via InstallSnapshot instead of full replay. 0 disables compaction.
	// The global log is never compacted (its entries are batches whose
	// compaction would require cross-cluster coordination).
	SnapshotThreshold int
	// AppSnapshotter, when set, folds the embedding application's own
	// state into local-log snapshots: applications that build state from
	// locally committed entries can then enable compaction without losing
	// the ability to restart or catch up from a snapshot. Compaction waits
	// until the application has applied everything the snapshot would
	// cover.
	AppSnapshotter types.Snapshotter
	// MaxEntriesPerAppend caps AppendEntries payloads at both consensus
	// levels (0 = unlimited).
	MaxEntriesPerAppend int
	// MaxInflightAppends bounds outstanding AppendEntries messages per
	// peer at both consensus levels (0 = replica.DefaultMaxInflight).
	// Secondary to MaxInflightBytes.
	MaxInflightAppends int
	// MaxInflightBytes bounds the encoded entry bytes outstanding per peer
	// at both consensus levels (0 = replica.DefaultMaxInflightBytes).
	MaxInflightBytes int
	// MaxSnapshotChunk is the InstallSnapshot chunk payload size in bytes
	// for local-log snapshot transfers (0 = whole snapshot in one
	// message).
	MaxSnapshotChunk int
	// MaxInflightProposalBytes bounds the encoded payload bytes of a
	// site's broadcast-but-unresolved local proposals (0 = unlimited); see
	// fastraft.Config.MaxInflightProposalBytes.
	MaxInflightProposalBytes int
	// MaxInflightBatches caps this cluster's unresolved global batch
	// proposals (0 = unlimited): batching pauses — locally committed
	// entries simply wait unbatched — until earlier batches resolve, so a
	// fast cluster cannot flood the slower global level.
	MaxInflightBatches int
	// SessionTTL expires idle client sessions at the local (intra-cluster)
	// level (0 = no expiry).
	SessionTTL time.Duration
	// DisableFastTrack forces the classic track at both levels (ablation).
	DisableFastTrack bool
	// Rand drives randomized timeouts; required for deterministic
	// simulation.
	Rand *rand.Rand
	// Recorder, when non-nil, records protocol events and proposal
	// lifecycle spans into a flight-recorder ring (see internal/trace).
	// The local instance records directly; the global instance (when this
	// site leads its cluster) records through a derived recorder sharing
	// the same ring, so both layers interleave into one narrative. Nil
	// disables recording at negligible cost.
	Recorder *trace.Recorder
}

// Defaults fills unset values with the paper's experimental settings.
func (c *Config) Defaults() {
	if c.BatchSize == 0 {
		c.BatchSize = 10
	}
	if c.LocalHeartbeat == 0 {
		c.LocalHeartbeat = 100 * time.Millisecond
	}
	if c.GlobalHeartbeat == 0 {
		c.GlobalHeartbeat = 500 * time.Millisecond
	}
	if c.GlobalElectionMin == 0 {
		c.GlobalElectionMin = 4 * c.GlobalHeartbeat
	}
	if c.GlobalElectionMax == 0 {
		c.GlobalElectionMax = 2 * c.GlobalElectionMin
	}
	if c.GlobalProposalTimeout == 0 {
		c.GlobalProposalTimeout = 6 * c.GlobalHeartbeat
	}
	if c.MemberTimeoutRounds == 0 {
		c.MemberTimeoutRounds = 5
	}
}

func (c *Config) validate() error {
	if c.ID == types.None {
		return errors.New("craft: config needs an ID")
	}
	if c.Cluster == types.None {
		return errors.New("craft: config needs a Cluster")
	}
	if c.Storage == nil {
		return errors.New("craft: config needs Storage")
	}
	if c.Rand == nil {
		return errors.New("craft: config needs Rand")
	}
	return nil
}
