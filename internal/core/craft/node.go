// Package craft implements C-Raft, the paper's hierarchical consensus
// model: each cluster runs Fast Raft over a local log, and the cluster
// leaders run a second Fast Raft instance over a global log of batches of
// locally committed entries.
//
// The crucial mechanism is global-state replication (paper Section V): a
// cluster leader must not externalize any step of inter-cluster consensus
// before that step survives the leader's failure. Here, every change to the
// global instance's durable state (inserted/overwritten entries, term,
// vote, commit index) is captured in a GlobalState delta entry and proposed
// to intra-cluster consensus; all outbound global messages produced up to
// and including that step are held until the delta — and every delta before
// it — commits locally. A successor local leader rebuilds the global
// instance by replaying committed deltas from the local log and re-attaches
// to the global configuration as the same member (the cluster), exactly as
// a crashed site recovers from stable storage.
//
// Batches are identified by deterministic ProposalIDs (cluster, sequence),
// so a successor re-proposing a batch de-duplicates against the original at
// the global level.
package craft

import (
	"fmt"
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/session"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// heldMsg is a global outbound message waiting for its barrier: it may be
// released once every delta up to and including ordinal barrier has
// committed locally.
type heldMsg struct {
	barrier uint64
	env     types.Envelope
}

// batchRecord tracks one of this cluster's batches observed in the replayed
// global log.
type batchRecord struct {
	entry types.Entry
	items int
}

// Node is a C-Raft site: a local Fast Raft node plus, while this site leads
// its cluster, the cluster's inter-cluster Fast Raft instance.
type Node struct {
	cfg Config

	local  *fastraft.Node
	global *fastraft.Node  // nil unless this site currently leads its cluster
	gRec   *trace.Recorder // the global instance's derived recorder (nil with it)
	// gsRec records the site's authoritative view of the global log: the
	// commit stream replayed from externalized deltas. The live global
	// instance's own commits are provisional (see startGlobal) and are not
	// recorded; this stream is what cross-site agreement is audited on.
	gsRec    *trace.Recorder
	gsBooted bool // first replayed commit this lifetime emits a boot epoch

	// Replayed global state, rebuilt from committed GlobalState entries in
	// the local log. This is the recovery source for successor leaders.
	gTerm   types.Term
	gVote   types.NodeID
	gCommit types.Index
	gLog    map[types.Index]types.Entry
	// Replay ordering: deltas apply in (era, seq) order; stale eras are
	// ignored (their changes were never externalized).
	replayEra uint64
	replaySeq uint64
	replayBuf map[uint64]types.GlobalStateDelta // seq -> delta (current era)

	// Live-leader barrier machinery.
	deltaSeq       uint64                        // seq of the last proposed delta (current era)
	deltaOrdinal   uint64                        // total deltas proposed by this leadership
	deltaPids      map[types.ProposalID]uint64   // delta pid -> ordinal
	deltaCommitted map[uint64]bool               // ordinal -> committed locally
	deltaPrefix    uint64                        // all ordinals <= deltaPrefix committed
	held           []heldMsg                     // FIFO of held global messages
	internalPIDs   map[types.ProposalID]struct{} // delta pids (hidden from resolutions)
	lastTerm       types.Term                    // last replicated global hard state
	lastVote       types.NodeID
	lastCommit     types.Index

	// Batching.
	appLog       []types.BatchItem // locally committed application entries, in order
	batchedItems int               // items covered by known batches of this cluster
	nextBatchSeq uint64            // next batch sequence to create
	ourBatches   map[uint64]batchRecord
	oldestWait   time.Duration // when the oldest unbatched item committed (0 = none)

	// appliedLocal is the highest local index drained into the replay and
	// batching state above; local-log snapshots are cut no further than it.
	appliedLocal types.Index

	// Read plumbing (see read.go): craft-level read tokens mapped onto the
	// two instances' token spaces, plus globally confirmed reads waiting
	// for the local replay (gCommit) to cover their index.
	readSeq        uint64
	localReadMap   map[uint64]uint64
	globalReadMap  map[uint64]uint64
	globalReadWait []globalRead
	readDone       []types.ReadDone

	// metrics counts C-Raft-level events (batch throttling); globalBase
	// accumulates the counters of torn-down global instances so demotion
	// does not zero the "global." metrics.
	metrics    *stats.Counters
	globalBase map[string]uint64

	// Outputs.
	outbox          []types.Envelope
	localCommitted  []types.Entry
	globalCommitted []types.Entry
	resolved        []types.Resolution

	joinContacts []types.NodeID // pending global join (new cluster)
	now          time.Duration
}

// New builds a C-Raft site, recovering the local log from storage. The
// replayed global state rebuilds itself as local entries re-commit.
func New(cfg Config) (*Node, error) {
	cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:            cfg,
		gLog:           make(map[types.Index]types.Entry),
		replayBuf:      make(map[uint64]types.GlobalStateDelta),
		deltaPids:      make(map[types.ProposalID]uint64),
		deltaCommitted: make(map[uint64]bool),
		internalPIDs:   make(map[types.ProposalID]struct{}),
		ourBatches:     make(map[uint64]batchRecord),
		localReadMap:   make(map[uint64]uint64),
		globalReadMap:  make(map[uint64]uint64),
		metrics:        stats.NewCounters(),
		globalBase:     make(map[string]uint64),
	}
	// Group-stamp the site recorder so cross-site audit tooling can tell
	// which consensus group an event belongs to: intra-cluster events from
	// different clusters at the same log index are unrelated.
	cfg.Recorder.SetGroup("local/" + string(cfg.Cluster))
	n.gsRec = cfg.Recorder.Derive(cfg.Recorder.Label() + "/gstate")
	n.gsRec.SetGroup("global")
	// The local instance snapshots through the craft node: the replayed
	// global state and batching position ARE this site's application state,
	// so C-Raft recovery survives a compacted local log. A stored snapshot
	// is restored into n during fastraft.New (restore-on-open).
	local, err := fastraft.New(fastraft.Config{
		ID:                       cfg.ID,
		Bootstrap:                cfg.ClusterBootstrap,
		Storage:                  cfg.Storage,
		HeartbeatInterval:        cfg.LocalHeartbeat,
		ElectionTimeoutMin:       cfg.LocalElectionMin,
		ElectionTimeoutMax:       cfg.LocalElectionMax,
		ProposalTimeout:          cfg.LocalProposalTimeout,
		MemberTimeoutRounds:      cfg.MemberTimeoutRounds,
		SnapshotThreshold:        cfg.SnapshotThreshold,
		Snapshotter:              craftSnapshotter{n},
		MaxEntriesPerAppend:      cfg.MaxEntriesPerAppend,
		MaxInflightAppends:       cfg.MaxInflightAppends,
		MaxInflightBytes:         cfg.MaxInflightBytes,
		MaxSnapshotChunk:         cfg.MaxSnapshotChunk,
		MaxInflightProposalBytes: cfg.MaxInflightProposalBytes,
		SessionTTL:               cfg.SessionTTL,
		DisableFastTrack:         cfg.DisableFastTrack,
		Rand:                     cfg.Rand,
		Layer:                    types.LayerLocal,
		Recorder:                 cfg.Recorder,
	})
	if err != nil {
		return nil, fmt.Errorf("craft: local instance: %w", err)
	}
	n.local = local
	return n, nil
}

// ID returns the site's identity.
func (n *Node) ID() types.NodeID { return n.cfg.ID }

// ClusterID returns the cluster (= global member) identity.
func (n *Node) ClusterID() types.NodeID { return n.cfg.Cluster }

// Role returns the local-instance role.
func (n *Node) Role() types.Role { return n.local.Role() }

// Term returns the local-instance term.
func (n *Node) Term() types.Term { return n.local.Term() }

// LeaderID returns the local-instance leader.
func (n *Node) LeaderID() types.NodeID { return n.local.LeaderID() }

// CommitIndex returns the local commit index.
func (n *Node) CommitIndex() types.Index { return n.local.CommitIndex() }

// Config returns the local cluster configuration.
func (n *Node) Config() types.Config { return n.local.Config() }

// PendingProposals counts unresolved local application proposals.
func (n *Node) PendingProposals() int { return n.local.PendingProposals() }

// LocalSnapshotIndex returns the local log's compaction boundary (0 if the
// local log has never been compacted).
func (n *Node) LocalSnapshotIndex() types.Index { return n.local.SnapshotIndex() }

// LocalLastIndex returns the local log's last occupied index.
func (n *Node) LocalLastIndex() types.Index { return n.local.LastIndex() }

// IsGlobalMember reports whether this site currently runs the cluster's
// global instance (i.e., leads its cluster).
func (n *Node) IsGlobalMember() bool { return n.global != nil }

// GlobalRole returns the global-instance role (follower if none).
func (n *Node) GlobalRole() types.Role {
	if n.global == nil {
		return types.RoleFollower
	}
	return n.global.Role()
}

// GlobalTerm returns the global-instance term (replayed value if this site
// is not the cluster leader).
func (n *Node) GlobalTerm() types.Term {
	if n.global == nil {
		return n.gTerm
	}
	return n.global.Term()
}

// GlobalCommitIndex returns the highest global commit index this site has
// learned through replay.
func (n *Node) GlobalCommitIndex() types.Index { return n.gCommit }

// GlobalNode exposes the live global instance (nil unless this site leads
// its cluster); used by tests and diagnostics.
func (n *Node) GlobalNode() *fastraft.Node { return n.global }

// DebugString renders a one-line state summary for diagnostics.
func (n *Node) DebugString() string {
	s := fmt.Sprintf("%s[%s] local{role=%s term=%d commit=%d last=%d} replay{era=%d seq=%d gCommit=%d}",
		n.cfg.ID, n.cfg.Cluster, n.local.Role(), n.local.Term(),
		n.local.CommitIndex(), n.local.LastIndex(), n.replayEra, n.replaySeq, n.gCommit)
	if n.global != nil {
		s += fmt.Sprintf(" global{role=%s term=%d commit=%d lastLeader=%d last=%d pending=%d held=%d prefix=%d ord=%d}",
			n.global.Role(), n.global.Term(), n.global.CommitIndex(),
			n.global.LastLeaderIndex(), n.global.LastIndex(),
			n.global.PendingProposals(), len(n.held), n.deltaPrefix, n.deltaOrdinal)
	}
	return s
}

// Metrics returns a snapshot of the site's monotonic counters: the local
// instance's under "local.", the (live plus past) global instances' under
// "global.", and C-Raft's own batch counters under "craft.".
func (n *Node) Metrics() map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range n.local.Metrics() {
		out["local."+k] += v
	}
	for k, v := range n.globalBase {
		out["global."+k] += v
	}
	if n.global != nil {
		for k, v := range n.global.Metrics() {
			out["global."+k] += v
		}
	}
	n.metrics.MergeInto(out, "")
	return out
}

// Recorder exposes the site's flight recorder (nil when tracing is
// disabled). The local and global layers share its ring, so one snapshot
// covers both.
func (n *Node) Recorder() *trace.Recorder { return n.cfg.Recorder }

// LeaseUntil returns the local instance's read lease expiry (0 = no
// lease, or not leading); diagnostics.
func (n *Node) LeaseUntil() time.Duration { return n.local.LeaseUntil() }

// PeerStatus snapshots the local instance's per-peer replication progress
// (empty unless this site leads its cluster).
func (n *Node) PeerStatus() []replica.PeerStatus { return n.local.PeerStatus() }

// GlobalPeerStatus snapshots the global instance's per-peer replication
// progress (empty unless this site runs the global instance and leads the
// ring).
func (n *Node) GlobalPeerStatus() []replica.PeerStatus {
	if n.global == nil {
		return nil
	}
	return n.global.PeerStatus()
}

// GlobalLogEntry returns the replayed global-log entry at idx, if known.
func (n *Node) GlobalLogEntry(idx types.Index) (types.Entry, bool) {
	e, ok := n.gLog[idx]
	if !ok {
		return types.Entry{}, false
	}
	return e.Clone(), true
}

// GlobalConfig returns the global configuration as known to the global
// instance (or the replayed log).
func (n *Node) GlobalConfig() types.Config {
	if n.global != nil {
		return n.global.Config()
	}
	cfg := n.cfg.GlobalBootstrap
	var bestIdx types.Index
	for idx, e := range n.gLog {
		if e.Kind == types.KindConfig && e.Config != nil && idx >= bestIdx {
			bestIdx = idx
			cfg = *e.Config
		}
	}
	return cfg.Clone()
}

// TakeOutbox drains outgoing messages (both layers; global messages only
// once their barrier deltas committed locally).
func (n *Node) TakeOutbox() []types.Envelope {
	out := n.outbox
	n.outbox = nil
	return out
}

// TakeCommitted drains newly committed local entries.
func (n *Node) TakeCommitted() []types.Entry {
	out := n.localCommitted
	n.localCommitted = nil
	return out
}

// TakeGlobalCommitted drains global-log entries newly learned committed
// (through delta replay, hence locally durable).
func (n *Node) TakeGlobalCommitted() []types.Entry {
	out := n.globalCommitted
	n.globalCommitted = nil
	return out
}

// TakeResolved drains resolutions of local application proposals (C-Raft
// internal proposals are filtered out).
func (n *Node) TakeResolved() []types.Resolution {
	out := n.resolved
	n.resolved = nil
	return out
}

// Propose submits an application entry to intra-cluster consensus. Once
// enough entries commit locally, the cluster leader batches them into the
// global log.
func (n *Node) Propose(now time.Duration, data []byte) types.ProposalID {
	n.now = now
	pid := n.local.Propose(now, data)
	n.pump(now)
	return pid
}

// OpenSession opens a client session at the intra-cluster level; the
// proposal resolves with the new session's ID. Session dedup is local to
// the cluster: duplicates are withheld from the local commit stream and
// therefore never batched into the global log a second time either.
func (n *Node) OpenSession(now time.Duration) types.ProposalID {
	n.now = now
	pid := n.local.OpenSession(now)
	n.pump(now)
	return pid
}

// ProposeSession submits an application entry under (sid, seq) to
// intra-cluster consensus with exactly-once semantics across proposer
// restarts and local-log compaction. ack is the client's retry floor
// (see fastraft.Node.ProposeSession).
func (n *Node) ProposeSession(now time.Duration, sid types.SessionID, seq, ack uint64, data []byte) types.ProposalID {
	n.now = now
	pid := n.local.ProposeSession(now, sid, seq, ack, data)
	n.pump(now)
	return pid
}

// Sessions exposes the local-level session registry (tests, diagnostics).
func (n *Node) Sessions() *session.Registry { return n.local.Sessions() }

// JoinCluster starts the local (intra-cluster) join protocol for a site
// entering an existing cluster.
func (n *Node) JoinCluster(now time.Duration, contacts []types.NodeID) {
	n.now = now
	n.local.Join(now, contacts)
	n.pump(now)
}

// JoinGlobal registers this cluster for the global join protocol (forming
// a new cluster, paper Section V-C). The join request is sent once this
// site leads its cluster and runs a global instance.
func (n *Node) JoinGlobal(now time.Duration, contacts []types.NodeID) {
	n.now = now
	n.joinContacts = append([]types.NodeID(nil), contacts...)
	n.pump(now)
}

// Step delivers one message, routed to the matching consensus level.
func (n *Node) Step(now time.Duration, env types.Envelope) {
	n.now = now
	switch env.Layer {
	case types.LayerGlobal:
		if n.global != nil {
			n.global.Step(now, env)
		}
	default:
		n.local.Step(now, env)
	}
	n.pump(now)
}

// Tick advances time at both levels.
func (n *Node) Tick(now time.Duration) {
	n.now = now
	n.local.Tick(now)
	if n.global != nil {
		n.global.Tick(now)
	}
	n.pump(now)
}

// SyncDone forwards a storage durability advance to the local instance
// (the global instance runs on in-memory storage and never defers), then
// pumps: released local outputs may trigger replay or batching. No-op with
// synchronous storage.
func (n *Node) SyncDone(now time.Duration, durableLSN uint64) {
	n.now = now
	n.local.SyncDone(now, durableLSN)
	n.pump(now)
}

// NextDeadline reports the earliest instant either level needs Tick.
func (n *Node) NextDeadline() time.Duration {
	d := n.local.NextDeadline()
	if n.global != nil {
		if g := n.global.NextDeadline(); g != 0 && (d == 0 || g < d) {
			d = g
		}
	}
	// The delayed-flush deadline applies only while this site runs the
	// global instance: followers cannot flush, and keeping a stale past
	// deadline would spin the host's wake timer without ever progressing
	// (they learn batch positions through replay instead).
	if n.cfg.BatchDelay > 0 && n.oldestWait > 0 && n.global != nil {
		f := n.oldestWait + n.cfg.BatchDelay
		if f <= n.now && !n.canProposeBatch() {
			// The delayed flush is due but the batch window is closed
			// (MaxInflightBatches): retry at the next heartbeat instead of
			// spinning on a stale deadline.
			f = n.now + n.cfg.LocalHeartbeat
		}
		if d == 0 || f < d {
			d = f
		}
	}
	return d
}

// pump processes the interplay between the two levels until quiescent:
// leadership changes, global output capture (deltas + barriers), local
// output draining (replay, batching triggers) and batch creation.
func (n *Node) pump(now time.Duration) {
	for i := 0; i < 16; i++ {
		progress := false
		if n.syncGlobalLifecycle(now) {
			progress = true
		}
		if n.captureGlobal(now) {
			progress = true
		}
		if n.drainLocal(now) {
			progress = true
		}
		if n.drainReads() {
			progress = true
		}
		if n.makeBatches(now) {
			progress = true
		}
		if !progress {
			return
		}
	}
}

// syncGlobalLifecycle creates or destroys the global instance as local
// leadership changes.
func (n *Node) syncGlobalLifecycle(now time.Duration) bool {
	isLeader := n.local.Role() == types.RoleLeader
	switch {
	case isLeader && n.global == nil:
		n.startGlobal(now)
		return true
	case !isLeader && n.global != nil:
		n.stopGlobal()
		return true
	}
	return false
}

// startGlobal builds the cluster's global instance from the replayed
// global state — the local log is the global member's stable storage.
func (n *Node) startGlobal(now time.Duration) {
	store := storage.NewMemory()
	if err := store.SetHardState(storage.HardState{Term: n.gTerm, VotedFor: n.gVote}); err != nil {
		panic(fmt.Sprintf("craft %s: seed global storage: %v", n.cfg.ID, err))
	}
	// The derived recorder shares the site recorder's ring, so local and
	// global events interleave into one narrative per site; the "global"
	// group marks events of the inter-cluster instance for audit tooling.
	gRec := n.cfg.Recorder.Derive(n.cfg.Recorder.Label() + "/global")
	gRec.SetGroup("global")
	idxs := make([]types.Index, 0, len(n.gLog))
	for idx := range n.gLog {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		if err := store.AppendEntry(n.gLog[idx]); err != nil {
			panic(fmt.Sprintf("craft %s: seed global storage: %v", n.cfg.ID, err))
		}
	}
	g, err := fastraft.New(fastraft.Config{
		ID:                  n.cfg.Cluster,
		Bootstrap:           n.cfg.GlobalBootstrap,
		Storage:             store,
		HeartbeatInterval:   n.cfg.GlobalHeartbeat,
		ElectionTimeoutMin:  n.cfg.GlobalElectionMin,
		ElectionTimeoutMax:  n.cfg.GlobalElectionMax,
		ProposalTimeout:     n.cfg.GlobalProposalTimeout,
		MemberTimeoutRounds: n.cfg.MemberTimeoutRounds,
		MaxEntriesPerAppend: n.cfg.MaxEntriesPerAppend,
		MaxInflightAppends:  n.cfg.MaxInflightAppends,
		MaxInflightBytes:    n.cfg.MaxInflightBytes,
		DisableFastTrack:    n.cfg.DisableFastTrack,
		Rand:                n.cfg.Rand,
		Layer:               types.LayerGlobal,
		Recorder:            gRec,
	})
	if err != nil {
		panic(fmt.Sprintf("craft %s: start global instance: %v", n.cfg.ID, err))
	}
	n.global = g
	n.gRec = gRec
	// New leadership era for delta sequencing.
	n.deltaSeq = 0
	n.deltaOrdinal = 0
	n.deltaPrefix = 0
	n.deltaPids = make(map[types.ProposalID]uint64)
	n.deltaCommitted = make(map[uint64]bool)
	n.held = nil
	n.lastTerm, n.lastVote = n.gTerm, n.gVote
	n.lastCommit = 0 // fresh instance relearns its commit index
	// Resume this cluster's globally uncommitted batches under their
	// original deterministic PIDs (sorted for deterministic simulation).
	seqs := make([]uint64, 0, len(n.ourBatches))
	for seq := range n.ourBatches {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		rec := n.ourBatches[seq]
		pid := types.ProposalID{Proposer: n.cfg.Cluster, Seq: seq}
		if rec.entry.Index != 0 && rec.entry.Index <= n.gCommit {
			if cur, ok := n.gLog[rec.entry.Index]; ok && cur.PID == pid {
				continue // globally committed
			}
		}
		e := rec.entry.Clone()
		e.Index = 0
		e.Approval = 0
		n.global.ProposeEntryPID(now, e, pid)
	}
	// Pending global join for a newly formed cluster.
	if len(n.joinContacts) > 0 && !n.global.IsMember() {
		n.global.Join(now, n.joinContacts)
	}
}

// stopGlobal tears down the global instance on demotion. Held messages are
// dropped: they were never externalized, so the successor's replayed state
// is complete.
func (n *Node) stopGlobal() {
	// Unconfirmed global reads die with the instance; confirmed ones keep
	// waiting for the replay, which every site advances as a follower too.
	n.drainReads()
	n.failGlobalReads()
	for k, v := range n.global.Metrics() {
		n.globalBase[k] += v
	}
	// The discarded instance may hold a live leader lease; record the
	// revocation so audit tooling does not carry a phantom lease for this
	// site past the teardown.
	if n.global.Role() == types.RoleLeader {
		n.gRec.LeaseRevoke(n.now, n.cfg.Cluster)
	}
	n.global = nil
	n.gRec = nil
	n.held = nil
	n.deltaPids = make(map[types.ProposalID]uint64)
	n.deltaCommitted = make(map[uint64]bool)
}
