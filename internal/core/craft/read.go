package craft

import (
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// Linearizable reads at the two C-Raft levels.
//
// A site-local read (Read) consults the local Fast Raft instance's read
// path only: Propose commits intra-cluster first, so a read linearized
// against the local log observes every acknowledged write of this cluster
// without ever crossing a cluster boundary — geo-local reads are
// independent of cross-site RTT, the paper's headline win. A global read
// (ReadGlobal) escalates to the global ring: it runs the ReadIndex
// protocol among the cluster leaders and resolves once this site's
// replayed global position (gCommit) has caught up to the confirmed
// index, confirming the local replay position against the ring.

// globalRead is a globally confirmed read waiting for the local replay to
// reach its index.
type globalRead struct {
	id    uint64
	index types.Index
}

// Read registers a site-local read under the given consistency mode; it
// resolves through TakeReadDone with a local-log linearization index. The
// read is served by the cluster's local Fast Raft leader (forwarded
// intra-cluster when this site follows) and never touches the global
// ring.
func (n *Node) Read(now time.Duration, c types.ReadConsistency) uint64 {
	n.now = now
	n.readSeq++
	id := n.readSeq
	lid := n.local.Read(now, c)
	n.localReadMap[lid] = id
	n.pump(now)
	return id
}

// ReadGlobal registers a read linearized against the global batch log. It
// requires a live global instance — any cluster-leader site qualifies;
// the global read path forwards to the global leader if this cluster does
// not lead the ring — and resolves (OK) once the confirmed global index
// has been replayed locally. On a non-leader site the read fails
// immediately (OK=false): route it to the cluster leader instead.
func (n *Node) ReadGlobal(now time.Duration, c types.ReadConsistency) uint64 {
	n.now = now
	n.readSeq++
	id := n.readSeq
	if n.global == nil {
		n.readDone = append(n.readDone, types.ReadDone{ID: id, OK: false})
		return id
	}
	gid := n.global.Read(now, c)
	n.globalReadMap[gid] = id
	n.pump(now)
	return id
}

// TakeReadDone drains resolved reads (both levels).
func (n *Node) TakeReadDone() []types.ReadDone {
	out := n.readDone
	n.readDone = nil
	return out
}

// drainReads translates both instances' read resolutions into craft-level
// ones, gating confirmed global reads on the replayed global commit
// position.
func (n *Node) drainReads() bool {
	progress := false
	for _, d := range n.local.TakeReadDone() {
		id, ok := n.localReadMap[d.ID]
		if !ok {
			continue
		}
		delete(n.localReadMap, d.ID)
		n.readDone = append(n.readDone, types.ReadDone{ID: id, Index: d.Index, OK: d.OK})
		progress = true
	}
	if n.global != nil {
		for _, d := range n.global.TakeReadDone() {
			id, ok := n.globalReadMap[d.ID]
			if !ok {
				continue
			}
			delete(n.globalReadMap, d.ID)
			progress = true
			if !d.OK {
				n.readDone = append(n.readDone, types.ReadDone{ID: id, OK: false})
				continue
			}
			// Confirmed against the ring; now wait for our own replay to
			// cover the index so the caller can actually observe it.
			n.globalReadWait = append(n.globalReadWait, globalRead{id: id, index: d.Index})
		}
	}
	if len(n.globalReadWait) > 0 {
		kept := n.globalReadWait[:0]
		for _, g := range n.globalReadWait {
			if g.index <= n.gCommit {
				n.readDone = append(n.readDone, types.ReadDone{ID: g.id, Index: g.index, OK: true})
				progress = true
			} else {
				kept = append(kept, g)
			}
		}
		n.globalReadWait = kept
	}
	return progress
}

// failGlobalReads fails every unconfirmed global read when the global
// instance is torn down (local demotion): the successor leader cannot
// answer reads it never saw. Confirmed reads in globalReadWait survive —
// their indices are committed ring-wide and the replay will reach them.
func (n *Node) failGlobalReads() {
	if len(n.globalReadMap) == 0 {
		return
	}
	ids := make([]uint64, 0, len(n.globalReadMap))
	for _, id := range n.globalReadMap {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n.readDone = append(n.readDone, types.ReadDone{ID: id, OK: false})
	}
	n.globalReadMap = make(map[uint64]uint64)
}
