package craft

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

func newReplayNode(t *testing.T) *Node {
	t.Helper()
	n, err := New(Config{
		ID:               "s1",
		Cluster:          "c1",
		ClusterBootstrap: types.NewConfig("s1", "s2", "s3"),
		GlobalBootstrap:  types.NewConfig("c1", "c2"),
		Storage:          storage.NewMemory(),
		Rand:             rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func deltaEntry(era, seq uint64, commit types.Index, entries ...types.Entry) types.Entry {
	d := types.GlobalStateDelta{
		Era: era, Seq: seq, Term: types.Term(era), CommitIndex: commit,
		Entries: entries,
	}
	return types.Entry{Kind: types.KindGlobalState, Data: types.EncodeGlobalStateDelta(d)}
}

func gEntry(idx types.Index, payload string) types.Entry {
	return types.Entry{
		Index: idx, Term: 1, Kind: types.KindBatch, Approval: types.ApprovedLeader,
		PID:  types.ProposalID{Proposer: "c1", Seq: uint64(idx)},
		Data: types.EncodeBatch(types.Batch{Cluster: "c1", Seq: uint64(idx), Items: []types.BatchItem{{Data: []byte(payload)}}}),
	}
}

func TestDeltaReplayInOrder(t *testing.T) {
	n := newReplayNode(t)
	n.onDeltaCommitted(deltaEntry(1, 1, 0, gEntry(1, "a")))
	n.onDeltaCommitted(deltaEntry(1, 2, 1, gEntry(2, "b")))
	if n.GlobalCommitIndex() != 1 {
		t.Fatalf("gCommit = %d", n.GlobalCommitIndex())
	}
	if e, ok := n.GlobalLogEntry(2); !ok || e.Index != 2 {
		t.Fatalf("entry 2 = %v ok=%v", e, ok)
	}
	committed := n.TakeGlobalCommitted()
	if len(committed) != 1 || committed[0].Index != 1 {
		t.Fatalf("emitted = %v", committed)
	}
}

func TestDeltaReplayBuffersOutOfOrder(t *testing.T) {
	n := newReplayNode(t)
	// Seq 2 commits locally before seq 1 (slot contention reordered them).
	n.onDeltaCommitted(deltaEntry(1, 2, 2, gEntry(2, "b")))
	if n.GlobalCommitIndex() != 0 {
		t.Fatal("applied out of order")
	}
	n.onDeltaCommitted(deltaEntry(1, 1, 1, gEntry(1, "a")))
	if n.GlobalCommitIndex() != 2 {
		t.Fatalf("gCommit = %d after both applied", n.GlobalCommitIndex())
	}
	// Emission order must follow global index order.
	committed := n.TakeGlobalCommitted()
	if len(committed) != 2 || committed[0].Index != 1 || committed[1].Index != 2 {
		t.Fatalf("emitted = %v", committed)
	}
}

func TestDeltaReplayIgnoresStaleEra(t *testing.T) {
	n := newReplayNode(t)
	n.onDeltaCommitted(deltaEntry(2, 1, 1, gEntry(1, "new-era")))
	// A straggler from era 1 commits afterwards: its changes were never
	// externalized, so replay must ignore it.
	stale := gEntry(1, "old-era")
	stale.PID = types.ProposalID{Proposer: "c9", Seq: 99}
	n.onDeltaCommitted(deltaEntry(1, 1, 1, stale))
	e, ok := n.GlobalLogEntry(1)
	if !ok {
		t.Fatal("entry 1 missing")
	}
	if e.PID.Proposer == "c9" {
		t.Fatal("stale-era delta overwrote newer state")
	}
}

func TestDeltaReplayEraSwitchMidStream(t *testing.T) {
	n := newReplayNode(t)
	n.onDeltaCommitted(deltaEntry(1, 1, 0, gEntry(1, "a")))
	// New era starts at seq 1 again; an out-of-order (era 2, seq 2) comes
	// first and must be buffered until (era 2, seq 1).
	n.onDeltaCommitted(deltaEntry(2, 2, 2, gEntry(2, "b2")))
	if n.GlobalCommitIndex() != 0 {
		t.Fatal("era-2 seq-2 applied before seq-1")
	}
	n.onDeltaCommitted(deltaEntry(2, 1, 1, gEntry(1, "a2")))
	if n.GlobalCommitIndex() != 2 {
		t.Fatalf("gCommit = %d", n.GlobalCommitIndex())
	}
}

func TestDeltaReplayDuplicateSeqIgnored(t *testing.T) {
	n := newReplayNode(t)
	n.onDeltaCommitted(deltaEntry(1, 1, 1, gEntry(1, "a")))
	before, _ := n.GlobalLogEntry(1)
	dup := gEntry(1, "dup")
	dup.PID = types.ProposalID{Proposer: "cX", Seq: 1}
	n.onDeltaCommitted(deltaEntry(1, 1, 1, dup))
	after, _ := n.GlobalLogEntry(1)
	if before.PID != after.PID {
		t.Fatal("duplicate seq replayed")
	}
}

func TestBatchTrackingAcrossReplay(t *testing.T) {
	n := newReplayNode(t)
	// Two of this cluster's batches appear in the replayed global log.
	n.onDeltaCommitted(deltaEntry(1, 1, 0, gEntry(1, "b1"), gEntry(2, "b2")))
	if n.batchedItems != 2 {
		t.Fatalf("batchedItems = %d", n.batchedItems)
	}
	if n.nextBatchSeq != 3 {
		t.Fatalf("nextBatchSeq = %d", n.nextBatchSeq)
	}
	// A foreign cluster's batch does not affect our accounting.
	foreign := types.Entry{
		Index: 3, Term: 1, Kind: types.KindBatch, Approval: types.ApprovedLeader,
		PID:  types.ProposalID{Proposer: "c2", Seq: 1},
		Data: types.EncodeBatch(types.Batch{Cluster: "c2", Seq: 1, Items: []types.BatchItem{{Data: []byte("x")}}}),
	}
	n.onDeltaCommitted(deltaEntry(1, 2, 0, foreign))
	if n.batchedItems != 2 {
		t.Fatalf("foreign batch counted: %d", n.batchedItems)
	}
}

func TestStartGlobalRestoresReplayedState(t *testing.T) {
	n := newReplayNode(t)
	n.onDeltaCommitted(deltaEntry(3, 1, 1, gEntry(1, "a"), gEntry(2, "b")))
	n.gTerm, n.gVote = 7, "c2"
	n.startGlobal(time.Second)
	g := n.GlobalNode()
	if g == nil {
		t.Fatal("no global node")
	}
	term, vote := g.HardState()
	if term != 7 || vote != "c2" {
		t.Fatalf("hard state = %d/%s", term, vote)
	}
	if g.LastIndex() != 2 {
		t.Fatalf("global log last = %d", g.LastIndex())
	}
	// Batch 2 is beyond gCommit=1: it must be re-proposed under its
	// original pid; batch 1 (committed) must not.
	if g.PendingProposals() != 1 {
		t.Fatalf("pending re-proposals = %d, want 1", g.PendingProposals())
	}
}

func TestConfigValidationCraft(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{ID: "a", Cluster: "c",
		Storage: storage.NewMemory()}); err == nil {
		t.Fatal("missing Rand accepted")
	}
}
