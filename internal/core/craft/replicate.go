package craft

import (
	"fmt"
	"time"

	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// captureGlobal collects the global instance's outputs after any step or
// tick. If the step changed durable global state, the change is wrapped in
// a GlobalState delta and proposed to local consensus, and every message
// produced so far is held behind that barrier; otherwise messages are
// released as soon as all earlier barriers have committed.
func (n *Node) captureGlobal(now time.Duration) bool {
	if n.global == nil {
		return false
	}
	msgs := n.global.TakeOutbox()
	changed := n.global.TakeChangedEntries()
	gterm, gvote := n.global.HardState()
	gcommit := n.global.CommitIndex()
	dirty := len(changed) > 0 || gterm != n.lastTerm || gvote != n.lastVote ||
		gcommit != n.lastCommit
	if !dirty && len(msgs) == 0 {
		return false
	}
	if dirty {
		n.deltaSeq++
		n.deltaOrdinal++
		delta := types.GlobalStateDelta{
			Era:         uint64(n.local.Term()),
			Seq:         n.deltaSeq,
			Term:        gterm,
			VotedFor:    gvote,
			CommitIndex: gcommit,
			Entries:     changed,
		}
		n.lastTerm, n.lastVote, n.lastCommit = gterm, gvote, gcommit
		entry := types.Entry{
			Kind: types.KindGlobalState,
			Data: types.EncodeGlobalStateDelta(delta),
		}
		pid := n.local.ProposeEntry(now, entry)
		n.internalPIDs[pid] = struct{}{}
		n.deltaPids[pid] = n.deltaOrdinal
		n.cfg.Recorder.GlobalOrder(now, delta.Era, delta.Seq)
	}
	// Hold the messages behind every delta proposed so far.
	for _, env := range msgs {
		n.held = append(n.held, heldMsg{barrier: n.deltaOrdinal, env: env})
	}
	n.releaseHeld()
	return true
}

// releaseHeld flushes held messages whose barrier prefix has committed.
func (n *Node) releaseHeld() {
	for len(n.held) > 0 && n.held[0].barrier <= n.deltaPrefix {
		n.outbox = append(n.outbox, n.held[0].env)
		n.held = n.held[1:]
	}
}

// drainLocal processes the local instance's outputs: forwarding messages,
// recording committed entries, replaying global-state deltas and resolving
// proposals.
func (n *Node) drainLocal(now time.Duration) bool {
	progress := false
	for _, env := range n.local.TakeOutbox() {
		n.outbox = append(n.outbox, env)
		progress = true
	}
	for _, e := range n.local.TakeCommitted() {
		progress = true
		n.localCommitted = append(n.localCommitted, e)
		if e.Index > n.appliedLocal {
			n.appliedLocal = e.Index
		}
		switch e.Kind {
		case types.KindNormal:
			n.appLog = append(n.appLog, types.BatchItem{PID: e.PID, Data: e.Data, Trace: e.TraceID})
			n.cfg.Recorder.TraceHop(now, e.TraceID, trace.HopBatch, "", e.Index)
			if n.oldestWait == 0 && len(n.appLog) > n.batchedItems {
				n.oldestWait = now
			}
		case types.KindGlobalState:
			n.onDeltaCommitted(e)
		}
	}
	for _, r := range n.local.TakeResolved() {
		if _, internal := n.internalPIDs[r.PID]; internal {
			delete(n.internalPIDs, r.PID)
			continue
		}
		n.resolved = append(n.resolved, r)
		progress = true
	}
	return progress
}

// onDeltaCommitted handles a GlobalState entry that committed locally: it
// unlocks the live leader's barrier (if this site proposed it) and feeds
// the replayed global state.
func (n *Node) onDeltaCommitted(e types.Entry) {
	if ord, mine := n.deltaPids[e.PID]; mine {
		delete(n.deltaPids, e.PID)
		n.deltaCommitted[ord] = true
		for n.deltaCommitted[n.deltaPrefix+1] {
			delete(n.deltaCommitted, n.deltaPrefix+1)
			n.deltaPrefix++
		}
		n.releaseHeld()
	}
	d, err := types.DecodeGlobalStateDelta(e.Data)
	if err != nil {
		// A locally committed delta that cannot decode is a bug, not a
		// runtime condition.
		panic(fmt.Sprintf("craft %s: corrupt global state delta: %v", n.cfg.ID, err))
	}
	n.bufferReplay(d)
}

// bufferReplay applies deltas in (era, seq) order. Stale-era deltas are
// ignored: a demoted or dead leader never released the messages that
// depended on them, so their changes were never externalized.
func (n *Node) bufferReplay(d types.GlobalStateDelta) {
	if d.Era < n.replayEra {
		return
	}
	if d.Era > n.replayEra {
		n.replayEra = d.Era
		n.replaySeq = 0
		n.replayBuf = make(map[uint64]types.GlobalStateDelta)
	}
	if d.Seq <= n.replaySeq {
		return
	}
	n.replayBuf[d.Seq] = d
	for {
		next, ok := n.replayBuf[n.replaySeq+1]
		if !ok {
			return
		}
		delete(n.replayBuf, n.replaySeq+1)
		n.replaySeq++
		n.applyDelta(next)
		n.cfg.Recorder.Replay(n.now, n.replayEra, n.replaySeq)
	}
}

// applyDelta folds one delta into the replayed global state and emits
// newly committed global entries.
func (n *Node) applyDelta(d types.GlobalStateDelta) {
	n.gTerm, n.gVote = d.Term, d.VotedFor
	for _, ge := range d.Entries {
		n.gLog[ge.Index] = ge.Clone()
		n.trackBatch(ge)
	}
	if d.CommitIndex > n.gCommit {
		if !n.gsBooted {
			// After a restart the replay re-runs from the restored commit
			// base; the boot epoch tells audit tooling the rewind is a
			// recovery, not a commit-index regression.
			n.gsBooted = true
			n.gsRec.Boot(n.now, n.gTerm, n.gCommit)
		}
		for i := n.gCommit + 1; i <= d.CommitIndex; i++ {
			ge, ok := n.gLog[i]
			if !ok {
				panic(fmt.Sprintf("craft %s: replayed commit %d missing from global log", n.cfg.ID, i))
			}
			n.globalCommitted = append(n.globalCommitted, ge.Clone())
			n.gsRec.CommitEntry(n.now, n.gTerm, ge)
			// Sampled batches carry their first traced item's context; the
			// replay hop decodes only such batches (the common, unsampled
			// case skips the decode entirely).
			if ge.TraceID != 0 && ge.Kind == types.KindBatch {
				if b, err := types.DecodeBatch(ge.Data); err == nil {
					for _, it := range b.Items {
						n.cfg.Recorder.TraceHop(n.now, it.Trace, trace.HopReplay, "", i)
					}
				}
			}
		}
		n.gCommit = d.CommitIndex
	}
}

// trackBatch records this cluster's batches seen in the replayed global
// log, which determines batching progress across local leader changes.
func (n *Node) trackBatch(ge types.Entry) {
	if ge.Kind != types.KindBatch {
		return
	}
	b, err := types.DecodeBatch(ge.Data)
	if err != nil {
		panic(fmt.Sprintf("craft %s: corrupt batch in global log: %v", n.cfg.ID, err))
	}
	if b.Cluster != n.cfg.Cluster {
		return
	}
	if _, seen := n.ourBatches[b.Seq]; !seen {
		n.batchedItems += len(b.Items)
		if b.Seq >= n.nextBatchSeq {
			n.nextBatchSeq = b.Seq + 1
		}
		for _, it := range b.Items {
			n.cfg.Recorder.TraceHop(n.now, it.Trace, trace.HopGlobalOrder, "", ge.Index)
		}
	}
	n.ourBatches[b.Seq] = batchRecord{entry: ge.Clone(), items: len(b.Items)}
}

// makeBatches forms new batches from unbatched locally committed entries
// and proposes them to the global level. Only the cluster leader batches;
// batch boundaries are recoverable because every externalized batch is in
// the replayed global log.
//
// Batch flow control: with Config.MaxInflightBatches set, batching pauses
// while that many batch proposals are unresolved at the global level —
// the same inflight-window idea the replica package applies to appends,
// lifted to the batch layer. Locally committed entries simply accumulate
// unbatched (they are already durable and replicated within the cluster)
// and the next resolution re-opens the window.
func (n *Node) makeBatches(now time.Duration) bool {
	if n.global == nil {
		return false
	}
	progress := false
	for len(n.appLog)-n.batchedItems >= n.cfg.BatchSize {
		if !n.canProposeBatch() {
			n.metrics.Inc("craft.batches_throttled")
			return progress
		}
		n.proposeBatch(now, n.cfg.BatchSize)
		progress = true
	}
	if n.cfg.BatchDelay > 0 && n.oldestWait > 0 &&
		now >= n.oldestWait+n.cfg.BatchDelay && len(n.appLog) > n.batchedItems {
		if !n.canProposeBatch() {
			n.metrics.Inc("craft.batches_throttled")
			return progress
		}
		n.proposeBatch(now, len(n.appLog)-n.batchedItems)
		progress = true
	}
	if len(n.appLog) == n.batchedItems {
		n.oldestWait = 0
	}
	return progress
}

// canProposeBatch applies the global-level batch window.
func (n *Node) canProposeBatch() bool {
	cap := n.cfg.MaxInflightBatches
	return cap == 0 || n.global.PendingProposals() < cap
}

func (n *Node) proposeBatch(now time.Duration, size int) {
	if n.nextBatchSeq == 0 {
		n.nextBatchSeq = 1
	}
	seq := n.nextBatchSeq
	n.nextBatchSeq++
	items := make([]types.BatchItem, size)
	copy(items, n.appLog[n.batchedItems:n.batchedItems+size])
	n.batchedItems += size
	b := types.Batch{Cluster: n.cfg.Cluster, Seq: seq, Items: items}
	entry := types.Entry{Kind: types.KindBatch, Data: types.EncodeBatch(b)}
	// The batch entry itself travels under the first traced item's context,
	// so the global-level journey joins that item's tree.
	for _, it := range items {
		if it.Trace != 0 {
			entry.TraceID = it.Trace
			break
		}
	}
	pid := types.ProposalID{Proposer: n.cfg.Cluster, Seq: seq}
	n.ourBatches[seq] = batchRecord{entry: entry.Clone(), items: size}
	n.global.ProposeEntryPID(now, entry, pid)
	n.cfg.Recorder.BatchPropose(now, pid, size)
	if n.oldestWait != 0 && len(n.appLog) == n.batchedItems {
		n.oldestWait = 0
	}
}
