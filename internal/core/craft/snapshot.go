package craft

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/hraft-io/hraft/internal/types"
)

// errBadReplayState reports a replay-state image that fails to decode.
var errBadReplayState = errors.New("craft: bad replay state image")

// Local-log compaction support.
//
// The local log doubles as the cluster's record of inter-cluster consensus:
// committed GlobalState deltas are how a successor leader rebuilds the
// global instance, and committed application entries feed batching. Naive
// compaction would therefore destroy exactly the state C-Raft recovers
// from. The craftSnapshotter closes the gap: the "application state" of the
// local Fast Raft instance is the C-Raft node's replayed global state
// (term, vote, commit index, global log), its delta-replay cursor, and its
// batching position (batch records plus the unbatched tail of locally
// committed application entries). Compacting the local log after
// snapshotting this state loses nothing: a restarted or lagging site
// restores the replay exactly as if it had consumed every compacted delta.
//
// The embedding application's own state is captured through
// Config.AppSnapshotter, appended as a final section of the image. With an
// AppSnapshotter the node only compacts once the application has applied
// everything the replay state covers, so the two sections always describe
// the same point in the local log.

// errAppLagging makes maybeCompact skip a compaction round until the
// embedding application catches up with the replay state.
var errAppLagging = errors.New("craft: application applier behind replay state")

// craftSnapshotter adapts a craft Node to types.Snapshotter for its local
// Fast Raft instance.
type craftSnapshotter struct{ n *Node }

// Snapshot implements types.Snapshotter: serialize the replayed global
// state as of the entries drained so far, plus the embedding application's
// state when an AppSnapshotter is configured.
func (s craftSnapshotter) Snapshot() ([]byte, types.Index, error) {
	var appData []byte
	if app := s.n.cfg.AppSnapshotter; app != nil {
		d, applied, err := app.Snapshot()
		if err != nil {
			return nil, 0, err
		}
		if applied < s.n.appliedLocal {
			// The application has not yet applied every local commit the
			// replay state covers; compacting now would snapshot the two
			// at different points. Retry at a later tick.
			return nil, 0, errAppLagging
		}
		appData = d
	}
	return s.n.encodeReplayState(appData), s.n.appliedLocal, nil
}

// Restore implements types.Snapshotter.
func (s craftSnapshotter) Restore(snap types.Snapshot) error {
	appData, err := s.n.decodeReplayState(snap.Data)
	if err != nil {
		return fmt.Errorf("craft %s: decode replay state: %w", s.n.cfg.ID, err)
	}
	if snap.Meta.LastIndex > s.n.appliedLocal {
		s.n.appliedLocal = snap.Meta.LastIndex
	}
	// appData is nil only when the image predates the app section (an
	// empty-but-present app image decodes as a non-nil empty slice); do
	// not wipe the application's state with a snapshot that never
	// captured it.
	if app := s.n.cfg.AppSnapshotter; app != nil && appData != nil {
		appSnap := snap.Clone()
		appSnap.Data = appData
		if err := app.Restore(appSnap); err != nil {
			return fmt.Errorf("craft %s: restore application state: %w", s.n.cfg.ID, err)
		}
	}
	return nil
}

// encodeReplayState serializes everything drainLocal/applyDelta has
// accumulated. Layout (all varints unless noted):
//
//	gTerm gVote gCommit replayEra replaySeq nextBatchSeq appliedLocal
//	#gLog { entry }...
//	#replayBuf { len-prefixed encoded delta }...
//	#ourBatches { entry items }...
//	#unbatched { pid data }...  (the appLog tail past batchedItems)
//	appData                     (the AppSnapshotter image; empty if none)
func (n *Node) encodeReplayState(appData []byte) []byte {
	var w byteWriter
	w.u64(uint64(n.gTerm))
	w.str(string(n.gVote))
	w.u64(uint64(n.gCommit))
	w.u64(n.replayEra)
	w.u64(n.replaySeq)
	w.u64(n.nextBatchSeq)
	w.u64(uint64(n.appliedLocal))

	idxs := make([]types.Index, 0, len(n.gLog))
	for idx := range n.gLog {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	w.u64(uint64(len(idxs)))
	for _, idx := range idxs {
		w.bytes(types.EncodeEntry(n.gLog[idx]))
	}

	seqs := make([]uint64, 0, len(n.replayBuf))
	for seq := range n.replayBuf {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	w.u64(uint64(len(seqs)))
	for _, seq := range seqs {
		w.u64(seq)
		w.bytes(types.EncodeGlobalStateDelta(n.replayBuf[seq]))
	}

	bseqs := make([]uint64, 0, len(n.ourBatches))
	for seq := range n.ourBatches {
		bseqs = append(bseqs, seq)
	}
	sort.Slice(bseqs, func(i, j int) bool { return bseqs[i] < bseqs[j] })
	w.u64(uint64(len(bseqs)))
	for _, seq := range bseqs {
		rec := n.ourBatches[seq]
		w.u64(seq)
		w.bytes(types.EncodeEntry(rec.entry))
		w.u64(uint64(rec.items))
	}

	tail := n.appLog[n.batchedItems:]
	w.u64(uint64(len(tail)))
	for _, it := range tail {
		w.str(string(it.PID.Proposer))
		w.u64(it.PID.Seq)
		w.bytes(it.Data)
	}
	w.bytes(appData)
	return w.buf
}

// decodeReplayState rebuilds the replay and batching state from a snapshot
// produced by encodeReplayState, replacing whatever was accumulated so far,
// and returns the embedded AppSnapshotter image (nil if none).
func (n *Node) decodeReplayState(data []byte) ([]byte, error) {
	r := byteReader{buf: data}
	gTerm := types.Term(r.u64())
	gVote := types.NodeID(r.str())
	gCommit := types.Index(r.u64())
	replayEra := r.u64()
	replaySeq := r.u64()
	nextBatchSeq := r.u64()
	applied := types.Index(r.u64())

	nLog := r.count()
	gLog := make(map[types.Index]types.Entry, nLog)
	for i := uint64(0); i < nLog && r.err == nil; i++ {
		e, err := types.DecodeEntry(r.bytes())
		if err != nil {
			return nil, err
		}
		gLog[e.Index] = e
	}

	nBuf := r.count()
	replayBuf := make(map[uint64]types.GlobalStateDelta, nBuf)
	for i := uint64(0); i < nBuf && r.err == nil; i++ {
		seq := r.u64()
		d, err := types.DecodeGlobalStateDelta(r.bytes())
		if err != nil {
			return nil, err
		}
		replayBuf[seq] = d
	}

	nBatches := r.count()
	ourBatches := make(map[uint64]batchRecord, nBatches)
	for i := uint64(0); i < nBatches && r.err == nil; i++ {
		seq := r.u64()
		e, err := types.DecodeEntry(r.bytes())
		if err != nil {
			return nil, err
		}
		items := r.u64()
		if items > uint64(len(data)) {
			// An item count beyond the whole image is corrupt (and would
			// overflow int on cast).
			return nil, errBadReplayState
		}
		ourBatches[seq] = batchRecord{entry: e, items: int(items)}
	}

	nTail := r.count()
	tail := make([]types.BatchItem, 0, nTail)
	for i := uint64(0); i < nTail && r.err == nil; i++ {
		var it types.BatchItem
		it.PID.Proposer = types.NodeID(r.str())
		it.PID.Seq = r.u64()
		it.Data = r.bytes()
		tail = append(tail, it)
	}
	// Images written before the AppSnapshotter section end here.
	var appData []byte
	if r.err == nil && r.off < len(r.buf) {
		appData = r.bytes()
	}
	if r.err != nil {
		return nil, r.err
	}

	n.gTerm, n.gVote, n.gCommit = gTerm, gVote, gCommit
	n.replayEra, n.replaySeq = replayEra, replaySeq
	n.replayBuf = replayBuf
	n.gLog = gLog
	n.ourBatches = ourBatches
	n.nextBatchSeq = nextBatchSeq
	// The snapshot stores only the unbatched tail; everything before it is
	// covered by the recorded batches.
	n.appLog = tail
	n.batchedItems = 0
	n.appliedLocal = applied
	n.oldestWait = 0
	return appData, nil
}

// byteWriter/byteReader are a minimal varint codec for the replay-state
// image (the wire codec in types is deliberately unexported).
type byteWriter struct{ buf []byte }

func (w *byteWriter) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

func (w *byteWriter) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *byteWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = errBadReplayState
		return 0
	}
	r.off += n
	return v
}

// count reads an element count, rejecting values that cannot fit in the
// remaining buffer (every element is at least one byte): a corrupt or
// hostile image must error out, not panic allocating a huge slice.
func (r *byteReader) count() uint64 {
	v := r.u64()
	if r.err == nil && v > uint64(len(r.buf)-r.off) {
		r.err = errBadReplayState
		return 0
	}
	return v
}

func (r *byteReader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.err = errBadReplayState
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *byteReader) str() string { return string(r.bytes()) }
