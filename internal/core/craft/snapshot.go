package craft

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/hraft-io/hraft/internal/types"
)

// errBadReplayState reports a replay-state image that fails to decode.
var errBadReplayState = errors.New("craft: bad replay state image")

// Local-log compaction support.
//
// The local log doubles as the cluster's record of inter-cluster consensus:
// committed GlobalState deltas are how a successor leader rebuilds the
// global instance, and committed application entries feed batching. Naive
// compaction would therefore destroy exactly the state C-Raft recovers
// from. The craftSnapshotter closes the gap: the "application state" of the
// local Fast Raft instance is the C-Raft node's replayed global state
// (term, vote, commit index, global log), its delta-replay cursor, and its
// batching position (batch records plus the unbatched tail of locally
// committed application entries). Compacting the local log after
// snapshotting this state loses nothing: a restarted or lagging site
// restores the replay exactly as if it had consumed every compacted delta.
//
// The embedding application's own state is NOT captured here; craft hosts
// that expose committed entries to an application should keep compaction
// disabled or layer their own state into AppSnapshotter (future work noted
// in the README).

// craftSnapshotter adapts a craft Node to types.Snapshotter for its local
// Fast Raft instance.
type craftSnapshotter struct{ n *Node }

// Snapshot implements types.Snapshotter: serialize the replayed global
// state as of the entries drained so far.
func (s craftSnapshotter) Snapshot() ([]byte, types.Index, error) {
	return s.n.encodeReplayState(), s.n.appliedLocal, nil
}

// Restore implements types.Snapshotter.
func (s craftSnapshotter) Restore(snap types.Snapshot) error {
	if err := s.n.decodeReplayState(snap.Data); err != nil {
		return fmt.Errorf("craft %s: decode replay state: %w", s.n.cfg.ID, err)
	}
	if snap.Meta.LastIndex > s.n.appliedLocal {
		s.n.appliedLocal = snap.Meta.LastIndex
	}
	return nil
}

// encodeReplayState serializes everything drainLocal/applyDelta has
// accumulated. Layout (all varints unless noted):
//
//	gTerm gVote gCommit replayEra replaySeq nextBatchSeq appliedLocal
//	#gLog { entry }...
//	#replayBuf { len-prefixed encoded delta }...
//	#ourBatches { entry items }...
//	#unbatched { pid data }...  (the appLog tail past batchedItems)
func (n *Node) encodeReplayState() []byte {
	var w byteWriter
	w.u64(uint64(n.gTerm))
	w.str(string(n.gVote))
	w.u64(uint64(n.gCommit))
	w.u64(n.replayEra)
	w.u64(n.replaySeq)
	w.u64(n.nextBatchSeq)
	w.u64(uint64(n.appliedLocal))

	idxs := make([]types.Index, 0, len(n.gLog))
	for idx := range n.gLog {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	w.u64(uint64(len(idxs)))
	for _, idx := range idxs {
		w.bytes(types.EncodeEntry(n.gLog[idx]))
	}

	seqs := make([]uint64, 0, len(n.replayBuf))
	for seq := range n.replayBuf {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	w.u64(uint64(len(seqs)))
	for _, seq := range seqs {
		w.u64(seq)
		w.bytes(types.EncodeGlobalStateDelta(n.replayBuf[seq]))
	}

	bseqs := make([]uint64, 0, len(n.ourBatches))
	for seq := range n.ourBatches {
		bseqs = append(bseqs, seq)
	}
	sort.Slice(bseqs, func(i, j int) bool { return bseqs[i] < bseqs[j] })
	w.u64(uint64(len(bseqs)))
	for _, seq := range bseqs {
		rec := n.ourBatches[seq]
		w.u64(seq)
		w.bytes(types.EncodeEntry(rec.entry))
		w.u64(uint64(rec.items))
	}

	tail := n.appLog[n.batchedItems:]
	w.u64(uint64(len(tail)))
	for _, it := range tail {
		w.str(string(it.PID.Proposer))
		w.u64(it.PID.Seq)
		w.bytes(it.Data)
	}
	return w.buf
}

// decodeReplayState rebuilds the replay and batching state from a snapshot
// produced by encodeReplayState, replacing whatever was accumulated so far.
func (n *Node) decodeReplayState(data []byte) error {
	r := byteReader{buf: data}
	gTerm := types.Term(r.u64())
	gVote := types.NodeID(r.str())
	gCommit := types.Index(r.u64())
	replayEra := r.u64()
	replaySeq := r.u64()
	nextBatchSeq := r.u64()
	applied := types.Index(r.u64())

	nLog := r.u64()
	gLog := make(map[types.Index]types.Entry, nLog)
	for i := uint64(0); i < nLog && r.err == nil; i++ {
		e, err := types.DecodeEntry(r.bytes())
		if err != nil {
			return err
		}
		gLog[e.Index] = e
	}

	nBuf := r.u64()
	replayBuf := make(map[uint64]types.GlobalStateDelta, nBuf)
	for i := uint64(0); i < nBuf && r.err == nil; i++ {
		seq := r.u64()
		d, err := types.DecodeGlobalStateDelta(r.bytes())
		if err != nil {
			return err
		}
		replayBuf[seq] = d
	}

	nBatches := r.u64()
	ourBatches := make(map[uint64]batchRecord, nBatches)
	for i := uint64(0); i < nBatches && r.err == nil; i++ {
		seq := r.u64()
		e, err := types.DecodeEntry(r.bytes())
		if err != nil {
			return err
		}
		items := int(r.u64())
		ourBatches[seq] = batchRecord{entry: e, items: items}
	}

	nTail := r.u64()
	tail := make([]types.BatchItem, 0, nTail)
	for i := uint64(0); i < nTail && r.err == nil; i++ {
		var it types.BatchItem
		it.PID.Proposer = types.NodeID(r.str())
		it.PID.Seq = r.u64()
		it.Data = r.bytes()
		tail = append(tail, it)
	}
	if r.err != nil {
		return r.err
	}

	n.gTerm, n.gVote, n.gCommit = gTerm, gVote, gCommit
	n.replayEra, n.replaySeq = replayEra, replaySeq
	n.replayBuf = replayBuf
	n.gLog = gLog
	n.ourBatches = ourBatches
	n.nextBatchSeq = nextBatchSeq
	// The snapshot stores only the unbatched tail; everything before it is
	// covered by the recorded batches.
	n.appLog = tail
	n.batchedItems = 0
	n.appliedLocal = applied
	n.oldestWait = 0
	return nil
}

// byteWriter/byteReader are a minimal varint codec for the replay-state
// image (the wire codec in types is deliberately unexported).
type byteWriter struct{ buf []byte }

func (w *byteWriter) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

func (w *byteWriter) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *byteWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = errBadReplayState
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.err = errBadReplayState
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *byteReader) str() string { return string(r.bytes()) }
