package craft

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

// fakeApp is a minimal application Snapshotter: a byte-blob state plus the
// local index it has applied through.
type fakeApp struct {
	state    []byte
	applied  types.Index
	restored int
}

func (a *fakeApp) Snapshot() ([]byte, types.Index, error) {
	return append([]byte(nil), a.state...), a.applied, nil
}

func (a *fakeApp) Restore(snap types.Snapshot) error {
	a.state = append([]byte(nil), snap.Data...)
	a.applied = snap.Meta.LastIndex
	a.restored++
	return nil
}

func newAppNode(t *testing.T, app types.Snapshotter) *Node {
	t.Helper()
	n, err := New(Config{
		ID:               "s1",
		Cluster:          "c1",
		ClusterBootstrap: types.NewConfig("s1", "s2", "s3"),
		GlobalBootstrap:  types.NewConfig("c1", "c2"),
		Storage:          storage.NewMemory(),
		AppSnapshotter:   app,
		Rand:             rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestAppSnapshotterRoundTrip checks that the application's image rides in
// the replay-state snapshot and comes back through Restore.
func TestAppSnapshotterRoundTrip(t *testing.T) {
	app := &fakeApp{state: []byte("kv-state"), applied: 4}
	n := newAppNode(t, app)
	n.appliedLocal = 4
	n.gTerm, n.gCommit = 3, 0

	data, applied, err := craftSnapshotter{n}.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 {
		t.Fatalf("applied = %d, want 4", applied)
	}

	app2 := &fakeApp{}
	n2 := newAppNode(t, app2)
	snap := types.Snapshot{Meta: types.SnapshotMeta{LastIndex: 4, LastTerm: 1}, Data: data}
	if err := (craftSnapshotter{n2}).Restore(snap); err != nil {
		t.Fatal(err)
	}
	if app2.restored != 1 || !bytes.Equal(app2.state, []byte("kv-state")) {
		t.Fatalf("app state not restored: restored=%d state=%q", app2.restored, app2.state)
	}
	if n2.gTerm != 3 || n2.appliedLocal != 4 {
		t.Fatalf("replay state not restored: gTerm=%d applied=%d", n2.gTerm, n2.appliedLocal)
	}
}

// TestAppSnapshotterLagDefersCompaction: while the application trails the
// replay state, snapshotting reports an error so maybeCompact retries at a
// later tick instead of splitting the image across two points.
func TestAppSnapshotterLagDefersCompaction(t *testing.T) {
	app := &fakeApp{state: []byte("x"), applied: 2}
	n := newAppNode(t, app)
	n.appliedLocal = 5 // replay state is ahead of the app

	if _, _, err := (craftSnapshotter{n}).Snapshot(); !errors.Is(err, errAppLagging) {
		t.Fatalf("lagging app: err = %v, want errAppLagging", err)
	}
	app.applied = 5
	if _, _, err := (craftSnapshotter{n}).Snapshot(); err != nil {
		t.Fatalf("caught-up app: %v", err)
	}
}

// TestReplayStateCorruptCountsErrorNotPanic: element counts beyond the
// image's size (truncated or hostile snapshots) must surface as decode
// errors, never as allocation panics.
func TestReplayStateCorruptCountsErrorNotPanic(t *testing.T) {
	n := newAppNode(t, nil)
	img := n.encodeReplayState(nil)
	for cut := 0; cut < len(img); cut++ {
		n2 := newAppNode(t, nil)
		_, _ = n2.decodeReplayState(img[:cut]) // must not panic
	}
	// A forged image whose first count claims 2^60 elements.
	forged := []byte{0, 0, 0, 0, 0, 0, 0}                                         // gTerm gVote gCommit era seq nextBatchSeq applied
	forged = append(forged, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // nLog varint
	n3 := newAppNode(t, nil)
	if _, err := n3.decodeReplayState(forged); err == nil {
		t.Fatal("forged count decoded without error")
	}
}

// TestReplayStateWithoutAppSection: images written before the app section
// existed (no trailing bytes) still decode, returning a nil app image.
func TestReplayStateWithoutAppSection(t *testing.T) {
	n := newAppNode(t, nil)
	n.gTerm = 2
	img := n.encodeReplayState(nil)
	// The empty app section is a single trailing zero-length varint.
	n2 := newAppNode(t, nil)
	appData, err := n2.decodeReplayState(img[:len(img)-1])
	if err != nil {
		t.Fatalf("old-format image failed to decode: %v", err)
	}
	if appData != nil {
		t.Fatalf("old-format image yielded app data %x", appData)
	}
	if n2.gTerm != 2 {
		t.Fatalf("gTerm = %d, want 2", n2.gTerm)
	}

	// Restoring such an image on a node WITH an AppSnapshotter must leave
	// the application's state alone (the image never captured it), not
	// wipe it with a nil payload.
	app := &fakeApp{state: []byte("precious"), applied: 9}
	n3 := newAppNode(t, app)
	snap := types.Snapshot{Meta: types.SnapshotMeta{LastIndex: 1}, Data: img[:len(img)-1]}
	if err := (craftSnapshotter{n3}).Restore(snap); err != nil {
		t.Fatal(err)
	}
	if app.restored != 0 || !bytes.Equal(app.state, []byte("precious")) {
		t.Fatalf("app state wiped by sectionless image: restored=%d state=%q", app.restored, app.state)
	}
}
