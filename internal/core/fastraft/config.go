package fastraft

import (
	"errors"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Config parametrizes a Fast Raft node.
type Config struct {
	// ID is this site's identity.
	ID types.NodeID
	// Bootstrap is the initial configuration used when storage is empty. A
	// joining site uses an empty bootstrap and learns membership from the
	// leader's catch-up.
	Bootstrap types.Config
	// Storage is the site's stable storage (required).
	Storage storage.Storage
	// HeartbeatInterval is the leader tick period (paper: 100 ms
	// intra-cluster, 500 ms inter-cluster).
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized election timeout; the
	// minimum must exceed typical message delays.
	ElectionTimeoutMin time.Duration
	// ElectionTimeoutMax must be > ElectionTimeoutMin.
	ElectionTimeoutMax time.Duration
	// ProposalTimeout is the paper's proposal timeout: how long a proposer
	// waits for its entry to commit before re-proposing it at a fresh
	// index.
	ProposalTimeout time.Duration
	// JoinTimeout is the paper's join timeout: how long a joiner waits for
	// acceptance before re-sending its join request.
	JoinTimeout time.Duration
	// MemberTimeoutRounds is the paper's member timeout: the number of
	// consecutive missed AppendEntries responses after which the leader
	// proposes a configuration excluding the silent follower (paper
	// experiments: 5).
	MemberTimeoutRounds int
	// SnapshotThreshold is the number of committed entries beyond the
	// latest snapshot boundary after which the node snapshots its state
	// machine and compacts the log prefix (0 = compaction disabled). The
	// leader ships the snapshot to followers whose nextIndex falls below
	// the compacted prefix (InstallSnapshot).
	SnapshotThreshold int
	// MaxEntriesPerAppend caps the entries carried by one AppendEntries
	// message (0 = unlimited). With a cap, a lagging follower catches up
	// over several bounded round trips instead of receiving the entire
	// retained suffix in one message — essential for datagram transports.
	MaxEntriesPerAppend int
	// MaxInflightAppends bounds outstanding AppendEntries messages per
	// follower once it is replicating (0 = replica.DefaultMaxInflight). A
	// full window downgrades the round to a plain heartbeat instead of
	// duplicating in-flight entries. Secondary to MaxInflightBytes.
	MaxInflightAppends int
	// MaxInflightBytes bounds the encoded entry bytes outstanding per
	// follower (0 = replica.DefaultMaxInflightBytes, 1 MiB): the primary
	// append window, sized at encode time so flow control tracks actual
	// wire cost instead of message counts.
	MaxInflightBytes int
	// MaxSnapshotChunk is the InstallSnapshot chunk payload size in bytes:
	// the leader slices the encoded snapshot into chunks no larger than
	// this so large state machines fit UDP datagrams and do not stall
	// heartbeats (0 = whole snapshot in one message).
	MaxSnapshotChunk int
	// SnapshotResendTimeout is how long a transfer may go without
	// acknowledged progress before it is retried, before any round trips
	// have been observed on the link (default 4 heartbeats): a pending
	// snapshot's unacked part is re-sent, and a full AppendEntries window
	// falls back to probing so lost appends are retransmitted. Once acks
	// flow, the per-peer adaptive estimate (EWMA of observed round trips,
	// clamped between HeartbeatInterval and ElectionTimeoutMin) takes
	// over.
	SnapshotResendTimeout time.Duration
	// MaxInflightProposals caps this site's unresolved broadcast proposals
	// (0 = unlimited). Proposals past the cap queue in FIFO order and are
	// broadcast as earlier ones resolve, so a proposer burst cannot spray
	// sparse insertions across arbitrary log indices.
	MaxInflightProposals int
	// MaxInflightProposalBytes bounds the encoded payload bytes
	// (types.EntryWireSize) of this site's broadcast-but-unresolved
	// proposals (0 = unlimited) — the byte-based mirror of
	// MaxInflightProposals, so a burst of large entries is throttled as
	// early as a burst of many small ones. The first proposal always
	// broadcasts, so a single oversized entry cannot wedge the queue.
	MaxInflightProposalBytes int
	// SessionTTL expires client sessions idle longer than this: the leader
	// periodically commits clock entries and every replica drops the same
	// timed-out sessions when applying them. 0 disables expiry (sessions
	// live until the LRU cap evicts them).
	SessionTTL time.Duration
	// Snapshotter produces and consumes application state-machine images
	// for compaction. Optional: without one, snapshots carry empty state
	// and compaction is driven purely by the commit index — appropriate
	// only when no application state must survive (tests, harnesses).
	Snapshotter types.Snapshotter
	// DisableFastTrack forces every decided entry onto the classic track;
	// used by the ablation benchmarks.
	DisableFastTrack bool
	// AutoRejoin makes a live site that discovers it was removed from the
	// configuration (e.g. a mistaken silent-leave detection) send join
	// requests to return. Enabled by default through Defaults.
	AutoRejoin bool
	// noAutoRejoin records an explicit opt-out (Defaults would otherwise
	// re-enable).
	NoAutoRejoin bool
	// Rand drives randomized timeouts; required for deterministic
	// simulation.
	Rand *rand.Rand
	// Layer tags outgoing envelopes; C-Raft's inter-cluster instance runs
	// at types.LayerGlobal. Defaults to types.LayerLocal.
	Layer types.Layer
	// Recorder, when set, receives protocol flight-recorder events and
	// proposal lifecycle spans (see internal/trace). Nil disables recording
	// at the cost of one nil check per instrumentation point.
	Recorder *trace.Recorder
}

// Defaults fills unset values with the paper's experimental settings.
func (c *Config) Defaults() {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 3 * c.HeartbeatInterval
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 2 * c.ElectionTimeoutMin
	}
	if c.ProposalTimeout == 0 {
		c.ProposalTimeout = 6 * c.HeartbeatInterval
	}
	if c.JoinTimeout == 0 {
		c.JoinTimeout = 10 * c.HeartbeatInterval
	}
	if c.MemberTimeoutRounds == 0 {
		c.MemberTimeoutRounds = 5
	}
	if c.SnapshotResendTimeout == 0 {
		c.SnapshotResendTimeout = 4 * c.HeartbeatInterval
	}
	if !c.NoAutoRejoin {
		c.AutoRejoin = true
	}
	if c.Layer == 0 {
		c.Layer = types.LayerLocal
	}
}

func (c *Config) validate() error {
	if c.ID == types.None {
		return errors.New("fastraft: config needs an ID")
	}
	if c.Storage == nil {
		return errors.New("fastraft: config needs Storage")
	}
	if c.Rand == nil {
		return errors.New("fastraft: config needs Rand")
	}
	if c.ElectionTimeoutMax <= c.ElectionTimeoutMin {
		return errors.New("fastraft: ElectionTimeoutMax must exceed ElectionTimeoutMin")
	}
	return nil
}
