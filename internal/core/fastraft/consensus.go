package fastraft

import (
	"fmt"
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/quorum"
	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// --- Proposing -----------------------------------------------------------

// Propose submits an application entry from this site: the proposer
// broadcasts it to every configuration member at a chosen index and tracks
// it until resolution (the paper's proposal-timeout retry loop).
func (n *Node) Propose(now time.Duration, data []byte) types.ProposalID {
	return n.ProposeEntry(now, types.Entry{
		Kind: types.KindNormal,
		Data: append([]byte(nil), data...),
	})
}

// ProposeEntry submits an arbitrary entry (used by C-Raft to propose
// global-state entries). The entry's PID is assigned here.
func (n *Node) ProposeEntry(now time.Duration, e types.Entry) types.ProposalID {
	n.now = now
	n.proposalSeq++
	pid := types.ProposalID{Proposer: n.cfg.ID, Seq: n.proposalSeq}
	return n.ProposeEntryPID(now, e, pid)
}

// ProposeEntryPID submits an entry under a caller-chosen ProposalID. C-Raft
// uses deterministic batch PIDs (cluster, batch sequence) so a successor
// local leader re-proposing a batch de-duplicates against the original.
// Proposing an already-pending PID is a no-op.
//
// Proposer backpressure: with Config.MaxInflightProposals set, a proposal
// past the cap is tracked but held in a FIFO queue instead of broadcast —
// a burst can no longer spray sparse insertions across arbitrary indices.
// Queued proposals are admitted as earlier ones resolve.
func (n *Node) ProposeEntryPID(now time.Duration, e types.Entry, pid types.ProposalID) types.ProposalID {
	n.now = now
	if _, exists := n.pending[pid]; exists {
		return pid
	}
	e.PID = pid
	if e.TraceID == 0 {
		e.TraceID = n.rec.MintTrace()
	}
	p := &pendingProposal{
		entry:    e.Clone(),
		deadline: now + n.cfg.ProposalTimeout,
		size:     types.EntryWireSize(e),
	}
	n.pending[pid] = p
	n.rec.SpanStart(now, pid, n.term, e.TraceID)
	if !n.proposalWindowOpen(p) {
		p.queued = true
		n.proposalQueue = append(n.proposalQueue, pid)
		n.metrics.Inc("fastraft.proposals_queued")
		if n.byteWindowClosed(p) {
			// Attribute the queueing: the byte budget (not the count cap)
			// held this proposal back.
			n.metrics.Inc("fastraft.proposals_byte_queued")
		}
		return pid
	}
	n.admitProposal(p)
	return pid
}

// proposalWindowOpen applies both proposer caps: the message-count window
// (MaxInflightProposals) and the byte window (MaxInflightProposalBytes,
// entries sized at encode time).
func (n *Node) proposalWindowOpen(p *pendingProposal) bool {
	if cap := n.cfg.MaxInflightProposals; cap > 0 && n.inflightProposals >= cap {
		return false
	}
	return !n.byteWindowClosed(p)
}

// byteWindowClosed reports whether the byte budget blocks p. The first
// proposal always broadcasts so a single entry larger than the whole
// budget still makes progress.
func (n *Node) byteWindowClosed(p *pendingProposal) bool {
	cap := n.cfg.MaxInflightProposalBytes
	return cap > 0 && n.inflightProposals > 0 && n.inflightProposalBytes+p.size > cap
}

// admitProposal charges the window and broadcasts.
func (n *Node) admitProposal(p *pendingProposal) {
	n.inflightProposals++
	n.inflightProposalBytes += p.size
	n.broadcastProposal(p)
}

// resolvePending resolves a tracked local proposal, releasing its window
// slot and admitting queued proposals into the freed capacity.
func (n *Node) resolvePending(pid types.ProposalID, idx types.Index) {
	p, ok := n.pending[pid]
	if !ok {
		return
	}
	delete(n.pending, pid)
	if !p.queued {
		n.inflightProposals--
		n.inflightProposalBytes -= p.size
	}
	n.rec.SpanEnd(n.now, pid, idx)
	n.resolved = append(n.resolved, types.Resolution{PID: pid, Index: idx})
	n.admitProposals()
}

// admitProposals broadcasts queued proposals while the in-flight window —
// count and bytes — has room, in submission order.
func (n *Node) admitProposals() {
	for len(n.proposalQueue) > 0 {
		pid := n.proposalQueue[0]
		p, ok := n.pending[pid]
		if !ok || !p.queued {
			n.proposalQueue = n.proposalQueue[1:]
			continue // resolved (or already admitted) while queued
		}
		if !n.proposalWindowOpen(p) {
			return
		}
		n.proposalQueue = n.proposalQueue[1:]
		p.queued = false
		p.deadline = n.now + n.cfg.ProposalTimeout
		n.admitProposal(p)
	}
}

// broadcastProposal picks a fresh index and sends the proposal to all
// members, handling the local insert + vote inline.
//
// The index is the first slot past the leader-approved prefix that this
// proposer's own log does not already hold a different entry for. Anchoring
// at the prefix (rather than the end of the sparse log) keeps concurrent
// proposers converging on decidable indices — self-approved entries above
// the prefix are unsettled, and chasing them lets the index race ahead of
// the decide loop indefinitely. Skipping occupied slots lets proposal
// bursts pipeline instead of colliding with their own predecessors.
func (n *Node) broadcastProposal(p *pendingProposal) {
	cfg := n.Config()
	if cfg.Size() == 0 {
		return // not part of any group yet; retry later
	}
	idx := n.log.LastLeaderIndex() + 1
	if idx <= n.commitIndex {
		idx = n.commitIndex + 1
	}
	for {
		e, ok := n.log.Get(idx)
		if !ok || e.PID == p.entry.PID {
			break
		}
		idx++
	}
	p.index = idx
	n.rec.SpanStage(n.now, p.entry.PID, trace.StageReplicate, idx)
	msg := types.ProposeEntry{Index: idx, Entry: p.entry.Clone()}
	for _, peer := range cfg.Others(n.cfg.ID) {
		n.send(peer, msg)
	}
	if cfg.Contains(n.cfg.ID) {
		n.handleProposeLocally(msg)
	}
}

func (n *Node) retryProposals(now time.Duration) {
	var due []types.ProposalID
	for pid, p := range n.pending {
		if !p.queued && now >= p.deadline {
			due = append(due, pid)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].Less(due[j]) })
	for _, pid := range due {
		p := n.pending[pid]
		p.deadline = now + n.cfg.ProposalTimeout
		// Re-propose at a fresh index: the old slot may have been decided
		// for a different entry. De-duplication (leader pid map + commit
		// notifications) keeps the proposal single-commit. Queued proposals
		// have never been broadcast; they wait for the window instead.
		n.broadcastProposal(p)
	}
}

// --- Receiving proposals (follower and leader alike) ----------------------

func (n *Node) onProposeEntry(from types.NodeID, m types.ProposeEntry) {
	n.handleProposeLocally(m)
	_ = from
}

// handleProposeLocally implements the paper's "when follower receives a
// proposed entry" steps, also used by the leader (which is "treated as a
// follower in this scenario").
func (n *Node) handleProposeLocally(m types.ProposeEntry) {
	pid := m.Entry.PID
	// Session duplicate: a retry of a sequence this replica already saw
	// applied — possibly under a different PID (proposer restart) and
	// possibly below the compaction boundary. Answer with the cached
	// response instead of inserting.
	if !m.Entry.Session.IsZero() {
		if idx, dup := n.sessions.LookupDup(m.Entry.Session, m.Entry.SessionSeq); dup {
			n.answerProposer(pid, idx, true)
			return
		}
	}
	// Duplicate handling by proposal ID (same-process retries). The match
	// must agree on the payload: a restarted proposer's reset sequence
	// counter can reuse the PID for a brand-new proposal, which must insert
	// fresh rather than be answered with the old entry's index.
	if existing := n.log.FindProposalFor(pid, m.Entry.Data); existing != 0 {
		if existing <= n.commitIndex {
			// Already committed: notify the proposer directly.
			n.send(pid.Proposer, types.CommitNotify{PID: pid, Index: existing})
			return
		}
		// Already inserted but uncommitted: re-vote for its current slot
		// (handles lost vote messages on re-proposals). The vote waits for
		// the insert's record to be durable; voteFor re-reads the slot at
		// release time, so voting for whatever occupies it then is safe.
		n.acts.After(n.gate, func() { n.voteFor(existing) })
		return
	}
	idx := m.Index
	if idx <= n.commitIndex {
		// The slot is burned; the proposer will re-propose. Vote for the
		// occupant anyway so the leader's tally sees us.
		return
	}
	if !n.log.Has(idx) {
		e := m.Entry.Clone()
		e.Term = n.term
		if err := n.log.InsertSelf(idx, e); err != nil {
			panic(fmt.Sprintf("fastraft %s: insert self: %v", n.cfg.ID, err))
		}
		n.persistEntry(idx)
		n.rec.TraceHop(n.now, e.TraceID, trace.HopReplicate, e.PID.Proposer, idx)
	}
	// A vote is a durability promise — "I hold this entry" — so with group
	// commit it is deferred until the insert's record is on disk. A follower
	// vote rides the gated outbox anyway; the leader's own vote feeding its
	// tally directly is what this defers.
	n.acts.After(n.gate, func() { n.voteFor(idx) })
}

// voteFor sends (or locally applies, on the leader) a vote for the current
// occupant of idx.
func (n *Node) voteFor(idx types.Index) {
	e, ok := n.log.Get(idx)
	if !ok {
		return
	}
	if n.role == types.RoleLeader {
		n.recordVote(n.cfg.ID, types.VoteEntry{
			Term: n.term, Index: idx, Entry: e, CommitIndex: n.commitIndex,
		})
		return
	}
	if n.leaderID == types.None {
		return // no leader known; proposal timeout will recover
	}
	n.send(n.leaderID, types.VoteEntry{
		Term: n.term, Index: idx, Entry: e, CommitIndex: n.commitIndex,
	})
}

// --- Leader: vote intake and the decide loop ------------------------------

func (n *Node) onVoteEntry(from types.NodeID, m types.VoteEntry) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
		return
	}
	if n.role != types.RoleLeader || m.Term < n.term {
		return
	}
	n.recordVote(from, m)
}

func (n *Node) recordVote(from types.NodeID, m types.VoteEntry) {
	pid := m.Entry.PID
	if idx := n.log.FindProposalFor(pid, m.Entry.Data); idx != 0 && idx <= n.commitIndex {
		// Voted-for proposal already committed elsewhere: tell its
		// proposer, don't tally. Payload-checked so a vote for a fresh
		// proposal under a reused PID still tallies.
		n.send(pid.Proposer, types.CommitNotify{PID: pid, Index: idx})
		return
	}
	if m.Index <= n.commitIndex {
		return // stale index
	}
	n.tally.AddVote(m.Index, from, m.Entry)
	n.rec.TraceHop(n.now, m.Entry.TraceID, trace.HopAck, from, m.Index)
	// Paper: reset the voter's nextIndex from its reported commit index so
	// AppendEntries re-converges its log with the (possibly new) leader.
	// The tracker ignores the reset while a snapshot transfer is pending —
	// re-anchoring below the boundary would restart the stream every vote.
	if from != n.cfg.ID {
		n.progress.Ensure(from, m.CommitIndex+1).ResetNext(m.CommitIndex + 1)
	}
}

// decideLoop is the paper's "periodically run by the leader" procedure:
// while a classic quorum has voted on the next undecided index, decide the
// most-voted entry. An entry commits immediately on a fast quorum — but,
// per the paper, the fast track applies only when every earlier index has
// already committed — otherwise the entry rides the classic track
// (AppendEntries replication + matchIndex commit). Decisions pipeline ahead
// of the commit point exactly as appends do in classic Raft; the losing
// candidates at each index are re-sequenced at subsequent indices (the
// leader's free choice) so their proposers don't stall.
func (n *Node) decideLoop() {
	cfg := n.Config()
	classicQ := quorum.ClassicSize(cfg.Size())
	fastQ := quorum.FastSize(cfg.Size())
	for {
		k := n.log.LastLeaderIndex() + 1
		if n.tally.Voters(k, cfg) < classicQ {
			return
		}
		d, ok := n.tally.Decide(k, cfg, n.skipDecidedAt(k))
		if !ok {
			// Every candidate was a duplicate of an already decided
			// proposal; fill the slot with a no-op to keep the log dense.
			n.appendLeaderEntryAt(k, types.Entry{Kind: types.KindNoop})
			continue
		}
		n.appendLeaderEntryAt(k, d.Winner)
		n.rec.SpanStage(n.now, d.Winner.PID, trace.StageQuorum, k)
		n.tally.NullProposal(d.Winner, k)
		for _, v := range d.WinnerVoters {
			n.progress.Ensure(v, n.commitIndex+1).RecordFastMatch(k)
		}
		// Re-sequence losers on the classic track.
		for _, loser := range d.Losers {
			if !loser.PID.IsZero() && n.proposalDecided(loser.PID) {
				continue
			}
			n.appendLeaderEntry(loser)
			n.tally.NullProposal(loser, 0)
		}
		if !n.cfg.DisableFastTrack &&
			k == n.commitIndex+1 &&
			n.log.Term(k) == n.term &&
			n.progress.FastMatchQuorum(cfg, k, fastQ) {
			n.commitTo(k)
			if n.role != types.RoleLeader {
				return // committing a config entry removed this leader
			}
			n.tally.Clear(k)
			cfg = n.Config()
			classicQ = quorum.ClassicSize(cfg.Size())
			fastQ = quorum.FastSize(cfg.Size())
		}
	}
}

// appendLeaderEntry appends e at the end of the leader-approved prefix.
func (n *Node) appendLeaderEntry(e types.Entry) {
	n.appendLeaderEntryAt(n.log.LastLeaderIndex()+1, e)
}

// appendLeaderEntryAt stamps e with the current term and leader-approves it
// at idx (which must extend the prefix by exactly one; any self-approved
// occupant is replaced).
func (n *Node) appendLeaderEntryAt(idx types.Index, e types.Entry) {
	e = e.Clone()
	e.Term = n.term
	if err := n.log.AppendLeader(idx, e); err != nil {
		panic(fmt.Sprintf("fastraft %s: append leader: %v", n.cfg.ID, err))
	}
	n.persistEntry(idx)
	n.appendedAt[idx] = n.now
	n.rec.SpanStage(n.now, e.PID, trace.StageAppend, idx)
	if e.TraceID != 0 {
		n.rec.TraceHop(n.now, e.TraceID, trace.HopAppend, "", idx)
		n.rec.TraceAppendIndex(idx, e.TraceID)
	}
	n.recordSelfDurable()
	if e.Kind == types.KindConfig {
		n.onConfigChangedAsLeader()
	}
}

// --- Leader tick -----------------------------------------------------------

// leaderTick performs all periodic leader duties in the paper's order:
// decide/commit evaluation, membership processing, then AppendEntries
// dispatch. Any phase can demote the node (committing a configuration that
// excludes it), so leadership is re-checked between phases.
func (n *Node) leaderTick() {
	n.decideLoop()
	if n.role != types.RoleLeader {
		return
	}
	n.advanceClassicCommit()
	if n.role != types.RoleLeader {
		return
	}
	n.reads.Flush(n.now)
	n.maybeSessionClock()
	n.processMembership()
	if n.role != types.RoleLeader {
		return
	}
	n.broadcastAppend()
}

// advanceClassicCommit applies the classic-track commit rule over
// matchIndex.
func (n *Node) advanceClassicCommit() {
	cfg := n.Config()
	classicQ := quorum.ClassicSize(cfg.Size())
	for k := n.commitIndex + 1; k <= n.log.LastLeaderIndex(); k++ {
		if n.log.Term(k) != n.term {
			// Entries from earlier terms commit transitively once a
			// current-term entry commits.
			continue
		}
		if !n.progress.MatchQuorum(cfg, k, classicQ) {
			break
		}
		n.commitTo(k)
		if n.role != types.RoleLeader {
			return // committing a config entry removed this leader
		}
		n.tally.Clear(k)
		// A committed configuration entry changes quorum sizes from here
		// on.
		cfg = n.Config()
		classicQ = quorum.ClassicSize(cfg.Size())
	}
}

func (n *Node) commitTo(k types.Index) {
	if k > n.log.LastLeaderIndex() {
		panic(fmt.Sprintf("fastraft %s: commit %d beyond leader prefix %d",
			n.cfg.ID, k, n.log.LastLeaderIndex()))
	}
	for i := n.commitIndex + 1; i <= k; i++ {
		e, ok := n.log.Get(i)
		if !ok {
			panic(fmt.Sprintf("fastraft %s: commit hole at %d", n.cfg.ID, i))
		}
		if at, ok := n.appendedAt[i]; ok {
			n.commitHist.Observe(n.now - at)
			delete(n.appendedAt, i)
		}
		n.rec.SpanStage(n.now, e.PID, trace.StageCommit, i)
		if n.cfg.Layer != types.LayerGlobal {
			// A C-Raft global instance's commit is provisional until the
			// delta externalizing it commits in the cluster's local log: a
			// local-leader crash can roll the global member back behind
			// this point. The authoritative global commit stream is the
			// replay (craft records it per site); auditing these would
			// flag that legitimate rollback as a committed-prefix breach.
			n.rec.CommitEntry(n.now, n.term, e)
		}
		if n.applySessionCommit(e) {
			// Session duplicate (or expired-session proposal): the slot
			// commits but the entry is withheld from the state machine;
			// the proposer was answered with the cached response.
			n.commitIndex = i
			continue
		}
		n.committed = append(n.committed, e)
		n.observeCommitted(e)
		if n.role == types.RoleLeader {
			if !e.PID.IsZero() && e.PID.Proposer != n.cfg.ID {
				n.send(e.PID.Proposer, types.CommitNotify{PID: e.PID, Index: i})
			}
			if e.Kind == types.KindConfig {
				n.onConfigCommittedAsLeader(e)
			}
		}
	}
	n.commitIndex = k
	n.rec.TraceCommitted(k)
}

// observeCommitted resolves local proposals and reacts to configuration
// entries that affect this site.
func (n *Node) observeCommitted(e types.Entry) {
	if e.PID.Proposer == n.cfg.ID {
		n.resolvePending(e.PID, e.Index)
	}
}

// --- Replication (AppendEntries) -------------------------------------------

// logView exposes the leader-approved prefix to the shared dispatch layer
// (Fast Raft replicates only decided entries; classic Raft passes its full
// log instead — that accessor pair is the whole difference between the
// cores' replication).
func (n *Node) logView() replica.LogView {
	return replica.LogView{
		LastIndex:     n.log.LastLeaderIndex,
		Term:          n.log.Term,
		Entries:       n.log.LeaderRange,
		SnapshotIndex: n.log.SnapshotIndex,
	}
}

// round is the per-broadcast-round context stamped onto dispatched
// messages. Paper: nextIndex for fresh peers starts at the leader's commit
// index + 1.
func (n *Node) round() replica.Round {
	return replica.Round{
		Term:     n.term,
		Leader:   n.cfg.ID,
		Commit:   n.commitIndex,
		Seq:      n.aeRound,
		NextHint: n.commitIndex + 1,
		Now:      n.now,
	}
}

// broadcastAppend dispatches this round's traffic to every peer through
// the shared replication engine: snapshot chunks while a peer is behind
// the compacted prefix, leader-approved entries while the inflight window
// allows, a bare heartbeat otherwise (see replica.Tracker.AppendMessages).
// Every branch sends something, so silent-leave accounting keeps working.
func (n *Node) broadcastAppend() {
	cfg := n.Config()
	n.aeRound++
	lv, rc := n.logView(), n.round()
	if n.readMgr != nil {
		// Seal the pending ReadIndex batch onto this round; a quorum of
		// acks echoing the ID confirms every read in it at once.
		rc.ReadCtx = n.readMgr.StampRound(n.now)
	}
	targets := cfg.Others(n.cfg.ID)
	targets = append(targets, sortedKeys(n.nonvoting)...)
	for _, peer := range targets {
		// Silent-leave accounting: count rounds a voting member has left
		// unanswered.
		if cfg.Contains(peer) {
			if n.responded[peer] {
				n.missed[peer] = 0
			} else {
				n.missed[peer]++
			}
			n.responded[peer] = false
		}
		msgs, snapshot := n.progress.AppendMessages(peer, lv, rc)
		if n.rec != nil {
			for _, m := range msgs {
				if len(m.Entries) > 0 {
					n.rec.AppendDispatch(n.now, m.Term, peer, m.PrevLogIndex, len(m.Entries), m.Round)
				}
			}
		}
		if snapshot {
			// The entries this peer needs are compacted away; stream the
			// snapshot instead. While the install is pending nothing is
			// re-sent — the heartbeat keeps the peer responding.
			if !n.sendSnapshotTo(peer) {
				n.send(peer, n.progress.HeartbeatMessage(peer, lv, rc))
			}
			continue
		}
		for _, m := range msgs {
			n.send(peer, m)
		}
	}
	n.lastBroadcastHead = n.log.LastLeaderIndex()
}

func (n *Node) onAppendEntries(from types.NodeID, m types.AppendEntries) {
	if m.Term > n.term || (m.Term == n.term && n.role != types.RoleFollower) {
		n.becomeFollower(m.Term, m.LeaderID)
	}
	resp := types.AppendEntriesResp{
		Term: n.term, Round: m.Round, LastLogIndex: n.log.LastLeaderIndex(),
	}
	// Report any partially buffered snapshot stream so a new leader can
	// continue it from our position instead of restarting at byte 0.
	resp.PendingBoundary, resp.PendingOffset = n.snapRecv.Pending()
	if m.Term < n.term {
		n.send(from, resp)
		return
	}
	// Echo the read-batch ID: a quorum of echoes confirms the leader's
	// pending reads without any log write.
	resp.ReadCtx = m.ReadCtx
	n.leaderID = m.LeaderID
	n.lastLeaderContact = n.now
	n.lonelyElections = 0
	n.resetElectionTimer()
	// Entries at or below our snapshot boundary are committed and match the
	// leader by construction; the consistency check applies only above it.
	if m.PrevLogIndex >= n.log.SnapshotIndex() && m.PrevLogIndex > 0 &&
		(m.PrevLogIndex > n.log.LastLeaderIndex() || n.log.Term(m.PrevLogIndex) != m.PrevLogTerm) {
		// Consistency check failed; hint the leader with our prefix top.
		n.send(from, resp)
		return
	}
	for _, e := range m.Entries {
		if e.Index <= n.log.SnapshotIndex() {
			continue // compacted: already committed here
		}
		n.applyLeaderEntry(e)
	}
	// Fast Raft commit-prefix refinement: only commit over leader-approved
	// entries (see DESIGN.md).
	if m.LeaderCommit > n.commitIndex {
		k := m.LeaderCommit
		if top := n.log.LastLeaderIndex(); k > top {
			k = top
		}
		if k > n.commitIndex {
			n.commitTo(k)
			// Local commit advanced: held follower-local reads whose
			// confirmed index is now covered can be served.
			n.reads.Flush(n.now)
		}
	}
	resp.Success = true
	resp.MatchIndex = m.PrevLogIndex + types.Index(len(m.Entries))
	resp.LastLogIndex = n.log.LastLeaderIndex()
	n.send(from, resp)
	n.reactToConfig()
	n.maybeCompact()
}

// applyLeaderEntry installs one leader-approved entry from AppendEntries,
// overwriting conflicting slots (Fast Raft never truncates: self-approved
// entries at other indices must survive).
func (n *Node) applyLeaderEntry(e types.Entry) {
	idx := e.Index
	if existing, ok := n.log.Get(idx); ok {
		// The in-place fast paths require PID identity, not just
		// SameProposal: a session proposal retried under a different PID is
		// the same value, but keeping the local twin would leave replicas
		// disagreeing on which PID occupies the slot.
		if existing.Approval == types.ApprovedLeader && existing.Term == e.Term &&
			existing.PID == e.PID && existing.SameProposal(e) {
			return // already applied
		}
		if existing.Approval == types.ApprovedSelf && existing.Term == e.Term &&
			existing.PID == e.PID && existing.SameProposal(e) && idx == n.log.LastLeaderIndex()+1 {
			// Same entry we self-inserted: promote in place.
			if err := n.log.PromoteToLeader(idx, e.Term); err != nil {
				panic(fmt.Sprintf("fastraft %s: promote: %v", n.cfg.ID, err))
			}
			n.persistEntry(idx)
			return
		}
		if idx <= n.commitIndex {
			// Never overwrite a committed slot; the leader cannot be
			// sending a conflicting committed entry unless the run is
			// already unsafe — surface it.
			if !existing.SameProposal(e) {
				panic(fmt.Sprintf("fastraft %s: leader overwrote committed index %d", n.cfg.ID, idx))
			}
			return
		}
		if err := n.log.OverwriteLeader(idx, e); err != nil {
			panic(fmt.Sprintf("fastraft %s: overwrite: %v", n.cfg.ID, err))
		}
		n.persistEntry(idx)
		n.rec.TraceHop(n.now, e.TraceID, trace.HopReplicate, n.leaderID, idx)
		return
	}
	if err := n.log.AppendLeader(idx, e); err != nil {
		panic(fmt.Sprintf("fastraft %s: follower append: %v", n.cfg.ID, err))
	}
	n.persistEntry(idx)
	n.rec.TraceHop(n.now, e.TraceID, trace.HopReplicate, n.leaderID, idx)
}

func (n *Node) onAppendEntriesResp(from types.NodeID, m types.AppendEntriesResp) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
		return
	}
	if n.role != types.RoleLeader || m.Term < n.term {
		return
	}
	n.responded[from] = true
	n.missed[from] = 0
	pr := n.progress.Ensure(from, n.commitIndex+1)
	if !m.Success {
		// Back off; the peer's last-leader-index hint converges quickly.
		pr.RejectAppend(m.LastLogIndex)
		n.rec.AppendReject(n.now, m.Term, from, m.LastLogIndex)
	} else {
		// Record only acks that advance the match (idle heartbeat echoes
		// carry no forensic signal and would churn the ring).
		if n.rec != nil && m.MatchIndex > pr.Match() {
			n.rec.AppendAck(n.now, m.Term, from, m.MatchIndex, m.Round)
		}
		n.rec.TraceAck(n.now, from, m.MatchIndex)
		pr.AckAppend(m.MatchIndex, n.now)
	}
	// Any same-term response confirms leadership at the round's dispatch
	// time — the consistency-check outcome is irrelevant to reads.
	if n.readMgr != nil && m.ReadCtx != 0 {
		n.readMgr.ObserveAck(from, m.ReadCtx, n.now)
		n.reads.Flush(n.now)
	}
	// Stream continuation: the peer holds a partial snapshot stream at our
	// boundary (from a predecessor leader); seed the transfer from its
	// buffered offset so acked chunks are never re-sent from byte 0.
	if b := m.PendingBoundary; b != 0 && b == n.log.SnapshotIndex() &&
		m.PendingOffset > 0 && pr.Match() < b {
		n.progress.SeedSnapshot(from, b, m.PendingOffset, n.now)
		n.rec.SnapResume(n.now, from, b, m.PendingOffset)
	}
	// Commit evaluation happens at the next leader tick (timing model).
}

func (n *Node) onCommitNotify(m types.CommitNotify) {
	n.resolvePending(m.PID, m.Index)
}
