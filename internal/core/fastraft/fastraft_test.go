package fastraft

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

func testConfig(id types.NodeID, members ...types.NodeID) Config {
	return Config{
		ID:        id,
		Bootstrap: types.NewConfig(members...),
		Storage:   storage.NewMemory(),
		Rand:      rand.New(rand.NewSource(int64(len(id)) + 7)),
	}
}

func newTestNode(t *testing.T, id types.NodeID, members ...types.NodeID) *Node {
	t.Helper()
	n, err := New(testConfig(id, members...))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// electLeader drives n into leadership by expiring its election timer and
// granting votes from enough peers.
func electLeader(t *testing.T, n *Node, granters ...types.NodeID) {
	t.Helper()
	n.Tick(time.Hour) // far past any election timeout
	if n.Role() != types.RoleCandidate && n.Role() != types.RoleLeader {
		t.Fatalf("role after timeout = %v", n.Role())
	}
	n.TakeOutbox()
	for _, g := range granters {
		n.Step(time.Hour, types.Envelope{
			From: g, To: n.ID(), Layer: types.LayerLocal,
			Msg: types.RequestVoteResp{Term: n.Term(), Granted: true},
		})
	}
	if n.Role() != types.RoleLeader {
		t.Fatalf("not leader after %d grants (role %v)", len(granters), n.Role())
	}
	n.TakeOutbox()
	n.TakeChangedEntries()
}

func vote(idx types.Index, e types.Entry, term types.Term, commit types.Index) types.VoteEntry {
	return types.VoteEntry{Term: term, Index: idx, Entry: e, CommitIndex: commit}
}

// ackLeaderLog feeds successful AppendEntries responses covering the
// leader's current prefix from the given followers and ticks, committing
// pending classic-track entries (e.g. the election no-op).
func ackLeaderLog(t *testing.T, n *Node, followers ...types.NodeID) {
	t.Helper()
	top := n.LastLeaderIndex()
	for _, f := range followers {
		n.Step(time.Hour, types.Envelope{From: f, To: n.ID(), Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n.Term(), Success: true, MatchIndex: top}})
	}
	n.Tick(n.NextDeadline())
	if n.CommitIndex() < top {
		t.Fatalf("prefix not committed: commit=%d top=%d", n.CommitIndex(), top)
	}
	n.TakeOutbox()
	n.TakeCommitted()
}

func proposal(p string, seq uint64) types.Entry {
	return types.Entry{
		Kind: types.KindNormal,
		PID:  types.ProposalID{Proposer: types.NodeID(p), Seq: seq},
		Data: []byte(fmt.Sprintf("%s-%d", p, seq)),
	}
}

func TestSingleNodeBecomesLeaderAndCommits(t *testing.T) {
	n := newTestNode(t, "n1", "n1")
	n.Tick(time.Second)
	if n.Role() != types.RoleLeader {
		t.Fatalf("single node should self-elect, role=%v", n.Role())
	}
	n.Propose(2*time.Second, []byte("solo"))
	n.Tick(n.NextDeadline())
	if n.CommitIndex() < 1 {
		t.Fatalf("commitIndex = %d", n.CommitIndex())
	}
	found := false
	for _, e := range n.TakeCommitted() {
		if string(e.Data) == "solo" {
			found = true
		}
	}
	if !found {
		t.Fatal("proposed entry not committed")
	}
}

// TestPaperQuorumExample reproduces the example from Section III-B: five
// sites, four insert entry e (a fast quorum), one inserts f. Whatever
// classic quorum of votes reaches the leader, e must have the majority in
// it, so the leader always decides e.
func TestPaperQuorumExample(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	e := proposal("n5", 1)
	f := proposal("n4", 1)
	// Voters: n2..n5 voted e; n1 (the would-be leader, as a site) voted f.
	// The leader receives votes from every 2-subset of {n2..n5}; together
	// with its own insert of f that is a classic quorum of 3 with e
	// holding 2 votes — e must win every time.
	subsets := [][]types.NodeID{
		{"n2", "n3"}, {"n2", "n4"}, {"n2", "n5"},
		{"n3", "n4"}, {"n3", "n5"}, {"n4", "n5"},
	}
	for _, sub := range subsets {
		n := newTestNode(t, "n1", peers...)
		electLeader(t, n, "n2", "n3")
		// Leader (as a site) received f's broadcast first.
		k := n.LastLeaderIndex() + 1
		n.Step(time.Hour, types.Envelope{From: "n4", To: "n1", Layer: types.LayerLocal,
			Msg: types.ProposeEntry{Index: k, Entry: f}})
		for _, voter := range sub {
			n.Step(time.Hour, types.Envelope{From: voter, To: "n1", Layer: types.LayerLocal,
				Msg: vote(k, e, n.Term(), 0)})
		}
		n.Tick(n.NextDeadline())
		got, ok := n.Entry(k)
		if !ok {
			t.Fatalf("subset %v: nothing decided at %d", sub, k)
		}
		if !got.SameProposal(e) {
			t.Fatalf("subset %v: decided %v, want e=%v", sub, got.PID, e.PID)
		}
		if got.Approval != types.ApprovedLeader {
			t.Fatalf("subset %v: decision not leader-approved", sub)
		}
	}
}

func TestFastTrackCommitNeedsFastQuorum(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	e := proposal("n5", 1)
	// Case 1: fast quorum (4 voters including the leader) -> immediate
	// commit at the tick.
	n := newTestNode(t, "n1", peers...)
	electLeader(t, n, "n2", "n3")
	ackLeaderLog(t, n, "n2", "n3")
	k := n.LastLeaderIndex() + 1
	n.Step(time.Hour, types.Envelope{From: "n5", To: "n1", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: k, Entry: e}}) // leader inserts + self-votes
	for _, voter := range []types.NodeID{"n2", "n3", "n4"} {
		n.Step(time.Hour, types.Envelope{From: voter, To: "n1", Layer: types.LayerLocal,
			Msg: vote(k, e, n.Term(), 0)})
	}
	n.Tick(n.NextDeadline())
	if n.CommitIndex() < k {
		t.Fatalf("fast quorum present but no fast commit (commit=%d, k=%d)", n.CommitIndex(), k)
	}

	// Case 2: only a classic quorum -> decided but NOT committed until
	// AppendEntries responses arrive (classic track).
	n2 := newTestNode(t, "n1", peers...)
	electLeader(t, n2, "n2", "n3")
	k2 := n2.LastLeaderIndex() + 1
	n2.Step(time.Hour, types.Envelope{From: "n5", To: "n1", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: k2, Entry: e}})
	for _, voter := range []types.NodeID{"n2", "n3"} {
		n2.Step(time.Hour, types.Envelope{From: voter, To: "n1", Layer: types.LayerLocal,
			Msg: vote(k2, e, n2.Term(), 0)})
	}
	n2.Tick(n2.NextDeadline())
	if got, ok := n2.Entry(k2); !ok || !got.SameProposal(e) {
		t.Fatalf("entry not decided: %v %v", got, ok)
	}
	if n2.CommitIndex() >= k2 {
		t.Fatal("committed without a fast quorum or classic replication")
	}
	// Acks from a classic quorum commit it at the next tick.
	for _, peer := range []types.NodeID{"n2", "n3"} {
		n2.Step(time.Hour, types.Envelope{From: peer, To: "n1", Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n2.Term(), Success: true, MatchIndex: k2}})
	}
	n2.Tick(n2.NextDeadline())
	if n2.CommitIndex() < k2 {
		t.Fatalf("classic track never committed (commit=%d, k=%d)", n2.CommitIndex(), k2)
	}
}

func TestDisableFastTrackForcesClassic(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	cfg := testConfig("n1", peers...)
	cfg.DisableFastTrack = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	electLeader(t, n, "n2", "n3")
	e := proposal("n5", 1)
	k := n.LastLeaderIndex() + 1
	n.Step(time.Hour, types.Envelope{From: "n5", To: "n1", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: k, Entry: e}})
	for _, voter := range []types.NodeID{"n2", "n3", "n4", "n5"} {
		n.Step(time.Hour, types.Envelope{From: voter, To: "n1", Layer: types.LayerLocal,
			Msg: vote(k, e, n.Term(), 0)})
	}
	n.Tick(n.NextDeadline())
	if n.CommitIndex() >= k {
		t.Fatal("fast track disabled but entry fast-committed")
	}
}

func TestFollowerInsertAndVote(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n2", peers...)
	// Learn the leader via a heartbeat.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1"}})
	n.TakeOutbox()
	e := proposal("n3", 1)
	n.Step(time.Second, types.Envelope{From: "n3", To: "n2", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 1, Entry: e}})
	out := n.TakeOutbox()
	if len(out) != 1 {
		t.Fatalf("outbox = %v", out)
	}
	v, ok := out[0].Msg.(types.VoteEntry)
	if !ok || out[0].To != "n1" {
		t.Fatalf("expected vote to leader, got %v", out[0])
	}
	if v.Index != 1 || !v.Entry.SameProposal(e) {
		t.Fatalf("vote = %+v", v)
	}
	got, _ := n.Entry(1)
	if got.Approval != types.ApprovedSelf {
		t.Fatalf("inserted entry = %v", got)
	}
	// A second proposal for the same slot must vote for the occupant.
	f := proposal("n1", 9)
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 1, Entry: f}})
	out = n.TakeOutbox()
	if len(out) != 1 {
		t.Fatalf("outbox = %v", out)
	}
	v2 := out[0].Msg.(types.VoteEntry)
	if !v2.Entry.SameProposal(e) {
		t.Fatalf("re-vote should carry the occupant e, got %v", v2.Entry.PID)
	}
}

func TestElectionComparesOnlyLeaderApproved(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n2", peers...)
	// Self-approved entries at high indices must NOT make a voter reject a
	// candidate whose leader-approved log matches ours.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 7, Entry: proposal("n1", 1)}})
	n.TakeOutbox()
	n.Step(2*time.Second, types.Envelope{From: "n3", To: "n2", Layer: types.LayerLocal,
		Msg: types.RequestVote{Term: 5, CandidateID: "n3", LastLogIndex: 0, LastLogTerm: 0}})
	out := n.TakeOutbox()
	if len(out) != 1 {
		t.Fatalf("outbox = %v", out)
	}
	resp := out[0].Msg.(types.RequestVoteResp)
	if !resp.Granted {
		t.Fatal("vote refused despite equal leader-approved logs")
	}
	// The granted vote must ship the self-approved entries for recovery.
	if len(resp.SelfApproved) != 1 || resp.SelfApproved[0].Index != 7 {
		t.Fatalf("self-approved entries = %v", resp.SelfApproved)
	}
}

func TestRecoveryRedecidesSelfApprovedEntries(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	n := newTestNode(t, "n1", peers...)
	e := proposal("n5", 1)
	// n1 itself holds e self-approved at index 1 (the old leader may have
	// fast-committed it before dying).
	n.Step(time.Second, types.Envelope{From: "n5", To: "n1", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 1, Entry: e}})
	n.TakeOutbox()
	// Election: n2 and n3 grant, shipping their self-approved copies of e.
	n.Tick(time.Hour)
	n.TakeOutbox()
	selfCopy := e.Clone()
	selfCopy.Index = 1
	selfCopy.Approval = types.ApprovedSelf
	for _, g := range []types.NodeID{"n2", "n3"} {
		n.Step(time.Hour, types.Envelope{From: g, To: "n1", Layer: types.LayerLocal,
			Msg: types.RequestVoteResp{Term: n.Term(), Granted: true,
				SelfApproved: []types.Entry{selfCopy}}})
	}
	if n.Role() != types.RoleLeader {
		t.Fatalf("role = %v", n.Role())
	}
	got, ok := n.Entry(1)
	if !ok || !got.SameProposal(e) {
		t.Fatalf("recovery did not re-decide e at 1: %v %v", got, ok)
	}
	if got.Approval != types.ApprovedLeader || got.Term != n.Term() {
		t.Fatalf("recovered entry not re-stamped: %v", got)
	}
	// 3 recovery voters (n1, n2, n3) < fast quorum (4): not committed yet.
	if n.CommitIndex() >= 1 {
		t.Fatal("committed on recovery without a fast quorum")
	}
}

// TestRecoveryRecommitsViaClassicTrack drives the full paper scenario: the
// old leader fast-committed e (a fast quorum holds it self-approved), then
// died. The new leader gathers a classic quorum of self-approved entries —
// which cannot reach a fast quorum (elections stop at a majority) — so it
// re-decides e and re-commits it on the classic track.
func TestRecoveryRecommitsViaClassicTrack(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	n := newTestNode(t, "n1", peers...)
	e := proposal("n5", 1)
	n.Step(time.Second, types.Envelope{From: "n5", To: "n1", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 1, Entry: e}})
	n.TakeOutbox()
	n.Tick(time.Hour)
	n.TakeOutbox()
	selfCopy := e.Clone()
	selfCopy.Index = 1
	selfCopy.Approval = types.ApprovedSelf
	for _, g := range []types.NodeID{"n2", "n3"} {
		n.Step(time.Hour, types.Envelope{From: g, To: "n1", Layer: types.LayerLocal,
			Msg: types.RequestVoteResp{Term: n.Term(), Granted: true,
				SelfApproved: []types.Entry{selfCopy}}})
	}
	if n.Role() != types.RoleLeader {
		t.Fatalf("role = %v", n.Role())
	}
	got, ok := n.Entry(1)
	if !ok || !got.SameProposal(e) {
		t.Fatalf("recovery did not re-decide e: %v ok=%v", got, ok)
	}
	// Classic-track replication re-commits it.
	n.TakeOutbox()
	ackLeaderLog(t, n, "n2", "n3")
	if n.CommitIndex() < 1 {
		t.Fatalf("recovered entry never re-committed (commit=%d)", n.CommitIndex())
	}
}

func TestRecoveryFillsGapsWithNoops(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n1", peers...)
	n.Tick(time.Hour)
	n.TakeOutbox()
	// A granter reports a self-approved entry at index 3 only: indices 1-2
	// must become no-ops so the log stays dense.
	far := proposal("n5", 1)
	far.Index = 3
	far.Approval = types.ApprovedSelf
	n.Step(time.Hour, types.Envelope{From: "n2", To: "n1", Layer: types.LayerLocal,
		Msg: types.RequestVoteResp{Term: n.Term(), Granted: true,
			SelfApproved: []types.Entry{far}}})
	if n.Role() != types.RoleLeader {
		t.Fatalf("role = %v", n.Role())
	}
	for i := types.Index(1); i <= 2; i++ {
		got, ok := n.Entry(i)
		if !ok || got.Kind != types.KindNoop {
			t.Fatalf("index %d = %v (ok=%v), want noop", i, got, ok)
		}
	}
	got, _ := n.Entry(3)
	if !got.SameProposal(far) {
		t.Fatalf("index 3 = %v, want recovered entry", got.PID)
	}
}

func TestFollowerOverwritesOnAppendEntriesWithoutTruncating(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n2", peers...)
	// Self-approved entries at 1 and 5.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 1, Entry: proposal("n1", 1)}})
	n.Step(time.Second, types.Envelope{From: "n3", To: "n2", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 5, Entry: proposal("n3", 1)}})
	n.TakeOutbox()
	// Leader decides something else at 1.
	decided := proposal("n1", 7)
	decided.Index = 1
	decided.Term = 1
	decided.Approval = types.ApprovedLeader
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1",
			Entries: []types.Entry{decided}, LeaderCommit: 1}})
	got, _ := n.Entry(1)
	if !got.SameProposal(decided) || got.Approval != types.ApprovedLeader {
		t.Fatalf("slot 1 = %v", got)
	}
	// The self-approved entry at 5 must survive (no truncation).
	if got5, ok := n.Entry(5); !ok || got5.Approval != types.ApprovedSelf {
		t.Fatalf("slot 5 = %v ok=%v (fast raft must not truncate)", got5, ok)
	}
	if n.CommitIndex() != 1 {
		t.Fatalf("commitIndex = %d", n.CommitIndex())
	}
}

func TestCommitPrefixRestrictedToLeaderApproved(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n2", peers...)
	// Self-approved entry at 1; the leader's commit index claims 3.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 1, Entry: proposal("n1", 1)}})
	n.TakeOutbox()
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1", LeaderCommit: 3}})
	// Nothing leader-approved: nothing may commit (DESIGN.md refinement).
	if n.CommitIndex() != 0 {
		t.Fatalf("commitIndex = %d over self-approved entries", n.CommitIndex())
	}
}

func TestStaleTermMessagesRejected(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n2", peers...)
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 5, LeaderID: "n1"}})
	n.TakeOutbox()
	n.Step(time.Second, types.Envelope{From: "n3", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 3, LeaderID: "n3"}})
	out := n.TakeOutbox()
	if len(out) != 1 {
		t.Fatalf("outbox = %v", out)
	}
	resp := out[0].Msg.(types.AppendEntriesResp)
	if resp.Success || resp.Term != 5 {
		t.Fatalf("stale AE response = %+v", resp)
	}
	if n.LeaderID() != "n1" {
		t.Fatalf("leader = %v", n.LeaderID())
	}
}

func TestMembershipFilterIgnoresNonMembers(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n2", peers...)
	n.Step(time.Second, types.Envelope{From: "intruder", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 99, LeaderID: "intruder"}})
	if n.Term() == 99 {
		t.Fatal("non-member message processed")
	}
	if len(n.TakeOutbox()) != 0 {
		t.Fatal("responded to a non-member")
	}
}

func TestRestartRecoversFromStorage(t *testing.T) {
	store := storage.NewMemory()
	cfg := Config{
		ID:        "n1",
		Bootstrap: types.NewConfig("n1"),
		Storage:   store,
		Rand:      rand.New(rand.NewSource(1)),
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Tick(time.Second)
	n.Propose(2*time.Second, []byte("durable"))
	n.Tick(n.NextDeadline())
	if n.CommitIndex() == 0 {
		t.Fatal("no commit before crash")
	}
	term := n.Term()

	// "Crash" and recover from the same storage.
	cfg.Rand = rand.New(rand.NewSource(2))
	n2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Term() != term {
		t.Fatalf("term not recovered: %d vs %d", n2.Term(), term)
	}
	if n2.LastIndex() == 0 {
		t.Fatal("log not recovered")
	}
	// Commit index is volatile: it must be relearned, so it starts at 0.
	if n2.CommitIndex() != 0 {
		t.Fatalf("commitIndex persisted? %d", n2.CommitIndex())
	}
	// The restarted single-node group must recommit after re-election.
	n2.Tick(time.Hour)
	n2.Tick(n2.NextDeadline())
	if n2.CommitIndex() == 0 {
		t.Fatal("restarted node cannot make progress")
	}
}

func TestProposalDedupAcrossReproposal(t *testing.T) {
	peers := []types.NodeID{"n1", "n2", "n3"}
	n := newTestNode(t, "n1", peers...)
	electLeader(t, n, "n2", "n3")
	ackLeaderLog(t, n, "n2", "n3")
	e := proposal("n3", 1)
	k := n.LastLeaderIndex() + 1
	// First broadcast arrives and is decided + committed via fast track.
	n.Step(time.Hour, types.Envelope{From: "n3", To: "n1", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: k, Entry: e}})
	for _, voter := range []types.NodeID{"n2", "n3"} {
		n.Step(time.Hour, types.Envelope{From: voter, To: "n1", Layer: types.LayerLocal,
			Msg: vote(k, e, n.Term(), 0)})
	}
	n.Tick(n.NextDeadline())
	if n.CommitIndex() < k {
		t.Fatalf("setup: not committed (commit=%d k=%d)", n.CommitIndex(), k)
	}
	n.TakeOutbox()
	// A duplicate broadcast (proposer timeout fired) must trigger a commit
	// notification, not a new insertion.
	n.Step(time.Hour, types.Envelope{From: "n3", To: "n1", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: k + 3, Entry: e}})
	out := n.TakeOutbox()
	foundNotify := false
	for _, env := range out {
		if cn, ok := env.Msg.(types.CommitNotify); ok {
			if cn.PID == e.PID && cn.Index == k && env.To == "n3" {
				foundNotify = true
			}
		}
	}
	if !foundNotify {
		t.Fatalf("duplicate proposal not answered with CommitNotify: %v", out)
	}
	if n.Entry(k + 3); n.LastIndex() > k {
		if got, ok := n.Entry(k + 3); ok && got.SameProposal(e) {
			t.Fatal("duplicate inserted again")
		}
	}
}
