package fastraft

import (
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// sortedKeys returns a map's keys in deterministic order; the simulator
// depends on every behavioural iteration being reproducible.
func sortedKeys(m map[types.NodeID]bool) []types.NodeID {
	out := make([]types.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- Joiner side -----------------------------------------------------------

// Join starts the join protocol from this (non-member) site: send a join
// request to the given contacts and retry every JoinTimeout until accepted.
func (n *Node) Join(now time.Duration, contacts []types.NodeID) {
	n.now = now
	n.joinTargets = append([]types.NodeID(nil), contacts...)
	n.sendJoinRequest()
}

func (n *Node) sendJoinRequest() {
	targets := n.joinTargets
	if len(targets) == 0 {
		// Rejoin after removal: contact current configuration members.
		targets = n.Config().Others(n.cfg.ID)
	}
	if n.leaderID != types.None && n.leaderID != n.cfg.ID {
		n.send(n.leaderID, types.JoinRequest{Site: n.cfg.ID})
	} else {
		for _, t := range targets {
			n.send(t, types.JoinRequest{Site: n.cfg.ID})
		}
	}
	n.joinDeadline = n.now + n.cfg.JoinTimeout
}

// tickJoiner re-sends pending join requests and triggers automatic rejoin
// when a live member discovers it was removed.
func (n *Node) tickJoiner(now time.Duration) {
	if n.joinDeadline != 0 && now >= n.joinDeadline {
		if n.IsMember() && !n.rejoining {
			// Join completed (we saw the config entry); stop retrying. A
			// rejoining site keeps retrying even though its own stale log
			// still lists it as a member.
			n.joinDeadline = 0
			n.joinTargets = nil
			return
		}
		n.sendJoinRequest()
	}
	if n.cfg.AutoRejoin && n.joinDeadline == 0 && !n.IsMember() &&
		n.Config().Size() > 0 && n.role == types.RoleFollower {
		// We know a configuration that excludes us (silent-leave
		// misdetection or an announced leave we did not intend): rejoin.
		n.sendJoinRequest()
	}
}

func (n *Node) onJoinRedirect(m types.JoinRedirect) {
	if m.Leader == types.None || m.Leader == n.cfg.ID {
		return
	}
	n.leaderID = m.Leader
	if n.joinDeadline != 0 && !n.IsMember() {
		n.send(m.Leader, types.JoinRequest{Site: n.cfg.ID})
	}
}

func (n *Node) onJoinAccepted(m types.JoinAccepted) {
	n.joinDeadline = 0
	n.joinTargets = nil
	n.rejoining = false
	n.lonelyElections = 0
	_ = m
}

// Leave announces that this site wants to leave the configuration.
func (n *Node) Leave(now time.Duration) {
	n.now = now
	if n.role == types.RoleLeader {
		// A leader cannot remove itself directly; it enqueues its own
		// removal and keeps serving until the configuration commits, after
		// which reactToConfig steps it down.
		n.enqueueRemoval(n.cfg.ID)
		return
	}
	if n.leaderID != types.None {
		n.send(n.leaderID, types.LeaveRequest{Site: n.cfg.ID})
		return
	}
	for _, peer := range n.Config().Others(n.cfg.ID) {
		n.send(peer, types.LeaveRequest{Site: n.cfg.ID})
	}
}

// reactToConfig runs on followers after log changes: if the latest
// configuration no longer contains this site, it stops acting as a member
// (the rejoin logic may bring it back).
func (n *Node) reactToConfig() {
	if n.role == types.RoleLeader {
		return
	}
	// Nothing else to do: acceptFrom and startElection consult the
	// configuration directly. The hook exists for symmetry and future
	// instrumentation.
}

// --- Leader side -----------------------------------------------------------

func (n *Node) onJoinRequest(from types.NodeID, m types.JoinRequest) {
	if n.role != types.RoleLeader {
		n.send(from, types.JoinRedirect{Leader: n.leaderID})
		return
	}
	site := m.Site
	cfg := n.Config()
	if cfg.Contains(site) {
		// Already a member (duplicate request after commit).
		_, ci := n.log.Config()
		n.send(site, types.JoinAccepted{ConfigIndex: ci})
		return
	}
	if n.nonvoting[site] {
		return // duplicate request; catch-up already in progress
	}
	// Start catching the site up as a non-voting member, probing from the
	// log start (the snapshot path takes over if that is compacted away).
	n.nonvoting[site] = true
	n.pendingJoin[site] = true
	n.progress.Ensure(site, 1)
}

func (n *Node) onLeaveRequest(m types.LeaveRequest) {
	if n.role != types.RoleLeader {
		if n.leaderID != types.None {
			n.send(n.leaderID, m)
		}
		return
	}
	n.enqueueRemoval(m.Site)
}

func (n *Node) enqueueRemoval(site types.NodeID) {
	if !n.Config().Contains(site) {
		return
	}
	for _, q := range n.removeQueue {
		if q == site {
			return
		}
	}
	n.removeQueue = append(n.removeQueue, site)
}

// configChangeInFlight reports whether a configuration entry is inserted
// but not yet committed; the paper requires changes to serialize.
func (n *Node) configChangeInFlight() bool {
	_, ci := n.log.Config()
	return ci > n.commitIndex
}

// processMembership is the leader's periodic membership duty: detect
// silent leaves, then start at most one configuration change at a time —
// removals first, then joins whose catch-up completed.
func (n *Node) processMembership() {
	n.detectSilentLeaves()
	if n.configChangeInFlight() {
		return
	}
	cfg := n.Config()
	// Removals take priority: a shrinking quorum restores liveness.
	for len(n.removeQueue) > 0 {
		site := n.removeQueue[0]
		n.removeQueue = n.removeQueue[1:]
		if !cfg.Contains(site) {
			continue
		}
		n.appendLeaderEntry(types.ConfigEntry(cfg.WithoutMember(site), types.ProposalID{}))
		return
	}
	// Then at most one join whose catch-up has completed: the site has
	// acknowledged everything dispatched through the previous broadcast
	// round (which covers everything committed as of that round). The live
	// head — and, on the fast track, the live commit index with it —
	// advances at every tick just before this check runs, so judging
	// against either would starve joins forever under continuous proposal
	// traffic; the one-round tail replicates normally once the site is a
	// member.
	for _, site := range sortedKeys(n.nonvoting) {
		if m := n.progress.Match(site); m >= n.lastBroadcastHead {
			n.appendLeaderEntry(types.ConfigEntry(cfg.WithMember(site), types.ProposalID{}))
			return
		}
	}
}

// detectSilentLeaves turns members whose missed-response count reached the
// member timeout into queued removals, and drops vanished joiners.
func (n *Node) detectSilentLeaves() {
	if n.cfg.MemberTimeoutRounds <= 0 {
		return
	}
	cfg := n.Config()
	for _, peer := range cfg.Others(n.cfg.ID) {
		if n.missed[peer] >= n.cfg.MemberTimeoutRounds {
			n.enqueueRemoval(peer)
		}
	}
	for _, site := range sortedKeys(n.nonvoting) {
		if n.missed[site] >= 4*n.cfg.MemberTimeoutRounds {
			delete(n.nonvoting, site)
			delete(n.pendingJoin, site)
		}
	}
}

// onConfigChangedAsLeader runs when the leader appends a configuration
// entry: the new configuration takes effect immediately for quorum sizing
// (standard single-change Raft rule), so leader-state maps must cover new
// members.
func (n *Node) onConfigChangedAsLeader() {
	cfg := n.Config()
	// Membership change: the read quorum is counted over the new
	// configuration from here on, and the old quorum's lease is void.
	if n.readMgr != nil {
		n.readMgr.SetMembership(cfg.Members)
	}
	for _, peer := range cfg.Members {
		n.progress.Ensure(peer, n.commitIndex+1)
	}
	for site := range n.nonvoting {
		if cfg.Contains(site) {
			delete(n.nonvoting, site)
		}
	}
	// Drop progress for removed members (a lingering snapshot-stream entry
	// would otherwise keep the encoding cache pinned and count toward
	// AnySnapshotStreams forever).
	for _, peer := range n.progress.Peers() {
		if !cfg.Contains(peer) && !n.nonvoting[peer] {
			n.progress.Remove(peer)
		}
	}
}

// onConfigCommittedAsLeader finalizes a committed configuration change:
// notify accepted joiners and step down if the leader removed itself.
func (n *Node) onConfigCommittedAsLeader(e types.Entry) {
	cfg := *e.Config
	for _, site := range sortedKeys(n.pendingJoin) {
		if cfg.Contains(site) {
			delete(n.pendingJoin, site)
			n.send(site, types.JoinAccepted{ConfigIndex: e.Index})
		}
	}
	if !cfg.Contains(n.cfg.ID) {
		// The leader left the configuration; stop leading. Remaining
		// members elect a successor via election timeout.
		n.becomeFollower(n.term, types.None)
	}
}
