package fastraft

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

// drainFor collects all envelopes of a given message type from an outbox.
func envelopesOf[T types.Message](out []types.Envelope) []types.Envelope {
	var hits []types.Envelope
	for _, env := range out {
		if _, ok := env.Msg.(T); ok {
			hits = append(hits, env)
		}
	}
	return hits
}

func TestJoinRequestRedirectedToLeader(t *testing.T) {
	n := newTestNode(t, "n2", "n1", "n2", "n3")
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1"}})
	n.TakeOutbox()
	n.Step(time.Second, types.Envelope{From: "n9", To: "n2", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "n9"}})
	out := envelopesOf[types.JoinRedirect](n.TakeOutbox())
	if len(out) != 1 || out[0].To != "n9" {
		t.Fatalf("redirect = %v", out)
	}
	if out[0].Msg.(types.JoinRedirect).Leader != "n1" {
		t.Fatalf("redirect leader = %v", out[0].Msg)
	}
}

// TestJoinFullFlow drives the leader through the paper's join protocol:
// catch-up as a non-voting member, configuration entry once caught up,
// JoinAccepted once the configuration commits.
func TestJoinFullFlow(t *testing.T) {
	n := newTestNode(t, "n1", "n1", "n2", "n3")
	electLeader(t, n, "n2", "n3")
	ackLeaderLog(t, n, "n2", "n3")

	n.Step(time.Hour, types.Envelope{From: "n9", To: "n1", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "n9"}})
	// Next tick: AppendEntries must now include the joiner (catch-up), and
	// a duplicate request is ignored meanwhile.
	n.Step(time.Hour, types.Envelope{From: "n9", To: "n1", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "n9"}})
	n.Tick(n.NextDeadline())
	aes := envelopesOf[types.AppendEntries](n.TakeOutbox())
	toJoiner := 0
	for _, env := range aes {
		if env.To == "n9" {
			toJoiner++
		}
	}
	if toJoiner != 1 {
		t.Fatalf("catch-up AppendEntries to joiner = %d, want 1", toJoiner)
	}
	// The joiner must not be a voting member yet.
	if n.Config().Contains("n9") {
		t.Fatal("joiner voting before catch-up")
	}
	// The joiner acks everything: next tick the leader proposes the
	// configuration including it.
	n.Step(time.Hour, types.Envelope{From: "n9", To: "n1", Layer: types.LayerLocal,
		Msg: types.AppendEntriesResp{Term: n.Term(), Success: true,
			MatchIndex: n.LastLeaderIndex()}})
	n.Tick(n.NextDeadline())
	if !n.Config().Contains("n9") {
		t.Fatal("configuration entry with joiner not appended")
	}
	cfgIdx := n.LastLeaderIndex()
	// Old members ack the config entry; on commit the joiner is notified.
	for _, f := range []types.NodeID{"n2", "n3"} {
		n.Step(time.Hour, types.Envelope{From: f, To: "n1", Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n.Term(), Success: true, MatchIndex: cfgIdx}})
	}
	n.Tick(n.NextDeadline())
	if n.CommitIndex() < cfgIdx {
		t.Fatalf("config entry uncommitted (commit=%d idx=%d)", n.CommitIndex(), cfgIdx)
	}
	accepted := envelopesOf[types.JoinAccepted](n.TakeOutbox())
	if len(accepted) != 1 || accepted[0].To != "n9" {
		t.Fatalf("JoinAccepted = %v", accepted)
	}
}

func TestLeaveRequestShrinksConfiguration(t *testing.T) {
	n := newTestNode(t, "n1", "n1", "n2", "n3")
	electLeader(t, n, "n2", "n3")
	ackLeaderLog(t, n, "n2", "n3")
	n.Step(time.Hour, types.Envelope{From: "n3", To: "n1", Layer: types.LayerLocal,
		Msg: types.LeaveRequest{Site: "n3"}})
	n.Tick(n.NextDeadline())
	if n.Config().Contains("n3") {
		t.Fatal("configuration still contains the leaver")
	}
	// Quorum of the new 2-member config = 2: n2's ack commits it.
	idx := n.LastLeaderIndex()
	n.Step(time.Hour, types.Envelope{From: "n2", To: "n1", Layer: types.LayerLocal,
		Msg: types.AppendEntriesResp{Term: n.Term(), Success: true, MatchIndex: idx}})
	n.Tick(n.NextDeadline())
	if n.CommitIndex() < idx {
		t.Fatalf("leave config uncommitted (commit=%d idx=%d)", n.CommitIndex(), idx)
	}
}

// TestSilentLeaveDetection verifies the member-timeout mechanism: after
// MemberTimeoutRounds heartbeat rounds without a response, the leader
// proposes a configuration excluding the silent follower.
func TestSilentLeaveDetection(t *testing.T) {
	cfg := testConfig("n1", "n1", "n2", "n3")
	cfg.MemberTimeoutRounds = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	electLeader(t, n, "n2", "n3")
	ackLeaderLog(t, n, "n2", "n3")
	// n2 keeps responding, n3 goes silent.
	for round := 0; round < 5; round++ {
		n.Tick(n.NextDeadline())
		n.TakeOutbox()
		n.Step(n.NextDeadline(), types.Envelope{From: "n2", To: "n1", Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n.Term(), Success: true,
				MatchIndex: n.LastLeaderIndex()}})
	}
	if n.Config().Contains("n3") {
		t.Fatal("silent leaver still in the configuration")
	}
	if !n.Config().Contains("n2") {
		t.Fatal("responsive member wrongly removed")
	}
}

func TestSilentLeaveRequiresConsecutiveMisses(t *testing.T) {
	cfg := testConfig("n1", "n1", "n2", "n3")
	cfg.MemberTimeoutRounds = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	electLeader(t, n, "n2", "n3")
	ackLeaderLog(t, n, "n2", "n3")
	// n3 misses two rounds, responds, misses two more: never removed.
	for phase := 0; phase < 3; phase++ {
		for round := 0; round < 2; round++ {
			n.Tick(n.NextDeadline())
			n.TakeOutbox()
			n.Step(n.NextDeadline(), types.Envelope{From: "n2", To: "n1", Layer: types.LayerLocal,
				Msg: types.AppendEntriesResp{Term: n.Term(), Success: true,
					MatchIndex: n.LastLeaderIndex()}})
		}
		n.Step(n.NextDeadline(), types.Envelope{From: "n3", To: "n1", Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n.Term(), Success: true,
				MatchIndex: n.LastLeaderIndex()}})
	}
	if !n.Config().Contains("n3") {
		t.Fatal("intermittently responsive member removed")
	}
}

// TestConfigChangesSerialize checks the paper's one-at-a-time rule: with
// two pending joins, the second configuration entry only appears after the
// first commits.
func TestConfigChangesSerialize(t *testing.T) {
	n := newTestNode(t, "n1", "n1", "n2", "n3")
	electLeader(t, n, "n2", "n3")
	ackLeaderLog(t, n, "n2", "n3")
	for _, j := range []types.NodeID{"n8", "n9"} {
		n.Step(time.Hour, types.Envelope{From: j, To: "n1", Layer: types.LayerLocal,
			Msg: types.JoinRequest{Site: j}})
		n.Step(time.Hour, types.Envelope{From: j, To: "n1", Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n.Term(), Success: true,
				MatchIndex: n.LastLeaderIndex()}})
	}
	n.Tick(n.NextDeadline())
	cfg := n.Config()
	joined := 0
	if cfg.Contains("n8") {
		joined++
	}
	if cfg.Contains("n9") {
		joined++
	}
	if joined != 1 {
		t.Fatalf("%d joiners admitted in one step, want exactly 1 (config %v)", joined, cfg)
	}
	// Commit the first change; the second follows at a later tick.
	idx := n.LastLeaderIndex()
	for _, f := range []types.NodeID{"n2", "n3"} {
		n.Step(time.Hour, types.Envelope{From: f, To: "n1", Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n.Term(), Success: true, MatchIndex: idx}})
	}
	n.Tick(n.NextDeadline())
	// The second joiner needs a fresh caught-up matchIndex after the first
	// config committed.
	second := "n9"
	if n.Config().Contains("n9") {
		second = "n8"
	}
	n.Step(time.Hour, types.Envelope{From: types.NodeID(second), To: "n1", Layer: types.LayerLocal,
		Msg: types.AppendEntriesResp{Term: n.Term(), Success: true,
			MatchIndex: n.LastLeaderIndex()}})
	n.Tick(n.NextDeadline())
	if !n.Config().Contains(types.NodeID(second)) {
		t.Fatalf("second joiner never admitted (config %v)", n.Config())
	}
}

// TestJoinerAcceptsCatchUpFromScratch verifies the joiner side: an empty
// node outside any configuration accepts the leader's AppendEntries and
// becomes a member once it sees the configuration entry containing it.
func TestJoinerAcceptsCatchUpFromScratch(t *testing.T) {
	joiner, err := New(Config{
		ID:        "n9",
		Bootstrap: types.NewConfig(), // no membership yet
		Storage:   storage.NewMemory(),
		Rand:      rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	joiner.Join(time.Second, []types.NodeID{"n1", "n2"})
	out := envelopesOf[types.JoinRequest](joiner.TakeOutbox())
	if len(out) != 2 {
		t.Fatalf("join requests = %v", out)
	}
	newCfg := types.NewConfig("n1", "n2", "n3", "n9")
	entries := []types.Entry{
		{Index: 1, Term: 1, Kind: types.KindNoop, Approval: types.ApprovedLeader},
		{Index: 2, Term: 1, Kind: types.KindConfig, Approval: types.ApprovedLeader,
			Config: &newCfg},
	}
	joiner.Step(2*time.Second, types.Envelope{From: "n1", To: "n9", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1", Entries: entries, LeaderCommit: 2}})
	if !joiner.IsMember() {
		t.Fatalf("joiner not a member after config entry (config %v)", joiner.Config())
	}
	if joiner.CommitIndex() != 2 {
		t.Fatalf("joiner commit = %d", joiner.CommitIndex())
	}
	joiner.Step(3*time.Second, types.Envelope{From: "n1", To: "n9", Layer: types.LayerLocal,
		Msg: types.JoinAccepted{ConfigIndex: 2}})
	// Join retries must stop.
	if d := joiner.NextDeadline(); d != 0 {
		joiner.Tick(d)
		if len(envelopesOf[types.JoinRequest](joiner.TakeOutbox())) != 0 {
			t.Fatal("joiner still re-sending join requests after acceptance")
		}
	}
}

// TestAutoRejoinAfterFalseRemoval: a live member that discovers it was
// removed (silent-leave misdetection) must send a join request to return.
func TestAutoRejoinAfterFalseRemoval(t *testing.T) {
	n := newTestNode(t, "n3", "n1", "n2", "n3")
	// Config excluding n3 arrives from the leader.
	without := types.NewConfig("n1", "n2")
	n.Step(time.Second, types.Envelope{From: "n1", To: "n3", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1", Entries: []types.Entry{
			{Index: 1, Term: 1, Kind: types.KindConfig, Approval: types.ApprovedLeader,
				Config: &without},
		}, LeaderCommit: 1}})
	n.TakeOutbox()
	if n.IsMember() {
		t.Fatal("still a member")
	}
	// The next tick triggers the auto-rejoin.
	n.Tick(n.NextDeadline())
	joins := envelopesOf[types.JoinRequest](n.TakeOutbox())
	if len(joins) == 0 {
		t.Fatal("no auto-rejoin request sent")
	}
}

// TestRemovedNodeDoesNotCampaign: once removed from the configuration, a
// node must not start elections (the paper ignores non-member messages, so
// a removed campaigner could otherwise disrupt the group).
func TestRemovedNodeDoesNotCampaign(t *testing.T) {
	n := newTestNode(t, "n3", "n1", "n2", "n3")
	without := types.NewConfig("n1", "n2")
	n.Step(time.Second, types.Envelope{From: "n1", To: "n3", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1", Entries: []types.Entry{
			{Index: 1, Term: 1, Kind: types.KindConfig, Approval: types.ApprovedLeader,
				Config: &without},
		}, LeaderCommit: 1}})
	n.TakeOutbox()
	term := n.Term()
	n.Tick(time.Hour) // election timeout expires
	if n.Role() != types.RoleFollower {
		t.Fatalf("removed node campaigned: role=%v", n.Role())
	}
	if n.Term() != term {
		t.Fatalf("removed node bumped its term: %d -> %d", term, n.Term())
	}
}
