// Package fastraft implements Fast Raft, the paper's primary contribution:
// a Raft variant that commits in two message rounds on a fast track when
// there are no concurrent proposals, falls back to a classic track on
// conflict or loss, and handles dynamic membership including silent leaves.
//
// Protocol summary (Section IV of the paper):
//
//   - Proposers broadcast entries directly to all sites at a chosen index.
//     Sites insert into the free slot (self-approved) and forward a vote —
//     the slot's occupant — to the leader.
//   - The leader tallies votes per index in possibleEntries. At each
//     heartbeat tick it runs the decide loop for k = commitIndex+1: once a
//     classic quorum has voted, the most-voted entry is decided
//     (leader-approved); if a fast quorum voted for it, it commits
//     immediately (fast track), otherwise AppendEntries replicates it and
//     it commits on a classic quorum of matchIndex (classic track).
//   - Elections compare only leader-approved log positions; granted votes
//     carry the voter's self-approved entries so the new leader re-decides
//     (and re-commits) anything a previous leader may have committed on the
//     fast track.
//   - Membership is dynamic: join/leave requests go to the leader, which
//     serializes configuration changes one member at a time, and silent
//     leaves are detected by missed heartbeat responses.
//
// See DESIGN.md for the spec refinements this implementation pins down
// (proposer index selection, commit-prefix restriction, recovery no-ops,
// loser re-sequencing).
package fastraft

import (
	"fmt"
	"time"

	"github.com/hraft-io/hraft/internal/durable"
	"github.com/hraft-io/hraft/internal/logstore"
	"github.com/hraft-io/hraft/internal/quorum"
	"github.com/hraft-io/hraft/internal/readpath"
	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/session"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// pendingProposal tracks a locally originated proposal until it resolves.
// A queued proposal is tracked but not yet broadcast: it waits for the
// in-flight window (Config.MaxInflightProposals) to open.
type pendingProposal struct {
	entry    types.Entry
	index    types.Index
	deadline time.Duration
	queued   bool
	// size is the entry's wire encoding size, charged against
	// Config.MaxInflightProposalBytes while broadcast.
	size int
}

// Node is a Fast Raft site: a sans-io state machine driven by Step/Tick.
// It is not safe for concurrent use; hosts serialize all calls.
type Node struct {
	cfg Config

	term     types.Term
	votedFor types.NodeID
	log      *logstore.Log

	role        types.Role
	leaderID    types.NodeID
	commitIndex types.Index

	electionDeadline time.Duration
	tickDeadline     time.Duration

	// candidate state.
	votes         map[types.NodeID]bool
	recoveryVotes map[types.NodeID][]types.Entry
	// sawVoteResp notes whether the current candidacy received any
	// RequestVote response at all; lonelyElections counts consecutive
	// candidacies that received none. A site removed from the
	// configuration while absent cannot learn of its removal from its own
	// log — everyone simply ignores it — so after lonelyElectionLimit
	// silent candidacies it stops campaigning and sends join requests
	// instead (the paper: a silently removed follower "will need to send a
	// join request to return").
	sawVoteResp     bool
	lonelyElections int

	// pendingTransfer marks the next election as leadership-transfer
	// (started on a TimeoutNow order): its RequestVote carries Transfer so
	// voters skip election stickiness.
	pendingTransfer bool
	rejoining       bool

	// leader state.
	tally *quorum.Tally
	// progress is the per-peer replication engine (internal/replica): it
	// owns what used to be the nextIndex/matchIndex/fastMatch maps plus
	// append flow control and snapshot streaming state. Leader-only; nil
	// otherwise.
	progress *replica.Tracker
	aeRound  uint64
	// responded marks peers that answered since the last broadcast round;
	// missed counts consecutive unanswered rounds (silent-leave detection).
	responded map[types.NodeID]bool
	missed    map[types.NodeID]int
	// nonvoting tracks joining sites being caught up, with pendingJoin
	// recording who to notify once their configuration entry commits.
	nonvoting   map[types.NodeID]bool
	pendingJoin map[types.NodeID]bool
	// removeQueue holds members awaiting a removal configuration entry.
	removeQueue []types.NodeID
	// lastBroadcastHead is the leader-approved head as of the previous
	// broadcast round: the most a peer can have acknowledged by now. Join
	// catch-up is judged against it — judging against the live head would
	// starve joins forever under continuous proposals, because the decide
	// loop advances the head at every tick just before the check.
	lastBroadcastHead types.Index

	// proposer state. inflightProposals counts pending proposals that have
	// been broadcast, inflightProposalBytes their encoded payload bytes;
	// proposalQueue holds the PIDs waiting for the window
	// (Config.MaxInflightProposals / MaxInflightProposalBytes) in FIFO
	// order.
	proposalSeq           uint64
	pending               map[types.ProposalID]*pendingProposal
	inflightProposals     int
	inflightProposalBytes int
	proposalQueue         []types.ProposalID

	// joiner state (site not yet in the configuration).
	joinDeadline time.Duration
	joinTargets  []types.NodeID

	outbox    []types.Envelope
	committed []types.Entry
	resolved  []types.Resolution
	// changed accumulates entries inserted/overwritten since the last
	// TakeChangedEntries, for C-Raft's global state replication.
	changed []types.Entry

	// Durability gating (group-commit storage only; see internal/durable).
	// gate is nil for synchronous storage and every queue passes through.
	// The Take* drains tag each batch with the storage LSN it depends on and
	// release only the durable prefix; acts defers this node's internal
	// self-acknowledgements — its own votes and its own match index — so it
	// never counts a contribution toward an election or a commit before the
	// records behind that contribution are on disk. ReadDone is deliberately
	// not gated: read resolutions depend only on quorum state that is gated
	// at its source, and coupling them to unrelated pending writes would put
	// an fsync on the lease-read fast path.
	gate       *durable.Gate
	acts       durable.Acts
	outboxQ    durable.Queue[types.Envelope]
	committedQ durable.Queue[types.Entry]
	resolvedQ  durable.Queue[types.Resolution]
	changedQ   durable.Queue[types.Entry]

	// snap is the latest snapshot (zero if none): the recovery base loaded
	// from storage, produced by local compaction, or installed by the
	// leader. The leader ships it to followers that fell behind the
	// compacted prefix. snapEnc caches its wire encoding for chunked
	// transfers; snapRecv reassembles chunked streams received as
	// follower.
	snap     types.Snapshot
	snapEnc  replica.SnapshotEncoder
	snapRecv replica.Reassembler

	// metrics counts replication and backpressure events (see
	// internal/replica counter names); it survives role changes, as do the
	// latency histograms. commitHist observes leader-side commit latency
	// (leader approval to commit); installHist observes follower-side
	// snapshot install duration (stream start to install). appendedAt
	// tracks when the leader approved each uncommitted index (commitHist
	// input; leader only), installStart when the pending snapshot stream
	// began.
	metrics      *stats.Counters
	commitHist   *stats.TimingHist
	installHist  *stats.TimingHist
	appendedAt   map[types.Index]time.Duration
	installStart time.Duration
	// rec is the protocol flight recorder (nil = disabled; every call site
	// is a nil check). It records role/election/replication events and the
	// per-proposal lifecycle spans behind the hist.stage_* histograms.
	rec *trace.Recorder
	// installBoundary/installCheck identify the stream installStart was
	// armed for, so a new stream arriving over a stale partial buffer
	// restarts the clock instead of inheriting the dead stream's start.
	installBoundary types.Index
	installCheck    uint32
	// snapStreamTrace (leader) and installTrace (follower) carry the
	// sampled trace context of an in-flight snapshot stream, so every
	// chunk and the final install land in the same trace tree.
	snapStreamTrace map[types.NodeID]uint64
	installTrace    uint64

	// Linearizable read state (see read.go and internal/readpath). reads
	// is the node-lifetime frontend; readMgr is leader-only, like the
	// tracker; readFloor is this term's no-op index, the completeness
	// floor below which a fresh leader cannot vouch for prior commits.
	// lastLeaderContact backs the election-stickiness vote refusal the
	// lease safety argument depends on.
	reads             *readpath.Frontend
	readMgr           *readpath.Manager
	readFloor         types.Index
	lastLeaderContact time.Duration
	// bootGraceArm/bootGraceUntil implement the post-restart vote-refusal
	// window: a site restarted with persisted state may have acknowledged
	// a lease round just before crashing, and its volatile stickiness
	// state is gone — so it refuses votes for one minimum election
	// timeout after its first post-boot activity, by which time any lease
	// it could have underwritten has expired.
	bootGraceArm   bool
	bootGraceUntil time.Duration

	// sessions is the replicated client-session registry, fed by committed
	// entries in log order (identical on every replica) and consulted at
	// apply time for exactly-once semantics. Its boundary-aligned image
	// rides in every snapshot.
	sessions *session.Registry
	// lastSessionClock is when this leader last committed a session clock
	// entry (expiry pacing).
	lastSessionClock time.Duration

	now time.Duration
}

// New builds a node, recovering persistent state from cfg.Storage.
func New(cfg Config) (*Node, error) {
	cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hs, entries, err := cfg.Storage.Load()
	if err != nil {
		return nil, fmt.Errorf("fastraft: load storage: %w", err)
	}
	snap, hasSnap, err := cfg.Storage.LoadSnapshot()
	if err != nil {
		return nil, fmt.Errorf("fastraft: load snapshot: %w", err)
	}
	log, err := logstore.RestoreSnapshot(cfg.Bootstrap, snap.Meta, entries)
	if err != nil {
		return nil, fmt.Errorf("fastraft: restore log: %w", err)
	}
	n := &Node{
		cfg:         cfg,
		term:        hs.Term,
		votedFor:    hs.VotedFor,
		log:         log,
		gate:        durable.NewGate(cfg.Storage),
		role:        types.RoleFollower,
		pending:     make(map[types.ProposalID]*pendingProposal),
		sessions:    session.New(),
		metrics:     stats.NewCounters(),
		commitHist:  stats.NewTimingHist("hist.commit_latency", stats.DefaultLatencyBounds()...),
		installHist: stats.NewTimingHist("hist.snapshot_install", stats.DefaultLatencyBounds()...),
		rec:         cfg.Recorder,
	}
	// Slow-op reports name the peers the node was replicating to; evaluated
	// on the consensus goroutine only when a slow proposal fires.
	n.rec.SetPeersFunc(func() []types.NodeID { return n.Config().Others(n.cfg.ID) })
	// A site with persisted consensus state may have underwritten a lease
	// before it crashed; see bootGraceArm.
	n.bootGraceArm = hs.Term > 0
	if hasSnap {
		// Snapshots cover only committed entries; resume committing above.
		n.snap = snap
		n.commitIndex = snap.Meta.LastIndex
		if err := n.sessions.Restore(snap.Sessions); err != nil {
			return nil, fmt.Errorf("fastraft: restore sessions: %w", err)
		}
		if cfg.Snapshotter != nil {
			if err := cfg.Snapshotter.Restore(snap.Clone()); err != nil {
				return nil, fmt.Errorf("fastraft: restore state machine: %w", err)
			}
		}
	}
	n.reads = n.newReadFrontend()
	n.resetElectionTimer()
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.cfg.ID }

// Role returns the node's current role.
func (n *Node) Role() types.Role { return n.role }

// Term returns the node's current term.
func (n *Node) Term() types.Term { return n.term }

// LeaderID returns the current known leader (None if unknown).
func (n *Node) LeaderID() types.NodeID { return n.leaderID }

// CommitIndex returns the node's commit index.
func (n *Node) CommitIndex() types.Index { return n.commitIndex }

// Config returns the node's active membership configuration.
func (n *Node) Config() types.Config {
	cfg, _ := n.log.Config()
	return cfg
}

// IsMember reports whether this site is a voting member of its own
// configuration.
func (n *Node) IsMember() bool { return n.Config().Contains(n.cfg.ID) }

// LastIndex returns the last occupied log index.
func (n *Node) LastIndex() types.Index { return n.log.LastIndex() }

// LastLeaderIndex returns the top of the leader-approved prefix.
func (n *Node) LastLeaderIndex() types.Index { return n.log.LastLeaderIndex() }

// FirstIndex returns the first retained log index (1 when nothing has been
// compacted).
func (n *Node) FirstIndex() types.Index { return n.log.FirstIndex() }

// SnapshotIndex returns the current snapshot boundary (0 if none).
func (n *Node) SnapshotIndex() types.Index { return n.log.SnapshotIndex() }

// PendingProposals returns the number of unresolved local proposals
// (broadcast and queued alike).
func (n *Node) PendingProposals() int { return len(n.pending) }

// QueuedProposals returns the number of local proposals held back by the
// in-flight cap (Config.MaxInflightProposals), awaiting broadcast.
func (n *Node) QueuedProposals() int { return len(n.pending) - n.inflightProposals }

// Metrics returns a snapshot of the node's observability surface: the
// monotonic replication and backpressure counters (see internal/replica
// for the names), the commit-latency and snapshot-install histograms
// (hist.* keys, cumulative buckets), and point-in-time gauges
// (gauge.log_span, gauge.sessions_open, gauge.snapshot_bytes).
func (n *Node) Metrics() map[string]uint64 {
	out := n.metrics.Snapshot()
	n.commitHist.MergeInto(out, "")
	n.installHist.MergeInto(out, "")
	n.rec.MergeMetrics(out, "")
	out["gauge.log_span"] = uint64(n.log.LastIndex() - n.log.FirstIndex() + 1)
	out["gauge.sessions_open"] = uint64(n.sessions.Len())
	out["gauge.snapshot_bytes"] = uint64(len(n.snap.Data) + len(n.snap.Sessions))
	out["log.compacted_pid_hits"] = n.log.CompactedPIDHits()
	return out
}

// Recorder exposes the node's flight recorder (nil when tracing is
// disabled). The recorder is safe to snapshot from any goroutine.
func (n *Node) Recorder() *trace.Recorder { return n.rec }

// LeaseUntil returns the read lease expiry on this node's clock (0 = no
// lease, or not leading); diagnostics.
func (n *Node) LeaseUntil() time.Duration {
	if n.readMgr == nil {
		return 0
	}
	return n.readMgr.LeaseUntil()
}

// Progress exposes the per-peer replication tracker (nil unless leader);
// tests and diagnostics only.
func (n *Node) Progress() *replica.Tracker { return n.progress }

// PeerStatus snapshots every tracked peer's replication progress (empty
// unless this node leads): state, match/next, srtt/rttvar and inflight
// window occupancy.
func (n *Node) PeerStatus() []replica.PeerStatus {
	if n.progress == nil {
		return nil
	}
	return n.progress.Status()
}

// Sessions exposes the replicated client-session registry (tests, C-Raft
// and diagnostics; callers must not mutate it).
func (n *Node) Sessions() *session.Registry { return n.sessions }

// Entry returns a copy of the log entry at idx.
func (n *Node) Entry(idx types.Index) (types.Entry, bool) { return n.log.Get(idx) }

// TakeOutbox drains messages to send. With group-commit storage only the
// durable prefix is released; the rest follows after SyncDone.
func (n *Node) TakeOutbox() []types.Envelope {
	n.outboxQ.Hold(n.gate.Tag(), n.outbox)
	n.outbox = nil
	return n.outboxQ.Release(n.gate.Durable(), nil)
}

// TakeCommitted drains newly committed entries, in log order. With
// group-commit storage only the durable prefix is released.
func (n *Node) TakeCommitted() []types.Entry {
	n.committedQ.Hold(n.gate.Tag(), n.committed)
	n.committed = nil
	return n.committedQ.Release(n.gate.Durable(), nil)
}

// TakeResolved drains resolutions of locally originated proposals. With
// group-commit storage only the durable prefix is released.
func (n *Node) TakeResolved() []types.Resolution {
	n.resolvedQ.Hold(n.gate.Tag(), n.resolved)
	n.resolved = nil
	return n.resolvedQ.Release(n.gate.Durable(), nil)
}

// TakeChangedEntries drains the entries inserted or overwritten since the
// last call, used by C-Raft to build global state deltas. With group-commit
// storage only the durable prefix is released.
func (n *Node) TakeChangedEntries() []types.Entry {
	n.changedQ.Hold(n.gate.Tag(), n.changed)
	n.changed = nil
	return n.changedQ.Release(n.gate.Durable(), nil)
}

// SyncDone advances the durability horizon after a storage sync: deferred
// self-acknowledgements run (possibly winning an election), held outputs
// become releasable at the next Take*, and a leader re-evaluates decisions
// and commits that were waiting on its own records.
func (n *Node) SyncDone(now time.Duration, durableLSN uint64) {
	n.now = now
	if !n.acts.Run(durableLSN) {
		return
	}
	if n.role != types.RoleLeader {
		return
	}
	n.decideLoop()
	if n.role != types.RoleLeader {
		return
	}
	n.advanceClassicCommit()
	if n.role != types.RoleLeader {
		return
	}
	n.reads.Flush(n.now)
}

// recordSelfDurable counts the leader's own log head toward replication
// quorums only once every record behind it is on disk. The head and term
// are captured now; by the time the records are durable the node may have
// stepped down or advanced terms, in which case the stale self-ack is
// dropped (RecordSelf is monotonic, so replaying a lower head is harmless
// but a cross-term replay would seed a fresh tracker).
func (n *Node) recordSelfDurable() {
	idx := n.log.LastLeaderIndex()
	term := n.term
	n.acts.After(n.gate, func() {
		if n.role == types.RoleLeader && n.term == term && n.progress != nil {
			n.progress.RecordSelf(n.cfg.ID, idx)
		}
	})
}

// HardState returns the node's persistent term and vote (C-Raft replicates
// them in global state deltas).
func (n *Node) HardState() (types.Term, types.NodeID) { return n.term, n.votedFor }

// NextDeadline returns the earliest future instant at which the node needs
// Tick. Zero means no pending deadline.
func (n *Node) NextDeadline() time.Duration {
	var d time.Duration
	add := func(t time.Duration) {
		if t > 0 && (d == 0 || t < d) {
			d = t
		}
	}
	switch n.role {
	case types.RoleLeader:
		add(n.tickDeadline)
	default:
		add(n.electionDeadline)
	}
	for _, p := range n.pending {
		if p.queued {
			// Queued proposals have no retry deadline: they broadcast when
			// a resolution opens the window, not on a timer.
			continue
		}
		add(p.deadline)
	}
	n.reads.EachDeadline(add)
	add(n.joinDeadline)
	return d
}

// armBootGrace anchors the post-restart vote-refusal window at the
// site's first post-boot activity. It doubles as the boot marker in the
// flight recorder: the EvBoot event opens a new epoch for the safety
// auditor (recommits from the restored commit index are legitimate).
func (n *Node) armBootGrace(now time.Duration) {
	if n.bootGraceArm {
		n.bootGraceArm = false
		n.bootGraceUntil = now + n.cfg.ElectionTimeoutMin
		n.rec.Boot(now, n.term, n.commitIndex)
	}
}

// Tick advances time; expired deadlines fire.
func (n *Node) Tick(now time.Duration) {
	n.now = now
	n.armBootGrace(now)
	switch n.role {
	case types.RoleLeader:
		if n.tickDeadline != 0 && now >= n.tickDeadline {
			n.leaderTick()
			n.tickDeadline = now + n.cfg.HeartbeatInterval
		}
	default:
		if n.electionDeadline != 0 && now >= n.electionDeadline {
			n.startElection()
		}
	}
	n.retryProposals(now)
	n.reads.Retry(now)
	n.tickJoiner(now)
	n.maybeCompact()
}

// Step delivers one message.
func (n *Node) Step(now time.Duration, env types.Envelope) {
	n.now = now
	n.armBootGrace(now)
	if !n.acceptFrom(env.From, env.Msg) {
		return
	}
	switch m := env.Msg.(type) {
	case types.ProposeEntry:
		n.onProposeEntry(env.From, m)
	case types.VoteEntry:
		n.onVoteEntry(env.From, m)
	case types.AppendEntries:
		n.onAppendEntries(env.From, m)
	case types.AppendEntriesResp:
		n.onAppendEntriesResp(env.From, m)
	case types.RequestVote:
		n.onRequestVote(env.From, m)
	case types.RequestVoteResp:
		n.onRequestVoteResp(env.From, m)
	case types.InstallSnapshot:
		n.onInstallSnapshot(env.From, m)
	case types.InstallSnapshotReply:
		n.onInstallSnapshotReply(env.From, m)
	case types.CommitNotify:
		n.onCommitNotify(m)
	case types.JoinRequest:
		n.onJoinRequest(env.From, m)
	case types.JoinRedirect:
		n.onJoinRedirect(m)
	case types.JoinAccepted:
		n.onJoinAccepted(m)
	case types.LeaveRequest:
		n.onLeaveRequest(m)
	case types.ReadRequest:
		n.reads.OnReadRequest(env.From, m, n.now)
	case types.ReadReply:
		n.reads.OnReadReply(m, n.now)
	case types.TimeoutNow:
		n.onTimeoutNow(env.From, m)
	default:
		// Ignore unknown message types.
	}
}

// acceptFrom applies the paper's membership filter: consensus messages from
// sites outside the configuration are ignored. Join/leave traffic and
// commit notifications are exempt, as is everything while this site itself
// is not (yet) a member — a joiner must accept the leader's catch-up.
// InstallSnapshot is also exempt: it carries the authoritative membership a
// long-partitioned site's stale configuration may not reflect, and is
// term-checked like any leader message.
func (n *Node) acceptFrom(from types.NodeID, msg types.Message) bool {
	switch msg.(type) {
	case types.JoinRequest, types.JoinRedirect, types.JoinAccepted,
		types.LeaveRequest, types.CommitNotify, types.InstallSnapshot:
		return true
	}
	cfg := n.Config()
	if cfg.Size() == 0 || !cfg.Contains(n.cfg.ID) {
		return true
	}
	if cfg.Contains(from) {
		return true
	}
	// The leader additionally accepts AppendEntries responses and votes
	// from sites it is catching up (non-voting members).
	if n.role == types.RoleLeader && n.nonvoting[from] {
		return true
	}
	return false
}

func (n *Node) send(to types.NodeID, msg types.Message) {
	if to == n.cfg.ID || to == types.None {
		return
	}
	n.outbox = append(n.outbox, types.Envelope{
		From: n.cfg.ID, To: to, Layer: n.cfg.Layer, Msg: msg,
	})
}

func (n *Node) persistHardState() {
	err := n.cfg.Storage.SetHardState(storage.HardState{Term: n.term, VotedFor: n.votedFor})
	if err != nil {
		panic(fmt.Sprintf("fastraft %s: persist hard state: %v", n.cfg.ID, err))
	}
}

// persistEntry records the stored form of index idx and tracks it in the
// changed-entry stream for C-Raft.
func (n *Node) persistEntry(idx types.Index) {
	e, ok := n.log.Get(idx)
	if !ok {
		panic(fmt.Sprintf("fastraft %s: persist hole %d", n.cfg.ID, idx))
	}
	if err := n.cfg.Storage.AppendEntry(e); err != nil {
		panic(fmt.Sprintf("fastraft %s: persist entry: %v", n.cfg.ID, err))
	}
	n.changed = append(n.changed, e)
}

func (n *Node) resetElectionTimer() {
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin + time.Duration(n.cfg.Rand.Int63n(int64(span)))
	n.electionDeadline = n.now + d
}

func (n *Node) becomeFollower(term types.Term, leader types.NodeID) {
	changedTerm := term > n.term
	if changedTerm {
		n.term = term
		n.votedFor = types.None
		n.persistHardState()
	}
	n.role = types.RoleFollower
	if leader != types.None {
		n.leaderID = leader
	} else if changedTerm {
		n.leaderID = types.None
	}
	n.votes = nil
	n.recoveryVotes = nil
	n.tally = nil
	// Step-down fails every leader-side read before the manager goes: local
	// reads fall back to the forward path, remote origins are told to retry.
	n.reads.FailLeaderReads(n.now)
	n.readMgr = nil
	n.progress = nil
	n.snapEnc.Release()
	n.appendedAt = nil
	n.responded = nil
	n.missed = nil
	n.nonvoting = nil
	n.pendingJoin = nil
	n.removeQueue = nil
	n.tickDeadline = 0
	n.resetElectionTimer()
	n.rec.RoleChange(n.now, n.term, types.RoleFollower, n.leaderID)
}

// --- Elections -----------------------------------------------------------

// lonelyElectionLimit is how many consecutive response-less candidacies a
// site tolerates before suspecting it was removed from the configuration.
const lonelyElectionLimit = 3

func (n *Node) startElection() {
	transfer := n.pendingTransfer
	n.pendingTransfer = false
	cfg := n.Config()
	if !cfg.Contains(n.cfg.ID) {
		n.resetElectionTimer()
		return
	}
	// Account for the previous candidacy's silence.
	if n.role == types.RoleCandidate {
		if n.sawVoteResp {
			n.lonelyElections = 0
		} else {
			n.lonelyElections++
		}
	}
	if n.cfg.AutoRejoin && n.lonelyElections >= lonelyElectionLimit {
		n.rejoining = true
	}
	if n.rejoining {
		// Suspected removal: stop disrupting the group with candidacies
		// and ask to be let back in. JoinAccepted clears this state.
		n.role = types.RoleFollower
		n.resetElectionTimer()
		if n.joinDeadline == 0 || n.now >= n.joinDeadline {
			n.sendJoinRequest()
		}
		return
	}
	n.sawVoteResp = false
	n.role = types.RoleCandidate
	// Every role transition releases the snapshot-encoding cache: a
	// candidate that immediately wins would otherwise inherit (and pin)
	// its previous leadership's encoded image.
	n.snapEnc.Release()
	n.term++
	n.votedFor = n.cfg.ID
	n.persistHardState()
	n.leaderID = types.None
	n.votes = map[types.NodeID]bool{}
	n.recoveryVotes = map[types.NodeID][]types.Entry{}
	n.resetElectionTimer()
	n.rec.ElectionStart(n.now, n.term)
	n.rec.RoleChange(n.now, n.term, types.RoleCandidate, types.None)
	req := types.RequestVote{
		Term:        n.term,
		CandidateID: n.cfg.ID,
		// Fast Raft: only leader-approved entries count for up-to-dateness.
		LastLogIndex: n.log.LastLeaderIndex(),
		LastLogTerm:  n.log.LastLeaderTerm(),
		Transfer:     transfer,
	}
	for _, peer := range cfg.Others(n.cfg.ID) {
		n.send(peer, req)
	}
	// The candidate's own vote counts only once the term/vote record is on
	// disk: a crash before then would restart the site in the old term, and
	// a tallied-but-lost self-vote could elect a leader a quorum never
	// durably endorsed. With synchronous storage this runs inline.
	term := n.term
	n.acts.After(n.gate, func() {
		if n.role == types.RoleCandidate && n.term == term {
			n.votes[n.cfg.ID] = true
			n.recoveryVotes[n.cfg.ID] = n.log.SelfApproved()
			n.maybeWinElection()
		}
	})
}

// TransferLeader orders a leadership handoff to target: the leader kills
// its own read lease (and suppresses re-arming for a full election-timeout
// span, since transfer elections bypass the stickiness the lease depends
// on), then sends TimeoutNow so the target starts an election immediately.
// A lost order is harmless — this node simply keeps leading. Reports
// whether the order was sent.
func (n *Node) TransferLeader(target types.NodeID) bool {
	if n.role != types.RoleLeader || target == n.cfg.ID || !n.Config().Contains(target) {
		return false
	}
	if n.readMgr != nil {
		n.readMgr.SuppressLease(n.now + n.cfg.ElectionTimeoutMax)
	}
	n.send(target, types.TimeoutNow{Term: n.term})
	return true
}

// onTimeoutNow starts a transfer election on the leader's order: this site
// campaigns for the next term with RequestVote.Transfer set so voters skip
// election stickiness. Stale orders (lower term) are ignored.
func (n *Node) onTimeoutNow(from types.NodeID, m types.TimeoutNow) {
	if m.Term < n.term || n.role == types.RoleLeader {
		return
	}
	if !n.Config().Contains(n.cfg.ID) {
		return
	}
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
	}
	n.pendingTransfer = true
	n.startElection()
}

func (n *Node) onRequestVote(from types.NodeID, m types.RequestVote) {
	// Election stickiness (the lease-read safety premise): a follower that
	// has heard from a live leader within the minimum election timeout
	// refuses to participate in elections — it neither grants the vote nor
	// adopts the candidate's term, so a disruptive candidate cannot depose
	// a leader whose lease quorum is still fresh. The refusal is answered
	// at our own (lower) term so the candidate's lonely-election accounting
	// still sees a response.
	// Transfer elections bypass both refusals below: the old leader ordered
	// the handoff (TimeoutNow), so "a fresh leader exists" is exactly why
	// the vote must be granted, not refused. Lease safety holds because the
	// ordering leader stops extending its lease the moment it observes the
	// higher term the transfer election starts.
	if !m.Transfer {
		if m.Term >= n.term && n.role == types.RoleFollower &&
			n.leaderID != types.None && n.lastLeaderContact != 0 &&
			n.now-n.lastLeaderContact < n.cfg.ElectionTimeoutMin {
			n.send(from, types.RequestVoteResp{Term: n.term})
			return
		}
		// Post-restart grace: the stickiness state above is volatile, so a
		// voter restarted inside a lease window it helped establish would
		// otherwise grant immediately (see bootGraceArm).
		if m.Term >= n.term && n.now < n.bootGraceUntil {
			n.send(from, types.RequestVoteResp{Term: n.term})
			return
		}
	}
	if m.Term > n.term {
		// Sites that receive RequestVote immediately move to the new term.
		n.becomeFollower(m.Term, types.None)
	}
	resp := types.RequestVoteResp{Term: n.term}
	if m.Term < n.term {
		n.send(from, resp)
		return
	}
	upToDate := m.LastLogTerm > n.log.LastLeaderTerm() ||
		(m.LastLogTerm == n.log.LastLeaderTerm() && m.LastLogIndex >= n.log.LastLeaderIndex())
	if (n.votedFor == types.None || n.votedFor == m.CandidateID) && upToDate {
		n.votedFor = m.CandidateID
		n.persistHardState()
		n.resetElectionTimer()
		resp.Granted = true
		// Ship self-approved entries for the recovery algorithm.
		resp.SelfApproved = n.log.SelfApproved()
	}
	n.send(from, resp)
}

func (n *Node) onRequestVoteResp(from types.NodeID, m types.RequestVoteResp) {
	n.sawVoteResp = true
	n.lonelyElections = 0
	if n.role == types.RoleCandidate && m.Term <= n.term {
		n.rec.Vote(n.now, m.Term, from, m.Granted)
	}
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
		return
	}
	if n.role != types.RoleCandidate || m.Term < n.term || !m.Granted {
		return
	}
	n.votes[from] = true
	n.recoveryVotes[from] = types.CloneEntries(m.SelfApproved)
	n.maybeWinElection()
}

func (n *Node) maybeWinElection() {
	cfg := n.Config()
	if !quorum.CountReached(cfg, n.votes, quorum.ClassicSize(cfg.Size())) {
		return
	}
	n.becomeLeader()
}

// becomeLeader installs leader state and runs the paper's recovery
// algorithm over the self-approved entries gathered during the election.
func (n *Node) becomeLeader() {
	n.rec.ElectionWon(n.now, n.term, n.cfg.ID, len(n.votes))
	n.rec.RoleChange(n.now, n.term, types.RoleLeader, n.cfg.ID)
	n.role = types.RoleLeader
	n.leaderID = n.cfg.ID
	// Session clock entries carry advances measured from the previous
	// entry of THIS leadership; a stale mark from an earlier term would
	// double-count the interval covered by interim leaders.
	n.lastSessionClock = 0
	cfg := n.Config()
	n.tally = quorum.NewTally()
	// Step-up races can skip becomeFollower between leaderships; encoder
	// caches are released on every role transition so a stale image from a
	// previous term is never pinned or streamed.
	n.snapEnc.Release()
	n.appendedAt = make(map[types.Index]time.Duration)
	n.snapStreamTrace = make(map[types.NodeID]uint64)
	n.progress = replica.NewTracker(replica.Config{
		MaxInflight:      n.cfg.MaxInflightAppends,
		MaxInflightBytes: n.cfg.MaxInflightBytes,
		MaxEntries:       n.cfg.MaxEntriesPerAppend,
		MaxChunk:         n.cfg.MaxSnapshotChunk,
		ResendTimeout:    n.cfg.SnapshotResendTimeout,
		MinResendTimeout: n.cfg.HeartbeatInterval,
		MaxResendTimeout: n.cfg.ElectionTimeoutMin,
	}, n.metrics)
	// Paper: nextIndex initialized to the leader's last committed entry +1.
	n.progress.Reset(cfg.Members, n.commitIndex+1)
	n.responded = make(map[types.NodeID]bool)
	n.missed = make(map[types.NodeID]int)
	n.nonvoting = make(map[types.NodeID]bool)
	n.pendingJoin = make(map[types.NodeID]bool)
	// Recovery: seed possibleEntries with the received self-approved
	// entries (only indices beyond the leader-approved prefix matter).
	for voter, entries := range n.recoveryVotes {
		for _, e := range entries {
			if e.Index > n.log.LastLeaderIndex() {
				n.tally.AddVote(e.Index, voter, e)
			}
		}
	}
	n.recoveryVotes = nil
	n.votes = nil
	// The read manager shares the tracker's srtt estimates for lease
	// deration and the node's counter set for observability.
	n.readMgr = n.newReadManager()
	n.readMgr.SetMembership(cfg.Members)
	n.recoverDecide()
	// Establish a commit point in the new term (the append defers the
	// leader's own match until the entry is durable).
	n.appendLeaderEntry(types.Entry{Kind: types.KindNoop})
	// Reads cannot be vouched for below this term's no-op: commitIndex may
	// understate what previous leaders committed until it commits.
	n.readFloor = n.log.LastLeaderIndex()
	n.lastBroadcastHead = n.log.LastLeaderIndex()
	// Reads issued while searching for a leader are now ours to serve.
	n.reads.Retry(n.now)
	// First heartbeat immediately; then periodic.
	n.leaderTick()
	n.tickDeadline = n.now + n.cfg.HeartbeatInterval
}

// recoverDecide re-decides every index covered by recovered self-approved
// entries: the most-voted entry wins (any entry a fast quorum inserted is
// guaranteed to have a majority in our vote set), vote-free gaps become
// no-ops, and decided entries are re-stamped with the new term. If a fast
// quorum of recovery voters had inserted the winner at the next commit
// index, the entry commits immediately — this re-commits anything a failed
// leader committed on the fast track.
func (n *Node) recoverDecide() {
	cfg := n.Config()
	fastQ := quorum.FastSize(cfg.Size())
	maxIdx := n.tally.MaxIndex()
	for k := n.log.LastLeaderIndex() + 1; k <= maxIdx; k++ {
		d, ok := n.tally.Decide(k, cfg, n.skipDecidedAt(k))
		var e types.Entry
		if ok {
			e = d.Winner
		} else {
			e = types.Entry{Kind: types.KindNoop}
		}
		n.appendLeaderEntryAt(k, e)
		if ok {
			n.tally.NullProposal(d.Winner, k)
			for _, v := range d.WinnerVoters {
				n.progress.Ensure(v, n.commitIndex+1).RecordFastMatch(k)
			}
		}
		if !n.cfg.DisableFastTrack &&
			k == n.commitIndex+1 &&
			n.log.Term(k) == n.term &&
			n.progress.FastMatchQuorum(cfg, k, fastQ) {
			n.commitTo(k)
		}
	}
	n.tally.Clear(n.commitIndex)
}

// proposalDecided reports whether the proposal is already leader-approved
// (or committed) somewhere in the log. Self-approved copies do not count:
// they are mere insertions awaiting a decision.
func (n *Node) proposalDecided(pid types.ProposalID) bool {
	idx := n.log.FindProposal(pid)
	if idx == 0 {
		return false
	}
	if idx <= n.commitIndex {
		return true
	}
	e, ok := n.log.Get(idx)
	return ok && e.Approval == types.ApprovedLeader
}

// skipDecidedAt excludes, from the decision at index k, candidates whose
// proposal was already decided at a different index (the paper's
// duplicate-avoidance rule) or whose session sequence was already applied
// (a retry from before a restart or from below the compaction boundary).
func (n *Node) skipDecidedAt(k types.Index) func(types.Entry) bool {
	return func(e types.Entry) bool {
		if !e.Session.IsZero() {
			if _, dup := n.sessions.LookupDup(e.Session, e.SessionSeq); dup {
				return true
			}
		}
		if e.PID.IsZero() {
			return false
		}
		idx := n.log.FindProposal(e.PID)
		if idx == 0 || idx == k {
			return false
		}
		return n.proposalDecided(e.PID)
	}
}
