package fastraft

import (
	"time"

	"github.com/hraft-io/hraft/internal/readpath"
	"github.com/hraft-io/hraft/internal/types"
)

// Linearizable reads (see internal/readpath). The shared Frontend owns
// token assignment, leader-side serving, follower forwarding and retries;
// this file only wires it to the node's live state and lifecycle.

// newReadFrontend builds the node's read frontend over its live state.
// The sequence offset is Rand-drawn so a restart cannot recycle the IDs
// of reads still pending at the leader (leader-side dedup is by
// (origin, ID)).
func (n *Node) newReadFrontend() *readpath.Frontend {
	return readpath.NewFrontend(readpath.NodeView{
		Self:         n.cfg.ID,
		IsLeader:     func() bool { return n.role == types.RoleLeader },
		LeaderID:     func() types.NodeID { return n.leaderID },
		CommitIndex:  func() types.Index { return n.commitIndex },
		Floor:        func() types.Index { return n.readFloor },
		Manager:      func() *readpath.Manager { return n.readMgr },
		Send:         n.send,
		RetryTimeout: n.cfg.ProposalTimeout,
		RetrySoon:    n.cfg.HeartbeatInterval,
	}, uint64(n.cfg.Rand.Int63()), n.metrics, n.rec)
}

// newReadManager builds the leadership's read manager, sharing the
// replica tracker's srtt estimates for lease deration.
func (n *Node) newReadManager() *readpath.Manager {
	return readpath.NewManager(readpath.Config{
		Self:      n.cfg.ID,
		LeaseBase: n.cfg.ElectionTimeoutMin,
		RTT: func(id types.NodeID) time.Duration {
			if n.progress == nil {
				return 0
			}
			if p := n.progress.Get(id); p != nil {
				return p.RTT()
			}
			return 0
		},
		Recorder: n.rec,
	}, n.metrics)
}

// Read registers a read under the given consistency mode and returns its
// token; the read resolves through TakeReadDone with the linearization
// index the state machine must be applied through before serving it.
func (n *Node) Read(now time.Duration, c types.ReadConsistency) uint64 {
	n.now = now
	return n.reads.Read(now, c)
}

// TakeReadDone drains resolved reads.
func (n *Node) TakeReadDone() []types.ReadDone { return n.reads.TakeDone() }

// PendingReads counts unresolved reads originated on this node.
func (n *Node) PendingReads() int { return n.reads.PendingCount() }
