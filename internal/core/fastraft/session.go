package fastraft

import (
	"fmt"
	"time"

	"github.com/hraft-io/hraft/internal/session"
	"github.com/hraft-io/hraft/internal/types"
)

// Client sessions (exactly-once proposals).
//
// The registry in internal/session is replicated through the log itself:
// KindSessionOpen entries create sessions (the commit index is the session
// ID), KindSessionExpire entries carry the leader's clock and expire idle
// sessions identically on every replica, and session-tagged KindNormal
// entries are deduplicated by (SessionID, SessionSeq) at apply time. A
// duplicate still occupies its log slot — Fast Raft retries may reach the
// log twice legitimately — but is never delivered to the state machine;
// the proposer is answered with the cached commit index of the original.

// OpenSession proposes a session-registration entry. The proposal resolves
// with the commit index of the entry, which is the new session's ID.
func (n *Node) OpenSession(now time.Duration) types.ProposalID {
	return n.ProposeEntry(now, types.Entry{Kind: types.KindSessionOpen})
}

// ProposeSession submits an application entry under (sid, seq): an identity
// that, unlike the ProposalID, survives proposer restarts. A retry of an
// already-applied sequence resolves immediately with the cached commit
// index. The session must have been opened (its KindSessionOpen entry
// committed) before the first ProposeSession under it. ack is the client's
// retry floor (0 = none): sequences below it are promised never to be
// retried, so every replica drops their cached responses when the entry
// commits.
func (n *Node) ProposeSession(now time.Duration, sid types.SessionID, seq, ack uint64, data []byte) types.ProposalID {
	n.now = now
	n.proposalSeq++
	pid := types.ProposalID{Proposer: n.cfg.ID, Seq: n.proposalSeq}
	if idx, dup := n.sessions.LookupDup(sid, seq); dup {
		n.resolved = append(n.resolved, types.Resolution{PID: pid, Index: idx})
		return pid
	}
	e := types.Entry{
		Kind:       types.KindNormal,
		Session:    sid,
		SessionSeq: seq,
		SessionAck: ack,
		Data:       append([]byte(nil), data...),
	}
	return n.ProposeEntryPID(now, e, pid)
}

// applySessionCommit folds one committed entry into the session registry.
// It reports whether the entry must be withheld from the state machine: a
// duplicate of an applied (session, seq), or a session proposal whose
// session is gone (expired) — in both cases the proposer is answered
// out-of-band instead.
func (n *Node) applySessionCommit(e types.Entry) (skip bool) {
	switch e.Kind {
	case types.KindSessionOpen:
		n.sessions.ApplyOpen(e.Index)
		n.rec.SessionOpen(n.now, uint64(e.Index))
		return false
	case types.KindSessionExpire:
		advance, ttl, err := session.DecodeExpire(e.Data)
		if err != nil {
			panic(fmt.Sprintf("fastraft %s: corrupt session clock entry at %d: %v", n.cfg.ID, e.Index, err))
		}
		n.sessions.ApplyExpire(advance, ttl)
		n.rec.SessionExpire(n.now, n.sessions.Len())
		return false
	case types.KindNormal:
		if e.Session.IsZero() {
			return false
		}
		cached, dup, known := n.sessions.ApplyNormal(e.Session, e.SessionSeq, e.SessionAck, e.Index)
		if !known {
			// Session expired (or never opened): with the dedup state gone
			// this apply could be a second one — reject it. Index 0 in the
			// resolution signals the rejection to the proposer.
			n.answerProposer(e.PID, 0, false)
			return true
		}
		if dup {
			n.answerProposer(e.PID, cached, false)
			return true
		}
		n.rec.ApplySession(n.now, e.Index, uint64(e.Session), e.SessionSeq)
		return false
	default:
		return false
	}
}

// answerProposer resolves a proposal out-of-band (session duplicate or
// rejection): locally when this site originated it, by CommitNotify
// otherwise. Remote notification is leader-only unless direct is set (the
// direct path mirrors the existing any-site duplicate notification on
// ProposeEntry receipt; the apply path is leader-only so one commit does
// not trigger a notification from every replica).
func (n *Node) answerProposer(pid types.ProposalID, idx types.Index, direct bool) {
	if pid.IsZero() {
		return
	}
	if pid.Proposer == n.cfg.ID {
		n.resolvePending(pid, idx)
		return
	}
	if direct || n.role == types.RoleLeader {
		n.send(pid.Proposer, types.CommitNotify{PID: pid, Index: idx})
	}
}

// maybeSessionClock lets the leader pace session expiry: while sessions
// exist and a TTL is configured, it periodically appends a clock entry so
// every replica advances the same deterministic clock and expires the same
// sessions.
func (n *Node) maybeSessionClock() {
	ttl := n.cfg.SessionTTL
	if ttl <= 0 || n.sessions.Len() == 0 {
		return
	}
	interval := ttl / 4
	if interval <= 0 {
		interval = ttl
	}
	if n.lastSessionClock != 0 && n.now < n.lastSessionClock+interval {
		return
	}
	// The entry carries the advance since this leader's previous clock
	// entry, not an absolute timestamp: the first entry of a leadership
	// advances 0 (the gap to the predecessor's last entry is unknowable),
	// and subsequent ones track this process's monotonic clock — so the
	// replicated clock never stalls or jumps across leader changes.
	var advance time.Duration
	if n.lastSessionClock != 0 {
		advance = n.now - n.lastSessionClock
	}
	n.lastSessionClock = n.now
	n.appendLeaderEntry(types.Entry{
		Kind: types.KindSessionExpire,
		Data: session.EncodeExpire(uint64(advance), uint64(ttl)),
	})
}

// sessionStateAt reconstructs the session registry image as of a snapshot
// boundary by replaying the retained entries above the previous boundary.
// The live registry cannot be used directly: it reflects the commit index,
// which may run ahead of the boundary when the application applies
// asynchronously.
func (n *Node) sessionStateAt(boundary types.Index) []byte {
	img, err := session.StateAt(n.snap.Sessions, n.log.Range(n.log.FirstIndex(), boundary))
	if err != nil {
		panic(fmt.Sprintf("fastraft %s: rebuild session state: %v", n.cfg.ID, err))
	}
	return img
}
