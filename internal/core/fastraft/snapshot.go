package fastraft

import (
	"fmt"

	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// --- Snapshotting & log compaction -----------------------------------------
//
// Every site — leader or follower — compacts its own log once the committed
// prefix beyond the last snapshot exceeds cfg.SnapshotThreshold: the
// application state is captured through cfg.Snapshotter, saved to stable
// storage, and the covered log prefix is dropped. The compaction point never
// exceeds what the application reports as applied, so asynchronous appliers
// are never snapshotted ahead of themselves.
//
// Only committed (hence leader-approved) prefixes are compacted, so the
// self-approved entries Fast Raft's recovery algorithm depends on are never
// discarded.

// maybeCompact snapshots and compacts when the committed suffix beyond the
// snapshot boundary reaches the configured threshold. Called from Tick and
// after commit-advancing steps.
func (n *Node) maybeCompact() {
	t := n.cfg.SnapshotThreshold
	if t <= 0 || n.commitIndex < n.log.SnapshotIndex()+types.Index(t) {
		return
	}
	point := n.commitIndex
	var data []byte
	if n.cfg.Snapshotter != nil {
		d, applied, err := n.cfg.Snapshotter.Snapshot()
		if err != nil {
			return // transient application failure; retry at a later tick
		}
		data = d
		if applied < point {
			point = applied
		}
	}
	// Gate on the achievable point, not just commitIndex: if the applier
	// trails commit, compacting on every small advance of applied would
	// rotate the WAL per entry instead of per threshold.
	if point < n.log.SnapshotIndex()+types.Index(t) {
		return
	}
	cfg, ci := n.log.ConfigAt(point)
	snap := types.Snapshot{
		Meta: types.SnapshotMeta{
			LastIndex:   point,
			LastTerm:    n.log.Term(point),
			Config:      cfg,
			ConfigIndex: ci,
		},
		Data: data,
		// The session registry as of the boundary rides along, so dedup
		// state survives the compaction it would otherwise be lost to.
		Sessions: n.sessionStateAt(point),
	}
	if err := n.cfg.Storage.SaveSnapshot(snap); err != nil {
		panic(fmt.Sprintf("fastraft %s: save snapshot: %v", n.cfg.ID, err))
	}
	if err := n.log.CompactTo(point, snap.Meta.LastTerm); err != nil {
		panic(fmt.Sprintf("fastraft %s: compact log: %v", n.cfg.ID, err))
	}
	if err := n.cfg.Storage.TruncatePrefix(point); err != nil {
		panic(fmt.Sprintf("fastraft %s: truncate storage prefix: %v", n.cfg.ID, err))
	}
	n.snap = snap
	n.rec.Compact(n.now, point, n.commitIndex)
}

// sendSnapshotTo streams the latest snapshot to a follower whose
// replication position fell below the compacted prefix: whole-image in one
// message when chunking is off, MaxSnapshotChunk-sized chunks otherwise.
// The tracker plans (and suppresses) transmission; false means nothing was
// sent this round (pending install).
func (n *Node) sendSnapshotTo(to types.NodeID) bool {
	enc, check := n.snapEnc.Encode(n.snap)
	msgs := n.progress.SnapshotMessages(to, n.snap, enc, check,
		n.term, n.cfg.ID, n.aeRound, n.now)
	for _, m := range msgs {
		b := m.Boundary
		if b == 0 {
			b = n.snap.Meta.LastIndex
		}
		if m.Offset == 0 {
			if n.rec != nil {
				n.rec.SnapStreamStart(n.now, n.term, to, b)
			}
			// Mint one trace per stream; every chunk and the follower's
			// install share it.
			if tid := n.rec.MintTrace(); tid != 0 && n.snapStreamTrace != nil {
				n.snapStreamTrace[to] = tid
			}
		}
		if n.snapStreamTrace != nil {
			m.Trace = n.snapStreamTrace[to]
		}
		if n.rec != nil {
			n.rec.SnapChunk(n.now, to, b, m.Offset, m.Done)
			n.rec.TraceHop(n.now, m.Trace, trace.HopSnapChunk, to, b)
		}
		if m.Done {
			delete(n.snapStreamTrace, to)
		}
		n.send(to, m)
	}
	return len(msgs) > 0
}

// onInstallSnapshot is the follower side of snapshot transfer: whole
// images install directly; chunks are reassembled and installed on the
// final one, then replication resumes above the boundary. Every message is
// acknowledged with the buffered offset so the leader resumes without
// re-sending acknowledged chunks.
func (n *Node) onInstallSnapshot(from types.NodeID, m types.InstallSnapshot) {
	if m.Term > n.term || (m.Term == n.term && n.role != types.RoleFollower) {
		n.becomeFollower(m.Term, m.LeaderID)
	}
	boundary := m.Boundary
	if boundary == 0 {
		boundary = m.Snapshot.Meta.LastIndex
	}
	resp := types.InstallSnapshotReply{
		Term: n.term, Round: m.Round, LastIndex: n.commitIndex, Boundary: boundary,
	}
	if m.Term < n.term {
		n.send(from, resp)
		return
	}
	n.leaderID = m.LeaderID
	// Chunk streams can be the only leader traffic a catching-up follower
	// sees for a long while; they count as leader contact for election
	// stickiness like any append round.
	n.lastLeaderContact = n.now
	n.lonelyElections = 0
	n.resetElectionTimer()
	if m.Trace != 0 {
		n.installTrace = m.Trace
		n.rec.TraceHop(n.now, m.Trace, trace.HopSnapChunk, from, boundary)
	}
	if boundary <= n.commitIndex {
		// Already have this prefix (duplicate or raced AppendEntries); just
		// tell the leader where we are.
		resp.LastIndex = n.commitIndex
		n.snapRecv.Reset()
		n.send(from, resp)
		return
	}
	var snap types.Snapshot
	if !m.Snapshot.IsZero() {
		// Legacy whole-image transfer.
		snap = m.Snapshot
		n.snapRecv.Reset()
		n.installStart = n.now
	} else {
		n.metrics.Inc(replica.CounterChunksReceived)
		// Restart the install clock when a stream begins — including a new
		// (boundary, check) stream arriving over a stale partial buffer,
		// which would otherwise inherit the dead stream's start time.
		if _, buffered := n.snapRecv.Pending(); buffered == 0 ||
			boundary != n.installBoundary || m.Check != n.installCheck {
			n.installStart = n.now
			n.installBoundary, n.installCheck = boundary, m.Check
		}
		s, complete, ack := n.snapRecv.Offer(boundary, m.Check, m.Offset, m.Data, m.Done)
		resp.Offset = ack
		n.rec.SnapChunkRecv(n.now, from, boundary, ack)
		if !complete {
			n.send(from, resp) // acknowledge buffered progress
			return
		}
		snap = s
	}
	if snap.Meta.LastIndex <= n.commitIndex {
		resp.LastIndex = n.commitIndex
		n.send(from, resp)
		return
	}
	n.installSnapshot(snap)
	// The commit index jumped to the snapshot boundary: held follower-local
	// reads whose confirmed index is now covered can be served.
	n.reads.Flush(n.now)
	n.metrics.Inc(replica.CounterInstalls)
	n.installHist.Observe(n.now - n.installStart)
	n.rec.SnapInstall(n.now, snap.Meta.LastIndex, n.now-n.installStart)
	n.rec.TraceHop(n.now, n.installTrace, trace.HopSnapInstall, from, snap.Meta.LastIndex)
	n.installTrace = 0
	n.installStart = 0
	resp.LastIndex = snap.Meta.LastIndex
	n.send(from, resp)
}

// installSnapshot makes a received snapshot this site's recovery base:
// durable first, then the in-memory log, commit point and state machine.
func (n *Node) installSnapshot(snap types.Snapshot) {
	if err := n.cfg.Storage.SaveSnapshot(snap); err != nil {
		panic(fmt.Sprintf("fastraft %s: save installed snapshot: %v", n.cfg.ID, err))
	}
	if err := n.log.InstallSnapshot(snap.Meta); err != nil {
		panic(fmt.Sprintf("fastraft %s: install snapshot: %v", n.cfg.ID, err))
	}
	if err := n.cfg.Storage.TruncatePrefix(snap.Meta.LastIndex); err != nil {
		panic(fmt.Sprintf("fastraft %s: truncate storage prefix: %v", n.cfg.ID, err))
	}
	n.snap = snap.Clone()
	n.commitIndex = snap.Meta.LastIndex
	if err := n.sessions.Restore(snap.Sessions); err != nil {
		panic(fmt.Sprintf("fastraft %s: restore sessions: %v", n.cfg.ID, err))
	}
	if n.cfg.Snapshotter != nil {
		if err := n.cfg.Snapshotter.Restore(snap.Clone()); err != nil {
			panic(fmt.Sprintf("fastraft %s: restore state machine: %v", n.cfg.ID, err))
		}
	}
}

// onInstallSnapshotReply advances the leader's view of a follower that
// installed (or already had) a snapshot, or acknowledged chunk progress.
func (n *Node) onInstallSnapshotReply(from types.NodeID, m types.InstallSnapshotReply) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
		return
	}
	if n.role != types.RoleLeader || m.Term < n.term {
		return
	}
	n.responded[from] = true
	n.missed[from] = 0
	done := n.progress.AckSnapshot(from, m.Boundary, m.Offset, m.LastIndex, n.now)
	if !done {
		if pr := n.progress.Get(from); pr != nil && pr.State() == replica.StateSnapshot {
			// Acknowledged progress freed window room: keep the chunk
			// pipeline moving between rounds.
			n.sendSnapshotTo(from)
		}
	} else if !n.progress.AnySnapshotStreams() {
		// Last transfer finished; drop the cached encoding.
		n.snapEnc.Release()
	}
}
