// Package durable gates consensus outputs on storage durability.
//
// With group commit (storage.Grouped), a core's persist calls return before
// the bytes hit disk. Everything the core emits that the outside world may
// act on — outbound messages, committed entries, resolved proposals — must
// therefore be held until the storage horizon (DurableLSN) passes the LSN
// the output depends on. The helpers here implement that uniformly:
//
//   - Gate wraps the store and stamps outputs with the current LSN;
//   - Queue holds tagged output batches and releases the durable prefix;
//   - Acts defers internal self-acknowledgements (own votes, own match
//     index) the same way, so a node never counts its own contribution
//     toward an election or a commit before that contribution is on disk.
//
// When the store is not grouped (Gate == nil by convention), every helper
// degenerates to pass-through and the cores behave exactly as before.
package durable

import "github.com/hraft-io/hraft/internal/storage"

// Gate stamps core outputs with the storage LSN they depend on.
type Gate struct {
	g storage.Grouped
}

// NewGate returns a Gate over s, or nil when s does not defer durability
// (callers treat a nil *Gate as "everything durable immediately").
func NewGate(s storage.Storage) *Gate {
	if g := storage.AsGrouped(s); g != nil {
		return &Gate{g: g}
	}
	return nil
}

// Tag returns the LSN a batch of outputs produced now depends on: the last
// accepted mutation. Outputs tagged T are safe to release once the durable
// horizon reaches T.
func (g *Gate) Tag() uint64 {
	if g == nil {
		return 0
	}
	return g.g.LastLSN()
}

// Durable returns the current durable horizon.
func (g *Gate) Durable() uint64 {
	if g == nil {
		return ^uint64(0)
	}
	return g.g.DurableLSN()
}

// Open reports whether outputs tagged tag may be released now.
func (g *Gate) Open(tag uint64) bool { return g == nil || tag <= g.g.DurableLSN() }

// batch is one held output batch.
type batch[T any] struct {
	tag   uint64
	items []T
}

// Queue holds tagged output batches in FIFO order and releases the prefix
// at or below the durable horizon. Tags are non-decreasing (LSNs only grow),
// so release order equals hold order.
type Queue[T any] struct {
	held []batch[T]
}

// Hold appends a batch tagged with the LSN it depends on. Empty batches are
// dropped. The queue takes ownership of items.
func (q *Queue[T]) Hold(tag uint64, items []T) {
	if len(items) == 0 {
		return
	}
	q.held = append(q.held, batch[T]{tag: tag, items: items})
}

// Release returns (appended to out) every held item whose tag is at or
// below durable, preserving order.
func (q *Queue[T]) Release(durable uint64, out []T) []T {
	n := 0
	for n < len(q.held) && q.held[n].tag <= durable {
		out = append(out, q.held[n].items...)
		q.held[n] = batch[T]{}
		n++
	}
	q.held = q.held[n:]
	if len(q.held) == 0 {
		q.held = nil
	}
	return out
}

// Pending reports whether any batches are still held.
func (q *Queue[T]) Pending() bool { return len(q.held) > 0 }

// act is one deferred self-acknowledgement.
type act struct {
	tag uint64
	f   func()
}

// Acts defers internal actions (self-votes, self-match recording) until
// the records they depend on are durable.
type Acts struct {
	acts []act
}

// After runs f now when the gate is open for its tag, otherwise queues it
// for Run. With a nil gate everything runs immediately (synchronous
// storage).
func (a *Acts) After(g *Gate, f func()) {
	if g == nil {
		f()
		return
	}
	tag := g.Tag()
	if tag <= g.Durable() {
		f()
		return
	}
	a.acts = append(a.acts, act{tag: tag, f: f})
}

// Run executes (in order) every queued action whose tag is at or below
// durable, and reports whether any ran.
func (a *Acts) Run(durable uint64) bool {
	n := 0
	for n < len(a.acts) && a.acts[n].tag <= durable {
		a.acts[n].f()
		a.acts[n] = act{}
		n++
	}
	if n == 0 {
		return false
	}
	a.acts = a.acts[n:]
	if len(a.acts) == 0 {
		a.acts = nil
	}
	return true
}

// Pending reports whether any actions are still deferred.
func (a *Acts) Pending() bool { return len(a.acts) > 0 }
