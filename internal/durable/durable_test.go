package durable

import (
	"testing"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

// gstore returns a group-commit memory store with n accepted-but-unsynced
// mutations.
func gstore(t *testing.T, n int) *storage.GroupedMemory {
	t.Helper()
	g := storage.NewGroupedMemory(storage.NewMemory())
	for i := 0; i < n; i++ {
		if err := g.AppendEntry(types.Entry{Index: types.Index(i + 1), Term: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewGateNilForSynchronousStorage(t *testing.T) {
	if g := NewGate(storage.NewMemory()); g != nil {
		t.Fatalf("expected nil gate for plain memory storage, got %v", g)
	}
	var g *Gate
	if g.Tag() != 0 {
		t.Fatal("nil gate Tag should be 0")
	}
	if g.Durable() != ^uint64(0) {
		t.Fatal("nil gate Durable should be the max horizon")
	}
	if !g.Open(12345) {
		t.Fatal("nil gate should be open for every tag")
	}
}

func TestGateTracksStore(t *testing.T) {
	s := gstore(t, 3)
	g := NewGate(s)
	if g == nil {
		t.Fatal("expected a gate over group-commit storage")
	}
	if g.Tag() != 3 || g.Durable() != 0 {
		t.Fatalf("Tag=%d Durable=%d, want 3/0", g.Tag(), g.Durable())
	}
	if g.Open(1) {
		t.Fatal("tag 1 must not be open before Sync")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if !g.Open(3) {
		t.Fatal("tag 3 must be open after Sync")
	}
}

func TestQueueReleasesDurablePrefixInOrder(t *testing.T) {
	var q Queue[int]
	q.Hold(1, []int{10, 11})
	q.Hold(2, nil) // empty batches are dropped
	q.Hold(3, []int{30})
	q.Hold(5, []int{50})

	if got := q.Release(0, nil); len(got) != 0 {
		t.Fatalf("nothing durable yet, got %v", got)
	}
	got := q.Release(3, nil)
	want := []int{10, 11, 30}
	if len(got) != len(want) {
		t.Fatalf("Release(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Release(3) = %v, want %v", got, want)
		}
	}
	if !q.Pending() {
		t.Fatal("tag-5 batch should still be held")
	}
	if got := q.Release(5, nil); len(got) != 1 || got[0] != 50 {
		t.Fatalf("Release(5) = %v, want [50]", got)
	}
	if q.Pending() {
		t.Fatal("queue should be drained")
	}
}

func TestActsRunInlineWithNilGate(t *testing.T) {
	var a Acts
	ran := false
	a.After(nil, func() { ran = true })
	if !ran {
		t.Fatal("nil gate must run the action inline")
	}
	if a.Pending() {
		t.Fatal("nothing should be queued")
	}
}

func TestActsDeferUntilDurable(t *testing.T) {
	s := gstore(t, 2)
	g := NewGate(s)
	var a Acts
	order := []int{}
	a.After(g, func() { order = append(order, 1) }) // tag 2
	if err := s.AppendEntry(types.Entry{Index: 3, Term: 1}); err != nil {
		t.Fatal(err)
	}
	a.After(g, func() { order = append(order, 2) }) // tag 3
	if len(order) != 0 {
		t.Fatal("actions ran before durability")
	}
	if a.Run(0) {
		t.Fatal("Run(0) should report nothing ran")
	}
	if !a.Run(2) || len(order) != 1 || order[0] != 1 {
		t.Fatalf("Run(2) should run only the tag-2 action, order=%v", order)
	}
	if !a.Run(3) || len(order) != 2 || order[1] != 2 {
		t.Fatalf("Run(3) should run the tag-3 action, order=%v", order)
	}
	if a.Pending() {
		t.Fatal("no actions should remain")
	}
}

// A deferred action may itself defer further work (a released self-vote
// wins an election whose no-op append defers the leader's self-match).
// Actions queued during Run for a not-yet-durable tag must survive to the
// next Run instead of being dropped or executed early.
func TestActsReentrantAfterDuringRun(t *testing.T) {
	s := gstore(t, 1)
	g := NewGate(s)
	var a Acts
	var ran []string
	a.After(g, func() {
		ran = append(ran, "first")
		if err := s.AppendEntry(types.Entry{Index: 2, Term: 1}); err != nil {
			t.Fatal(err)
		}
		a.After(g, func() { ran = append(ran, "second") }) // tag 2, not durable
	})
	if !a.Run(1) {
		t.Fatal("tag-1 action should run")
	}
	if len(ran) != 1 || ran[0] != "first" {
		t.Fatalf("only the first action should have run, got %v", ran)
	}
	if !a.Pending() {
		t.Fatal("the reentrantly queued action must still be pending")
	}
	if !a.Run(2) || len(ran) != 2 || ran[1] != "second" {
		t.Fatalf("Run(2) should run the reentrant action, got %v", ran)
	}
}
