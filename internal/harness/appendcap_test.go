package harness

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// testAppendCapCatchUp is the acceptance scenario for MaxEntriesPerAppend:
// a follower that missed a long suffix must still converge, and no single
// AppendEntries message may carry more than the configured cap.
func testAppendCapCatchUp(t *testing.T, kind Kind) {
	t.Helper()
	const cap = 5
	c, err := NewCluster(Options{
		Kind:                kind,
		Nodes:               fiveNodes(),
		Seed:                41,
		MaxEntriesPerAppend: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}

	// Record the largest AppendEntries payload delivered anywhere.
	maxPayload := 0
	c.Net.OnDeliver = func(env types.Envelope) {
		if m, ok := env.Msg.(types.AppendEntries); ok && len(m.Entries) > maxPayload {
			maxPayload = len(m.Entries)
		}
	}

	// Cut one follower off while the rest commits a long suffix, so its
	// catch-up would previously arrive as one giant message.
	const lagger = types.NodeID("n5")
	rest := []types.NodeID{"n1", "n2", "n3", "n4"}
	c.Net.Partition([]types.NodeID{lagger}, rest)
	if _, err := c.RunProposals("n1", 8*cap, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatal(err)
	}

	c.Net.Heal()
	converged := c.RunUntil(func() bool {
		h, ok := c.Leader()
		if !ok {
			return false
		}
		return c.Host(lagger).Machine().CommitIndex() >= h.Machine().CommitIndex()
	}, c.Sched.Now()+60*time.Second)
	if !converged {
		t.Fatalf("lagging follower did not converge (commit %d)",
			c.Host(lagger).Machine().CommitIndex())
	}
	if maxPayload > cap {
		t.Fatalf("an AppendEntries carried %d entries, cap is %d", maxPayload, cap)
	}
	if maxPayload == 0 {
		t.Fatal("no AppendEntries payloads observed; scenario broken")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftAppendCapCatchUp(t *testing.T) { testAppendCapCatchUp(t, KindFastRaft) }

func TestRaftAppendCapCatchUp(t *testing.T) { testAppendCapCatchUp(t, KindRaft) }
