package harness

import "github.com/hraft-io/hraft/internal/audit"

// newAuditor builds a cluster's safety auditor for the given mode: nil for
// AuditOff, collect-only for AuditRecord, and panic-on-violation for
// AuditStrict so the violating test fails at the violating event with the
// event window in the panic message.
func newAuditor(mode AuditMode) *audit.Auditor {
	switch mode {
	case AuditOff:
		return nil
	case AuditRecord:
		return audit.New(audit.Options{})
	default: // AuditStrict
		return audit.New(audit.Options{OnViolation: func(v audit.Violation) {
			panic("harness: " + v.Report())
		}})
	}
}
