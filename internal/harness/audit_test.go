package harness

import (
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/types"
)

// TestAuditorDetectsSeededElectionViolation seeds a split-brain into an
// otherwise healthy cluster by injecting a forged election-won event for
// the current term from a second identity, and checks the attached
// auditor names the broken invariant and carries the event window leading
// into it. AuditRecord keeps the auditor in collect mode so the test can
// inspect the report instead of dying in the strict panic.
func TestAuditorDetectsSeededElectionViolation(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:  KindFastRaft,
		Nodes: ids("n1", "n2", "n3"),
		Seed:  7,
		Audit: AuditRecord,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	if _, err := c.RunProposals(leader, 3, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("proposals: %v", err)
	}
	if vs := c.Audit.Violations(); len(vs) != 0 {
		t.Fatalf("healthy run already flagged: %v", vs)
	}

	// Forge a second winner of the leader's current term on another
	// node's recorder — exactly what a real split-brain would record.
	term := c.Host(leader).machine.Term()
	var other *Host
	for id, h := range c.Hosts() {
		if id != leader {
			other = h
			break
		}
	}
	other.rec.ElectionWon(c.Sched.Now(), term, other.id, 2)

	vs := c.Audit.Violations()
	if len(vs) != 1 {
		t.Fatalf("seeded violation produced %d reports, want 1: %v", len(vs), vs)
	}
	v := vs[0]
	if v.Invariant != audit.InvElectionSafety {
		t.Fatalf("violation names %q, want %q", v.Invariant, audit.InvElectionSafety)
	}
	if !strings.Contains(v.Detail, string(leader)) || !strings.Contains(v.Detail, string(other.id)) {
		t.Fatalf("detail does not name both leaders: %s", v.Detail)
	}
	if len(v.Window) == 0 {
		t.Fatal("violation carries no event window")
	}
	last := v.Window[len(v.Window)-1]
	if last.Node != string(other.id) || last.Term != term {
		t.Fatalf("window does not end at the forged event: %+v", last)
	}
	if got := c.Audit.Metrics()[audit.MetricPrefix+audit.InvElectionSafety]; got != 1 {
		t.Fatalf("violation counter = %d, want 1", got)
	}
}

// TestAuditorStrictModePanics pins the default harness behavior: under
// AuditStrict (the zero value) a violation panics immediately with the
// full report, so the violating test dies at the violating event rather
// than failing some assertion later.
func TestAuditorStrictModePanics(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:  KindFastRaft,
		Nodes: ids("n1", "n2", "n3"),
		Seed:  7,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	term := c.Host(leader).machine.Term()
	var other *Host
	for id, h := range c.Hosts() {
		if id != leader {
			other = h
			break
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict auditor did not panic on a seeded violation")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, audit.InvElectionSafety) || !strings.Contains(msg, "event window") {
			t.Fatalf("panic message missing invariant or window:\n%v", r)
		}
	}()
	other.rec.ElectionWon(c.Sched.Now(), term, other.id, 2)
}

// TestAuditorSeededCraftGlobalViolation seeds a committed-prefix breach
// into the C-Raft global group: two sites recording different entry
// identities committed at one global index. The auditor must attribute
// it to the shared "global" group even though the events come from
// different sites' rings.
func TestAuditorSeededCraftGlobalViolation(t *testing.T) {
	c, err := NewCraftCluster(CraftOptions{
		Clusters: twoClusterSpecs(),
		Seed:     3,
		Audit:    AuditRecord,
	})
	if err != nil {
		t.Fatalf("NewCraftCluster: %v", err)
	}
	if !c.WaitForLeaders(60 * time.Second) {
		t.Fatal("clusters did not elect leaders")
	}
	if vs := c.Audit.Violations(); len(vs) != 0 {
		t.Fatalf("healthy run already flagged: %v", vs)
	}

	// Two sites disagreeing about what committed at a (far-future, so no
	// legitimate commit collides) global index.
	ga := c.Host("a1").rec.Derive("a1/forged")
	ga.SetGroup("global")
	gb := c.Host("b1").rec.Derive("b1/forged")
	gb.SetGroup("global")
	now := c.Sched.Now()
	ga.CommitEntry(now, 1, types.Entry{Index: 1 << 20, Kind: types.KindNormal, Data: []byte("x")})
	gb.CommitEntry(now+time.Millisecond, 1, types.Entry{Index: 1 << 20, Kind: types.KindNormal, Data: []byte("y")})

	var found bool
	for _, v := range c.Audit.Violations() {
		if v.Invariant == audit.InvCommittedPrefix && strings.Contains(v.Detail, `group "global"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded global digest conflict not attributed to committed-prefix in group global: %v",
			c.Audit.Violations())
	}
}
