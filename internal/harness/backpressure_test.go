package harness

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/types"
)

// TestFastRaftProposerBackpressureCapsInflight pins the proposer window: a
// burst of proposals from one node may never have more than
// MaxInflightProposals unresolved proposals broadcast at once — the rest
// queue and drain in order — and every proposal still resolves.
func TestFastRaftProposerBackpressureCapsInflight(t *testing.T) {
	const (
		cap   = 3
		burst = 20
	)
	c, err := NewCluster(Options{
		Kind:                 KindFastRaft,
		Nodes:                fiveNodes(),
		Seed:                 37,
		MaxInflightProposals: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n2")
	h := c.Host(proposer)

	// Track, at every ProposeEntry delivery from the proposer, how many of
	// its broadcast proposals are still unresolved. The cap bounds this:
	// a proposal is only broadcast once fewer than cap others are in
	// flight, and in-flight ones only leave the set by resolving.
	broadcast := make(map[types.ProposalID]bool)
	maxInflight := 0
	c.Net.OnDeliver = func(env types.Envelope) {
		m, ok := env.Msg.(types.ProposeEntry)
		if !ok || env.From != proposer {
			return
		}
		broadcast[m.Entry.PID] = true
		inflight := 0
		for pid := range broadcast {
			if _, resolved := h.Resolved(pid); !resolved {
				inflight++
			}
		}
		if inflight > maxInflight {
			maxInflight = inflight
		}
	}

	// Fire the burst at one virtual instant.
	pids := make([]types.ProposalID, 0, burst)
	for i := 0; i < burst; i++ {
		pid, err := c.Propose(proposer, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, pid)
	}
	fr := h.Machine().(*fastraft.Node)
	if q := fr.QueuedProposals(); q == 0 {
		t.Fatal("burst past the cap queued nothing; backpressure inactive")
	}

	// Every proposal must still resolve, in spite of the queue.
	for _, pid := range pids {
		if _, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+120*time.Second); !ok {
			t.Fatalf("proposal %v never resolved", pid)
		}
	}
	if maxInflight > cap {
		t.Fatalf("observed %d unresolved broadcast proposals in flight, cap is %d", maxInflight, cap)
	}
	if maxInflight == 0 {
		t.Fatal("no proposal traffic observed; scenario broken")
	}
	if q := fr.QueuedProposals(); q != 0 {
		t.Fatalf("queue not drained after resolutions: %d left", q)
	}
	if got := fr.Metrics()["fastraft.proposals_queued"]; got == 0 {
		t.Fatal("proposals_queued metric did not move")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCraftBatchBackpressureStillConverges checks liveness under the batch
// window: with MaxInflightBatches=1 a burst of local commits must still
// drain into the global log, one batch at a time.
func TestCraftBatchBackpressureStillConverges(t *testing.T) {
	c, err := NewCraftCluster(CraftOptions{
		Clusters: []ClusterSpec{
			{ID: "c1", Sites: []types.NodeID{"a1", "a2", "a3"}, Region: "us-east"},
			{ID: "c2", Sites: []types.NodeID{"b1", "b2", "b3"}, Region: "eu-west"},
		},
		Seed:               41,
		BatchSize:          2,
		BatchDelay:         300 * time.Millisecond,
		MaxInflightBatches: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitForLeaders(60 * time.Second) {
		t.Fatal("leaders never established")
	}
	const items = 8
	for i := 0; i < items; i++ {
		pid, err := c.Propose("a1", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.AwaitResolution("a1", pid, c.Sched.Now()+60*time.Second); !ok {
			t.Fatalf("local proposal %d never resolved", i)
		}
	}
	globalItems := func() int {
		return c.GlobalItemsCommitted(0, c.Sched.Now()+1)
	}
	ok := c.RunUntil(func() bool {
		return globalItems() >= items
	}, c.Sched.Now()+300*time.Second)
	if !ok {
		t.Fatalf("only %d/%d items reached the global log under the batch window",
			globalItems(), items)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}
