package harness

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// TestJoinUnderLoad adds a brand-new site while a proposer is running: the
// join must complete, the joiner must converge, and proposals must keep
// committing throughout.
func TestJoinUnderLoad(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 11, 0.01)
	if _, ok := c.WaitForLeader(10 * time.Second); !ok {
		t.Fatal("no leader")
	}
	p, err := c.StartProposer(ProposerOptions{Node: "n2", StopAfter: c.Sched.Now() + 40*time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode("n6", []types.NodeID{"n1", "n3"}); err != nil {
		t.Fatal(err)
	}
	joined := c.RunUntil(func() bool {
		h, ok := c.Leader()
		return ok && h.Machine().Config().Contains("n6")
	}, c.Sched.Now()+30*time.Second)
	if !joined {
		t.Fatal("join never completed under load")
	}
	// The joiner's machine must converge to the group's commit index.
	caughtUp := c.RunUntil(func() bool {
		h, ok := c.Leader()
		if !ok {
			return false
		}
		j := c.Host("n6")
		return j != nil && j.Machine().CommitIndex() >= h.Machine().CommitIndex()-5
	}, c.Sched.Now()+30*time.Second)
	if !caughtUp {
		t.Fatal("joiner never caught up")
	}
	if p.Completed == 0 {
		t.Fatal("no proposals committed during the join")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicationTolerance injects heavy message duplication on top of
// loss: the protocols are idempotent, so safety and progress must hold and
// no entry may commit twice at different indices.
func TestDuplicationTolerance(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:     KindFastRaft,
		Nodes:    fiveNodes(),
		Seed:     13,
		LossProb: 0.03,
		DupProb:  0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(10 * time.Second); !ok {
		t.Fatal("no leader")
	}
	sum, err := c.RunProposals("n4", 40, c.Sched.Now()+3*time.Minute)
	if err != nil {
		t.Fatalf("proposals under duplication: %v (%s)", err, sum)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	if st := c.Net.Stats(); st.Duplicated == 0 {
		t.Fatal("duplication injector never fired")
	}
}

// TestRejoinAfterSilentRemoval: a site crashes, the leader removes it via
// the member timeout; when the site restarts from its stable storage it
// discovers the removal and rejoins automatically.
func TestRejoinAfterSilentRemoval(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:                KindFastRaft,
		Nodes:               fiveNodes(),
		Seed:                17,
		MemberTimeoutRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(10 * time.Second); !ok {
		t.Fatal("no leader")
	}
	// Keep traffic flowing so heartbeats and removals proceed.
	if _, err := c.StartProposer(ProposerOptions{Node: "n1", StopAfter: c.Sched.Now() + 2*time.Minute}); err != nil {
		t.Fatal(err)
	}
	victim := types.NodeID("n5")
	if h, _ := c.Leader(); h != nil && h.ID() == victim {
		victim = "n4"
	}
	c.Crash(victim)
	removed := c.RunUntil(func() bool {
		h, ok := c.Leader()
		return ok && !h.Machine().Config().Contains(victim)
	}, c.Sched.Now()+30*time.Second)
	if !removed {
		t.Fatal("silent leaver never removed")
	}
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	rejoined := c.RunUntil(func() bool {
		h, ok := c.Leader()
		return ok && h.Machine().Config().Contains(victim)
	}, c.Sched.Now()+60*time.Second)
	if !rejoined {
		t.Fatal("restarted site never rejoined")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulLeaveUnderLoad: an announced leave shrinks the configuration
// without disturbing safety or progress.
func TestGracefulLeaveUnderLoad(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 19, 0)
	if _, ok := c.WaitForLeader(10 * time.Second); !ok {
		t.Fatal("no leader")
	}
	p, err := c.StartProposer(ProposerOptions{Node: "n1", StopAfter: c.Sched.Now() + 30*time.Second})
	if err != nil {
		t.Fatal(err)
	}
	leaver := types.NodeID("n4")
	if h, _ := c.Leader(); h != nil && h.ID() == leaver {
		leaver = "n5"
	}
	if err := c.Leave(leaver); err != nil {
		t.Fatal(err)
	}
	left := c.RunUntil(func() bool {
		h, ok := c.Leader()
		return ok && !h.Machine().Config().Contains(leaver)
	}, c.Sched.Now()+20*time.Second)
	if !left {
		t.Fatal("graceful leave never completed")
	}
	before := p.Completed
	c.RunFor(5 * time.Second)
	if p.Completed <= before {
		t.Fatal("proposals stalled after the leave")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestQuorumLossStallsThenSilentLeaveRecovers reproduces the Figure 4
// dynamic at harness level: two of five sites leave silently; the fast
// track (quorum 4) is impossible until the leader shrinks the
// configuration, after which the fast track returns (quorum 3 of 3).
func TestQuorumLossStallsThenSilentLeaveRecovers(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:                KindFastRaft,
		Nodes:               fiveNodes(),
		Seed:                23,
		LossProb:            0.05,
		MemberTimeoutRounds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaderID, ok := c.WaitForLeader(10 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	var proposer types.NodeID
	var leavers []types.NodeID
	for _, id := range fiveNodes() {
		switch {
		case id == leaderID:
		case proposer == types.None:
			proposer = id
		case len(leavers) < 2:
			leavers = append(leavers, id)
		}
	}
	p, err := c.StartProposer(ProposerOptions{Node: proposer, StopAfter: c.Sched.Now() + time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)
	for _, l := range leavers {
		c.Crash(l)
	}
	shrunk := c.RunUntil(func() bool {
		h, ok := c.Leader()
		return ok && h.Machine().Config().Size() == 3
	}, c.Sched.Now()+30*time.Second)
	if !shrunk {
		t.Fatal("configuration never shrank to the three survivors")
	}
	before := p.Completed
	c.RunFor(10 * time.Second)
	if p.Completed <= before {
		t.Fatal("no progress after reconfiguration")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestNetworkStatsAccounting sanity-checks the simulator's bookkeeping
// under a normal run: everything sent is delivered, dropped, cut or
// unroutable.
func TestNetworkStatsAccounting(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 29, 0.1)
	if _, ok := c.WaitForLeader(10 * time.Second); !ok {
		t.Fatal("no leader")
	}
	if _, err := c.RunProposals("n3", 10, c.Sched.Now()+time.Minute); err != nil {
		t.Fatal(err)
	}
	st := c.Net.Stats()
	if st.Sent == 0 || st.Dropped == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Delivered+st.Dropped+st.Cut+st.Unroutable > st.Sent+st.Duplicated {
		t.Fatalf("accounting broken: %+v", st)
	}
}
