package harness

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/raft"
	"github.com/hraft-io/hraft/internal/simnet"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Kind selects the consensus implementation a cluster runs.
type Kind int

const (
	// KindRaft runs the classic Raft baseline.
	KindRaft Kind = iota + 1
	// KindFastRaft runs Fast Raft.
	KindFastRaft
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRaft:
		return "raft"
	case KindFastRaft:
		return "fastraft"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AuditMode selects how a cluster runs the online safety auditor.
type AuditMode int

const (
	// AuditStrict (the zero value: every harness test audits by default)
	// attaches the auditor to every node's event stream and panics on the
	// first invariant violation, with the violating event window in the
	// report — the failing test points at the exact breach.
	AuditStrict AuditMode = iota
	// AuditRecord attaches the auditor but only collects violations, for
	// tests that seed deliberate violations and inspect the report.
	AuditRecord
	// AuditOff disables auditing (benchmarks pin the recorder-free path).
	AuditOff
)

// Options configures a simulated flat cluster.
type Options struct {
	// Kind selects the protocol.
	Kind Kind
	// Nodes are the initial voting members.
	Nodes []types.NodeID
	// Seed drives all randomness in the run.
	Seed int64
	// Topology is the latency model (nil = single region).
	Topology *simnet.Topology
	// LossProb is the per-message drop probability.
	LossProb float64
	// DupProb is the per-message duplication probability.
	DupProb float64
	// HeartbeatInterval is the leader tick period (0 = paper default).
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound election timeouts (0 = derived).
	ElectionTimeoutMin time.Duration
	// ElectionTimeoutMax must exceed ElectionTimeoutMin when set.
	ElectionTimeoutMax time.Duration
	// ProposalTimeout is the proposer retry period (0 = derived).
	ProposalTimeout time.Duration
	// MemberTimeoutRounds is Fast Raft's silent-leave threshold.
	MemberTimeoutRounds int
	// SnapshotThreshold enables snapshotting + log compaction once this
	// many entries commit beyond the last snapshot (0 = disabled).
	SnapshotThreshold int
	// MaxEntriesPerAppend caps AppendEntries payloads (0 = unlimited).
	MaxEntriesPerAppend int
	// MaxInflightAppends bounds outstanding AppendEntries per follower
	// (0 = replica default).
	MaxInflightAppends int
	// MaxInflightBytes bounds outstanding encoded entry bytes per follower
	// (0 = replica default, 1 MiB).
	MaxInflightBytes int
	// MaxSnapshotChunk streams InstallSnapshot in chunks of at most this
	// many payload bytes (0 = whole snapshot in one message).
	MaxSnapshotChunk int
	// MaxInflightProposals caps unresolved broadcast proposals per node
	// (Fast Raft only; 0 = unlimited).
	MaxInflightProposals int
	// MaxInflightProposalBytes bounds the encoded payload bytes of
	// broadcast-but-unresolved proposals per node (Fast Raft only; 0 =
	// unlimited).
	MaxInflightProposalBytes int
	// SessionTTL expires idle client sessions (0 = no expiry).
	SessionTTL time.Duration
	// DisableFastTrack forces Fast Raft onto the classic track (ablation).
	DisableFastTrack bool
	// Trace equips every node with a flight recorder; recorders survive
	// Crash/Restart so a node's ring spans its whole simulated lifetime.
	// Dump with MergedTrace or DumpTraceOnFailure.
	Trace bool
	// TraceRing overrides the per-node recorder ring capacity (0 = the
	// trace package default, or $HRAFT_TRACE_RING when set).
	TraceRing int
	// TraceSample samples every Nth proposal/read with a wire-propagated
	// trace ID (0 = no sampling); requires Trace.
	TraceSample int
	// Audit selects the safety-auditor mode; the zero value is strict
	// auditing, so every cluster is audited unless a test opts out.
	Audit AuditMode
	// GroupCommit runs every node on group-commit storage: mutations are
	// acknowledged immediately but buffer until a virtual-time fsync window
	// closes, and a Crash loses whatever had not synced — exactly like a
	// real machine losing its page cache. The cores' durability gates
	// (internal/durable) must therefore hold outputs correctly, which the
	// strict auditor checks across crash-restart.
	GroupCommit bool
	// SyncWindow is the virtual-time group-commit flush interval
	// (0 = 2ms, matching storage.WALOptions).
	SyncWindow time.Duration
}

// Host binds one consensus node to the simulated network, keeping its
// stable storage across restarts.
type Host struct {
	c       *Cluster
	id      types.NodeID
	machine Machine
	store   *storage.Memory
	// gstore wraps store with deferred durability when Options.GroupCommit
	// is set (nil otherwise); syncTimer is the armed fsync-window close.
	gstore    *storage.GroupedMemory
	syncTimer *simnet.Timer
	// bootstrap is the node's static initial configuration, reused on
	// restarts (the stable-storage log takes precedence once it contains
	// configuration entries).
	bootstrap types.Config
	alive     bool
	wake      *simnet.Timer
	// rec is the node's flight recorder (nil unless Options.Trace); it is
	// reused across Crash/Restart so one ring spans the node's lifetime.
	rec *trace.Recorder

	proposeStart map[types.ProposalID]time.Duration
	// resolved records the resolution index of every tracked proposal, so
	// tests can await and inspect outcomes (0 = session-rejected).
	resolved map[types.ProposalID]types.Index
	// readDone records the resolution of every tracked read.
	readDone map[uint64]types.ReadDone
	// OnResolve, when set, observes each local proposal resolution.
	OnResolve func(pid types.ProposalID, at, latency time.Duration)
	// OnCommit, when set, observes every entry this node applies (the
	// state-machine view: session duplicates never appear here).
	OnCommit func(e types.Entry)
}

// ReadResult returns the resolution of a tracked read, if it resolved.
func (h *Host) ReadResult(token uint64) (types.ReadDone, bool) {
	d, ok := h.readDone[token]
	return d, ok
}

// Resolved returns the resolution index of a tracked proposal, if it
// resolved (ok=false while still pending).
func (h *Host) Resolved(pid types.ProposalID) (types.Index, bool) {
	idx, ok := h.resolved[pid]
	return idx, ok
}

// ID returns the hosted node's identity.
func (h *Host) ID() types.NodeID { return h.id }

// storage returns the store machines are built over: the group-commit
// wrapper when enabled, the plain synchronous Memory otherwise.
func (h *Host) storage() storage.Storage {
	if h.gstore != nil {
		return h.gstore
	}
	return h.store
}

// Machine returns the hosted state machine.
func (h *Host) Machine() Machine { return h.machine }

// Alive reports whether the host is running.
func (h *Host) Alive() bool { return h.alive }

// Cluster simulates a flat Raft or Fast Raft cluster.
type Cluster struct {
	opts Options
	// Sched is the virtual-time scheduler.
	Sched *simnet.Scheduler
	// Net is the simulated network.
	Net *simnet.Network
	// Safety accumulates invariant violations.
	Safety *SafetyChecker
	// Latencies collects every proposal resolution in the run.
	Latencies *stats.Series
	// Timeline records leadership changes, configuration changes and
	// churn events for scenario output.
	Timeline *Timeline
	// Audit is the streaming safety auditor attached to every node's
	// recorder (nil when Options.Audit is AuditOff).
	Audit *audit.Auditor

	hosts map[types.NodeID]*Host
	rng   *rand.Rand
}

// NewCluster builds and starts a cluster (nodes begin as followers with
// randomized election timers).
func NewCluster(opts Options) (*Cluster, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("harness: cluster needs nodes")
	}
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched, opts.Topology, opts.Seed)
	net.LossProb = opts.LossProb
	net.DupProb = opts.DupProb
	c := &Cluster{
		opts:      opts,
		Sched:     sched,
		Net:       net,
		Safety:    NewSafetyChecker(),
		Latencies: &stats.Series{},
		Timeline:  NewTimeline(),
		hosts:     make(map[types.NodeID]*Host),
		rng:       rand.New(rand.NewSource(opts.Seed + 1)),
	}
	c.Audit = newAuditor(opts.Audit)
	bootstrap := types.NewConfig(opts.Nodes...)
	for _, id := range opts.Nodes {
		if _, err := c.addHost(id, bootstrap); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// addHost creates, registers and schedules a host.
func (c *Cluster) addHost(id types.NodeID, bootstrap types.Config) (*Host, error) {
	h := &Host{
		c:            c,
		id:           id,
		store:        storage.NewMemory(),
		bootstrap:    bootstrap.Clone(),
		proposeStart: make(map[types.ProposalID]time.Duration),
		resolved:     make(map[types.ProposalID]types.Index),
		readDone:     make(map[uint64]types.ReadDone),
	}
	if c.opts.GroupCommit {
		h.gstore = storage.NewGroupedMemory(h.store)
	}
	if c.opts.Trace || c.Audit != nil {
		h.rec = trace.New(trace.Config{Node: string(id), Size: c.opts.TraceRing, SampleRate: c.opts.TraceSample})
		c.Audit.AttachTo(h.rec)
	}
	m, err := c.makeMachine(id, bootstrap, h.storage(), h.rec)
	if err != nil {
		return nil, err
	}
	h.machine = m
	h.alive = true
	c.hosts[id] = h
	c.Net.Register(id, func(env types.Envelope) {
		if !h.alive {
			return
		}
		h.machine.Step(c.Sched.Now(), env)
		c.drain(h)
	})
	c.drain(h)
	return h, nil
}

func (c *Cluster) makeMachine(id types.NodeID, bootstrap types.Config, store storage.Storage, rec *trace.Recorder) (Machine, error) {
	nodeRand := rand.New(rand.NewSource(c.rng.Int63()))
	switch c.opts.Kind {
	case KindRaft:
		return raft.New(raft.Config{
			ID:                  id,
			Bootstrap:           bootstrap,
			Storage:             store,
			HeartbeatInterval:   c.opts.HeartbeatInterval,
			ElectionTimeoutMin:  c.opts.ElectionTimeoutMin,
			ElectionTimeoutMax:  c.opts.ElectionTimeoutMax,
			ProposalTimeout:     c.opts.ProposalTimeout,
			SnapshotThreshold:   c.opts.SnapshotThreshold,
			MaxEntriesPerAppend: c.opts.MaxEntriesPerAppend,
			MaxInflightAppends:  c.opts.MaxInflightAppends,
			MaxInflightBytes:    c.opts.MaxInflightBytes,
			MaxSnapshotChunk:    c.opts.MaxSnapshotChunk,
			SessionTTL:          c.opts.SessionTTL,
			Rand:                nodeRand,
			Recorder:            rec,
		})
	case KindFastRaft:
		return fastraft.New(fastraft.Config{
			ID:                       id,
			Bootstrap:                bootstrap,
			Storage:                  store,
			HeartbeatInterval:        c.opts.HeartbeatInterval,
			ElectionTimeoutMin:       c.opts.ElectionTimeoutMin,
			ElectionTimeoutMax:       c.opts.ElectionTimeoutMax,
			ProposalTimeout:          c.opts.ProposalTimeout,
			MemberTimeoutRounds:      c.opts.MemberTimeoutRounds,
			SnapshotThreshold:        c.opts.SnapshotThreshold,
			MaxEntriesPerAppend:      c.opts.MaxEntriesPerAppend,
			MaxInflightAppends:       c.opts.MaxInflightAppends,
			MaxInflightBytes:         c.opts.MaxInflightBytes,
			MaxSnapshotChunk:         c.opts.MaxSnapshotChunk,
			MaxInflightProposals:     c.opts.MaxInflightProposals,
			MaxInflightProposalBytes: c.opts.MaxInflightProposalBytes,
			SessionTTL:               c.opts.SessionTTL,
			DisableFastTrack:         c.opts.DisableFastTrack,
			Rand:                     nodeRand,
			Recorder:                 rec,
		})
	default:
		return nil, fmt.Errorf("harness: unknown kind %v", c.opts.Kind)
	}
}

// drain flushes a host's outputs into the network, the safety checker and
// the latency collectors, then reschedules its wake-up timer.
func (c *Cluster) drain(h *Host) {
	now := c.Sched.Now()
	for _, env := range h.machine.TakeOutbox() {
		c.Net.Send(env)
	}
	for _, e := range h.machine.TakeCommitted() {
		c.Safety.RecordCommit("", h.id, e)
		if h.OnCommit != nil {
			h.OnCommit(e)
		}
		if e.Kind == types.KindConfig && e.Config != nil && h.machine.Role() == types.RoleLeader {
			c.Timeline.ObserveConfig(now, "", h.id, *e.Config)
		}
	}
	if h.machine.Role() == types.RoleLeader {
		c.Safety.RecordLeader("", h.machine.Term(), h.id)
		c.Timeline.ObserveLeader(now, "", h.machine.Term(), h.id)
	}
	for _, res := range h.machine.TakeResolved() {
		h.resolved[res.PID] = res.Index
		start, ok := h.proposeStart[res.PID]
		if !ok {
			continue
		}
		delete(h.proposeStart, res.PID)
		lat := now - start
		c.Latencies.Add(now, lat)
		if h.OnResolve != nil {
			h.OnResolve(res.PID, now, lat)
		}
	}
	for _, d := range h.machine.TakeReadDone() {
		h.readDone[d.ID] = d
	}
	c.schedule(h)
	c.armSync(h)
}

// syncWindow is the virtual-time group-commit flush interval.
func (c *Cluster) syncWindow() time.Duration {
	if c.opts.SyncWindow > 0 {
		return c.opts.SyncWindow
	}
	return 2 * time.Millisecond
}

// armSync schedules the fsync-window close for a host with unsynced
// buffered mutations; when it fires the buffered records become durable
// and the machine's gated outputs release.
func (c *Cluster) armSync(h *Host) {
	if h.gstore == nil || !h.alive || !h.gstore.Pending() || h.syncTimer != nil {
		return
	}
	h.syncTimer = c.Sched.At(c.Sched.Now()+c.syncWindow(), func() {
		h.syncTimer = nil
		if !h.alive {
			return
		}
		if err := h.gstore.Sync(); err != nil {
			panic(fmt.Sprintf("harness: sync %s: %v", h.id, err))
		}
		h.machine.SyncDone(c.Sched.Now(), h.gstore.DurableLSN())
		c.drain(h)
	})
}

// schedule re-arms the host's wake timer from the machine's next deadline.
func (c *Cluster) schedule(h *Host) {
	if h.wake != nil {
		h.wake.Cancel()
		h.wake = nil
	}
	if !h.alive {
		return
	}
	d := h.machine.NextDeadline()
	if d == 0 {
		return
	}
	h.wake = c.Sched.At(d, func() {
		if !h.alive {
			return
		}
		h.machine.Tick(c.Sched.Now())
		c.drain(h)
	})
}

// Host returns the host for id (nil if unknown).
func (c *Cluster) Host(id types.NodeID) *Host { return c.hosts[id] }

// Hosts returns all hosts.
func (c *Cluster) Hosts() map[types.NodeID]*Host { return c.hosts }

// RunFor advances virtual time by d.
func (c *Cluster) RunFor(d time.Duration) {
	c.Sched.RunUntil(c.Sched.Now() + d)
}

// RunUntil steps the simulation until cond holds or virtual time passes
// deadline; it reports whether cond held.
func (c *Cluster) RunUntil(cond func() bool, deadline time.Duration) bool {
	for {
		if cond() {
			return true
		}
		if c.Sched.Now() > deadline {
			return false
		}
		if !c.Sched.Step() {
			return cond()
		}
	}
}

// Leader returns the alive leader with the highest term, if any.
func (c *Cluster) Leader() (*Host, bool) {
	var best *Host
	for _, h := range c.hosts {
		if !h.alive || h.machine.Role() != types.RoleLeader {
			continue
		}
		if best == nil || h.machine.Term() > best.machine.Term() {
			best = h
		}
	}
	return best, best != nil
}

// WaitForLeader runs until some node is leader, up to the deadline.
func (c *Cluster) WaitForLeader(deadline time.Duration) (types.NodeID, bool) {
	ok := c.RunUntil(func() bool {
		_, ok := c.Leader()
		return ok
	}, deadline)
	if !ok {
		return types.None, false
	}
	h, _ := c.Leader()
	return h.id, true
}

// Propose submits a payload from the given node, recording its start time
// for latency measurement.
func (c *Cluster) Propose(id types.NodeID, data []byte) (types.ProposalID, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return types.ProposalID{}, fmt.Errorf("harness: node %s not running", id)
	}
	now := c.Sched.Now()
	pid := h.machine.Propose(now, data)
	h.proposeStart[pid] = now
	c.drain(h)
	return pid, nil
}

// Read registers a read on the given node under the given consistency
// mode (0 = linearizable); await its linearization index with AwaitRead.
func (c *Cluster) Read(id types.NodeID, consistency types.ReadConsistency) (uint64, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return 0, fmt.Errorf("harness: node %s not running", id)
	}
	token := h.machine.Read(c.Sched.Now(), consistency)
	c.drain(h)
	return token, nil
}

// AwaitRead runs the simulation until the read tracked on node id
// resolves, returning its outcome.
func (c *Cluster) AwaitRead(id types.NodeID, token uint64, deadline time.Duration) (types.ReadDone, bool) {
	h := c.hosts[id]
	if h == nil {
		return types.ReadDone{}, false
	}
	ok := c.RunUntil(func() bool {
		_, done := h.readDone[token]
		return done
	}, deadline)
	if !ok {
		return types.ReadDone{}, false
	}
	return h.readDone[token], true
}

// OpenSession proposes a client-session registration from the given node;
// the returned proposal resolves with the new session's ID (await it with
// AwaitResolution).
func (c *Cluster) OpenSession(id types.NodeID) (types.ProposalID, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return types.ProposalID{}, fmt.Errorf("harness: node %s not running", id)
	}
	now := c.Sched.Now()
	var pid types.ProposalID
	switch m := h.machine.(type) {
	case *fastraft.Node:
		pid = m.OpenSession(now)
	case *raft.Node:
		pid = m.OpenSession(now)
	default:
		return types.ProposalID{}, fmt.Errorf("harness: %T does not support sessions", h.machine)
	}
	h.proposeStart[pid] = now
	c.drain(h)
	return pid, nil
}

// ProposeSession submits a payload under (sid, seq) from the given node.
func (c *Cluster) ProposeSession(id types.NodeID, sid types.SessionID, seq uint64, data []byte) (types.ProposalID, error) {
	return c.ProposeSessionAck(id, sid, seq, 0, data)
}

// ProposeSessionAck submits a payload under (sid, seq) carrying the
// client's retry floor ack (0 = none).
func (c *Cluster) ProposeSessionAck(id types.NodeID, sid types.SessionID, seq, ack uint64, data []byte) (types.ProposalID, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return types.ProposalID{}, fmt.Errorf("harness: node %s not running", id)
	}
	now := c.Sched.Now()
	var pid types.ProposalID
	switch m := h.machine.(type) {
	case *fastraft.Node:
		pid = m.ProposeSession(now, sid, seq, ack, data)
	case *raft.Node:
		pid = m.ProposeSession(now, sid, seq, ack, data)
	default:
		return types.ProposalID{}, fmt.Errorf("harness: %T does not support sessions", h.machine)
	}
	h.proposeStart[pid] = now
	c.drain(h)
	return pid, nil
}

// AwaitResolution runs the simulation until the proposal tracked on node id
// resolves, returning its resolution index (0 = session-rejected).
func (c *Cluster) AwaitResolution(id types.NodeID, pid types.ProposalID, deadline time.Duration) (types.Index, bool) {
	h := c.hosts[id]
	if h == nil {
		return 0, false
	}
	ok := c.RunUntil(func() bool {
		_, done := h.resolved[pid]
		return done
	}, deadline)
	if !ok {
		return 0, false
	}
	return h.resolved[pid], true
}

// Crash stops a node without warning (also used for silent leaves); its
// stable storage is preserved for Restart.
func (c *Cluster) Crash(id types.NodeID) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return
	}
	h.alive = false
	if h.wake != nil {
		h.wake.Cancel()
		h.wake = nil
	}
	if h.syncTimer != nil {
		h.syncTimer.Cancel()
		h.syncTimer = nil
	}
	if h.gstore != nil {
		// Power loss: everything inside the open fsync window is gone.
		h.gstore.Crash()
	}
	c.Net.Unregister(id)
	c.Audit.NodeDown(string(id))
	c.Timeline.Crash(c.Sched.Now(), id)
}

// Restart brings a crashed node back from its stable storage.
func (c *Cluster) Restart(id types.NodeID) error {
	h := c.hosts[id]
	if h == nil {
		return fmt.Errorf("harness: unknown node %s", id)
	}
	if h.alive {
		return fmt.Errorf("harness: node %s already running", id)
	}
	m, err := c.makeMachine(id, h.bootstrap, h.storage(), h.rec)
	if err != nil {
		return err
	}
	h.machine = m
	h.alive = true
	h.proposeStart = make(map[types.ProposalID]time.Duration)
	h.resolved = make(map[types.ProposalID]types.Index)
	h.readDone = make(map[uint64]types.ReadDone)
	c.Net.Register(id, func(env types.Envelope) {
		if !h.alive {
			return
		}
		h.machine.Step(c.Sched.Now(), env)
		c.drain(h)
	})
	c.Timeline.Restart(c.Sched.Now(), id)
	c.drain(h)
	return nil
}

// AddNode starts a brand-new Fast Raft site and has it join via the given
// contacts (the paper's join protocol).
func (c *Cluster) AddNode(id types.NodeID, contacts []types.NodeID) (*Host, error) {
	if c.opts.Kind != KindFastRaft {
		return nil, fmt.Errorf("harness: AddNode requires Fast Raft")
	}
	if _, exists := c.hosts[id]; exists {
		return nil, fmt.Errorf("harness: node %s already exists", id)
	}
	h, err := c.addHost(id, types.NewConfig())
	if err != nil {
		return nil, err
	}
	fr, ok := h.machine.(*fastraft.Node)
	if !ok {
		return nil, fmt.Errorf("harness: unexpected machine type %T", h.machine)
	}
	fr.Join(c.Sched.Now(), contacts)
	c.drain(h)
	return h, nil
}

// Leave announces a graceful leave from the given Fast Raft site.
func (c *Cluster) Leave(id types.NodeID) error {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return fmt.Errorf("harness: node %s not running", id)
	}
	fr, ok := h.machine.(*fastraft.Node)
	if !ok {
		return fmt.Errorf("harness: Leave requires Fast Raft")
	}
	fr.Leave(c.Sched.Now())
	c.drain(h)
	return nil
}

// CommitsAgree verifies that every alive node's committed prefix matches
// the safety checker's record (a liveness-flavoured sanity check used by
// tests).
func (c *Cluster) CommitsAgree() error {
	return c.Safety.Err()
}
