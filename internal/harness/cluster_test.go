package harness

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

func ids(names ...string) []types.NodeID {
	out := make([]types.NodeID, len(names))
	for i, n := range names {
		out[i] = types.NodeID(n)
	}
	return out
}

func fiveNodes() []types.NodeID { return ids("n1", "n2", "n3", "n4", "n5") }

func newTestCluster(t *testing.T, kind Kind, seed int64, loss float64) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{
		Kind:     kind,
		Nodes:    fiveNodes(),
		Seed:     seed,
		LossProb: loss,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestRaftElectsLeader(t *testing.T) {
	c := newTestCluster(t, KindRaft, 1, 0)
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader elected within 5s of virtual time")
	}
	if leader == types.None {
		t.Fatal("empty leader id")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftElectsLeader(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 1, 0)
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader elected within 5s of virtual time")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRaftCommitsProposals(t *testing.T) {
	c := newTestCluster(t, KindRaft, 2, 0)
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	sum, err := c.RunProposals("n2", 20, c.Sched.Now()+60*time.Second)
	if err != nil {
		t.Fatalf("proposals: %v (summary %s)", err, sum)
	}
	if sum.Count != 20 {
		t.Fatalf("want 20 resolutions, got %d", sum.Count)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	t.Logf("classic raft latency: %s", sum)
}

func TestFastRaftCommitsProposals(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 2, 0)
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	sum, err := c.RunProposals("n2", 20, c.Sched.Now()+60*time.Second)
	if err != nil {
		t.Fatalf("proposals: %v (summary %s)", err, sum)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	t.Logf("fast raft latency: %s", sum)
}

func TestFastRaftFasterThanRaftAtZeroLoss(t *testing.T) {
	run := func(kind Kind) time.Duration {
		c := newTestCluster(t, kind, 7, 0)
		if _, ok := c.WaitForLeader(5 * time.Second); !ok {
			t.Fatalf("%v: no leader", kind)
		}
		sum, err := c.RunProposals("n3", 50, c.Sched.Now()+120*time.Second)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := c.Safety.Err(); err != nil {
			t.Fatal(err)
		}
		return sum.Mean
	}
	classic := run(KindRaft)
	fast := run(KindFastRaft)
	t.Logf("classic=%s fast=%s ratio=%.2f", classic, fast, float64(classic)/float64(fast))
	if fast >= classic {
		t.Fatalf("fast raft (%s) should beat classic raft (%s) at zero loss", fast, classic)
	}
}

func TestRaftLeaderCrashFailover(t *testing.T) {
	c := newTestCluster(t, KindRaft, 3, 0)
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	if _, err := c.RunProposals("n1", 5, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("pre-crash proposals: %v", err)
	}
	c.Crash(leader)
	newLeader, ok := c.WaitForLeader(c.Sched.Now() + 10*time.Second)
	if !ok {
		t.Fatal("no new leader after crash")
	}
	if newLeader == leader {
		t.Fatalf("crashed node %s still leader", leader)
	}
	var prop types.NodeID
	for _, id := range fiveNodes() {
		if id != leader {
			prop = id
			break
		}
	}
	if _, err := c.RunProposals(prop, 5, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("post-crash proposals: %v", err)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftLeaderCrashRecovery(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 4, 0)
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	if _, err := c.RunProposals("n2", 10, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("pre-crash proposals: %v", err)
	}
	c.Crash(leader)
	if _, ok := c.WaitForLeader(c.Sched.Now() + 10*time.Second); !ok {
		t.Fatal("no new leader after crash")
	}
	var prop types.NodeID
	for _, id := range fiveNodes() {
		if id != leader {
			prop = id
			break
		}
	}
	if _, err := c.RunProposals(prop, 10, c.Sched.Now()+60*time.Second); err != nil {
		t.Fatalf("post-crash proposals: %v", err)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftCommitsUnderLoss(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 5, 0.05)
	if _, ok := c.WaitForLeader(10 * time.Second); !ok {
		t.Fatal("no leader")
	}
	sum, err := c.RunProposals("n4", 30, c.Sched.Now()+5*time.Minute)
	if err != nil {
		t.Fatalf("proposals under loss: %v (%s)", err, sum)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	t.Logf("fast raft at 5%% loss: %s", sum)
}

func TestDeterminismSameSeedSameResult(t *testing.T) {
	run := func() (types.Index, time.Duration) {
		c := newTestCluster(t, KindFastRaft, 42, 0.02)
		if _, ok := c.WaitForLeader(10 * time.Second); !ok {
			t.Fatal("no leader")
		}
		if _, err := c.RunProposals("n1", 15, c.Sched.Now()+2*time.Minute); err != nil {
			t.Fatalf("proposals: %v", err)
		}
		h, _ := c.Leader()
		return h.Machine().CommitIndex(), c.Sched.Now()
	}
	i1, t1 := run()
	i2, t2 := run()
	if i1 != i2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%s) vs (%d,%s)", i1, t1, i2, t2)
	}
}
