package harness

import (
	"fmt"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/simnet"
	"github.com/hraft-io/hraft/internal/types"
)

// twoClusterSpecs builds two 3-site clusters in different regions.
func twoClusterSpecs() []ClusterSpec {
	return []ClusterSpec{
		{ID: "cA", Sites: ids("a1", "a2", "a3"), Region: "us-east-1"},
		{ID: "cB", Sites: ids("b1", "b2", "b3"), Region: "eu-west-1"},
	}
}

func newCraft(t *testing.T, specs []ClusterSpec, seed int64, loss float64) *CraftCluster {
	t.Helper()
	c, err := NewCraftCluster(CraftOptions{
		Clusters: specs,
		Seed:     seed,
		LossProb: loss,
	})
	if err != nil {
		t.Fatalf("NewCraftCluster: %v", err)
	}
	return c
}

func TestCraftElectsLeadersBothLevels(t *testing.T) {
	c := newCraft(t, twoClusterSpecs(), 1, 0)
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("local/global leaders not elected within 30s virtual")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCraftCommitsBatchesGlobally(t *testing.T) {
	c := newCraft(t, twoClusterSpecs(), 2, 0)
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	// Propose 25 entries in cluster A: at batch size 10 at least two full
	// batches must reach the global log.
	p, err := c.StartProposer(ProposerOptions{Node: "a1", MaxProposals: 25})
	if err != nil {
		t.Fatal(err)
	}
	ok := c.RunUntil(func() bool { return p.Completed >= 25 }, c.Sched.Now()+2*time.Minute)
	if !ok {
		t.Fatalf("only %d/25 local proposals resolved", p.Completed)
	}
	ok = c.RunUntil(func() bool {
		return c.GlobalItemsCommitted(0, c.Sched.Now()+1) >= 20
	}, c.Sched.Now()+2*time.Minute)
	if !ok {
		t.Fatalf("only %d items committed globally", c.GlobalItemsCommitted(0, c.Sched.Now()+1))
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCraftBothClustersBatch(t *testing.T) {
	c := newCraft(t, twoClusterSpecs(), 3, 0)
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	pa, _ := c.StartProposer(ProposerOptions{Node: "a2", MaxProposals: 15})
	pb, _ := c.StartProposer(ProposerOptions{Node: "b2", MaxProposals: 15})
	ok := c.RunUntil(func() bool {
		return pa.Completed >= 15 && pb.Completed >= 15 &&
			c.GlobalItemsCommitted(0, c.Sched.Now()+1) >= 20
	}, 5*time.Minute)
	if !ok {
		t.Fatalf("pa=%d pb=%d global=%d", pa.Completed, pb.Completed,
			c.GlobalItemsCommitted(0, c.Sched.Now()+1))
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCraftLocalLeaderFailoverKeepsGlobalState(t *testing.T) {
	c := newCraft(t, twoClusterSpecs(), 4, 0)
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	p, _ := c.StartProposer(ProposerOptions{Node: "a1", MaxProposals: 200})
	// Let some batches through.
	ok := c.RunUntil(func() bool {
		return c.GlobalItemsCommitted(0, c.Sched.Now()+1) >= 20
	}, 3*time.Minute)
	if !ok {
		t.Fatalf("no initial global commits (items=%d, local=%d)",
			c.GlobalItemsCommitted(0, c.Sched.Now()+1), p.Completed)
	}
	// Kill cluster A's current leader.
	lead, okl := c.LocalLeader("cA")
	if !okl {
		t.Fatal("no cA leader")
	}
	crashed := lead.ID()
	c.Crash(crashed)
	// The proposer may have been on the crashed node; start another on a
	// survivor.
	var survivor types.NodeID
	for _, s := range []types.NodeID{"a1", "a2", "a3"} {
		if s != crashed {
			survivor = s
			break
		}
	}
	if crashed == "a1" {
		if _, err := c.StartProposer(ProposerOptions{Node: survivor, MaxProposals: 200}); err != nil {
			t.Fatal(err)
		}
	}
	before := c.GlobalItemsCommitted(0, c.Sched.Now()+1)
	ok = c.RunUntil(func() bool {
		return c.GlobalItemsCommitted(0, c.Sched.Now()+1) >= before+30
	}, c.Sched.Now()+5*time.Minute)
	if !ok {
		t.Fatalf("global commits stalled after local leader failover: before=%d now=%d",
			before, c.GlobalItemsCommitted(0, c.Sched.Now()+1))
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCraftNewClusterJoins(t *testing.T) {
	c := newCraft(t, twoClusterSpecs(), 5, 0)
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	spec := ClusterSpec{ID: "cC", Sites: ids("c1", "c2", "c3"), Region: "ap-northeast-1"}
	if err := c.AddCluster(spec); err != nil {
		t.Fatal(err)
	}
	// Wait until the new cluster is a voting member of the global config.
	ok := c.RunUntil(func() bool {
		h, okl := c.LocalLeader("cC")
		if !okl {
			return false
		}
		return h.Node().GlobalConfig().Contains("cC") && h.Node().IsGlobalMember()
	}, c.Sched.Now()+2*time.Minute)
	if !ok {
		t.Fatal("new cluster never joined the global configuration")
	}
	// And that it can get a batch committed globally.
	p, _ := c.StartProposer(ProposerOptions{Node: "c1", MaxProposals: 30})
	before := len(c.GlobalCommits)
	ok = c.RunUntil(func() bool {
		h, okl := c.LocalLeader("cC")
		if !okl {
			return false
		}
		for _, gc := range c.GlobalCommits[before:] {
			if gc.Items == 0 {
				continue
			}
			e, found := h.Node().GlobalLogEntry(gc.Index)
			if !found {
				continue
			}
			if b, err := types.DecodeBatch(e.Data); err == nil && b.Cluster == "cC" {
				return true
			}
		}
		return false
	}, c.Sched.Now()+5*time.Minute)
	if !ok {
		t.Fatalf("new cluster's batches never committed globally (local=%d)", p.Completed)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCraftThroughputScalesWithClusters(t *testing.T) {
	// Small smoke version of Figure 5's trend: 2 clusters should commit
	// more global items per second than 1 cluster with the same total
	// proposers-per-cluster workload.
	run := func(n int) float64 {
		regions := simnet.AWSRegions()
		var specs []ClusterSpec
		site := 0
		for i := 0; i < n; i++ {
			var sites []types.NodeID
			for j := 0; j < 2; j++ {
				site++
				sites = append(sites, types.NodeID(fmt.Sprintf("s%d", site)))
			}
			specs = append(specs, ClusterSpec{
				ID:     types.NodeID(fmt.Sprintf("c%d", i+1)),
				Sites:  sites,
				Region: regions[i%len(regions)],
			})
		}
		c := newCraft(t, specs, 6, 0)
		if !c.WaitForLeaders(60 * time.Second) {
			t.Fatal("no leaders")
		}
		start := c.Sched.Now()
		for _, spec := range specs {
			if _, err := c.StartProposer(ProposerOptions{Node: spec.Sites[0], StopAfter: start + 60*time.Second}); err != nil {
				t.Fatal(err)
			}
		}
		c.RunFor(70 * time.Second)
		if err := c.Safety.Err(); err != nil {
			t.Fatal(err)
		}
		items := c.GlobalItemsCommitted(start, start+60*time.Second)
		return float64(items) / 60.0
	}
	one := run(1)
	two := run(2)
	t.Logf("global items/s: 1 cluster=%.1f, 2 clusters=%.1f", one, two)
	if two <= one {
		t.Fatalf("throughput should scale with clusters: 1=%.1f 2=%.1f", one, two)
	}
}

// TestCraftToleratesDuplicationAndLoss runs the two-cluster deployment
// under combined loss and duplication: safety must hold on every log and
// batches must still flow globally.
func TestCraftToleratesDuplicationAndLoss(t *testing.T) {
	c, err := NewCraftCluster(CraftOptions{
		Clusters: twoClusterSpecs(),
		Seed:     41,
		LossProb: 0.03,
		DupProb:  0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitForLeaders(time.Minute) {
		t.Fatal("no leaders")
	}
	end := c.Sched.Now() + 90*time.Second
	for _, spec := range twoClusterSpecs() {
		if _, err := c.StartProposer(ProposerOptions{Node: spec.Sites[0], StopAfter: end}); err != nil {
			t.Fatal(err)
		}
	}
	c.RunUntil(func() bool { return false }, end+5*time.Second)
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	if items := c.GlobalItemsCommitted(0, end+5*time.Second); items < 50 {
		t.Fatalf("only %d items committed globally under dup+loss", items)
	}
	if st := c.Net.Stats(); st.Duplicated == 0 || st.Dropped == 0 {
		t.Fatalf("fault injection inactive: %+v", st)
	}
}

// TestCraftBatchesSurviveLocalCompaction runs C-Raft with an aggressive
// local-log compaction threshold, crash-restarts the leading site of one
// cluster mid-run, and requires that every proposed item still reaches the
// global log exactly through the replayed (now snapshot-based) state: the
// successor and the restarted site recover batching position from the
// snapshot instead of a full local-log replay.
func TestCraftBatchesSurviveLocalCompaction(t *testing.T) {
	c, err := NewCraftCluster(CraftOptions{
		Clusters:          twoClusterSpecs(),
		Seed:              5,
		SnapshotThreshold: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	p, err := c.StartProposer(ProposerOptions{Node: "a1", MaxProposals: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Let roughly half the proposals commit, then kill cluster A's leader.
	if !c.RunUntil(func() bool { return p.Completed >= 20 }, c.Sched.Now()+2*time.Minute) {
		t.Fatalf("only %d/20 warm-up proposals resolved", p.Completed)
	}
	lead, ok := c.LocalLeader("cA")
	if !ok {
		t.Fatal("cluster A has no leader")
	}
	crashed := lead.ID()
	c.Crash(crashed)
	if crashed == "a1" {
		// The proposer lived on the crashed site; restart it below and let
		// the remaining proposals flow after recovery.
		if err := c.Restart(crashed); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntil(func() bool { return p.Completed >= 40 }, c.Sched.Now()+4*time.Minute) {
		t.Fatalf("only %d/40 proposals resolved after leader crash", p.Completed)
	}
	if crashed != "a1" {
		if err := c.Restart(crashed); err != nil {
			t.Fatal(err)
		}
	}
	// All 40 items must reach the global log (no loss, no duplication).
	ok = c.RunUntil(func() bool {
		return c.GlobalItemsCommitted(0, c.Sched.Now()+1) >= 40
	}, c.Sched.Now()+4*time.Minute)
	if !ok {
		t.Fatalf("only %d/40 items committed globally", c.GlobalItemsCommitted(0, c.Sched.Now()+1))
	}
	// Compaction must actually have happened in cluster A.
	compacted := false
	for _, site := range []types.NodeID{"a1", "a2", "a3"} {
		if c.Host(site).Node().LocalSnapshotIndex() > 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("no cluster-A site compacted its local log")
	}
	// Batch items must not have been duplicated into the global log: count
	// distinct item PIDs against total items.
	seen := make(map[types.ProposalID]int)
	for idx := types.Index(1); ; idx++ {
		e, ok := c.Host("a2").Node().GlobalLogEntry(idx)
		if !ok {
			break
		}
		if e.Kind != types.KindBatch {
			continue
		}
		b, err := types.DecodeBatch(e.Data)
		if err != nil {
			t.Fatalf("corrupt batch at %d: %v", idx, err)
		}
		for _, it := range b.Items {
			seen[it.PID]++
			if seen[it.PID] > 1 {
				t.Fatalf("item %s batched twice into the global log", it.PID)
			}
		}
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}
