package harness

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/core/craft"
	"github.com/hraft-io/hraft/internal/simnet"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// ClusterSpec describes one C-Raft cluster in a simulated deployment.
type ClusterSpec struct {
	// ID is the cluster identity (the global-level member name).
	ID types.NodeID
	// Sites are the cluster's member sites.
	Sites []types.NodeID
	// Region places the cluster's sites (and its global endpoint) in the
	// latency topology.
	Region simnet.Region
}

// CraftOptions configures a simulated C-Raft deployment.
type CraftOptions struct {
	// Clusters lists the initial clusters in deterministic order.
	Clusters []ClusterSpec
	// Seed drives all randomness.
	Seed int64
	// Topology is the latency model (nil = AWS preset).
	Topology *simnet.Topology
	// LossProb is the per-message drop probability.
	LossProb float64
	// DupProb is the per-message duplication probability.
	DupProb float64
	// BatchSize is entries per global batch (0 = paper default 10).
	BatchSize int
	// BatchDelay optionally flushes partial batches.
	BatchDelay time.Duration
	// LocalHeartbeat is the intra-cluster tick period (0 = 100 ms).
	LocalHeartbeat time.Duration
	// GlobalHeartbeat is the inter-cluster tick period (0 = 500 ms).
	GlobalHeartbeat time.Duration
	// MemberTimeoutRounds is the silent-leave threshold at both levels.
	MemberTimeoutRounds int
	// SnapshotThreshold enables local-log snapshotting + compaction (0 =
	// disabled).
	SnapshotThreshold int
	// MaxEntriesPerAppend caps AppendEntries payloads at both levels (0 =
	// unlimited).
	MaxEntriesPerAppend int
	// MaxInflightAppends bounds outstanding AppendEntries per peer at both
	// levels (0 = replica default).
	MaxInflightAppends int
	// MaxSnapshotChunk streams local-log InstallSnapshot in chunks of at
	// most this many payload bytes (0 = whole snapshot).
	MaxSnapshotChunk int
	// MaxInflightBatches caps unresolved global batch proposals per
	// cluster (0 = unlimited).
	MaxInflightBatches int
	// SessionTTL expires idle client sessions at the local level (0 = no
	// expiry).
	SessionTTL time.Duration
	// DisableFastTrack forces the classic track at both levels.
	DisableFastTrack bool
	// Trace equips every site with a flight recorder (local and global
	// layers share one ring per site); recorders survive Crash/Restart.
	// Dump with MergedTrace or DumpTraceOnFailure.
	Trace bool
	// TraceRing overrides the per-site recorder ring capacity (0 = the
	// trace package default, or $HRAFT_TRACE_RING when set).
	TraceRing int
	// TraceSample samples every Nth proposal/read with a wire-propagated
	// trace ID (0 = no sampling); requires Trace.
	TraceSample int
	// Audit selects the safety-auditor mode; the zero value is strict
	// auditing, so every deployment is audited unless a test opts out.
	Audit AuditMode
}

// GlobalCommit records one global-log entry commit observation.
type GlobalCommit struct {
	// At is when the commit was first observed at any site.
	At time.Duration
	// Index is the global log index.
	Index types.Index
	// Items is the number of application entries it carries (batch size;
	// 0 for no-ops and configuration entries).
	Items int
}

// CraftHost binds one C-Raft site to the simulated network.
type CraftHost struct {
	c     *CraftCluster
	id    types.NodeID
	clust types.NodeID
	node  *craft.Node
	store *storage.Memory
	alive bool
	wake  *simnet.Timer
	// rec is the site's flight recorder (nil unless CraftOptions.Trace),
	// reused across Crash/Restart.
	rec *trace.Recorder

	proposeStart map[types.ProposalID]time.Duration
	// resolved records the resolution index of every tracked proposal.
	resolved map[types.ProposalID]types.Index
	// readDone records the resolution of every tracked read.
	readDone map[uint64]types.ReadDone
	// OnResolve observes local application proposal resolutions.
	OnResolve func(pid types.ProposalID, at, latency time.Duration)
	// OnCommit, when set, observes every locally applied entry (session
	// duplicates never appear here).
	OnCommit func(e types.Entry)
}

// ReadResult returns the resolution of a tracked read, if it resolved.
func (h *CraftHost) ReadResult(token uint64) (types.ReadDone, bool) {
	d, ok := h.readDone[token]
	return d, ok
}

// Resolved returns the resolution index of a tracked proposal, if it
// resolved.
func (h *CraftHost) Resolved(pid types.ProposalID) (types.Index, bool) {
	idx, ok := h.resolved[pid]
	return idx, ok
}

// ID returns the site identity.
func (h *CraftHost) ID() types.NodeID { return h.id }

// ClusterID returns the site's cluster.
func (h *CraftHost) ClusterID() types.NodeID { return h.clust }

// Node returns the hosted C-Raft state machine.
func (h *CraftHost) Node() *craft.Node { return h.node }

// Alive reports whether the host is running.
func (h *CraftHost) Alive() bool { return h.alive }

// CraftCluster simulates a full C-Raft deployment: multiple clusters over a
// region topology with a shared global log.
type CraftCluster struct {
	opts CraftOptions
	// Sched is the virtual-time scheduler.
	Sched *simnet.Scheduler
	// Net is the simulated network.
	Net *simnet.Network
	// Safety accumulates invariant violations (per-cluster local logs and
	// the global log).
	Safety *SafetyChecker
	// Latencies collects local proposal resolution latencies.
	Latencies *stats.Series
	// GlobalCommits records each global-log index when first observed
	// committed anywhere.
	GlobalCommits []GlobalCommit
	// Timeline records leadership and churn events at both levels.
	Timeline *Timeline
	// Audit is the streaming safety auditor attached to every site's
	// recorder — local and global layers alike, since the layers share one
	// ring per site (nil when CraftOptions.Audit is AuditOff).
	Audit *audit.Auditor

	hosts         map[types.NodeID]*CraftHost
	specs         []ClusterSpec
	endpointOwner map[types.NodeID]types.NodeID // cluster -> site owning its endpoint
	globalSeen    map[types.Index]bool
	rng           *rand.Rand
}

// NewCraftCluster builds and starts a C-Raft deployment.
func NewCraftCluster(opts CraftOptions) (*CraftCluster, error) {
	if len(opts.Clusters) == 0 {
		return nil, fmt.Errorf("harness: craft deployment needs clusters")
	}
	topo := opts.Topology
	if topo == nil {
		topo = simnet.AWSTopology()
	}
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched, topo, opts.Seed)
	net.LossProb = opts.LossProb
	net.DupProb = opts.DupProb
	c := &CraftCluster{
		opts:          opts,
		Sched:         sched,
		Net:           net,
		Safety:        NewSafetyChecker(),
		Latencies:     &stats.Series{},
		Timeline:      NewTimeline(),
		hosts:         make(map[types.NodeID]*CraftHost),
		specs:         opts.Clusters,
		endpointOwner: make(map[types.NodeID]types.NodeID),
		globalSeen:    make(map[types.Index]bool),
		rng:           rand.New(rand.NewSource(opts.Seed + 2)),
	}
	c.Audit = newAuditor(opts.Audit)
	globalIDs := make([]types.NodeID, len(opts.Clusters))
	for i, spec := range opts.Clusters {
		globalIDs[i] = spec.ID
	}
	globalBootstrap := types.NewConfig(globalIDs...)
	for _, spec := range opts.Clusters {
		topo.SetRegion(string(spec.ID), spec.Region)
		for _, site := range spec.Sites {
			topo.SetRegion(string(site), spec.Region)
			if _, err := c.addSite(spec, site, globalBootstrap); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

func (c *CraftCluster) addSite(spec ClusterSpec, site types.NodeID, globalBootstrap types.Config) (*CraftHost, error) {
	h := &CraftHost{
		c:            c,
		id:           site,
		clust:        spec.ID,
		store:        storage.NewMemory(),
		proposeStart: make(map[types.ProposalID]time.Duration),
		resolved:     make(map[types.ProposalID]types.Index),
		readDone:     make(map[uint64]types.ReadDone),
	}
	if c.opts.Trace || c.Audit != nil {
		h.rec = trace.New(trace.Config{Node: string(site), Size: c.opts.TraceRing, SampleRate: c.opts.TraceSample})
		c.Audit.AttachTo(h.rec)
	}
	node, err := c.makeNode(spec, site, globalBootstrap, h.store, h.rec)
	if err != nil {
		return nil, err
	}
	h.node = node
	h.alive = true
	c.hosts[site] = h
	c.Net.Register(site, func(env types.Envelope) {
		if !h.alive {
			return
		}
		h.node.Step(c.Sched.Now(), env)
		c.drain(h)
	})
	c.drain(h)
	return h, nil
}

func (c *CraftCluster) makeNode(spec ClusterSpec, site types.NodeID, globalBootstrap types.Config, store storage.Storage, rec *trace.Recorder) (*craft.Node, error) {
	return craft.New(craft.Config{
		ID:                  site,
		Cluster:             spec.ID,
		ClusterBootstrap:    types.NewConfig(spec.Sites...),
		GlobalBootstrap:     globalBootstrap,
		Storage:             store,
		BatchSize:           c.opts.BatchSize,
		BatchDelay:          c.opts.BatchDelay,
		LocalHeartbeat:      c.opts.LocalHeartbeat,
		GlobalHeartbeat:     c.opts.GlobalHeartbeat,
		MemberTimeoutRounds: c.opts.MemberTimeoutRounds,
		SnapshotThreshold:   c.opts.SnapshotThreshold,
		MaxEntriesPerAppend: c.opts.MaxEntriesPerAppend,
		MaxInflightAppends:  c.opts.MaxInflightAppends,
		MaxSnapshotChunk:    c.opts.MaxSnapshotChunk,
		MaxInflightBatches:  c.opts.MaxInflightBatches,
		SessionTTL:          c.opts.SessionTTL,
		DisableFastTrack:    c.opts.DisableFastTrack,
		Rand:                rand.New(rand.NewSource(c.rng.Int63())),
		Recorder:            rec,
	})
}

// drain flushes a host's outputs and re-arms its wake timer.
func (c *CraftCluster) drain(h *CraftHost) {
	now := c.Sched.Now()
	for _, env := range h.node.TakeOutbox() {
		c.Net.Send(env)
	}
	group := "local/" + string(h.clust)
	for _, e := range h.node.TakeCommitted() {
		c.Safety.RecordCommit(group, h.id, e)
		if h.OnCommit != nil {
			h.OnCommit(e)
		}
	}
	if h.node.Role() == types.RoleLeader {
		c.Safety.RecordLeader(group, h.node.Term(), h.id)
		c.Timeline.ObserveLeader(now, group, h.node.Term(), h.id)
	}
	for _, e := range h.node.TakeGlobalCommitted() {
		c.Safety.RecordCommit("global", h.id, e)
		if !c.globalSeen[e.Index] {
			c.globalSeen[e.Index] = true
			items := 0
			if e.Kind == types.KindBatch {
				if b, err := types.DecodeBatch(e.Data); err == nil {
					items = len(b.Items)
				}
			}
			c.GlobalCommits = append(c.GlobalCommits, GlobalCommit{
				At: now, Index: e.Index, Items: items,
			})
		}
	}
	if h.node.IsGlobalMember() && h.node.GlobalRole() == types.RoleLeader {
		c.Safety.RecordLeader("global", h.node.GlobalTerm(), h.clust)
		c.Timeline.ObserveLeader(now, "global", h.node.GlobalTerm(), h.clust)
	}
	for _, res := range h.node.TakeResolved() {
		h.resolved[res.PID] = res.Index
		start, ok := h.proposeStart[res.PID]
		if !ok {
			continue
		}
		delete(h.proposeStart, res.PID)
		lat := now - start
		c.Latencies.Add(now, lat)
		if h.OnResolve != nil {
			h.OnResolve(res.PID, now, lat)
		}
	}
	for _, d := range h.node.TakeReadDone() {
		h.readDone[d.ID] = d
	}
	c.syncEndpoint(h)
	c.schedule(h)
}

// syncEndpoint keeps the cluster-ID routing entry pointed at the site that
// currently runs the cluster's global instance.
func (c *CraftCluster) syncEndpoint(h *CraftHost) {
	owner := c.endpointOwner[h.clust]
	if h.node.IsGlobalMember() && h.alive {
		if owner != h.id {
			c.endpointOwner[h.clust] = h.id
			c.Net.Register(h.clust, func(env types.Envelope) {
				if !h.alive {
					return
				}
				h.node.Step(c.Sched.Now(), env)
				c.drain(h)
			})
		}
		return
	}
	if owner == h.id {
		delete(c.endpointOwner, h.clust)
		c.Net.Unregister(h.clust)
	}
}

func (c *CraftCluster) schedule(h *CraftHost) {
	if h.wake != nil {
		h.wake.Cancel()
		h.wake = nil
	}
	if !h.alive {
		return
	}
	d := h.node.NextDeadline()
	if d == 0 {
		return
	}
	h.wake = c.Sched.At(d, func() {
		if !h.alive {
			return
		}
		h.node.Tick(c.Sched.Now())
		c.drain(h)
	})
}

// Host returns the host for a site.
func (c *CraftCluster) Host(id types.NodeID) *CraftHost { return c.hosts[id] }

// Specs returns the deployment's cluster specifications.
func (c *CraftCluster) Specs() []ClusterSpec { return c.specs }

// RunFor advances virtual time by d.
func (c *CraftCluster) RunFor(d time.Duration) { c.Sched.RunUntil(c.Sched.Now() + d) }

// RunUntil steps the simulation until cond holds or deadline passes.
func (c *CraftCluster) RunUntil(cond func() bool, deadline time.Duration) bool {
	for {
		if cond() {
			return true
		}
		if c.Sched.Now() > deadline {
			return false
		}
		if !c.Sched.Step() {
			return cond()
		}
	}
}

// LocalLeader returns the current leader site of a cluster, if any.
func (c *CraftCluster) LocalLeader(cluster types.NodeID) (*CraftHost, bool) {
	var best *CraftHost
	for _, h := range c.hosts {
		if !h.alive || h.clust != cluster || h.node.Role() != types.RoleLeader {
			continue
		}
		if best == nil || h.node.Term() > best.node.Term() {
			best = h
		}
	}
	return best, best != nil
}

// GlobalLeaderCluster returns the cluster currently leading the global
// level, if any.
func (c *CraftCluster) GlobalLeaderCluster() (types.NodeID, bool) {
	var (
		best     types.NodeID
		bestTerm types.Term
		found    bool
	)
	for _, h := range c.hosts {
		if !h.alive || !h.node.IsGlobalMember() {
			continue
		}
		if h.node.GlobalRole() == types.RoleLeader && (!found || h.node.GlobalTerm() > bestTerm) {
			best, bestTerm, found = h.clust, h.node.GlobalTerm(), true
		}
	}
	return best, found
}

// WaitForLeaders runs until every cluster has a local leader and a global
// leader exists.
func (c *CraftCluster) WaitForLeaders(deadline time.Duration) bool {
	return c.RunUntil(func() bool {
		for _, spec := range c.specs {
			if _, ok := c.LocalLeader(spec.ID); !ok {
				return false
			}
		}
		_, ok := c.GlobalLeaderCluster()
		return ok
	}, deadline)
}

// Propose submits an application payload at the given site.
func (c *CraftCluster) Propose(id types.NodeID, data []byte) (types.ProposalID, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return types.ProposalID{}, fmt.Errorf("harness: site %s not running", id)
	}
	now := c.Sched.Now()
	pid := h.node.Propose(now, data)
	h.proposeStart[pid] = now
	c.drain(h)
	return pid, nil
}

// OpenSession proposes a client-session registration at the given site; the
// returned proposal resolves with the new session's ID.
func (c *CraftCluster) OpenSession(id types.NodeID) (types.ProposalID, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return types.ProposalID{}, fmt.Errorf("harness: site %s not running", id)
	}
	now := c.Sched.Now()
	pid := h.node.OpenSession(now)
	h.proposeStart[pid] = now
	c.drain(h)
	return pid, nil
}

// ProposeSession submits a payload under (sid, seq) at the given site.
func (c *CraftCluster) ProposeSession(id types.NodeID, sid types.SessionID, seq uint64, data []byte) (types.ProposalID, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return types.ProposalID{}, fmt.Errorf("harness: site %s not running", id)
	}
	now := c.Sched.Now()
	pid := h.node.ProposeSession(now, sid, seq, 0, data)
	h.proposeStart[pid] = now
	c.drain(h)
	return pid, nil
}

// AwaitResolution runs the simulation until the proposal tracked at site id
// resolves, returning its resolution index.
// Read registers a site-local read on the given site under the given
// consistency mode; await its local linearization index with AwaitRead.
func (c *CraftCluster) Read(id types.NodeID, consistency types.ReadConsistency) (uint64, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return 0, fmt.Errorf("harness: site %s not running", id)
	}
	token := h.node.Read(c.Sched.Now(), consistency)
	c.drain(h)
	return token, nil
}

// ReadGlobal registers a global-ring read on the given site (which must
// lead its cluster); await its global linearization index with AwaitRead.
func (c *CraftCluster) ReadGlobal(id types.NodeID, consistency types.ReadConsistency) (uint64, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return 0, fmt.Errorf("harness: site %s not running", id)
	}
	token := h.node.ReadGlobal(c.Sched.Now(), consistency)
	c.drain(h)
	return token, nil
}

// AwaitRead runs the simulation until the read tracked on site id
// resolves, returning its outcome.
func (c *CraftCluster) AwaitRead(id types.NodeID, token uint64, deadline time.Duration) (types.ReadDone, bool) {
	h := c.hosts[id]
	if h == nil {
		return types.ReadDone{}, false
	}
	ok := c.RunUntil(func() bool {
		_, done := h.readDone[token]
		return done
	}, deadline)
	if !ok {
		return types.ReadDone{}, false
	}
	return h.readDone[token], true
}

func (c *CraftCluster) AwaitResolution(id types.NodeID, pid types.ProposalID, deadline time.Duration) (types.Index, bool) {
	h := c.hosts[id]
	if h == nil {
		return 0, false
	}
	ok := c.RunUntil(func() bool {
		_, done := h.resolved[pid]
		return done
	}, deadline)
	if !ok {
		return 0, false
	}
	return h.resolved[pid], true
}

// Crash stops a site without warning.
func (c *CraftCluster) Crash(id types.NodeID) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return
	}
	h.alive = false
	if h.wake != nil {
		h.wake.Cancel()
		h.wake = nil
	}
	c.Net.Unregister(id)
	// Both layers' recording instances die with the site.
	c.Audit.NodeDown(string(id))
	c.Audit.NodeDown(string(id) + "/global")
	if c.endpointOwner[h.clust] == h.id {
		delete(c.endpointOwner, h.clust)
		c.Net.Unregister(h.clust)
	}
}

// Restart revives a crashed site from its stable storage.
func (c *CraftCluster) Restart(id types.NodeID) error {
	h := c.hosts[id]
	if h == nil {
		return fmt.Errorf("harness: unknown site %s", id)
	}
	if h.alive {
		return fmt.Errorf("harness: site %s already running", id)
	}
	var spec ClusterSpec
	for _, s := range c.specs {
		if s.ID == h.clust {
			spec = s
			break
		}
	}
	globalIDs := make([]types.NodeID, len(c.specs))
	for i, s := range c.specs {
		globalIDs[i] = s.ID
	}
	node, err := c.makeNode(spec, id, types.NewConfig(globalIDs...), h.store, h.rec)
	if err != nil {
		return err
	}
	h.node = node
	h.alive = true
	h.proposeStart = make(map[types.ProposalID]time.Duration)
	h.resolved = make(map[types.ProposalID]types.Index)
	h.readDone = make(map[uint64]types.ReadDone)
	c.Net.Register(id, func(env types.Envelope) {
		if !h.alive {
			return
		}
		h.node.Step(c.Sched.Now(), env)
		c.drain(h)
	})
	c.drain(h)
	return nil
}

// AddCluster forms a brand-new cluster at runtime: its sites boot with the
// cluster's local bootstrap, elect a local leader, and the leader joins the
// global configuration via the paper's global join protocol.
func (c *CraftCluster) AddCluster(spec ClusterSpec) error {
	for _, s := range c.specs {
		if s.ID == spec.ID {
			return fmt.Errorf("harness: cluster %s already exists", spec.ID)
		}
	}
	contacts := make([]types.NodeID, 0, len(c.specs))
	for _, s := range c.specs {
		contacts = append(contacts, s.ID)
	}
	c.specs = append(c.specs, spec)
	c.Net.Topology().SetRegion(string(spec.ID), spec.Region)
	for _, site := range spec.Sites {
		c.Net.Topology().SetRegion(string(site), spec.Region)
		h, err := c.addSite(spec, site, types.NewConfig()) // empty global bootstrap
		if err != nil {
			return err
		}
		h.node.JoinGlobal(c.Sched.Now(), contacts)
		c.drain(h)
	}
	return nil
}

// GlobalItemsCommitted sums application entries committed to the global log
// in the window [lo, hi).
func (c *CraftCluster) GlobalItemsCommitted(lo, hi time.Duration) int {
	total := 0
	for _, gc := range c.GlobalCommits {
		if gc.At >= lo && gc.At < hi {
			total += gc.Items
		}
	}
	return total
}

// StartProposer attaches a closed-loop proposer to a site (local commits
// gate the loop, as in the paper's throughput experiment).
func (c *CraftCluster) StartProposer(opts ProposerOptions) (*CraftProposer, error) {
	h := c.hosts[opts.Node]
	if h == nil {
		return nil, fmt.Errorf("harness: unknown proposer site %s", opts.Node)
	}
	if opts.PayloadSize == 0 {
		opts.PayloadSize = 16
	}
	p := &CraftProposer{c: c, opts: opts, Series: &stats.Series{}}
	h.OnResolve = func(_ types.ProposalID, at, latency time.Duration) {
		p.Series.Add(at, latency)
		p.Completed++
		p.next()
	}
	p.propose()
	return p, nil
}

// CraftProposer is a closed-loop proposer over a C-Raft site.
type CraftProposer struct {
	c    *CraftCluster
	opts ProposerOptions
	// Series records (completion time, latency) per resolved proposal.
	Series *stats.Series
	// Completed counts resolved proposals.
	Completed int
	seq       int
	stopped   bool
}

// Stop halts the proposer.
func (p *CraftProposer) Stop() { p.stopped = true }

func (p *CraftProposer) done() bool {
	if p.stopped {
		return true
	}
	if p.opts.MaxProposals > 0 && p.Completed >= p.opts.MaxProposals {
		return true
	}
	if p.opts.StopAfter > 0 && p.c.Sched.Now() >= p.opts.StopAfter {
		return true
	}
	return false
}

func (p *CraftProposer) next() {
	if p.done() {
		return
	}
	delay := p.opts.ThinkTime
	p.c.Sched.After(delay, p.propose)
}

func (p *CraftProposer) propose() {
	if p.done() {
		return
	}
	h := p.c.hosts[p.opts.Node]
	if h == nil || !h.alive {
		return
	}
	p.seq++
	payload := make([]byte, p.opts.PayloadSize)
	for i := range payload {
		payload[i] = byte(p.seq + i)
	}
	if _, err := p.c.Propose(p.opts.Node, payload); err != nil {
		p.stopped = true
	}
}
