package harness

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/raft"
	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/simnet"
	"github.com/hraft-io/hraft/internal/types"
)

// progressOf returns the machine's replication tracker (nil unless it
// currently leads).
func progressOf(m Machine) *replica.Tracker {
	switch v := m.(type) {
	case *fastraft.Node:
		return v.Progress()
	case *raft.Node:
		return v.Progress()
	default:
		return nil
	}
}

// metricsOf returns the machine's counter snapshot.
func metricsOf(m Machine) map[string]uint64 {
	return m.(interface{ Metrics() map[string]uint64 }).Metrics()
}

// testByteBudgetBoundedOnWire pins the byte-budgeted append window: with a
// small MaxInflightBytes and a generous message cap, a catching-up
// follower must converge through appends none of which carries more
// encoded entry bytes than the budget, the leader-side outstanding byte
// count must never exceed the budget, and the byte-throttle counter must
// move. The budget — not the message count — is the binding limit here.
func testByteBudgetBoundedOnWire(t *testing.T, kind Kind) {
	t.Helper()
	const (
		payload = 64
		count   = 40
	)
	// Size the budget at exactly three encoded entries so catch-up needs
	// many windows.
	probe := types.Entry{Index: 1 << 20, Term: 1 << 20, Kind: types.KindNormal,
		PID: types.ProposalID{Proposer: "n1", Seq: 1 << 20}, Data: make([]byte, payload)}
	budget := 3 * types.EntryWireSize(probe)
	c, err := NewCluster(Options{
		Kind:               kind,
		Nodes:              fiveNodes(),
		Seed:               41,
		MaxInflightAppends: 100, // deliberately slack: bytes must bind first
		MaxInflightBytes:   budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const lagger = types.NodeID("n5")
	c.Crash(lagger)
	p, err := c.StartProposer(ProposerOptions{Node: "n1", MaxProposals: count, PayloadSize: payload})
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(func() bool { return p.Completed >= count }, c.Sched.Now()+120*time.Second) {
		t.Fatalf("only %d/%d proposals resolved", p.Completed, count)
	}
	c.RunFor(2 * time.Second)

	// Tap the wire: per-message encoded entry bytes to the lagger.
	maxMsgBytes := 0
	c.Net.OnDeliver = func(env types.Envelope) {
		m, ok := env.Msg.(types.AppendEntries)
		if !ok || env.To != lagger {
			return
		}
		size := 0
		for i := range m.Entries {
			size += types.EntryWireSize(m.Entries[i])
		}
		if size > maxMsgBytes {
			maxMsgBytes = size
		}
	}
	if err := c.Restart(lagger); err != nil {
		t.Fatal(err)
	}
	maxInflightSeen := 0
	converged := c.RunUntil(func() bool {
		h, ok := c.Leader()
		if !ok {
			return false
		}
		if tr := progressOf(h.Machine()); tr != nil {
			if pr := tr.Get(lagger); pr != nil && pr.BytesInFlight() > maxInflightSeen {
				maxInflightSeen = pr.BytesInFlight()
			}
		}
		return c.Host(lagger).Machine().CommitIndex() >= h.Machine().CommitIndex()
	}, c.Sched.Now()+120*time.Second)
	if !converged {
		t.Fatalf("lagger did not converge (commit %d)", c.Host(lagger).Machine().CommitIndex())
	}
	if maxMsgBytes == 0 {
		t.Fatal("no entries observed on the wire; scenario broken")
	}
	if maxMsgBytes > budget {
		t.Fatalf("an AppendEntries carried %d encoded bytes, budget is %d", maxMsgBytes, budget)
	}
	if maxInflightSeen > budget {
		t.Fatalf("leader had %d bytes outstanding, budget is %d", maxInflightSeen, budget)
	}
	var throttled uint64
	for _, h := range c.Hosts() {
		throttled += metricsOf(h.Machine())[replica.CounterBytesThrottled]
	}
	if throttled == 0 {
		t.Fatal("byte budget never throttled a batch; scenario broken")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftByteBudgetBoundedOnWire(t *testing.T) {
	testByteBudgetBoundedOnWire(t, KindFastRaft)
}

func TestRaftByteBudgetBoundedOnWire(t *testing.T) {
	testByteBudgetBoundedOnWire(t, KindRaft)
}

// testSnapshotStreamResumesAcrossLeaderChange is the acceptance scenario
// for stream continuation: a chunked InstallSnapshot transfer is cut by
// crashing the leader mid-stream (under loss and duplication), and the
// successor must finish the install without re-sending the chunks the
// follower already acknowledged — no chunk from the new leader may carry
// an offset below the follower's position at the crash, and the
// resumption counter must move.
func testSnapshotStreamResumesAcrossLeaderChange(t *testing.T, kind Kind, seed int64) {
	t.Helper()
	const (
		threshold = 20
		chunkCap  = 4
	)
	c, err := NewCluster(Options{
		Kind:               kind,
		Nodes:              fiveNodes(),
		Seed:               seed,
		SnapshotThreshold:  threshold,
		MaxSnapshotChunk:   chunkCap,
		MaxInflightAppends: 1, // one chunk per ack round trip: a long stream
		LossProb:           0.10,
		DupProb:            0.05,
		// Keep silent-leave detection from reconfiguring around the churn.
		MemberTimeoutRounds: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(20 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const lagger = types.NodeID("n5")
	c.Crash(lagger)
	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+600*time.Second); err != nil {
		t.Fatalf("bulk proposals: %v", err)
	}
	c.RunFor(3 * time.Second)
	// Continuation requires the successor to hold the same snapshot: at
	// quiescence every alive node compacts at the same committed point.
	boundary := minAliveBoundary(t, c, lagger)
	if boundary == 0 {
		t.Fatal("no alive node compacted")
	}
	for id, h := range c.Hosts() {
		if id == lagger || !h.Alive() {
			continue
		}
		if b := minAliveBoundary(t, c, lagger); b != boundary {
			t.Fatalf("node %s compacted at %d, others at %d; scenario broken", id, b, boundary)
		}
	}

	// Tap: follower ack offsets, and every chunk send with its sender.
	var (
		maxAck      uint64
		crashed     bool
		oldLeader   types.NodeID
		ackAtCrash  uint64
		violation   *types.InstallSnapshot
		newChunks   int
		installDone bool
	)
	c.Net.OnDeliver = func(env types.Envelope) {
		switch m := env.Msg.(type) {
		case types.InstallSnapshotReply:
			if env.From == lagger {
				if m.Offset > maxAck {
					maxAck = m.Offset
				}
				if m.LastIndex >= boundary {
					installDone = true
				}
			}
		case types.InstallSnapshot:
			if env.To != lagger || m.Boundary != boundary {
				return
			}
			if crashed && env.From != oldLeader {
				newChunks++
				if m.Offset < ackAtCrash && violation == nil {
					v := m
					violation = &v
				}
			}
		}
	}
	if err := c.Restart(lagger); err != nil {
		t.Fatal(err)
	}
	// Let the stream reach mid-offset (at least two acked chunks), then
	// kill the leader.
	if !c.RunUntil(func() bool { return maxAck >= 2*chunkCap || installDone }, c.Sched.Now()+120*time.Second) {
		t.Fatal("stream never reached mid-offset")
	}
	if installDone {
		t.Fatal("install completed before the leader crash; stream too short for the scenario")
	}
	h, ok := c.Leader()
	if !ok {
		t.Fatal("no leader to crash")
	}
	oldLeader = h.ID()
	ackAtCrash = maxAck
	crashed = true
	c.Crash(oldLeader)

	converged := c.RunUntil(func() bool {
		l, ok := c.Leader()
		return ok && l.ID() != oldLeader &&
			c.Host(lagger).Machine().CommitIndex() >= boundary
	}, c.Sched.Now()+300*time.Second)
	if !converged {
		t.Fatalf("lagger did not converge after the leader change (commit %d, boundary %d)",
			c.Host(lagger).Machine().CommitIndex(), boundary)
	}
	if newChunks == 0 {
		t.Fatal("new leader sent no chunks; scenario broken")
	}
	if violation != nil {
		t.Fatalf("new leader re-sent acked chunk at offset %d (follower had %d at crash)",
			violation.Offset, ackAtCrash)
	}
	var resumed uint64
	for id, h := range c.Hosts() {
		if id == oldLeader || !h.Alive() {
			continue
		}
		resumed += metricsOf(h.Machine())[replica.CounterStreamsResumed]
	}
	if resumed == 0 {
		t.Fatal("no stream resumption counted on the successor")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftSnapshotStreamResumesAcrossLeaderChange(t *testing.T) {
	testSnapshotStreamResumesAcrossLeaderChange(t, KindFastRaft, 7)
}

func TestRaftSnapshotStreamResumesAcrossLeaderChange(t *testing.T) {
	testSnapshotStreamResumesAcrossLeaderChange(t, KindRaft, 7)
}

// TestAdaptiveResendTimeoutTracksLatency pins the EWMA retransmission
// timer against injected simnet latency: on a fast network the per-peer
// timeout shrinks from the static default down to the heartbeat-interval
// clamp; on a slow network it grows with the observed round trips, bounded
// by the election timeout.
func TestAdaptiveResendTimeoutTracksLatency(t *testing.T) {
	const hb = 100 * time.Millisecond
	run := func(rtt time.Duration) time.Duration {
		topo := simnet.NewTopology()
		topo.IntraRTT = rtt
		c, err := NewCluster(Options{
			Kind:              KindRaft,
			Nodes:             []types.NodeID{"n1", "n2", "n3"},
			Seed:              5,
			Topology:          topo,
			HeartbeatInterval: hb,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.WaitForLeader(20 * time.Second); !ok {
			t.Fatal("no leader")
		}
		if _, err := c.RunProposals("n1", 12, c.Sched.Now()+120*time.Second); err != nil {
			t.Fatal(err)
		}
		c.RunFor(time.Second)
		h, ok := c.Leader()
		if !ok {
			t.Fatal("leader lost")
		}
		tr := progressOf(h.Machine())
		if tr == nil {
			t.Fatal("leader has no tracker")
		}
		for _, peer := range h.Machine().Config().Others(h.ID()) {
			if pr := tr.Get(peer); pr != nil && pr.RTT() > 0 {
				return tr.ResendAfter(peer)
			}
		}
		t.Fatal("no peer accumulated round-trip samples")
		return 0
	}
	fast := run(2 * time.Millisecond)
	slow := run(120 * time.Millisecond)
	if fast != hb {
		t.Fatalf("fast-network RTO = %v, want shrunk to the heartbeat clamp %v", fast, hb)
	}
	if slow <= fast {
		t.Fatalf("slow-network RTO %v not above fast-network RTO %v", slow, fast)
	}
	if max := 3 * hb; slow > max {
		t.Fatalf("slow-network RTO %v exceeds the election-timeout clamp %v", slow, max)
	}
}
