package harness

import (
	"testing"
	"time"
)

// newGroupCommitCluster builds a cluster whose nodes run on group-commit
// storage: writes become durable only when the virtual-time fsync window
// fires, and Crash drops everything inside the open window (power loss).
// The strict auditor is attached by default, so any commit that leaned on
// a lost write fails the test.
func newGroupCommitCluster(t *testing.T, kind Kind, seed int64, loss float64) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{
		Kind:        kind,
		Nodes:       fiveNodes(),
		Seed:        seed,
		LossProb:    loss,
		GroupCommit: true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func testGroupCommitCommitsProposals(t *testing.T, kind Kind) {
	c := newGroupCommitCluster(t, kind, 11, 0)
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader elected under group commit")
	}
	if _, err := c.RunProposals(leader, 20, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRaftGroupCommitCommitsProposals(t *testing.T) {
	testGroupCommitCommitsProposals(t, KindRaft)
}

func TestFastRaftGroupCommitCommitsProposals(t *testing.T) {
	testGroupCommitCommitsProposals(t, KindFastRaft)
}

// testGroupCommitCrashRestart crashes the leader mid-window (losing its
// unsynced writes), checks the survivors elect a new leader and keep
// committing, then restarts the crashed node and checks it rejoins
// without contradicting any commit it acknowledged before the crash.
func testGroupCommitCrashRestart(t *testing.T, kind Kind, seed int64) {
	c := newGroupCommitCluster(t, kind, seed, 0)
	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader elected under group commit")
	}
	if _, err := c.RunProposals(leader, 10, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Keep a proposal stream going so the crash lands while writes are
	// still inside an open fsync window on the leader.
	p, err := c.StartProposer(ProposerOptions{Node: leader})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Millisecond)
	p.Stop()
	c.Crash(leader)

	next, ok := c.WaitForLeader(10 * time.Second)
	if !ok {
		t.Fatal("no leader elected after crashing the old one")
	}
	if next == leader {
		t.Fatalf("crashed node %s still reported as leader", leader)
	}
	if _, err := c.RunProposals(next, 10, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.Restart(leader); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunProposals(next, 10, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	ok = c.RunUntil(func() bool {
		return c.Host(leader).machine.CommitIndex() > 0
	}, 10*time.Second)
	if !ok {
		t.Fatal("restarted node never caught up")
	}
	if err := c.CommitsAgree(); err != nil {
		t.Fatal(err)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRaftGroupCommitCrashRestart(t *testing.T) {
	testGroupCommitCrashRestart(t, KindRaft, 21)
}

func TestFastRaftGroupCommitCrashRestart(t *testing.T) {
	testGroupCommitCrashRestart(t, KindFastRaft, 22)
}

// TestGroupCommitLossySweep runs the crash/restart scenario across seeds
// under message loss: durability gating must hold even when acks are
// arbitrarily delayed and retried.
func TestGroupCommitLossySweep(t *testing.T) {
	for _, kind := range []Kind{KindRaft, KindFastRaft} {
		for seed := int64(30); seed < 34; seed++ {
			c := newGroupCommitCluster(t, kind, seed, 0.05)
			leader, ok := c.WaitForLeader(20 * time.Second)
			if !ok {
				t.Fatalf("kind=%v seed=%d: no leader", kind, seed)
			}
			if _, err := c.RunProposals(leader, 10, 30*time.Second); err != nil {
				t.Fatalf("kind=%v seed=%d: %v", kind, seed, err)
			}
			c.Crash(leader)
			next, ok := c.WaitForLeader(30 * time.Second)
			if !ok {
				t.Fatalf("kind=%v seed=%d: no leader after crash", kind, seed)
			}
			if _, err := c.RunProposals(next, 10, 30*time.Second); err != nil {
				t.Fatalf("kind=%v seed=%d: %v", kind, seed, err)
			}
			if err := c.Restart(leader); err != nil {
				t.Fatalf("kind=%v seed=%d: %v", kind, seed, err)
			}
			c.RunFor(time.Second)
			if err := c.Safety.Err(); err != nil {
				t.Fatalf("kind=%v seed=%d: %v", kind, seed, err)
			}
		}
	}
}
