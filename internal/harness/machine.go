// Package harness runs consensus clusters on the deterministic simulator:
// it hosts classic Raft, Fast Raft and C-Raft state machines on simnet,
// drives closed-loop proposers, scripts churn (crashes, joins, silent
// leaves, partitions) and checks safety invariants continuously. The
// experiment harness in internal/bench is built on top of it.
package harness

import (
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// Machine is the sans-io node interface shared by classic Raft and Fast
// Raft nodes (C-Raft nodes wrap two of these).
type Machine interface {
	// ID returns the node's identity.
	ID() types.NodeID
	// Role returns the node's current role.
	Role() types.Role
	// Term returns the node's current term.
	Term() types.Term
	// LeaderID returns the node's view of the current leader.
	LeaderID() types.NodeID
	// CommitIndex returns the node's commit index.
	CommitIndex() types.Index
	// Config returns the node's active configuration.
	Config() types.Config
	// Step delivers a message.
	Step(now time.Duration, env types.Envelope)
	// Tick advances time.
	Tick(now time.Duration)
	// NextDeadline reports when the node next needs Tick (0 = never).
	NextDeadline() time.Duration
	// Propose submits an application payload.
	Propose(now time.Duration, data []byte) types.ProposalID
	// TakeOutbox drains outgoing messages.
	TakeOutbox() []types.Envelope
	// TakeCommitted drains newly committed entries.
	TakeCommitted() []types.Entry
	// TakeResolved drains local proposal resolutions.
	TakeResolved() []types.Resolution
	// PendingProposals counts unresolved local proposals.
	PendingProposals() int
	// Read registers a linearizable read under the given consistency mode
	// and returns its token (see internal/readpath).
	Read(now time.Duration, c types.ReadConsistency) uint64
	// TakeReadDone drains resolved reads.
	TakeReadDone() []types.ReadDone
	// SyncDone advances the node's storage durability horizon (a no-op
	// with synchronous storage; see internal/durable).
	SyncDone(now time.Duration, durableLSN uint64)
}
