package harness

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// TestPropertyFastRaftSafetyUnderChaos runs many independently seeded
// scenarios that combine message loss, leader crashes, restarts,
// partitions and membership churn under continuous proposal load, and
// asserts the paper's safety property (Definition 2.1) plus election
// safety on every one.
func TestPropertyFastRaftSafetyUnderChaos(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosScenario(t, seed)
		})
	}
}

func runChaosScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed * 7919))
	nodes := fiveNodes()
	c, err := NewCluster(Options{
		Kind:     KindFastRaft,
		Nodes:    nodes,
		Seed:     seed,
		LossProb: []float64{0, 0.02, 0.05, 0.10}[rng.Intn(4)],
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(30 * time.Second); !ok {
		t.Fatal("no initial leader")
	}
	// Two proposers under closed loop for the whole run.
	for _, p := range []types.NodeID{"n1", "n2"} {
		if _, err := c.StartProposer(ProposerOptions{Node: p, StopAfter: c.Sched.Now() + 60*time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	// Chaos script: one random fault every ~5 virtual seconds.
	crashed := make(map[types.NodeID]bool)
	for i := 1; i <= 10; i++ {
		at := c.Sched.Now() + time.Duration(i)*5*time.Second
		c.Sched.At(at, func() {
			switch rng.Intn(5) {
			case 0: // crash the current leader
				if h, ok := c.Leader(); ok && len(crashed) < 2 {
					crashed[h.ID()] = true
					c.Crash(h.ID())
				}
			case 1: // crash a random follower
				id := nodes[rng.Intn(len(nodes))]
				if h := c.Host(id); h != nil && h.Alive() && len(crashed) < 2 {
					if l, ok := c.Leader(); !ok || l.ID() != id {
						crashed[id] = true
						c.Crash(id)
					}
				}
			case 2: // restart someone
				for id := range crashed {
					delete(crashed, id)
					if err := c.Restart(id); err != nil {
						t.Errorf("restart %s: %v", id, err)
					}
					break
				}
			case 3: // short partition
				cut := nodes[rng.Intn(len(nodes))]
				rest := make([]types.NodeID, 0, len(nodes)-1)
				for _, id := range nodes {
					if id != cut {
						rest = append(rest, id)
					}
				}
				c.Net.Partition([]types.NodeID{cut}, rest)
				c.Sched.After(3*time.Second, c.Net.Heal)
			case 4: // graceful leave + later rejoin via the join protocol
				id := nodes[2+rng.Intn(3)]
				if h := c.Host(id); h != nil && h.Alive() {
					_ = c.Leave(id)
				}
			}
		})
	}
	c.RunUntil(func() bool { return false }, 70*time.Second)
	for _, err := range c.Safety.Errors() {
		t.Error(err)
	}
	if c.Safety.Committed("") == 0 {
		t.Error("scenario committed nothing at all")
	}
}

// TestPropertyCRaftSafetyUnderChurn subjects a two-cluster C-Raft
// deployment to local leader crashes and loss while both clusters batch
// into the global log, asserting safety on the global log and on every
// cluster's local log.
func TestPropertyCRaftSafetyUnderChurn(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCraftChurnScenario(t, seed)
		})
	}
}

func runCraftChurnScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed * 104729))
	specs := []ClusterSpec{
		{ID: "cA", Sites: ids("a1", "a2", "a3"), Region: "us-east-1"},
		{ID: "cB", Sites: ids("b1", "b2", "b3"), Region: "eu-west-1"},
	}
	c, err := NewCraftCluster(CraftOptions{
		Clusters: specs,
		Seed:     seed,
		LossProb: []float64{0, 0.02}[rng.Intn(2)],
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitForLeaders(time.Minute) {
		t.Fatal("leaders not elected")
	}
	end := c.Sched.Now() + 90*time.Second
	for _, spec := range specs {
		// Proposers on two sites per cluster to survive crashes.
		for _, site := range spec.Sites[:2] {
			if _, err := c.StartProposer(ProposerOptions{Node: site, StopAfter: end}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash-and-restart local leaders a few times during the run.
	crashedAt := make(map[types.NodeID]types.NodeID) // cluster -> crashed site
	for i := 1; i <= 5; i++ {
		at := c.Sched.Now() + time.Duration(i)*15*time.Second
		c.Sched.At(at, func() {
			spec := specs[rng.Intn(len(specs))]
			if prev, ok := crashedAt[spec.ID]; ok {
				delete(crashedAt, spec.ID)
				if err := c.Restart(prev); err != nil {
					t.Errorf("restart %s: %v", prev, err)
				}
				return
			}
			if h, ok := c.LocalLeader(spec.ID); ok {
				crashedAt[spec.ID] = h.ID()
				c.Crash(h.ID())
			}
		})
	}
	c.RunUntil(func() bool { return false }, end+10*time.Second)
	for _, err := range c.Safety.Errors() {
		t.Error(err)
	}
	if c.Safety.Committed("global") == 0 {
		t.Error("nothing committed to the global log")
	}
}

// TestPropertyLivenessAfterQuorumRestore checks Definition 2.2 under the
// paper's liveness conditions: after arbitrary crashes, as long as a
// classic quorum is restored and a leader holds long enough, every pending
// proposal eventually commits.
func TestPropertyLivenessAfterQuorumRestore(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c, err := NewCluster(Options{Kind: KindFastRaft, Nodes: fiveNodes(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.WaitForLeader(30 * time.Second); !ok {
			t.Fatal("no leader")
		}
		// Crash a majority: consensus must stall.
		c.Crash("n3")
		c.Crash("n4")
		c.Crash("n5")
		p, err := c.StartProposer(ProposerOptions{Node: "n1", MaxProposals: 5})
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(5 * time.Second)
		stalled := p.Completed
		// Restore the quorum: everything must drain.
		if err := c.Restart("n3"); err != nil {
			t.Fatal(err)
		}
		if err := c.Restart("n4"); err != nil {
			t.Fatal(err)
		}
		ok := c.RunUntil(func() bool { return p.Completed >= 5 }, c.Sched.Now()+2*time.Minute)
		if !ok {
			t.Fatalf("seed %d: stalled at %d then %d/5 after quorum restore",
				seed, stalled, p.Completed)
		}
		if err := c.Safety.Err(); err != nil {
			t.Fatal(err)
		}
	}
}
