package harness

import (
	"fmt"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/types"
)

// TestReadIndexBasic proves the happy path on both flat cores: a
// linearizable read returns an index at or beyond every write that
// completed before it was issued, whether served on the leader or
// forwarded from a follower — and writes nothing to the log.
func TestReadIndexBasic(t *testing.T) {
	for _, kind := range []Kind{KindRaft, KindFastRaft} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newTestCluster(t, kind, 11, 0)
			leader, ok := c.WaitForLeader(10 * time.Second)
			if !ok {
				t.Fatal("no leader")
			}
			pid, _ := c.Propose(leader, []byte("w1"))
			wIdx, ok := c.AwaitResolution(leader, pid, c.Sched.Now()+10*time.Second)
			if !ok {
				t.Fatal("write never resolved")
			}
			// Leader-served read.
			tok, err := c.Read(leader, types.ReadLinearizable)
			if err != nil {
				t.Fatal(err)
			}
			d, ok := c.AwaitRead(leader, tok, c.Sched.Now()+10*time.Second)
			if !ok || !d.OK {
				t.Fatalf("leader read not confirmed: %+v ok=%v", d, ok)
			}
			if d.Index < wIdx {
				t.Fatalf("leader read index %d below completed write %d", d.Index, wIdx)
			}
			// Follower-forwarded read.
			var follower types.NodeID
			for _, id := range fiveNodes() {
				if id != leader {
					follower = id
					break
				}
			}
			tok, err = c.Read(follower, types.ReadLinearizable)
			if err != nil {
				t.Fatal(err)
			}
			d, ok = c.AwaitRead(follower, tok, c.Sched.Now()+10*time.Second)
			if !ok || !d.OK || d.Index < wIdx {
				t.Fatalf("forwarded read = %+v (ok=%v), want index >= %d", d, ok, wIdx)
			}
			// Stale reads resolve locally and instantly.
			tok, err = c.Read(follower, types.ReadStale)
			if err != nil {
				t.Fatal(err)
			}
			if d, ok := c.Host(follower).ReadResult(tok); !ok || !d.OK {
				t.Fatalf("stale read not served synchronously: %+v ok=%v", d, ok)
			}
			if err := c.Safety.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSingleNodeReads pins reads on a single-member cluster (the
// start-then-Join bootstrap shape): the leader's implicit self-ack is the
// whole quorum, so ReadIndex and lease reads must both resolve.
func TestSingleNodeReads(t *testing.T) {
	for _, kind := range []Kind{KindRaft, KindFastRaft} {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(Options{Kind: kind, Nodes: ids("n1"), Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			leader, ok := c.WaitForLeader(10 * time.Second)
			if !ok {
				t.Fatal("no leader")
			}
			pid, _ := c.Propose(leader, []byte("w"))
			wIdx, ok := c.AwaitResolution(leader, pid, c.Sched.Now()+10*time.Second)
			if !ok {
				t.Fatal("write never resolved")
			}
			for _, cons := range []types.ReadConsistency{types.ReadLinearizable, types.ReadLeaseBased} {
				tok, err := c.Read(leader, cons)
				if err != nil {
					t.Fatal(err)
				}
				d, ok := c.AwaitRead(leader, tok, c.Sched.Now()+10*time.Second)
				if !ok || !d.OK || d.Index < wIdx {
					t.Fatalf("%v single-node read = %+v (ok=%v), want index >= %d", cons, d, ok, wIdx)
				}
			}
		})
	}
}

// TestReadLinearizableAcrossFailover is acceptance test (a): a read issued
// on a leader that is then partitioned away never returns state the
// healed cluster contradicts, and a read issued after a newer write
// committed on the majority side returns an index at or beyond that write
// — no stale read is ever observed across a forced failover.
func TestReadLinearizableAcrossFailover(t *testing.T) {
	for _, kind := range []Kind{KindRaft, KindFastRaft} {
		t.Run(kind.String(), func(t *testing.T) {
			// A generous silent-leave threshold keeps the partitioned
			// leader a member: this test is about read safety across a
			// failover, not about removal of a silent site.
			c, err := NewCluster(Options{
				Kind: kind, Nodes: fiveNodes(), Seed: 23, MemberTimeoutRounds: 1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			oldLeader, ok := c.WaitForLeader(10 * time.Second)
			if !ok {
				t.Fatal("no leader")
			}
			pid, _ := c.Propose(oldLeader, []byte("w1"))
			w1, ok := c.AwaitResolution(oldLeader, pid, c.Sched.Now()+10*time.Second)
			if !ok {
				t.Fatal("w1 never resolved")
			}
			// Cut the leader off and read on it: the read must NOT resolve
			// while it cannot confirm a quorum.
			var rest []types.NodeID
			for _, id := range fiveNodes() {
				if id != oldLeader {
					rest = append(rest, id)
				}
			}
			c.Net.Partition([]types.NodeID{oldLeader}, rest)
			r2, err := c.Read(oldLeader, types.ReadLinearizable)
			if err != nil {
				t.Fatal(err)
			}
			c.RunFor(2 * time.Second)
			if d, done := c.Host(oldLeader).ReadResult(r2); done {
				t.Fatalf("partitioned leader confirmed a read without quorum: %+v", d)
			}
			// The majority elects a successor and commits a newer write.
			oldTerm := c.Host(oldLeader).Machine().Term()
			ok = c.RunUntil(func() bool {
				h, has := c.Leader()
				return has && h.ID() != oldLeader && h.Machine().Term() > oldTerm
			}, c.Sched.Now()+30*time.Second)
			if !ok {
				t.Fatal("no successor elected")
			}
			successor, _ := c.Leader()
			pid2, _ := c.Propose(successor.ID(), []byte("w2"))
			w2, ok := c.AwaitResolution(successor.ID(), pid2, c.Sched.Now()+10*time.Second)
			if !ok {
				t.Fatal("w2 never resolved")
			}
			// A read issued (on the deposed leader) AFTER w2 completed:
			// once the partition heals it must observe w2.
			r3, err := c.Read(oldLeader, types.ReadLinearizable)
			if err != nil {
				t.Fatal(err)
			}
			c.RunFor(time.Second)
			c.Net.Heal()
			d3, ok := c.AwaitRead(oldLeader, r3, c.Sched.Now()+30*time.Second)
			if !ok || !d3.OK {
				t.Fatalf("post-failover read never confirmed: %+v ok=%v", d3, ok)
			}
			if d3.Index < w2 {
				t.Fatalf("STALE READ: read issued after w2 (index %d) linearized at %d", w2, d3.Index)
			}
			// The earlier read is only bound by writes completed before it.
			d2, ok := c.AwaitRead(oldLeader, r2, c.Sched.Now()+30*time.Second)
			if !ok || !d2.OK || d2.Index < w1 {
				t.Fatalf("pre-partition read = %+v (ok=%v), want index >= %d", d2, ok, w1)
			}
			if err := c.Safety.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLeaseReadRefusedByDeposedLeader is acceptance test (b): after a
// forced failover, the deposed leader's lease has lapsed, so a
// lease-based read on it is never served from stale local state — it
// falls back to ReadIndex, stays unresolved while partitioned, and after
// heal resolves against the successor at or beyond the successor's
// writes.
func TestLeaseReadRefusedByDeposedLeader(t *testing.T) {
	// Generous silent-leave threshold: the deposed leader must stay a
	// member so the healed cluster answers its forwarded reads.
	c, err := NewCluster(Options{
		Kind: KindFastRaft, Nodes: fiveNodes(), Seed: 31, MemberTimeoutRounds: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	oldLeader, ok := c.WaitForLeader(10 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	// Warm the lease: one awaited lease read, then one that must be served
	// clock-free.
	tok, _ := c.Read(oldLeader, types.ReadLeaseBased)
	if _, ok := c.AwaitRead(oldLeader, tok, c.Sched.Now()+10*time.Second); !ok {
		t.Fatal("warm-up lease read never resolved")
	}
	before := metricsOf(c.Host(oldLeader).Machine())["readpath.reads_lease"]
	tok, _ = c.Read(oldLeader, types.ReadLeaseBased)
	if d, done := c.Host(oldLeader).ReadResult(tok); !done || !d.OK {
		t.Fatalf("lease read not served instantly while lease valid: %+v done=%v", d, done)
	}
	if after := metricsOf(c.Host(oldLeader).Machine())["readpath.reads_lease"]; after != before+1 {
		t.Fatalf("reads_lease = %d, want %d", after, before+1)
	}
	// Depose: partition the leader, let its lease lapse and the majority
	// elect a successor that commits a newer write.
	var rest []types.NodeID
	for _, id := range fiveNodes() {
		if id != oldLeader {
			rest = append(rest, id)
		}
	}
	c.Net.Partition([]types.NodeID{oldLeader}, rest)
	c.RunFor(3 * time.Second) // >> the lease window (bounded by the election timeout)
	successor, hasLeader := c.Leader()
	if !hasLeader || successor.ID() == oldLeader {
		t.Fatal("no successor elected on the majority side")
	}
	pid, _ := c.Propose(successor.ID(), []byte("w2"))
	w2, ok := c.AwaitResolution(successor.ID(), pid, c.Sched.Now()+10*time.Second)
	if !ok {
		t.Fatal("w2 never resolved")
	}
	// The deposed leader must refuse to serve the lease read locally.
	tok, _ = c.Read(oldLeader, types.ReadLeaseBased)
	c.RunFor(2 * time.Second)
	if d, done := c.Host(oldLeader).ReadResult(tok); done {
		t.Fatalf("deposed leader served a lease read while partitioned: %+v", d)
	}
	if got := metricsOf(c.Host(oldLeader).Machine())["readpath.batches_expired"]; got == 0 {
		t.Fatal("missed quorum never expired a batch on the deposed leader")
	}
	c.Net.Heal()
	d, ok := c.AwaitRead(oldLeader, tok, c.Sched.Now()+30*time.Second)
	if !ok || !d.OK {
		t.Fatalf("read never resolved after heal: %+v ok=%v", d, ok)
	}
	if d.Index < w2 {
		t.Fatalf("STALE LEASE READ: linearized at %d, below successor write %d", d.Index, w2)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseReadsZeroAppendsZeroRounds pins the lease fast path's
// acceptance bound: inside the lease window, reads complete with zero log
// appends and zero extra quorum rounds — nothing at all goes on the wire.
func TestLeaseReadsZeroAppendsZeroRounds(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 41, 0)
	leader, ok := c.WaitForLeader(10 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	pid, _ := c.Propose(leader, []byte("w"))
	if _, ok := c.AwaitResolution(leader, pid, c.Sched.Now()+10*time.Second); !ok {
		t.Fatal("write never resolved")
	}
	tok, _ := c.Read(leader, types.ReadLeaseBased)
	if _, ok := c.AwaitRead(leader, tok, c.Sched.Now()+10*time.Second); !ok {
		t.Fatal("warm-up read never resolved")
	}
	fr := c.Host(leader).Machine().(*fastraft.Node)
	lastBefore := fr.LastIndex()
	sent := 0
	c.Net.OnDeliver = func(env types.Envelope) { sent++ }
	defer func() { c.Net.OnDeliver = nil }()
	// All reads issue at one virtual instant inside the lease window: each
	// must resolve synchronously, with no messages and no appends.
	const reads = 50
	for i := 0; i < reads; i++ {
		tok, err := c.Read(leader, types.ReadLeaseBased)
		if err != nil {
			t.Fatal(err)
		}
		d, done := c.Host(leader).ReadResult(tok)
		if !done || !d.OK {
			t.Fatalf("lease read %d not served synchronously (done=%v %+v)", i, done, d)
		}
	}
	if sent != 0 {
		t.Fatalf("lease reads put %d messages on the wire, want 0", sent)
	}
	if got := fr.LastIndex(); got != lastBefore {
		t.Fatalf("lease reads appended log entries: last index %d -> %d", lastBefore, got)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestReadBatchingCollapsesConcurrentReads is acceptance test (d): N
// concurrent ReadIndex reads collapse into a single confirmation round —
// one read batch, confirmed by tap-counted heartbeats of at most two
// broadcast rounds (issue-to-release may straddle one tick boundary).
func TestReadBatchingCollapsesConcurrentReads(t *testing.T) {
	c := newTestCluster(t, KindRaft, 53, 0) // classic Raft: no lease shortcut taken
	leader, ok := c.WaitForLeader(10 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	pid, _ := c.Propose(leader, []byte("w"))
	if _, ok := c.AwaitResolution(leader, pid, c.Sched.Now()+10*time.Second); !ok {
		t.Fatal("write never resolved")
	}
	batchesBefore := metricsOf(c.Host(leader).Machine())["readpath.read_batches"]
	heartbeats := 0
	c.Net.OnDeliver = func(env types.Envelope) {
		if m, ok := env.Msg.(types.AppendEntries); ok && env.From == leader && m.ReadCtx != 0 {
			heartbeats++
		}
	}
	defer func() { c.Net.OnDeliver = nil }()
	const reads = 10
	toks := make([]uint64, reads)
	for i := range toks {
		tok, err := c.Read(leader, types.ReadLinearizable)
		if err != nil {
			t.Fatal(err)
		}
		toks[i] = tok
	}
	for i, tok := range toks {
		d, ok := c.AwaitRead(leader, tok, c.Sched.Now()+10*time.Second)
		if !ok || !d.OK {
			t.Fatalf("read %d never confirmed (%+v ok=%v)", i, d, ok)
		}
	}
	if got := metricsOf(c.Host(leader).Machine())["readpath.read_batches"] - batchesBefore; got != 1 {
		t.Fatalf("%d concurrent reads used %d read batches, want 1", reads, got)
	}
	// One broadcast round is 4 heartbeats (5 nodes); allow the release to
	// straddle a second round, but N reads must not cost N rounds.
	if rounds := (heartbeats + 3) / 4; rounds > 2 {
		t.Fatalf("%d concurrent reads consumed %d heartbeat rounds (%d msgs), want <= 2",
			reads, rounds, heartbeats)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCRaftLocalReadsDuringGlobalPartition is acceptance test (c): with
// the inter-cluster links severed, site-local linearizable reads keep
// completing at intra-cluster latency — while a global-ring read cannot
// confirm until the partition heals (the escalation rule's cost is paid
// only when global confirmation is demanded).
func TestCRaftLocalReadsDuringGlobalPartition(t *testing.T) {
	c := newCraft(t, twoClusterSpecs(), 7, 0)
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	pid, err := c.Propose("a1", []byte("w"))
	if err != nil {
		t.Fatal(err)
	}
	wIdx, ok := c.AwaitResolution("a1", pid, c.Sched.Now()+30*time.Second)
	if !ok {
		t.Fatal("local write never resolved")
	}
	// Sever the clusters (sites and cluster endpoints alike).
	groupA := append(ids("a1", "a2", "a3"), "cA")
	groupB := append(ids("b1", "b2", "b3"), "cB")
	c.Net.Partition(groupA, groupB)
	c.RunFor(2 * time.Second)

	// Site-local reads still linearize within the cluster.
	tok, err := c.Read("a1", types.ReadLinearizable)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := c.AwaitRead("a1", tok, c.Sched.Now()+10*time.Second)
	if !ok || !d.OK {
		t.Fatalf("local read failed during global partition: %+v ok=%v", d, ok)
	}
	if d.Index < wIdx {
		t.Fatalf("local read index %d below completed local write %d", d.Index, wIdx)
	}

	// A global read from the cluster leader cannot confirm against the
	// two-cluster ring while partitioned; it resolves only after heal.
	aLeader, ok := c.LocalLeader("cA")
	if !ok {
		t.Fatal("no cA leader")
	}
	gtok, err := c.ReadGlobal(aLeader.ID(), types.ReadLinearizable)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * time.Second)
	if d, done := aLeader.ReadResult(gtok); done && d.OK {
		t.Fatalf("global read confirmed during partition: %+v", d)
	}
	c.Net.Heal()
	gd, ok := c.AwaitRead(aLeader.ID(), gtok, c.Sched.Now()+60*time.Second)
	if !ok {
		t.Fatal("global read never resolved after heal")
	}
	// A local leadership wobble during the partition may fail the global
	// read (OK=false, retry-at-caller); a confirmed one must carry a real
	// global index.
	if gd.OK && gd.Index == 0 {
		t.Fatalf("confirmed global read carries no index: %+v", gd)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestProposerByteBackpressure pins the byte-based proposer window
// (MaxInflightProposalBytes): a burst of large proposals queues beyond
// the byte budget instead of broadcasting, and every proposal still
// resolves as the window drains.
func TestProposerByteBackpressure(t *testing.T) {
	const budget = 600
	c, err := NewCluster(Options{
		Kind:                     KindFastRaft,
		Nodes:                    fiveNodes(),
		Seed:                     61,
		MaxInflightProposalBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n2")
	fr := c.Host(proposer).Machine().(*fastraft.Node)
	payload := make([]byte, 200) // ~3 proposals fit the 600-byte budget
	const burst = 12
	pids := make([]types.ProposalID, 0, burst)
	maxQueued := 0
	for i := 0; i < burst; i++ {
		copy(payload, fmt.Sprintf("payload-%02d", i))
		pid, err := c.Propose(proposer, payload)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, pid)
		if q := fr.QueuedProposals(); q > maxQueued {
			maxQueued = q
		}
	}
	if maxQueued == 0 {
		t.Fatal("burst beyond the byte budget never queued a proposal")
	}
	for i, pid := range pids {
		if _, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second); !ok {
			t.Fatalf("proposal %d never resolved under byte backpressure", i)
		}
	}
	if got := metricsOf(c.Host(proposer).Machine())["fastraft.proposals_byte_queued"]; got == 0 {
		t.Fatal("byte-queued counter never moved")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}
