package harness

import (
	"fmt"

	"github.com/hraft-io/hraft/internal/types"
)

// SafetyChecker validates the paper's safety property across a run: within
// each log group ("" for a flat cluster, a cluster name for C-Raft local
// logs, "global" for the C-Raft global log), no two commits — from any
// node, term or restart — may disagree on the entry at an index. It also
// checks election safety (at most one leader per term per group).
type SafetyChecker struct {
	committed map[string]map[types.Index]committedAt
	leaders   map[string]map[types.Term]types.NodeID
	errs      []error
}

type committedAt struct {
	key  string
	node types.NodeID
}

// NewSafetyChecker returns an empty checker.
func NewSafetyChecker() *SafetyChecker {
	return &SafetyChecker{
		committed: make(map[string]map[types.Index]committedAt),
		leaders:   make(map[string]map[types.Term]types.NodeID),
	}
}

// entryKey identifies an entry's value for conflict detection.
func entryKey(e types.Entry) string {
	if !e.PID.IsZero() {
		return e.PID.String()
	}
	return fmt.Sprintf("%s:%x", e.Kind, e.Data)
}

// RecordCommit registers that node committed e at e.Index within group.
func (c *SafetyChecker) RecordCommit(group string, node types.NodeID, e types.Entry) {
	g := c.committed[group]
	if g == nil {
		g = make(map[types.Index]committedAt)
		c.committed[group] = g
	}
	k := entryKey(e)
	if prev, ok := g[e.Index]; ok {
		if prev.key != k {
			c.errs = append(c.errs, fmt.Errorf(
				"safety violation in %q at index %d: %s committed %s but %s committed %s",
				group, e.Index, prev.node, prev.key, node, k))
		}
		return
	}
	g[e.Index] = committedAt{key: k, node: node}
}

// RecordLeader registers an observed leader for a term within group.
func (c *SafetyChecker) RecordLeader(group string, term types.Term, node types.NodeID) {
	g := c.leaders[group]
	if g == nil {
		g = make(map[types.Term]types.NodeID)
		c.leaders[group] = g
	}
	if prev, ok := g[term]; ok {
		if prev != node {
			c.errs = append(c.errs, fmt.Errorf(
				"election safety violation in %q: term %d has leaders %s and %s",
				group, term, prev, node))
		}
		return
	}
	g[term] = node
}

// Committed returns the number of distinct committed indices in group.
func (c *SafetyChecker) Committed(group string) int {
	return len(c.committed[group])
}

// Errors returns all violations found so far.
func (c *SafetyChecker) Errors() []error { return c.errs }

// Err returns the first violation, or nil.
func (c *SafetyChecker) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs[0]
}
