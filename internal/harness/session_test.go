package harness

import (
	"bytes"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/raft"
	"github.com/hraft-io/hraft/internal/types"
)

// countApplies attaches an apply counter for payload to every host's
// state-machine view (session duplicates never reach it).
func countApplies(c *Cluster, payload []byte) map[types.NodeID]*int {
	counts := make(map[types.NodeID]*int)
	for id, h := range c.Hosts() {
		n := new(int)
		counts[id] = n
		h.OnCommit = func(e types.Entry) {
			if e.Kind == types.KindNormal && bytes.Equal(e.Data, payload) {
				*n++
			}
		}
	}
	return counts
}

// runDoubleCommitScenario drives the ROADMAP double-commit sequence —
// propose → commit → compact past it → crash the proposer → restart →
// retry — and returns how many times the observer node applied the payload
// plus the retry's resolution index. withSessions selects the retry
// identity: a session (SessionID, seq) that survives the restart, or a
// plain re-propose — whose ProposalID collides with the original because
// the restarted proposer's in-memory sequence counter reset.
func runDoubleCommitScenario(t *testing.T, withSessions bool) (applies int, firstIdx, retryIdx types.Index) {
	t.Helper()
	const threshold = 8
	c, err := NewCluster(Options{
		Kind:              KindFastRaft,
		Nodes:             fiveNodes(),
		Seed:              17,
		SnapshotThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n3")
	const observer = types.NodeID("n1")
	payload := []byte("exactly-once-me")
	counts := countApplies(c, payload)

	var sid types.SessionID
	if withSessions {
		pid, err := c.OpenSession(proposer)
		if err != nil {
			t.Fatal(err)
		}
		idx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
		if !ok || idx == 0 {
			t.Fatalf("session open did not resolve (idx=%d ok=%v)", idx, ok)
		}
		sid = types.SessionID(idx)
	}

	// The proposal commits and the proposer learns it (this is the point
	// where a real client's acknowledgment gets lost).
	var pid types.ProposalID
	if withSessions {
		pid, err = c.ProposeSession(proposer, sid, 1, payload)
	} else {
		pid, err = c.Propose(proposer, payload)
	}
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	firstIdx, ok = c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || firstIdx == 0 {
		t.Fatalf("first proposal did not commit (idx=%d ok=%v)", firstIdx, ok)
	}

	// Push every node's compaction boundary past the committed entry.
	if _, err := c.RunProposals("n2", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	fr := c.Host(proposer).Machine().(*fastraft.Node)
	if fr.SnapshotIndex() < firstIdx {
		t.Fatalf("scenario broken: proposer boundary %d below entry %d", fr.SnapshotIndex(), firstIdx)
	}

	// Crash and restart the proposer: its in-memory PID map and pending
	// proposals are gone; only the snapshot survives.
	c.Crash(proposer)
	c.RunFor(2 * time.Second)
	if err := c.Restart(proposer); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)

	// The client never saw the acknowledgment and retries.
	if withSessions {
		pid, err = c.ProposeSession(proposer, sid, 1, payload)
	} else {
		pid, err = c.Propose(proposer, payload)
	}
	if err != nil {
		t.Fatal(err)
	}
	retryIdx, ok = c.AwaitResolution(proposer, pid, c.Sched.Now()+60*time.Second)
	if !ok {
		t.Fatal("retry did not resolve")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	return *counts[observer], firstIdx, retryIdx
}

// TestSessionlessRetryWindowDedups: the retry reuses the original
// ProposalID (the proposer's in-memory sequence counter reset with it), and
// although compaction dropped the entry from every log, the leader's
// bounded window of recently compacted PIDs still resolves the retry to its
// original index — one apply, no duplicate. The guarantee is best-effort:
// TestDoubleCommitWhenWindowEvicted shows where it ends, and sessions
// remain the real exactly-once mechanism.
func TestSessionlessRetryWindowDedups(t *testing.T) {
	applies, firstIdx, retryIdx := runDoubleCommitScenario(t, false)
	if applies != 1 {
		t.Fatalf("observer applied payload %d times, want 1 (retry-window dedup)", applies)
	}
	if retryIdx != firstIdx {
		t.Fatalf("retry resolved to %d, want the original commit index %d", retryIdx, firstIdx)
	}
}

// TestRestartedProposerFreshProposalCommits pins the flip side of the
// retry window: after a crash-restart resets the proposer's in-memory
// sequence counter, its first proposal reuses a ProposalID that other
// nodes still remember in the compacted window — but it carries NEW bytes,
// so it is a fresh proposal, not a retry. It must commit at a fresh index
// and apply, rather than be acknowledged with the old entry's index and
// silently dropped.
func TestRestartedProposerFreshProposalCommits(t *testing.T) {
	const threshold = 8
	c, err := NewCluster(Options{
		Kind:              KindFastRaft,
		Nodes:             fiveNodes(),
		Seed:              17,
		SnapshotThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n3")
	const observer = types.NodeID("n1")
	newPayload := []byte("post-restart-write")
	counts := countApplies(c, newPayload)

	pid, err := c.Propose(proposer, []byte("pre-crash-write"))
	if err != nil {
		t.Fatal(err)
	}
	firstIdx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || firstIdx == 0 {
		t.Fatalf("first proposal did not commit (idx=%d ok=%v)", firstIdx, ok)
	}

	// Push every node's compaction boundary past the committed entry so the
	// old mapping lives in the retry window, then crash-restart the
	// proposer to reset its sequence counter.
	if _, err := c.RunProposals("n2", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if fr := c.Host(proposer).Machine().(*fastraft.Node); fr.SnapshotIndex() < firstIdx {
		t.Fatalf("scenario broken: boundary %d below entry %d", fr.SnapshotIndex(), firstIdx)
	}
	c.Crash(proposer)
	c.RunFor(2 * time.Second)
	if err := c.Restart(proposer); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)

	// Same ProposalID as the pre-crash write, different bytes.
	pid, err = c.Propose(proposer, newPayload)
	if err != nil {
		t.Fatal(err)
	}
	freshIdx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+60*time.Second)
	if !ok || freshIdx == 0 {
		t.Fatalf("fresh proposal did not commit (idx=%d ok=%v)", freshIdx, ok)
	}
	if freshIdx == firstIdx {
		t.Fatalf("fresh proposal acknowledged with the old entry's index %d (lost write)", firstIdx)
	}
	c.RunFor(2 * time.Second)
	if got := *counts[observer]; got != 1 {
		t.Fatalf("observer applied the fresh payload %d times, want 1", got)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleCommitWhenWindowEvicted documents the hazard that remains for
// sessionless proposals: once enough later traffic is compacted, the retry
// window evicts the original PID and the retried proposal commits (and
// applies) a second time. If this test ever starts reporting a single
// apply, plain proposals have silently grown unbounded dedup guarantees and
// TestExactlyOnceWithSessions is no longer the load-bearing regression
// test.
func TestDoubleCommitWhenWindowEvicted(t *testing.T) {
	const threshold = 64
	c, err := NewCluster(Options{
		Kind:              KindFastRaft,
		Nodes:             ids("n1", "n2", "n3"),
		Seed:              19,
		SnapshotThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n3")
	const observer = types.NodeID("n1")
	payload := []byte("evict-then-duplicate")
	counts := countApplies(c, payload)

	pid, err := c.Propose(proposer, payload)
	if err != nil {
		t.Fatal(err)
	}
	firstIdx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || firstIdx == 0 {
		t.Fatalf("first proposal did not commit (idx=%d ok=%v)", firstIdx, ok)
	}

	// Push more than a full retry window of later proposals through
	// compaction, evicting the payload's mapping everywhere.
	filler := 1100 // > the window's 1024 capacity
	if _, err := c.RunProposals("n2", filler, c.Sched.Now()+20*time.Minute); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	fr := c.Host(proposer).Machine().(*fastraft.Node)
	if fr.SnapshotIndex() < firstIdx+types.Index(filler)/2 {
		t.Fatalf("scenario broken: boundary %d did not pass the filler traffic", fr.SnapshotIndex())
	}

	// Crash and restart the proposer: its sequence counter resets, so the
	// retry reuses the original ProposalID — but no node remembers it.
	c.Crash(proposer)
	c.RunFor(2 * time.Second)
	if err := c.Restart(proposer); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if pid, err = c.Propose(proposer, payload); err != nil {
		t.Fatal(err)
	}
	retryIdx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+60*time.Second)
	if !ok {
		t.Fatal("retry did not resolve")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	if retryIdx == firstIdx {
		t.Fatalf("retry resolved to the original index %d despite eviction", firstIdx)
	}
	if got := *counts[observer]; got != 2 {
		t.Fatalf("observer applied payload %d times, expected the documented double-commit (2)", got)
	}
}

// TestExactlyOnceWithSessions is the acceptance scenario for the session
// subsystem: the same sequence applies exactly once, and the retry is
// answered with the original commit index.
func TestExactlyOnceWithSessions(t *testing.T) {
	applies, firstIdx, retryIdx := runDoubleCommitScenario(t, true)
	if applies != 1 {
		t.Fatalf("observer applied payload %d times, want exactly 1", applies)
	}
	if retryIdx != firstIdx {
		t.Fatalf("retry resolved to %d, want the original commit index %d", retryIdx, firstIdx)
	}
}

// testSessionDedupLive covers the no-crash path on both flat protocols: a
// duplicate retry of an applied sequence resolves with the cached index
// and is never applied again.
func testSessionDedupLive(t *testing.T, kind Kind) {
	t.Helper()
	c, err := NewCluster(Options{Kind: kind, Nodes: fiveNodes(), Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n2")
	payload := []byte("dedup-live")
	counts := countApplies(c, payload)

	pid, err := c.OpenSession(proposer)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || idx == 0 {
		t.Fatal("session open did not resolve")
	}
	sid := types.SessionID(idx)

	pid, err = c.ProposeSession(proposer, sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || first == 0 {
		t.Fatal("first proposal did not commit")
	}

	// Same sequence again: cached response, no second apply.
	pid, err = c.ProposeSession(proposer, sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	again, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok {
		t.Fatal("duplicate did not resolve")
	}
	if again != first {
		t.Fatalf("duplicate resolved to %d, want %d", again, first)
	}
	c.RunFor(2 * time.Second)
	for id, n := range counts {
		if *n != 1 {
			t.Fatalf("node %s applied payload %d times, want 1", id, *n)
		}
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftSessionDedup(t *testing.T) { testSessionDedupLive(t, KindFastRaft) }

func TestRaftSessionDedup(t *testing.T) { testSessionDedupLive(t, KindRaft) }

// TestFastRaftConcurrentDuplicateRetries exercises the apply-time dedup
// path: two retries of the same (session, seq) race through different
// nodes before either commits, so the duplicate can reach the log — it
// must still apply exactly once, with both proposals answered.
func TestFastRaftConcurrentDuplicateRetries(t *testing.T) {
	c, err := NewCluster(Options{Kind: KindFastRaft, Nodes: fiveNodes(), Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	payload := []byte("racing-retries")
	counts := countApplies(c, payload)

	pid, err := c.OpenSession("n2")
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := c.AwaitResolution("n2", pid, c.Sched.Now()+30*time.Second)
	if !ok || idx == 0 {
		t.Fatal("session open did not resolve")
	}
	sid := types.SessionID(idx)

	// Two sites submit the same sequence back to back, before either
	// commits.
	pidA, err := c.ProposeSession("n2", sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	pidB, err := c.ProposeSession("n4", sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	idxA, ok := c.AwaitResolution("n2", pidA, c.Sched.Now()+60*time.Second)
	if !ok {
		t.Fatal("proposal A did not resolve")
	}
	idxB, ok := c.AwaitResolution("n4", pidB, c.Sched.Now()+60*time.Second)
	if !ok {
		t.Fatal("proposal B did not resolve")
	}
	if idxA == 0 && idxB == 0 {
		t.Fatal("both racing proposals were rejected")
	}
	c.RunFor(2 * time.Second)
	total := 0
	for id, n := range counts {
		if *n > 1 {
			t.Fatalf("node %s applied payload %d times, want at most 1", id, *n)
		}
		total += *n
	}
	if total != len(c.Hosts()) {
		t.Fatalf("%d/%d nodes applied the payload exactly once", total, len(c.Hosts()))
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionExpiry drives the deterministic TTL machinery: an idle
// session is expired by leader clock entries on every replica, after which
// its proposals are rejected rather than risked as re-applies.
func TestSessionExpiry(t *testing.T) {
	const ttl = 3 * time.Second
	c, err := NewCluster(Options{
		Kind:       KindFastRaft,
		Nodes:      fiveNodes(),
		Seed:       31,
		SessionTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	pid, err := c.OpenSession("n2")
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := c.AwaitResolution("n2", pid, c.Sched.Now()+30*time.Second)
	if !ok || idx == 0 {
		t.Fatal("session open did not resolve")
	}
	sid := types.SessionID(idx)

	// Idle well past the TTL; clock entries expire the session everywhere.
	c.RunFor(4 * ttl)
	for id, h := range c.Hosts() {
		if h.Machine().(*fastraft.Node).Sessions().Has(sid) {
			t.Fatalf("node %s still has session %v after TTL", id, sid)
		}
	}

	// Proposals under the dead session are rejected (resolution index 0).
	pid, err = c.ProposeSession("n2", sid, 1, []byte("too-late"))
	if err != nil {
		t.Fatal(err)
	}
	idx, ok = c.AwaitResolution("n2", pid, c.Sched.Now()+30*time.Second)
	if !ok {
		t.Fatal("expired-session proposal did not resolve")
	}
	if idx != 0 {
		t.Fatalf("expired-session proposal resolved to %d, want rejection (0)", idx)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCraftSessionDedup covers the hierarchical protocol: session dedup at
// the intra-cluster level withholds the duplicate from the local commit
// stream, so it is neither applied twice nor batched into the global log
// twice.
func TestCraftSessionDedup(t *testing.T) {
	c := newCraft(t, twoClusterSpecs(), 43, 0)
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	const site = types.NodeID("a2")
	payload := []byte("craft-dedup")
	applies := 0
	c.Host("a1").OnCommit = func(e types.Entry) {
		if e.Kind == types.KindNormal && bytes.Equal(e.Data, payload) {
			applies++
		}
	}

	pid, err := c.OpenSession(site)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := c.AwaitResolution(site, pid, c.Sched.Now()+time.Minute)
	if !ok || idx == 0 {
		t.Fatal("session open did not resolve")
	}
	sid := types.SessionID(idx)

	pid, err = c.ProposeSession(site, sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := c.AwaitResolution(site, pid, c.Sched.Now()+time.Minute)
	if !ok || first == 0 {
		t.Fatal("first proposal did not commit")
	}
	pid, err = c.ProposeSession(site, sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	again, ok := c.AwaitResolution(site, pid, c.Sched.Now()+time.Minute)
	if !ok {
		t.Fatal("duplicate did not resolve")
	}
	if again != first {
		t.Fatalf("duplicate resolved to %d, want %d", again, first)
	}
	c.RunFor(5 * time.Second)
	if applies != 1 {
		t.Fatalf("observer applied payload %d times, want 1", applies)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRaftSessionSurvivesSnapshotInstall covers the baseline protocol's
// snapshot path: a follower that catches up via InstallSnapshot receives
// the session registry with it and dedups a retry routed through it.
func TestRaftSessionSurvivesSnapshotInstall(t *testing.T) {
	const threshold = 8
	c, err := NewCluster(Options{
		Kind:              KindRaft,
		Nodes:             fiveNodes(),
		Seed:              37,
		SnapshotThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n4")
	payload := []byte("raft-snapshot-dedup")
	counts := countApplies(c, payload)

	pid, err := c.OpenSession(proposer)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || idx == 0 {
		t.Fatal("session open did not resolve")
	}
	sid := types.SessionID(idx)
	pid, err = c.ProposeSession(proposer, sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || first == 0 {
		t.Fatal("first proposal did not commit")
	}

	// Compact everywhere, then crash/restart the proposer so its registry
	// can only come back from the snapshot.
	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	c.Crash(proposer)
	c.RunFor(time.Second)
	if err := c.Restart(proposer); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)

	rn := c.Host(proposer).Machine().(*raft.Node)
	if !rn.Sessions().Has(sid) {
		t.Fatalf("restarted node lost session %v (registry not in snapshot?)", sid)
	}
	pid, err = c.ProposeSession(proposer, sid, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	again, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+60*time.Second)
	if !ok {
		t.Fatal("retry did not resolve")
	}
	if again != first {
		t.Fatalf("retry resolved to %d, want %d", again, first)
	}
	c.RunFor(2 * time.Second)
	if n := *counts["n1"]; n != 1 {
		t.Fatalf("observer applied payload %d times, want 1", n)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionAckTruncatesResponseCaches pins client-acknowledged response
// truncation end to end: a proposal piggybacking a retry floor drops the
// cached responses below it on EVERY replica (the ack is replicated state,
// not a leader-local hint), while dedup above the floor keeps working.
func TestSessionAckTruncatesResponseCaches(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:  KindFastRaft,
		Nodes: fiveNodes(),
		Seed:  13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const proposer = types.NodeID("n2")
	pid, err := c.OpenSession(proposer)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
	if !ok || idx == 0 {
		t.Fatal("session open did not resolve")
	}
	sid := types.SessionID(idx)

	propose := func(seq, ack uint64) types.Index {
		t.Helper()
		pid, err := c.ProposeSessionAck(proposer, sid, seq, ack, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		idx, ok := c.AwaitResolution(proposer, pid, c.Sched.Now()+30*time.Second)
		if !ok {
			t.Fatalf("seq %d did not resolve", seq)
		}
		return idx
	}
	for seq := uint64(1); seq <= 5; seq++ {
		propose(seq, 0)
	}
	c.RunFor(2 * time.Second) // let every replica apply
	for id, h := range c.Hosts() {
		if got := h.Machine().(*fastraft.Node).Sessions().ResponseCount(sid); got != 5 {
			t.Fatalf("%s cached %d responses before ack, want 5", id, got)
		}
	}
	// Seq 6 carries the client's floor: nothing below 5 will be retried.
	seq6 := propose(6, 5)
	c.RunFor(2 * time.Second)
	for id, h := range c.Hosts() {
		if got := h.Machine().(*fastraft.Node).Sessions().ResponseCount(sid); got != 2 { // 5 and 6
			t.Fatalf("%s cached %d responses after ack, want 2", id, got)
		}
	}
	// A retry at the floor still deduplicates with its original response.
	if idx := propose(6, 5); idx != seq6 {
		t.Fatalf("retry of seq 6 resolved at %d, want original %d", idx, seq6)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}
