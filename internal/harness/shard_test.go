package harness

import (
	"fmt"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/shard"
	"github.com/hraft-io/hraft/internal/types"
)

func threeProcs() []types.NodeID { return []types.NodeID{"p1", "p2", "p3"} }

func fourShardGroups() []shard.GroupSpec {
	return []shard.GroupSpec{
		{ID: "g-a", Start: ""},
		{ID: "g-g", Start: "g"},
		{ID: "g-n", Start: "n"},
		{ID: "g-t", Start: "t"},
	}
}

func newShardCluster(t *testing.T, opts ShardOptions) *ShardCluster {
	t.Helper()
	if opts.Procs == nil {
		opts.Procs = threeProcs()
	}
	if opts.Groups == nil {
		opts.Groups = fourShardGroups()
	}
	c, err := NewShardCluster(opts)
	if err != nil {
		t.Fatalf("NewShardCluster: %v", err)
	}
	return c
}

// proposeAndAwait routes a keyed payload from proc and waits for its
// resolution, failing the test on loss or timeout.
func proposeAndAwait(t *testing.T, c *ShardCluster, proc types.NodeID, key, payload string) types.GroupID {
	t.Helper()
	gid, pid, err := c.ProposeKey(proc, key, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	if idx, ok := c.AwaitResolution(proc, pid, c.Sched.Now()+10*time.Second); !ok || idx == 0 {
		t.Fatalf("proposal %q (key %q, group %s) did not resolve: ok=%v idx=%d",
			payload, key, gid, ok, idx)
	}
	return gid
}

// assertExactlyOnce checks every process applied the payload exactly once,
// in exactly the expected group and nowhere else.
func assertExactlyOnce(t *testing.T, c *ShardCluster, want types.GroupID, payload string) {
	t.Helper()
	for _, h := range c.Hosts() {
		if !h.Alive() {
			continue
		}
		for _, gid := range h.Manager().Groups() {
			n := h.AppliedCount(gid, payload)
			switch {
			case gid == want && n != 1:
				t.Fatalf("process %s applied %q %d times in group %s, want exactly once",
					h.ID(), payload, n, gid)
			case gid != want && n != 0:
				t.Fatalf("process %s applied %q in group %s; it belongs to %s",
					h.ID(), payload, gid, want)
			}
		}
	}
}

// TestShardClusterCommitsAcrossGroups drives keyed proposals through every
// range of a 4-group cluster and checks each lands exactly once in its own
// group on every process — group traffic shares endpoints and fsync windows
// but no state.
func TestShardClusterCommitsAcrossGroups(t *testing.T) {
	c := newShardCluster(t, ShardOptions{Seed: 7})
	if !c.WaitForAllLeaders(10 * time.Second) {
		t.Fatal("not every group elected a leader")
	}
	keys := map[string]types.GroupID{
		"alpha": "g-a", "golf": "g-g", "november": "g-n", "tango": "g-t",
		"beta": "g-a", "house": "g-g", "oscar": "g-n", "zulu": "g-t",
	}
	for key, want := range keys {
		payload := "v:" + key
		gid := proposeAndAwait(t, c, "p1", key, payload)
		if gid != want {
			t.Fatalf("key %q routed to %s, want %s", key, gid, want)
		}
	}
	c.RunFor(500 * time.Millisecond) // let followers apply
	for key, want := range keys {
		assertExactlyOnce(t, c, want, "v:"+key)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
	// The coalescer must have folded multi-group heartbeats into batches.
	m := c.Host("p1").Manager().Metrics()
	if m["shard.coalesced_frames"] == 0 || m["shard.batches_sent"] == 0 {
		t.Fatalf("no cross-group coalescing happened: %+v", m)
	}
}

// TestShardClusterSplitUnderTraffic splits a hot range while proposals keep
// flowing into it and checks: the daughter appears on every process with
// identical routing, every proposal from before, during and after the split
// resolved and applied exactly once on every process, and the strict
// auditor saw no violation in either daughter timeline.
func TestShardClusterSplitUnderTraffic(t *testing.T) {
	c := newShardCluster(t, ShardOptions{Seed: 21})
	if !c.WaitForAllLeaders(10 * time.Second) {
		t.Fatal("not every group elected a leader")
	}

	// Warm traffic into the range about to split.
	applied := make(map[string]types.GroupID)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("g-key-%02d", i)
		applied["v:"+key] = proposeAndAwait(t, c, "p1", key, "v:"+key)
	}

	// Split "g-k..." out of g-g while proposals are in flight: half the
	// burst is proposed before the split entry commits, half after.
	type inflight struct {
		proc    types.NodeID
		pid     types.ProposalID
		payload string
	}
	var burst []inflight
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("g-pre-%02d", i)
		_, pid, err := c.ProposeKey("p1", key, []byte("v:"+key))
		if err != nil {
			t.Fatal(err)
		}
		burst = append(burst, inflight{"p1", pid, "v:" + key})
	}
	if _, _, err := c.Split("g-k", "g-k"); err != nil {
		t.Fatalf("Split: %v", err)
	}
	daughterEverywhere := func() bool {
		for _, h := range c.Hosts() {
			if h.Manager().Group("g-k") == nil {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(daughterEverywhere, c.Sched.Now()+10*time.Second) {
		t.Fatal("split did not reach every process")
	}
	if _, ok := c.WaitForGroupLeader("g-k", c.Sched.Now()+10*time.Second); !ok {
		t.Fatal("daughter group elected no leader")
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("g-post-%02d", i)
		want := types.GroupID("g-g")
		if key >= "g-k" {
			want = "g-k"
		}
		gid := proposeAndAwait(t, c, "p2", key, "v:"+key)
		if gid != want {
			t.Fatalf("post-split key %q routed to %s, want %s", key, gid, want)
		}
		applied["v:"+key] = gid
	}
	for _, f := range burst {
		if idx, ok := c.AwaitResolution(f.proc, f.pid, c.Sched.Now()+10*time.Second); !ok || idx == 0 {
			t.Fatalf("in-flight proposal %q lost across the split", f.payload)
		}
		applied[f.payload] = "g-g" // proposed before the split: committed in the parent
	}
	c.RunFor(500 * time.Millisecond)

	// Routing must agree byte-for-byte on every process.
	want := fmt.Sprintf("%v", c.Host("p1").Manager().Ranges())
	for _, h := range c.Hosts() {
		if got := fmt.Sprintf("%v", h.Manager().Ranges()); got != want {
			t.Fatalf("routing diverged: %s has %s, p1 has %s", h.ID(), got, want)
		}
	}
	for payload, gid := range applied {
		assertExactlyOnce(t, c, gid, payload)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestShardClusterMergeRetiresGroup folds the hottest range's right
// neighbor away and checks the range table collapses identically on every
// process, keys re-route to the absorbing group, and the retired core is
// garbage-collected once quiet.
func TestShardClusterMergeRetiresGroup(t *testing.T) {
	c := newShardCluster(t, ShardOptions{Seed: 33, RetireDrain: 50 * time.Millisecond})
	if !c.WaitForAllLeaders(10 * time.Second) {
		t.Fatal("not every group elected a leader")
	}
	proposeAndAwait(t, c, "p1", "november-1", "v:n1")

	if _, _, err := c.Merge("g-n"); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	merged := func() bool {
		for _, h := range c.Hosts() {
			for _, r := range h.Manager().Ranges() {
				if r.Group == "g-n" {
					return false
				}
			}
		}
		return true
	}
	if !c.RunUntil(merged, c.Sched.Now()+10*time.Second) {
		t.Fatal("merge did not reach every process")
	}
	// Keys from the folded range now land in the left neighbor.
	if gid := proposeAndAwait(t, c, "p2", "november-2", "v:n2"); gid != "g-g" {
		t.Fatalf("post-merge key routed to %s, want g-g", gid)
	}
	// The retired core drains and is collected.
	collected := func() bool {
		for _, h := range c.Hosts() {
			if h.Manager().Group("g-n") != nil {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(collected, c.Sched.Now()+10*time.Second) {
		t.Fatal("retired group was never garbage-collected")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestShardClusterTransferLeader moves one group's leadership to a chosen
// process and checks the other groups' leaders are untouched.
func TestShardClusterTransferLeader(t *testing.T) {
	c := newShardCluster(t, ShardOptions{Seed: 44})
	if !c.WaitForAllLeaders(10 * time.Second) {
		t.Fatal("not every group elected a leader")
	}
	old, _ := c.GroupLeader("g-g")
	var target types.NodeID
	for _, id := range threeProcs() {
		if id != old.ID() {
			target = id
			break
		}
	}
	othersBefore := make(map[types.GroupID]types.NodeID)
	for _, gid := range []types.GroupID{"g-a", "g-n", "g-t"} {
		h, _ := c.GroupLeader(gid)
		othersBefore[gid] = h.ID()
	}
	if err := c.TransferLeader("g-g", target); err != nil {
		t.Fatal(err)
	}
	moved := func() bool {
		h, ok := c.GroupLeader("g-g")
		return ok && h.ID() == target
	}
	if !c.RunUntil(moved, c.Sched.Now()+10*time.Second) {
		t.Fatalf("leadership of g-g never moved to %s", target)
	}
	for gid, before := range othersBefore {
		h, ok := c.GroupLeader(gid)
		if !ok || h.ID() != before {
			t.Fatalf("transfer of g-g disturbed group %s's leader", gid)
		}
	}
	// Work still commits in the moved group.
	proposeAndAwait(t, c, target, "golf-after", "v:golf-after")
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestShardClusterCrashRestart crashes one process (losing every group's
// unsynced window at once), keeps committing on the survivors, restarts it
// and checks it recovers every group — including routing learned from its
// meta journal — without contradicting anything it acknowledged.
func TestShardClusterCrashRestart(t *testing.T) {
	c := newShardCluster(t, ShardOptions{Seed: 55, RetireDrain: 50 * time.Millisecond})
	if !c.WaitForAllLeaders(10 * time.Second) {
		t.Fatal("not every group elected a leader")
	}
	proposeAndAwait(t, c, "p1", "alpha-1", "v:a1")

	// A split before the crash: p3 must recover the daughter from its meta
	// journal at restart.
	if _, _, err := c.Split("u-split", "u"); err != nil {
		t.Fatal(err)
	}
	everywhere := func() bool {
		for _, h := range c.Hosts() {
			if h.Alive() && h.Manager().Group("u-split") == nil {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(everywhere, c.Sched.Now()+10*time.Second) {
		t.Fatal("split did not reach every process")
	}
	c.RunFor(100 * time.Millisecond) // let the meta journal's fsync window close

	c.Crash("p3")
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("down-%d", i)
		proposeAndAwait(t, c, "p1", key, "v:"+key)
	}
	if err := c.Restart("p3"); err != nil {
		t.Fatal(err)
	}
	p3 := c.Host("p3")
	if p3.Manager().Group("u-split") == nil {
		t.Fatal("restarted process lost the split group from its meta journal")
	}
	// p3 catches up in every group, including the daughter.
	caughtUp := func() bool {
		for _, gid := range []types.GroupID{"g-a", "g-g", "g-n", "g-t", "u-split"} {
			lead, ok := c.GroupLeader(gid)
			if !ok {
				return false
			}
			mine, theirs := p3.Manager().Group(gid), lead.Manager().Group(gid)
			if mine == nil || mine.CommitIndex() < theirs.CommitIndex() {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(caughtUp, c.Sched.Now()+20*time.Second) {
		t.Fatal("restarted process never caught up across its groups")
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}
