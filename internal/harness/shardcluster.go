package harness

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/shard"
	"github.com/hraft-io/hraft/internal/simnet"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// shardMetaGroup is the reserved ShardMemory group holding each process's
// routing journal; it never appears in the range table.
const shardMetaGroup types.GroupID = "\x00meta"

// ShardOptions configures a simulated multi-group (sharded) cluster: every
// process hosts one shard.Manager over one ShardMemory store, so all groups
// on a process share its fsync window, its crash window and its network
// endpoint — the deployment shape the shard package exists for.
type ShardOptions struct {
	// Procs are the member processes; every group runs on all of them.
	Procs []types.NodeID
	// Groups is the initial range table (see shard.GroupSpec).
	Groups []shard.GroupSpec
	// Seed drives all randomness in the run.
	Seed int64
	// Topology is the latency model (nil = single region).
	Topology *simnet.Topology
	// LossProb is the per-message drop probability.
	LossProb float64
	// DupProb is the per-message duplication probability.
	DupProb float64
	// HeartbeatInterval is the leader tick period (0 = paper default).
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound election timeouts (0 = derived).
	ElectionTimeoutMin time.Duration
	// ElectionTimeoutMax must exceed ElectionTimeoutMin when set.
	ElectionTimeoutMax time.Duration
	// ProposalTimeout is the proposer retry period (0 = derived).
	ProposalTimeout time.Duration
	// SnapshotThreshold enables per-group log compaction (0 = disabled).
	SnapshotThreshold int
	// SyncWindow is the virtual-time shared fsync interval (0 = 2ms).
	SyncWindow time.Duration
	// Audit selects the safety-auditor mode; the zero value is strict, with
	// one recorder per (process, group) so leases audit per group.
	Audit AuditMode
	// TraceRing overrides the per-recorder ring capacity (0 = default).
	TraceRing int
	// SplitSeed seeds daughter groups at split apply (see shard.Config).
	SplitSeed func(parent, daughter types.GroupID, pivot string) []byte
	// MaxBatchBytes bounds coalesced ShardBatch payloads (0 = shard default).
	MaxBatchBytes int
	// RetireDrain keeps merged-away cores alive this long (0 = shard default).
	RetireDrain time.Duration
}

// ShardHost is one process: a shard.Manager over shared storage, bound to
// the simulated network.
type ShardHost struct {
	c   *ShardCluster
	id  types.NodeID
	mgr *shard.Manager
	sm  *storage.ShardMemory
	// recs holds the per-group flight recorders, reused across restarts so
	// one ring spans a group's whole lifetime on this process.
	recs      map[types.GroupID]*trace.Recorder
	alive     bool
	wake      *simnet.Timer
	syncTimer *simnet.Timer

	proposeStart map[types.ProposalID]time.Duration
	resolved     map[types.ProposalID]types.Index
	readDone     map[uint64]types.ReadDone
	// appliedCount counts KindNormal applications per (group, payload) on
	// this process — the double-apply detector for lifecycle tests.
	appliedCount map[types.GroupID]map[string]int
}

// ID returns the process identity.
func (h *ShardHost) ID() types.NodeID { return h.id }

// Manager returns the hosted shard manager (per-group state lives behind
// Manager.Group). Only touch it from test code between scheduler steps.
func (h *ShardHost) Manager() *shard.Manager { return h.mgr }

// Alive reports whether the process is running.
func (h *ShardHost) Alive() bool { return h.alive }

// Resolved returns the resolution index of a tracked proposal, if resolved.
func (h *ShardHost) Resolved(pid types.ProposalID) (types.Index, bool) {
	idx, ok := h.resolved[pid]
	return idx, ok
}

// ReadResult returns the resolution of a tracked read, if it resolved.
func (h *ShardHost) ReadResult(token uint64) (types.ReadDone, bool) {
	d, ok := h.readDone[token]
	return d, ok
}

// AppliedCount returns how many times this process applied the given
// KindNormal payload in the given group (1 = exactly-once).
func (h *ShardHost) AppliedCount(gid types.GroupID, payload string) int {
	return h.appliedCount[gid][payload]
}

// ShardCluster simulates a set of processes each hosting every consensus
// group of a sharded deployment.
type ShardCluster struct {
	opts ShardOptions
	// Sched is the virtual-time scheduler.
	Sched *simnet.Scheduler
	// Net is the simulated network.
	Net *simnet.Network
	// Safety accumulates invariant violations, keyed per group.
	Safety *SafetyChecker
	// Audit is the streaming safety auditor over every (process, group)
	// recorder (nil when Options.Audit is AuditOff).
	Audit *audit.Auditor

	hosts map[types.NodeID]*ShardHost
}

// NewShardCluster builds and starts a sharded cluster.
func NewShardCluster(opts ShardOptions) (*ShardCluster, error) {
	if len(opts.Procs) == 0 {
		return nil, fmt.Errorf("harness: shard cluster needs processes")
	}
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched, opts.Topology, opts.Seed)
	net.LossProb = opts.LossProb
	net.DupProb = opts.DupProb
	c := &ShardCluster{
		opts:   opts,
		Sched:  sched,
		Net:    net,
		Safety: NewSafetyChecker(),
		hosts:  make(map[types.NodeID]*ShardHost),
	}
	c.Audit = newAuditor(opts.Audit)
	for _, id := range opts.Procs {
		h := &ShardHost{
			c:            c,
			id:           id,
			sm:           storage.NewShardMemory(),
			recs:         make(map[types.GroupID]*trace.Recorder),
			proposeStart: make(map[types.ProposalID]time.Duration),
			resolved:     make(map[types.ProposalID]types.Index),
			readDone:     make(map[uint64]types.ReadDone),
			appliedCount: make(map[types.GroupID]map[string]int),
		}
		mgr, err := c.newManager(h)
		if err != nil {
			return nil, err
		}
		h.mgr = mgr
		h.alive = true
		c.hosts[id] = h
		c.register(h)
		c.drain(h)
	}
	return c, nil
}

// coreSeed derives a deterministic per-(process, group) RNG seed that is
// stable across restarts, so a recovered core re-randomizes identically for
// a given run seed.
func (c *ShardCluster) coreSeed(id types.NodeID, gid types.GroupID) int64 {
	f := fnv.New64a()
	f.Write([]byte(id))
	f.Write([]byte{0})
	f.Write([]byte(gid))
	return c.opts.Seed ^ int64(f.Sum64())
}

// newManager builds (or rebuilds, after a crash) a process's manager over
// its surviving ShardMemory.
func (c *ShardCluster) newManager(h *ShardHost) (*shard.Manager, error) {
	boot := types.NewConfig(c.opts.Procs...)
	return shard.New(shard.Config{
		ProcessID: h.id,
		Groups:    c.opts.Groups,
		Storage:   func(gid types.GroupID) storage.Storage { return h.sm.Group(gid) },
		Meta:      h.sm.Group(shardMetaGroup),
		SplitSeed: c.opts.SplitSeed,
		NewCore: func(gid types.GroupID, gboot types.Config, st storage.Storage) (*fastraft.Node, error) {
			rec := h.recs[gid]
			if rec == nil && c.Audit != nil {
				// One recorder per (process, group): lease auditing needs a
				// distinct instance label per group timeline.
				rec = trace.New(trace.Config{
					Node: string(h.id) + "/" + string(gid),
					Size: c.opts.TraceRing,
				})
				rec.SetGroup(string(gid))
				c.Audit.AttachTo(rec)
				h.recs[gid] = rec
			}
			return fastraft.New(fastraft.Config{
				ID:                 h.id,
				Bootstrap:          gboot,
				Storage:            st,
				HeartbeatInterval:  c.opts.HeartbeatInterval,
				ElectionTimeoutMin: c.opts.ElectionTimeoutMin,
				ElectionTimeoutMax: c.opts.ElectionTimeoutMax,
				ProposalTimeout:    c.opts.ProposalTimeout,
				SnapshotThreshold:  c.opts.SnapshotThreshold,
				Rand:               rand.New(rand.NewSource(c.coreSeed(h.id, gid))),
				Recorder:           rec,
			})
		},
		MaxBatchBytes: c.opts.MaxBatchBytes,
		RetireDrain:   c.opts.RetireDrain,
	}, boot)
}

func (c *ShardCluster) register(h *ShardHost) {
	c.Net.Register(h.id, func(env types.Envelope) {
		if !h.alive {
			return
		}
		h.mgr.Step(c.Sched.Now(), env)
		c.drain(h)
	})
}

// drain flushes a host's outputs into the network and the trackers, then
// re-arms its timers — the harness mirror of runtime.Host.drainLocked.
func (c *ShardCluster) drain(h *ShardHost) {
	for _, env := range h.mgr.TakeOutbox() {
		c.Net.Send(env)
	}
	for _, ge := range h.mgr.TakeGroupCommitted() {
		c.Safety.RecordCommit(string(ge.Group), h.id, ge.Entry)
		if ge.Entry.Kind == types.KindNormal {
			g := h.appliedCount[ge.Group]
			if g == nil {
				g = make(map[string]int)
				h.appliedCount[ge.Group] = g
			}
			g[string(ge.Entry.Data)]++
		}
	}
	for _, gid := range h.mgr.Groups() {
		core := h.mgr.Group(gid)
		if core != nil && core.Role() == types.RoleLeader {
			c.Safety.RecordLeader(string(gid), core.Term(), h.id)
		}
	}
	for _, gr := range h.mgr.TakeGroupResolved() {
		h.resolved[gr.Resolution.PID] = gr.Resolution.Index
		delete(h.proposeStart, gr.Resolution.PID)
	}
	for _, rd := range h.mgr.TakeGroupReadDone() {
		h.readDone[rd.Done.ID] = rd.Done
	}
	c.schedule(h)
	c.armSync(h)
}

func (c *ShardCluster) syncWindow() time.Duration {
	if c.opts.SyncWindow > 0 {
		return c.opts.SyncWindow
	}
	return 2 * time.Millisecond
}

// armSync schedules the shared fsync-window close: one Sync makes every
// group's buffered writes durable at once and one SyncDone fan-out releases
// every group's gated outputs — the cross-group group-commit the shared WAL
// provides on real disks.
func (c *ShardCluster) armSync(h *ShardHost) {
	if !h.alive || !h.sm.Pending() || h.syncTimer != nil {
		return
	}
	h.syncTimer = c.Sched.At(c.Sched.Now()+c.syncWindow(), func() {
		h.syncTimer = nil
		if !h.alive {
			return
		}
		if err := h.sm.Sync(); err != nil {
			panic(fmt.Sprintf("harness: sync %s: %v", h.id, err))
		}
		h.mgr.SyncDone(c.Sched.Now(), h.sm.DurableLSN())
		c.drain(h)
	})
}

// schedule re-arms the single wake timer from the manager's earliest
// deadline across all groups — the shared ticker wheel.
func (c *ShardCluster) schedule(h *ShardHost) {
	if h.wake != nil {
		h.wake.Cancel()
		h.wake = nil
	}
	if !h.alive {
		return
	}
	d := h.mgr.NextDeadline()
	if d == 0 {
		return
	}
	h.wake = c.Sched.At(d, func() {
		if !h.alive {
			return
		}
		h.mgr.Tick(c.Sched.Now())
		c.drain(h)
	})
}

// Host returns the process for id (nil if unknown).
func (c *ShardCluster) Host(id types.NodeID) *ShardHost { return c.hosts[id] }

// Hosts returns all processes.
func (c *ShardCluster) Hosts() map[types.NodeID]*ShardHost { return c.hosts }

// RunFor advances virtual time by d.
func (c *ShardCluster) RunFor(d time.Duration) {
	c.Sched.RunUntil(c.Sched.Now() + d)
}

// RunUntil steps the simulation until cond holds or virtual time passes
// deadline; it reports whether cond held.
func (c *ShardCluster) RunUntil(cond func() bool, deadline time.Duration) bool {
	for {
		if cond() {
			return true
		}
		if c.Sched.Now() > deadline {
			return false
		}
		if !c.Sched.Step() {
			return cond()
		}
	}
}

// GroupLeader returns the alive process leading the given group at the
// highest term, if any.
func (c *ShardCluster) GroupLeader(gid types.GroupID) (*ShardHost, bool) {
	var best *ShardHost
	var bestTerm types.Term
	for _, h := range c.hosts {
		if !h.alive {
			continue
		}
		core := h.mgr.Group(gid)
		if core == nil || core.Role() != types.RoleLeader {
			continue
		}
		if best == nil || core.Term() > bestTerm {
			best, bestTerm = h, core.Term()
		}
	}
	return best, best != nil
}

// WaitForGroupLeader runs until the given group has a leader.
func (c *ShardCluster) WaitForGroupLeader(gid types.GroupID, deadline time.Duration) (types.NodeID, bool) {
	ok := c.RunUntil(func() bool {
		_, ok := c.GroupLeader(gid)
		return ok
	}, deadline)
	if !ok {
		return types.None, false
	}
	h, _ := c.GroupLeader(gid)
	return h.id, true
}

// WaitForAllLeaders runs until every live group on the reference process
// has a leader somewhere.
func (c *ShardCluster) WaitForAllLeaders(deadline time.Duration) bool {
	ref := c.hosts[c.opts.Procs[0]]
	return c.RunUntil(func() bool {
		for _, gid := range ref.mgr.Groups() {
			if _, ok := c.GroupLeader(gid); !ok {
				return false
			}
		}
		return true
	}, deadline)
}

// ProposeKey submits a payload routed by key from the given process,
// returning the owning group alongside the proposal ID.
func (c *ShardCluster) ProposeKey(id types.NodeID, key string, data []byte) (types.GroupID, types.ProposalID, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return "", types.ProposalID{}, fmt.Errorf("harness: process %s not running", id)
	}
	now := c.Sched.Now()
	gid, pid := h.mgr.ProposeKey(now, key, data)
	h.proposeStart[pid] = now
	c.drain(h)
	return gid, pid, nil
}

// Read registers a read routed by key on the given process.
func (c *ShardCluster) Read(id types.NodeID, key string, consistency types.ReadConsistency) (types.GroupID, uint64, error) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return "", 0, fmt.Errorf("harness: process %s not running", id)
	}
	gid, token := h.mgr.Read(c.Sched.Now(), key, consistency)
	c.drain(h)
	return gid, token, nil
}

// AwaitResolution runs until the proposal tracked on process id resolves.
func (c *ShardCluster) AwaitResolution(id types.NodeID, pid types.ProposalID, deadline time.Duration) (types.Index, bool) {
	h := c.hosts[id]
	if h == nil {
		return 0, false
	}
	ok := c.RunUntil(func() bool {
		_, done := h.resolved[pid]
		return done
	}, deadline)
	if !ok {
		return 0, false
	}
	return h.resolved[pid], true
}

// AwaitRead runs until the read tracked on process id resolves.
func (c *ShardCluster) AwaitRead(id types.NodeID, token uint64, deadline time.Duration) (types.ReadDone, bool) {
	h := c.hosts[id]
	if h == nil {
		return types.ReadDone{}, false
	}
	ok := c.RunUntil(func() bool {
		_, done := h.readDone[token]
		return done
	}, deadline)
	if !ok {
		return types.ReadDone{}, false
	}
	return h.readDone[token], true
}

// Split proposes a range split through the process currently leading the
// parent group (lifecycle entries need a leader or fast-track quorum like
// any other proposal; proposing at the leader keeps tests deterministic).
func (c *ShardCluster) Split(daughter types.GroupID, pivot string) (types.NodeID, types.ProposalID, error) {
	ref := c.hosts[c.opts.Procs[0]]
	parent := ref.mgr.Route(pivot)
	h, ok := c.GroupLeader(parent)
	if !ok {
		return types.None, types.ProposalID{}, fmt.Errorf("harness: group %q has no leader", parent)
	}
	pid, err := h.mgr.Split(c.Sched.Now(), daughter, pivot)
	if err != nil {
		return types.None, types.ProposalID{}, err
	}
	c.drain(h)
	return h.id, pid, nil
}

// Merge proposes folding the given group into its left neighbor, through
// the process currently leading it.
func (c *ShardCluster) Merge(right types.GroupID) (types.NodeID, types.ProposalID, error) {
	h, ok := c.GroupLeader(right)
	if !ok {
		return types.None, types.ProposalID{}, fmt.Errorf("harness: group %q has no leader", right)
	}
	pid, err := h.mgr.Merge(c.Sched.Now(), right)
	if err != nil {
		return types.None, types.ProposalID{}, err
	}
	c.drain(h)
	return h.id, pid, nil
}

// TransferLeader orders the given group's leader to hand off to target.
func (c *ShardCluster) TransferLeader(gid types.GroupID, target types.NodeID) error {
	h, ok := c.GroupLeader(gid)
	if !ok {
		return fmt.Errorf("harness: group %q has no leader", gid)
	}
	if !h.mgr.TransferLeader(gid, target) {
		return fmt.Errorf("harness: transfer of %q to %s refused", gid, target)
	}
	c.drain(h)
	return nil
}

// Crash stops a process without warning: every group on it goes down
// together and the shared unsynced window is lost, like one machine losing
// its page cache.
func (c *ShardCluster) Crash(id types.NodeID) {
	h := c.hosts[id]
	if h == nil || !h.alive {
		return
	}
	h.alive = false
	if h.wake != nil {
		h.wake.Cancel()
		h.wake = nil
	}
	if h.syncTimer != nil {
		h.syncTimer.Cancel()
		h.syncTimer = nil
	}
	h.sm.Crash()
	c.Net.Unregister(id)
	for gid := range h.recs {
		c.Audit.NodeDown(string(id) + "/" + string(gid))
	}
}

// Restart brings a crashed process back: the manager rebuilds from the
// surviving ShardMemory — meta journal replays the routing table, every
// recovered group reopens its core.
func (c *ShardCluster) Restart(id types.NodeID) error {
	h := c.hosts[id]
	if h == nil {
		return fmt.Errorf("harness: unknown process %s", id)
	}
	if h.alive {
		return fmt.Errorf("harness: process %s already running", id)
	}
	mgr, err := c.newManager(h)
	if err != nil {
		return err
	}
	h.mgr = mgr
	h.alive = true
	h.proposeStart = make(map[types.ProposalID]time.Duration)
	h.resolved = make(map[types.ProposalID]types.Index)
	h.readDone = make(map[uint64]types.ReadDone)
	c.register(h)
	c.drain(h)
	return nil
}
