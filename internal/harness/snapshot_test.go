package harness

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/raft"
	"github.com/hraft-io/hraft/internal/types"
)

// snapshotTap records what one node receives: whether any InstallSnapshot
// arrived, and the lowest AppendEntries entry index delivered.
type snapshotTap struct {
	installs  int
	minAEIdx  types.Index
	aeEntries int
}

func tapNode(c *Cluster, target types.NodeID) *snapshotTap {
	tap := &snapshotTap{}
	c.Net.OnDeliver = func(env types.Envelope) {
		if env.To != target {
			return
		}
		switch m := env.Msg.(type) {
		case types.InstallSnapshot:
			tap.installs++
		case types.AppendEntries:
			for _, e := range m.Entries {
				tap.aeEntries++
				if tap.minAEIdx == 0 || e.Index < tap.minAEIdx {
					tap.minAEIdx = e.Index
				}
			}
		}
	}
	return tap
}

// minAliveBoundary returns the smallest snapshot boundary across alive
// nodes other than skip: no alive node can replicate entries at or below
// it, whatever leadership churn follows.
func minAliveBoundary(t *testing.T, c *Cluster, skip types.NodeID) types.Index {
	t.Helper()
	var min types.Index
	first := true
	for id, h := range c.Hosts() {
		if id == skip || !h.Alive() {
			continue
		}
		var b types.Index
		switch m := h.Machine().(type) {
		case *fastraft.Node:
			b = m.SnapshotIndex()
		case *raft.Node:
			b = m.SnapshotIndex()
		default:
			t.Fatalf("unexpected machine type %T", h.Machine())
		}
		if first || b < min {
			min, first = b, false
		}
	}
	return min
}

// testSnapshotCatchUp is the acceptance scenario for both protocol kinds: a
// follower is down while the leader commits far past the compaction
// threshold; on restart it must converge through InstallSnapshot and never
// be sent the compacted prefix.
func testSnapshotCatchUp(t *testing.T, kind Kind) {
	t.Helper()
	const threshold = 20
	c, err := NewCluster(Options{
		Kind:              kind,
		Nodes:             fiveNodes(),
		Seed:              11,
		SnapshotThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	// A few entries land on the lagging node before it crashes.
	if _, err := c.RunProposals("n1", 3, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("warm-up proposals: %v", err)
	}
	c.RunFor(time.Second) // let followers learn the commit index
	const lagger = types.NodeID("n5")
	c.Crash(lagger)

	// Commit well past the compaction threshold while the lagger is down.
	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatalf("bulk proposals: %v", err)
	}
	// Let every alive node pass its compaction tick.
	c.RunFor(2 * time.Second)
	boundary := minAliveBoundary(t, c, lagger)
	if boundary == 0 {
		t.Fatal("no alive node compacted; threshold not reached")
	}
	laggerLast := func() types.Index {
		switch m := c.Host(lagger).Machine().(type) {
		case *fastraft.Node:
			return m.LastIndex()
		case *raft.Node:
			return m.LastIndex()
		}
		return 0
	}()
	if laggerLast >= boundary {
		t.Fatalf("scenario broken: lagger last index %d not behind boundary %d", laggerLast, boundary)
	}

	tap := tapNode(c, lagger)
	if err := c.Restart(lagger); err != nil {
		t.Fatal(err)
	}
	converged := c.RunUntil(func() bool {
		h, ok := c.Leader()
		if !ok {
			return false
		}
		return c.Host(lagger).Machine().CommitIndex() >= h.Machine().CommitIndex() &&
			h.Machine().CommitIndex() > boundary
	}, c.Sched.Now()+60*time.Second)
	if !converged {
		t.Fatalf("lagger did not converge (lagger commit %d)", c.Host(lagger).Machine().CommitIndex())
	}
	if tap.installs == 0 {
		t.Fatal("lagger converged without receiving InstallSnapshot")
	}
	// The compacted prefix must never be replicated entry-by-entry.
	if tap.minAEIdx != 0 && tap.minAEIdx <= boundary {
		t.Fatalf("lagger received compacted entry %d (boundary %d)", tap.minAEIdx, boundary)
	}
	// The restarted node's own log must now start above 1.
	switch m := c.Host(lagger).Machine().(type) {
	case *fastraft.Node:
		if m.FirstIndex() == 1 {
			t.Fatal("lagger log not based on a snapshot after catch-up")
		}
	case *raft.Node:
		if m.FirstIndex() == 1 {
			t.Fatal("lagger log not based on a snapshot after catch-up")
		}
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftSnapshotCatchUpAfterRestart(t *testing.T) {
	testSnapshotCatchUp(t, KindFastRaft)
}

func TestRaftSnapshotCatchUpAfterRestart(t *testing.T) {
	testSnapshotCatchUp(t, KindRaft)
}

// TestFastRaftSnapshotCatchUpAfterPartition covers the partition flavour: a
// follower cut off from the group (not crashed) while the rest compacts
// past its log must converge through InstallSnapshot once healed.
func TestFastRaftSnapshotCatchUpAfterPartition(t *testing.T) {
	const threshold = 20
	c, err := NewCluster(Options{
		Kind:              KindFastRaft,
		Nodes:             fiveNodes(),
		Seed:              13,
		SnapshotThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const lagger = types.NodeID("n4")
	rest := []types.NodeID{"n1", "n2", "n3", "n5"}
	c.Net.Partition([]types.NodeID{lagger}, rest)

	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatalf("bulk proposals: %v", err)
	}
	c.RunFor(2 * time.Second)
	boundary := minAliveBoundary(t, c, lagger)
	if boundary == 0 {
		t.Fatal("no node compacted during the partition")
	}

	tap := tapNode(c, lagger)
	c.Net.Heal()
	converged := c.RunUntil(func() bool {
		return c.Host(lagger).Machine().CommitIndex() > boundary
	}, c.Sched.Now()+120*time.Second)
	if !converged {
		t.Fatalf("partitioned node did not converge (commit %d, boundary %d)",
			c.Host(lagger).Machine().CommitIndex(), boundary)
	}
	if tap.installs == 0 {
		t.Fatal("partitioned node converged without receiving InstallSnapshot")
	}
	if tap.minAEIdx != 0 && tap.minAEIdx <= boundary {
		t.Fatalf("partitioned node received compacted entry %d (boundary %d)", tap.minAEIdx, boundary)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}
