package harness

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/types"
)

// streamTap records the InstallSnapshot traffic a run produces: chunk
// payload sizes, whole-image sends, and per-target delivery counts.
type streamTap struct {
	chunks       int
	maxChunkLen  int
	wholeImages  int
	doneChunks   int
	toTarget     int
	target       types.NodeID
	minAEIdx     types.Index
	otherTraffic func(types.Envelope)
}

func tapSnapshotStream(c *Cluster, target types.NodeID) *streamTap {
	tap := &streamTap{target: target}
	c.Net.OnDeliver = func(env types.Envelope) {
		switch m := env.Msg.(type) {
		case types.InstallSnapshot:
			if env.To == target {
				tap.toTarget++
			}
			if !m.Snapshot.IsZero() {
				tap.wholeImages++
				return
			}
			tap.chunks++
			if len(m.Data) > tap.maxChunkLen {
				tap.maxChunkLen = len(m.Data)
			}
			if m.Done {
				tap.doneChunks++
			}
		case types.AppendEntries:
			if env.To != target {
				return
			}
			for _, e := range m.Entries {
				if tap.minAEIdx == 0 || e.Index < tap.minAEIdx {
					tap.minAEIdx = e.Index
				}
			}
		}
		if tap.otherTraffic != nil {
			tap.otherTraffic(env)
		}
	}
	return tap
}

// testChunkedSnapshotCatchUp is the acceptance scenario for chunked
// snapshot streaming: with MaxSnapshotChunk set, a lagging follower must
// converge through a chunked InstallSnapshot stream, no chunk may exceed
// the cap, no whole-image message may appear on the wire, and the
// compacted prefix must never be replicated entry-by-entry.
func testChunkedSnapshotCatchUp(t *testing.T, kind Kind) {
	t.Helper()
	const (
		threshold = 20
		chunkCap  = 8 // bytes; far below the encoded snapshot size
	)
	c, err := NewCluster(Options{
		Kind:              kind,
		Nodes:             fiveNodes(),
		Seed:              17,
		SnapshotThreshold: threshold,
		MaxSnapshotChunk:  chunkCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const lagger = types.NodeID("n5")
	c.Crash(lagger)
	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatalf("bulk proposals: %v", err)
	}
	c.RunFor(2 * time.Second)
	boundary := minAliveBoundary(t, c, lagger)
	if boundary == 0 {
		t.Fatal("no alive node compacted; threshold not reached")
	}

	tap := tapSnapshotStream(c, lagger)
	if err := c.Restart(lagger); err != nil {
		t.Fatal(err)
	}
	converged := c.RunUntil(func() bool {
		h, ok := c.Leader()
		if !ok {
			return false
		}
		return c.Host(lagger).Machine().CommitIndex() >= h.Machine().CommitIndex() &&
			h.Machine().CommitIndex() > boundary
	}, c.Sched.Now()+60*time.Second)
	if !converged {
		t.Fatalf("lagger did not converge (commit %d)", c.Host(lagger).Machine().CommitIndex())
	}
	if tap.chunks == 0 {
		t.Fatal("no snapshot chunks observed; scenario broken")
	}
	if tap.wholeImages != 0 {
		t.Fatalf("%d whole-image InstallSnapshot messages sent despite chunking", tap.wholeImages)
	}
	if tap.maxChunkLen > chunkCap {
		t.Fatalf("an InstallSnapshot chunk carried %d bytes, cap is %d", tap.maxChunkLen, chunkCap)
	}
	if tap.doneChunks == 0 {
		t.Fatal("no Done chunk observed; stream never completed on the wire")
	}
	if tap.minAEIdx != 0 && tap.minAEIdx <= boundary {
		t.Fatalf("lagger received compacted entry %d (boundary %d)", tap.minAEIdx, boundary)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftChunkedSnapshotCatchUp(t *testing.T) {
	testChunkedSnapshotCatchUp(t, KindFastRaft)
}

func TestRaftChunkedSnapshotCatchUp(t *testing.T) {
	testChunkedSnapshotCatchUp(t, KindRaft)
}

// testPendingInstallSuppressesResends pins the pending-install flag: while
// a follower's snapshot transfer is unacknowledged (its replies are cut),
// the leader must not re-send the full snapshot every broadcast round —
// only the sparse resend-timeout retries are allowed. Before the replica
// tracker this scenario produced one full snapshot per heartbeat.
func testPendingInstallSuppressesResends(t *testing.T, kind Kind) {
	t.Helper()
	const threshold = 20
	hb := 100 * time.Millisecond
	c, err := NewCluster(Options{
		Kind:              kind,
		Nodes:             fiveNodes(),
		Seed:              23,
		HeartbeatInterval: hb,
		SnapshotThreshold: threshold,
		// Keep silent-leave detection out of the way: the lagger's replies
		// are deliberately cut for many rounds.
		MemberTimeoutRounds: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const lagger = types.NodeID("n5")
	c.Crash(lagger)
	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatalf("bulk proposals: %v", err)
	}
	c.RunFor(2 * time.Second)
	if minAliveBoundary(t, c, lagger) == 0 {
		t.Fatal("no alive node compacted")
	}

	// Cut the lagger's outbound links: it receives the snapshot but its
	// replies never reach the leader, so the install stays pending.
	rest := []types.NodeID{"n1", "n2", "n3", "n4"}
	for _, other := range rest {
		c.Net.Block(lagger, other)
	}
	tap := tapSnapshotStream(c, lagger)
	if err := c.Restart(lagger); err != nil {
		t.Fatal(err)
	}
	const window = 4 * time.Second // ~40 broadcast rounds
	c.RunFor(window)
	if tap.toTarget == 0 {
		t.Fatal("no InstallSnapshot reached the lagger; scenario broken")
	}
	// Resend timeout defaults to 4 heartbeats: over 40 rounds that allows
	// ~10 sends plus the initial one; one-per-round would be ~40.
	if tap.toTarget > 15 {
		t.Fatalf("%d InstallSnapshot messages in %v despite pending install (want sparse timeout resends)",
			tap.toTarget, window)
	}

	// Heal the reply direction; the transfer must now complete.
	for _, other := range rest {
		c.Net.Unblock(lagger, other)
	}
	converged := c.RunUntil(func() bool {
		h, ok := c.Leader()
		if !ok {
			return false
		}
		return c.Host(lagger).Machine().CommitIndex() >= h.Machine().CommitIndex()
	}, c.Sched.Now()+60*time.Second)
	if !converged {
		t.Fatalf("lagger did not converge after healing (commit %d)",
			c.Host(lagger).Machine().CommitIndex())
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRaftPendingInstallSuppressesResends(t *testing.T) {
	testPendingInstallSuppressesResends(t, KindFastRaft)
}

func TestRaftPendingInstallSuppressesResends(t *testing.T) {
	testPendingInstallSuppressesResends(t, KindRaft)
}

// TestFastRaftChunkedInstallConvergesUnderLoss drives the chunked transfer
// through a lossy, duplicating network (20% drop, 10% duplication, latency
// jitter reordering chunks): the ack-offset/resend protocol must still
// reassemble and install the snapshot, with every chunk within the cap.
func TestFastRaftChunkedInstallConvergesUnderLoss(t *testing.T) {
	const (
		threshold = 20
		chunkCap  = 8
	)
	c, err := NewCluster(Options{
		Kind:              KindFastRaft,
		Nodes:             fiveNodes(),
		Seed:              29,
		SnapshotThreshold: threshold,
		MaxSnapshotChunk:  chunkCap,
		LossProb:          0.20,
		DupProb:           0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(20 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const lagger = types.NodeID("n4")
	c.Crash(lagger)
	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+600*time.Second); err != nil {
		t.Fatalf("bulk proposals: %v", err)
	}
	c.RunFor(2 * time.Second)
	boundary := minAliveBoundary(t, c, lagger)
	if boundary == 0 {
		t.Fatal("no alive node compacted")
	}

	tap := tapSnapshotStream(c, lagger)
	if err := c.Restart(lagger); err != nil {
		t.Fatal(err)
	}
	converged := c.RunUntil(func() bool {
		return c.Host(lagger).Machine().CommitIndex() > boundary
	}, c.Sched.Now()+300*time.Second)
	if !converged {
		t.Fatalf("lagger did not converge under loss (commit %d, boundary %d)",
			c.Host(lagger).Machine().CommitIndex(), boundary)
	}
	if tap.chunks == 0 {
		t.Fatal("no snapshot chunks observed")
	}
	if tap.wholeImages != 0 {
		t.Fatalf("%d whole-image sends despite chunking", tap.wholeImages)
	}
	if tap.maxChunkLen > chunkCap {
		t.Fatalf("chunk of %d bytes exceeds cap %d", tap.maxChunkLen, chunkCap)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedInstallMetrics checks the observability slice end to end: a
// chunked catch-up must move the tracker's chunk counters on the leader
// and the install counters on the follower.
func TestChunkedInstallMetrics(t *testing.T) {
	const threshold = 20
	c, err := NewCluster(Options{
		Kind:              KindFastRaft,
		Nodes:             fiveNodes(),
		Seed:              31,
		SnapshotThreshold: threshold,
		MaxSnapshotChunk:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	const lagger = types.NodeID("n5")
	c.Crash(lagger)
	if _, err := c.RunProposals("n1", 3*threshold, c.Sched.Now()+120*time.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if err := c.Restart(lagger); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(func() bool {
		h, ok := c.Leader()
		return ok && c.Host(lagger).Machine().CommitIndex() >= h.Machine().CommitIndex()
	}, c.Sched.Now()+60*time.Second) {
		t.Fatal("no convergence")
	}
	var sent, installed uint64
	for id, h := range c.Hosts() {
		m := h.Machine().(interface{ Metrics() map[string]uint64 }).Metrics()
		sent += m[replica.CounterChunksSent]
		if id == lagger {
			installed = m[replica.CounterInstalls]
		}
	}
	if sent == 0 {
		t.Fatal("no chunk sends counted in metrics")
	}
	if installed == 0 {
		t.Fatal("lagger counted no snapshot installs")
	}
}
