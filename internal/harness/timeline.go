package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// EventKind classifies timeline events.
type EventKind int

const (
	// EventLeaderElected marks a node assuming leadership of a group.
	EventLeaderElected EventKind = iota + 1
	// EventConfigChange marks a committed configuration entry.
	EventConfigChange
	// EventCrash marks a host stopping.
	EventCrash
	// EventRestart marks a host restarting.
	EventRestart
	// EventNote is a free-form annotation from a scenario script.
	EventNote
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventLeaderElected:
		return "leader"
	case EventConfigChange:
		return "config"
	case EventCrash:
		return "crash"
	case EventRestart:
		return "restart"
	case EventNote:
		return "note"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one entry of a run's timeline.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration
	// Kind classifies it.
	Kind EventKind
	// Group is the log group ("" for flat clusters, "local/<cluster>" or
	// "global" for C-Raft).
	Group string
	// Node is the site involved.
	Node types.NodeID
	// Term is the term at the event (leader elections).
	Term types.Term
	// Detail is a human-readable summary.
	Detail string
}

// Timeline records notable events of a simulated run for post-mortems and
// scenario output. It deduplicates repeated leader observations (drains
// see the same leader every event).
type Timeline struct {
	events []Event
	// lastLeader tracks the last recorded leader per (group, term) to
	// avoid duplicates.
	lastLeader map[string]types.NodeID
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{lastLeader: make(map[string]types.NodeID)}
}

// ObserveLeader records a leadership observation, ignoring repeats of the
// same (group, term, node).
func (tl *Timeline) ObserveLeader(at time.Duration, group string, term types.Term, node types.NodeID) {
	key := fmt.Sprintf("%s/%d", group, term)
	if tl.lastLeader[key] == node {
		return
	}
	tl.lastLeader[key] = node
	tl.events = append(tl.events, Event{
		At: at, Kind: EventLeaderElected, Group: group, Node: node, Term: term,
		Detail: fmt.Sprintf("%s leads %s at term %d", node, groupName(group), term),
	})
}

// ObserveConfig records a committed configuration change.
func (tl *Timeline) ObserveConfig(at time.Duration, group string, node types.NodeID, cfg types.Config) {
	tl.events = append(tl.events, Event{
		At: at, Kind: EventConfigChange, Group: group, Node: node,
		Detail: fmt.Sprintf("configuration -> %v", cfg),
	})
}

// Crash records a host stopping.
func (tl *Timeline) Crash(at time.Duration, node types.NodeID) {
	tl.events = append(tl.events, Event{
		At: at, Kind: EventCrash, Node: node,
		Detail: fmt.Sprintf("%s crashed", node),
	})
}

// Restart records a host restarting.
func (tl *Timeline) Restart(at time.Duration, node types.NodeID) {
	tl.events = append(tl.events, Event{
		At: at, Kind: EventRestart, Node: node,
		Detail: fmt.Sprintf("%s restarted", node),
	})
}

// Note records a free-form annotation.
func (tl *Timeline) Note(at time.Duration, format string, args ...any) {
	tl.events = append(tl.events, Event{
		At: at, Kind: EventNote, Detail: fmt.Sprintf(format, args...),
	})
}

// Events returns the recorded events sorted by time (stable for equal
// times).
func (tl *Timeline) Events() []Event {
	out := append([]Event(nil), tl.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded events.
func (tl *Timeline) Len() int { return len(tl.events) }

// LeaderChanges counts distinct leadership events in a group.
func (tl *Timeline) LeaderChanges(group string) int {
	n := 0
	for _, e := range tl.events {
		if e.Kind == EventLeaderElected && e.Group == group {
			n++
		}
	}
	return n
}

// Print renders the timeline to w.
func (tl *Timeline) Print(w io.Writer) {
	for _, e := range tl.Events() {
		fmt.Fprintf(w, "%10s | %-7s | %s\n",
			e.At.Round(time.Millisecond), e.Kind, e.Detail)
	}
}

func groupName(group string) string {
	if group == "" {
		return "the cluster"
	}
	return group
}
