package harness

import (
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

func TestTimelineDeduplicatesLeaderObservations(t *testing.T) {
	tl := NewTimeline()
	tl.ObserveLeader(time.Second, "", 1, "n1")
	tl.ObserveLeader(2*time.Second, "", 1, "n1") // repeat: ignored
	tl.ObserveLeader(3*time.Second, "", 2, "n2") // new term: recorded
	tl.ObserveLeader(4*time.Second, "global", 1, "c1")
	if tl.LeaderChanges("") != 2 {
		t.Fatalf("leader changes = %d, want 2", tl.LeaderChanges(""))
	}
	if tl.LeaderChanges("global") != 1 {
		t.Fatalf("global leader changes = %d", tl.LeaderChanges("global"))
	}
}

func TestTimelineEventsSorted(t *testing.T) {
	tl := NewTimeline()
	tl.Note(5*time.Second, "late")
	tl.Crash(time.Second, "n3")
	tl.Restart(3*time.Second, "n3")
	evts := tl.Events()
	if len(evts) != 3 {
		t.Fatalf("events = %d", len(evts))
	}
	for i := 1; i < len(evts); i++ {
		if evts[i].At < evts[i-1].At {
			t.Fatalf("unsorted events: %v", evts)
		}
	}
	var sb strings.Builder
	tl.Print(&sb)
	out := sb.String()
	for _, want := range []string{"crash", "restart", "late"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineRecordsRealRun(t *testing.T) {
	c := newTestCluster(t, KindFastRaft, 31, 0)
	leader, ok := c.WaitForLeader(10 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	if c.Timeline.LeaderChanges("") == 0 {
		t.Fatal("election not recorded")
	}
	c.Crash(leader)
	if _, ok := c.WaitForLeader(c.Sched.Now() + 10*time.Second); !ok {
		t.Fatal("no failover")
	}
	if c.Timeline.LeaderChanges("") < 2 {
		t.Fatalf("failover not recorded: %d changes", c.Timeline.LeaderChanges(""))
	}
	found := false
	for _, e := range c.Timeline.Events() {
		if e.Kind == EventCrash && e.Node == leader {
			found = true
		}
	}
	if !found {
		t.Fatal("crash event missing")
	}
	_ = types.NodeID(leader)
}

func TestTimelineRecordsConfigChanges(t *testing.T) {
	c, err := NewCluster(Options{
		Kind: KindFastRaft, Nodes: fiveNodes(), Seed: 37, MemberTimeoutRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.WaitForLeader(10 * time.Second); !ok {
		t.Fatal("no leader")
	}
	if _, err := c.StartProposer(ProposerOptions{Node: "n1", StopAfter: c.Sched.Now() + time.Minute}); err != nil {
		t.Fatal(err)
	}
	victim := types.NodeID("n5")
	if h, _ := c.Leader(); h != nil && h.ID() == victim {
		victim = "n4"
	}
	c.Crash(victim)
	removed := c.RunUntil(func() bool {
		h, ok := c.Leader()
		return ok && !h.Machine().Config().Contains(victim)
	}, c.Sched.Now()+30*time.Second)
	if !removed {
		t.Fatal("removal never happened")
	}
	// The configuration takes effect at append time; give the classic
	// track a moment to commit it (which is when the timeline records it).
	c.RunFor(2 * time.Second)
	hasConfig := false
	for _, e := range c.Timeline.Events() {
		if e.Kind == EventConfigChange {
			hasConfig = true
		}
	}
	if !hasConfig {
		t.Fatal("config change not recorded in the timeline")
	}
}
