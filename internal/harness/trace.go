package harness

import (
	"os"
	"path/filepath"
	"strings"

	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Flight-recorder integration: with Options.Trace (or CraftOptions.Trace)
// set, every node records protocol events into its own ring; the helpers
// here merge the rings into one time-ordered, cluster-wide narrative and
// dump it when a test fails — the post-mortem for a failed failover or a
// stuck proposal, without re-running under a debugger.

// TraceSnapshot returns node id's retained flight-recorder events (nil if
// tracing is off or the node is unknown). Works on crashed nodes too: the
// recorder outlives the machine.
func (c *Cluster) TraceSnapshot(id types.NodeID) []trace.Event {
	h := c.hosts[id]
	if h == nil {
		return nil
	}
	return h.rec.Snapshot()
}

// MergedTrace combines every node's ring (alive and crashed) into one
// sequence ordered by simulated time.
func (c *Cluster) MergedTrace() []trace.Event {
	var snaps [][]trace.Event
	for _, h := range c.hosts {
		if s := h.rec.Snapshot(); len(s) > 0 {
			snaps = append(snaps, s)
		}
	}
	return trace.Merge(snaps...)
}

// TraceSnapshot returns site id's retained flight-recorder events (local
// and global layers interleaved; nil if tracing is off or the site is
// unknown).
func (c *CraftCluster) TraceSnapshot(id types.NodeID) []trace.Event {
	h := c.hosts[id]
	if h == nil {
		return nil
	}
	return h.rec.Snapshot()
}

// MergedTrace combines every site's ring (local and global layers
// interleaved per site) into one sequence ordered by simulated time.
func (c *CraftCluster) MergedTrace() []trace.Event {
	var snaps [][]trace.Event
	for _, h := range c.hosts {
		if s := h.rec.Snapshot(); len(s) > 0 {
			snaps = append(snaps, s)
		}
	}
	return trace.Merge(snaps...)
}

// TB is the subset of *testing.T the trace dumper needs (an interface so
// this package, which is also linked into the simulator and benchmark
// binaries, does not import "testing").
type TB interface {
	Cleanup(func())
	Failed() bool
	Logf(format string, args ...any)
	Name() string
}

// TraceSource is anything producing a merged cluster trace: Cluster and
// CraftCluster both qualify.
type TraceSource interface {
	MergedTrace() []trace.Event
}

// DumpTraceOnFailure registers a cleanup hook that, if the test failed,
// logs the cluster's merged, time-ordered event dump — every node's
// elections, appends, snapshot streams and proposal stages interleaved.
// With HRAFT_TRACE_DIR set, the dump is also written to
// $HRAFT_TRACE_DIR/<test-name>.trace for artifact collection in CI, plus a
// machine-readable <test-name>.trace.jsonl twin that hraft-audit can
// replay offline.
func DumpTraceOnFailure(t TB, src TraceSource) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		events := src.MergedTrace()
		if len(events) == 0 {
			t.Logf("harness: no trace events recorded (Options.Trace off?)")
			return
		}
		dump := trace.Format(events)
		t.Logf("cluster flight-recorder dump (%d events, merged, time-ordered):\n%s",
			len(events), dump)
		if dir := os.Getenv("HRAFT_TRACE_DIR"); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Logf("harness: create trace dir: %v", err)
				return
			}
			path := filepath.Join(dir, sanitizeTestName(t.Name())+".trace")
			if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
				t.Logf("harness: write trace dump: %v", err)
				return
			}
			t.Logf("harness: trace dump written to %s", path)
			jsonl, err := trace.FormatJSONL(events)
			if err != nil {
				t.Logf("harness: encode trace dump: %v", err)
				return
			}
			if err := os.WriteFile(path+".jsonl", jsonl, 0o644); err != nil {
				t.Logf("harness: write trace dump: %v", err)
			}
		}
	})
}

// sanitizeTestName maps a test name (possibly a subtest path with slashes)
// onto a safe file name.
func sanitizeTestName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
