package harness

import (
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// TestWireTraceAssemblesAcrossNodes proves the tentpole end to end: one
// sampled proposal submitted at a follower carries its trace ID across
// the wire — follower forward, leader append, peer replication, acks,
// commit, apply — and the merged rings assemble into a single causally-
// ordered tree naming every node with per-hop latency.
func TestWireTraceAssemblesAcrossNodes(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:        KindRaft,
		Nodes:       ids("n1", "n2", "n3"),
		Seed:        7,
		Trace:       true,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	DumpTraceOnFailure(t, c)

	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	var follower types.NodeID
	for _, id := range ids("n1", "n2", "n3") {
		if id != leader {
			follower = id
			break
		}
	}
	pid, err := c.Propose(follower, []byte("traced-op"))
	if err != nil {
		t.Fatalf("propose on %s: %v", follower, err)
	}
	idx, ok := c.AwaitResolution(follower, pid, c.Sched.Now()+30*time.Second)
	if !ok {
		t.Fatalf("proposal %s never resolved", pid)
	}
	// Let the commit index advance everywhere so all three rings hold the
	// traced entry's commit record.
	c.RunFor(2 * time.Second)
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}

	trees := trace.AssembleTraces(c.MergedTrace())
	var tree *trace.TraceTree
	for _, tr := range trees {
		forwarded := false
		tr.Walk(func(_ int, s *trace.TraceSpan) {
			if s.Event.Type == trace.EvTraceHop && trace.HopKind(s.Event.Arg) == trace.HopForward {
				forwarded = true
			}
		})
		if forwarded {
			if tree != nil {
				t.Fatalf("proposal split across traces %016x and %016x", tree.ID, tr.ID)
			}
			tree = tr
		}
	}
	if tree == nil {
		t.Fatalf("no forwarded trace assembled from %d trees", len(trees))
	}

	// One tree, spanning all three nodes.
	if len(tree.Nodes) != 3 {
		t.Fatalf("trace %016x spans nodes %v, want all 3", tree.ID, tree.Nodes)
	}

	// Causal order is monotone: every child happens at or after its parent
	// (the per-hop gap is the latency attribution, never negative).
	spans := 0
	tree.Walk(func(depth int, s *trace.TraceSpan) {
		spans++
		if s.Event.Trace != tree.ID {
			t.Errorf("span %s carries trace %016x, want %016x", s.Event, s.Event.Trace, tree.ID)
		}
		if depth > 0 && s.Gap < 0 {
			t.Errorf("negative causal gap %s at %s", s.Gap, s.Event)
		}
	})
	if spans < 6 {
		t.Fatalf("only %d spans in the tree, journey incomplete", spans)
	}

	// The journey itself: forward at the follower, append at the leader,
	// replication onto both followers' logs, >=2 peer acks back at the
	// leader, commit records on every node, and the origin's apply stamp.
	ackers := map[types.NodeID]bool{}
	replicas := map[string]bool{}
	committed := map[string]bool{}
	var forwarded, appended, applied bool
	tree.Walk(func(_ int, s *trace.TraceSpan) {
		e := s.Event
		switch e.Type {
		case trace.EvTraceHop:
			switch trace.HopKind(e.Arg) {
			case trace.HopForward:
				forwarded = e.Node == string(follower)
			case trace.HopAppend:
				appended = e.Node == string(leader) && e.Index == idx
			case trace.HopReplicate:
				replicas[e.Node] = true
			case trace.HopAck:
				ackers[e.Peer] = true
			}
		case trace.EvCommitEntry:
			committed[e.Node] = true
		case trace.EvStage:
			if trace.Stage(e.Arg) == trace.StageApply && e.Node == string(follower) {
				applied = true
			}
		}
	})
	if !forwarded {
		t.Errorf("no forward hop recorded at follower %s", follower)
	}
	if !appended {
		t.Errorf("no append hop at leader %s index=%d", leader, idx)
	}
	if len(replicas) < 2 {
		t.Errorf("traced entry replicated on %d followers, want >=2 (%v)", len(replicas), replicas)
	}
	if len(ackers) < 2 {
		t.Errorf("leader saw acks from %d peers, want >=2 (%v)", len(ackers), ackers)
	}
	if len(committed) != 3 {
		t.Errorf("commit recorded on %d nodes, want 3 (%v)", len(committed), committed)
	}
	if !applied {
		t.Errorf("origin %s never stamped apply", follower)
	}

	// The rendered tree names every node and attributes per-hop latency.
	rendered := trace.FormatTree(tree)
	for _, id := range ids("n1", "n2", "n3") {
		if !strings.Contains(rendered, string(id)) {
			t.Errorf("rendered tree omits %s:\n%s", id, rendered)
		}
	}
	if !strings.Contains(rendered, "+") || !strings.Contains(rendered, "hop") {
		t.Errorf("rendered tree lacks per-hop latency lines:\n%s", rendered)
	}
	if t.Failed() {
		t.Logf("assembled tree:\n%s", rendered)
	}
}

// TestUnsampledRunCarriesNoTraceContext is the control: with sampling off
// (the default) an identical workload mints no trace IDs — nothing in any
// ring is trace-stamped and no trace-context bytes ride the wire (the
// codec only emits the context for non-zero IDs; see
// TestCodecUnsampledBytesIdentical for the byte-level proof).
func TestUnsampledRunCarriesNoTraceContext(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:  KindRaft,
		Nodes: ids("n1", "n2", "n3"),
		Seed:  7,
		Trace: true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	if _, err := c.RunProposals("n2", 5, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("proposals: %v", err)
	}
	merged := c.MergedTrace()
	if len(merged) == 0 {
		t.Fatal("no events recorded at all")
	}
	for _, e := range merged {
		if e.Trace != 0 {
			t.Fatalf("unsampled run recorded trace context: %s", e)
		}
		if e.Type == trace.EvTraceHop {
			t.Fatalf("unsampled run recorded a hop: %s", e)
		}
	}
	if trees := trace.AssembleTraces(merged); len(trees) != 0 {
		t.Fatalf("unsampled run assembled %d trees", len(trees))
	}
}

// TestFastRaftSampledProposalTraces covers the second core: a sampled
// proposal on the Fast Raft track stitches its vote-driven journey
// (self-insert, peer replication, vote acks, commit) into one tree too.
func TestFastRaftSampledProposalTraces(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:        KindFastRaft,
		Nodes:       ids("n1", "n2", "n3"),
		Seed:        9,
		Trace:       true,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	DumpTraceOnFailure(t, c)
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}
	pid, err := c.Propose("n2", []byte("fast-traced"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.AwaitResolution("n2", pid, c.Sched.Now()+30*time.Second); !ok {
		t.Fatalf("proposal %s never resolved", pid)
	}
	c.RunFor(2 * time.Second)

	trees := trace.AssembleTraces(c.MergedTrace())
	var best *trace.TraceTree
	for _, tr := range trees {
		if best == nil || len(tr.Nodes) > len(best.Nodes) {
			best = tr
		}
	}
	if best == nil {
		t.Fatal("no trace trees assembled")
	}
	if len(best.Nodes) < 3 {
		t.Fatalf("widest tree %016x spans only %v:\n%s", best.ID, best.Nodes, trace.FormatTree(best))
	}
	best.Walk(func(depth int, s *trace.TraceSpan) {
		if depth > 0 && s.Gap < 0 {
			t.Errorf("negative causal gap %s at %s", s.Gap, s.Event)
		}
	})
}
