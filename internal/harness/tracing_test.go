package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// TestFailoverTraceNarrative forces a leader crash and checks that the
// merged, time-ordered flight-recorder dump tells the failover story:
// replication by the old leader, an election after the crash, a new node
// winning it, and proposals flowing again — with the crashed node's ring
// still part of the narrative.
func TestFailoverTraceNarrative(t *testing.T) {
	c, err := NewCluster(Options{
		Kind:  KindFastRaft,
		Nodes: fiveNodes(),
		Seed:  11,
		Trace: true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	DumpTraceOnFailure(t, c)

	leader, ok := c.WaitForLeader(5 * time.Second)
	if !ok {
		t.Fatal("no leader")
	}
	if _, err := c.RunProposals("n2", 5, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("pre-crash proposals: %v", err)
	}
	crashAt := c.Sched.Now()
	c.Crash(leader)
	if _, ok := c.WaitForLeader(c.Sched.Now() + 10*time.Second); !ok {
		t.Fatal("no new leader after crash")
	}
	var prop types.NodeID
	for _, id := range fiveNodes() {
		if id != leader {
			prop = id
			break
		}
	}
	if _, err := c.RunProposals(prop, 5, c.Sched.Now()+30*time.Second); err != nil {
		t.Fatalf("post-crash proposals: %v", err)
	}
	if err := c.Safety.Err(); err != nil {
		t.Fatal(err)
	}

	merged := c.MergedTrace()
	if len(merged) == 0 {
		t.Fatal("no trace events recorded")
	}
	// Time-ordered, all five nodes contributing.
	nodes := map[string]bool{}
	for i, e := range merged {
		if i > 0 && e.At < merged[i-1].At {
			t.Fatalf("merged dump not time-ordered at %d: %s after %s", i, e.At, merged[i-1].At)
		}
		nodes[e.Node] = true
	}
	if len(nodes) != 5 {
		t.Fatalf("dump covers %d nodes, want all 5 (got %v)", len(nodes), nodes)
	}
	// The crashed leader's ring outlives the crash and is in the merge.
	if len(c.TraceSnapshot(leader)) == 0 {
		t.Fatalf("crashed leader %s has no retained events", leader)
	}
	// The narrative: the old leader led, replicated, then after the crash
	// another node won an election; proposals committed on both sides.
	var ledBefore, wonAfter, dispatched, committed bool
	for _, e := range merged {
		switch e.Type {
		case trace.EvRoleChange:
			if types.Role(e.Arg) == types.RoleLeader && e.Node == string(leader) && e.At < crashAt {
				ledBefore = true
			}
		case trace.EvElectionWon:
			if e.At > crashAt && e.Node != string(leader) {
				wonAfter = true
			}
		case trace.EvAppendDispatch:
			dispatched = true
		case trace.EvStage:
			if trace.Stage(e.Arg) == trace.StageCommit {
				committed = true
			}
		}
	}
	if !ledBefore {
		t.Errorf("dump has no pre-crash leadership of %s", leader)
	}
	if !wonAfter {
		t.Error("dump has no post-crash election win by a surviving node")
	}
	if !dispatched {
		t.Error("dump has no append dispatches")
	}
	if !committed {
		t.Error("dump has no commit-stage stamps")
	}
	if t.Failed() {
		t.Logf("merged dump:\n%s", trace.Format(merged))
	}
}

// fakeTB drives DumpTraceOnFailure without failing the real test.
type fakeTB struct {
	name     string
	failed   bool
	cleanups []func()
	logs     []string
}

func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Failed() bool      { return f.failed }
func (f *fakeTB) Logf(format string, args ...any) {
	f.logs = append(f.logs, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Name() string { return f.name }
func (f *fakeTB) runCleanups() {
	for _, fn := range f.cleanups {
		fn()
	}
}

func TestDumpTraceOnFailure(t *testing.T) {
	c, err := NewCluster(Options{Kind: KindRaft, Nodes: ids("n1", "n2", "n3"), Seed: 3, Trace: true})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if _, ok := c.WaitForLeader(5 * time.Second); !ok {
		t.Fatal("no leader")
	}

	// Passing test: no dump.
	pass := &fakeTB{name: "TestPass"}
	DumpTraceOnFailure(pass, c)
	pass.runCleanups()
	if len(pass.logs) != 0 {
		t.Fatalf("passing test dumped: %v", pass.logs)
	}

	// Failing test: dump logged and written to HRAFT_TRACE_DIR with the
	// test name sanitized into a file name.
	dir := t.TempDir()
	t.Setenv("HRAFT_TRACE_DIR", dir)
	fail := &fakeTB{name: "TestX/sub case", failed: true}
	DumpTraceOnFailure(fail, c)
	fail.runCleanups()
	joined := strings.Join(fail.logs, "\n")
	if !strings.Contains(joined, "flight-recorder dump") || !strings.Contains(joined, "election.won") {
		t.Fatalf("failure dump missing or empty:\n%s", joined)
	}
	path := filepath.Join(dir, "TestX_sub_case.trace")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace artifact not written: %v", err)
	}
	if !strings.Contains(string(data), "role") {
		t.Fatalf("trace artifact content suspect:\n%s", data)
	}

	// Tracing off: the dump explains itself instead of silently missing.
	plain, err := NewCluster(Options{Kind: KindRaft, Nodes: ids("n1", "n2", "n3"), Seed: 3})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	off := &fakeTB{name: "TestOff", failed: true}
	DumpTraceOnFailure(off, plain)
	off.runCleanups()
	if !strings.Contains(strings.Join(off.logs, "\n"), "no trace events") {
		t.Fatalf("disabled tracing not explained: %v", off.logs)
	}
}

// TestCraftTraceInterleavesLayers checks that a C-Raft site's local and
// global consensus layers record into one shared ring, labeled apart.
func TestCraftTraceInterleavesLayers(t *testing.T) {
	c, err := NewCraftCluster(CraftOptions{
		Clusters: []ClusterSpec{
			{ID: "cA", Sites: ids("a1", "a2", "a3"), Region: "us-east-1"},
			{ID: "cB", Sites: ids("b1", "b2", "b3"), Region: "eu-west-1"},
		},
		Seed:  5,
		Trace: true,
	})
	if err != nil {
		t.Fatalf("NewCraftCluster: %v", err)
	}
	if !c.WaitForLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	// 25 proposals at batch size 10: at least two full batches must make
	// the batch → global-order → replay round trip.
	p, err := c.StartProposer(ProposerOptions{Node: "a2", MaxProposals: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(func() bool { return p.Completed >= 25 }, c.Sched.Now()+2*time.Minute) {
		t.Fatalf("only %d/25 proposals resolved", p.Completed)
	}
	if !c.RunUntil(func() bool {
		return c.GlobalItemsCommitted(0, c.Sched.Now()+1) >= 20
	}, c.Sched.Now()+2*time.Minute) {
		t.Fatalf("only %d items committed globally", c.GlobalItemsCommitted(0, c.Sched.Now()+1))
	}
	merged := c.MergedTrace()
	var local, global bool
	for _, e := range merged {
		if strings.HasSuffix(e.Node, "/global") {
			global = true
		} else {
			local = true
		}
	}
	if !local || !global {
		t.Fatalf("dump lacks both layers (local=%v global=%v):\n%s", local, global, trace.Format(merged))
	}
	// Batch → global-order → replay hops are part of the story.
	seen := map[trace.EventType]bool{}
	for _, e := range merged {
		seen[e.Type] = true
	}
	for _, want := range []trace.EventType{trace.EvBatchPropose, trace.EvGlobalOrder, trace.EvReplay} {
		if !seen[want] {
			t.Errorf("dump has no %s events", want)
		}
	}
	if t.Failed() {
		t.Logf("merged dump:\n%s", trace.Format(merged))
	}
}
