package harness

import (
	"fmt"
	"time"

	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

// ProposerOptions configures a closed-loop proposer: it proposes one entry,
// waits for it to resolve, then proposes the next — the workload used by
// all of the paper's experiments.
type ProposerOptions struct {
	// Node is the proposing site.
	Node types.NodeID
	// MaxProposals stops the proposer after this many resolutions
	// (0 = unlimited).
	MaxProposals int
	// StopAfter stops the proposer once virtual time passes this instant
	// (0 = never).
	StopAfter time.Duration
	// ThinkTime separates a resolution from the next proposal.
	ThinkTime time.Duration
	// PayloadSize is the entry payload size in bytes (default 16).
	PayloadSize int
}

// Proposer is a running closed-loop proposer.
type Proposer struct {
	c    *Cluster
	opts ProposerOptions
	// Series records (completion time, latency) per resolved proposal.
	Series *stats.Series
	// Completed counts resolved proposals.
	Completed int
	seq       int
	stopped   bool
}

// StartProposer attaches a closed-loop proposer to a node.
func (c *Cluster) StartProposer(opts ProposerOptions) (*Proposer, error) {
	h := c.hosts[opts.Node]
	if h == nil {
		return nil, fmt.Errorf("harness: unknown proposer node %s", opts.Node)
	}
	if opts.PayloadSize == 0 {
		opts.PayloadSize = 16
	}
	p := &Proposer{c: c, opts: opts, Series: &stats.Series{}}
	h.OnResolve = func(_ types.ProposalID, at, latency time.Duration) {
		p.Series.Add(at, latency)
		p.Completed++
		p.next()
	}
	p.propose()
	return p, nil
}

// Stop halts the proposer after the current in-flight proposal.
func (p *Proposer) Stop() { p.stopped = true }

func (p *Proposer) done() bool {
	if p.stopped {
		return true
	}
	if p.opts.MaxProposals > 0 && p.Completed >= p.opts.MaxProposals {
		return true
	}
	if p.opts.StopAfter > 0 && p.c.Sched.Now() >= p.opts.StopAfter {
		return true
	}
	return false
}

func (p *Proposer) next() {
	if p.done() {
		return
	}
	if p.opts.ThinkTime > 0 {
		p.c.Sched.After(p.opts.ThinkTime, p.propose)
		return
	}
	// Propose at the same virtual instant as the resolution; scheduling an
	// immediate event keeps stack depth bounded.
	p.c.Sched.After(0, p.propose)
}

func (p *Proposer) propose() {
	if p.done() {
		return
	}
	h := p.c.hosts[p.opts.Node]
	if h == nil || !h.alive {
		return
	}
	p.seq++
	payload := make([]byte, p.opts.PayloadSize)
	for i := range payload {
		payload[i] = byte(p.seq + i)
	}
	if _, err := p.c.Propose(p.opts.Node, payload); err != nil {
		// Node stopped mid-run; the proposer simply ends.
		p.stopped = true
	}
}

// RunProposals drives a single closed-loop proposer on node until count
// proposals resolve (or the deadline passes), returning the latency
// summary. It is the Figure 3 primitive.
func (c *Cluster) RunProposals(node types.NodeID, count int, deadline time.Duration) (stats.Summary, error) {
	p, err := c.StartProposer(ProposerOptions{Node: node, MaxProposals: count})
	if err != nil {
		return stats.Summary{}, err
	}
	ok := c.RunUntil(func() bool { return p.Completed >= count }, deadline)
	if !ok {
		return stats.Summarize(p.Series.Values()),
			fmt.Errorf("harness: only %d/%d proposals resolved by %s", p.Completed, count, deadline)
	}
	return stats.Summarize(p.Series.Values()), nil
}
