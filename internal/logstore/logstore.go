// Package logstore implements the replicated log used by every consensus
// core in this repository.
//
// Unlike classic Raft's append-only log, a Fast Raft log is sparse:
// proposers broadcast entries directly to sites at chosen indices, so a
// site may insert index i while index j < i is still empty. Each entry also
// carries an approval marker (self vs leader). The store maintains two key
// invariants the protocols rely on:
//
//   - the leader-approved entries always form a contiguous prefix
//     [1..LastLeaderIndex()];
//   - an occupied slot is never silently replaced: self-approved entries
//     are only overwritten by leader-approved ones.
//
// Classic Raft uses the same store in append-only mode (all entries
// leader-approved) with suffix truncation on conflict.
package logstore

import (
	"errors"
	"fmt"

	"github.com/hraft-io/hraft/internal/types"
)

// ErrOccupied is returned by Insert when the slot already holds an entry.
var ErrOccupied = errors.New("logstore: slot occupied")

// ErrGap is returned by AppendLeader when the append would break the
// leader-approved prefix contiguity.
var ErrGap = errors.New("logstore: leader-approved prefix gap")

// Log is a sparse, 1-indexed replicated log. It is not safe for concurrent
// use; the consensus cores are single-threaded per node.
type Log struct {
	// entries[i-1] holds index i; nil means a hole.
	entries []*types.Entry
	// lastLeader is the highest index of the contiguous leader-approved
	// prefix.
	lastLeader types.Index
	// lastIndex is the highest occupied index.
	lastIndex types.Index
	// byPID locates entries by proposal for de-duplication. Values are
	// indices; entries with zero PIDs are not tracked.
	byPID map[types.ProposalID]types.Index
	// config is the configuration carried by the last KindConfig entry in
	// the log, and configIndex its index (0 if none).
	config      types.Config
	configIndex types.Index
}

// New returns an empty log with the given bootstrap configuration. The
// bootstrap configuration is what sites use before any config entry exists
// in the log.
func New(bootstrap types.Config) *Log {
	return &Log{
		byPID:  make(map[types.ProposalID]types.Index),
		config: bootstrap.Clone(),
	}
}

// Get returns the entry at idx, or ok=false for a hole or out-of-range
// index. The returned entry is a copy.
func (l *Log) Get(idx types.Index) (types.Entry, bool) {
	if e := l.at(idx); e != nil {
		return e.Clone(), true
	}
	return types.Entry{}, false
}

// Has reports whether idx holds an entry.
func (l *Log) Has(idx types.Index) bool { return l.at(idx) != nil }

// Term returns the term of the entry at idx, or 0 for a hole.
func (l *Log) Term(idx types.Index) types.Term {
	if e := l.at(idx); e != nil {
		return e.Term
	}
	return 0
}

// LastIndex returns the highest occupied index (0 if empty).
func (l *Log) LastIndex() types.Index { return l.lastIndex }

// LastLeaderIndex returns the highest index of the contiguous
// leader-approved prefix (the paper's lastLeaderIndex).
func (l *Log) LastLeaderIndex() types.Index { return l.lastLeader }

// LastLeaderTerm returns the term of the entry at LastLeaderIndex (0 if
// none).
func (l *Log) LastLeaderTerm() types.Term { return l.Term(l.lastLeader) }

// Config returns the active configuration (last config entry in the log,
// or the bootstrap configuration) and the index it came from (0 for
// bootstrap).
func (l *Log) Config() (types.Config, types.Index) {
	return l.config.Clone(), l.configIndex
}

// FindProposal returns the index at which the proposal identified by pid is
// stored, or 0.
func (l *Log) FindProposal(pid types.ProposalID) types.Index {
	if pid.IsZero() {
		return 0
	}
	return l.byPID[pid]
}

// InsertSelf inserts a self-approved entry at idx if the slot is free,
// implementing the follower's handling of a proposer broadcast. The entry's
// Index and Approval are overwritten; other fields are kept.
func (l *Log) InsertSelf(idx types.Index, e types.Entry) error {
	if idx == 0 {
		return fmt.Errorf("logstore: insert at index 0")
	}
	if l.at(idx) != nil {
		return ErrOccupied
	}
	e = e.Clone()
	e.Index = idx
	e.Approval = types.ApprovedSelf
	l.place(idx, &e)
	return nil
}

// AppendLeader places a leader-approved entry at idx, which must be exactly
// LastLeaderIndex()+1 to preserve prefix contiguity. Any occupant (a
// self-approved entry, or a leader-approved entry from an older term being
// overwritten after a leadership change) is replaced. The entry's Index and
// Approval are overwritten.
func (l *Log) AppendLeader(idx types.Index, e types.Entry) error {
	if idx != l.lastLeader+1 {
		return fmt.Errorf("%w: append %d after leader prefix %d", ErrGap, idx, l.lastLeader)
	}
	e = e.Clone()
	e.Index = idx
	e.Approval = types.ApprovedLeader
	l.remove(idx)
	l.place(idx, &e)
	l.lastLeader = idx
	return nil
}

// OverwriteLeader replaces the slot at idx with a leader-approved entry
// even when idx is inside the existing leader-approved prefix. It is used
// when a new leader's AppendEntries conflicts with stale leader-approved
// entries. idx must not exceed LastLeaderIndex()+1.
func (l *Log) OverwriteLeader(idx types.Index, e types.Entry) error {
	if idx > l.lastLeader+1 {
		return fmt.Errorf("%w: overwrite %d beyond leader prefix %d", ErrGap, idx, l.lastLeader)
	}
	e = e.Clone()
	e.Index = idx
	e.Approval = types.ApprovedLeader
	l.remove(idx)
	l.place(idx, &e)
	if idx > l.lastLeader {
		l.lastLeader = idx
	}
	return nil
}

// PromoteToLeader marks the existing entry at idx leader-approved without
// changing its contents, used when a follower receives from the leader an
// entry it already inserted. idx must be LastLeaderIndex()+1.
func (l *Log) PromoteToLeader(idx types.Index, term types.Term) error {
	e := l.at(idx)
	if e == nil {
		return fmt.Errorf("logstore: promote hole %d", idx)
	}
	if idx != l.lastLeader+1 {
		return fmt.Errorf("%w: promote %d after leader prefix %d", ErrGap, idx, l.lastLeader)
	}
	e.Approval = types.ApprovedLeader
	e.Term = term
	l.lastLeader = idx
	if e.Kind == types.KindConfig && e.Config != nil {
		l.adoptConfig(*e)
	}
	return nil
}

// TruncateSuffix removes all entries with index > idx. Classic Raft uses it
// to resolve AppendEntries conflicts. Fast Raft never truncates (it would
// discard self-approved entries), which the core enforces by not calling
// this.
func (l *Log) TruncateSuffix(idx types.Index) {
	for i := l.lastIndex; i > idx; i-- {
		l.remove(i)
	}
	if l.lastIndex > idx {
		l.lastIndex = idx
	}
	for l.lastIndex > 0 && l.at(l.lastIndex) == nil {
		l.lastIndex--
	}
	if l.lastLeader > idx {
		l.lastLeader = idx
	}
	l.recomputeConfig()
}

// SelfApproved returns copies of all self-approved entries, ascending by
// index. They are what a voter ships to a candidate for recovery.
func (l *Log) SelfApproved() []types.Entry {
	var out []types.Entry
	for i := types.Index(1); i <= l.lastIndex; i++ {
		if e := l.at(i); e != nil && e.Approval == types.ApprovedSelf {
			out = append(out, e.Clone())
		}
	}
	return out
}

// Range returns copies of the entries in [lo, hi] (inclusive), skipping
// holes. Used to build AppendEntries payloads and catch-up batches.
func (l *Log) Range(lo, hi types.Index) []types.Entry {
	if lo == 0 {
		lo = 1
	}
	if hi > l.lastIndex {
		hi = l.lastIndex
	}
	var out []types.Entry
	for i := lo; i <= hi; i++ {
		if e := l.at(i); e != nil {
			out = append(out, e.Clone())
		}
	}
	return out
}

// LeaderRange returns copies of leader-approved entries in
// [lo, min(hi, LastLeaderIndex)]; the result is contiguous by construction.
func (l *Log) LeaderRange(lo, hi types.Index) []types.Entry {
	if hi > l.lastLeader {
		hi = l.lastLeader
	}
	return l.Range(lo, hi)
}

// Snapshot returns copies of every entry in the log, ascending, including
// holes' absence. Used by stable storage and tests.
func (l *Log) Snapshot() []types.Entry {
	return l.Range(1, l.lastIndex)
}

// CheckInvariants verifies structural invariants; tests call it after every
// mutation sequence.
func (l *Log) CheckInvariants() error {
	for i := types.Index(1); i <= l.lastLeader; i++ {
		e := l.at(i)
		if e == nil {
			return fmt.Errorf("logstore: hole %d inside leader prefix %d", i, l.lastLeader)
		}
		if e.Approval != types.ApprovedLeader {
			return fmt.Errorf("logstore: non-leader entry %d inside leader prefix", i)
		}
	}
	if l.lastIndex > 0 && l.at(l.lastIndex) == nil {
		return fmt.Errorf("logstore: lastIndex %d is a hole", l.lastIndex)
	}
	for i := l.lastIndex + 1; i <= types.Index(len(l.entries)); i++ {
		if l.at(i) != nil {
			return fmt.Errorf("logstore: entry beyond lastIndex at %d", i)
		}
	}
	return nil
}

func (l *Log) at(idx types.Index) *types.Entry {
	if idx == 0 || idx > types.Index(len(l.entries)) {
		return nil
	}
	return l.entries[idx-1]
}

func (l *Log) place(idx types.Index, e *types.Entry) {
	for types.Index(len(l.entries)) < idx {
		l.entries = append(l.entries, nil)
	}
	l.entries[idx-1] = e
	if idx > l.lastIndex {
		l.lastIndex = idx
	}
	if !e.PID.IsZero() {
		l.byPID[e.PID] = idx
	}
	if e.Kind == types.KindConfig && e.Config != nil && idx >= l.configIndex {
		l.adoptConfig(*e)
	}
}

func (l *Log) remove(idx types.Index) {
	e := l.at(idx)
	if e == nil {
		return
	}
	if !e.PID.IsZero() && l.byPID[e.PID] == idx {
		delete(l.byPID, e.PID)
	}
	wasConfig := e.Kind == types.KindConfig
	l.entries[idx-1] = nil
	if wasConfig && idx == l.configIndex {
		l.recomputeConfig()
	}
}

func (l *Log) adoptConfig(e types.Entry) {
	l.config = e.Config.Clone()
	l.configIndex = e.Index
}

// recomputeConfig rescans for the highest config entry. Only called on the
// rare removal/truncation paths.
func (l *Log) recomputeConfig() {
	for i := l.lastIndex; i >= 1; i-- {
		if e := l.at(i); e != nil && e.Kind == types.KindConfig && e.Config != nil {
			l.config = e.Config.Clone()
			l.configIndex = i
			return
		}
	}
	l.configIndex = 0
	// The bootstrap configuration is not recoverable from entries; keep the
	// current one. Callers that truncate below the first config entry are
	// restoring from storage and reset the log wholesale.
}

// Restore rebuilds a log from persisted entries (used on recovery from
// stable storage). Entries must be sorted ascending by index.
func Restore(bootstrap types.Config, entries []types.Entry) (*Log, error) {
	l := New(bootstrap)
	for _, e := range entries {
		if e.Index == 0 {
			return nil, fmt.Errorf("logstore: restore entry with index 0")
		}
		ec := e.Clone()
		l.place(e.Index, &ec)
	}
	// Recompute the leader prefix.
	for i := types.Index(1); ; i++ {
		e := l.at(i)
		if e == nil || e.Approval != types.ApprovedLeader {
			l.lastLeader = i - 1
			break
		}
	}
	l.recomputeConfig()
	if err := l.CheckInvariants(); err != nil {
		return nil, err
	}
	return l, nil
}
