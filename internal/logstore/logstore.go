// Package logstore implements the replicated log used by every consensus
// core in this repository.
//
// Unlike classic Raft's append-only log, a Fast Raft log is sparse:
// proposers broadcast entries directly to sites at chosen indices, so a
// site may insert index i while index j < i is still empty. Each entry also
// carries an approval marker (self vs leader). The store maintains two key
// invariants the protocols rely on:
//
//   - the leader-approved entries always form a contiguous prefix
//     [FirstIndex()..LastLeaderIndex()];
//   - an occupied slot is never silently replaced: self-approved entries
//     are only overwritten by leader-approved ones.
//
// Classic Raft uses the same store in append-only mode (all entries
// leader-approved) with suffix truncation on conflict.
//
// The log may not start at index 1: after compaction, everything at or
// below the snapshot boundary (SnapshotIndex/SnapshotTerm) is gone and the
// first retained slot is SnapshotIndex()+1. The boundary only ever covers
// committed, leader-approved prefixes, so compaction never discards
// self-approved entries the recovery algorithm might need.
package logstore

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"

	"github.com/hraft-io/hraft/internal/types"
)

// ErrOccupied is returned by Insert when the slot already holds an entry.
var ErrOccupied = errors.New("logstore: slot occupied")

// ErrGap is returned by AppendLeader when the append would break the
// leader-approved prefix contiguity.
var ErrGap = errors.New("logstore: leader-approved prefix gap")

// ErrCompacted is returned by CompactTo for a boundary that is not inside
// the current leader-approved prefix.
var ErrCompacted = errors.New("logstore: invalid compaction boundary")

// Log is a sparse, 1-indexed replicated log whose prefix may be compacted
// into a snapshot. It is not safe for concurrent use; the consensus cores
// are single-threaded per node.
type Log struct {
	// entries[i - snapIndex - 1] holds index i; nil means a hole.
	entries []*types.Entry
	// snapIndex/snapTerm are the snapshot boundary: the index and term of
	// the last compacted entry (0/0 when the log starts at 1).
	snapIndex types.Index
	snapTerm  types.Term
	// lastLeader is the highest index of the contiguous leader-approved
	// prefix.
	lastLeader types.Index
	// lastIndex is the highest occupied index (== snapIndex when the
	// retained log is empty).
	lastIndex types.Index
	// byPID locates retained entries by proposal for de-duplication.
	// Values are indices; entries with zero PIDs are not tracked. Mappings
	// at or below the compaction boundary move into the compacted window —
	// bounding the map by the retained log length — while restart-safe
	// de-duplication of committed-then-compacted proposals is owned by the
	// session registry (internal/session), whose state rides in the
	// snapshot.
	byPID map[types.ProposalID]types.Index
	// compacted is the sessionless-retry window: a bounded LRU of proposal
	// mappings whose entries were dropped by compaction. Sessionless
	// proposers that retry after a lost acknowledgment race compaction —
	// once the committed entry is snapshotted away, byPID no longer knows
	// it and the retry would commit a second time. The window keeps the
	// most recently compacted mappings findable so such retries still
	// resolve to the original index. Each mapping carries a payload digest:
	// a restarted proposer's sequence counter resets, so a reused pid with
	// different bytes is a fresh proposal, not a retry. Best-effort only
	// (bounded, not restart-safe): sessions remain the exactly-once
	// mechanism.
	compacted pidWindow
	// compactedHits counts FindProposal answers served from the window;
	// each one is a duplicate commit avoided.
	compactedHits uint64
	// config is the configuration carried by the last KindConfig entry in
	// the log (or the snapshot/bootstrap base), and configIndex its index
	// (0 if from bootstrap).
	config      types.Config
	configIndex types.Index
	// base is the configuration in effect below FirstIndex (bootstrap, or
	// the snapshot's config after compaction/installation), with the index
	// it came from. It is the fallback when no retained entry carries one.
	base      types.Config
	baseIndex types.Index
}

// compactedWindowSize bounds the sessionless-retry window: how many
// recently compacted proposal mappings stay findable after their entries
// left the log. Large enough to cover a burst of retries racing one
// compaction, small enough to be memory-irrelevant.
const compactedWindowSize = 1024

// pidWindow is a bounded LRU of proposal→index mappings. Lookups refresh
// recency; inserting past capacity evicts the least recently used mapping.
type pidWindow struct {
	byPID map[types.ProposalID]*list.Element
	order *list.List // front = most recently used
}

type pidMapping struct {
	pid    types.ProposalID
	idx    types.Index
	digest uint64
}

func (w *pidWindow) add(pid types.ProposalID, idx types.Index, digest uint64) {
	if w.byPID == nil {
		w.byPID = make(map[types.ProposalID]*list.Element)
		w.order = list.New()
	}
	if el, ok := w.byPID[pid]; ok {
		m := el.Value.(*pidMapping)
		m.idx, m.digest = idx, digest
		w.order.MoveToFront(el)
		return
	}
	w.byPID[pid] = w.order.PushFront(&pidMapping{pid: pid, idx: idx, digest: digest})
	if w.order.Len() > compactedWindowSize {
		oldest := w.order.Back()
		w.order.Remove(oldest)
		delete(w.byPID, oldest.Value.(*pidMapping).pid)
	}
}

func (w *pidWindow) get(pid types.ProposalID) (types.Index, uint64, bool) {
	el, ok := w.byPID[pid]
	if !ok {
		return 0, 0, false
	}
	w.order.MoveToFront(el)
	m := el.Value.(*pidMapping)
	return m.idx, m.digest, true
}

// payloadDigest is FNV-1a over an entry's payload: the window's way to
// tell a genuine retry (same pid, same bytes) from a fresh proposal whose
// restarted proposer reused the pid.
func payloadDigest(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

func (w *pidWindow) len() int {
	if w.order == nil {
		return 0
	}
	return w.order.Len()
}

// New returns an empty log with the given bootstrap configuration. The
// bootstrap configuration is what sites use before any config entry exists
// in the log.
func New(bootstrap types.Config) *Log {
	return &Log{
		byPID:  make(map[types.ProposalID]types.Index),
		config: bootstrap.Clone(),
		base:   bootstrap.Clone(),
	}
}

// Get returns the entry at idx, or ok=false for a hole, a compacted index
// or an out-of-range index. The returned entry is a copy.
func (l *Log) Get(idx types.Index) (types.Entry, bool) {
	if e := l.at(idx); e != nil {
		return e.Clone(), true
	}
	return types.Entry{}, false
}

// Has reports whether idx holds an entry.
func (l *Log) Has(idx types.Index) bool { return l.at(idx) != nil }

// Term returns the term of the entry at idx, the snapshot term at the
// boundary, or 0 for a hole or compacted index.
func (l *Log) Term(idx types.Index) types.Term {
	if idx == l.snapIndex {
		return l.snapTerm
	}
	if e := l.at(idx); e != nil {
		return e.Term
	}
	return 0
}

// FirstIndex returns the first retained log position (1 when nothing was
// compacted).
func (l *Log) FirstIndex() types.Index { return l.snapIndex + 1 }

// SnapshotIndex returns the index of the last compacted entry (0 if none).
func (l *Log) SnapshotIndex() types.Index { return l.snapIndex }

// SnapshotTerm returns the term of the entry at SnapshotIndex (0 if none).
func (l *Log) SnapshotTerm() types.Term { return l.snapTerm }

// LastIndex returns the highest occupied index (SnapshotIndex if the
// retained log is empty, 0 for a fresh log).
func (l *Log) LastIndex() types.Index { return l.lastIndex }

// LastLeaderIndex returns the highest index of the contiguous
// leader-approved prefix (the paper's lastLeaderIndex). Compacted entries
// were all leader-approved, so the prefix includes the boundary.
func (l *Log) LastLeaderIndex() types.Index { return l.lastLeader }

// LastLeaderTerm returns the term of the entry at LastLeaderIndex (0 if
// none).
func (l *Log) LastLeaderTerm() types.Term { return l.Term(l.lastLeader) }

// Config returns the active configuration (last config entry in the log,
// or the snapshot/bootstrap base) and the index it came from (0 for
// bootstrap).
func (l *Log) Config() (types.Config, types.Index) {
	return l.config.Clone(), l.configIndex
}

// ConfigAt returns the configuration in effect at idx: the last config
// entry at or below idx, falling back to the snapshot/bootstrap base. It is
// what a snapshot taken at idx must record.
func (l *Log) ConfigAt(idx types.Index) (types.Config, types.Index) {
	if l.configIndex <= idx {
		return l.config.Clone(), l.configIndex
	}
	for i := idx; i >= l.FirstIndex(); i-- {
		if e := l.at(i); e != nil && e.Kind == types.KindConfig && e.Config != nil {
			return e.Config.Clone(), i
		}
	}
	// No config entry in (boundary, idx]: the base configuration
	// (bootstrap, or the snapshot's) is still in effect at idx.
	return l.base.Clone(), l.baseIndex
}

// FindProposal returns the index at which the proposal identified by pid is
// stored, or 0. A retained entry answers directly; failing that, the
// bounded window of recently compacted mappings is consulted, so a
// sessionless retry arriving just after compaction still resolves to the
// original (committed) index instead of committing twice.
func (l *Log) FindProposal(pid types.ProposalID) types.Index {
	if pid.IsZero() {
		return 0
	}
	if idx := l.byPID[pid]; idx != 0 {
		return idx
	}
	if idx, _, ok := l.compacted.get(pid); ok {
		l.compactedHits++
		return idx
	}
	return 0
}

// FindProposalFor is FindProposal for de-duplication decisions: it only
// reports a match when the stored payload equals data. A proposer's
// in-memory sequence counter resets on restart, so a reused ProposalID can
// name a brand-new proposal — answering it with the old entry's index
// would acknowledge a write that never committed. Retained entries compare
// payloads directly; windowed mappings compare the digest captured at
// compaction. Callers reasoning about entries already placed in the log
// (recovery, decide) keep using FindProposal.
func (l *Log) FindProposalFor(pid types.ProposalID, data []byte) types.Index {
	if pid.IsZero() {
		return 0
	}
	if idx := l.byPID[pid]; idx != 0 {
		if e := l.at(idx); e != nil && bytes.Equal(e.Data, data) {
			return idx
		}
		return 0
	}
	if idx, digest, ok := l.compacted.get(pid); ok && digest == payloadDigest(data) {
		l.compactedHits++
		return idx
	}
	return 0
}

// InsertSelf inserts a self-approved entry at idx if the slot is free,
// implementing the follower's handling of a proposer broadcast. The entry's
// Index and Approval are overwritten; other fields are kept.
func (l *Log) InsertSelf(idx types.Index, e types.Entry) error {
	if idx < l.FirstIndex() {
		return fmt.Errorf("logstore: insert at compacted index %d (first %d)", idx, l.FirstIndex())
	}
	if l.at(idx) != nil {
		return ErrOccupied
	}
	e = e.Clone()
	e.Index = idx
	e.Approval = types.ApprovedSelf
	l.place(idx, &e)
	return nil
}

// AppendLeader places a leader-approved entry at idx, which must be exactly
// LastLeaderIndex()+1 to preserve prefix contiguity. Any occupant (a
// self-approved entry, or a leader-approved entry from an older term being
// overwritten after a leadership change) is replaced. The entry's Index and
// Approval are overwritten.
func (l *Log) AppendLeader(idx types.Index, e types.Entry) error {
	if idx != l.lastLeader+1 {
		return fmt.Errorf("%w: append %d after leader prefix %d", ErrGap, idx, l.lastLeader)
	}
	e = e.Clone()
	e.Index = idx
	e.Approval = types.ApprovedLeader
	l.remove(idx)
	l.place(idx, &e)
	l.lastLeader = idx
	return nil
}

// OverwriteLeader replaces the slot at idx with a leader-approved entry
// even when idx is inside the existing leader-approved prefix. It is used
// when a new leader's AppendEntries conflicts with stale leader-approved
// entries. idx must not exceed LastLeaderIndex()+1 nor fall below
// FirstIndex().
func (l *Log) OverwriteLeader(idx types.Index, e types.Entry) error {
	if idx > l.lastLeader+1 {
		return fmt.Errorf("%w: overwrite %d beyond leader prefix %d", ErrGap, idx, l.lastLeader)
	}
	if idx < l.FirstIndex() {
		return fmt.Errorf("logstore: overwrite compacted index %d (first %d)", idx, l.FirstIndex())
	}
	e = e.Clone()
	e.Index = idx
	e.Approval = types.ApprovedLeader
	l.remove(idx)
	l.place(idx, &e)
	if idx > l.lastLeader {
		l.lastLeader = idx
	}
	return nil
}

// PromoteToLeader marks the existing entry at idx leader-approved without
// changing its contents, used when a follower receives from the leader an
// entry it already inserted. idx must be LastLeaderIndex()+1.
func (l *Log) PromoteToLeader(idx types.Index, term types.Term) error {
	e := l.at(idx)
	if e == nil {
		return fmt.Errorf("logstore: promote hole %d", idx)
	}
	if idx != l.lastLeader+1 {
		return fmt.Errorf("%w: promote %d after leader prefix %d", ErrGap, idx, l.lastLeader)
	}
	e.Approval = types.ApprovedLeader
	e.Term = term
	l.lastLeader = idx
	if e.Kind == types.KindConfig && e.Config != nil {
		l.adoptConfig(*e)
	}
	return nil
}

// TruncateSuffix removes all entries with index > idx. Classic Raft uses it
// to resolve AppendEntries conflicts. Fast Raft never truncates (it would
// discard self-approved entries), which the core enforces by not calling
// this. idx is clamped to the compaction boundary.
func (l *Log) TruncateSuffix(idx types.Index) {
	if idx < l.snapIndex {
		idx = l.snapIndex
	}
	for i := l.lastIndex; i > idx; i-- {
		l.remove(i)
	}
	if l.lastIndex > idx {
		l.lastIndex = idx
	}
	for l.lastIndex > l.snapIndex && l.at(l.lastIndex) == nil {
		l.lastIndex--
	}
	if l.lastLeader > idx {
		l.lastLeader = idx
	}
	l.recomputeConfig()
}

// CompactTo discards every entry at or below idx, recording idx/term as the
// new snapshot boundary. The boundary must lie inside the leader-approved
// prefix (callers additionally restrict it to committed, applied entries)
// and advance monotonically. Proposal-ID mappings of compacted entries move
// into the bounded retry window: full in-log de-duplication covers the
// retained suffix, recently compacted proposals stay findable for a while,
// and the session registry covers everything older.
func (l *Log) CompactTo(idx types.Index, term types.Term) error {
	if idx <= l.snapIndex {
		return fmt.Errorf("%w: compact to %d at or below boundary %d", ErrCompacted, idx, l.snapIndex)
	}
	if idx > l.lastLeader {
		return fmt.Errorf("%w: compact to %d beyond leader prefix %d", ErrCompacted, idx, l.lastLeader)
	}
	l.base, l.baseIndex = l.ConfigAt(idx)
	digests := l.capturePIDDigests(idx)
	l.entries = append([]*types.Entry(nil), l.entries[idx-l.snapIndex:]...)
	l.snapIndex = idx
	l.snapTerm = term
	if l.lastIndex < idx {
		l.lastIndex = idx
	}
	l.dropCompactedPIDs(digests)
	return nil
}

// capturePIDDigests records the payload digest of every tracked proposal at
// or below boundary, while its entry is still retained. Compaction paths
// call it just before dropping the prefix so the retry window can later
// distinguish genuine retries from reused proposal IDs.
func (l *Log) capturePIDDigests(boundary types.Index) map[types.ProposalID]uint64 {
	var digests map[types.ProposalID]uint64
	for pid, idx := range l.byPID {
		if idx <= boundary {
			if e := l.at(idx); e != nil {
				if digests == nil {
					digests = make(map[types.ProposalID]uint64)
				}
				digests[pid] = payloadDigest(e.Data)
			}
		}
	}
	return digests
}

// dropCompactedPIDs moves proposal mappings that point at or below the
// snapshot boundary into the bounded retry window, keeping the primary map
// proportional to the retained log. Only compaction paths call this, so
// every windowed mapping refers to a committed entry — truncated or
// overwritten (never-committed) entries are removed outright by remove()
// and never enter the window.
func (l *Log) dropCompactedPIDs(digests map[types.ProposalID]uint64) {
	for pid, idx := range l.byPID {
		if idx <= l.snapIndex {
			delete(l.byPID, pid)
			l.compacted.add(pid, idx, digests[pid])
		}
	}
}

// PIDCount returns the number of tracked proposal mappings (tests assert it
// stays bounded across compactions).
func (l *Log) PIDCount() int { return len(l.byPID) }

// CompactedPIDCount returns the number of mappings in the sessionless-retry
// window (bounded by a fixed capacity; tests assert the bound holds).
func (l *Log) CompactedPIDCount() int { return l.compacted.len() }

// CompactedPIDHits returns how many FindProposal lookups were answered from
// the retry window — each one a duplicate commit avoided after compaction
// outran a sessionless retry.
func (l *Log) CompactedPIDHits() uint64 { return l.compactedHits }

// InstallSnapshot resets the log to a snapshot boundary received from the
// leader: everything at or below meta.LastIndex is dropped and the
// snapshot's configuration becomes the base. Entries above the boundary
// (for a lagging site, typically none) are retained — self-approved ones
// may still matter to Fast Raft recovery, and leader-approved ones remain
// consistent with the leader that sent the snapshot.
func (l *Log) InstallSnapshot(meta types.SnapshotMeta) error {
	if meta.LastIndex <= l.snapIndex {
		return fmt.Errorf("%w: install snapshot %d at or below boundary %d",
			ErrCompacted, meta.LastIndex, l.snapIndex)
	}
	digests := l.capturePIDDigests(meta.LastIndex)
	if meta.LastIndex <= types.Index(len(l.entries))+l.snapIndex {
		// Boundary inside the retained range: drop the covered prefix.
		l.entries = append([]*types.Entry(nil), l.entries[meta.LastIndex-l.snapIndex:]...)
	} else {
		l.entries = nil
	}
	l.snapIndex = meta.LastIndex
	l.snapTerm = meta.LastTerm
	if l.lastIndex < meta.LastIndex {
		l.lastIndex = meta.LastIndex
	}
	if l.lastLeader < meta.LastIndex {
		l.lastLeader = meta.LastIndex
	}
	// Adopt the snapshot's configuration unless a config entry above the
	// boundary (already consistent with the leader) overrides it.
	l.base = meta.Config.Clone()
	l.baseIndex = meta.ConfigIndex
	l.recomputeConfig()
	l.dropCompactedPIDs(digests)
	return nil
}

// SelfApproved returns copies of all self-approved entries, ascending by
// index. They are what a voter ships to a candidate for recovery.
func (l *Log) SelfApproved() []types.Entry {
	var out []types.Entry
	for i := l.FirstIndex(); i <= l.lastIndex; i++ {
		if e := l.at(i); e != nil && e.Approval == types.ApprovedSelf {
			out = append(out, e.Clone())
		}
	}
	return out
}

// Range returns copies of the entries in [lo, hi] (inclusive), skipping
// holes and the compacted prefix. Used to build AppendEntries payloads and
// catch-up batches.
func (l *Log) Range(lo, hi types.Index) []types.Entry {
	if lo < l.FirstIndex() {
		lo = l.FirstIndex()
	}
	if hi > l.lastIndex {
		hi = l.lastIndex
	}
	var out []types.Entry
	for i := lo; i <= hi; i++ {
		if e := l.at(i); e != nil {
			out = append(out, e.Clone())
		}
	}
	return out
}

// LeaderRange returns copies of leader-approved entries in
// [lo, min(hi, LastLeaderIndex)]; the result is contiguous by construction.
func (l *Log) LeaderRange(lo, hi types.Index) []types.Entry {
	if hi > l.lastLeader {
		hi = l.lastLeader
	}
	return l.Range(lo, hi)
}

// Snapshot returns copies of every retained entry in the log, ascending.
// Used by stable storage and tests.
func (l *Log) Snapshot() []types.Entry {
	return l.Range(l.FirstIndex(), l.lastIndex)
}

// CheckInvariants verifies structural invariants; tests call it after every
// mutation sequence.
func (l *Log) CheckInvariants() error {
	for i := l.FirstIndex(); i <= l.lastLeader; i++ {
		e := l.at(i)
		if e == nil {
			return fmt.Errorf("logstore: hole %d inside leader prefix %d", i, l.lastLeader)
		}
		if e.Approval != types.ApprovedLeader {
			return fmt.Errorf("logstore: non-leader entry %d inside leader prefix", i)
		}
	}
	if l.lastIndex > l.snapIndex && l.at(l.lastIndex) == nil {
		return fmt.Errorf("logstore: lastIndex %d is a hole", l.lastIndex)
	}
	if l.lastIndex < l.snapIndex {
		return fmt.Errorf("logstore: lastIndex %d below snapshot boundary %d", l.lastIndex, l.snapIndex)
	}
	if l.lastLeader < l.snapIndex {
		return fmt.Errorf("logstore: leader prefix %d below snapshot boundary %d", l.lastLeader, l.snapIndex)
	}
	for i := l.lastIndex + 1; i <= l.snapIndex+types.Index(len(l.entries)); i++ {
		if l.at(i) != nil {
			return fmt.Errorf("logstore: entry beyond lastIndex at %d", i)
		}
	}
	return nil
}

func (l *Log) at(idx types.Index) *types.Entry {
	if idx <= l.snapIndex || idx > l.snapIndex+types.Index(len(l.entries)) {
		return nil
	}
	return l.entries[idx-l.snapIndex-1]
}

func (l *Log) place(idx types.Index, e *types.Entry) {
	if idx <= l.snapIndex {
		panic(fmt.Sprintf("logstore: place at compacted index %d (boundary %d)", idx, l.snapIndex))
	}
	for l.snapIndex+types.Index(len(l.entries)) < idx {
		l.entries = append(l.entries, nil)
	}
	l.entries[idx-l.snapIndex-1] = e
	if idx > l.lastIndex {
		l.lastIndex = idx
	}
	if !e.PID.IsZero() {
		l.byPID[e.PID] = idx
	}
	if e.Kind == types.KindConfig && e.Config != nil && idx >= l.configIndex {
		l.adoptConfig(*e)
	}
}

func (l *Log) remove(idx types.Index) {
	e := l.at(idx)
	if e == nil {
		return
	}
	if !e.PID.IsZero() && l.byPID[e.PID] == idx {
		delete(l.byPID, e.PID)
	}
	wasConfig := e.Kind == types.KindConfig
	l.entries[idx-l.snapIndex-1] = nil
	if wasConfig && idx == l.configIndex {
		l.recomputeConfig()
	}
}

func (l *Log) adoptConfig(e types.Entry) {
	l.config = e.Config.Clone()
	l.configIndex = e.Index
}

// recomputeConfig rescans for the highest config entry, falling back to
// the base configuration. Only called on the rare
// removal/truncation/installation paths.
func (l *Log) recomputeConfig() {
	for i := l.lastIndex; i >= l.FirstIndex(); i-- {
		if e := l.at(i); e != nil && e.Kind == types.KindConfig && e.Config != nil {
			l.config = e.Config.Clone()
			l.configIndex = i
			return
		}
	}
	l.config = l.base.Clone()
	l.configIndex = l.baseIndex
}

// Restore rebuilds a log from persisted entries (used on recovery from
// stable storage when no snapshot exists). Entries must be sorted ascending
// by index.
func Restore(bootstrap types.Config, entries []types.Entry) (*Log, error) {
	return RestoreSnapshot(bootstrap, types.SnapshotMeta{}, entries)
}

// RestoreSnapshot rebuilds a log on top of a snapshot boundary: the first
// retained index is meta.LastIndex+1 and the snapshot's configuration is
// the base (bootstrap is used when meta is zero). Entries at or below the
// boundary are ignored; the rest must be sorted ascending by index.
func RestoreSnapshot(bootstrap types.Config, meta types.SnapshotMeta, entries []types.Entry) (*Log, error) {
	l := New(bootstrap)
	l.snapIndex = meta.LastIndex
	l.snapTerm = meta.LastTerm
	l.lastIndex = meta.LastIndex
	l.lastLeader = meta.LastIndex
	if meta.LastIndex > 0 {
		l.config = meta.Config.Clone()
		l.configIndex = meta.ConfigIndex
		l.base = meta.Config.Clone()
		l.baseIndex = meta.ConfigIndex
	}
	for _, e := range entries {
		if e.Index == 0 {
			return nil, fmt.Errorf("logstore: restore entry with index 0")
		}
		if e.Index <= meta.LastIndex {
			continue
		}
		ec := e.Clone()
		l.place(e.Index, &ec)
	}
	// Recompute the leader prefix above the boundary.
	for i := l.FirstIndex(); ; i++ {
		e := l.at(i)
		if e == nil || e.Approval != types.ApprovedLeader {
			l.lastLeader = i - 1
			break
		}
	}
	l.recomputeConfig()
	if err := l.CheckInvariants(); err != nil {
		return nil, err
	}
	return l, nil
}
