package logstore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hraft-io/hraft/internal/types"
)

func pid(p string, s uint64) types.ProposalID {
	return types.ProposalID{Proposer: types.NodeID(p), Seq: s}
}

func normal(p string, s uint64) types.Entry {
	return types.Entry{Kind: types.KindNormal, PID: pid(p, s), Data: []byte(p)}
}

func TestInsertSelfBasics(t *testing.T) {
	l := New(types.NewConfig("a", "b", "c"))
	if err := l.InsertSelf(3, normal("p", 1)); err != nil {
		t.Fatal(err)
	}
	if l.LastIndex() != 3 {
		t.Fatalf("LastIndex = %d", l.LastIndex())
	}
	if l.LastLeaderIndex() != 0 {
		t.Fatalf("LastLeaderIndex = %d", l.LastLeaderIndex())
	}
	if l.Has(1) || l.Has(2) || !l.Has(3) {
		t.Fatal("hole structure wrong")
	}
	e, ok := l.Get(3)
	if !ok || e.Approval != types.ApprovedSelf || e.Index != 3 {
		t.Fatalf("Get(3) = %v %v", e, ok)
	}
	if err := l.InsertSelf(3, normal("q", 1)); !errors.Is(err, ErrOccupied) {
		t.Fatalf("double insert: %v", err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendLeaderPrefixContiguity(t *testing.T) {
	l := New(types.NewConfig("a"))
	if err := l.AppendLeader(2, normal("p", 1)); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append: %v", err)
	}
	if err := l.AppendLeader(1, normal("p", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLeader(2, normal("p", 2)); err != nil {
		t.Fatal(err)
	}
	if l.LastLeaderIndex() != 2 {
		t.Fatalf("LastLeaderIndex = %d", l.LastLeaderIndex())
	}
	// A leader append replaces a self-approved occupant.
	if err := l.InsertSelf(3, normal("x", 9)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLeader(3, normal("p", 3)); err != nil {
		t.Fatal(err)
	}
	e, _ := l.Get(3)
	if e.PID != pid("p", 3) || e.Approval != types.ApprovedLeader {
		t.Fatalf("slot 3 = %v", e)
	}
	// The replaced entry's pid must no longer resolve.
	if idx := l.FindProposal(pid("x", 9)); idx != 0 {
		t.Fatalf("stale pid still indexed at %d", idx)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteLeaderInsidePrefix(t *testing.T) {
	l := New(types.NewConfig("a"))
	for i := types.Index(1); i <= 3; i++ {
		if err := l.AppendLeader(i, normal("p", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.OverwriteLeader(2, normal("q", 7)); err != nil {
		t.Fatal(err)
	}
	e, _ := l.Get(2)
	if e.PID != pid("q", 7) {
		t.Fatalf("overwrite failed: %v", e)
	}
	if l.LastLeaderIndex() != 3 {
		t.Fatalf("prefix shrank to %d", l.LastLeaderIndex())
	}
	if err := l.OverwriteLeader(5, normal("q", 8)); !errors.Is(err, ErrGap) {
		t.Fatalf("overwrite beyond prefix: %v", err)
	}
}

func TestPromoteToLeader(t *testing.T) {
	l := New(types.NewConfig("a"))
	if err := l.AppendLeader(1, normal("p", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.InsertSelf(2, normal("p", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.PromoteToLeader(2, 5); err != nil {
		t.Fatal(err)
	}
	e, _ := l.Get(2)
	if e.Approval != types.ApprovedLeader || e.Term != 5 {
		t.Fatalf("promoted = %v", e)
	}
	if l.LastLeaderIndex() != 2 {
		t.Fatalf("prefix = %d", l.LastLeaderIndex())
	}
	if err := l.PromoteToLeader(4, 5); err == nil {
		t.Fatal("promoting a hole must fail")
	}
}

func TestSelfApprovedListing(t *testing.T) {
	l := New(types.NewConfig("a"))
	if err := l.AppendLeader(1, normal("p", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.InsertSelf(3, normal("p", 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.InsertSelf(5, normal("p", 5)); err != nil {
		t.Fatal(err)
	}
	sa := l.SelfApproved()
	if len(sa) != 2 || sa[0].Index != 3 || sa[1].Index != 5 {
		t.Fatalf("SelfApproved = %v", sa)
	}
}

func TestConfigTracking(t *testing.T) {
	boot := types.NewConfig("a", "b", "c")
	l := New(boot)
	cfg, idx := l.Config()
	if !cfg.Equal(boot) || idx != 0 {
		t.Fatalf("bootstrap config: %v @%d", cfg, idx)
	}
	bigger := boot.WithMember("d")
	if err := l.AppendLeader(1, types.ConfigEntry(bigger, types.ProposalID{})); err != nil {
		t.Fatal(err)
	}
	cfg, idx = l.Config()
	if !cfg.Equal(bigger) || idx != 1 {
		t.Fatalf("after config entry: %v @%d", cfg, idx)
	}
	// A self-approved config insertion later in the log takes effect too
	// (the paper: "the last configuration appended to the log").
	smaller := bigger.WithoutMember("a")
	if err := l.InsertSelf(4, types.ConfigEntry(smaller, pid("p", 1))); err != nil {
		t.Fatal(err)
	}
	cfg, idx = l.Config()
	if !cfg.Equal(smaller) || idx != 4 {
		t.Fatalf("after self config: %v @%d", cfg, idx)
	}
	// Overwriting that slot with a normal entry reverts to the previous
	// config.
	if err := l.AppendLeader(2, normal("p", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLeader(3, normal("p", 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLeader(4, normal("p", 4)); err != nil {
		t.Fatal(err)
	}
	cfg, idx = l.Config()
	if !cfg.Equal(bigger) || idx != 1 {
		t.Fatalf("after overwrite: %v @%d", cfg, idx)
	}
}

func TestTruncateSuffix(t *testing.T) {
	l := New(types.NewConfig("a"))
	for i := types.Index(1); i <= 5; i++ {
		if err := l.AppendLeader(i, normal("p", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.TruncateSuffix(2)
	if l.LastIndex() != 2 || l.LastLeaderIndex() != 2 {
		t.Fatalf("after truncate: last=%d leader=%d", l.LastIndex(), l.LastLeaderIndex())
	}
	if l.FindProposal(pid("p", 4)) != 0 {
		t.Fatal("truncated pid still indexed")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeAndLeaderRange(t *testing.T) {
	l := New(types.NewConfig("a"))
	for i := types.Index(1); i <= 3; i++ {
		if err := l.AppendLeader(i, normal("p", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.InsertSelf(5, normal("p", 5)); err != nil {
		t.Fatal(err)
	}
	all := l.Range(1, 10)
	if len(all) != 4 {
		t.Fatalf("Range = %d entries", len(all))
	}
	lr := l.LeaderRange(2, 10)
	if len(lr) != 2 || lr[0].Index != 2 || lr[1].Index != 3 {
		t.Fatalf("LeaderRange = %v", lr)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	boot := types.NewConfig("a", "b", "c")
	l := New(boot)
	for i := types.Index(1); i <= 4; i++ {
		if err := l.AppendLeader(i, normal("p", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.InsertSelf(6, normal("q", 1)); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	r, err := Restore(boot, snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.LastIndex() != l.LastIndex() || r.LastLeaderIndex() != l.LastLeaderIndex() {
		t.Fatalf("restore mismatch: last %d/%d leader %d/%d",
			r.LastIndex(), l.LastIndex(), r.LastLeaderIndex(), l.LastLeaderIndex())
	}
	if r.FindProposal(pid("q", 1)) != 6 {
		t.Fatal("pid index not rebuilt")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomOpsKeepInvariants drives random legal operation sequences
// and checks structural invariants plus restore-consistency throughout.
func TestQuickRandomOpsKeepInvariants(t *testing.T) {
	boot := types.NewConfig("a", "b", "c")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New(boot)
		seq := uint64(0)
		for op := 0; op < 60; op++ {
			seq++
			e := normal("p", seq)
			switch rng.Intn(5) {
			case 0: // self insert at a random nearby slot
				idx := types.Index(rng.Intn(20) + 1)
				err := l.InsertSelf(idx, e)
				if err != nil && !errors.Is(err, ErrOccupied) {
					return false
				}
			case 1: // extend the leader prefix
				if err := l.AppendLeader(l.LastLeaderIndex()+1, e); err != nil {
					return false
				}
			case 2: // overwrite inside the prefix
				if top := l.LastLeaderIndex(); top > 0 {
					idx := types.Index(rng.Intn(int(top)) + 1)
					if err := l.OverwriteLeader(idx, e); err != nil {
						return false
					}
				}
			case 3: // promote a self entry if it sits right after the prefix
				idx := l.LastLeaderIndex() + 1
				if ent, ok := l.Get(idx); ok && ent.Approval == types.ApprovedSelf {
					if err := l.PromoteToLeader(idx, types.Term(op)); err != nil {
						return false
					}
				}
			case 4: // occasional truncation (classic-raft style)
				if rng.Intn(4) == 0 && l.LastIndex() > 0 {
					l.TruncateSuffix(types.Index(rng.Intn(int(l.LastIndex()) + 1)))
				}
			}
			if err := l.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		// Snapshot/restore must reproduce the same structure.
		r, err := Restore(boot, l.Snapshot())
		if err != nil {
			t.Logf("restore: %v", err)
			return false
		}
		return r.LastIndex() == l.LastIndex() && r.LastLeaderIndex() == l.LastLeaderIndex()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func leaderEntry(term types.Term, p string, s uint64) types.Entry {
	e := normal(p, s)
	e.Term = term
	return e
}

// buildLeaderLog appends n leader-approved entries with the given term.
func buildLeaderLog(t *testing.T, n int, term types.Term) *Log {
	t.Helper()
	l := New(types.NewConfig("a", "b", "c"))
	for i := 1; i <= n; i++ {
		if err := l.AppendLeader(types.Index(i), leaderEntry(term, "p", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestCompactTo(t *testing.T) {
	l := buildLeaderLog(t, 10, 2)
	if err := l.CompactTo(6, 2); err != nil {
		t.Fatal(err)
	}
	if l.FirstIndex() != 7 || l.SnapshotIndex() != 6 || l.SnapshotTerm() != 2 {
		t.Fatalf("boundary: first=%d snap=%d/%d", l.FirstIndex(), l.SnapshotIndex(), l.SnapshotTerm())
	}
	if l.LastIndex() != 10 || l.LastLeaderIndex() != 10 {
		t.Fatalf("last=%d lastLeader=%d", l.LastIndex(), l.LastLeaderIndex())
	}
	if l.Has(6) || !l.Has(7) {
		t.Fatal("boundary occupancy wrong")
	}
	if l.Term(6) != 2 {
		t.Fatalf("Term(boundary) = %d", l.Term(6))
	}
	// Compacted proposals drop out of the primary PID map into the bounded
	// retry window, so recent ones still resolve to their original index;
	// retained ones stay findable directly.
	if got := l.PIDCount(); got != 4 {
		t.Fatalf("PID map has %d entries after compaction, want 4 (retained suffix)", got)
	}
	if idx := l.FindProposal(pid("p", 3)); idx != 3 {
		t.Fatalf("compacted pid lookup = %d, want 3 (retry window)", idx)
	}
	if hits := l.CompactedPIDHits(); hits != 1 {
		t.Fatalf("window hits = %d, want 1", hits)
	}
	if idx := l.FindProposal(pid("p", 8)); idx != 8 {
		t.Fatalf("retained pid lookup = %d, want 8", idx)
	}
	if hits := l.CompactedPIDHits(); hits != 1 {
		t.Fatalf("retained lookup bumped window hits to %d", hits)
	}
	// Appends continue above the old tail.
	if err := l.AppendLeader(11, leaderEntry(2, "p", 11)); err != nil {
		t.Fatal(err)
	}
	// Invalid boundaries are rejected.
	if err := l.CompactTo(6, 2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("re-compact at boundary: %v", err)
	}
	if err := l.CompactTo(99, 2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compact beyond prefix: %v", err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactToBoundsPIDMap is the ROADMAP regression: before sessions,
// byPID retained every compacted proposal forever, so the map grew without
// bound under continuous traffic. Now it must stay proportional to the
// retained suffix.
func TestCompactToBoundsPIDMap(t *testing.T) {
	const window = 10
	l := New(types.NewConfig("a", "b", "c"))
	next := types.Index(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < window; i++ {
			if err := l.AppendLeader(next, leaderEntry(1, "p", uint64(next))); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := l.CompactTo(next-1, 1); err != nil {
			t.Fatal(err)
		}
		if got := l.PIDCount(); got != 0 {
			t.Fatalf("round %d: %d PID mappings retained after full compaction", round, got)
		}
	}
	// Partial compaction keeps exactly the retained suffix's mappings.
	for i := 0; i < window; i++ {
		if err := l.AppendLeader(next, leaderEntry(1, "p", uint64(next))); err != nil {
			t.Fatal(err)
		}
		next++
	}
	if err := l.CompactTo(next-6, 1); err != nil {
		t.Fatal(err)
	}
	if got := l.PIDCount(); got != 5 {
		t.Fatalf("PID map has %d entries, want 5 (retained suffix)", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactedPIDWindowBounded overflows the sessionless-retry window
// across several compaction rounds and checks LRU behavior: the window
// never exceeds its capacity, recently compacted mappings survive while the
// oldest rounds are evicted, and hits are counted only for window answers.
func TestCompactedPIDWindowBounded(t *testing.T) {
	const round = 256
	rounds := compactedWindowSize/round + 4 // overflow by 4 rounds
	l := New(types.NewConfig("a", "b", "c"))
	next := types.Index(1)
	for r := 0; r < rounds; r++ {
		for i := 0; i < round; i++ {
			if err := l.AppendLeader(next, leaderEntry(1, "p", uint64(next))); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := l.CompactTo(next-1, 1); err != nil {
			t.Fatal(err)
		}
		if got := l.CompactedPIDCount(); got > compactedWindowSize {
			t.Fatalf("round %d: window holds %d mappings, cap %d", r, got, compactedWindowSize)
		}
	}
	if got := l.CompactedPIDCount(); got != compactedWindowSize {
		t.Fatalf("window holds %d mappings after overflow, want %d", got, compactedWindowSize)
	}
	// Everything compacted in the most recent rounds still resolves; the
	// first round was evicted long ago.
	lo := uint64(next) - uint64(compactedWindowSize)
	for s := lo; s < uint64(next); s++ {
		if idx := l.FindProposal(pid("p", s)); idx != types.Index(s) {
			t.Fatalf("recent compacted pid %d resolves to %d, want %d", s, idx, s)
		}
	}
	if hits := l.CompactedPIDHits(); hits != uint64(compactedWindowSize) {
		t.Fatalf("window hits = %d, want %d", hits, compactedWindowSize)
	}
	for s := uint64(1); s <= uint64(round); s++ {
		if idx := l.FindProposal(pid("p", s)); idx != 0 {
			t.Fatalf("evicted pid %d still resolves to %d", s, idx)
		}
	}
	if hits := l.CompactedPIDHits(); hits != uint64(compactedWindowSize) {
		t.Fatalf("missed lookups bumped window hits to %d", hits)
	}
}

// TestCompactedPIDWindowRefresh checks that a window lookup refreshes the
// mapping's recency: a proposal that keeps being retried outlives mappings
// compacted after it.
func TestCompactedPIDWindowRefresh(t *testing.T) {
	const first = 256
	l := New(types.NewConfig("a", "b", "c"))
	next := types.Index(1)
	fill := func(n int) {
		for i := 0; i < n; i++ {
			if err := l.AppendLeader(next, leaderEntry(1, "p", uint64(next))); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := l.CompactTo(next-1, 1); err != nil {
			t.Fatal(err)
		}
	}
	fill(first)
	// Retry proposal 1: served from the window, recency refreshed.
	if idx := l.FindProposal(pid("p", 1)); idx != 1 {
		t.Fatalf("windowed pid resolves to %d, want 1", idx)
	}
	// Compact exactly enough further mappings that the window must evict
	// every unrefreshed first-round mapping (first-1 of them) — but stop
	// short of the refreshed proposal, which lookup moved ahead of them.
	fill(compactedWindowSize - 1)
	if idx := l.FindProposal(pid("p", 1)); idx != 1 {
		t.Fatalf("refreshed pid evicted (lookup = %d)", idx)
	}
	if idx := l.FindProposal(pid("p", 2)); idx != 0 {
		t.Fatalf("unrefreshed pid from the same round survived at %d", idx)
	}
}

// TestTruncatedPIDsNeverEnterWindow: suffix truncation removes uncommitted
// entries, which must not become claimable through the retry window — only
// compaction (committed prefixes) feeds it.
func TestTruncatedPIDsNeverEnterWindow(t *testing.T) {
	l := buildLeaderLog(t, 5, 1)
	l.TruncateSuffix(3) // entries 4 and 5 never committed
	if err := l.CompactTo(3, 1); err != nil {
		t.Fatal(err)
	}
	if idx := l.FindProposal(pid("p", 4)); idx != 0 {
		t.Fatalf("truncated pid resolves to %d via window", idx)
	}
	if idx := l.FindProposal(pid("p", 2)); idx != 2 {
		t.Fatalf("compacted pid resolves to %d, want 2", idx)
	}
	if got := l.CompactedPIDCount(); got != 3 {
		t.Fatalf("window holds %d mappings, want 3", got)
	}
}

func TestCompactThenTruncateSuffixClampsAtBoundary(t *testing.T) {
	l := buildLeaderLog(t, 8, 1)
	if err := l.CompactTo(5, 1); err != nil {
		t.Fatal(err)
	}
	l.TruncateSuffix(2) // below boundary: clamps
	if l.LastIndex() != 5 || l.LastLeaderIndex() != 5 || l.FirstIndex() != 6 {
		t.Fatalf("after clamped truncate: last=%d lastLeader=%d first=%d",
			l.LastIndex(), l.LastLeaderIndex(), l.FirstIndex())
	}
	if err := l.AppendLeader(6, leaderEntry(2, "q", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallSnapshotBeyondLog(t *testing.T) {
	l := buildLeaderLog(t, 3, 1)
	cfg := types.NewConfig("a", "b", "c", "d")
	meta := types.SnapshotMeta{LastIndex: 20, LastTerm: 4, Config: cfg, ConfigIndex: 15}
	if err := l.InstallSnapshot(meta); err != nil {
		t.Fatal(err)
	}
	if l.FirstIndex() != 21 || l.LastIndex() != 20 || l.LastLeaderIndex() != 20 {
		t.Fatalf("after install: first=%d last=%d lastLeader=%d",
			l.FirstIndex(), l.LastIndex(), l.LastLeaderIndex())
	}
	got, ci := l.Config()
	if !got.Equal(cfg) || ci != 15 {
		t.Fatalf("config after install: %v @%d", got, ci)
	}
	if err := l.AppendLeader(21, leaderEntry(4, "p", 99)); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallSnapshotKeepsRetainedSuffix(t *testing.T) {
	l := buildLeaderLog(t, 4, 1)
	// Self-approved entries above the boundary must survive installation.
	if err := l.InsertSelf(6, normal("x", 1)); err != nil {
		t.Fatal(err)
	}
	meta := types.SnapshotMeta{LastIndex: 4, LastTerm: 1, Config: types.NewConfig("a", "b", "c")}
	if err := l.InstallSnapshot(meta); err != nil {
		t.Fatal(err)
	}
	if !l.Has(6) || l.Has(4) {
		t.Fatal("retained suffix wrong after install")
	}
	sa := l.SelfApproved()
	if len(sa) != 1 || sa[0].Index != 6 {
		t.Fatalf("self-approved after install: %v", sa)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigAt(t *testing.T) {
	l := New(types.NewConfig("a", "b", "c"))
	cfg1 := types.NewConfig("a", "b", "c", "d")
	for i := 1; i <= 2; i++ {
		if err := l.AppendLeader(types.Index(i), leaderEntry(1, "p", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendLeader(3, types.ConfigEntry(cfg1, types.ProposalID{})); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 6; i++ {
		if err := l.AppendLeader(types.Index(i), leaderEntry(1, "p", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, ci := l.ConfigAt(2)
	if got.Size() != 3 || ci != 0 {
		t.Fatalf("ConfigAt(2) = %v @%d", got, ci)
	}
	got, ci = l.ConfigAt(5)
	if !got.Equal(cfg1) || ci != 3 {
		t.Fatalf("ConfigAt(5) = %v @%d", got, ci)
	}
}

func TestRestoreSnapshot(t *testing.T) {
	base := buildLeaderLog(t, 10, 3)
	if err := base.CompactTo(7, 3); err != nil {
		t.Fatal(err)
	}
	meta := types.SnapshotMeta{LastIndex: 7, LastTerm: 3, Config: types.NewConfig("a", "b", "c")}
	// Entries from storage may straddle the boundary (crash between
	// snapshot save and compaction); the covered prefix is ignored.
	entries := []types.Entry{}
	for i := types.Index(5); i <= 10; i++ {
		e := leaderEntry(3, "p", uint64(i))
		e.Index = i
		e.Approval = types.ApprovedLeader
		entries = append(entries, e)
	}
	l, err := RestoreSnapshot(types.NewConfig("a", "b", "c"), meta, entries)
	if err != nil {
		t.Fatal(err)
	}
	if l.FirstIndex() != 8 || l.LastIndex() != 10 || l.LastLeaderIndex() != 10 {
		t.Fatalf("restored: first=%d last=%d lastLeader=%d",
			l.FirstIndex(), l.LastIndex(), l.LastLeaderIndex())
	}
	if l.Term(7) != 3 {
		t.Fatalf("boundary term = %d", l.Term(7))
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Restoring an empty suffix leaves an appendable log.
	l2, err := RestoreSnapshot(types.NewConfig("a"), meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastIndex() != 7 || l2.LastLeaderIndex() != 7 {
		t.Fatalf("empty restore: last=%d lastLeader=%d", l2.LastIndex(), l2.LastLeaderIndex())
	}
	if err := l2.AppendLeader(8, leaderEntry(4, "q", 1)); err != nil {
		t.Fatal(err)
	}
}

// TestFindProposalForVerifiesPayload: de-duplication must not trust the
// ProposalID alone. A proposer's in-memory sequence counter resets on
// restart, so a reused pid carrying different bytes is a brand-new proposal
// — both the retained map and the compacted retry window must refuse the
// match (otherwise the fresh proposal is acknowledged with the old entry's
// index and the write is silently lost), while a genuine retry with the
// same bytes still resolves.
func TestFindProposalForVerifiesPayload(t *testing.T) {
	l := New(types.NewConfig("a", "b", "c"))
	for i := 1; i <= 10; i++ {
		e := types.Entry{
			Kind: types.KindNormal,
			PID:  pid("p", uint64(i)),
			Data: []byte(fmt.Sprintf("payload-%d", i)),
			Term: 1,
		}
		if err := l.AppendLeader(types.Index(i), e); err != nil {
			t.Fatal(err)
		}
	}
	// Retained entries compare payloads directly.
	if idx := l.FindProposalFor(pid("p", 8), []byte("payload-8")); idx != 8 {
		t.Fatalf("retained genuine retry = %d, want 8", idx)
	}
	if idx := l.FindProposalFor(pid("p", 8), []byte("fresh-proposal")); idx != 0 {
		t.Fatalf("retained reused pid resolved to %d, want 0", idx)
	}
	// Windowed mappings compare the digest captured before compaction
	// dropped the entries.
	if err := l.CompactTo(6, 1); err != nil {
		t.Fatal(err)
	}
	if idx := l.FindProposalFor(pid("p", 3), []byte("payload-3")); idx != 3 {
		t.Fatalf("windowed genuine retry = %d, want 3", idx)
	}
	if hits := l.CompactedPIDHits(); hits != 1 {
		t.Fatalf("window hits = %d, want 1", hits)
	}
	if idx := l.FindProposalFor(pid("p", 3), []byte("fresh-proposal")); idx != 0 {
		t.Fatalf("windowed reused pid resolved to %d, want 0", idx)
	}
	if hits := l.CompactedPIDHits(); hits != 1 {
		t.Fatalf("digest mismatch counted as a window hit (%d)", hits)
	}
	// The unverified lookup keeps answering for log machinery that reasons
	// about entries already placed in the log.
	if idx := l.FindProposal(pid("p", 3)); idx != 3 {
		t.Fatalf("FindProposal = %d, want 3", idx)
	}
	if idx := l.FindProposalFor(types.ProposalID{}, nil); idx != 0 {
		t.Fatalf("zero pid resolved to %d", idx)
	}
}

// TestInstallSnapshotWindowKeepsDigests: the InstallSnapshot path moves pid
// mappings into the retry window the same way CompactTo does, so it must
// capture payload digests before dropping the covered prefix too.
func TestInstallSnapshotWindowKeepsDigests(t *testing.T) {
	l := New(types.NewConfig("a", "b", "c"))
	for i := 1; i <= 4; i++ {
		e := types.Entry{
			Kind: types.KindNormal,
			PID:  pid("p", uint64(i)),
			Data: []byte(fmt.Sprintf("payload-%d", i)),
			Term: 1,
		}
		if err := l.AppendLeader(types.Index(i), e); err != nil {
			t.Fatal(err)
		}
	}
	meta := types.SnapshotMeta{LastIndex: 3, LastTerm: 1, Config: types.NewConfig("a", "b", "c")}
	if err := l.InstallSnapshot(meta); err != nil {
		t.Fatal(err)
	}
	if idx := l.FindProposalFor(pid("p", 2), []byte("payload-2")); idx != 2 {
		t.Fatalf("windowed genuine retry = %d, want 2", idx)
	}
	if idx := l.FindProposalFor(pid("p", 2), []byte("other-bytes")); idx != 0 {
		t.Fatalf("windowed reused pid resolved to %d, want 0", idx)
	}
}
