// Package quorum implements the quorum arithmetic of Fast Raft and classic
// Raft, plus the vote tally (the paper's possibleEntries structure) a Fast
// Raft leader uses to decide entries.
//
// For a configuration of M sites the paper uses:
//
//   - classic quorum: a majority, ⌊M/2⌋+1
//   - fast quorum:    ⌈3M/4⌉
//
// These sizes guarantee that (a) any two quorums of either kind intersect,
// and (b) any fast quorum intersects any classic quorum in a majority of
// the classic quorum — the property (Zhao, 2015) that makes the decide rule
// "pick the entry with most votes in any classic quorum" safe.
package quorum

import (
	"github.com/hraft-io/hraft/internal/types"
)

// ClassicSize returns the classic (majority) quorum size for m members.
// It returns 1 for m <= 1 so single-member groups make progress alone.
func ClassicSize(m int) int {
	if m <= 1 {
		return 1
	}
	return m/2 + 1
}

// FastSize returns the fast quorum size ⌈3m/4⌉ for m members, clamped to at
// least the classic size (for tiny m the ceiling formula can dip below a
// majority, which would be unsafe).
func FastSize(m int) int {
	if m <= 1 {
		return 1
	}
	f := (3*m + 3) / 4 // ⌈3m/4⌉
	if c := ClassicSize(m); f < c {
		return c
	}
	return f
}

// Intersection returns the minimum possible overlap of two quorums of sizes
// a and b drawn from m members.
func Intersection(a, b, m int) int {
	ix := a + b - m
	if ix < 0 {
		return 0
	}
	return ix
}

// FastIntersectsClassicInMajority reports whether every fast quorum
// intersects every classic quorum of m members in a strict majority of the
// classic quorum. This is the safety precondition of the Fast Raft decide
// rule and is property-tested exhaustively.
func FastIntersectsClassicInMajority(m int) bool {
	c := ClassicSize(m)
	f := FastSize(m)
	return 2*Intersection(f, c, m) > c
}

// CountReached reports whether votes from the given set reach the quorum
// size q within the configuration cfg. Only votes from configuration
// members count.
func CountReached(cfg types.Config, voters map[types.NodeID]bool, q int) bool {
	n := 0
	for _, m := range cfg.Members {
		if voters[m] {
			n++
			if n >= q {
				return true
			}
		}
	}
	return false
}

// MatchQuorum reports whether at least q configuration members have
// match[id] >= idx. It implements both the classic commit rule over
// matchIndex and the fast commit rule over fastMatchIndex.
func MatchQuorum(cfg types.Config, match map[types.NodeID]types.Index, idx types.Index, q int) bool {
	return MatchQuorumFunc(cfg, func(id types.NodeID) types.Index { return match[id] }, idx, q)
}

// MatchQuorumFunc is MatchQuorum over an accessor instead of a map, so
// progress trackers that own the per-peer state (internal/replica) can be
// queried without materializing a map per commit evaluation.
func MatchQuorumFunc(cfg types.Config, match func(types.NodeID) types.Index, idx types.Index, q int) bool {
	n := 0
	for _, m := range cfg.Members {
		if match(m) >= idx {
			n++
			if n >= q {
				return true
			}
		}
	}
	return false
}
