package quorum

import (
	"testing"
	"testing/quick"

	"github.com/hraft-io/hraft/internal/types"
)

func TestQuorumSizes(t *testing.T) {
	tests := []struct {
		m       int
		classic int
		fast    int
	}{
		{1, 1, 1},
		{2, 2, 2},
		{3, 2, 3},
		{4, 3, 3},
		{5, 3, 4}, // the paper's running example: fast quorum ⌈15/4⌉ = 4
		{6, 4, 5},
		{7, 4, 6},
		{8, 5, 6},
		{9, 5, 7},
		{10, 6, 8},
		{20, 11, 15},
	}
	for _, tt := range tests {
		if got := ClassicSize(tt.m); got != tt.classic {
			t.Errorf("ClassicSize(%d) = %d, want %d", tt.m, got, tt.classic)
		}
		if got := FastSize(tt.m); got != tt.fast {
			t.Errorf("FastSize(%d) = %d, want %d", tt.m, got, tt.fast)
		}
	}
}

// TestQuorumIntersectionProperties verifies, for every configuration size
// up to 256, the three intersection properties the safety proofs rest on.
func TestQuorumIntersectionProperties(t *testing.T) {
	for m := 1; m <= 256; m++ {
		c, f := ClassicSize(m), FastSize(m)
		if c > m || f > m {
			t.Fatalf("m=%d: quorum exceeds membership (c=%d f=%d)", m, c, f)
		}
		if Intersection(c, c, m) < 1 {
			t.Errorf("m=%d: two classic quorums may not intersect", m)
		}
		if Intersection(f, f, m) < 1 {
			t.Errorf("m=%d: two fast quorums may not intersect", m)
		}
		if !FastIntersectsClassicInMajority(m) {
			t.Errorf("m=%d: fast∩classic not a majority of classic (c=%d f=%d ix=%d)",
				m, c, f, Intersection(f, c, m))
		}
	}
}

func TestQuickIntersectionFormula(t *testing.T) {
	// Intersection(a, b, m) must equal the minimum overlap achievable by
	// placing a and b member subsets adversarially.
	f := func(a, b, m uint8) bool {
		am, bm, mm := int(a%64)+1, int(b%64)+1, int(m%64)+1
		if am > mm {
			am = mm
		}
		if bm > mm {
			bm = mm
		}
		// Adversarial placement: a at the start, b at the end.
		lo := am + bm - mm
		if lo < 0 {
			lo = 0
		}
		return Intersection(am, bm, mm) == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountReached(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c", "d", "e")
	votes := map[types.NodeID]bool{"a": true, "b": true, "x": true}
	if CountReached(cfg, votes, 3) {
		t.Fatal("vote from non-member x must not count")
	}
	votes["c"] = true
	if !CountReached(cfg, votes, 3) {
		t.Fatal("three member votes reach a classic quorum of 5")
	}
}

func TestMatchQuorum(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c")
	match := map[types.NodeID]types.Index{"a": 5, "b": 3, "c": 1}
	if !MatchQuorum(cfg, match, 3, 2) {
		t.Fatal("a and b cover index 3")
	}
	if MatchQuorum(cfg, match, 4, 2) {
		t.Fatal("only a covers index 4")
	}
	if !MatchQuorum(cfg, match, 1, 3) {
		t.Fatal("all cover index 1")
	}
}
