package quorum

import (
	"sort"

	"github.com/hraft-io/hraft/internal/types"
)

// Tally is the paper's possibleEntries structure: for each log index, the
// set of distinct proposed entries and the sites that voted for each. A
// Fast Raft leader feeds follower votes (and recovered self-approved
// entries after an election) into the tally and reads decisions out of it.
type Tally struct {
	byIndex map[types.Index]*indexTally
}

type indexTally struct {
	// candidates maps a proposal identity to its candidate record.
	candidates map[candidateKey]*candidate
	// voters records which sites have voted at this index (a site votes at
	// most once per index; re-votes replace the previous vote).
	voters map[types.NodeID]candidateKey
}

// candidateKey identifies a distinct proposed value. Entries with a PID key
// by PID; leader-internal entries key by kind+payload hash (they are never
// proposed on the fast track, so collisions are not a safety concern).
type candidateKey struct {
	pid  types.ProposalID
	kind types.EntryKind
	sum  uint64
}

type candidate struct {
	entry  types.Entry
	voters map[types.NodeID]struct{}
	// nulled marks a candidate suppressed because its proposal was decided
	// at another index (the paper's "set to a null vote" rule).
	nulled bool
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{byIndex: make(map[types.Index]*indexTally)}
}

func keyOf(e types.Entry) candidateKey {
	if !e.PID.IsZero() {
		return candidateKey{pid: e.PID}
	}
	return candidateKey{kind: e.Kind, sum: fnv64(e.Data)}
}

func fnv64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// AddVote records that voter voted for entry e at index idx. A voter's
// newer vote at the same index replaces its older one (a follower re-votes
// with its slot occupant, which may have been overwritten by the leader).
func (t *Tally) AddVote(idx types.Index, voter types.NodeID, e types.Entry) {
	it := t.byIndex[idx]
	if it == nil {
		it = &indexTally{
			candidates: make(map[candidateKey]*candidate),
			voters:     make(map[types.NodeID]candidateKey),
		}
		t.byIndex[idx] = it
	}
	k := keyOf(e)
	if prev, voted := it.voters[voter]; voted {
		if prev == k {
			return
		}
		if c := it.candidates[prev]; c != nil {
			delete(c.voters, voter)
		}
	}
	it.voters[voter] = k
	c := it.candidates[k]
	if c == nil {
		c = &candidate{entry: e.Clone(), voters: make(map[types.NodeID]struct{})}
		it.candidates[k] = c
	}
	c.voters[voter] = struct{}{}
}

// Voters returns the number of distinct configuration members that have
// voted at idx.
func (t *Tally) Voters(idx types.Index, cfg types.Config) int {
	it := t.byIndex[idx]
	if it == nil {
		return 0
	}
	n := 0
	for v := range it.voters {
		if cfg.Contains(v) {
			n++
		}
	}
	return n
}

// Decision is the result of deciding an index.
type Decision struct {
	// Winner is the entry with the most votes (ties broken by ProposalID
	// order for determinism). Winner.Index is not set by the tally.
	Winner types.Entry
	// WinnerVoters are the configuration members that voted for the winner.
	WinnerVoters []types.NodeID
	// Losers are the other distinct, non-nulled candidate entries at the
	// index, most-voted first. The leader re-sequences them at later
	// indices so their proposers need not wait for a proposal timeout.
	Losers []types.Entry
	// Votes is the winner's vote count among configuration members.
	Votes int
}

// Decide returns the decision for idx among configuration members, or
// ok=false if no votes are present (the caller then decides a no-op).
// Candidates whose proposal was nulled (decided elsewhere) or that appear
// in skip are excluded; if every candidate is excluded ok=false.
func (t *Tally) Decide(idx types.Index, cfg types.Config, skip func(types.Entry) bool) (Decision, bool) {
	it := t.byIndex[idx]
	if it == nil {
		return Decision{}, false
	}
	type scored struct {
		key   candidateKey
		c     *candidate
		votes int
	}
	var list []scored
	for k, c := range it.candidates {
		if c.nulled || (skip != nil && skip(c.entry)) {
			continue
		}
		votes := 0
		for v := range c.voters {
			if cfg.Contains(v) {
				votes++
			}
		}
		if votes == 0 {
			continue
		}
		list = append(list, scored{key: k, c: c, votes: votes})
	}
	if len(list) == 0 {
		return Decision{}, false
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].votes != list[j].votes {
			return list[i].votes > list[j].votes
		}
		// Deterministic tie-break: PID order, then kind/sum.
		a, b := list[i].key, list[j].key
		if a.pid != b.pid {
			return a.pid.Less(b.pid)
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.sum < b.sum
	})
	win := list[0]
	d := Decision{Winner: win.c.entry.Clone(), Votes: win.votes}
	for v := range win.c.voters {
		if cfg.Contains(v) {
			d.WinnerVoters = append(d.WinnerVoters, v)
		}
	}
	sort.Slice(d.WinnerVoters, func(i, j int) bool { return d.WinnerVoters[i] < d.WinnerVoters[j] })
	for _, s := range list[1:] {
		d.Losers = append(d.Losers, s.c.entry.Clone())
	}
	return d, true
}

// NullProposal suppresses every candidate matching entry e's proposal
// identity at all indices other than except. It implements the paper's
// duplicate-avoidance rule when a proposal is decided at some index.
func (t *Tally) NullProposal(e types.Entry, except types.Index) {
	k := keyOf(e)
	for idx, it := range t.byIndex {
		if idx == except {
			continue
		}
		if c, ok := it.candidates[k]; ok {
			c.nulled = true
		}
	}
}

// Clear discards all state at or below idx; the leader calls it as its
// commit index advances.
func (t *Tally) Clear(idx types.Index) {
	for i := range t.byIndex {
		if i <= idx {
			delete(t.byIndex, i)
		}
	}
}

// MaxIndex returns the highest index with any recorded vote, or 0.
func (t *Tally) MaxIndex() types.Index {
	var max types.Index
	for i := range t.byIndex {
		if i > max {
			max = i
		}
	}
	return max
}

// PendingIndexes returns all indexes with votes, ascending. Used by tests
// and by the leader when re-sequencing orphaned proposals.
func (t *Tally) PendingIndexes() []types.Index {
	out := make([]types.Index, 0, len(t.byIndex))
	for i := range t.byIndex {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Len returns the number of indexes currently tracked.
func (t *Tally) Len() int { return len(t.byIndex) }
