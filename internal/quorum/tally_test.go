package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hraft-io/hraft/internal/types"
)

func entryWith(pid types.ProposalID) types.Entry {
	return types.Entry{Kind: types.KindNormal, PID: pid, Data: []byte(pid.Proposer)}
}

func TestTallyVoteCountingAndDecide(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c", "d", "e")
	tally := NewTally()
	e1 := entryWith(types.ProposalID{Proposer: "p1", Seq: 1})
	e2 := entryWith(types.ProposalID{Proposer: "p2", Seq: 1})
	tally.AddVote(1, "a", e1)
	tally.AddVote(1, "b", e1)
	tally.AddVote(1, "c", e2)
	if got := tally.Voters(1, cfg); got != 3 {
		t.Fatalf("Voters = %d, want 3", got)
	}
	d, ok := tally.Decide(1, cfg, nil)
	if !ok {
		t.Fatal("no decision")
	}
	if !d.Winner.SameProposal(e1) || d.Votes != 2 {
		t.Fatalf("winner = %v votes=%d", d.Winner, d.Votes)
	}
	if len(d.Losers) != 1 || !d.Losers[0].SameProposal(e2) {
		t.Fatalf("losers = %v", d.Losers)
	}
	if len(d.WinnerVoters) != 2 || d.WinnerVoters[0] != "a" || d.WinnerVoters[1] != "b" {
		t.Fatalf("winner voters = %v", d.WinnerVoters)
	}
}

func TestTallyRevoteReplacesPreviousVote(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c")
	tally := NewTally()
	e1 := entryWith(types.ProposalID{Proposer: "p1", Seq: 1})
	e2 := entryWith(types.ProposalID{Proposer: "p2", Seq: 1})
	tally.AddVote(1, "a", e1)
	tally.AddVote(1, "a", e2) // a changes its vote (slot overwritten)
	if got := tally.Voters(1, cfg); got != 1 {
		t.Fatalf("Voters = %d, want 1", got)
	}
	d, ok := tally.Decide(1, cfg, nil)
	if !ok || !d.Winner.SameProposal(e2) {
		t.Fatalf("winner should be the re-voted entry, got %v", d.Winner)
	}
}

func TestTallyNonMemberVotesExcluded(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c")
	tally := NewTally()
	e1 := entryWith(types.ProposalID{Proposer: "p1", Seq: 1})
	tally.AddVote(1, "zz", e1) // not a member
	if got := tally.Voters(1, cfg); got != 0 {
		t.Fatalf("Voters = %d, want 0", got)
	}
	if _, ok := tally.Decide(1, cfg, nil); ok {
		t.Fatal("non-member vote produced a decision")
	}
}

func TestTallyDeterministicTieBreak(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c", "d")
	pid1 := types.ProposalID{Proposer: "p1", Seq: 9}
	pid2 := types.ProposalID{Proposer: "p2", Seq: 1}
	for trial := 0; trial < 20; trial++ {
		tally := NewTally()
		// Insert in varying order; tie at 2 votes each.
		if trial%2 == 0 {
			tally.AddVote(1, "a", entryWith(pid1))
			tally.AddVote(1, "b", entryWith(pid1))
			tally.AddVote(1, "c", entryWith(pid2))
			tally.AddVote(1, "d", entryWith(pid2))
		} else {
			tally.AddVote(1, "d", entryWith(pid2))
			tally.AddVote(1, "c", entryWith(pid2))
			tally.AddVote(1, "b", entryWith(pid1))
			tally.AddVote(1, "a", entryWith(pid1))
		}
		d, ok := tally.Decide(1, cfg, nil)
		if !ok {
			t.Fatal("no decision")
		}
		// pid1 < pid2 by proposer order.
		if d.Winner.PID != pid1 {
			t.Fatalf("trial %d: tie broke to %v, want %v", trial, d.Winner.PID, pid1)
		}
	}
}

func TestTallyNullProposal(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c")
	tally := NewTally()
	pid := types.ProposalID{Proposer: "p1", Seq: 1}
	tally.AddVote(1, "a", entryWith(pid))
	tally.AddVote(2, "a", entryWith(pid))
	tally.AddVote(2, "b", entryWith(pid))
	tally.NullProposal(entryWith(pid), 1) // decided at 1: null elsewhere
	if d, ok := tally.Decide(2, cfg, nil); ok {
		t.Fatalf("nulled candidate decided at 2: %v", d.Winner)
	}
	if _, ok := tally.Decide(1, cfg, nil); !ok {
		t.Fatal("candidate at its decided index must survive")
	}
}

func TestTallySkipFunc(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c")
	tally := NewTally()
	p1 := types.ProposalID{Proposer: "p1", Seq: 1}
	p2 := types.ProposalID{Proposer: "p2", Seq: 1}
	tally.AddVote(1, "a", entryWith(p1))
	tally.AddVote(1, "b", entryWith(p1))
	tally.AddVote(1, "c", entryWith(p2))
	d, ok := tally.Decide(1, cfg, func(e types.Entry) bool { return e.PID == p1 })
	if !ok {
		t.Fatal("skip should leave p2 decidable")
	}
	if d.Winner.PID != p2 {
		t.Fatalf("winner = %v, want p2", d.Winner.PID)
	}
}

func TestTallyClearAndMaxIndex(t *testing.T) {
	tally := NewTally()
	tally.AddVote(3, "a", entryWith(types.ProposalID{Proposer: "p", Seq: 1}))
	tally.AddVote(7, "a", entryWith(types.ProposalID{Proposer: "p", Seq: 2}))
	if tally.MaxIndex() != 7 || tally.Len() != 2 {
		t.Fatalf("max=%d len=%d", tally.MaxIndex(), tally.Len())
	}
	tally.Clear(3)
	if tally.Len() != 1 || tally.MaxIndex() != 7 {
		t.Fatalf("after clear: max=%d len=%d", tally.MaxIndex(), tally.Len())
	}
	idxs := tally.PendingIndexes()
	if len(idxs) != 1 || idxs[0] != 7 {
		t.Fatalf("pending = %v", idxs)
	}
}

// TestQuickDecidePicksMaxVotes checks the fundamental decide property on
// random vote multisets: the winner's (member) vote count is maximal.
func TestQuickDecidePicksMaxVotes(t *testing.T) {
	members := []types.NodeID{"a", "b", "c", "d", "e", "f", "g"}
	cfg := types.NewConfig(members...)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tally := NewTally()
		counts := make(map[types.ProposalID]int)
		nCand := rng.Intn(4) + 1
		for _, m := range members {
			if rng.Intn(4) == 0 {
				continue // abstain
			}
			pid := types.ProposalID{Proposer: "p", Seq: uint64(rng.Intn(nCand) + 1)}
			tally.AddVote(1, m, entryWith(pid))
			counts[pid]++
		}
		d, ok := tally.Decide(1, cfg, nil)
		if len(counts) == 0 {
			return !ok
		}
		if !ok {
			return false
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return d.Votes == max && counts[d.Winner.PID] == max &&
			len(d.WinnerVoters) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecideDeterministicAcrossInsertionOrder feeds the same vote
// multiset to two tallies in different orders: the decisions must be
// identical — the property C-Raft's recovery replay relies on.
func TestQuickDecideDeterministicAcrossInsertionOrder(t *testing.T) {
	members := []types.NodeID{"a", "b", "c", "d", "e"}
	cfg := types.NewConfig(members...)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type voteRec struct {
			voter types.NodeID
			pid   types.ProposalID
		}
		var votes []voteRec
		for _, m := range members {
			if rng.Intn(5) == 0 {
				continue
			}
			votes = append(votes, voteRec{
				voter: m,
				pid:   types.ProposalID{Proposer: "p", Seq: uint64(rng.Intn(3) + 1)},
			})
		}
		t1, t2 := NewTally(), NewTally()
		for _, v := range votes {
			t1.AddVote(1, v.voter, entryWith(v.pid))
		}
		for i := len(votes) - 1; i >= 0; i-- {
			t2.AddVote(1, votes[i].voter, entryWith(votes[i].pid))
		}
		d1, ok1 := t1.Decide(1, cfg, nil)
		d2, ok2 := t2.Decide(1, cfg, nil)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return d1.Winner.PID == d2.Winner.PID && d1.Votes == d2.Votes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
