// Package raft implements classic Raft (Ongaro & Ousterhout) as the paper's
// experimental baseline.
//
// The implementation is a sans-io state machine: the host delivers messages
// via Step, advances time via Tick, and drains outgoing messages and newly
// committed entries. Timing follows the paper's implementation model (see
// DESIGN.md "Timing model"): followers react to messages immediately, while
// all leader actions — dispatching AppendEntries, evaluating commits and
// notifying proposers — happen at the leader's periodic heartbeat tick.
// This is what gives classic Raft its characteristic ~1.5 heartbeat commit
// latency against which Fast Raft's single-tick fast track is compared.
package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/durable"
	"github.com/hraft-io/hraft/internal/logstore"
	"github.com/hraft-io/hraft/internal/quorum"
	"github.com/hraft-io/hraft/internal/readpath"
	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/session"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Config parametrizes a classic Raft node.
type Config struct {
	// ID is this site's identity.
	ID types.NodeID
	// Bootstrap is the initial configuration used when storage is empty.
	Bootstrap types.Config
	// Storage is the site's stable storage (required).
	Storage storage.Storage
	// HeartbeatInterval is the leader tick period (paper: 100 ms
	// intra-cluster).
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	// ElectionTimeoutMax must be > ElectionTimeoutMin.
	ElectionTimeoutMax time.Duration
	// ProposalTimeout is how long a proposer waits before re-sending an
	// unresolved proposal.
	ProposalTimeout time.Duration
	// SnapshotThreshold is the number of committed entries beyond the
	// latest snapshot boundary after which the node snapshots its state
	// machine and compacts the log prefix (0 = compaction disabled).
	SnapshotThreshold int
	// MaxEntriesPerAppend caps the entries carried by one AppendEntries
	// message (0 = unlimited); a lagging follower then catches up over
	// several bounded round trips instead of one unbounded message.
	MaxEntriesPerAppend int
	// MaxInflightAppends bounds outstanding AppendEntries messages per
	// follower once it is replicating (0 = replica.DefaultMaxInflight). A
	// full window downgrades the round to a plain heartbeat. Secondary to
	// MaxInflightBytes.
	MaxInflightAppends int
	// MaxInflightBytes bounds the encoded entry bytes outstanding per
	// follower (0 = replica.DefaultMaxInflightBytes, 1 MiB): the primary
	// append window, sized at encode time so flow control tracks actual
	// wire cost instead of message counts.
	MaxInflightBytes int
	// MaxSnapshotChunk is the InstallSnapshot chunk payload size in bytes:
	// the leader slices the encoded snapshot into chunks no larger than
	// this so transfers fit datagram transports (0 = whole snapshot in one
	// message).
	MaxSnapshotChunk int
	// SnapshotResendTimeout is how long a transfer may go without
	// acknowledged progress before it is retried, before any round trips
	// have been observed on the link (default 4 heartbeats): a pending
	// snapshot's unacked part is re-sent, and a full AppendEntries window
	// falls back to probing so lost appends are retransmitted. Once acks
	// flow, the per-peer adaptive estimate (EWMA of observed round trips,
	// clamped between HeartbeatInterval and ElectionTimeoutMin) takes
	// over.
	SnapshotResendTimeout time.Duration
	// SessionTTL expires client sessions idle longer than this, via
	// leader-committed clock entries (0 = no expiry).
	SessionTTL time.Duration
	// Snapshotter produces and consumes application state-machine images
	// for compaction (optional; without one snapshots carry empty state).
	Snapshotter types.Snapshotter
	// Rand drives randomized timeouts; required for deterministic
	// simulation.
	Rand *rand.Rand
	// Recorder, when set, receives protocol flight-recorder events and
	// proposal lifecycle spans (see internal/trace). Nil disables recording
	// at the cost of one nil check per instrumentation point.
	Recorder *trace.Recorder
}

// Defaults fills unset durations with the paper's experimental settings.
func (c *Config) Defaults() {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 3 * c.HeartbeatInterval
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 2 * c.ElectionTimeoutMin
	}
	if c.ProposalTimeout == 0 {
		c.ProposalTimeout = 6 * c.HeartbeatInterval
	}
	if c.SnapshotResendTimeout == 0 {
		c.SnapshotResendTimeout = 4 * c.HeartbeatInterval
	}
}

func (c *Config) validate() error {
	if c.ID == types.None {
		return errors.New("raft: config needs an ID")
	}
	if c.Storage == nil {
		return errors.New("raft: config needs Storage")
	}
	if c.Rand == nil {
		return errors.New("raft: config needs Rand")
	}
	if c.ElectionTimeoutMax <= c.ElectionTimeoutMin {
		return errors.New("raft: ElectionTimeoutMax must exceed ElectionTimeoutMin")
	}
	return nil
}

// pendingProposal tracks a locally originated proposal until it resolves.
type pendingProposal struct {
	entry    types.Entry
	deadline time.Duration
}

// Node is a classic Raft site. It is not safe for concurrent use; hosts
// serialize all calls.
type Node struct {
	cfg Config

	term     types.Term
	votedFor types.NodeID
	log      *logstore.Log

	role        types.Role
	leaderID    types.NodeID
	commitIndex types.Index

	// follower/candidate timer.
	electionDeadline time.Duration
	// leader timer.
	tickDeadline time.Duration

	// candidate state.
	votes map[types.NodeID]bool

	// progress is the per-peer replication engine (internal/replica): it
	// owns what used to be the nextIndex/matchIndex maps plus append flow
	// control and snapshot streaming state. Leader-only; nil otherwise.
	progress *replica.Tracker
	aeRound  uint64
	// notifyQueue holds commit notifications to flush at the next leader
	// tick (see package comment on timing).
	notifyQueue []types.Envelope

	// proposer state.
	proposalSeq uint64
	pending     map[types.ProposalID]*pendingProposal

	outbox    []types.Envelope
	committed []types.Entry
	resolved  []types.Resolution

	// Durability gating (group-commit storage only; see internal/durable).
	// gate is nil for synchronous storage and every queue passes through.
	// The Take* drains tag each batch with the storage LSN it depends on and
	// release only the durable prefix; acts defers this node's internal
	// self-acknowledgements — its own election vote and its own match index
	// — until the records behind them are on disk.
	gate       *durable.Gate
	acts       durable.Acts
	outboxQ    durable.Queue[types.Envelope]
	committedQ durable.Queue[types.Entry]
	resolvedQ  durable.Queue[types.Resolution]

	// snap is the latest snapshot (zero if none); the leader ships it to
	// followers that fell behind the compacted prefix. snapEnc caches its
	// wire encoding for chunked transfers; snapRecv reassembles chunked
	// streams received as follower.
	snap     types.Snapshot
	snapEnc  replica.SnapshotEncoder
	snapRecv replica.Reassembler

	// metrics counts replication events (see internal/replica counter
	// names); it survives role changes, as do the latency histograms.
	// commitHist observes leader-side commit latency (local append to
	// commit); installHist observes follower-side snapshot install
	// duration (stream start to install). appendedAt tracks when the
	// leader appended each uncommitted index (commitHist input; leader
	// only), installStart when the pending snapshot stream began.
	metrics      *stats.Counters
	commitHist   *stats.TimingHist
	installHist  *stats.TimingHist
	appendedAt   map[types.Index]time.Duration
	installStart time.Duration
	// installBoundary/installCheck identify the stream installStart was
	// armed for, so a new stream arriving over a stale partial buffer
	// restarts the clock instead of inheriting the dead stream's start.
	installBoundary types.Index
	installCheck    uint32
	// snapStreamTrace (leader) and installTrace (follower) carry the
	// sampled trace context of an in-flight snapshot stream, so every
	// chunk and the final install land in the same trace tree.
	snapStreamTrace map[types.NodeID]uint64
	installTrace    uint64

	// Linearizable read state (see read.go and internal/readpath). reads
	// is the node-lifetime frontend; readMgr is leader-only, like the
	// tracker; readFloor is this term's no-op index, the completeness
	// floor below which a fresh leader cannot vouch for prior commits.
	// lastLeaderContact backs the election-stickiness vote refusal the
	// lease safety argument depends on.
	reads             *readpath.Frontend
	readMgr           *readpath.Manager
	readFloor         types.Index
	lastLeaderContact time.Duration
	// bootGraceArm/bootGraceUntil implement the post-restart vote-refusal
	// window: a node restarted with persisted state may have acknowledged
	// a lease round just before crashing, and its volatile stickiness
	// state is gone — so it refuses votes for one minimum election
	// timeout after its first post-boot activity, by which time any lease
	// it could have underwritten has expired.
	bootGraceArm   bool
	bootGraceUntil time.Duration

	// sessions is the replicated client-session registry (see
	// internal/session), consulted at append and apply time for
	// exactly-once semantics and snapshotted with the log prefix.
	sessions *session.Registry
	// lastSessionClock is when this leader last appended a session clock
	// entry (expiry pacing).
	lastSessionClock time.Duration

	// rec is the protocol flight recorder (nil = disabled; every call is a
	// nil-check no-op).
	rec *trace.Recorder

	now time.Duration
}

// New builds a node, recovering persistent state from cfg.Storage.
func New(cfg Config) (*Node, error) {
	cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hs, entries, err := cfg.Storage.Load()
	if err != nil {
		return nil, fmt.Errorf("raft: load storage: %w", err)
	}
	snap, hasSnap, err := cfg.Storage.LoadSnapshot()
	if err != nil {
		return nil, fmt.Errorf("raft: load snapshot: %w", err)
	}
	log, err := logstore.RestoreSnapshot(cfg.Bootstrap, snap.Meta, entries)
	if err != nil {
		return nil, fmt.Errorf("raft: restore log: %w", err)
	}
	n := &Node{
		cfg:         cfg,
		term:        hs.Term,
		votedFor:    hs.VotedFor,
		log:         log,
		gate:        durable.NewGate(cfg.Storage),
		role:        types.RoleFollower,
		pending:     make(map[types.ProposalID]*pendingProposal),
		sessions:    session.New(),
		metrics:     stats.NewCounters(),
		commitHist:  stats.NewTimingHist("hist.commit_latency", stats.DefaultLatencyBounds()...),
		installHist: stats.NewTimingHist("hist.snapshot_install", stats.DefaultLatencyBounds()...),
		rec:         cfg.Recorder,
	}
	n.rec.SetPeersFunc(func() []types.NodeID { return n.Config().Others(n.cfg.ID) })
	// A node with persisted consensus state may have underwritten a lease
	// before it crashed; see bootGraceArm.
	n.bootGraceArm = hs.Term > 0
	if hasSnap {
		// Snapshots cover only committed entries; resume committing above.
		n.snap = snap
		n.commitIndex = snap.Meta.LastIndex
		if err := n.sessions.Restore(snap.Sessions); err != nil {
			return nil, fmt.Errorf("raft: restore sessions: %w", err)
		}
		if cfg.Snapshotter != nil {
			if err := cfg.Snapshotter.Restore(snap.Clone()); err != nil {
				return nil, fmt.Errorf("raft: restore state machine: %w", err)
			}
		}
	}
	n.reads = n.newReadFrontend()
	n.resetElectionTimer()
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.cfg.ID }

// Role returns the node's current role.
func (n *Node) Role() types.Role { return n.role }

// Term returns the node's current term.
func (n *Node) Term() types.Term { return n.term }

// LeaderID returns the current known leader (None if unknown).
func (n *Node) LeaderID() types.NodeID { return n.leaderID }

// CommitIndex returns the node's commit index.
func (n *Node) CommitIndex() types.Index { return n.commitIndex }

// Config returns the node's active membership configuration.
func (n *Node) Config() types.Config {
	cfg, _ := n.log.Config()
	return cfg
}

// LastIndex returns the last log index.
func (n *Node) LastIndex() types.Index { return n.log.LastIndex() }

// FirstIndex returns the first retained log index (1 when nothing has been
// compacted).
func (n *Node) FirstIndex() types.Index { return n.log.FirstIndex() }

// SnapshotIndex returns the current snapshot boundary (0 if none).
func (n *Node) SnapshotIndex() types.Index { return n.log.SnapshotIndex() }

// PendingProposals returns the number of unresolved local proposals.
func (n *Node) PendingProposals() int { return len(n.pending) }

// Metrics returns a snapshot of the node's observability surface: the
// monotonic replication counters (see internal/replica for the names),
// the commit-latency and snapshot-install histograms (hist.* keys,
// cumulative buckets), and point-in-time gauges (gauge.log_span,
// gauge.sessions_open, gauge.snapshot_bytes).
func (n *Node) Metrics() map[string]uint64 {
	out := n.metrics.Snapshot()
	n.commitHist.MergeInto(out, "")
	n.installHist.MergeInto(out, "")
	n.rec.MergeMetrics(out, "")
	out["gauge.log_span"] = uint64(n.log.LastIndex() - n.log.FirstIndex() + 1)
	out["gauge.sessions_open"] = uint64(n.sessions.Len())
	out["gauge.snapshot_bytes"] = uint64(len(n.snap.Data) + len(n.snap.Sessions))
	out["log.compacted_pid_hits"] = n.log.CompactedPIDHits()
	return out
}

// Recorder exposes the node's flight recorder (nil when tracing is
// disabled). The recorder is safe to snapshot from any goroutine.
func (n *Node) Recorder() *trace.Recorder { return n.rec }

// LeaseUntil returns the read lease expiry on this node's clock (0 = no
// lease, or not leading); diagnostics.
func (n *Node) LeaseUntil() time.Duration {
	if n.readMgr == nil {
		return 0
	}
	return n.readMgr.LeaseUntil()
}

// Progress exposes the per-peer replication tracker (nil unless leader);
// tests and diagnostics only.
func (n *Node) Progress() *replica.Tracker { return n.progress }

// PeerStatus snapshots every tracked peer's replication progress (empty
// unless this node leads): state, match/next, srtt/rttvar and inflight
// window occupancy.
func (n *Node) PeerStatus() []replica.PeerStatus {
	if n.progress == nil {
		return nil
	}
	return n.progress.Status()
}

// TakeOutbox drains messages to send. With group-commit storage only the
// durable prefix is released; the rest follows after SyncDone.
func (n *Node) TakeOutbox() []types.Envelope {
	n.outboxQ.Hold(n.gate.Tag(), n.outbox)
	n.outbox = nil
	return n.outboxQ.Release(n.gate.Durable(), nil)
}

// TakeCommitted drains newly committed entries, in log order. With
// group-commit storage only the durable prefix is released.
func (n *Node) TakeCommitted() []types.Entry {
	n.committedQ.Hold(n.gate.Tag(), n.committed)
	n.committed = nil
	return n.committedQ.Release(n.gate.Durable(), nil)
}

// TakeResolved drains resolutions of locally originated proposals. With
// group-commit storage only the durable prefix is released.
func (n *Node) TakeResolved() []types.Resolution {
	n.resolvedQ.Hold(n.gate.Tag(), n.resolved)
	n.resolved = nil
	return n.resolvedQ.Release(n.gate.Durable(), nil)
}

// SyncDone advances the durability horizon after a storage sync: deferred
// self-acknowledgements run (possibly winning an election), held outputs
// become releasable at the next Take*, and a leader re-evaluates commits
// that were waiting on its own appends. With synchronous storage nothing is
// ever deferred and this is a no-op.
func (n *Node) SyncDone(now time.Duration, durableLSN uint64) {
	n.now = now
	if !n.acts.Run(durableLSN) {
		return
	}
	if n.role != types.RoleLeader {
		return
	}
	n.advanceCommit()
	n.reads.Flush(n.now)
}

// recordSelfDurable counts the leader's own log head toward the commit
// quorum only once every record behind it is on disk. Head and term are
// captured now; a stale self-ack from a finished leadership is dropped.
func (n *Node) recordSelfDurable() {
	idx := n.log.LastIndex()
	term := n.term
	n.acts.After(n.gate, func() {
		if n.role == types.RoleLeader && n.term == term && n.progress != nil {
			n.progress.RecordSelf(n.cfg.ID, idx)
		}
	})
}

// NextDeadline returns the earliest future instant at which the node needs
// Tick. Zero means no pending deadline.
func (n *Node) NextDeadline() time.Duration {
	var d time.Duration
	add := func(t time.Duration) {
		if t > 0 && (d == 0 || t < d) {
			d = t
		}
	}
	switch n.role {
	case types.RoleLeader:
		add(n.tickDeadline)
	default:
		add(n.electionDeadline)
	}
	for _, p := range n.pending {
		add(p.deadline)
	}
	n.reads.EachDeadline(add)
	return d
}

// Propose submits an application entry from this site. The proposal is
// tracked and re-sent until resolved.
func (n *Node) Propose(now time.Duration, data []byte) types.ProposalID {
	n.now = now
	n.proposalSeq++
	pid := types.ProposalID{Proposer: n.cfg.ID, Seq: n.proposalSeq}
	e := types.Entry{Kind: types.KindNormal, PID: pid, Data: append([]byte(nil), data...)}
	e.TraceID = n.rec.MintTrace()
	n.pending[pid] = &pendingProposal{entry: e, deadline: now + n.cfg.ProposalTimeout}
	n.rec.SpanStart(now, pid, n.term, e.TraceID)
	n.submit(e)
	return pid
}

// Sessions exposes the replicated client-session registry (tests and
// diagnostics; callers must not mutate it).
func (n *Node) Sessions() *session.Registry { return n.sessions }

// OpenSession proposes a session-registration entry; the proposal resolves
// with the commit index of the entry, which is the new session's ID.
func (n *Node) OpenSession(now time.Duration) types.ProposalID {
	n.now = now
	n.proposalSeq++
	pid := types.ProposalID{Proposer: n.cfg.ID, Seq: n.proposalSeq}
	e := types.Entry{Kind: types.KindSessionOpen, PID: pid}
	e.TraceID = n.rec.MintTrace()
	n.pending[pid] = &pendingProposal{entry: e, deadline: now + n.cfg.ProposalTimeout}
	n.rec.SpanStart(now, pid, n.term, e.TraceID)
	n.submit(e)
	return pid
}

// ProposeSession submits an application entry under (sid, seq): an identity
// that, unlike the ProposalID, survives proposer restarts. A retry of an
// already-applied sequence resolves immediately with the cached commit
// index. ack is the client's retry floor (0 = none): sequences below it
// are promised never to be retried, so every replica drops their cached
// responses when the entry commits.
func (n *Node) ProposeSession(now time.Duration, sid types.SessionID, seq, ack uint64, data []byte) types.ProposalID {
	n.now = now
	n.proposalSeq++
	pid := types.ProposalID{Proposer: n.cfg.ID, Seq: n.proposalSeq}
	if idx, dup := n.sessions.LookupDup(sid, seq); dup {
		n.resolved = append(n.resolved, types.Resolution{PID: pid, Index: idx})
		return pid
	}
	e := types.Entry{
		Kind:       types.KindNormal,
		PID:        pid,
		Session:    sid,
		SessionSeq: seq,
		SessionAck: ack,
		Data:       append([]byte(nil), data...),
	}
	e.TraceID = n.rec.MintTrace()
	n.pending[pid] = &pendingProposal{entry: e, deadline: now + n.cfg.ProposalTimeout}
	n.rec.SpanStart(now, pid, n.term, e.TraceID)
	n.submit(e)
	return pid
}

// submit routes a proposal toward the leader (appending locally when this
// node leads).
func (n *Node) submit(e types.Entry) {
	if n.role == types.RoleLeader {
		n.leaderAppend(e)
		return
	}
	if n.leaderID != types.None && n.leaderID != n.cfg.ID {
		n.rec.TraceHop(n.now, e.TraceID, trace.HopForward, n.leaderID, 0)
		n.send(n.leaderID, types.ClientPropose{Entry: e.Clone()})
	}
	// Leader unknown: the retry timer will re-submit.
}

// armBootGrace anchors the post-restart vote-refusal window at the
// node's first post-boot activity. It doubles as the boot marker in the
// flight recorder: the EvBoot event opens a new epoch for the safety
// auditor (recommits from the restored commit index are legitimate).
func (n *Node) armBootGrace(now time.Duration) {
	if n.bootGraceArm {
		n.bootGraceArm = false
		n.bootGraceUntil = now + n.cfg.ElectionTimeoutMin
		n.rec.Boot(now, n.term, n.commitIndex)
	}
}

// Tick advances time; expired deadlines fire.
func (n *Node) Tick(now time.Duration) {
	n.now = now
	n.armBootGrace(now)
	switch n.role {
	case types.RoleLeader:
		if n.tickDeadline != 0 && now >= n.tickDeadline {
			n.leaderTick()
			n.tickDeadline = now + n.cfg.HeartbeatInterval
		}
	default:
		if n.electionDeadline != 0 && now >= n.electionDeadline {
			n.startElection()
		}
	}
	n.retryProposals(now)
	n.reads.Retry(now)
	n.maybeCompact()
}

func (n *Node) retryProposals(now time.Duration) {
	var due []types.ProposalID
	for pid, p := range n.pending {
		if now >= p.deadline {
			due = append(due, pid)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].Less(due[j]) })
	for _, pid := range due {
		p := n.pending[pid]
		p.deadline = now + n.cfg.ProposalTimeout
		// Re-submit; the leader de-duplicates by PID.
		n.submit(p.entry)
	}
}

// Step delivers one message.
func (n *Node) Step(now time.Duration, env types.Envelope) {
	n.now = now
	n.armBootGrace(now)
	switch m := env.Msg.(type) {
	case types.ClientPropose:
		n.onClientPropose(env.From, m)
	case types.AppendEntries:
		n.onAppendEntries(env.From, m)
	case types.AppendEntriesResp:
		n.onAppendEntriesResp(env.From, m)
	case types.RequestVote:
		n.onRequestVote(env.From, m)
	case types.RequestVoteResp:
		n.onRequestVoteResp(env.From, m)
	case types.InstallSnapshot:
		n.onInstallSnapshot(env.From, m)
	case types.InstallSnapshotReply:
		n.onInstallSnapshotReply(env.From, m)
	case types.CommitNotify:
		n.onCommitNotify(m)
	case types.ReadRequest:
		n.reads.OnReadRequest(env.From, m, n.now)
	case types.ReadReply:
		n.reads.OnReadReply(m, n.now)
	default:
		// Unknown messages (e.g. Fast Raft traffic misrouted in tests) are
		// ignored; classic Raft has no use for them.
	}
}

func (n *Node) send(to types.NodeID, msg types.Message) {
	if to == n.cfg.ID || to == types.None {
		return
	}
	n.outbox = append(n.outbox, types.Envelope{
		From: n.cfg.ID, To: to, Layer: types.LayerLocal, Msg: msg,
	})
}

func (n *Node) persistHardState() {
	err := n.cfg.Storage.SetHardState(storage.HardState{Term: n.term, VotedFor: n.votedFor})
	if err != nil {
		// Storage failures are fatal for a consensus node; surface loudly.
		panic(fmt.Sprintf("raft %s: persist hard state: %v", n.cfg.ID, err))
	}
}

func (n *Node) persistEntry(e types.Entry) {
	if err := n.cfg.Storage.AppendEntry(e); err != nil {
		panic(fmt.Sprintf("raft %s: persist entry: %v", n.cfg.ID, err))
	}
}

func (n *Node) resetElectionTimer() {
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin + time.Duration(n.cfg.Rand.Int63n(int64(span)))
	n.electionDeadline = n.now + d
}

func (n *Node) becomeFollower(term types.Term, leader types.NodeID) {
	changedTerm := term > n.term
	if changedTerm {
		n.term = term
		n.votedFor = types.None
		n.persistHardState()
	}
	n.role = types.RoleFollower
	if leader != types.None {
		n.leaderID = leader
	} else if changedTerm {
		n.leaderID = types.None
	}
	n.votes = nil
	// Step-down fails every leader-side read before the manager goes: local
	// reads fall back to the forward path, remote origins are told to retry.
	n.reads.FailLeaderReads(n.now)
	n.readMgr = nil
	n.progress = nil
	n.snapEnc.Release()
	n.appendedAt = nil
	n.snapStreamTrace = nil
	n.notifyQueue = nil
	n.tickDeadline = 0
	n.resetElectionTimer()
	n.rec.RoleChange(n.now, n.term, types.RoleFollower, n.leaderID)
}

func (n *Node) startElection() {
	cfg := n.Config()
	if !cfg.Contains(n.cfg.ID) {
		// Not a voting member; wait to be contacted.
		n.resetElectionTimer()
		return
	}
	n.role = types.RoleCandidate
	n.term++
	n.votedFor = n.cfg.ID
	n.persistHardState()
	n.leaderID = types.None
	n.votes = map[types.NodeID]bool{}
	// Every role transition releases the snapshot-encoding cache: a
	// candidate that immediately wins would otherwise inherit (and pin)
	// its previous leadership's encoded image.
	n.snapEnc.Release()
	n.resetElectionTimer()
	n.rec.ElectionStart(n.now, n.term)
	n.rec.RoleChange(n.now, n.term, types.RoleCandidate, types.None)
	req := types.RequestVote{
		Term:         n.term,
		CandidateID:  n.cfg.ID,
		LastLogIndex: n.log.LastIndex(),
		LastLogTerm:  n.log.Term(n.log.LastIndex()),
	}
	for _, peer := range cfg.Others(n.cfg.ID) {
		n.send(peer, req)
	}
	// The candidate's own vote counts only once the term/vote record is on
	// disk: a crash before then would restart the node in the old term, and
	// a tallied-but-lost self-vote could elect a leader a quorum never
	// durably endorsed. With synchronous storage this runs inline.
	term := n.term
	n.acts.After(n.gate, func() {
		if n.role == types.RoleCandidate && n.term == term {
			n.votes[n.cfg.ID] = true
			n.maybeWinElection()
		}
	})
}

func (n *Node) onRequestVote(from types.NodeID, m types.RequestVote) {
	// Election stickiness (the lease-read safety premise): a follower that
	// has heard from a live leader within the minimum election timeout
	// refuses to participate in elections — it neither grants the vote nor
	// adopts the candidate's term, so a disruptive candidate cannot depose
	// a leader whose lease quorum is still fresh. The refusal is answered
	// at our own (lower) term so the candidate knows it was heard.
	if m.Term >= n.term && n.role == types.RoleFollower &&
		n.leaderID != types.None && n.lastLeaderContact != 0 &&
		n.now-n.lastLeaderContact < n.cfg.ElectionTimeoutMin {
		n.send(from, types.RequestVoteResp{Term: n.term})
		return
	}
	// Post-restart grace: the stickiness state above is volatile, so a
	// voter restarted inside a lease window it helped establish would
	// otherwise grant immediately (see bootGraceArm).
	if m.Term >= n.term && n.now < n.bootGraceUntil {
		n.send(from, types.RequestVoteResp{Term: n.term})
		return
	}
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
	}
	resp := types.RequestVoteResp{Term: n.term}
	if m.Term < n.term {
		n.send(from, resp)
		return
	}
	upToDate := m.LastLogTerm > n.log.Term(n.log.LastIndex()) ||
		(m.LastLogTerm == n.log.Term(n.log.LastIndex()) && m.LastLogIndex >= n.log.LastIndex())
	if (n.votedFor == types.None || n.votedFor == m.CandidateID) && upToDate {
		n.votedFor = m.CandidateID
		n.persistHardState()
		n.resetElectionTimer()
		resp.Granted = true
	}
	n.send(from, resp)
}

func (n *Node) onRequestVoteResp(from types.NodeID, m types.RequestVoteResp) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
		return
	}
	if n.role == types.RoleCandidate && m.Term == n.term {
		n.rec.Vote(n.now, m.Term, from, m.Granted)
	}
	if n.role != types.RoleCandidate || m.Term < n.term || !m.Granted {
		return
	}
	n.votes[from] = true
	n.maybeWinElection()
}

func (n *Node) maybeWinElection() {
	cfg := n.Config()
	if !quorum.CountReached(cfg, n.votes, quorum.ClassicSize(cfg.Size())) {
		return
	}
	n.becomeLeader()
}

func (n *Node) becomeLeader() {
	n.rec.ElectionWon(n.now, n.term, n.cfg.ID, len(n.votes))
	n.rec.RoleChange(n.now, n.term, types.RoleLeader, n.cfg.ID)
	n.role = types.RoleLeader
	n.leaderID = n.cfg.ID
	// Session clock advances are measured within one leadership; a stale
	// mark from an earlier term would double-count interim leaders' time.
	n.lastSessionClock = 0
	n.votes = nil
	// Step-up races can skip becomeFollower between leaderships; encoder
	// caches are released on every role transition so a stale image from a
	// previous term is never pinned or streamed.
	n.snapEnc.Release()
	n.appendedAt = make(map[types.Index]time.Duration)
	n.snapStreamTrace = make(map[types.NodeID]uint64)
	cfg := n.Config()
	n.progress = replica.NewTracker(replica.Config{
		MaxInflight:      n.cfg.MaxInflightAppends,
		MaxInflightBytes: n.cfg.MaxInflightBytes,
		MaxEntries:       n.cfg.MaxEntriesPerAppend,
		MaxChunk:         n.cfg.MaxSnapshotChunk,
		ResendTimeout:    n.cfg.SnapshotResendTimeout,
		MinResendTimeout: n.cfg.HeartbeatInterval,
		MaxResendTimeout: n.cfg.ElectionTimeoutMin,
	}, n.metrics)
	n.progress.Reset(cfg.Members, n.log.LastIndex()+1)
	n.recordSelfDurable()
	// The read manager shares the tracker's srtt estimates for lease
	// deration and the node's counter set for observability.
	n.readMgr = n.newReadManager()
	n.readMgr.SetMembership(cfg.Members)
	// Establish a commit point in this term (Raft-thesis no-op).
	n.leaderAppend(types.Entry{Kind: types.KindNoop})
	// Reads cannot be vouched for below this term's no-op: commitIndex may
	// understate what previous leaders committed until it commits.
	n.readFloor = n.log.LastIndex()
	// Reads issued while searching for a leader are now ours to serve.
	n.reads.Retry(n.now)
	// First heartbeat goes out immediately; subsequent ones at the tick.
	n.leaderTick()
	n.tickDeadline = n.now + n.cfg.HeartbeatInterval
}

// leaderAppend appends an entry to the leader's log (de-duplicating by
// session and proposal ID) and persists it. Replication happens at the next
// tick.
func (n *Node) leaderAppend(e types.Entry) {
	// Session duplicate: a retry of a sequence already applied — possibly
	// under a different PID (proposer restart) and possibly below the
	// compaction boundary. Answer with the cached response, don't append.
	if !e.Session.IsZero() {
		if idx, dup := n.sessions.LookupDup(e.Session, e.SessionSeq); dup {
			n.answerProposer(e.PID, idx)
			return
		}
	}
	// A match must agree on the payload: a restarted proposer's reset
	// sequence counter can reuse the PID for a brand-new proposal, which
	// must append fresh rather than be answered with the old entry's index.
	if !e.PID.IsZero() {
		if idx := n.log.FindProposalFor(e.PID, e.Data); idx != 0 {
			if idx <= n.commitIndex {
				n.queueNotify(e.PID, idx)
			}
			return
		}
	}
	idx := n.log.LastIndex() + 1
	e = e.Clone()
	e.Term = n.term
	if err := n.log.AppendLeader(idx, e); err != nil {
		panic(fmt.Sprintf("raft %s: leader append: %v", n.cfg.ID, err))
	}
	stored, _ := n.log.Get(idx)
	n.persistEntry(stored)
	n.appendedAt[idx] = n.now
	n.rec.SpanStage(n.now, e.PID, trace.StageAppend, idx)
	if e.TraceID != 0 && n.rec != nil {
		n.rec.TraceHop(n.now, e.TraceID, trace.HopAppend, "", idx)
		n.rec.TraceAppendIndex(idx, e.TraceID)
	}
	n.recordSelfDurable()
}

func (n *Node) onClientPropose(from types.NodeID, m types.ClientPropose) {
	if n.role == types.RoleLeader {
		n.leaderAppend(m.Entry)
		return
	}
	// Redirect toward the leader if known; otherwise drop (the proposer
	// retries).
	if n.leaderID != types.None && n.leaderID != from {
		n.send(n.leaderID, m)
	}
}

// leaderTick performs all periodic leader duties: commit evaluation,
// notification flush, and AppendEntries dispatch.
func (n *Node) leaderTick() {
	n.advanceCommit()
	n.reads.Flush(n.now)
	n.maybeSessionClock()
	n.flushNotifications()
	n.broadcastAppend()
}

func (n *Node) advanceCommit() {
	cfg := n.Config()
	classic := quorum.ClassicSize(cfg.Size())
	for k := n.commitIndex + 1; k <= n.log.LastIndex(); k++ {
		if n.log.Term(k) != n.term {
			continue
		}
		if !n.progress.MatchQuorum(cfg, k, classic) {
			break
		}
		n.commitTo(k)
	}
}

func (n *Node) commitTo(k types.Index) {
	for i := n.commitIndex + 1; i <= k; i++ {
		e, ok := n.log.Get(i)
		if !ok {
			panic(fmt.Sprintf("raft %s: commit hole at %d", n.cfg.ID, i))
		}
		if at, ok := n.appendedAt[i]; ok {
			n.commitHist.Observe(n.now - at)
			delete(n.appendedAt, i)
		}
		n.rec.SpanStage(n.now, e.PID, trace.StageCommit, i)
		n.rec.CommitEntry(n.now, n.term, e)
		if n.applySessionCommit(e) {
			// Session duplicate (or expired-session proposal): the slot
			// commits but the entry is withheld from the state machine.
			n.commitIndex = i
			continue
		}
		n.committed = append(n.committed, e)
		n.observeCommitted(e)
		if n.role == types.RoleLeader && !e.PID.IsZero() {
			n.queueNotify(e.PID, i)
		}
	}
	n.commitIndex = k
	if n.rec != nil {
		n.rec.TraceCommitted(k)
	}
}

// applySessionCommit folds one committed entry into the session registry,
// reporting whether the entry must be withheld from the state machine (a
// duplicate, or a proposal under an expired session). The proposer is
// answered with the cached response out-of-band.
func (n *Node) applySessionCommit(e types.Entry) (skip bool) {
	switch e.Kind {
	case types.KindSessionOpen:
		n.sessions.ApplyOpen(e.Index)
		n.rec.SessionOpen(n.now, uint64(e.Index))
		return false
	case types.KindSessionExpire:
		advance, ttl, err := session.DecodeExpire(e.Data)
		if err != nil {
			panic(fmt.Sprintf("raft %s: corrupt session clock entry at %d: %v", n.cfg.ID, e.Index, err))
		}
		n.sessions.ApplyExpire(advance, ttl)
		n.rec.SessionExpire(n.now, n.sessions.Len())
		return false
	case types.KindNormal:
		if e.Session.IsZero() {
			return false
		}
		cached, dup, known := n.sessions.ApplyNormal(e.Session, e.SessionSeq, e.SessionAck, e.Index)
		if !known {
			// Session expired: with the dedup state gone this apply could
			// be a second one — reject it (resolution index 0).
			n.answerProposer(e.PID, 0)
			return true
		}
		if dup {
			n.answerProposer(e.PID, cached)
			return true
		}
		n.rec.ApplySession(n.now, e.Index, uint64(e.Session), e.SessionSeq)
		return false
	default:
		return false
	}
}

// answerProposer resolves a proposal out-of-band (session duplicate or
// rejection): locally when this site originated it, through the leader's
// notification queue otherwise.
func (n *Node) answerProposer(pid types.ProposalID, idx types.Index) {
	if pid.IsZero() {
		return
	}
	if pid.Proposer == n.cfg.ID {
		if _, ok := n.pending[pid]; ok {
			delete(n.pending, pid)
			n.rec.SpanEnd(n.now, pid, idx)
			n.resolved = append(n.resolved, types.Resolution{PID: pid, Index: idx})
		}
		return
	}
	if n.role == types.RoleLeader {
		n.notifyQueue = append(n.notifyQueue, types.Envelope{
			From: n.cfg.ID, To: pid.Proposer, Layer: types.LayerLocal,
			Msg: types.CommitNotify{PID: pid, Index: idx},
		})
	}
}

// maybeSessionClock lets the leader pace session expiry: while sessions
// exist and a TTL is configured, it periodically appends a clock entry so
// every replica advances the same deterministic clock.
func (n *Node) maybeSessionClock() {
	ttl := n.cfg.SessionTTL
	if ttl <= 0 || n.sessions.Len() == 0 {
		return
	}
	interval := ttl / 4
	if interval <= 0 {
		interval = ttl
	}
	if n.lastSessionClock != 0 && n.now < n.lastSessionClock+interval {
		return
	}
	// Carry the advance since this leader's previous clock entry, not an
	// absolute timestamp (see fastraft.maybeSessionClock): the replicated
	// clock then never stalls or jumps across leader changes or restarts.
	var advance time.Duration
	if n.lastSessionClock != 0 {
		advance = n.now - n.lastSessionClock
	}
	n.lastSessionClock = n.now
	n.leaderAppend(types.Entry{
		Kind: types.KindSessionExpire,
		Data: session.EncodeExpire(uint64(advance), uint64(ttl)),
	})
}

// observeCommitted resolves local proposals seen in the committed stream.
func (n *Node) observeCommitted(e types.Entry) {
	if e.PID.Proposer != n.cfg.ID {
		return
	}
	if _, ok := n.pending[e.PID]; ok {
		delete(n.pending, e.PID)
		n.rec.SpanEnd(n.now, e.PID, e.Index)
		n.resolved = append(n.resolved, types.Resolution{PID: e.PID, Index: e.Index})
	}
}

func (n *Node) queueNotify(pid types.ProposalID, idx types.Index) {
	if pid.Proposer == n.cfg.ID {
		// Local proposer: resolved via observeCommitted.
		return
	}
	n.notifyQueue = append(n.notifyQueue, types.Envelope{
		From: n.cfg.ID, To: pid.Proposer, Layer: types.LayerLocal,
		Msg: types.CommitNotify{PID: pid, Index: idx},
	})
}

func (n *Node) flushNotifications() {
	n.outbox = append(n.outbox, n.notifyQueue...)
	n.notifyQueue = nil
}

// logView exposes the full log to the shared dispatch layer (classic Raft
// replicates every entry; Fast Raft passes its leader-approved prefix
// instead — that accessor pair is the whole difference between the cores'
// replication).
func (n *Node) logView() replica.LogView {
	return replica.LogView{
		LastIndex:     n.log.LastIndex,
		Term:          n.log.Term,
		Entries:       n.log.Range,
		SnapshotIndex: n.log.SnapshotIndex,
	}
}

// round is the per-broadcast-round context stamped onto dispatched
// messages.
func (n *Node) round() replica.Round {
	return replica.Round{
		Term:     n.term,
		Leader:   n.cfg.ID,
		Commit:   n.commitIndex,
		Seq:      n.aeRound,
		NextHint: n.log.LastIndex() + 1,
		Now:      n.now,
	}
}

// broadcastAppend dispatches this round's traffic to every follower
// through the shared replication engine: snapshot chunks while a follower
// is behind the compacted prefix, log entries while the inflight window
// allows, a bare heartbeat otherwise (see replica.Tracker.AppendMessages).
func (n *Node) broadcastAppend() {
	cfg := n.Config()
	n.aeRound++
	lv, rc := n.logView(), n.round()
	if n.readMgr != nil {
		// Seal the pending ReadIndex batch onto this round; a quorum of
		// acks echoing the ID confirms every read in it at once.
		rc.ReadCtx = n.readMgr.StampRound(n.now)
	}
	for _, peer := range cfg.Others(n.cfg.ID) {
		msgs, snapshot := n.progress.AppendMessages(peer, lv, rc)
		if n.rec != nil {
			for _, m := range msgs {
				if len(m.Entries) > 0 {
					n.rec.AppendDispatch(n.now, m.Term, peer, m.PrevLogIndex, len(m.Entries), m.Round)
					for _, e := range m.Entries {
						n.rec.SpanStage(n.now, e.PID, trace.StageReplicate, e.Index)
					}
				}
			}
		}
		if snapshot {
			// The entries this follower needs are compacted away; stream
			// the snapshot instead. While the install is pending, nothing
			// is re-sent — the heartbeat keeps leadership alive.
			if !n.sendSnapshotTo(peer) {
				n.send(peer, n.progress.HeartbeatMessage(peer, lv, rc))
			}
			continue
		}
		for _, m := range msgs {
			n.send(peer, m)
		}
	}
}

func (n *Node) onAppendEntries(from types.NodeID, m types.AppendEntries) {
	if m.Term > n.term || (m.Term == n.term && n.role != types.RoleFollower) {
		n.becomeFollower(m.Term, m.LeaderID)
	}
	resp := types.AppendEntriesResp{Term: n.term, Round: m.Round, LastLogIndex: n.log.LastIndex()}
	// Report any partially buffered snapshot stream so a new leader can
	// continue it from our position instead of restarting at byte 0.
	resp.PendingBoundary, resp.PendingOffset = n.snapRecv.Pending()
	if m.Term < n.term {
		n.send(from, resp)
		return
	}
	// Echo the read-batch ID: a quorum of echoes confirms the leader's
	// pending reads without any log write.
	resp.ReadCtx = m.ReadCtx
	n.leaderID = m.LeaderID
	n.lastLeaderContact = n.now
	n.resetElectionTimer()
	// Consistency check. Entries at or below our snapshot boundary are
	// committed and match the leader by construction, so the check applies
	// only above it.
	if m.PrevLogIndex >= n.log.SnapshotIndex() &&
		m.PrevLogIndex > 0 && n.log.Term(m.PrevLogIndex) != m.PrevLogTerm {
		resp.Success = false
		n.send(from, resp)
		return
	}
	// Append/overwrite entries, truncating on conflict (classic Raft).
	for _, e := range m.Entries {
		if e.Index <= n.log.SnapshotIndex() {
			continue // compacted: already committed here
		}
		if have := n.log.Term(e.Index); n.log.Has(e.Index) && have == e.Term {
			continue // already matching
		}
		if n.log.Has(e.Index) {
			n.log.TruncateSuffix(e.Index - 1)
			if err := n.cfg.Storage.TruncateSuffix(e.Index - 1); err != nil {
				panic(fmt.Sprintf("raft %s: truncate storage: %v", n.cfg.ID, err))
			}
		}
		if err := n.log.AppendLeader(e.Index, e); err != nil {
			panic(fmt.Sprintf("raft %s: follower append: %v", n.cfg.ID, err))
		}
		stored, _ := n.log.Get(e.Index)
		n.persistEntry(stored)
		n.rec.TraceHop(n.now, e.TraceID, trace.HopReplicate, from, e.Index)
	}
	match := m.PrevLogIndex + types.Index(len(m.Entries))
	if m.LeaderCommit > n.commitIndex {
		k := m.LeaderCommit
		if last := n.log.LastIndex(); k > last {
			k = last
		}
		if k > n.commitIndex {
			n.commitTo(k)
		}
	}
	resp.Success = true
	resp.MatchIndex = match
	resp.LastLogIndex = n.log.LastIndex()
	n.send(from, resp)
	n.maybeCompact()
}

func (n *Node) onAppendEntriesResp(from types.NodeID, m types.AppendEntriesResp) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
		return
	}
	if n.role != types.RoleLeader || m.Term < n.term {
		return
	}
	pr := n.progress.Ensure(from, n.log.LastIndex()+1)
	if !m.Success {
		// Back off; the follower's last-index hint converges quickly.
		pr.RejectAppend(m.LastLogIndex)
		n.rec.AppendReject(n.now, m.Term, from, m.LastLogIndex)
	} else {
		// Record only acks that advance the match (idle heartbeat echoes
		// carry no forensic signal and would churn the ring).
		if n.rec != nil && m.MatchIndex > pr.Match() {
			n.rec.AppendAck(n.now, m.Term, from, m.MatchIndex, m.Round)
		}
		n.rec.TraceAck(n.now, from, m.MatchIndex)
		pr.AckAppend(m.MatchIndex, n.now)
	}
	// Any same-term response confirms leadership at the round's dispatch
	// time — the consistency-check outcome is irrelevant to reads.
	if n.readMgr != nil && m.ReadCtx != 0 {
		n.readMgr.ObserveAck(from, m.ReadCtx, n.now)
		n.reads.Flush(n.now)
	}
	// Stream continuation: the follower holds a partial snapshot stream at
	// our boundary (from a predecessor leader); seed the transfer from its
	// buffered offset so acked chunks are never re-sent from byte 0.
	if b := m.PendingBoundary; b != 0 && b == n.log.SnapshotIndex() &&
		m.PendingOffset > 0 && pr.Match() < b {
		n.progress.SeedSnapshot(from, b, m.PendingOffset, n.now)
		n.rec.SnapResume(n.now, from, b, m.PendingOffset)
	}
	// Commit evaluation happens at the next leader tick (timing model).
}

func (n *Node) onCommitNotify(m types.CommitNotify) {
	if _, ok := n.pending[m.PID]; ok {
		delete(n.pending, m.PID)
		n.rec.SpanEnd(n.now, m.PID, m.Index)
		n.resolved = append(n.resolved, types.Resolution{PID: m.PID, Index: m.Index})
	}
}

// --- Snapshotting & log compaction -----------------------------------------

// maybeCompact snapshots and compacts when the committed suffix beyond the
// snapshot boundary reaches the configured threshold. The compaction point
// never exceeds what the application reports as applied.
func (n *Node) maybeCompact() {
	t := n.cfg.SnapshotThreshold
	if t <= 0 || n.commitIndex < n.log.SnapshotIndex()+types.Index(t) {
		return
	}
	point := n.commitIndex
	var data []byte
	if n.cfg.Snapshotter != nil {
		d, applied, err := n.cfg.Snapshotter.Snapshot()
		if err != nil {
			return // transient application failure; retry at a later tick
		}
		data = d
		if applied < point {
			point = applied
		}
	}
	// Gate on the achievable point, not just commitIndex: if the applier
	// trails commit, compacting on every small advance of applied would
	// rotate the WAL per entry instead of per threshold.
	if point < n.log.SnapshotIndex()+types.Index(t) {
		return
	}
	cfg, ci := n.log.ConfigAt(point)
	snap := types.Snapshot{
		Meta: types.SnapshotMeta{
			LastIndex:   point,
			LastTerm:    n.log.Term(point),
			Config:      cfg,
			ConfigIndex: ci,
		},
		Data: data,
		// The session registry as of the boundary rides along, so dedup
		// state survives the compaction it would otherwise be lost to.
		Sessions: n.sessionStateAt(point),
	}
	if err := n.cfg.Storage.SaveSnapshot(snap); err != nil {
		panic(fmt.Sprintf("raft %s: save snapshot: %v", n.cfg.ID, err))
	}
	if err := n.log.CompactTo(point, snap.Meta.LastTerm); err != nil {
		panic(fmt.Sprintf("raft %s: compact log: %v", n.cfg.ID, err))
	}
	if err := n.cfg.Storage.TruncatePrefix(point); err != nil {
		panic(fmt.Sprintf("raft %s: truncate storage prefix: %v", n.cfg.ID, err))
	}
	n.snap = snap
	n.rec.Compact(n.now, point, n.commitIndex)
}

// sendSnapshotTo streams the current snapshot to a follower whose log
// position fell below the compacted prefix: whole-image in one message
// when chunking is off, MaxSnapshotChunk-sized chunks otherwise. The
// tracker plans (and suppresses) transmission; false means nothing was
// sent this round (pending install).
func (n *Node) sendSnapshotTo(peer types.NodeID) bool {
	enc, check := n.snapEnc.Encode(n.snap)
	msgs := n.progress.SnapshotMessages(peer, n.snap, enc, check,
		n.term, n.cfg.ID, n.aeRound, n.now)
	for _, m := range msgs {
		b := m.Boundary
		if b == 0 {
			b = n.snap.Meta.LastIndex
		}
		if m.Offset == 0 {
			if n.rec != nil {
				n.rec.SnapStreamStart(n.now, n.term, peer, b)
			}
			// Mint one trace per stream; every chunk and the follower's
			// install share it.
			if tid := n.rec.MintTrace(); tid != 0 && n.snapStreamTrace != nil {
				n.snapStreamTrace[peer] = tid
			}
		}
		if n.snapStreamTrace != nil {
			m.Trace = n.snapStreamTrace[peer]
		}
		if n.rec != nil {
			n.rec.SnapChunk(n.now, peer, b, m.Offset, m.Done)
			n.rec.TraceHop(n.now, m.Trace, trace.HopSnapChunk, peer, b)
		}
		if m.Done {
			delete(n.snapStreamTrace, peer)
		}
		n.send(peer, m)
	}
	return len(msgs) > 0
}

// onInstallSnapshot is the follower side of snapshot transfer: whole
// images install directly; chunks are reassembled and installed on the
// final one. Every message is acknowledged with the buffered offset so
// the leader can resume without re-sending acknowledged chunks.
func (n *Node) onInstallSnapshot(from types.NodeID, m types.InstallSnapshot) {
	if m.Term > n.term || (m.Term == n.term && n.role != types.RoleFollower) {
		n.becomeFollower(m.Term, m.LeaderID)
	}
	boundary := m.Boundary
	if boundary == 0 {
		boundary = m.Snapshot.Meta.LastIndex
	}
	resp := types.InstallSnapshotReply{
		Term: n.term, Round: m.Round, LastIndex: n.commitIndex, Boundary: boundary,
	}
	if m.Term < n.term {
		n.send(from, resp)
		return
	}
	n.leaderID = m.LeaderID
	n.lastLeaderContact = n.now
	n.resetElectionTimer()
	if m.Trace != 0 {
		n.installTrace = m.Trace
		n.rec.TraceHop(n.now, m.Trace, trace.HopSnapChunk, from, boundary)
	}
	if boundary <= n.commitIndex {
		// Already have this prefix; just tell the leader where we are.
		resp.LastIndex = n.commitIndex
		n.snapRecv.Reset()
		n.send(from, resp)
		return
	}
	var snap types.Snapshot
	if !m.Snapshot.IsZero() {
		// Legacy whole-image transfer.
		snap = m.Snapshot
		n.snapRecv.Reset()
		n.installStart = n.now
	} else {
		n.metrics.Inc(replica.CounterChunksReceived)
		// Restart the install clock when a stream begins — including a new
		// (boundary, check) stream arriving over a stale partial buffer,
		// which would otherwise inherit the dead stream's start time.
		if _, buffered := n.snapRecv.Pending(); buffered == 0 ||
			boundary != n.installBoundary || m.Check != n.installCheck {
			n.installStart = n.now
			n.installBoundary, n.installCheck = boundary, m.Check
		}
		s, complete, ack := n.snapRecv.Offer(boundary, m.Check, m.Offset, m.Data, m.Done)
		resp.Offset = ack
		n.rec.SnapChunkRecv(n.now, from, boundary, ack)
		if !complete {
			n.send(from, resp) // acknowledge buffered progress
			return
		}
		snap = s
	}
	if snap.Meta.LastIndex <= n.commitIndex {
		resp.LastIndex = n.commitIndex
		n.send(from, resp)
		return
	}
	if err := n.cfg.Storage.SaveSnapshot(snap); err != nil {
		panic(fmt.Sprintf("raft %s: save installed snapshot: %v", n.cfg.ID, err))
	}
	if err := n.log.InstallSnapshot(snap.Meta); err != nil {
		panic(fmt.Sprintf("raft %s: install snapshot: %v", n.cfg.ID, err))
	}
	if err := n.cfg.Storage.TruncatePrefix(snap.Meta.LastIndex); err != nil {
		panic(fmt.Sprintf("raft %s: truncate storage prefix: %v", n.cfg.ID, err))
	}
	n.snap = snap.Clone()
	n.commitIndex = snap.Meta.LastIndex
	if err := n.sessions.Restore(snap.Sessions); err != nil {
		panic(fmt.Sprintf("raft %s: restore sessions: %v", n.cfg.ID, err))
	}
	if n.cfg.Snapshotter != nil {
		if err := n.cfg.Snapshotter.Restore(snap.Clone()); err != nil {
			panic(fmt.Sprintf("raft %s: restore state machine: %v", n.cfg.ID, err))
		}
	}
	n.metrics.Inc(replica.CounterInstalls)
	n.installHist.Observe(n.now - n.installStart)
	n.rec.SnapInstall(n.now, snap.Meta.LastIndex, n.now-n.installStart)
	n.rec.TraceHop(n.now, n.installTrace, trace.HopSnapInstall, from, snap.Meta.LastIndex)
	n.installTrace = 0
	n.installStart = 0
	resp.LastIndex = snap.Meta.LastIndex
	n.send(from, resp)
}

// sessionStateAt reconstructs the session registry image as of a snapshot
// boundary by replaying the retained entries above the previous boundary
// (the live registry reflects the commit index, which may run ahead of the
// boundary when the application applies asynchronously).
func (n *Node) sessionStateAt(boundary types.Index) []byte {
	img, err := session.StateAt(n.snap.Sessions, n.log.Range(n.log.FirstIndex(), boundary))
	if err != nil {
		panic(fmt.Sprintf("raft %s: rebuild session state: %v", n.cfg.ID, err))
	}
	return img
}

// onInstallSnapshotReply advances the leader's view of a follower that
// installed (or already had) a snapshot, or acknowledged chunk progress.
func (n *Node) onInstallSnapshotReply(from types.NodeID, m types.InstallSnapshotReply) {
	if m.Term > n.term {
		n.becomeFollower(m.Term, types.None)
		return
	}
	if n.role != types.RoleLeader || m.Term < n.term {
		return
	}
	done := n.progress.AckSnapshot(from, m.Boundary, m.Offset, m.LastIndex, n.now)
	if !done {
		if pr := n.progress.Get(from); pr != nil && pr.State() == replica.StateSnapshot {
			// Acknowledged progress freed window room: keep the chunk
			// pipeline moving between rounds.
			n.sendSnapshotTo(from)
		}
	} else if !n.progress.AnySnapshotStreams() {
		// Last transfer finished; drop the cached encoding.
		n.snapEnc.Release()
	}
}
