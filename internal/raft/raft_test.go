package raft

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

func newTestNode(t *testing.T, id types.NodeID, members ...types.NodeID) *Node {
	t.Helper()
	n, err := New(Config{
		ID:        id,
		Bootstrap: types.NewConfig(members...),
		Storage:   storage.NewMemory(),
		Rand:      rand.New(rand.NewSource(int64(len(id)) + 3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func electLeader(t *testing.T, n *Node, granters ...types.NodeID) {
	t.Helper()
	n.Tick(time.Hour)
	n.TakeOutbox()
	for _, g := range granters {
		n.Step(time.Hour, types.Envelope{From: g, To: n.ID(), Layer: types.LayerLocal,
			Msg: types.RequestVoteResp{Term: n.Term(), Granted: true}})
	}
	if n.Role() != types.RoleLeader {
		t.Fatalf("not leader after grants (role %v)", n.Role())
	}
	n.TakeOutbox()
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{ID: "a", Storage: storage.NewMemory()}); err == nil {
		t.Fatal("missing Rand accepted")
	}
	cfg := Config{ID: "a", Storage: storage.NewMemory(), Rand: rand.New(rand.NewSource(1)),
		ElectionTimeoutMin: time.Second, ElectionTimeoutMax: time.Second}
	if _, err := New(cfg); err == nil {
		t.Fatal("degenerate election window accepted")
	}
}

func TestElectionTimeoutStartsCampaign(t *testing.T) {
	n := newTestNode(t, "n1", "n1", "n2", "n3")
	n.Tick(time.Hour)
	if n.Role() != types.RoleCandidate {
		t.Fatalf("role = %v", n.Role())
	}
	out := n.TakeOutbox()
	rv := 0
	for _, env := range out {
		if _, ok := env.Msg.(types.RequestVote); ok {
			rv++
		}
	}
	if rv != 2 {
		t.Fatalf("sent %d RequestVotes, want 2", rv)
	}
	if n.Term() != 1 {
		t.Fatalf("term = %d", n.Term())
	}
}

func TestVoteGrantRules(t *testing.T) {
	n := newTestNode(t, "n2", "n1", "n2", "n3")
	// Grant to an up-to-date candidate.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.RequestVote{Term: 1, CandidateID: "n1"}})
	out := n.TakeOutbox()
	if len(out) != 1 || !out[0].Msg.(types.RequestVoteResp).Granted {
		t.Fatalf("vote not granted: %v", out)
	}
	// A second candidate in the same term is refused (single vote).
	n.Step(time.Second, types.Envelope{From: "n3", To: "n2", Layer: types.LayerLocal,
		Msg: types.RequestVote{Term: 1, CandidateID: "n3"}})
	out = n.TakeOutbox()
	if len(out) != 1 || out[0].Msg.(types.RequestVoteResp).Granted {
		t.Fatalf("second vote granted in same term: %v", out)
	}
}

func TestVoteRefusedForStaleLog(t *testing.T) {
	n := newTestNode(t, "n2", "n1", "n2", "n3")
	// Give n2 a log entry at term 2.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 2, LeaderID: "n1", Entries: []types.Entry{
			{Index: 1, Term: 2, Kind: types.KindNoop, Approval: types.ApprovedLeader},
		}}})
	n.TakeOutbox()
	// A candidate with an empty log must be refused.
	n.Step(time.Second, types.Envelope{From: "n3", To: "n2", Layer: types.LayerLocal,
		Msg: types.RequestVote{Term: 3, CandidateID: "n3", LastLogIndex: 0, LastLogTerm: 0}})
	out := n.TakeOutbox()
	if len(out) != 1 || out[0].Msg.(types.RequestVoteResp).Granted {
		t.Fatalf("stale candidate granted: %v", out)
	}
}

func TestLeaderAppendsAndCommits(t *testing.T) {
	n := newTestNode(t, "n1", "n1", "n2", "n3")
	electLeader(t, n, "n2", "n3")
	pid := n.Propose(time.Hour, []byte("x"))
	if pid.Proposer != "n1" {
		t.Fatalf("pid = %v", pid)
	}
	// Tick dispatches AppendEntries with the no-op and the entry.
	n.Tick(n.NextDeadline())
	out := n.TakeOutbox()
	var ae types.AppendEntries
	found := false
	for _, env := range out {
		if m, ok := env.Msg.(types.AppendEntries); ok {
			ae = m
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no AppendEntries in %v", out)
	}
	if len(ae.Entries) == 0 {
		t.Fatal("AppendEntries empty")
	}
	// Acks commit at the next tick; the proposer resolution surfaces.
	for _, f := range []types.NodeID{"n2", "n3"} {
		n.Step(time.Hour, types.Envelope{From: f, To: "n1", Layer: types.LayerLocal,
			Msg: types.AppendEntriesResp{Term: n.Term(), Success: true,
				MatchIndex: n.LastIndex()}})
	}
	n.Tick(n.NextDeadline())
	if n.CommitIndex() != n.LastIndex() {
		t.Fatalf("commit = %d, last = %d", n.CommitIndex(), n.LastIndex())
	}
	res := n.TakeResolved()
	if len(res) != 1 || res[0].PID != pid {
		t.Fatalf("resolved = %v", res)
	}
}

func TestFollowerAppendConsistencyCheck(t *testing.T) {
	n := newTestNode(t, "n2", "n1", "n2", "n3")
	// AE with a prev the follower doesn't have fails.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1", PrevLogIndex: 5, PrevLogTerm: 1}})
	out := n.TakeOutbox()
	if len(out) != 1 || out[0].Msg.(types.AppendEntriesResp).Success {
		t.Fatalf("inconsistent AE accepted: %v", out)
	}
	// From scratch it succeeds.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1", Entries: []types.Entry{
			{Index: 1, Term: 1, Kind: types.KindNoop, Approval: types.ApprovedLeader},
		}, LeaderCommit: 1}})
	out = n.TakeOutbox()
	resp := out[0].Msg.(types.AppendEntriesResp)
	if !resp.Success || resp.MatchIndex != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if n.CommitIndex() != 1 {
		t.Fatalf("commit = %d", n.CommitIndex())
	}
}

func TestFollowerTruncatesConflicts(t *testing.T) {
	n := newTestNode(t, "n2", "n1", "n2", "n3")
	// Old leader's entries at term 1.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1", Entries: []types.Entry{
			{Index: 1, Term: 1, Kind: types.KindNoop, Approval: types.ApprovedLeader},
			{Index: 2, Term: 1, Kind: types.KindNormal, Approval: types.ApprovedLeader,
				PID: types.ProposalID{Proposer: "n1", Seq: 1}, Data: []byte("old")},
		}}})
	n.TakeOutbox()
	// New leader at term 2 conflicts at index 2.
	n.Step(time.Second, types.Envelope{From: "n3", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 2, LeaderID: "n3", PrevLogIndex: 1, PrevLogTerm: 1,
			Entries: []types.Entry{
				{Index: 2, Term: 2, Kind: types.KindNormal, Approval: types.ApprovedLeader,
					PID: types.ProposalID{Proposer: "n3", Seq: 1}, Data: []byte("new")},
			}}})
	n.TakeOutbox()
	e, ok := n.log.Get(2)
	if !ok || string(e.Data) != "new" || e.Term != 2 {
		t.Fatalf("conflict not resolved: %v", e)
	}
}

func TestProposalForwardingToLeader(t *testing.T) {
	n := newTestNode(t, "n2", "n1", "n2", "n3")
	// Learn the leader.
	n.Step(time.Second, types.Envelope{From: "n1", To: "n2", Layer: types.LayerLocal,
		Msg: types.AppendEntries{Term: 1, LeaderID: "n1"}})
	n.TakeOutbox()
	n.Propose(time.Second, []byte("fwd"))
	out := n.TakeOutbox()
	if len(out) != 1 || out[0].To != "n1" {
		t.Fatalf("proposal not forwarded: %v", out)
	}
	if _, ok := out[0].Msg.(types.ClientPropose); !ok {
		t.Fatalf("wrong message type %T", out[0].Msg)
	}
}

func TestLeaderDedupsReproposals(t *testing.T) {
	n := newTestNode(t, "n1", "n1", "n2", "n3")
	electLeader(t, n, "n2", "n3")
	e := types.Entry{Kind: types.KindNormal,
		PID: types.ProposalID{Proposer: "n2", Seq: 1}, Data: []byte("once")}
	n.Step(time.Hour, types.Envelope{From: "n2", To: "n1", Layer: types.LayerLocal,
		Msg: types.ClientPropose{Entry: e}})
	last := n.LastIndex()
	n.Step(time.Hour, types.Envelope{From: "n2", To: "n1", Layer: types.LayerLocal,
		Msg: types.ClientPropose{Entry: e}})
	if n.LastIndex() != last {
		t.Fatalf("duplicate appended: last %d -> %d", last, n.LastIndex())
	}
}

func TestLeaderStepsDownOnHigherTerm(t *testing.T) {
	n := newTestNode(t, "n1", "n1", "n2", "n3")
	electLeader(t, n, "n2", "n3")
	n.Step(time.Hour, types.Envelope{From: "n2", To: "n1", Layer: types.LayerLocal,
		Msg: types.AppendEntriesResp{Term: n.Term() + 5}})
	if n.Role() != types.RoleFollower {
		t.Fatalf("role = %v", n.Role())
	}
}

func TestRestartRecoversPersistentState(t *testing.T) {
	store := storage.NewMemory()
	cfg := Config{ID: "n1", Bootstrap: types.NewConfig("n1"), Storage: store,
		Rand: rand.New(rand.NewSource(1))}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Tick(time.Second) // self-elect
	n.Propose(2*time.Second, []byte("persisted"))
	n.Tick(n.NextDeadline())
	term, last := n.Term(), n.LastIndex()

	cfg.Rand = rand.New(rand.NewSource(2))
	n2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Term() != term || n2.LastIndex() != last {
		t.Fatalf("recovered term=%d last=%d, want %d/%d", n2.Term(), n2.LastIndex(), term, last)
	}
}
