package readpath

import (
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Frontend is the per-node half of the read path shared by the consensus
// cores (the Manager being the per-leadership half): it assigns read
// tokens, serves leader-side reads through the Manager (lease fast path
// included), forwards follower-side reads to the leader with
// ReadRequest/ReadReply, retries them across leader changes, and emits
// resolutions. Exactly like the replica package's dispatch hoist, the
// NodeView accessor set is the only per-core variation, so the protocol
// cannot diverge between classic Raft and Fast Raft.
type Frontend struct {
	nv       NodeView
	counters *stats.Counters
	rec      *trace.Recorder

	// seq numbers this node's reads. It starts at a Rand-drawn offset so a
	// restart cannot reuse the IDs of reads still in flight at the leader:
	// the leader de-duplicates forwarded reads by (origin, ID), and a
	// recycled ID would let a pre-restart read — recorded at an older
	// commit index — answer a post-restart read, a stale read.
	seq uint64
	// token numbers leader-side registrations with the Manager.
	token      uint64
	origins    map[uint64]readOrigin
	remoteKeys map[remoteReadKey]uint64
	pending    map[uint64]*pendingRead
	done       []types.ReadDone

	// inFlight is true while a forwarded batch awaits its ReadReply: reads
	// arriving meanwhile queue up (pending, sent=false) and ship together
	// when the reply lands — one ReadRequest per leader round-trip instead
	// of one per read.
	inFlight bool
	// replyQ buffers leader-side resolutions per origin within one entry
	// point, so reads resolving together (a ReadIndex batch confirming, a
	// forwarded batch served off a valid lease) coalesce into one
	// ReadReply message.
	replyQ map[types.NodeID][]types.ReadResult
}

// NodeView is the slice of core state the frontend needs, as closures so
// it always observes the live values (the Manager in particular is
// leader-only and replaced every leadership).
type NodeView struct {
	// Self is this node's identity.
	Self types.NodeID
	// IsLeader reports whether the node currently leads.
	IsLeader func() bool
	// LeaderID returns the node's view of the leader (None if unknown).
	LeaderID func() types.NodeID
	// CommitIndex returns the node's commit index.
	CommitIndex func() types.Index
	// Floor returns the leader's completeness floor (this term's no-op
	// index); only consulted while leading.
	Floor func() types.Index
	// Manager returns the leadership's read manager (nil unless leader).
	Manager func() *Manager
	// Send transmits one protocol message.
	Send func(to types.NodeID, msg types.Message)
	// RetryTimeout paces follower-side re-forwarding (the cores pass the
	// proposal timeout).
	RetryTimeout time.Duration
	// RetrySoon is the short back-off after a negative ReadReply (the
	// cores pass the heartbeat interval: by then a fresh leader may be
	// known).
	RetrySoon time.Duration
}

// readOrigin identifies where a leader-side read came from: this node
// (answered through TakeDone) or a remote forwarder (answered with a
// ReadReply message).
type readOrigin struct {
	origin      types.NodeID
	id          uint64
	consistency types.ReadConsistency
	// trace is the read's sampled trace context (0 = unsampled): minted at
	// the origin, carried on the ReadSpec when forwarded, echoed on the
	// ReadResult.
	trace uint64
}

// remoteReadKey de-duplicates retried ReadRequests.
type remoteReadKey struct {
	origin types.NodeID
	id     uint64
}

// pendingRead is a read originated here while not leading: it forwards to
// the leader and retries until a reply arrives.
type pendingRead struct {
	consistency types.ReadConsistency
	deadline    time.Duration
	// sent marks the read as part of an already-forwarded batch; unsent
	// reads ship on the next flush (reply received, or retry deadline).
	sent bool
	// held marks a follower-local read whose index the leader confirmed
	// (confirmedIdx) but the local commit index has not reached yet; it
	// resolves from Flush once commit catches up, or re-forwards if the
	// deadline passes first.
	held         bool
	confirmedIdx types.Index
	// trace is the sampled trace context minted when the read was issued
	// (0 = unsampled).
	trace uint64
}

// NewFrontend builds a frontend. seqStart seeds the token sequence (draw
// it from the node's Rand; see the seq field comment). counters may be
// shared with the owning node; rec (nil = disabled) receives read-serve
// flight-recorder events.
func NewFrontend(nv NodeView, seqStart uint64, counters *stats.Counters, rec *trace.Recorder) *Frontend {
	if counters == nil {
		counters = stats.NewCounters()
	}
	return &Frontend{
		nv:         nv,
		counters:   counters,
		rec:        rec,
		seq:        seqStart,
		origins:    make(map[uint64]readOrigin),
		remoteKeys: make(map[remoteReadKey]uint64),
		pending:    make(map[uint64]*pendingRead),
		replyQ:     make(map[types.NodeID][]types.ReadResult),
	}
}

// Read registers a read under the given consistency mode and returns its
// token; the read resolves through TakeDone with the linearization index
// the state machine must be applied through before serving it. ReadStale
// resolves immediately from the local commit index on any role.
func (f *Frontend) Read(now time.Duration, c types.ReadConsistency) uint64 {
	if c == 0 {
		c = types.ReadLinearizable
	}
	f.seq++
	id := f.seq
	tid := f.rec.MintTrace()
	if c == types.ReadStale {
		f.counters.Inc(CounterStaleReads)
		idx := f.nv.CommitIndex()
		f.done = append(f.done, types.ReadDone{ID: id, Index: idx, OK: true})
		f.rec.ReadServe(now, id, idx, true, tid)
		return id
	}
	if f.nv.IsLeader() && f.nv.Manager() != nil {
		f.serve(readOrigin{origin: f.nv.Self, id: id, consistency: c, trace: tid}, now)
		return id
	}
	f.pending[id] = &pendingRead{consistency: c, deadline: now + f.nv.RetryTimeout, trace: tid}
	f.flushForwards(now)
	return id
}

// TakeDone drains resolved reads.
func (f *Frontend) TakeDone() []types.ReadDone {
	out := f.done
	f.done = nil
	return out
}

// PendingCount counts unresolved reads originated on this node.
func (f *Frontend) PendingCount() int { return len(f.pending) }

// EachDeadline visits the pending reads' retry deadlines (NextDeadline
// accounting).
func (f *Frontend) EachDeadline(visit func(time.Duration)) {
	for _, p := range f.pending {
		visit(p.deadline)
	}
}

// flushForwards ships every not-yet-sent pending read to the leader in a
// single ReadRequest — unless a batch is already in flight, in which case
// the reads wait and ride the next round-trip (or their retry deadline).
func (f *Frontend) flushForwards(now time.Duration) {
	if f.inFlight || len(f.pending) == 0 {
		return
	}
	leader := f.nv.LeaderID()
	if leader == types.None || leader == f.nv.Self {
		return
	}
	var ids []uint64
	for id, p := range f.pending {
		if !p.sent {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	specs := make([]types.ReadSpec, 0, len(ids))
	for _, id := range ids {
		p := f.pending[id]
		p.sent = true
		f.counters.Inc(CounterForwarded)
		specs = append(specs, types.ReadSpec{ID: id, Consistency: p.consistency, Trace: p.trace})
		if p.trace != 0 {
			f.rec.TraceHop(now, p.trace, trace.HopReadForward, leader, 0)
		}
	}
	f.nv.Send(leader, types.ReadRequest{Reads: specs})
	f.inFlight = true
}

// queueReply buffers one remote resolution; flushReplies ships the per-
// origin batches at the end of the entry point that produced them.
func (f *Frontend) queueReply(origin types.NodeID, r types.ReadResult) {
	f.replyQ[origin] = append(f.replyQ[origin], r)
}

func (f *Frontend) flushReplies() {
	if len(f.replyQ) == 0 {
		return
	}
	origins := make([]types.NodeID, 0, len(f.replyQ))
	for o := range f.replyQ {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		f.nv.Send(o, types.ReadReply{Results: f.replyQ[o]})
		delete(f.replyQ, o)
	}
}

// serve handles a read on the leader. Lease-based reads with a valid
// lease resolve immediately from the commit index — clock-free, no round;
// everything else joins the next heartbeat round's ReadIndex batch at
// max(commitIndex, floor), the floor being this term's no-op index below
// which a new leader cannot vouch for completeness.
func (f *Frontend) serve(o readOrigin, now time.Duration) {
	mgr := f.nv.Manager()
	commit := f.nv.CommitIndex()
	if o.consistency == types.ReadLeaseBased &&
		mgr.LeaseValid(now) && commit >= f.nv.Floor() {
		f.counters.Inc(CounterLeaseReads)
		f.finish(o, commit, true, now)
		return
	}
	f.token++
	tok := f.token
	f.origins[tok] = o
	if o.origin != f.nv.Self {
		f.remoteKeys[remoteReadKey{o.origin, o.id}] = tok
	}
	idx := commit
	if floor := f.nv.Floor(); floor > idx {
		idx = floor
	}
	mgr.Add(tok, idx)
}

// finish resolves one read toward its origin (a zero origin — a
// superseded registration — is dropped by the core's send guard).
func (f *Frontend) finish(o readOrigin, idx types.Index, ok bool, now time.Duration) {
	f.rec.ReadServe(now, o.id, idx, ok, o.trace)
	if o.origin == f.nv.Self {
		f.done = append(f.done, types.ReadDone{ID: o.id, Index: idx, OK: ok})
		return
	}
	f.queueReply(o.origin, types.ReadResult{ID: o.id, Index: idx, OK: ok, Trace: o.trace})
}

// Flush releases confirmed reads the commit index has caught up to — the
// Manager's leader-side queue and the follower-local holds alike. The
// cores call it after commit advancement and after folding heartbeat
// acks.
func (f *Frontend) Flush(now time.Duration) {
	f.releaseHeld(now)
	mgr := f.nv.Manager()
	if mgr == nil {
		return
	}
	for _, d := range mgr.Release(f.nv.CommitIndex()) {
		o := f.origins[d.Token]
		delete(f.origins, d.Token)
		if o.origin != f.nv.Self {
			delete(f.remoteKeys, remoteReadKey{o.origin, o.id})
		}
		f.finish(o, d.Index, d.OK, now)
	}
	f.flushReplies()
}

// FailLeaderReads fails every leader-side read on step-down: local reads
// fall back to the pending/forward path (they retry against the
// successor), remote origins get a negative reply so they re-forward
// themselves. Call it before discarding the Manager.
func (f *Frontend) FailLeaderReads(now time.Duration) {
	mgr := f.nv.Manager()
	if mgr == nil {
		return
	}
	for _, d := range mgr.FailAll() {
		o := f.origins[d.Token]
		if o.origin == f.nv.Self {
			f.pending[o.id] = &pendingRead{
				consistency: o.consistency,
				deadline:    now + f.nv.RetrySoon,
			}
			continue
		}
		f.queueReply(o.origin, types.ReadResult{ID: o.id, OK: false})
	}
	f.origins = make(map[uint64]readOrigin)
	f.remoteKeys = make(map[remoteReadKey]uint64)
	f.flushReplies()
}

// Retry re-forwards due pending reads (leader unknown at issue time, lost
// request or reply, deposed leader); a node that just became leader
// serves every pending read itself, deadline or not.
func (f *Frontend) Retry(now time.Duration) {
	if len(f.pending) == 0 {
		return
	}
	isLeader := f.nv.IsLeader() && f.nv.Manager() != nil
	var due []uint64
	for id, p := range f.pending {
		if isLeader || now >= p.deadline {
			due = append(due, id)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	refresh := false
	for _, id := range due {
		p := f.pending[id]
		if isLeader {
			delete(f.pending, id)
			f.serve(readOrigin{origin: f.nv.Self, id: id, consistency: p.consistency}, now)
			continue
		}
		// A due read's batch (if any) is lost or was refused: clear its
		// sent mark and let one fresh batch carry every due read. A held
		// follower-local read whose catch-up stalled re-confirms from
		// scratch the same way.
		p.deadline = now + f.nv.RetryTimeout
		p.sent = false
		p.held = false
		refresh = true
	}
	if refresh {
		f.inFlight = false
		f.flushForwards(now)
	}
}

// OnReadRequest serves a forwarded read, or refuses it when this node
// cannot (the origin retries toward the then-current leader).
func (f *Frontend) OnReadRequest(from types.NodeID, m types.ReadRequest, now time.Duration) {
	if !f.nv.IsLeader() || f.nv.Manager() == nil {
		for _, spec := range m.Reads {
			f.queueReply(from, types.ReadResult{ID: spec.ID, OK: false})
		}
		f.flushReplies()
		return
	}
	for _, spec := range m.Reads {
		c := spec.Consistency
		if c == 0 || c == types.ReadStale {
			// Stale reads are served locally by the origin and never
			// forwarded; treat anything nonsensical as a full ReadIndex
			// read.
			c = types.ReadLinearizable
		}
		if spec.Trace != 0 {
			f.rec.TraceHop(now, spec.Trace, trace.HopReadServe, from, 0)
		}
		if tok, dup := f.remoteKeys[remoteReadKey{from, spec.ID}]; dup {
			// A retry supersedes the original registration: re-record at
			// the current commit index instead of answering with the old
			// one. That is always correct for the retrying caller (a later
			// index serves an earlier read a fortiori) and it closes a
			// stale-read hole — an origin that restarted and recycled its
			// ID space (deterministic seeds replay the Rand-drawn offset)
			// must not be answered at an index recorded before writes it
			// has since observed. The orphaned token releases into a zero
			// origin, which finish drops.
			delete(f.origins, tok)
			delete(f.remoteKeys, remoteReadKey{from, spec.ID})
		}
		f.serve(readOrigin{origin: from, id: spec.ID, consistency: c, trace: spec.Trace}, now)
	}
	f.flushReplies()
}

// releaseHeld resolves follower-local reads whose confirmed index the
// local commit index has reached: the state machine here now covers every
// write the read must observe, so the follower serves it locally.
func (f *Frontend) releaseHeld(now time.Duration) {
	if len(f.pending) == 0 {
		return
	}
	commit := f.nv.CommitIndex()
	var due []uint64
	for id, p := range f.pending {
		if p.held && p.confirmedIdx <= commit {
			due = append(due, id)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, id := range due {
		p := f.pending[id]
		delete(f.pending, id)
		f.counters.Inc(CounterFollowerReads)
		f.done = append(f.done, types.ReadDone{ID: id, Index: p.confirmedIdx, OK: true})
		f.rec.ReadServe(now, id, p.confirmedIdx, true, p.trace)
	}
}

// OnReadReply resolves a forwarded batch, then ships the reads that queued
// up while it was in flight.
func (f *Frontend) OnReadReply(m types.ReadReply, now time.Duration) {
	for _, r := range m.Results {
		p, ok := f.pending[r.ID]
		if !ok {
			continue // duplicate or late result
		}
		if r.OK {
			if p.consistency == types.ReadFollowerLocal && f.nv.CommitIndex() < r.Index {
				// The leader vouched for r.Index but this node's log has not
				// caught up: hold the read until the local commit index
				// covers it (releaseHeld), so the caller may serve it from
				// local state. The refreshed deadline re-forwards it if the
				// catch-up stalls (a later confirmed index is still correct).
				p.held = true
				p.confirmedIdx = r.Index
				p.deadline = now + f.nv.RetryTimeout
				continue
			}
			delete(f.pending, r.ID)
			if p.consistency == types.ReadFollowerLocal {
				f.counters.Inc(CounterFollowerReads)
			}
			f.done = append(f.done, types.ReadDone{ID: r.ID, Index: r.Index, OK: true})
			f.rec.ReadServe(now, r.ID, r.Index, true, p.trace)
			continue
		}
		// The responder could not serve it (deposed or not leader): retry
		// soon, by when a fresh leader may be known.
		p.deadline = now + f.nv.RetrySoon
	}
	f.inFlight = false
	f.flushForwards(now)
}
