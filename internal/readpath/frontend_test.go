package readpath

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

// fakeFollower hosts a Frontend in the follower role with a controllable
// commit index and a captured outbox.
type fakeFollower struct {
	f      *Frontend
	c      *stats.Counters
	commit types.Index
	sent   []types.Message
}

func newFakeFollower(retry time.Duration) *fakeFollower {
	ff := &fakeFollower{c: stats.NewCounters()}
	ff.f = NewFrontend(NodeView{
		Self:         "n2",
		IsLeader:     func() bool { return false },
		LeaderID:     func() types.NodeID { return "n1" },
		CommitIndex:  func() types.Index { return ff.commit },
		Floor:        func() types.Index { return 0 },
		Manager:      func() *Manager { return nil },
		Send:         func(_ types.NodeID, m types.Message) { ff.sent = append(ff.sent, m) },
		RetryTimeout: retry,
		RetrySoon:    retry / 4,
	}, 100, ff.c, nil)
	return ff
}

func (ff *fakeFollower) lastRequest(t *testing.T) types.ReadRequest {
	t.Helper()
	if len(ff.sent) == 0 {
		t.Fatal("no ReadRequest forwarded")
	}
	req, ok := ff.sent[len(ff.sent)-1].(types.ReadRequest)
	if !ok {
		t.Fatalf("last message is %T, want ReadRequest", ff.sent[len(ff.sent)-1])
	}
	return req
}

func TestFollowerLocalReadHeldUntilCommitCatchUp(t *testing.T) {
	ff := newFakeFollower(100 * time.Millisecond)
	ff.commit = 3
	id := ff.f.Read(0, types.ReadFollowerLocal)
	req := ff.lastRequest(t)
	if len(req.Reads) != 1 || req.Reads[0].ID != id || req.Reads[0].Consistency != types.ReadFollowerLocal {
		t.Fatalf("forwarded %+v", req.Reads)
	}
	// The leader confirms index 7 but this node has only committed 3: the
	// read must be held, not resolved.
	ff.f.OnReadReply(types.ReadReply{Results: []types.ReadResult{{ID: id, Index: 7, OK: true}}}, 10*time.Millisecond)
	if done := ff.f.TakeDone(); len(done) != 0 {
		t.Fatalf("read resolved before local commit caught up: %+v", done)
	}
	if ff.f.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1 (held)", ff.f.PendingCount())
	}
	// Commit catching partway up is not enough.
	ff.commit = 6
	ff.f.Flush(20 * time.Millisecond)
	if done := ff.f.TakeDone(); len(done) != 0 {
		t.Fatalf("read resolved at commit 6 < confirmed 7: %+v", done)
	}
	// Reaching the confirmed index releases it at that index.
	ff.commit = 7
	ff.f.Flush(30 * time.Millisecond)
	done := ff.f.TakeDone()
	if len(done) != 1 || done[0].ID != id || done[0].Index != 7 || !done[0].OK {
		t.Fatalf("release = %+v, want ID %d at index 7", done, id)
	}
	if got := ff.c.Get(CounterFollowerReads); got != 1 {
		t.Fatalf("reads_follower_local = %d, want 1", got)
	}
	if ff.f.PendingCount() != 0 {
		t.Fatal("read still pending after release")
	}
}

func TestFollowerLocalReadResolvesImmediatelyWhenCaughtUp(t *testing.T) {
	ff := newFakeFollower(100 * time.Millisecond)
	ff.commit = 9
	id := ff.f.Read(0, types.ReadFollowerLocal)
	// Confirmed index already covered locally: no hold.
	ff.f.OnReadReply(types.ReadReply{Results: []types.ReadResult{{ID: id, Index: 8, OK: true}}}, 5*time.Millisecond)
	done := ff.f.TakeDone()
	if len(done) != 1 || done[0].Index != 8 || !done[0].OK {
		t.Fatalf("done = %+v", done)
	}
	if got := ff.c.Get(CounterFollowerReads); got != 1 {
		t.Fatalf("reads_follower_local = %d, want 1", got)
	}
}

func TestFollowerLocalHeldReadReforwardsOnStall(t *testing.T) {
	const retry = 100 * time.Millisecond
	ff := newFakeFollower(retry)
	ff.commit = 1
	id := ff.f.Read(0, types.ReadFollowerLocal)
	ff.f.OnReadReply(types.ReadReply{Results: []types.ReadResult{{ID: id, Index: 5, OK: true}}}, 10*time.Millisecond)
	forwarded := len(ff.sent)
	// Before the refreshed deadline nothing re-sends.
	ff.f.Retry(10*time.Millisecond + retry - 1)
	if len(ff.sent) != forwarded {
		t.Fatal("held read re-forwarded before its deadline")
	}
	// Catch-up stalled past the deadline: the read re-confirms from scratch.
	ff.f.Retry(10*time.Millisecond + retry)
	req := ff.lastRequest(t)
	if len(req.Reads) != 1 || req.Reads[0].ID != id {
		t.Fatalf("stalled read not re-forwarded: %+v", req.Reads)
	}
	// The fresh confirmation resolves once commit covers it.
	ff.f.OnReadReply(types.ReadReply{Results: []types.ReadResult{{ID: id, Index: 6, OK: true}}}, 200*time.Millisecond)
	ff.commit = 6
	ff.f.Flush(210 * time.Millisecond)
	done := ff.f.TakeDone()
	if len(done) != 1 || done[0].Index != 6 || !done[0].OK {
		t.Fatalf("done = %+v", done)
	}
}

func TestLinearizableReadNotHeld(t *testing.T) {
	ff := newFakeFollower(100 * time.Millisecond)
	ff.commit = 2
	id := ff.f.Read(0, types.ReadLinearizable)
	// A plain linearizable read resolves on reply even when the local
	// commit index lags: the caller owns the apply-through-index wait.
	ff.f.OnReadReply(types.ReadReply{Results: []types.ReadResult{{ID: id, Index: 9, OK: true}}}, 5*time.Millisecond)
	done := ff.f.TakeDone()
	if len(done) != 1 || done[0].Index != 9 || !done[0].OK {
		t.Fatalf("done = %+v", done)
	}
}
