// Package readpath is the leader-side linearizable read engine shared by
// every consensus core (classic Raft, Fast Raft, and through Fast Raft
// both C-Raft levels). It serves reads without writing log entries, in two
// modes behind one mechanism:
//
//   - ReadIndex: the leader records its commit index for the read, then
//     confirms it still leads with one heartbeat exchange. All reads
//     registered between two broadcast rounds batch under a single
//     read-batch ID (ReadCtx) that piggybacks on the round's AppendEntries
//     messages; a quorum of responses echoing a ReadCtx at or above a
//     batch's ID confirms every read in it at once — N concurrent reads
//     cost one confirmation round, not N. A confirmed read is released to
//     the caller once the commit index reaches its recorded index.
//
//   - Lease: a confirmed round also extends a leader lease. While the
//     lease is valid, reads are served immediately from the current commit
//     index with no round at all. The lease window is conservative: it
//     starts at the instant the confirming round was DISPATCHED (not when
//     its acks arrived) and extends for the minimum election timeout minus
//     the largest smoothed RTT observed among the acking quorum — the
//     tracker's srtt data doubles as the bound on clock skew and
//     scheduling delay between leader and followers. The lease is revoked
//     on step-down (the manager is leader-only state, discarded like the
//     replica tracker), on any membership change (quorum shape changed),
//     and on a missed quorum (a batch expiring unconfirmed).
//
// Safety of the lease additionally depends on election stickiness:
// followers must refuse to grant votes while they have heard from a live
// leader within the minimum election timeout (the cores implement this in
// their RequestVote handlers). With stickiness, any successful election
// needs a voter from the acking quorum whose election timer expired — at
// least LeaseBase after it acknowledged our round — so no conflicting
// leader can commit inside the derated window.
//
// Everything here is sans-io and deterministic: the cores decide when
// rounds happen and own message transmission; this package decides when a
// read may be served and at which index.
package readpath

import (
	"time"

	"github.com/hraft-io/hraft/internal/quorum"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Counter names emitted by the manager (exposed through Node.Metrics).
const (
	// CounterReads counts reads registered for ReadIndex confirmation.
	CounterReads = "readpath.reads_index"
	// CounterLeaseReads counts reads served clock-free from a valid lease
	// (incremented by the cores, which own the lease fast path).
	CounterLeaseReads = "readpath.reads_lease"
	// CounterStaleReads counts reads served from the local commit index
	// with no confirmation (incremented by the cores).
	CounterStaleReads = "readpath.reads_stale"
	// CounterForwarded counts reads forwarded to the leader (incremented by
	// the cores on the follower side).
	CounterForwarded = "readpath.reads_forwarded"
	// CounterReadBatches counts confirmation batches that carried at least
	// one read (the batching collapse metric: N concurrent reads should
	// move this by 1).
	CounterReadBatches = "readpath.read_batches"
	// CounterBatchesConfirmed counts batches confirmed by a quorum of
	// heartbeat acks (including read-free lease-extension rounds).
	CounterBatchesConfirmed = "readpath.batches_confirmed"
	// CounterBatchesExpired counts batches that went a full expiry window
	// without quorum; their reads re-arm into the next round and the lease
	// is revoked (the missed-quorum revocation trigger).
	CounterBatchesExpired = "readpath.batches_expired"
	// CounterLeaseExtends counts lease extensions from confirmed rounds.
	CounterLeaseExtends = "readpath.lease_extends"
	// CounterLeaseRevokes counts lease revocations (step-down aside, which
	// discards the manager wholesale).
	CounterLeaseRevokes = "readpath.lease_revokes"
	// CounterReadsFailed counts reads failed back to their callers
	// (step-down with reads in flight).
	CounterReadsFailed = "readpath.reads_failed"
	// CounterFollowerReads counts follower-local reads served from the
	// receiving node's state machine after its commit index covered the
	// leader-confirmed index (incremented on the origin side).
	CounterFollowerReads = "readpath.reads_follower_local"
)

// Config parametrizes a Manager.
type Config struct {
	// Self is the leader's own identity (its ack is implicit).
	Self types.NodeID
	// LeaseBase is the minimum election timeout: the undiscounted lease
	// window, and the default batch expiry.
	LeaseBase time.Duration
	// RTT reports the smoothed acknowledgment round trip for a peer (0 =
	// no estimate); the manager derates the lease window by the largest
	// estimate among the acking quorum. Nil = no deration.
	RTT func(types.NodeID) time.Duration
	// ExpireAfter is how long a batch may wait for quorum before its reads
	// re-arm and the lease is revoked (0 = LeaseBase).
	ExpireAfter time.Duration
	// Recorder receives read-batch stamp/confirm flight-recorder events
	// (nil disables recording).
	Recorder *trace.Recorder
}

// read is one registered read awaiting confirmation and apply.
type read struct {
	token uint64
	index types.Index
}

// batch is one stamped confirmation round.
type batch struct {
	id     uint64
	sentAt time.Duration
	reads  []read
}

// Done resolves one read: the caller may serve it once the state machine
// has applied through Index.
type Done struct {
	// Token is the core's read token.
	Token uint64
	// Index is the linearization index.
	Index types.Index
	// OK is false when the read failed (step-down) and must be retried.
	OK bool
}

// Manager tracks read batches and the leader lease for one leadership. It
// is created at election win alongside the replica tracker and discarded
// on step-down; the counter set outlives it.
type Manager struct {
	cfg        Config
	members    map[types.NodeID]struct{}
	quorum     int
	acked      map[types.NodeID]uint64 // highest ReadCtx echoed per member
	nextCtx    uint64
	unstamped  []read  // registered since the last round
	batches    []batch // stamped, unconfirmed, ascending by id
	confirmed  []read  // confirmed, awaiting commitIndex >= index
	leaseUntil time.Duration
	// suppressUntil blocks lease extensions while a leadership transfer is
	// in flight (see SuppressLease).
	suppressUntil time.Duration
	counters      *stats.Counters
}

// NewManager builds a manager. counters may be shared with the owning node
// (nil allocates a private set).
func NewManager(cfg Config, counters *stats.Counters) *Manager {
	if cfg.ExpireAfter <= 0 {
		cfg.ExpireAfter = cfg.LeaseBase
	}
	if counters == nil {
		counters = stats.NewCounters()
	}
	m := &Manager{
		cfg:      cfg,
		acked:    make(map[types.NodeID]uint64),
		counters: counters,
	}
	m.SetMembership(nil)
	return m
}

// SetMembership installs the voting membership the quorum is counted over.
// Any membership change revokes the lease and re-arms in-flight batches:
// the old quorum shape cannot vouch for the new configuration.
func (m *Manager) SetMembership(members []types.NodeID) {
	m.members = make(map[types.NodeID]struct{}, len(members))
	for _, id := range members {
		m.members[id] = struct{}{}
	}
	m.quorum = quorum.ClassicSize(len(members))
	m.acked = make(map[types.NodeID]uint64)
	// Re-arm every stamped batch: its acks were counted against the old
	// configuration. The reads keep their recorded indices (still correct —
	// a later confirmation proves an index current a fortiori).
	for _, b := range m.batches {
		m.unstamped = append(m.unstamped, b.reads...)
	}
	m.batches = nil
	m.RevokeLease()
}

// Add registers a read for ReadIndex confirmation: it joins the batch
// stamped onto the next broadcast round, recorded at the given
// linearization index.
func (m *Manager) Add(token uint64, index types.Index) {
	m.unstamped = append(m.unstamped, read{token: token, index: index})
	m.counters.Inc(CounterReads)
}

// PendingReads returns the number of reads awaiting confirmation or apply
// (tests and diagnostics).
func (m *Manager) PendingReads() int {
	n := len(m.unstamped) + len(m.confirmed)
	for _, b := range m.batches {
		n += len(b.reads)
	}
	return n
}

// StampRound seals the pending reads into a new batch dispatched now and
// returns the batch ID to piggyback on the round's AppendEntries messages.
// Every round gets an ID even with no reads pending — its confirmation
// extends the lease for free. Expired batches (no quorum within
// ExpireAfter) re-arm their reads into this round and revoke the lease.
func (m *Manager) StampRound(now time.Duration) uint64 {
	// Missed quorum: roll expired batches' reads into the new round.
	for len(m.batches) > 0 && now >= m.batches[0].sentAt+m.cfg.ExpireAfter {
		expired := m.batches[0]
		m.batches = m.batches[1:]
		m.unstamped = append(expired.reads, m.unstamped...)
		m.counters.Inc(CounterBatchesExpired)
		if m.leaseUntil != 0 {
			m.RevokeLease()
			// Recorded here rather than inside RevokeLease: this is the
			// only revocation site with a clock (SetMembership has none,
			// and step-down discards the manager without calling it).
			m.cfg.Recorder.LeaseRevoke(now, m.cfg.Self)
		}
	}
	m.nextCtx++
	b := batch{id: m.nextCtx, sentAt: now}
	if len(m.unstamped) > 0 {
		b.reads = m.unstamped
		m.unstamped = nil
		m.counters.Inc(CounterReadBatches)
		m.cfg.Recorder.ReadStamp(now, b.id, len(b.reads))
	}
	m.batches = append(m.batches, b)
	// On a single-member cluster the leader's implicit self-ack already is
	// the quorum: confirm immediately, or no ObserveAck would ever fire.
	m.confirmFront(now)
	return b.id
}

// ObserveAck folds one member's heartbeat acknowledgment echoing ctx into
// the batch state. The caller has already verified the response is from
// its own term. Confirmed batches move their reads to the release queue
// and extend the lease — anchored at the batch's dispatch time, not at
// now (which only timestamps flight-recorder events); call Release
// afterwards to collect releasable reads.
func (m *Manager) ObserveAck(from types.NodeID, ctx uint64, now time.Duration) {
	if ctx == 0 {
		return
	}
	if _, ok := m.members[from]; !ok {
		return
	}
	if ctx > m.acked[from] {
		m.acked[from] = ctx
	}
	m.confirmFront(now)
}

// confirmFront confirms leading batches while the quorum covers them (an
// ack for a later batch covers every earlier one, so confirmation is
// always in order).
func (m *Manager) confirmFront(now time.Duration) {
	for len(m.batches) > 0 && m.ackCount(m.batches[0].id) >= m.quorum {
		b := m.batches[0]
		m.batches = m.batches[1:]
		m.confirmed = append(m.confirmed, b.reads...)
		m.counters.Inc(CounterBatchesConfirmed)
		if len(b.reads) > 0 {
			m.cfg.Recorder.ReadConfirm(now, b.id)
		}
		m.extendLease(now, b)
	}
}

// ackCount counts members whose highest echoed ctx covers the batch,
// including the leader itself.
func (m *Manager) ackCount(id uint64) int {
	n := 0
	if _, ok := m.members[m.cfg.Self]; ok {
		n++ // the leader's own ack is implicit
	}
	for peer, ctx := range m.acked {
		if peer != m.cfg.Self && ctx >= id {
			n++
		}
	}
	return n
}

// extendLease pushes the lease out from the confirmed batch's dispatch
// time: sentAt + LeaseBase - (largest srtt among the acking quorum). The
// srtt deration is the clock-skew/delivery-delay margin — with no samples
// the full window applies, which is correct on the deterministic simulator
// and conservative enough for same-order drift in real deployments.
func (m *Manager) extendLease(now time.Duration, b batch) {
	if now < m.suppressUntil {
		// A leadership transfer is in flight: heartbeat acks arriving
		// between the TimeoutNow order and the successor's election must
		// not re-arm the lease, or a stale read could be served after the
		// successor commits (see Node.TransferLeader).
		return
	}
	margin := time.Duration(0)
	if m.cfg.RTT != nil {
		for peer, ctx := range m.acked {
			if peer == m.cfg.Self || ctx < b.id {
				continue
			}
			if r := m.cfg.RTT(peer); r > margin {
				margin = r
			}
		}
	}
	window := m.cfg.LeaseBase - margin
	if window <= 0 {
		return
	}
	if until := b.sentAt + window; until > m.leaseUntil {
		m.leaseUntil = until
		m.counters.Inc(CounterLeaseExtends)
		m.cfg.Recorder.LeaseExtend(now, m.cfg.Self, until)
	}
}

// LeaseValid reports whether lease reads may be served at now.
func (m *Manager) LeaseValid(now time.Duration) bool {
	return m.leaseUntil != 0 && now < m.leaseUntil
}

// LeaseUntil returns the lease expiry instant (0 = no lease); tests and
// diagnostics.
func (m *Manager) LeaseUntil() time.Duration { return m.leaseUntil }

// RevokeLease drops the lease immediately (membership change, missed
// quorum; step-down discards the whole manager instead).
func (m *Manager) RevokeLease() {
	if m.leaseUntil != 0 {
		m.counters.Inc(CounterLeaseRevokes)
	}
	m.leaseUntil = 0
}

// SuppressLease revokes the lease and refuses extensions until the given
// instant. Leadership transfer uses it to keep the window between the
// TimeoutNow order and the successor's election lease-free: transfer
// elections bypass the stickiness that normally guarantees no rival leader
// exists inside a lease window.
func (m *Manager) SuppressLease(until time.Duration) {
	m.RevokeLease()
	if until > m.suppressUntil {
		m.suppressUntil = until
	}
}

// Release pops every confirmed read whose linearization index the commit
// index has reached. The cores call it after commit advancement and after
// folding acks.
func (m *Manager) Release(commitIndex types.Index) []Done {
	var out []Done
	kept := m.confirmed[:0]
	for _, r := range m.confirmed {
		if r.index <= commitIndex {
			out = append(out, Done{Token: r.token, Index: r.index, OK: true})
		} else {
			kept = append(kept, r)
		}
	}
	m.confirmed = kept
	return out
}

// FailAll fails every read still tracked (unstamped, in-flight and
// confirmed-but-unapplied alike) — the step-down path, where the deposed
// leader can no longer vouch for any index. The caller forwards the
// failures so origins retry against the new leader.
func (m *Manager) FailAll() []Done {
	var out []Done
	fail := func(rs []read) {
		for _, r := range rs {
			out = append(out, Done{Token: r.token, OK: false})
		}
	}
	fail(m.unstamped)
	for _, b := range m.batches {
		fail(b.reads)
	}
	fail(m.confirmed)
	m.unstamped, m.batches, m.confirmed = nil, nil, nil
	m.counters.Add(CounterReadsFailed, uint64(len(out)))
	return out
}
