package readpath

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

func newTestManager(rtt func(types.NodeID) time.Duration) (*Manager, *stats.Counters) {
	c := stats.NewCounters()
	m := NewManager(Config{
		Self:      "n1",
		LeaseBase: 300 * time.Millisecond,
		RTT:       rtt,
	}, c)
	m.SetMembership([]types.NodeID{"n1", "n2", "n3"})
	return m, c
}

func TestBatchConfirmAndRelease(t *testing.T) {
	m, c := newTestManager(nil)
	m.Add(1, 10)
	m.Add(2, 12)
	ctx := m.StampRound(0)
	if ctx == 0 {
		t.Fatal("round not stamped")
	}
	// One follower ack + the implicit self ack = quorum of 2/3.
	m.ObserveAck("n2", ctx, 0)
	if got := c.Get(CounterBatchesConfirmed); got != 1 {
		t.Fatalf("batches_confirmed = %d, want 1", got)
	}
	// Release gates on the commit index reaching each read's record.
	done := m.Release(10)
	if len(done) != 1 || done[0].Token != 1 || done[0].Index != 10 || !done[0].OK {
		t.Fatalf("release at 10 = %+v", done)
	}
	done = m.Release(12)
	if len(done) != 1 || done[0].Token != 2 {
		t.Fatalf("release at 12 = %+v", done)
	}
	if got := c.Get(CounterReadBatches); got != 1 {
		t.Fatalf("read_batches = %d, want 1 (both reads in one batch)", got)
	}
}

func TestSingleMemberConfirmsOnStamp(t *testing.T) {
	c := stats.NewCounters()
	m := NewManager(Config{Self: "n1", LeaseBase: 300 * time.Millisecond}, c)
	m.SetMembership([]types.NodeID{"n1"})
	m.Add(1, 4)
	// With no peers, ObserveAck never fires: the leader's implicit
	// self-ack must confirm the batch at stamp time, or single-member
	// clusters could never serve a ReadIndex read.
	m.StampRound(10 * time.Millisecond)
	if got := c.Get(CounterBatchesConfirmed); got != 1 {
		t.Fatalf("batches_confirmed = %d, want 1 (self-quorum)", got)
	}
	if done := m.Release(4); len(done) != 1 || done[0].Token != 1 || !done[0].OK {
		t.Fatalf("read not released on single-member cluster: %+v", done)
	}
	if !m.LeaseValid(300 * time.Millisecond) {
		t.Fatal("self-confirmed round did not extend the lease")
	}
}

func TestLaterAckConfirmsEarlierBatches(t *testing.T) {
	m, _ := newTestManager(nil)
	m.Add(1, 5)
	b1 := m.StampRound(0)
	m.Add(2, 6)
	b2 := m.StampRound(50 * time.Millisecond)
	if b2 <= b1 {
		t.Fatalf("batch ids not monotonic: %d then %d", b1, b2)
	}
	// An ack echoing the later round proves leadership at its dispatch
	// time, which covers the earlier batch too.
	m.ObserveAck("n3", b2, 0)
	done := m.Release(6)
	if len(done) != 2 {
		t.Fatalf("want both reads released, got %+v", done)
	}
}

func TestNonMemberAcksIgnored(t *testing.T) {
	m, c := newTestManager(nil)
	m.Add(1, 5)
	ctx := m.StampRound(0)
	m.ObserveAck("joiner", ctx, 0) // non-voting: must not count
	if got := c.Get(CounterBatchesConfirmed); got != 0 {
		t.Fatalf("non-member ack confirmed a batch")
	}
	if done := m.Release(100); len(done) != 0 {
		t.Fatalf("read released without quorum: %+v", done)
	}
}

func TestLeaseExtendAndDerate(t *testing.T) {
	rtt := func(id types.NodeID) time.Duration {
		if id == "n2" {
			return 40 * time.Millisecond
		}
		return 0
	}
	m, _ := newTestManager(rtt)
	sent := 100 * time.Millisecond
	ctx := m.StampRound(sent)
	m.ObserveAck("n2", ctx, 0)
	// Lease = sentAt + LeaseBase - max srtt among ackers = 100 + 300 - 40.
	want := sent + 300*time.Millisecond - 40*time.Millisecond
	if got := m.LeaseUntil(); got != want {
		t.Fatalf("lease until %v, want %v", got, want)
	}
	if !m.LeaseValid(want - time.Millisecond) {
		t.Fatal("lease should be valid just before expiry")
	}
	if m.LeaseValid(want) {
		t.Fatal("lease valid at expiry")
	}
}

func TestLeaseAnchorsAtDispatchTime(t *testing.T) {
	m, _ := newTestManager(nil)
	ctx := m.StampRound(0)
	// The ack arrives late; the lease still counts from dispatch (time 0),
	// not from the ack.
	m.ObserveAck("n2", ctx, 0)
	if got := m.LeaseUntil(); got != 300*time.Millisecond {
		t.Fatalf("lease until %v, want %v (anchored at dispatch)", got, 300*time.Millisecond)
	}
}

func TestBatchExpiryReArmsReadsAndRevokesLease(t *testing.T) {
	m, c := newTestManager(nil)
	// Establish a lease first.
	ctx := m.StampRound(0)
	m.ObserveAck("n2", ctx, 0)
	if !m.LeaseValid(50 * time.Millisecond) {
		t.Fatal("lease not established")
	}
	m.Add(1, 7)
	m.StampRound(20 * time.Millisecond)
	// No quorum for a full expiry window: the next stamp rolls the read
	// into the new batch and revokes the lease.
	next := m.StampRound(20*time.Millisecond + 300*time.Millisecond)
	if got := c.Get(CounterBatchesExpired); got == 0 {
		t.Fatal("expired batch not counted")
	}
	if m.LeaseValid(330 * time.Millisecond) {
		t.Fatal("lease survived a missed quorum")
	}
	// The re-armed read confirms under the new batch.
	m.ObserveAck("n3", next, 0)
	if done := m.Release(7); len(done) != 1 || done[0].Token != 1 {
		t.Fatalf("re-armed read not released: %+v", done)
	}
}

func TestMembershipChangeRevokesAndReArms(t *testing.T) {
	m, c := newTestManager(nil)
	ctx := m.StampRound(0)
	m.ObserveAck("n2", ctx, 0)
	m.Add(1, 9)
	m.StampRound(10 * time.Millisecond)
	m.SetMembership([]types.NodeID{"n1", "n2", "n3", "n4", "n5"})
	if m.LeaseValid(20 * time.Millisecond) {
		t.Fatal("lease survived a membership change")
	}
	if got := c.Get(CounterLeaseRevokes); got == 0 {
		t.Fatal("revocation not counted")
	}
	// Old acks must not count toward the new configuration's quorum.
	next := m.StampRound(30 * time.Millisecond)
	m.ObserveAck("n2", next, 0)
	if done := m.Release(9); len(done) != 0 {
		t.Fatalf("read released on sub-quorum (2/5): %+v", done)
	}
	m.ObserveAck("n4", next, 0)
	if done := m.Release(9); len(done) != 1 {
		t.Fatalf("read not released on 3/5 quorum: %+v", done)
	}
}

func TestFailAll(t *testing.T) {
	m, c := newTestManager(nil)
	m.Add(1, 5)
	m.StampRound(0)
	m.Add(2, 6)
	if got := m.PendingReads(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	done := m.FailAll()
	if len(done) != 2 {
		t.Fatalf("failed %d reads, want 2", len(done))
	}
	for _, d := range done {
		if d.OK {
			t.Fatalf("FailAll produced OK read: %+v", d)
		}
	}
	if got := c.Get(CounterReadsFailed); got != 2 {
		t.Fatalf("reads_failed = %d, want 2", got)
	}
	if m.PendingReads() != 0 {
		t.Fatal("reads still tracked after FailAll")
	}
}
