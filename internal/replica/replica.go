// Package replica is the shared per-peer replication engine used by every
// consensus core (classic Raft, Fast Raft, and through Fast Raft both
// C-Raft levels): progress tracking, append-round dispatch, flow control
// and chunked snapshot streaming.
//
// The design follows etcd's Progress/ProgressSnapshot shape. Each peer is a
// small state machine:
//
//   - probe:     the leader is still locating the peer's log end. Entries
//     are sent anchored at Next every round, but Next only advances on an
//     acknowledgment, so a wrong guess costs one round, not a flood.
//   - replicate: the peer is caught up and acknowledging. Next advances
//     optimistically as appends are sent, letting catch-up pipeline across
//     round trips, bounded by an inflight window of MaxInflightBytes
//     outstanding encoded entry bytes (with MaxInflight messages as the
//     secondary cap). A full window downgrades the round to a plain
//     heartbeat.
//   - snapshot:  the entries the peer needs are compacted away. The leader
//     streams its snapshot — in MaxChunk-sized chunks when configured —
//     and sends no appends until the install is acknowledged. The
//     pending-install flag plus a resend timeout stop the stall-and-flood
//     behavior of re-sending the full image every broadcast round.
//
// The Tracker owns the peer map and, since the dispatch hoist, the whole
// append-round/heartbeat protocol: AppendMessages and HeartbeatMessage
// build the AppendEntries traffic for a round, parameterized over a
// LogView (last-index/term/entry-range accessors) so classic Raft's full
// log and Fast Raft's leader-approved prefix share one implementation. It
// answers the quorum questions commit evaluation asks and plans snapshot
// chunk transmission. The Reassembler is the follower-side counterpart
// that rebuilds a chunked stream into a Snapshot.
//
// Retransmission timing is adaptive: each Progress keeps an EWMA estimate
// of the peer's acknowledgment round trip (Jacobson/Karels srtt + 4*rttvar)
// and both the append stall-recovery probe and the pending-snapshot resend
// fire after that estimate, clamped between the heartbeat interval and the
// election timeout — fast links retransmit quickly, slow links are not
// flooded with duplicates.
//
// Everything here is sans-io and deterministic: the cores decide when a
// round happens and own message transmission; this package decides what
// may be sent to whom, and builds it.
package replica

import (
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/quorum"
	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

// State is a peer's replication state.
type State uint8

const (
	// StateProbe sends conservatively while locating the peer's log end.
	StateProbe State = iota + 1
	// StateReplicate pipelines appends optimistically under a window.
	StateReplicate
	// StateSnapshot streams a snapshot; appends are suspended.
	StateSnapshot
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateProbe:
		return "probe"
	case StateReplicate:
		return "replicate"
	case StateSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Counter names emitted by the tracker (exposed through Node.Metrics).
const (
	// CounterAppendsThrottled counts rounds where a full inflight window
	// downgraded an append to a heartbeat.
	CounterAppendsThrottled = "replica.appends_throttled"
	// CounterBytesThrottled counts appends whose entry payload was cut
	// short by the byte budget (the remainder ships after acks free room).
	CounterBytesThrottled = "replica.appends_byte_limited"
	// CounterChunksSent counts first-transmission snapshot chunks.
	CounterChunksSent = "replica.snapshot_chunks_sent"
	// CounterChunksResent counts snapshot chunks re-sent after a resend
	// timeout rewound the cursor.
	CounterChunksResent = "replica.snapshot_chunks_resent"
	// CounterFullSent counts unchunked full-snapshot transmissions.
	CounterFullSent = "replica.snapshot_full_sent"
	// CounterFullResent counts unchunked full-snapshot re-transmissions
	// after the resend timeout.
	CounterFullResent = "replica.snapshot_full_resent"
	// CounterPendingRounds counts rounds where a pending install suppressed
	// any snapshot transmission (the redundant sends the old cores made).
	CounterPendingRounds = "replica.snapshot_pending_rounds"
	// CounterStreams counts snapshot transfers started.
	CounterStreams = "replica.snapshot_streams_started"
	// CounterStreamsDone counts snapshot transfers acknowledged complete.
	CounterStreamsDone = "replica.snapshot_streams_completed"
	// CounterStreamsResumed counts snapshot transfers continued from a
	// follower-reported offset (a new leader carrying on its predecessor's
	// stream instead of restarting from byte 0).
	CounterStreamsResumed = "replica.snapshot_streams_resumed"
	// CounterChunksReceived counts snapshot chunks ingested on the
	// follower side (incremented by the cores, which own the Reassembler).
	CounterChunksReceived = "replica.snapshot_chunks_received"
	// CounterInstalls counts snapshots installed on the follower side.
	CounterInstalls = "replica.snapshots_installed"
	// CounterStallsRecovered counts full append windows that timed out
	// without ack progress and fell back to probing (lost appends are then
	// retransmitted from Match+1).
	CounterStallsRecovered = "replica.append_stalls_recovered"
)

// DefaultMaxInflight is the append-message window used when
// Config.MaxInflight is unset: enough to pipeline catch-up across a few
// round trips without letting a slow peer absorb unbounded duplicates.
const DefaultMaxInflight = 4

// DefaultMaxInflightBytes is the per-peer byte budget used when
// Config.MaxInflightBytes is unset: one megabyte of encoded entries may be
// outstanding before the round downgrades to a heartbeat.
const DefaultMaxInflightBytes = 1 << 20

// Config parametrizes a Tracker.
type Config struct {
	// MaxInflight bounds outstanding append messages per peer in the
	// replicate state, and outstanding unacked chunks during snapshot
	// streaming (0 = DefaultMaxInflight). Since byte budgets landed this is
	// the secondary cap; MaxInflightBytes is the primary window.
	MaxInflight int
	// MaxInflightBytes bounds the encoded entry bytes outstanding per peer
	// in the replicate state (0 = DefaultMaxInflightBytes). Entries are
	// sized at encode time (types.EntryWireSize); a message may exceed the
	// remaining budget by at most one entry so a single oversized entry
	// can always make progress.
	MaxInflightBytes int
	// MaxEntries caps the entries carried by one AppendEntries message
	// (0 = unlimited); a lagging follower then catches up over several
	// bounded round trips instead of one unbounded message.
	MaxEntries int
	// MaxChunk is the snapshot chunk payload size in bytes (0 = ship the
	// whole snapshot in one message, as before chunking existed).
	MaxChunk int
	// ResendTimeout is how long a transfer may go without acknowledged
	// progress before it is retried, while no round-trip samples exist for
	// the peer: a pending snapshot's unacked part is re-sent, and a full
	// append window falls back to probing (RecoverStall). Once acks have
	// been observed the per-peer adaptive estimate (srtt + 4*rttvar,
	// clamped to [MinResendTimeout, MaxResendTimeout]) takes over. 0
	// disables timed retransmission entirely.
	ResendTimeout time.Duration
	// MinResendTimeout clamps the adaptive resend timeout from below
	// (cores pass the heartbeat interval; 0 = no lower clamp).
	MinResendTimeout time.Duration
	// MaxResendTimeout clamps the adaptive resend timeout from above
	// (cores pass the election timeout; 0 = no upper clamp).
	MaxResendTimeout time.Duration
}

// inflightMsg records one outstanding append: the last log index it
// carried, its encoded entry bytes, and when it was sent (round-trip
// sampling).
type inflightMsg struct {
	last   types.Index
	bytes  int
	sentAt time.Duration
}

// Progress tracks replication to one peer. Fields are managed by the
// Tracker; cores read them through accessors.
type Progress struct {
	match types.Index
	next  types.Index
	// fastMatch is the peer's fast-quorum vote position (Fast Raft's
	// fastMatchIndex; unused by classic Raft).
	fastMatch types.Index

	state       State
	maxInflight int
	maxBytes    int
	// inflight holds the outstanding appends, FIFO; acks free every
	// element whose last index <= the acknowledged match index.
	inflight      []inflightMsg
	bytesInFlight int
	// stallDeadline arms when sends fill the window: if no ack progress
	// arrives by then, the window is presumed lost (messages or acks
	// dropped) and the peer falls back to probing so the entries are
	// retransmitted. 0 = not armed.
	stallDeadline time.Duration

	// srtt/rttvar estimate the peer's acknowledgment round trip
	// (Jacobson/Karels EWMA), fed by append acks and snapshot-chunk acks.
	// 0 = no samples yet.
	srtt   time.Duration
	rttvar time.Duration

	// Snapshot streaming state (StateSnapshot only).
	pendingSnapshot types.Index   // boundary of the snapshot in flight
	acked           uint64        // contiguous bytes acknowledged by the peer
	cursor          uint64        // next byte offset to transmit
	maxSent         uint64        // transmission high-water mark (resend accounting)
	chunkSentAt     time.Duration // when the last chunk batch went out (RTT sampling)
	deadline        time.Duration // resend timeout for unacked progress
}

// Match returns the highest index known replicated on the peer.
func (p *Progress) Match() types.Index { return p.match }

// Next returns the next index to send to the peer.
func (p *Progress) Next() types.Index { return p.next }

// FastMatch returns the peer's fast-track vote position.
func (p *Progress) FastMatch() types.Index { return p.fastMatch }

// State returns the peer's replication state.
func (p *Progress) State() State { return p.state }

// BytesInFlight returns the encoded entry bytes currently outstanding to
// the peer (tests and diagnostics).
func (p *Progress) BytesInFlight() int { return p.bytesInFlight }

// RTT returns the smoothed acknowledgment round-trip estimate for the peer
// (0 until the first sample).
func (p *Progress) RTT() time.Duration { return p.srtt }

// RTTVar returns the round-trip variance estimate for the peer (0 until
// the first sample).
func (p *Progress) RTTVar() time.Duration { return p.rttvar }

// InflightMsgs returns the number of outstanding append messages to the
// peer.
func (p *Progress) InflightMsgs() int { return len(p.inflight) }

// PendingSnapshot returns the boundary of the snapshot being streamed to
// the peer (0 when none).
func (p *Progress) PendingSnapshot() types.Index {
	if p.state != StateSnapshot {
		return 0
	}
	return p.pendingSnapshot
}

// SnapshotCursor returns the transfer's acknowledged and transmitted byte
// positions (tests and diagnostics; zero outside StateSnapshot).
func (p *Progress) SnapshotCursor() (acked, cursor uint64) {
	if p.state != StateSnapshot {
		return 0, 0
	}
	return p.acked, p.cursor
}

// CanAppend reports whether the leader may ship log entries to this peer
// this round. False while a snapshot is pending, or while the replicate
// window — message count or byte budget — is full (the caller downgrades
// to a heartbeat).
func (p *Progress) CanAppend() bool {
	if p.state == StateSnapshot {
		return false
	}
	return len(p.inflight) < p.maxInflight && p.bytesInFlight < p.maxBytes
}

// SentAppend records that entries (prev+1 .. prev+n], sized at bytes on
// the wire, were sent at now. In the replicate state Next advances
// optimistically and the message joins the inflight window; in probe it
// stays put until acknowledged.
func (p *Progress) SentAppend(prev types.Index, n, bytes int, now time.Duration) {
	if n == 0 || p.state != StateReplicate {
		return
	}
	last := prev + types.Index(n)
	p.inflight = append(p.inflight, inflightMsg{last: last, bytes: bytes, sentAt: now})
	p.bytesInFlight += bytes
	if p.next <= last {
		p.next = last + 1
	}
}

// AckAppend folds a successful AppendEntries acknowledgment up to match,
// observed at now. It reports whether the peer's Match advanced. A first
// ack flips a probing peer to replicate; acks during a snapshot transfer
// only complete it when they prove the peer already holds the boundary.
// Freed inflight messages feed the round-trip estimator.
func (p *Progress) AckAppend(match types.Index, now time.Duration) bool {
	if p.state == StateSnapshot {
		if match < p.pendingSnapshot {
			return false // stale ack from before the transfer
		}
		p.finishSnapshot()
	}
	advanced := match > p.match
	if advanced {
		p.match = match
	}
	if p.next <= match {
		p.next = match + 1
	}
	i := 0
	for i < len(p.inflight) && p.inflight[i].last <= match {
		p.bytesInFlight -= p.inflight[i].bytes
		i++
	}
	if i > 0 {
		// The newest freed message is the one this reply answers; older
		// ones were acked by lost replies and would overestimate.
		p.observeRTT(now - p.inflight[i-1].sentAt)
		p.inflight = p.inflight[i:]
	}
	if advanced || i > 0 {
		// Ack progress: the window is moving, disarm the stall timer.
		p.stallDeadline = 0
	}
	if p.state == StateProbe {
		p.state = StateReplicate
	}
	return advanced
}

// observeRTT folds one acknowledgment round-trip sample into the EWMA
// estimate (Jacobson/Karels).
func (p *Progress) observeRTT(s time.Duration) {
	if s <= 0 {
		return
	}
	if p.srtt == 0 {
		p.srtt = s
		p.rttvar = s / 2
		return
	}
	d := p.srtt - s
	if d < 0 {
		d = -d
	}
	p.rttvar = (3*p.rttvar + d) / 4
	p.srtt = (7*p.srtt + s) / 8
}

// RejectAppend processes a failed consistency check: back Next off (using
// the follower's last-index hint to converge quickly) and drop back to
// probing. Ignored during a snapshot transfer — the rejected append
// predates it.
func (p *Progress) RejectAppend(hintLast types.Index) {
	if p.state == StateSnapshot {
		return
	}
	next := p.next
	if next > hintLast+1 {
		next = hintLast + 1
	} else if next > 1 {
		next--
	}
	if next == 0 {
		next = 1
	}
	p.next = next
	p.state = StateProbe
	p.clearInflight()
}

// ResetNext re-anchors Next (Fast Raft's vote rule: a voter reports its
// commit index and the leader re-converges its log from there). Ignored
// while a snapshot is streaming — re-anchoring below the boundary would
// restart the transfer every vote, which is exactly the redundancy this
// package exists to remove.
func (p *Progress) ResetNext(next types.Index) {
	if p.state == StateSnapshot {
		return
	}
	if next == 0 {
		next = 1
	}
	p.next = next
	p.state = StateProbe
	p.clearInflight()
}

// RecordFastMatch raises the peer's fast-track vote position.
func (p *Progress) RecordFastMatch(idx types.Index) {
	if idx > p.fastMatch {
		p.fastMatch = idx
	}
}

func (p *Progress) clearInflight() {
	p.inflight = nil
	p.bytesInFlight = 0
	p.stallDeadline = 0
}

func (p *Progress) finishSnapshot() {
	p.state = StateProbe
	p.pendingSnapshot = 0
	p.acked, p.cursor, p.maxSent = 0, 0, 0
	p.deadline = 0
	p.chunkSentAt = 0
	p.clearInflight()
}

// String renders the progress for diagnostics.
func (p *Progress) String() string {
	s := fmt.Sprintf("%s match=%d next=%d", p.state, p.match, p.next)
	if p.state == StateSnapshot {
		s += fmt.Sprintf(" pending=%d acked=%d cursor=%d", p.pendingSnapshot, p.acked, p.cursor)
	}
	return s
}

// LogView is the read-only slice of a core's log the dispatch layer needs.
// Classic Raft passes its full log; Fast Raft passes the leader-approved
// prefix (LastLeaderIndex/LeaderRange) — the accessor pair is the only
// difference between the two cores' replication, which is why one
// implementation serves both.
type LogView struct {
	// LastIndex returns the top of the replicable log.
	LastIndex func() types.Index
	// Term returns the term of the entry at an index (0 if absent).
	Term func(types.Index) types.Term
	// Entries returns the replicable entries in [lo, hi].
	Entries func(lo, hi types.Index) []types.Entry
	// SnapshotIndex returns the compaction boundary (0 if never compacted).
	SnapshotIndex func() types.Index
}

// Round is the per-broadcast-round context stamped onto every message the
// tracker builds.
type Round struct {
	// Term is the leader's current term.
	Term types.Term
	// Leader is the leader's identity.
	Leader types.NodeID
	// Commit is the leader's commit index.
	Commit types.Index
	// Seq numbers the heartbeat round (silent-leave accounting).
	Seq uint64
	// NextHint seeds Next for peers first tracked this round (classic Raft
	// probes from LastIndex+1, Fast Raft from commitIndex+1).
	NextHint types.Index
	// ReadCtx is the read-batch ID stamped onto every AppendEntries message
	// of the round (0 = none); followers echo it and a quorum of echoes
	// confirms the batch (see internal/readpath).
	ReadCtx uint64
	// Now is the current virtual time.
	Now time.Duration
}

// Chunk describes one InstallSnapshot transmission the leader should make.
// The tracker plans offsets; the core slices the encoded snapshot and
// wraps the result in its own message envelope.
type Chunk struct {
	// Boundary is the snapshot's last covered index (stream identity).
	Boundary types.Index
	// Offset is the byte offset of this chunk within the encoded snapshot.
	Offset uint64
	// Len is the chunk payload length in bytes (0 for a Full send).
	Len uint64
	// Done marks the final chunk of the stream.
	Done bool
	// Full means "ship the entire snapshot in one legacy message" (chunking
	// disabled).
	Full bool
}

// Tracker owns the per-peer Progress map for one leadership. It is created
// when a node becomes leader and discarded on step-down; the counter set
// outlives it (the node passes its own).
type Tracker struct {
	cfg      Config
	peers    map[types.NodeID]*Progress
	counters *stats.Counters
}

// NewTracker builds a tracker. counters may be shared with the owning node
// (nil allocates a private set).
func NewTracker(cfg Config, counters *stats.Counters) *Tracker {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxInflightBytes <= 0 {
		cfg.MaxInflightBytes = DefaultMaxInflightBytes
	}
	if counters == nil {
		counters = stats.NewCounters()
	}
	return &Tracker{
		cfg:      cfg,
		peers:    make(map[types.NodeID]*Progress),
		counters: counters,
	}
}

// Counters returns the tracker's counter set.
func (t *Tracker) Counters() *stats.Counters { return t.counters }

// Reset installs fresh progress for the given members, all probing from
// next. Called at election win.
func (t *Tracker) Reset(members []types.NodeID, next types.Index) {
	t.peers = make(map[types.NodeID]*Progress, len(members))
	for _, id := range members {
		t.Ensure(id, next)
	}
}

// Ensure returns the peer's progress, creating it (probing from next) if
// absent. Used for peers that appear mid-leadership: joiners being caught
// up and members added by configuration entries.
func (t *Tracker) Ensure(id types.NodeID, next types.Index) *Progress {
	if p, ok := t.peers[id]; ok {
		return p
	}
	if next == 0 {
		next = 1
	}
	p := &Progress{
		state:       StateProbe,
		next:        next,
		maxInflight: t.cfg.MaxInflight,
		maxBytes:    t.cfg.MaxInflightBytes,
	}
	t.peers[id] = p
	return p
}

// Get returns the peer's progress (nil if untracked).
func (t *Tracker) Get(id types.NodeID) *Progress { return t.peers[id] }

// Remove forgets a peer (left the configuration).
func (t *Tracker) Remove(id types.NodeID) { delete(t.peers, id) }

// Peers returns the tracked peer IDs in deterministic order.
func (t *Tracker) Peers() []types.NodeID {
	out := make([]types.NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Match returns the peer's match index (0 if untracked).
func (t *Tracker) Match(id types.NodeID) types.Index {
	if p, ok := t.peers[id]; ok {
		return p.match
	}
	return 0
}

// RecordSelf marks the leader's own replication position: its log end is
// both matched and fast-matched by definition.
func (t *Tracker) RecordSelf(self types.NodeID, match types.Index) {
	p := t.Ensure(self, match+1)
	if match > p.match {
		p.match = match
	}
	if p.next <= match {
		p.next = match + 1
	}
	p.RecordFastMatch(match)
	p.state = StateReplicate
}

// resendAfter is the peer's current retransmission timeout: the adaptive
// estimate (srtt + 4*rttvar, clamped to the configured window) once
// round-trip samples exist, the static ResendTimeout before that.
func (t *Tracker) resendAfter(p *Progress) time.Duration {
	if p == nil || p.srtt == 0 {
		return t.cfg.ResendTimeout
	}
	rto := p.srtt + 4*p.rttvar
	if min := t.cfg.MinResendTimeout; min > 0 && rto < min {
		rto = min
	}
	if max := t.cfg.MaxResendTimeout; max > 0 && rto > max {
		rto = max
	}
	return rto
}

// ResendAfter exposes the peer's effective retransmission timeout (tests
// and diagnostics; the static default if the peer is untracked).
func (t *Tracker) ResendAfter(id types.NodeID) time.Duration {
	return t.resendAfter(t.peers[id])
}

// RecoverStall is the escape hatch for a lost append window: called on a
// round where the peer's full window blocks an append, it arms (then
// checks) the peer's resend timeout; once the window has gone that long
// with no ack progress, the peer falls back to probing from Match+1 so the
// lost entries are retransmitted. Returns true when the fallback fired —
// the caller may append again this round.
func (t *Tracker) RecoverStall(id types.NodeID, now time.Duration) bool {
	p := t.peers[id]
	if p == nil || p.state != StateReplicate || len(p.inflight) == 0 {
		return false
	}
	if p.stallDeadline == 0 {
		p.stallDeadline = now + t.resendAfter(p)
		return false
	}
	if t.cfg.ResendTimeout <= 0 || now < p.stallDeadline {
		return false
	}
	p.next = p.match + 1
	p.state = StateProbe
	p.clearInflight()
	t.counters.Inc(CounterStallsRecovered)
	return true
}

// PeerStatus is a point-in-time snapshot of one peer's replication
// progress, exposed through the public API for introspection: the tracker
// knows srtt/rttvar and progress states, and this is how operators reach
// them.
type PeerStatus struct {
	// ID is the peer's identity.
	ID types.NodeID
	// State is the replication state ("probe", "replicate", "snapshot").
	State string
	// Match is the highest index known replicated on the peer.
	Match types.Index
	// Next is the next index to send.
	Next types.Index
	// SRTT is the smoothed acknowledgment round-trip estimate (0 = no
	// samples yet).
	SRTT time.Duration
	// RTTVar is the round-trip variance estimate.
	RTTVar time.Duration
	// InflightBytes is the encoded entry bytes currently outstanding.
	InflightBytes int
	// InflightMsgs is the append messages currently outstanding.
	InflightMsgs int
}

// Status snapshots every tracked peer's progress in deterministic order.
func (t *Tracker) Status() []PeerStatus {
	ids := t.Peers()
	out := make([]PeerStatus, 0, len(ids))
	for _, id := range ids {
		p := t.peers[id]
		out = append(out, PeerStatus{
			ID:            id,
			State:         p.state.String(),
			Match:         p.match,
			Next:          p.next,
			SRTT:          p.srtt,
			RTTVar:        p.rttvar,
			InflightBytes: p.bytesInFlight,
			InflightMsgs:  len(p.inflight),
		})
	}
	return out
}

// MatchQuorum reports whether >= q members of cfg have match >= idx (the
// classic commit rule).
func (t *Tracker) MatchQuorum(cfg types.Config, idx types.Index, q int) bool {
	return quorum.MatchQuorumFunc(cfg, t.Match, idx, q)
}

// FastMatchQuorum reports whether >= q members of cfg fast-voted for >= idx
// (Fast Raft's fast commit rule).
func (t *Tracker) FastMatchQuorum(cfg types.Config, idx types.Index, q int) bool {
	return quorum.MatchQuorumFunc(cfg, func(id types.NodeID) types.Index {
		if p, ok := t.peers[id]; ok {
			return p.fastMatch
		}
		return 0
	}, idx, q)
}

// --- Append dispatch (leader side) ------------------------------------------

// AppendMessages plans and builds this round's AppendEntries traffic to one
// peer. It returns the messages to send now, or snapshot=true when the
// entries the peer needs are compacted away — the caller then streams its
// snapshot (SnapshotMessages) and heartbeats while the install is pending.
//
// Flow control is applied here: a full inflight window (bytes or messages)
// downgrades the round to a heartbeat unless the stall timeout fires, and
// the entry payload is trimmed to the remaining byte budget and MaxEntries.
// This is the single append-dispatch implementation for every core; the
// LogView accessors are the only per-protocol variation.
func (t *Tracker) AppendMessages(id types.NodeID, lv LogView, rc Round) (msgs []types.AppendEntries, snapshot bool) {
	pr := t.Ensure(id, rc.NextHint)
	if pr.state == StateSnapshot || pr.next <= lv.SnapshotIndex() {
		return nil, true
	}
	if !pr.CanAppend() {
		// Inflight window full: the peer has unacknowledged appends in
		// flight; pushing more would just duplicate them. If the window has
		// gone a full timeout without ack progress, the appends (or their
		// acks) were lost — fall back to probing and retransmit now.
		if !t.RecoverStall(id, rc.Now) {
			t.counters.Inc(CounterAppendsThrottled)
			return []types.AppendEntries{t.HeartbeatMessage(id, lv, rc)}, false
		}
	}
	next := pr.next
	prev := next - 1
	hi := lv.LastIndex()
	if max := t.cfg.MaxEntries; max > 0 && hi >= next+types.Index(max) {
		// Bound the payload; acks advance Next and the window lets the
		// following chunks pipeline.
		hi = next + types.Index(max) - 1
	}
	entries, size := t.budgetEntries(pr, lv, next, hi)
	msg := types.AppendEntries{
		Term:         rc.Term,
		LeaderID:     rc.Leader,
		PrevLogIndex: prev,
		PrevLogTerm:  lv.Term(prev),
		Entries:      entries,
		LeaderCommit: rc.Commit,
		Round:        rc.Seq,
		ReadCtx:      rc.ReadCtx,
	}
	pr.SentAppend(prev, len(entries), size, rc.Now)
	return []types.AppendEntries{msg}, false
}

// budgetEntries materializes the batch [lo, hi] up to the peer's
// remaining byte budget, sizing each entry at its wire encoding, and
// returns the kept entries and their total size. Entries are fetched from
// the log in bounded slabs so a deeply lagging follower never causes the
// whole remaining tail to be cloned just to keep one window's worth —
// without this, catch-up would copy O(lag) entries per refill, O(lag²)
// overall. The first entry is always kept so a single entry larger than
// the whole budget still makes progress (over-committing the window by at
// most one entry).
func (t *Tracker) budgetEntries(p *Progress, lv LogView, lo, hi types.Index) ([]types.Entry, int) {
	// fetchSlab bounds how far a fetch may overshoot the budget: at most
	// one slab of entries is cloned beyond what ships.
	const fetchSlab = 256
	remaining := t.cfg.MaxInflightBytes - p.bytesInFlight
	hint := int(hi - lo + 1)
	if hint > fetchSlab {
		hint = fetchSlab
	}
	// The batch slice is pool-recycled: serializing transports return it
	// via types.RecycleEnvelope once the message is on the wire.
	out := types.GetEntries(hint)
	size := 0
	for lo <= hi {
		slabHi := lo + fetchSlab - 1
		if slabHi > hi {
			slabHi = hi
		}
		for _, e := range lv.Entries(lo, slabHi) {
			n := types.EntryWireSize(e)
			if len(out) > 0 && size+n > remaining {
				t.counters.Inc(CounterBytesThrottled)
				return out, size
			}
			out = append(out, e)
			size += n
		}
		lo = slabHi + 1
	}
	return out, size
}

// HeartbeatMessage builds an entry-free AppendEntries anchored where the
// peer is known to match (or at the snapshot boundary), so it passes the
// consistency check without carrying payload or regressing progress.
func (t *Tracker) HeartbeatMessage(id types.NodeID, lv LogView, rc Round) types.AppendEntries {
	prev := lv.SnapshotIndex()
	if p := t.peers[id]; p != nil && p.match > prev && p.match <= lv.LastIndex() {
		prev = p.match
	}
	return types.AppendEntries{
		Term:         rc.Term,
		LeaderID:     rc.Leader,
		PrevLogIndex: prev,
		PrevLogTerm:  lv.Term(prev),
		LeaderCommit: rc.Commit,
		Round:        rc.Seq,
		ReadCtx:      rc.ReadCtx,
	}
}

// --- Snapshot streaming (leader side) ---------------------------------------

// PlanSnapshot decides what, if anything, of the snapshot (boundary,
// encLen encoded bytes) to transmit to peer this round. It returns chunk
// descriptors to send now — empty when the pending-install flag suppresses
// transmission (the caller should still heartbeat). Transitions the peer
// into StateSnapshot, restarting the stream if the leader's snapshot
// boundary moved.
func (t *Tracker) PlanSnapshot(id types.NodeID, boundary types.Index, encLen int, now time.Duration) []Chunk {
	p := t.Ensure(id, boundary+1)
	if p.state != StateSnapshot || p.pendingSnapshot != boundary {
		p.state = StateSnapshot
		p.pendingSnapshot = boundary
		p.acked, p.cursor, p.maxSent = 0, 0, 0
		p.deadline = 0
		p.clearInflight()
		t.counters.Inc(CounterStreams)
	}

	if t.cfg.MaxChunk <= 0 {
		// Unchunked: one full transmission, then hold until acknowledged or
		// timed out. cursor doubles as the "sent once" flag.
		if p.cursor == 0 {
			p.cursor = uint64(encLen)
			p.chunkSentAt = now
			p.deadline = now + t.resendAfter(p)
			t.counters.Inc(CounterFullSent)
			return []Chunk{{Boundary: boundary, Done: true, Full: true}}
		}
		if t.cfg.ResendTimeout > 0 && now >= p.deadline {
			p.chunkSentAt = now
			p.deadline = now + t.resendAfter(p)
			t.counters.Inc(CounterFullResent)
			return []Chunk{{Boundary: boundary, Done: true, Full: true}}
		}
		t.counters.Inc(CounterPendingRounds)
		return nil
	}

	// A seeded continuation can land at or beyond this leader's whole
	// encoding (the follower buffered a divergent, longer encoding of the
	// same boundary). Had the follower really held our full image it would
	// have completed the install already — so nothing above total can ever
	// be acknowledged against this stream, and planning from there would
	// send nothing forever. Restart from byte 0; the checksum makes the
	// follower discard its stale buffer on the first chunk.
	if total := uint64(encLen); p.acked >= total && total > 0 {
		p.acked, p.cursor, p.maxSent = 0, 0, 0
		p.deadline = 0
	}

	// Chunked: if nothing was acknowledged since the last transmission for
	// a full timeout, rewind to the ack point and re-send from there; acked
	// chunks are never re-sent.
	if t.cfg.ResendTimeout > 0 && p.cursor > p.acked && now >= p.deadline {
		p.cursor = p.acked
	}
	chunks := t.planChunks(p, boundary, encLen, now)
	if len(chunks) == 0 {
		t.counters.Inc(CounterPendingRounds)
	}
	return chunks
}

// SeedSnapshot continues a predecessor leader's chunked transfer: the
// follower reported (through AppendEntriesResp.PendingBoundary/Offset)
// that it already buffered offset bytes of the snapshot at boundary, and
// this leader's snapshot matches that boundary — so the transfer starts
// from the follower's position instead of byte 0, never re-sending the
// chunks the old leader got acknowledged. No-op when chunking is off, when
// the peer is already streaming this boundary (the offset just folds in as
// an ack), or when offset is 0 (nothing to continue).
func (t *Tracker) SeedSnapshot(id types.NodeID, boundary types.Index, offset uint64, now time.Duration) {
	if t.cfg.MaxChunk <= 0 || boundary == 0 || offset == 0 {
		return
	}
	p := t.Ensure(id, boundary+1)
	if p.state == StateSnapshot && p.pendingSnapshot == boundary {
		if offset > p.acked {
			p.acked = offset
			if p.cursor < offset {
				p.cursor = offset
			}
		}
		return
	}
	p.state = StateSnapshot
	p.pendingSnapshot = boundary
	p.acked, p.cursor, p.maxSent = offset, offset, offset
	p.deadline = now
	p.chunkSentAt = 0
	p.clearInflight()
	t.counters.Inc(CounterStreams)
	t.counters.Inc(CounterStreamsResumed)
}

// AckSnapshot folds an InstallSnapshotReply into the peer's transfer
// state: lastIndex is the responder's resulting boundary/commit, offset the
// contiguous bytes it has buffered for the snapshot identified by boundary.
// It reports whether the transfer completed (install acknowledged, or the
// peer proved it already holds the prefix). On progress within an ongoing
// stream, the caller may immediately PlanSnapshot again to keep the chunk
// pipeline moving between rounds.
func (t *Tracker) AckSnapshot(id types.NodeID, boundary types.Index, offset uint64, lastIndex types.Index, now time.Duration) bool {
	p := t.peers[id]
	if p == nil {
		return false
	}
	if lastIndex > p.match {
		p.match = lastIndex
	}
	if p.next <= lastIndex {
		p.next = lastIndex + 1
	}
	if p.state != StateSnapshot {
		return false
	}
	if lastIndex >= p.pendingSnapshot {
		p.finishSnapshot()
		t.counters.Inc(CounterStreamsDone)
		return true
	}
	if boundary == p.pendingSnapshot {
		switch {
		case offset > p.acked:
			p.acked = offset
			if p.cursor < p.acked {
				p.cursor = p.acked
			}
			if p.chunkSentAt > 0 {
				p.observeRTT(now - p.chunkSentAt)
			}
			p.deadline = now + t.resendAfter(p)
		case offset < p.acked:
			// The responder's buffer regressed below our ack point — it
			// restarted mid-stream, discarded a corrupt stream, or rejected
			// a continuation whose bytes diverged from its buffered prefix
			// (checksum mismatch). Resume from its actual position instead
			// of wedging on a monotonic cursor. (A reordered stale ack costs
			// at most a re-sent window; the follower ignores overlaps.)
			p.acked = offset
			p.cursor = offset
		}
	}
	return false
}

// SnapshotMessages plans this round's transmission to peer and
// materializes the InstallSnapshot messages to send: the whole image in
// one message when chunking is off, chunk slices of enc (the encoded
// snapshot, whose IEEE CRC-32 is check) otherwise. Empty when the
// pending-install flag suppresses transmission. Shared by every core so
// the chunk protocol cannot diverge between them.
func (t *Tracker) SnapshotMessages(id types.NodeID, snap types.Snapshot, enc []byte, check uint32, term types.Term, leader types.NodeID, round uint64, now time.Duration) []types.InstallSnapshot {
	boundary := snap.Meta.LastIndex
	chunks := t.PlanSnapshot(id, boundary, len(enc), now)
	msgs := make([]types.InstallSnapshot, 0, len(chunks))
	for _, ch := range chunks {
		m := types.InstallSnapshot{
			Term:     term,
			LeaderID: leader,
			Boundary: boundary,
			Round:    round,
		}
		if ch.Full {
			m.Snapshot = snap.Clone()
			m.Done = true
		} else {
			m.Offset = ch.Offset
			m.Data = append([]byte(nil), enc[ch.Offset:ch.Offset+ch.Len]...)
			m.Check = check
			m.Done = ch.Done
		}
		msgs = append(msgs, m)
	}
	return msgs
}

// AnySnapshotStreams reports whether any peer transfer is in flight; when
// none is, the owning core can release its snapshot-encoding cache.
func (t *Tracker) AnySnapshotStreams() bool {
	for _, p := range t.peers {
		if p.state == StateSnapshot {
			return true
		}
	}
	return false
}

// SnapshotEncoder caches the wire encoding of a node's current snapshot
// (keyed by its boundary) so chunked transfers do not re-encode per peer
// per round, along with the encoding's IEEE CRC-32 (the chunk stream's
// content identity). Release it when no transfer is in flight — the cache
// pins a state-machine-sized byte slice otherwise.
type SnapshotEncoder struct {
	enc      []byte
	boundary types.Index
	check    uint32
}

// Encode returns the cached encoding and its checksum, refreshing both
// when the snapshot boundary moved.
func (e *SnapshotEncoder) Encode(snap types.Snapshot) ([]byte, uint32) {
	if e.enc == nil || e.boundary != snap.Meta.LastIndex {
		e.enc = types.EncodeSnapshot(snap)
		e.boundary = snap.Meta.LastIndex
		e.check = crc32.ChecksumIEEE(e.enc)
	}
	return e.enc, e.check
}

// Release drops the cached encoding.
func (e *SnapshotEncoder) Release() {
	e.enc = nil
	e.boundary = 0
	e.check = 0
}

// planChunks emits chunks from the cursor up to the inflight window
// (MaxInflight unacked chunks), advancing the cursor.
func (t *Tracker) planChunks(p *Progress, boundary types.Index, encLen int, now time.Duration) []Chunk {
	total := uint64(encLen)
	window := uint64(t.cfg.MaxInflight) * uint64(t.cfg.MaxChunk)
	var out []Chunk
	for p.cursor < total && p.cursor-p.acked < window {
		n := uint64(t.cfg.MaxChunk)
		if p.cursor+n > total {
			n = total - p.cursor
		}
		out = append(out, Chunk{
			Boundary: boundary,
			Offset:   p.cursor,
			Len:      n,
			Done:     p.cursor+n == total,
		})
		if p.cursor < p.maxSent {
			t.counters.Inc(CounterChunksResent)
		} else {
			t.counters.Inc(CounterChunksSent)
		}
		p.cursor += n
		if p.cursor > p.maxSent {
			p.maxSent = p.cursor
		}
	}
	if len(out) > 0 {
		p.chunkSentAt = now
		p.deadline = now + t.resendAfter(p)
	}
	return out
}

// --- Snapshot reassembly (follower side) ------------------------------------

// Reassembler rebuilds a chunked snapshot stream on the receiving side.
// One instance per node suffices. Streams are identified by (boundary,
// checksum) — the content, not the sender — so a successor leader whose
// snapshot encodes to the same bytes continues filling the same buffer
// where its predecessor stopped, and a sender whose encoding diverges
// (different checksum) restarts the buffer cleanly instead of corrupting
// it.
type Reassembler struct {
	boundary types.Index
	check    uint32
	buf      []byte
	total    uint64 // offset+len of the Done chunk (0 = not seen yet)
}

// Offer ingests one chunked InstallSnapshot message. It returns the
// reassembled snapshot when the stream completed (complete=true), and the
// acknowledgment offset — the contiguous byte count buffered — the caller
// should echo in its reply. Out-of-order chunks beyond the contiguous
// prefix are dropped (the ack offset tells the leader where to resume);
// duplicates are ignored. A snapshot that fails to decode resets the
// stream so the leader's resend can start clean.
func (r *Reassembler) Offer(boundary types.Index, check uint32, offset uint64, data []byte, done bool) (snap types.Snapshot, complete bool, ack uint64) {
	if boundary != r.boundary || check != r.check {
		// A different stream (new boundary, or a sender whose encoding of
		// the same boundary diverged): restart the buffer.
		r.boundary, r.check = boundary, check
		r.buf = r.buf[:0]
		r.total = 0
	}
	switch {
	case offset == uint64(len(r.buf)):
		r.buf = append(r.buf, data...)
	case offset < uint64(len(r.buf)):
		// Duplicate or overlap: already buffered; ack current position.
	default:
		// Gap (loss/reorder ahead of the prefix): drop; the leader resends
		// from our ack offset after its timeout.
	}
	if done {
		r.total = offset + uint64(len(data))
	}
	if r.total != 0 && uint64(len(r.buf)) >= r.total {
		total := r.total
		s, err := types.DecodeSnapshot(r.buf[:total])
		r.Reset()
		if err != nil {
			// Corrupt stream (hostile or mis-framed): restart rather than
			// panic; the leader re-sends from zero.
			return types.Snapshot{}, false, 0
		}
		return s, true, total
	}
	return types.Snapshot{}, false, uint64(len(r.buf))
}

// Pending reports the stream currently being reassembled: its boundary and
// the contiguous bytes buffered (0, 0 when none). Followers piggyback this
// on AppendEntries responses so a new leader can continue the stream.
func (r *Reassembler) Pending() (types.Index, uint64) {
	if r.boundary == 0 || len(r.buf) == 0 {
		return 0, 0
	}
	return r.boundary, uint64(len(r.buf))
}

// Reset drops any partial stream (e.g. after an install completed through
// another path), releasing the buffer — it can be snapshot-sized, and the
// node owning this reassembler lives long past the transfer.
func (r *Reassembler) Reset() {
	r.boundary, r.check = 0, 0
	r.buf = nil
	r.total = 0
}
