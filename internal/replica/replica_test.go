package replica

import (
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

func newTestTracker(maxChunk int) *Tracker {
	return NewTracker(Config{
		MaxInflight:   2,
		MaxChunk:      maxChunk,
		ResendTimeout: time.Second,
	}, nil)
}

func TestProgressProbeToReplicate(t *testing.T) {
	tr := newTestTracker(0)
	tr.Reset([]types.NodeID{"a", "b"}, 5)
	p := tr.Get("a")
	if p.State() != StateProbe || p.Next() != 5 {
		t.Fatalf("fresh progress = %v, want probe next=5", p)
	}
	// Probe sends do not advance Next.
	p.SentAppend(4, 3, 3*10, 0)
	if p.Next() != 5 {
		t.Fatalf("probe send advanced Next to %d", p.Next())
	}
	if !p.AckAppend(7, 0) {
		t.Fatal("ack did not advance match")
	}
	if p.State() != StateReplicate || p.Match() != 7 || p.Next() != 8 {
		t.Fatalf("after ack: %v, want replicate match=7 next=8", p)
	}
}

func TestProgressReplicateWindow(t *testing.T) {
	tr := newTestTracker(0)
	tr.Reset([]types.NodeID{"a"}, 1)
	p := tr.Get("a")
	p.AckAppend(0, 0) // flip to replicate without moving match
	if p.State() != StateReplicate {
		t.Fatalf("state = %v", p.State())
	}
	if !p.CanAppend() {
		t.Fatal("empty window should allow appends")
	}
	p.SentAppend(0, 3, 3*10, 0) // entries 1..3
	if p.Next() != 4 {
		t.Fatalf("optimistic Next = %d, want 4", p.Next())
	}
	p.SentAppend(3, 2, 2*10, 0) // entries 4..5
	if p.CanAppend() {
		t.Fatal("window of 2 should be full after two sends")
	}
	p.AckAppend(3, 0)
	if !p.CanAppend() {
		t.Fatal("ack should free the window")
	}
	if p.Next() != 6 {
		t.Fatalf("Next regressed to %d", p.Next())
	}
}

// TestRecoverStallRetransmitsLostWindow pins the lost-window escape
// hatch: when a full inflight window goes a resend timeout without ack
// progress (appends or acks dropped), the peer falls back to probing from
// Match+1 so the entries are retransmitted — replication must never stall
// permanently behind a full window.
func TestRecoverStallRetransmitsLostWindow(t *testing.T) {
	tr := newTestTracker(0) // window 2, resend timeout 1s
	tr.Reset([]types.NodeID{"a"}, 1)
	p := tr.Get("a")
	p.AckAppend(4, 0) // replicate, match=4
	p.SentAppend(4, 3, 3*10, 0)
	p.SentAppend(7, 3, 3*10, 0) // window full, entries 5..10 in flight (and lost)
	if p.CanAppend() {
		t.Fatal("window should be full")
	}
	// First blocked round arms the timer; before the timeout nothing fires.
	if tr.RecoverStall("a", time.Millisecond) {
		t.Fatal("stall recovery fired on the arming round")
	}
	if tr.RecoverStall("a", 500*time.Millisecond) {
		t.Fatal("stall recovery fired before the timeout")
	}
	// Past the timeout: fall back to probing from Match+1.
	if !tr.RecoverStall("a", time.Millisecond+time.Second) {
		t.Fatal("stall recovery did not fire after the timeout")
	}
	if p.State() != StateProbe || p.Next() != 5 || !p.CanAppend() {
		t.Fatalf("after recovery: %v, want probe next=5 sendable", p)
	}
	if tr.Counters().Get(CounterStallsRecovered) != 1 {
		t.Fatal("stall recovery not counted")
	}
	// Ack progress disarms a pending stall timer.
	p.AckAppend(5, 0)
	p.SentAppend(5, 3, 3*10, 0)
	p.SentAppend(8, 3, 3*10, 0)
	tr.RecoverStall("a", 2*time.Second) // arms
	p.AckAppend(8, 0)                   // progress frees the window
	if tr.RecoverStall("a", 4*time.Second) && p.State() == StateProbe {
		t.Fatal("stall recovery fired despite ack progress")
	}
}

// TestAckSnapshotRegressionResumesFromFollower pins the receiver-reset
// case: a follower that restarted (or discarded a corrupt stream)
// mid-transfer acks an offset below the leader's cursor; the leader must
// resume from the follower's actual position instead of wedging on a
// monotonic ack.
func TestAckSnapshotRegressionResumesFromFollower(t *testing.T) {
	tr := newTestTracker(10)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.PlanSnapshot("a", 50, 40, 0) // chunks at 0, 10 in flight
	tr.AckSnapshot("a", 50, 20, 0, time.Millisecond)
	tr.PlanSnapshot("a", 50, 40, time.Millisecond) // chunks at 20, 30
	// The follower restarts: its buffer is empty, it acks offset 0.
	tr.AckSnapshot("a", 50, 0, 0, 2*time.Millisecond)
	plan := tr.PlanSnapshot("a", 50, 40, 2*time.Millisecond)
	if len(plan) == 0 || plan[0].Offset != 0 {
		t.Fatalf("post-regression plan = %+v, want resend from offset 0", plan)
	}
}

func TestProgressRejectBacksOffToProbe(t *testing.T) {
	tr := newTestTracker(0)
	tr.Reset([]types.NodeID{"a"}, 10)
	p := tr.Get("a")
	p.AckAppend(9, 0)
	p.SentAppend(9, 4, 4*10, 0) // next=14
	p.RejectAppend(2)           // follower's log ends at 2
	if p.State() != StateProbe {
		t.Fatalf("state = %v, want probe", p.State())
	}
	if p.Next() != 3 {
		t.Fatalf("Next = %d, want hint+1 = 3", p.Next())
	}
	if !p.CanAppend() {
		t.Fatal("probe after reject must be able to send")
	}
}

func TestResetNextIgnoredDuringSnapshot(t *testing.T) {
	tr := newTestTracker(0)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.PlanSnapshot("a", 50, 100, 0)
	p := tr.Get("a")
	if p.State() != StateSnapshot {
		t.Fatalf("state = %v", p.State())
	}
	p.ResetNext(3) // vote rule must not restart the transfer
	if p.State() != StateSnapshot || p.PendingSnapshot() != 50 {
		t.Fatalf("vote reset disturbed the snapshot transfer: %v", p)
	}
}

func TestUnchunkedSnapshotSuppressionAndResend(t *testing.T) {
	tr := newTestTracker(0)
	tr.Reset([]types.NodeID{"a"}, 1)
	first := tr.PlanSnapshot("a", 50, 1000, 0)
	if len(first) != 1 || !first[0].Full || !first[0].Done {
		t.Fatalf("first plan = %+v, want one full send", first)
	}
	// Subsequent rounds before the timeout are suppressed.
	for now := 100 * time.Millisecond; now < time.Second; now += 100 * time.Millisecond {
		if got := tr.PlanSnapshot("a", 50, 1000, now); len(got) != 0 {
			t.Fatalf("suppressed round at %v produced %+v", now, got)
		}
	}
	if got := tr.Counters().Get(CounterPendingRounds); got == 0 {
		t.Fatal("pending rounds not counted")
	}
	// Past the timeout the full snapshot goes out again.
	again := tr.PlanSnapshot("a", 50, 1000, time.Second)
	if len(again) != 1 || !again[0].Full {
		t.Fatalf("post-timeout plan = %+v, want full resend", again)
	}
	if tr.Counters().Get(CounterFullResent) != 1 {
		t.Fatal("full resend not counted")
	}
	// Completion via reply.
	if !tr.AckSnapshot("a", 50, 0, 50, time.Second) {
		t.Fatal("install reply did not complete the transfer")
	}
	p := tr.Get("a")
	if p.State() != StateProbe || p.Match() != 50 || p.Next() != 51 {
		t.Fatalf("after completion: %v", p)
	}
}

func TestChunkedSnapshotWindowAndAcks(t *testing.T) {
	tr := newTestTracker(10) // chunk=10, window=2 chunks
	tr.Reset([]types.NodeID{"a"}, 1)
	plan := tr.PlanSnapshot("a", 50, 35, 0)
	if len(plan) != 2 {
		t.Fatalf("initial plan = %+v, want 2 chunks", plan)
	}
	if plan[0].Offset != 0 || plan[0].Len != 10 || plan[1].Offset != 10 || plan[1].Len != 10 {
		t.Fatalf("chunk layout wrong: %+v", plan)
	}
	// Window full: nothing more until an ack.
	if more := tr.PlanSnapshot("a", 50, 35, time.Millisecond); len(more) != 0 {
		t.Fatalf("window-full plan produced %+v", more)
	}
	// Peer acks the first chunk; one more chunk fits the window.
	tr.AckSnapshot("a", 50, 10, 0, 2*time.Millisecond)
	more := tr.PlanSnapshot("a", 50, 35, 2*time.Millisecond)
	if len(more) != 1 || more[0].Offset != 20 || more[0].Len != 10 {
		t.Fatalf("post-ack plan = %+v", more)
	}
	// Ack everything; the final short chunk carries Done.
	tr.AckSnapshot("a", 50, 20, 0, 3*time.Millisecond)
	tr.AckSnapshot("a", 50, 30, 0, 3*time.Millisecond)
	tail := tr.PlanSnapshot("a", 50, 35, 3*time.Millisecond)
	if len(tail) != 1 || tail[0].Offset != 30 || tail[0].Len != 5 || !tail[0].Done {
		t.Fatalf("tail plan = %+v", tail)
	}
	if !tr.AckSnapshot("a", 50, 35, 50, 4*time.Millisecond) {
		t.Fatal("install not completed")
	}
}

func TestChunkedSnapshotTimeoutRewindsToAck(t *testing.T) {
	tr := newTestTracker(10)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.PlanSnapshot("a", 50, 40, 0) // sends chunks at 0 and 10
	tr.AckSnapshot("a", 50, 10, 0, time.Millisecond)
	tr.PlanSnapshot("a", 50, 40, time.Millisecond) // sends chunk at 20
	// No further acks: after the resend timeout, transmission rewinds to
	// the acked offset (10), not to zero.
	plan := tr.PlanSnapshot("a", 50, 40, time.Millisecond+time.Second)
	if len(plan) == 0 || plan[0].Offset != 10 {
		t.Fatalf("post-timeout plan = %+v, want resend from offset 10", plan)
	}
	if tr.Counters().Get(CounterChunksResent) == 0 {
		t.Fatal("chunk resend not counted")
	}
}

func TestSnapshotBoundaryMoveRestartsStream(t *testing.T) {
	tr := newTestTracker(10)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.PlanSnapshot("a", 50, 40, 0)
	tr.AckSnapshot("a", 50, 10, 0, time.Millisecond)
	// Leader compacted again: new boundary restarts from offset 0.
	plan := tr.PlanSnapshot("a", 80, 60, 2*time.Millisecond)
	if len(plan) == 0 || plan[0].Offset != 0 || plan[0].Boundary != 80 {
		t.Fatalf("restarted plan = %+v", plan)
	}
}

func TestTrackerQuorums(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c", "d", "e")
	tr := newTestTracker(0)
	tr.Reset(cfg.Members, 1)
	tr.RecordSelf("a", 10)
	tr.Get("b").AckAppend(10, 0)
	tr.Get("c").AckAppend(9, 0)
	if !tr.MatchQuorum(cfg, 9, 3) {
		t.Fatal("match quorum at 9 should hold (a,b,c)")
	}
	if tr.MatchQuorum(cfg, 10, 3) {
		t.Fatal("match quorum at 10 should not hold (only a,b)")
	}
}

func TestTrackerFastMatchQuorum(t *testing.T) {
	cfg := types.NewConfig("a", "b", "c")
	tr := newTestTracker(0)
	tr.Reset(cfg.Members, 1)
	tr.RecordSelf("a", 4)
	tr.Get("b").RecordFastMatch(4)
	tr.Get("c").RecordFastMatch(3)
	if !tr.FastMatchQuorum(cfg, 4, 2) {
		t.Fatal("fast quorum of 2 at index 4 should hold")
	}
	if tr.FastMatchQuorum(cfg, 4, 3) {
		t.Fatal("fast quorum of 3 at index 4 should not hold")
	}
}

func TestReassemblerInOrderAndDuplicates(t *testing.T) {
	snap := types.Snapshot{
		Meta: types.SnapshotMeta{LastIndex: 7, LastTerm: 2, Config: types.NewConfig("a", "b")},
		Data: []byte("hello world state"),
	}
	enc := types.EncodeSnapshot(snap)
	var r Reassembler
	mid := len(enc) / 2
	if _, done, ack := r.Offer(7, 0, 0, enc[:mid], false); done || ack != uint64(mid) {
		t.Fatalf("first chunk: done=%v ack=%d", done, ack)
	}
	// Duplicate of the first chunk: ignored, ack unchanged.
	if _, done, ack := r.Offer(7, 0, 0, enc[:mid], false); done || ack != uint64(mid) {
		t.Fatalf("duplicate chunk: done=%v ack=%d", done, ack)
	}
	got, done, _ := r.Offer(7, 0, uint64(mid), enc[mid:], true)
	if !done {
		t.Fatal("stream did not complete")
	}
	if got.Meta.LastIndex != 7 || string(got.Data) != string(snap.Data) {
		t.Fatalf("reassembled snapshot mismatch: %v", got)
	}
}

func TestReassemblerGapDropsAndAcksPrefix(t *testing.T) {
	snap := types.Snapshot{Meta: types.SnapshotMeta{LastIndex: 3, LastTerm: 1}, Data: []byte("0123456789")}
	enc := types.EncodeSnapshot(snap)
	var r Reassembler
	third := len(enc) / 3
	r.Offer(3, 0, 0, enc[:third], false)
	// Chunk 3 arrives before chunk 2 (reorder): dropped, ack stays at the
	// contiguous prefix.
	_, done, ack := r.Offer(3, 0, uint64(2*third), enc[2*third:], true)
	if done || ack != uint64(third) {
		t.Fatalf("gap offer: done=%v ack=%d want ack=%d", done, ack, third)
	}
	// The leader resends from the ack point; stream completes.
	r.Offer(3, 0, uint64(third), enc[third:2*third], false)
	got, done, _ := r.Offer(3, 0, uint64(2*third), enc[2*third:], true)
	if !done || string(got.Data) != "0123456789" {
		t.Fatalf("completion after resend failed: done=%v got=%v", done, got)
	}
}

func TestReassemblerRestartsOnNewStream(t *testing.T) {
	snap := types.Snapshot{Meta: types.SnapshotMeta{LastIndex: 9, LastTerm: 1}, Data: []byte("abcdef")}
	enc := types.EncodeSnapshot(snap)
	var r Reassembler
	r.Offer(5, 0, 0, []byte("stale partial"), false)
	// A new (boundary, checksum) stream resets the buffer.
	got, done, _ := r.Offer(9, 0, 0, enc, true)
	if !done || got.Meta.LastIndex != 9 {
		t.Fatalf("new stream did not restart cleanly: done=%v got=%v", done, got)
	}
}

func TestReassemblerCorruptStreamResets(t *testing.T) {
	var r Reassembler
	_, done, ack := r.Offer(4, 0, 0, []byte{0xff, 0xff, 0xff}, true)
	if done {
		t.Fatal("corrupt stream reported complete")
	}
	if ack != 0 {
		t.Fatalf("corrupt stream acked %d, want 0 (restart)", ack)
	}
}

// --- Unified dispatch, byte budget, adaptive RTO, continuation --------------

// testLogView builds a LogView over a dense entry slice starting at index 1
// with snapIdx as the compaction boundary.
func testLogView(entries []types.Entry, snapIdx types.Index) LogView {
	return LogView{
		LastIndex: func() types.Index { return types.Index(len(entries)) },
		Term: func(i types.Index) types.Term {
			if i == 0 || int(i) > len(entries) {
				return 0
			}
			return entries[i-1].Term
		},
		Entries: func(lo, hi types.Index) []types.Entry {
			if lo < 1 {
				lo = 1
			}
			if int(hi) > len(entries) {
				hi = types.Index(len(entries))
			}
			if lo > hi {
				return nil
			}
			return entries[lo-1 : hi]
		},
		SnapshotIndex: func() types.Index { return snapIdx },
	}
}

func denseEntries(n int, payload int) []types.Entry {
	out := make([]types.Entry, n)
	for i := range out {
		out[i] = types.Entry{
			Index: types.Index(i + 1), Term: 1, Kind: types.KindNormal,
			Data: make([]byte, payload),
		}
	}
	return out
}

// TestAppendMessagesByteBudget pins the byte window: a catch-up batch is
// trimmed to the budget, the window refuses further appends until acks
// free bytes, and BytesInFlight never exceeds the budget (modulo the
// one-entry overshoot allowance, not exercised here).
func TestAppendMessagesByteBudget(t *testing.T) {
	entries := denseEntries(10, 100) // ~110 encoded bytes each
	lv := testLogView(entries, 0)
	perEntry := types.EntryWireSize(entries[0])
	budget := 3 * perEntry // room for exactly 3 entries
	tr := NewTracker(Config{MaxInflight: 100, MaxInflightBytes: budget, ResendTimeout: time.Second}, nil)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.Get("a").AckAppend(0, 0) // replicate state

	rc := Round{Term: 1, Leader: "l", Commit: 0, Seq: 1, NextHint: 1, Now: 0}
	msgs, snap := tr.AppendMessages("a", lv, rc)
	if snap || len(msgs) != 1 {
		t.Fatalf("plan = %v msgs, snapshot=%v", len(msgs), snap)
	}
	if got := len(msgs[0].Entries); got != 3 {
		t.Fatalf("budgeted batch carried %d entries, want 3", got)
	}
	if bif := tr.Get("a").BytesInFlight(); bif > budget {
		t.Fatalf("BytesInFlight %d exceeds budget %d", bif, budget)
	}
	if tr.Counters().Get(CounterBytesThrottled) == 0 {
		t.Fatal("byte throttling not counted")
	}
	// Window full: next round downgrades to a heartbeat.
	msgs, snap = tr.AppendMessages("a", lv, Round{Term: 1, Leader: "l", Seq: 2, NextHint: 1, Now: 0})
	if snap || len(msgs) != 1 || len(msgs[0].Entries) != 0 {
		t.Fatalf("full window round = %+v, want bare heartbeat", msgs)
	}
	// Acks free the window; the next batch ships.
	tr.Get("a").AckAppend(3, time.Millisecond)
	if bif := tr.Get("a").BytesInFlight(); bif != 0 {
		t.Fatalf("BytesInFlight after full ack = %d", bif)
	}
	msgs, _ = tr.AppendMessages("a", lv, Round{Term: 1, Leader: "l", Seq: 3, NextHint: 1, Now: time.Millisecond})
	if len(msgs) != 1 || len(msgs[0].Entries) != 3 || msgs[0].PrevLogIndex != 3 {
		t.Fatalf("post-ack batch = %+v", msgs)
	}
}

// TestAppendMessagesOversizedEntryProgresses: one entry larger than the
// entire budget must still ship (alone), or replication would wedge.
func TestAppendMessagesOversizedEntryProgresses(t *testing.T) {
	entries := denseEntries(3, 4096)
	lv := testLogView(entries, 0)
	tr := NewTracker(Config{MaxInflightBytes: 64, ResendTimeout: time.Second}, nil)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.Get("a").AckAppend(0, 0)
	msgs, _ := tr.AppendMessages("a", lv, Round{Term: 1, Leader: "l", Seq: 1, NextHint: 1})
	if len(msgs) != 1 || len(msgs[0].Entries) != 1 {
		t.Fatalf("oversized entry did not ship alone: %+v", msgs)
	}
}

// TestAppendMessagesSignalsSnapshot: a peer whose Next fell below the
// compaction boundary is reported as needing a snapshot, not appends.
func TestAppendMessagesSignalsSnapshot(t *testing.T) {
	entries := denseEntries(10, 10)
	lv := testLogView(entries, 5)
	tr := NewTracker(Config{ResendTimeout: time.Second}, nil)
	tr.Reset([]types.NodeID{"a"}, 3) // next=3 <= snapIdx=5
	if _, snap := tr.AppendMessages("a", lv, Round{Term: 1, Leader: "l", Seq: 1, NextHint: 3}); !snap {
		t.Fatal("peer below the boundary not flagged for snapshot")
	}
}

// TestHeartbeatMessageAnchorsAtMatch mirrors the cores' old sendHeartbeat.
func TestHeartbeatMessageAnchorsAtMatch(t *testing.T) {
	entries := denseEntries(10, 10)
	lv := testLogView(entries, 2)
	tr := NewTracker(Config{ResendTimeout: time.Second}, nil)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.Get("a").AckAppend(7, 0)
	hb := tr.HeartbeatMessage("a", lv, Round{Term: 1, Leader: "l", Seq: 4})
	if hb.PrevLogIndex != 7 || len(hb.Entries) != 0 || hb.Round != 4 {
		t.Fatalf("heartbeat = %+v, want anchored at match 7", hb)
	}
	// Untracked peer: anchored at the snapshot boundary.
	hb = tr.HeartbeatMessage("zz", lv, Round{Term: 1, Leader: "l", Seq: 4})
	if hb.PrevLogIndex != 2 {
		t.Fatalf("untracked heartbeat anchored at %d, want boundary 2", hb.PrevLogIndex)
	}
}

// TestAdaptiveResendTimeout pins the EWMA RTO: before samples the static
// timeout applies; after acks at a measured round trip the timeout tracks
// srtt+4*rttvar, clamped to the configured window.
func TestAdaptiveResendTimeout(t *testing.T) {
	cfg := Config{
		ResendTimeout:    400 * time.Millisecond,
		MinResendTimeout: 100 * time.Millisecond,
		MaxResendTimeout: 300 * time.Millisecond,
	}
	tr := NewTracker(cfg, nil)
	tr.Reset([]types.NodeID{"a"}, 1)
	p := tr.Get("a")
	if got := tr.ResendAfter("a"); got != 400*time.Millisecond {
		t.Fatalf("pre-sample RTO = %v, want static 400ms", got)
	}
	// Fast link: 2ms round trips. RTO = srtt+4var clamps up to the floor.
	p.AckAppend(0, 0)
	for i := 0; i < 8; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		p.SentAppend(types.Index(i), 1, 10, now)
		p.AckAppend(types.Index(i)+1, now+2*time.Millisecond)
	}
	if got := tr.ResendAfter("a"); got != cfg.MinResendTimeout {
		t.Fatalf("fast-link RTO = %v, want clamped to %v", got, cfg.MinResendTimeout)
	}
	if rtt := p.RTT(); rtt > 3*time.Millisecond || rtt == 0 {
		t.Fatalf("srtt = %v, want ~2ms", rtt)
	}
	// Slow link: a second peer observing 500ms round trips clamps to the
	// ceiling.
	tr.Reset([]types.NodeID{"b"}, 1)
	q := tr.Get("b")
	q.AckAppend(0, 0)
	for i := 0; i < 8; i++ {
		now := time.Duration(i) * time.Second
		q.SentAppend(types.Index(i), 1, 10, now)
		q.AckAppend(types.Index(i)+1, now+500*time.Millisecond)
	}
	if got := tr.ResendAfter("b"); got != cfg.MaxResendTimeout {
		t.Fatalf("slow-link RTO = %v, want clamped to %v", got, cfg.MaxResendTimeout)
	}
}

// TestSeedSnapshotContinuesStream pins leader-change continuation: a new
// leader seeded with the follower's acked offset plans chunks from there,
// never re-sending the prefix, and counts the resumption.
func TestSeedSnapshotContinuesStream(t *testing.T) {
	tr := NewTracker(Config{MaxInflight: 2, MaxChunk: 10, ResendTimeout: time.Second}, nil)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.SeedSnapshot("a", 50, 20, time.Millisecond)
	p := tr.Get("a")
	if p.State() != StateSnapshot || p.PendingSnapshot() != 50 {
		t.Fatalf("seeded progress = %v", p)
	}
	if acked, cursor := p.SnapshotCursor(); acked != 20 || cursor != 20 {
		t.Fatalf("seeded cursor = (%d, %d), want (20, 20)", acked, cursor)
	}
	plan := tr.PlanSnapshot("a", 50, 45, 2*time.Millisecond)
	if len(plan) == 0 {
		t.Fatal("no chunks planned after seeding")
	}
	for _, ch := range plan {
		if ch.Offset < 20 {
			t.Fatalf("continuation re-sent acked chunk at offset %d", ch.Offset)
		}
	}
	if tr.Counters().Get(CounterStreamsResumed) != 1 {
		t.Fatal("stream resumption not counted")
	}
	// Seeding again while streaming folds in as an ack, not a restart.
	tr.SeedSnapshot("a", 50, 30, 3*time.Millisecond)
	if tr.Counters().Get(CounterStreamsResumed) != 1 {
		t.Fatal("repeat seed double-counted")
	}
	if acked, _ := p.SnapshotCursor(); acked != 30 {
		t.Fatalf("repeat seed did not fold in ack: acked=%d", acked)
	}
	// Unchunked trackers ignore seeding (offset continuation is meaningless).
	tr2 := NewTracker(Config{ResendTimeout: time.Second}, nil)
	tr2.Reset([]types.NodeID{"a"}, 1)
	tr2.SeedSnapshot("a", 50, 20, 0)
	if tr2.Get("a").State() == StateSnapshot {
		t.Fatal("unchunked tracker accepted a seed")
	}
}

// TestReassemblerContinuesAcrossSenders pins the follower half of
// continuation: a new sender shipping the same (boundary, checksum) stream
// extends the existing buffer; a divergent checksum restarts it.
func TestReassemblerContinuesAcrossSenders(t *testing.T) {
	snap := types.Snapshot{
		Meta: types.SnapshotMeta{LastIndex: 7, LastTerm: 2, Config: types.NewConfig("a", "b")},
		Data: []byte("carried across a leader change"),
	}
	enc := types.EncodeSnapshot(snap)
	const check = 12345
	var r Reassembler
	mid := len(enc) / 2
	if _, _, ack := r.Offer(7, check, 0, enc[:mid], false); ack != uint64(mid) {
		t.Fatalf("first half acked %d", ack)
	}
	if b, off := r.Pending(); b != 7 || off != uint64(mid) {
		t.Fatalf("Pending = (%d, %d), want (7, %d)", b, off, mid)
	}
	// New leader, same content: the stream continues mid-offset.
	got, done, _ := r.Offer(7, check, uint64(mid), enc[mid:], true)
	if !done || got.Meta.LastIndex != 7 || string(got.Data) != string(snap.Data) {
		t.Fatalf("cross-sender continuation failed: done=%v got=%v", done, got)
	}
	if b, off := r.Pending(); b != 0 || off != 0 {
		t.Fatalf("Pending after completion = (%d, %d)", b, off)
	}
	// Divergent checksum: buffer restarts rather than mixing encodings.
	r.Offer(9, 111, 0, []byte("old-enc"), false)
	if _, _, ack := r.Offer(9, 222, 0, enc[:3], false); ack != 3 {
		t.Fatalf("divergent-check restart acked %d, want 3", ack)
	}
}

// TestSeedSnapshotBeyondEncodingRestarts pins the divergent-continuation
// guard: a follower's buffered offset at or beyond this leader's whole
// encoding can only belong to a different (longer) encoding of the same
// boundary — planning must restart from byte 0 instead of sending nothing
// forever.
func TestSeedSnapshotBeyondEncodingRestarts(t *testing.T) {
	tr := NewTracker(Config{MaxInflight: 2, MaxChunk: 10, ResendTimeout: time.Second}, nil)
	tr.Reset([]types.NodeID{"a"}, 1)
	tr.SeedSnapshot("a", 50, 100, time.Millisecond)          // follower buffered 100 bytes...
	plan := tr.PlanSnapshot("a", 50, 40, 2*time.Millisecond) // ...our encoding is 40
	if len(plan) == 0 || plan[0].Offset != 0 {
		t.Fatalf("divergent continuation plan = %+v, want restart from offset 0", plan)
	}
	// Offset exactly at our length is equally impossible to ack: restart.
	tr.Reset([]types.NodeID{"b"}, 1)
	tr.SeedSnapshot("b", 50, 40, time.Millisecond)
	plan = tr.PlanSnapshot("b", 50, 40, 2*time.Millisecond)
	if len(plan) == 0 || plan[0].Offset != 0 {
		t.Fatalf("at-length continuation plan = %+v, want restart from offset 0", plan)
	}
}
