package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// InProcNetwork connects hosts within one process. Each endpoint has a
// dispatcher goroutine and a bounded queue (overflow is dropped — the
// protocols tolerate loss). Optional latency and loss injection let the
// runnable examples emulate geo-distributed deployments in real time.
type InProcNetwork struct {
	mu        sync.Mutex
	endpoints map[types.NodeID]*inprocEndpoint
	rng       *rand.Rand
	closed    bool

	// Latency, when set, returns the one-way delivery delay for an
	// envelope. Nil means immediate delivery.
	Latency func(from, to types.NodeID) time.Duration
	// LossProb is the independent drop probability per message.
	LossProb float64
}

// NewInProcNetwork returns an empty in-process network. Seed drives loss
// sampling.
func NewInProcNetwork(seed int64) *InProcNetwork {
	return &InProcNetwork{
		endpoints: make(map[types.NodeID]*inprocEndpoint),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// inprocEndpoint is one node's attachment point.
type inprocEndpoint struct {
	net    *InProcNetwork
	id     types.NodeID
	mu     sync.Mutex
	h      func(types.Envelope)
	queue  chan types.Envelope
	closed bool
}

// ErrClosed reports use of a closed transport.
var ErrClosed = errors.New("runtime: transport closed")

// Endpoint creates (or returns) the transport for a node ID. A closed
// endpoint (its node was stopped) is replaced by a fresh one, so a node
// restarted from stable storage can rejoin the network under its old ID.
func (n *InProcNetwork) Endpoint(id types.NodeID) Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok && !ep.isClosed() {
		return ep
	}
	ep := &inprocEndpoint{
		net:   n,
		id:    id,
		queue: make(chan types.Envelope, 1024),
	}
	n.endpoints[id] = ep
	go ep.run()
	return ep
}

// Detach removes an endpoint (simulating a crash); future sends to it drop.
func (n *InProcNetwork) Detach(id types.NodeID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	delete(n.endpoints, id)
	n.mu.Unlock()
	if ep != nil {
		_ = ep.Close()
	}
}

// Close shuts the whole network down.
func (n *InProcNetwork) Close() {
	n.mu.Lock()
	eps := make([]*inprocEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.endpoints = make(map[types.NodeID]*inprocEndpoint)
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
}

func (ep *inprocEndpoint) run() {
	for env := range ep.queue {
		ep.mu.Lock()
		h := ep.h
		ep.mu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

// Send implements Transport.
func (ep *inprocEndpoint) Send(env types.Envelope) error {
	n := ep.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.LossProb > 0 && n.rng.Float64() < n.LossProb {
		n.mu.Unlock()
		return nil // dropped, like a lost datagram
	}
	dst, ok := n.endpoints[env.To]
	var delay time.Duration
	if ok && n.Latency != nil {
		delay = n.Latency(env.From, env.To)
	}
	n.mu.Unlock()
	if !ok {
		return nil // unroutable: drop silently, like UDP
	}
	env.Msg = types.CloneMessage(env.Msg)
	deliver := func() {
		dst.mu.Lock()
		defer dst.mu.Unlock()
		if dst.closed {
			return // racing Close: the message is lost, like a datagram
		}
		select {
		case dst.queue <- env:
		default:
			// Queue overflow: drop (backpressure as loss).
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
		return nil
	}
	deliver()
	return nil
}

// SetHandler implements Transport.
func (ep *inprocEndpoint) SetHandler(h func(types.Envelope)) {
	ep.mu.Lock()
	ep.h = h
	ep.mu.Unlock()
}

func (ep *inprocEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

// Close implements Transport.
func (ep *inprocEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.h = nil
	close(ep.queue)
	ep.mu.Unlock()
	return nil
}

var _ Transport = (*inprocEndpoint)(nil)

// String aids debugging.
func (ep *inprocEndpoint) String() string { return fmt.Sprintf("inproc(%s)", ep.id) }
