// Package runtime hosts the sans-io consensus state machines on real time:
// a goroutine-per-node host drives Step/Tick from a Transport and wall
// clock, in contrast to internal/harness which drives the same machines
// deterministically on virtual time. The public hraft package and the
// runnable examples are built on this runtime.
package runtime

import (
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Machine is the sans-io node interface the runtime can host. Both
// fastraft.Node, raft.Node and craft.Node satisfy it.
type Machine interface {
	// ID returns the node identity.
	ID() types.NodeID
	// Role returns the current role.
	Role() types.Role
	// Term returns the current term.
	Term() types.Term
	// LeaderID returns the node's view of the leader.
	LeaderID() types.NodeID
	// CommitIndex returns the commit index.
	CommitIndex() types.Index
	// Step delivers a message.
	Step(now time.Duration, env types.Envelope)
	// Tick advances time.
	Tick(now time.Duration)
	// NextDeadline reports when the node next needs Tick (0 = never).
	NextDeadline() time.Duration
	// Propose submits an application payload.
	Propose(now time.Duration, data []byte) types.ProposalID
	// TakeOutbox drains outgoing messages.
	TakeOutbox() []types.Envelope
	// TakeCommitted drains newly committed entries.
	TakeCommitted() []types.Entry
	// TakeResolved drains local proposal resolutions.
	TakeResolved() []types.Resolution
}

// GlobalCommitter is implemented by machines that additionally expose a
// global committed stream (C-Raft).
type GlobalCommitter interface {
	// TakeGlobalCommitted drains entries newly committed to the global
	// log.
	TakeGlobalCommitted() []types.Entry
}

// Reader is implemented by machines exposing the linearizable read
// subsystem (all three cores).
type Reader interface {
	// TakeReadDone drains resolved reads.
	TakeReadDone() []types.ReadDone
}

// Synced is implemented by machines whose outputs gate on storage
// durability (group-commit storage): the host forwards fsync completions
// through NotifyDurable so deferred outputs release.
type Synced interface {
	// SyncDone advances the machine's durability horizon.
	SyncDone(now time.Duration, durableLSN uint64)
}

// GroupEntry is a committed entry attributed to its consensus group, for
// multi-group (sharded) machines.
type GroupEntry struct {
	Group types.GroupID
	Entry types.Entry
}

// GroupResolution is a proposal resolution attributed to its group.
type GroupResolution struct {
	Group      types.GroupID
	Resolution types.Resolution
}

// GroupRead is a resolved read attributed to its group.
type GroupRead struct {
	Group types.GroupID
	Done  types.ReadDone
}

// GroupOutputs is implemented by machines multiplexing several consensus
// groups (shard.Manager): outputs carry the group they belong to, so the
// host can dispatch each group's commits to the right state-machine slice.
// Such machines return nothing from the flat Take* drains.
type GroupOutputs interface {
	// TakeGroupCommitted drains newly committed entries across all groups,
	// each tagged with its group, in per-group commit order.
	TakeGroupCommitted() []GroupEntry
	// TakeGroupResolved drains local proposal resolutions across groups.
	TakeGroupResolved() []GroupResolution
	// TakeGroupReadDone drains resolved reads across groups.
	TakeGroupReadDone() []GroupRead
}

// Transport moves envelopes between hosts.
type Transport interface {
	// Send dispatches one envelope asynchronously. Implementations may
	// drop messages (the protocols tolerate loss); they must never call
	// back into the sender synchronously.
	Send(env types.Envelope) error
	// SetHandler installs the delivery callback. The transport may invoke
	// it from any goroutine.
	SetHandler(h func(types.Envelope))
	// Close stops delivery.
	Close() error
}

// event is one drained output batch riding the apply pipeline; at is its
// enqueue instant (hist.apply_lag input).
type event struct {
	committed []types.Entry
	global    []types.Entry
	resolved  []types.Resolution
	reads     []types.ReadDone

	// Group-attributed outputs (multi-group machines only).
	gCommitted []GroupEntry
	gResolved  []GroupResolution
	gReads     []GroupRead

	at time.Time
}

// DefaultApplyQueue is the apply-pipeline depth (drained output batches
// buffered between the consensus goroutine and the callback dispatcher)
// when Callbacks.ApplyQueueSize is zero.
const DefaultApplyQueue = 256

// Host runs one Machine on wall-clock time over a Transport. All machine
// access is serialized by the host's mutex; output callbacks run on a
// single dispatcher goroutine in output order, decoupled from the
// consensus goroutine by a bounded apply pipeline.
type Host struct {
	mu      sync.Mutex
	machine Machine
	tr      Transport
	start   time.Time
	timer   *time.Timer
	stopped bool

	evCh     chan event
	evDone   chan struct{}
	stopOnce sync.Once

	cb Callbacks
}

// Callbacks observe a host's machine outputs. All callbacks run on a
// single dispatcher goroutine, in output order, never holding the host
// lock. The commit→apply pipeline between the consensus goroutine and the
// dispatcher is bounded: when the application cannot keep up, the
// consensus goroutine blocks on the full queue (backpressure) instead of
// buffering unboundedly.
type Callbacks struct {
	// OnCommit observes every committed entry, in commit order.
	OnCommit func(types.Entry)
	// OnGlobalCommit observes global-log commits for C-Raft machines.
	OnGlobalCommit func(types.Entry)
	// OnResolve observes local proposal resolutions.
	OnResolve func(types.Resolution)
	// OnReadDone observes resolved linearizable reads.
	OnReadDone func(types.ReadDone)
	// OnGroupCommit observes committed entries of multi-group machines,
	// tagged with their group, in per-group commit order.
	OnGroupCommit func(types.GroupID, types.Entry)
	// OnGroupResolve observes proposal resolutions of multi-group machines.
	OnGroupResolve func(types.GroupID, types.Resolution)
	// OnGroupReadDone observes resolved reads of multi-group machines.
	OnGroupReadDone func(types.GroupID, types.ReadDone)
	// ApplyQueueSize bounds the apply pipeline in drained output batches
	// (0 = DefaultApplyQueue).
	ApplyQueueSize int
	// Recorder, when set, observes the pipeline's enqueue→dispatch delay
	// (hist.apply_lag).
	Recorder *trace.Recorder
}

// NewHost starts hosting the machine: delivery begins immediately and the
// first tick is scheduled.
func NewHost(machine Machine, tr Transport, cb Callbacks) *Host {
	size := cb.ApplyQueueSize
	if size <= 0 {
		size = DefaultApplyQueue
	}
	h := &Host{
		machine: machine,
		tr:      tr,
		start:   time.Now(),
		evCh:    make(chan event, size),
		evDone:  make(chan struct{}),
		cb:      cb,
	}
	go h.dispatch()
	tr.SetHandler(h.deliver)
	h.mu.Lock()
	h.drainLocked()
	h.mu.Unlock()
	return h
}

// dispatch delivers pipelined machine outputs to the callbacks, in order.
func (h *Host) dispatch() {
	for {
		var ev event
		select {
		case ev = <-h.evCh:
		case <-h.evDone:
			return
		}
		h.cb.Recorder.ApplyLag(time.Since(ev.at))
		if h.cb.OnCommit != nil {
			for _, e := range ev.committed {
				h.cb.OnCommit(e)
			}
		}
		if h.cb.OnGlobalCommit != nil {
			for _, e := range ev.global {
				h.cb.OnGlobalCommit(e)
			}
		}
		if h.cb.OnResolve != nil {
			for _, r := range ev.resolved {
				h.cb.OnResolve(r)
			}
		}
		if h.cb.OnReadDone != nil {
			for _, r := range ev.reads {
				h.cb.OnReadDone(r)
			}
		}
		if h.cb.OnGroupCommit != nil {
			for _, ge := range ev.gCommitted {
				h.cb.OnGroupCommit(ge.Group, ge.Entry)
			}
		}
		if h.cb.OnGroupResolve != nil {
			for _, gr := range ev.gResolved {
				h.cb.OnGroupResolve(gr.Group, gr.Resolution)
			}
		}
		if h.cb.OnGroupReadDone != nil {
			for _, gr := range ev.gReads {
				h.cb.OnGroupReadDone(gr.Group, gr.Done)
			}
		}
	}
}

// now returns the host's monotonic time since start.
func (h *Host) now() time.Duration { return time.Since(h.start) }

// Machine returns the hosted machine. Callers must use Do for safe access.
func (h *Host) Machine() Machine { return h.machine }

// Do runs fn with exclusive access to the machine at the current host
// time, then drains outputs. It is how embedders call machine-specific
// methods (Join, Leave, ProposeEntry, ...).
func (h *Host) Do(fn func(now time.Duration, m Machine)) {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	fn(h.now(), h.machine)
	h.drainLocked()
	h.mu.Unlock()
}

// Propose submits a payload and returns its proposal ID.
func (h *Host) Propose(data []byte) types.ProposalID {
	var pid types.ProposalID
	h.Do(func(now time.Duration, m Machine) {
		pid = m.Propose(now, data)
	})
	return pid
}

// Stop halts the host: no more ticks or deliveries. The transport is
// closed. Events still in the apply pipeline are dropped, as before: a
// stopping application no longer observes commits. evDone closes before
// the lock is taken so a consensus goroutine blocked on a full pipeline
// unblocks and releases the lock.
func (h *Host) Stop() {
	h.stopOnce.Do(func() { close(h.evDone) })
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	if h.timer != nil {
		h.timer.Stop()
	}
	h.mu.Unlock()
	_ = h.tr.Close()
}

// NotifyDurable forwards a storage durability advance to the machine (when
// it gates on durability) and drains any outputs that released. It is safe
// to call from a storage flusher goroutine: the WAL invokes its completion
// callback without internal locks held.
func (h *Host) NotifyDurable(durableLSN uint64) {
	s, ok := h.machine.(Synced)
	if !ok {
		return
	}
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	s.SyncDone(h.now(), durableLSN)
	h.drainLocked()
	h.mu.Unlock()
}

func (h *Host) deliver(env types.Envelope) {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.machine.Step(h.now(), env)
	h.drainLocked()
	h.mu.Unlock()
}

func (h *Host) tick() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.machine.Tick(h.now())
	h.drainLocked()
	h.mu.Unlock()
}

// drainLocked flushes machine outputs and re-arms the tick timer. Callbacks
// fire after the lock is released to avoid re-entrancy deadlocks.
func (h *Host) drainLocked() {
	for _, env := range h.machine.TakeOutbox() {
		// Transport sends are asynchronous and may drop; errors are
		// treated as message loss, which the protocols tolerate.
		_ = h.tr.Send(env)
	}
	committed := h.machine.TakeCommitted()
	resolved := h.machine.TakeResolved()
	var global []types.Entry
	if gc, ok := h.machine.(GlobalCommitter); ok {
		global = gc.TakeGlobalCommitted()
	}
	var reads []types.ReadDone
	if rd, ok := h.machine.(Reader); ok {
		reads = rd.TakeReadDone()
	}
	var gCommitted []GroupEntry
	var gResolved []GroupResolution
	var gReads []GroupRead
	if gm, ok := h.machine.(GroupOutputs); ok {
		gCommitted = gm.TakeGroupCommitted()
		gResolved = gm.TakeGroupResolved()
		gReads = gm.TakeGroupReadDone()
	}
	if d := h.machine.NextDeadline(); d > 0 {
		wait := d - h.now()
		if wait < 0 {
			wait = 0
		}
		if h.timer == nil {
			h.timer = time.AfterFunc(wait, h.tick)
		} else {
			h.timer.Stop()
			h.timer.Reset(wait)
		}
	}
	if len(committed)+len(resolved)+len(global)+len(reads)+
		len(gCommitted)+len(gResolved)+len(gReads) == 0 {
		return
	}
	// Bounded handoff: a full pipeline blocks the consensus goroutine until
	// the dispatcher catches up (or the host stops). The dispatcher never
	// takes h.mu, so it always drains.
	ev := event{
		committed: committed, global: global, resolved: resolved, reads: reads,
		gCommitted: gCommitted, gResolved: gResolved, gReads: gReads,
		at: time.Now(),
	}
	select {
	case h.evCh <- ev:
	case <-h.evDone:
	}
}
