package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// echoMachine is a minimal Machine: it records deliveries, replies to
// JoinRequest with JoinRedirect, emits a committed entry per tick, and
// requests a tick every 10ms.
type echoMachine struct {
	mu        sync.Mutex
	id        types.NodeID
	delivered []types.Envelope
	outbox    []types.Envelope
	committed []types.Entry
	ticks     int
	now       time.Duration
}

func (m *echoMachine) ID() types.NodeID            { return m.id }
func (m *echoMachine) Role() types.Role            { return types.RoleFollower }
func (m *echoMachine) Term() types.Term            { return 1 }
func (m *echoMachine) LeaderID() types.NodeID      { return types.None }
func (m *echoMachine) CommitIndex() types.Index    { return 0 }
func (m *echoMachine) PendingProposals() int       { return 0 }
func (m *echoMachine) NextDeadline() time.Duration { return m.now + 10*time.Millisecond }

func (m *echoMachine) Step(now time.Duration, env types.Envelope) {
	m.now = now
	m.delivered = append(m.delivered, env)
	if jr, ok := env.Msg.(types.JoinRequest); ok {
		m.outbox = append(m.outbox, types.Envelope{
			From: m.id, To: jr.Site, Layer: types.LayerLocal,
			Msg: types.JoinRedirect{Leader: m.id},
		})
	}
}

func (m *echoMachine) Tick(now time.Duration) {
	m.now = now
	m.ticks++
	m.committed = append(m.committed, types.Entry{
		Index: types.Index(m.ticks), Kind: types.KindNoop,
	})
}

func (m *echoMachine) Propose(now time.Duration, data []byte) types.ProposalID {
	m.now = now
	return types.ProposalID{Proposer: m.id, Seq: uint64(len(m.delivered) + 1)}
}

func (m *echoMachine) TakeOutbox() []types.Envelope {
	out := m.outbox
	m.outbox = nil
	return out
}

func (m *echoMachine) TakeCommitted() []types.Entry {
	out := m.committed
	m.committed = nil
	return out
}

func (m *echoMachine) TakeResolved() []types.Resolution { return nil }

func TestInProcNetworkDelivery(t *testing.T) {
	net := NewInProcNetwork(1)
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	got := make(chan types.Envelope, 1)
	b.SetHandler(func(env types.Envelope) { got <- env })
	err := a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-got:
		if env.From != "a" {
			t.Fatalf("env = %v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestInProcNetworkLatency(t *testing.T) {
	net := NewInProcNetwork(1)
	defer net.Close()
	net.Latency = func(from, to types.NodeID) time.Duration { return 50 * time.Millisecond }
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	got := make(chan time.Time, 1)
	b.SetHandler(func(types.Envelope) { got <- time.Now() })
	start := time.Now()
	_ = a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}})
	select {
	case at := <-got:
		if d := at.Sub(start); d < 40*time.Millisecond {
			t.Fatalf("delivered after %s, want >= ~50ms", d)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestInProcNetworkLoss(t *testing.T) {
	net := NewInProcNetwork(7)
	defer net.Close()
	net.LossProb = 0.5
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	var delivered atomic.Int64
	b.SetHandler(func(types.Envelope) { delivered.Add(1) })
	const total = 2000
	for i := 0; i < total; i++ {
		_ = a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
			Msg: types.JoinRequest{Site: "a"}})
	}
	time.Sleep(200 * time.Millisecond)
	rate := float64(delivered.Load()) / total
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("delivery rate %.2f, want ~0.5", rate)
	}
}

func TestInProcNetworkDetach(t *testing.T) {
	net := NewInProcNetwork(1)
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	var count atomic.Int64
	b.SetHandler(func(types.Envelope) { count.Add(1) })
	net.Detach("b")
	if err := a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}}); err != nil {
		t.Fatalf("send to detached peer should drop silently: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatal("detached endpoint received a message")
	}
}

func TestHostTicksAndCommits(t *testing.T) {
	net := NewInProcNetwork(1)
	defer net.Close()
	m := &echoMachine{id: "a"}
	var commits atomic.Int64
	h := NewHost(m, net.Endpoint("a"), Callbacks{
		OnCommit: func(types.Entry) { commits.Add(1) },
	})
	defer h.Stop()
	deadline := time.After(2 * time.Second)
	for commits.Load() < 3 {
		select {
		case <-deadline:
			t.Fatalf("only %d commits observed", commits.Load())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestHostRoutesMessagesBothWays(t *testing.T) {
	net := NewInProcNetwork(1)
	defer net.Close()
	ma := &echoMachine{id: "a"}
	mb := &echoMachine{id: "b"}
	ha := NewHost(ma, net.Endpoint("a"), Callbacks{})
	hb := NewHost(mb, net.Endpoint("b"), Callbacks{})
	defer ha.Stop()
	defer hb.Stop()
	// a sends a JoinRequest to b via Do; b's machine answers with a
	// redirect, which must come back to a.
	ha.Do(func(now time.Duration, m Machine) {
		ma.outbox = append(ma.outbox, types.Envelope{
			From: "a", To: "b", Layer: types.LayerLocal,
			Msg: types.JoinRequest{Site: "a"},
		})
	})
	deadline := time.After(2 * time.Second)
	for {
		var redirected bool
		ha.Do(func(_ time.Duration, _ Machine) {
			for _, env := range ma.delivered {
				if _, ok := env.Msg.(types.JoinRedirect); ok {
					redirected = true
				}
			}
		})
		if redirected {
			return
		}
		select {
		case <-deadline:
			t.Fatal("redirect never arrived")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestHostStopIsIdempotentAndHaltsTicks(t *testing.T) {
	net := NewInProcNetwork(1)
	defer net.Close()
	m := &echoMachine{id: "a"}
	h := NewHost(m, net.Endpoint("a"), Callbacks{})
	h.Stop()
	h.Stop() // second stop must not panic
	var before int
	h.Do(func(_ time.Duration, _ Machine) { before = m.ticks }) // no-op when stopped
	time.Sleep(60 * time.Millisecond)
	after := m.ticks
	if after > before+1 {
		t.Fatalf("ticks continued after Stop: %d -> %d", before, after)
	}
}

func TestHostCommitOrderPreserved(t *testing.T) {
	net := NewInProcNetwork(1)
	defer net.Close()
	m := &echoMachine{id: "a"}
	var mu sync.Mutex
	var order []types.Index
	h := NewHost(m, net.Endpoint("a"), Callbacks{
		OnCommit: func(e types.Entry) {
			mu.Lock()
			order = append(order, e.Index)
			mu.Unlock()
		},
	})
	defer h.Stop()
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n >= 5 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d commits", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("commit order broken: %v", order)
		}
	}
}
