// Package session implements the replicated client-session registry that
// gives hraft exactly-once proposal semantics across proposer restarts and
// log compaction (the Raft-dissertation §6.3 discipline, adapted to Fast
// Raft's broadcast proposals).
//
// A session is opened by committing a KindSessionOpen entry; the entry's
// log index becomes the SessionID, so every replica assigns the same
// identity deterministically. Proposals made under a session carry
// (SessionID, SessionSeq) in the entry itself — an identity that, unlike a
// ProposalID, survives the proposer process. Every replica feeds committed
// entries through its Registry in log order:
//
//   - the first commit of a (session, seq) pair records seq → index in the
//     session's response cache and is applied normally;
//   - any later commit of the same pair is a duplicate: it occupies a log
//     slot (retries may legitimately reach the log twice) but is NOT
//     delivered to the state machine, and the proposer is answered with the
//     cached index instead.
//
// Because the registry is driven purely by committed entries it is
// identical on every replica, and because its image rides in the snapshot
// (types.Snapshot.Sessions) the dedup state survives both restarts and
// compaction — the two holes the in-memory PID map could not cover.
//
// Expiry is likewise deterministic: the leader periodically commits
// KindSessionExpire entries carrying a clock advance and TTL, and replicas
// expire sessions whose last activity is older than TTL at apply time. An LRU cap
// bounds the registry; response caches are individually capped, dropping
// the lowest sequence numbers first (a client retries only its most recent
// proposals).
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/hraft-io/hraft/internal/types"
)

// Defaults bounding registry memory. Both are deliberately generous: a
// session costs a few hundred bytes, and dedup correctness only requires
// that a response survive for as long as its proposer might retry it.
const (
	// DefaultMaxSessions is the LRU cap on concurrently open sessions.
	DefaultMaxSessions = 4096
	// DefaultMaxResponses caps each session's cached responses; lower
	// sequence numbers are evicted first.
	DefaultMaxResponses = 256
)

// ErrBadImage reports a registry image that fails to decode.
var ErrBadImage = errors.New("session: bad registry image")

// state is one session's replicated record.
type state struct {
	id      types.SessionID
	lastSeq uint64
	// responses maps applied sequence numbers to the log index they
	// committed at (the "cached response" a duplicate retry is answered
	// with). Bounded by maxResponses.
	responses map[uint64]types.Index
	// lastActive is the registry clock value when the session last opened
	// or applied an entry; expiry compares it against the leader clock.
	lastActive uint64
	// ackFloor is the highest client-acknowledged retry floor applied so
	// far; it only avoids re-scanning responses on repeated acks and is
	// deliberately not encoded (the responses map already reflects every
	// drop, so replicas and snapshots stay identical without it).
	ackFloor uint64
}

// Registry is the deterministic session table every replica maintains. It
// is not safe for concurrent use; the consensus cores are single-threaded
// per node.
type Registry struct {
	maxSessions  int
	maxResponses int
	// clock is the replicated session clock: the sum of all applied clock
	// advances (nanoseconds), identical on every replica and monotonic by
	// construction.
	clock    uint64
	sessions map[types.SessionID]*state
}

// New returns an empty registry with default bounds.
func New() *Registry {
	return &Registry{
		maxSessions:  DefaultMaxSessions,
		maxResponses: DefaultMaxResponses,
		sessions:     make(map[types.SessionID]*state),
	}
}

// NewBounded returns an empty registry with explicit bounds (tests and
// embedders with tight memory budgets). Non-positive values fall back to
// the defaults.
func NewBounded(maxSessions, maxResponses int) *Registry {
	r := New()
	if maxSessions > 0 {
		r.maxSessions = maxSessions
	}
	if maxResponses > 0 {
		r.maxResponses = maxResponses
	}
	return r
}

// Len returns the number of open sessions.
func (r *Registry) Len() int { return len(r.sessions) }

// Clock returns the latest applied leader clock.
func (r *Registry) Clock() uint64 { return r.clock }

// Has reports whether the session is open.
func (r *Registry) Has(id types.SessionID) bool {
	_, ok := r.sessions[id]
	return ok
}

// LastSeq returns the session's highest applied sequence number (0 if the
// session is unknown).
func (r *Registry) LastSeq(id types.SessionID) uint64 {
	if s, ok := r.sessions[id]; ok {
		return s.lastSeq
	}
	return 0
}

// ApplyOpen registers the session opened by a KindSessionOpen entry
// committed at idx. Re-applying the same open (log replay) is a no-op. If
// the registry is full, the least-recently-active session is evicted —
// deterministically, since lastActive is replicated state.
func (r *Registry) ApplyOpen(idx types.Index) types.SessionID {
	id := types.SessionID(idx)
	if s, ok := r.sessions[id]; ok {
		s.lastActive = r.clock
		return id
	}
	for len(r.sessions) >= r.maxSessions {
		r.evictLRU()
	}
	r.sessions[id] = &state{
		id:         id,
		responses:  make(map[uint64]types.Index),
		lastActive: r.clock,
	}
	return id
}

// evictLRU removes the least-recently-active session, breaking ties by the
// smaller ID so every replica evicts the same one.
func (r *Registry) evictLRU() {
	var victim *state
	for _, s := range r.sessions {
		if victim == nil || s.lastActive < victim.lastActive ||
			(s.lastActive == victim.lastActive && s.id < victim.id) {
			victim = s
		}
	}
	if victim != nil {
		delete(r.sessions, victim.id)
	}
}

// ApplyExpire applies a committed KindSessionExpire entry: advance the
// registry clock by the leader-measured delta and drop every session idle
// longer than the TTL the entry carries (the leader's TTL travels in the
// entry, so a configuration mismatch between replicas cannot diverge
// their tables). The entry carries a delta rather than an absolute leader
// clock so the replicated clock is monotonic by construction: leaders of
// different uptimes, or a restarted leader whose process clock reset,
// can neither stall expiry nor trigger it prematurely.
func (r *Registry) ApplyExpire(advance, ttl uint64) {
	r.clock += advance
	if ttl == 0 {
		return
	}
	for id, s := range r.sessions {
		if r.clock-s.lastActive > ttl && s.lastActive < r.clock {
			delete(r.sessions, id)
		}
	}
}

// ApplyNormal folds the commit of a session-tagged application entry at
// idx into the registry.
//
//   - known=false: the session is unknown (expired or never opened); the
//     entry must NOT be applied — with the dedup state gone, applying
//     could be a second apply.
//   - dup=true: (id, seq) was already applied; cached is the original
//     commit index (0 if that response was evicted). The entry must NOT be
//     applied again.
//   - otherwise the entry is applied for the first time: the response is
//     recorded and the caller delivers it to the state machine.
//
// ack is the entry's piggybacked retry floor (Entry.SessionAck; 0 = none):
// the client promises never to retry sequences below it, so their cached
// responses are dropped now instead of lingering until the per-session
// response cap evicts them. Applied on duplicates too — the floor is
// client state, not entry state.
func (r *Registry) ApplyNormal(id types.SessionID, seq uint64, ack uint64, idx types.Index) (cached types.Index, dup, known bool) {
	s, ok := r.sessions[id]
	if !ok {
		return 0, false, false
	}
	s.lastActive = r.clock
	if ack > s.ackFloor {
		for q := range s.responses {
			if q < ack {
				delete(s.responses, q)
			}
		}
		s.ackFloor = ack
	}
	if seq <= s.lastSeq {
		return s.responses[seq], true, true
	}
	s.lastSeq = seq
	s.responses[seq] = idx
	for len(s.responses) > r.maxResponses {
		min := uint64(0)
		first := true
		for q := range s.responses {
			if first || q < min {
				min, first = q, false
			}
		}
		delete(s.responses, min)
	}
	return idx, false, true
}

// ResponseCount returns the number of cached responses for the session
// (0 if unknown); tests use it to watch ack-driven truncation.
func (r *Registry) ResponseCount(id types.SessionID) int {
	if s, ok := r.sessions[id]; ok {
		return len(s.responses)
	}
	return 0
}

// LookupDup reports whether (id, seq) was already applied, without mutating
// the registry. Cores use it to short-circuit duplicate proposals before
// they reach the log: at propose time on the proposer, at insert time on
// followers, and at decide time on the leader.
func (r *Registry) LookupDup(id types.SessionID, seq uint64) (cached types.Index, dup bool) {
	s, ok := r.sessions[id]
	if !ok || seq > s.lastSeq {
		return 0, false
	}
	return s.responses[seq], true
}

// ApplyEntry routes one committed entry into the registry, mirroring what
// the consensus cores do at apply time but discarding the dedup verdict.
// It is used to replay retained log entries when advancing a
// snapshot-aligned registry image (see StateAt).
func (r *Registry) ApplyEntry(e types.Entry) {
	switch e.Kind {
	case types.KindSessionOpen:
		r.ApplyOpen(e.Index)
	case types.KindSessionExpire:
		advance, ttl, err := DecodeExpire(e.Data)
		if err != nil {
			// A committed expire entry that cannot decode is a bug in the
			// proposing leader, not a runtime condition.
			panic(fmt.Sprintf("session: corrupt expire entry at %d: %v", e.Index, err))
		}
		r.ApplyExpire(advance, ttl)
	case types.KindNormal:
		if !e.Session.IsZero() {
			r.ApplyNormal(e.Session, e.SessionSeq, e.SessionAck, e.Index)
		}
	}
}

// --- Snapshot image ---------------------------------------------------------

// Encode serializes the registry deterministically (sessions ascending by
// ID, responses ascending by seq) for inclusion in types.Snapshot.Sessions.
func (r *Registry) Encode() []byte {
	if len(r.sessions) == 0 && r.clock == 0 {
		return nil
	}
	var buf []byte
	u64 := func(v uint64) { buf = binary.AppendUvarint(buf, v) }
	u64(r.clock)
	ids := make([]types.SessionID, 0, len(r.sessions))
	for id := range r.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	u64(uint64(len(ids)))
	for _, id := range ids {
		s := r.sessions[id]
		u64(uint64(s.id))
		u64(s.lastSeq)
		u64(s.lastActive)
		seqs := make([]uint64, 0, len(s.responses))
		for q := range s.responses {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		u64(uint64(len(seqs)))
		for _, q := range seqs {
			u64(q)
			u64(uint64(s.responses[q]))
		}
	}
	return buf
}

// Restore replaces the registry contents with a decoded image. A nil/empty
// image yields an empty registry (no sessions ever opened).
func (r *Registry) Restore(image []byte) error {
	clock := uint64(0)
	sessions := make(map[types.SessionID]*state)
	if len(image) > 0 {
		off := 0
		var derr error
		u64 := func() uint64 {
			if derr != nil {
				return 0
			}
			v, n := binary.Uvarint(image[off:])
			if n <= 0 {
				derr = ErrBadImage
				return 0
			}
			off += n
			return v
		}
		clock = u64()
		count := u64()
		if derr == nil && count > uint64(len(image)) {
			return ErrBadImage
		}
		for i := uint64(0); i < count && derr == nil; i++ {
			s := &state{
				id:         types.SessionID(u64()),
				lastSeq:    u64(),
				lastActive: u64(),
			}
			n := u64()
			if derr == nil && n > uint64(len(image)) {
				return ErrBadImage
			}
			s.responses = make(map[uint64]types.Index, n)
			for j := uint64(0); j < n && derr == nil; j++ {
				q := u64()
				s.responses[q] = types.Index(u64())
			}
			sessions[s.id] = s
		}
		if derr != nil {
			return derr
		}
	}
	r.clock = clock
	r.sessions = sessions
	return nil
}

// StateAt reconstructs the registry image as of a snapshot boundary: the
// previous boundary's image advanced by the retained entries in
// (prevBoundary, boundary]. The live registry cannot be encoded directly —
// it reflects the commit index, which may run ahead of the boundary when
// the application applies asynchronously — so the cores rebuild the
// boundary-aligned image from the log they are about to compact.
func StateAt(prevImage []byte, entries []types.Entry) ([]byte, error) {
	r := New()
	if err := r.Restore(prevImage); err != nil {
		return nil, err
	}
	for _, e := range entries {
		r.ApplyEntry(e)
	}
	return r.Encode(), nil
}

// --- Expire payload ---------------------------------------------------------

// EncodeExpire serializes a KindSessionExpire payload: the clock advance
// the leader measured since its previous clock entry (nanoseconds) and
// the session TTL (nanoseconds; 0 = advance the clock without expiring).
func EncodeExpire(advance, ttl uint64) []byte {
	buf := binary.AppendUvarint(nil, advance)
	return binary.AppendUvarint(buf, ttl)
}

// DecodeExpire parses a payload produced by EncodeExpire.
func DecodeExpire(data []byte) (advance, ttl uint64, err error) {
	advance, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, ErrBadImage
	}
	ttl, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return 0, 0, ErrBadImage
	}
	return advance, ttl, nil
}
