package session

import (
	"bytes"
	"testing"

	"github.com/hraft-io/hraft/internal/types"
)

func TestOpenAndDedup(t *testing.T) {
	r := New()
	id := r.ApplyOpen(5)
	if id != 5 {
		t.Fatalf("session id = %v, want 5", id)
	}
	if !r.Has(5) {
		t.Fatal("session 5 not registered")
	}

	// First apply of seq 1 is fresh.
	idx, dup, known := r.ApplyNormal(5, 1, 0, 10)
	if !known || dup || idx != 10 {
		t.Fatalf("first apply: idx=%d dup=%v known=%v", idx, dup, known)
	}
	// Re-apply (a retry that reached the log twice) is a duplicate with the
	// original index cached.
	idx, dup, known = r.ApplyNormal(5, 1, 0, 17)
	if !known || !dup || idx != 10 {
		t.Fatalf("duplicate apply: idx=%d dup=%v known=%v", idx, dup, known)
	}
	// Read-only lookup agrees.
	if idx, dup := r.LookupDup(5, 1); !dup || idx != 10 {
		t.Fatalf("LookupDup: idx=%d dup=%v", idx, dup)
	}
	if _, dup := r.LookupDup(5, 2); dup {
		t.Fatal("seq 2 wrongly flagged duplicate")
	}
	// Unknown session: not applied.
	if _, _, known := r.ApplyNormal(99, 1, 0, 20); known {
		t.Fatal("unknown session wrongly known")
	}
}

func TestSeqGapsAndMonotonicLastSeq(t *testing.T) {
	r := New()
	r.ApplyOpen(1)
	if _, dup, _ := r.ApplyNormal(1, 3, 0, 7); dup {
		t.Fatal("seq 3 after gap wrongly duplicate")
	}
	// Below lastSeq counts as duplicate even when never recorded (seq 2
	// never committed): the registry cannot distinguish it from an evicted
	// response and must err toward not re-applying.
	if _, dup, _ := r.ApplyNormal(1, 2, 0, 8); !dup {
		t.Fatal("seq 2 below lastSeq not flagged duplicate")
	}
	if r.LastSeq(1) != 3 {
		t.Fatalf("lastSeq = %d, want 3", r.LastSeq(1))
	}
}

func TestResponseCacheEviction(t *testing.T) {
	r := NewBounded(0, 4)
	r.ApplyOpen(1)
	for seq := uint64(1); seq <= 6; seq++ {
		r.ApplyNormal(1, seq, 0, types.Index(100+seq))
	}
	// Seqs 1 and 2 were evicted: still duplicates, but the response is gone.
	if idx, dup := r.LookupDup(1, 1); !dup || idx != 0 {
		t.Fatalf("evicted seq 1: idx=%d dup=%v", idx, dup)
	}
	// Recent seqs keep their responses.
	if idx, dup := r.LookupDup(1, 6); !dup || idx != 106 {
		t.Fatalf("recent seq 6: idx=%d dup=%v", idx, dup)
	}
}

func TestLRUEviction(t *testing.T) {
	r := NewBounded(2, 0)
	r.ApplyOpen(1)
	r.ApplyExpire(10, 0) // clock 10
	r.ApplyOpen(2)       // lastActive 10
	r.ApplyExpire(10, 0) // clock 20
	r.ApplyOpen(3)       // full: evicts session 1 (lastActive 0)
	if r.Has(1) || !r.Has(2) || !r.Has(3) {
		t.Fatalf("LRU eviction wrong: has1=%v has2=%v has3=%v", r.Has(1), r.Has(2), r.Has(3))
	}
}

func TestAgeExpiry(t *testing.T) {
	r := New()
	r.ApplyOpen(1)       // lastActive 0
	r.ApplyExpire(50, 0) // clock 50
	r.ApplyOpen(2)       // lastActive 50
	// TTL 60 at clock 100: session 1 (idle 100) expires, session 2 (idle
	// 50) survives.
	r.ApplyExpire(50, 60) // clock 100
	if r.Has(1) {
		t.Fatal("session 1 not expired")
	}
	if !r.Has(2) {
		t.Fatal("session 2 wrongly expired")
	}
	// Activity refreshes the idle timer.
	r.ApplyNormal(2, 1, 0, 7) // lastActive = 100
	r.ApplyExpire(50, 60)     // clock 150, idle 50 < TTL
	if !r.Has(2) {
		t.Fatal("active session 2 expired")
	}
	// A zero advance (a new leader's first clock entry) changes nothing.
	r.ApplyExpire(0, 60)
	if r.Clock() != 150 || !r.Has(2) {
		t.Fatalf("zero advance mutated state: clock=%d has2=%v", r.Clock(), r.Has(2))
	}
}

func TestEncodeRestoreRoundTrip(t *testing.T) {
	r := New()
	r.ApplyOpen(3)
	r.ApplyExpire(42, 0)
	r.ApplyOpen(9)
	r.ApplyNormal(3, 1, 0, 11)
	r.ApplyNormal(3, 2, 0, 12)
	r.ApplyNormal(9, 5, 0, 30)

	img := r.Encode()
	// Deterministic: re-encoding yields identical bytes.
	if !bytes.Equal(img, r.Encode()) {
		t.Fatal("Encode not deterministic")
	}

	r2 := New()
	if err := r2.Restore(img); err != nil {
		t.Fatal(err)
	}
	if r2.Clock() != 42 || r2.Len() != 2 {
		t.Fatalf("restored clock=%d len=%d", r2.Clock(), r2.Len())
	}
	if idx, dup := r2.LookupDup(3, 2); !dup || idx != 12 {
		t.Fatalf("restored response: idx=%d dup=%v", idx, dup)
	}
	if idx, dup := r2.LookupDup(9, 5); !dup || idx != 30 {
		t.Fatalf("restored response: idx=%d dup=%v", idx, dup)
	}
	if !bytes.Equal(r2.Encode(), img) {
		t.Fatal("restore/encode round trip diverged")
	}

	// Empty image restores an empty registry.
	r3 := New()
	if err := r3.Restore(nil); err != nil || r3.Len() != 0 {
		t.Fatalf("nil image: err=%v len=%d", err, r3.Len())
	}
	// Truncated image errors rather than half-loading.
	if err := New().Restore(img[:len(img)-1]); err == nil {
		t.Fatal("truncated image decoded without error")
	}
}

func TestStateAtReplay(t *testing.T) {
	// Base image: session 4 open with seq 1 applied.
	base := New()
	base.ApplyOpen(4)
	base.ApplyNormal(4, 1, 0, 5)
	prev := base.Encode()

	entries := []types.Entry{
		{Index: 6, Kind: types.KindNormal, Session: 4, SessionSeq: 2},
		{Index: 7, Kind: types.KindSessionOpen},
		{Index: 8, Kind: types.KindSessionExpire, Data: EncodeExpire(99, 0)},
	}
	img, err := StateAt(prev, entries)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.Restore(img); err != nil {
		t.Fatal(err)
	}
	if !r.Has(4) || !r.Has(7) {
		t.Fatalf("replayed registry missing sessions: has4=%v has7=%v", r.Has(4), r.Has(7))
	}
	if idx, dup := r.LookupDup(4, 2); !dup || idx != 6 {
		t.Fatalf("replayed response: idx=%d dup=%v", idx, dup)
	}
	if r.Clock() != 99 {
		t.Fatalf("replayed clock = %d, want 99", r.Clock())
	}
}

func TestExpirePayloadRoundTrip(t *testing.T) {
	data := EncodeExpire(123456789, 5000)
	clock, ttl, err := DecodeExpire(data)
	if err != nil || clock != 123456789 || ttl != 5000 {
		t.Fatalf("round trip: clock=%d ttl=%d err=%v", clock, ttl, err)
	}
	if _, _, err := DecodeExpire(nil); err == nil {
		t.Fatal("empty payload decoded without error")
	}
}

// TestAckTruncatesResponses pins client-acknowledged response truncation:
// an entry carrying a retry floor drops every cached response below it on
// commit, on fresh applies and duplicates alike, without touching the
// dedup watermarks.
func TestAckTruncatesResponses(t *testing.T) {
	r := New()
	r.ApplyOpen(1)
	for seq := uint64(1); seq <= 5; seq++ {
		r.ApplyNormal(1, seq, 0, types.Index(100+seq))
	}
	if got := r.ResponseCount(1); got != 5 {
		t.Fatalf("cached responses = %d, want 5", got)
	}
	// Seq 6 arrives acknowledging everything below 4.
	r.ApplyNormal(1, 6, 4, 106)
	if got := r.ResponseCount(1); got != 3 { // 4, 5, 6 remain
		t.Fatalf("responses after ack 4 = %d, want 3", got)
	}
	// Below the floor: still a duplicate, but the cached index is gone
	// (the client promised not to retry it).
	if idx, dup := r.LookupDup(1, 2); !dup || idx != 0 {
		t.Fatalf("acked seq 2: idx=%d dup=%v", idx, dup)
	}
	// At and above the floor: responses intact.
	if idx, dup := r.LookupDup(1, 4); !dup || idx != 104 {
		t.Fatalf("kept seq 4: idx=%d dup=%v", idx, dup)
	}
	// A duplicate retry carrying a newer floor still truncates.
	r.ApplyNormal(1, 6, 6, 999)
	if got := r.ResponseCount(1); got != 1 { // only 6 remains
		t.Fatalf("responses after dup-carried ack 6 = %d, want 1", got)
	}
	if r.LastSeq(1) != 6 {
		t.Fatalf("lastSeq = %d, want 6 (acks must not move the watermark)", r.LastSeq(1))
	}
	// A stale (lower) floor changes nothing.
	r.ApplyNormal(1, 7, 2, 107)
	if got := r.ResponseCount(1); got != 2 { // 6 and 7
		t.Fatalf("responses after stale ack = %d, want 2", got)
	}
	// Determinism: a registry restored from the image agrees byte-for-byte.
	r2 := New()
	if err := r2.Restore(r.Encode()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r2.Encode(), r.Encode()) {
		t.Fatal("ack truncation diverged restore/encode round trip")
	}
}
