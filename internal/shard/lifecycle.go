package shard

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

// splitPayload rides in a KindShardSplit entry committed in the parent
// group's log: keys >= Pivot move to the new Daughter group.
type splitPayload struct {
	Daughter types.GroupID `json:"d"`
	Pivot    string        `json:"p"`
}

// mergePayload rides in a KindShardMerge entry committed in the retiring
// (right) group's log: its range folds into the Left neighbor.
type mergePayload struct {
	Left types.GroupID `json:"l"`
}

// metaRecord is one routing change journaled in Config.Meta, replayed at
// restart to rebuild the range table on top of the initial GroupSpecs.
type metaRecord struct {
	Op       string        `json:"op"` // "split" | "merge"
	Daughter types.GroupID `json:"d,omitempty"`
	Pivot    string        `json:"p,omitempty"`
	Left     types.GroupID `json:"l,omitempty"`
	Right    types.GroupID `json:"r,omitempty"`
}

// Split proposes carving the range [pivot, next) out of the group owning
// pivot into a new group named daughter. The split entry commits through
// the parent group's own consensus, so every member applies it at the same
// log position: each creates the daughter (seeded identically through
// Config.SplitSeed), inserts the same routing row, and proposals for moved
// keys flow to the daughter from that point on. Proposals already in flight
// in the parent commit exactly once — in the parent, where they started.
func (m *Manager) Split(now time.Duration, daughter types.GroupID, pivot string) (types.ProposalID, error) {
	m.now = now
	if daughter == "" || pivot == "" {
		return types.ProposalID{}, fmt.Errorf("shard: split needs a daughter ID and a non-empty pivot")
	}
	if _, exists := m.groups[daughter]; exists {
		return types.ProposalID{}, fmt.Errorf("shard: group %q already exists", daughter)
	}
	parent := m.Route(pivot)
	if start := m.rangeStart(parent); start == pivot {
		return types.ProposalID{}, fmt.Errorf("shard: pivot %q is group %q's own start", pivot, parent)
	}
	data, err := json.Marshal(splitPayload{Daughter: daughter, Pivot: pivot})
	if err != nil {
		return types.ProposalID{}, err
	}
	g := m.groups[parent]
	pid := g.core.ProposeEntryPID(now, types.Entry{Kind: types.KindShardSplit, Data: data}, m.nextPID())
	return pid, nil
}

// Merge proposes folding the named group's range into its left neighbor.
// The merge entry commits through the retiring group's own consensus, so it
// serializes after everything that group already accepted: every member
// removes the same routing row at the same log position, new proposals for
// the range flow to the left neighbor, and the retiring core stays alive
// (retired) until its in-flight proposals drain.
func (m *Manager) Merge(now time.Duration, right types.GroupID) (types.ProposalID, error) {
	m.now = now
	i := m.rangeIndex(right)
	if i < 0 {
		return types.ProposalID{}, fmt.Errorf("shard: group %q owns no range", right)
	}
	if i == 0 {
		return types.ProposalID{}, fmt.Errorf("shard: group %q owns the first range; merge its right neighbor instead", right)
	}
	left := m.ranges[i-1].Group
	data, err := json.Marshal(mergePayload{Left: left})
	if err != nil {
		return types.ProposalID{}, err
	}
	g := m.groups[right]
	pid := g.core.ProposeEntryPID(now, types.Entry{Kind: types.KindShardMerge, Data: data}, m.nextPID())
	return pid, nil
}

// TransferLeader orders the named group's leadership to move to the target
// process (see fastraft.Node.TransferLeader). Returns false when this
// process does not lead that group or the target is not a member.
func (m *Manager) TransferLeader(gid types.GroupID, target types.NodeID) bool {
	g, ok := m.groups[gid]
	if !ok {
		return false
	}
	if !g.core.TransferLeader(target) {
		return false
	}
	m.statTransfers++
	return true
}

// rangeIndex returns the routing row owned by gid (-1 if none).
func (m *Manager) rangeIndex(gid types.GroupID) int {
	for i, r := range m.ranges {
		if r.Group == gid {
			return i
		}
	}
	return -1
}

// rangeStart returns the inclusive lower bound of gid's range.
func (m *Manager) rangeStart(gid types.GroupID) string {
	if i := m.rangeIndex(gid); i >= 0 {
		return m.ranges[i].Start
	}
	return ""
}

// applySplit handles a committed KindShardSplit in group g: insert the
// daughter's routing row and open its core. Idempotent — a duplicate or
// stale split (the pivot no longer routed by g) is ignored, so re-emitted
// commits after a restart are harmless.
func (m *Manager) applySplit(g *group, e types.Entry) {
	var p splitPayload
	if err := json.Unmarshal(e.Data, &p); err != nil || p.Daughter == "" || p.Pivot == "" {
		return
	}
	if m.Route(p.Pivot) != g.id || m.rangeStart(g.id) == p.Pivot {
		return
	}
	m.insertRange(rangeEntry{Start: p.Pivot, Group: p.Daughter})
	m.statSplits++
	m.journal(metaRecord{Op: "split", Daughter: p.Daughter, Pivot: p.Pivot})
	if _, exists := m.groups[p.Daughter]; exists {
		return
	}
	boot := g.core.Config() // the parent's membership at the split position
	st := m.cfg.Storage(p.Daughter)
	if m.cfg.SplitSeed != nil && storageEmpty(st) {
		// Every member computes the seed from identical applied state, so
		// every member writes the identical snapshot: the daughter starts
		// at index 1 with the moved range's data in place, no transfer.
		seed := m.cfg.SplitSeed(g.id, p.Daughter, p.Pivot)
		snap := types.Snapshot{
			Meta: types.SnapshotMeta{LastIndex: 1, LastTerm: 1, Config: boot},
			Data: seed,
		}
		if err := st.SaveSnapshot(snap); err == nil {
			m.statSeedBytes += uint64(len(seed))
		}
	}
	// A failed daughter open leaves the routing row pointing at a group
	// this process cannot serve; proposals for it drop (statDropped) while
	// peers carry on. Surfacing the error would require failing the whole
	// process mid-commit-stream.
	_ = m.openGroup(p.Daughter, boot)
}

// applyMerge handles a committed KindShardMerge in group g: remove g's
// routing row (its left neighbor absorbs the range) and retire g's core.
// Idempotent like applySplit.
func (m *Manager) applyMerge(g *group, e types.Entry) {
	var p mergePayload
	if err := json.Unmarshal(e.Data, &p); err != nil || p.Left == "" {
		return
	}
	i := m.rangeIndex(g.id)
	if i <= 0 || m.ranges[i-1].Group != p.Left {
		return
	}
	m.ranges = append(m.ranges[:i], m.ranges[i+1:]...)
	g.retired = true
	g.retiredAt = m.now
	m.statMerges++
	m.journal(metaRecord{Op: "merge", Left: p.Left, Right: g.id})
}

// insertRange adds a routing row in sorted position (replacing an existing
// row with the same Start, which cannot happen through the guarded apply
// paths but keeps the table consistent if it ever did).
func (m *Manager) insertRange(r rangeEntry) {
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Start >= r.Start })
	if i < len(m.ranges) && m.ranges[i].Start == r.Start {
		m.ranges[i] = r
		return
	}
	m.ranges = append(m.ranges, rangeEntry{})
	copy(m.ranges[i+1:], m.ranges[i:])
	m.ranges[i] = r
}

// gcTick removes retired groups once their proposals resolved and the drain
// window passed: stragglers still replicating from peers got RetireDrain to
// finish; later messages drop like any unknown group's.
func (m *Manager) gcTick(now time.Duration) {
	var dead []*group
	for _, g := range m.order {
		if g.retired && g.core.PendingProposals() == 0 && now >= g.retiredAt+m.cfg.RetireDrain {
			dead = append(dead, g)
		}
	}
	for _, g := range dead {
		m.removeOrdered(g)
		delete(m.groups, g.id)
		for key := range m.readMap {
			if key.gid == g.id {
				delete(m.readMap, key)
			}
		}
		m.statRetired++
	}
}

// journal appends one routing change to the Meta journal (no-op without
// one). Journal writes share the group-commit flusher with everything else;
// the idempotent apply paths absorb the rare crash that loses the journal
// tail but kept the consensus entry.
func (m *Manager) journal(rec metaRecord) {
	if m.cfg.Meta == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	m.metaSeq++
	_ = m.cfg.Meta.AppendEntry(types.Entry{Index: m.metaSeq, Term: 1, Kind: types.KindNormal, Data: data})
}

// replayMeta rebuilds the routing table from the journal at restart: the
// initial GroupSpecs give the base table, each record re-applies its
// mutation. Cores open afterwards from the final table.
func (m *Manager) replayMeta() error {
	if m.cfg.Meta == nil {
		return nil
	}
	_, entries, err := m.cfg.Meta.Load()
	if err != nil {
		return fmt.Errorf("shard: load meta journal: %w", err)
	}
	for _, e := range entries {
		if e.Index > m.metaSeq {
			m.metaSeq = e.Index
		}
		var rec metaRecord
		if err := json.Unmarshal(e.Data, &rec); err != nil {
			continue
		}
		switch rec.Op {
		case "split":
			if rec.Daughter != "" && rec.Pivot != "" {
				m.insertRange(rangeEntry{Start: rec.Pivot, Group: rec.Daughter})
			}
		case "merge":
			if i := m.rangeIndex(rec.Right); i > 0 && m.ranges[i-1].Group == rec.Left {
				m.ranges = append(m.ranges[:i], m.ranges[i+1:]...)
			}
		}
		m.statMetaReplay++
	}
	return nil
}

// storageEmpty reports whether a group's storage holds no recovered state —
// the daughter is being created for the first time, not reopened.
func storageEmpty(st storage.Storage) bool {
	hs, entries, err := st.Load()
	if err != nil || hs.Term != 0 || hs.VotedFor != "" || len(entries) > 0 {
		return false
	}
	_, hasSnap, err := st.LoadSnapshot()
	return err == nil && !hasSnap
}
